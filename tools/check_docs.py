#!/usr/bin/env python3
"""Documentation hygiene checks, run by the CI `docs` job.

1. Every relative markdown link in README.md and docs/*.md must point at a
   file (or directory) that exists in the repo. External links (http/https/
   mailto) and pure in-page anchors are skipped; `path#anchor` links are
   checked for the path part only.
2. docs/ARCHITECTURE.md must mention every subdirectory of src/ — the
   architecture tour may not silently fall behind the code layout.
3. Every `BENCH_<name>.json` producer in bench/ (a `JsonReport("<name>")`
   construction) must be documented in EXPERIMENTS.md by its literal
   output filename — a new bench may not land without its experiments
   section. `<name>_no_inprocess` variants count as their base name.

Exits non-zero with one line per problem.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) links, excluding images' inner brackets edge cases; good
# enough for the hand-written markdown in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files():
    files = [REPO / "README.md"]
    docs = REPO / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [f for f in files if f.is_file()]


def check_links(path, errors):
    text = path.read_text(encoding="utf-8")
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO)}: broken link -> {target}")


def check_architecture_coverage(errors):
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not arch.is_file():
        errors.append("docs/ARCHITECTURE.md is missing")
        return
    text = arch.read_text(encoding="utf-8")
    for sub in sorted(p.name for p in (REPO / "src").iterdir() if p.is_dir()):
        if f"src/{sub}" not in text:
            errors.append(f"docs/ARCHITECTURE.md: no section mentions src/{sub}")


# `JsonReport("name")` / `JsonReport(cond ? "a" : "b", jobs)` constructions;
# DOTALL because the argument list may wrap across lines. Declarations taking
# a JsonReport& parameter contain no string literal and never match.
JSON_REPORT_RE = re.compile(r'JsonReport\s+\w+\s*\(([^;]*?)\)\s*;', re.DOTALL)
NAME_RE = re.compile(r'"([a-z0-9_]+)"')


def check_bench_coverage(errors):
    experiments = REPO / "EXPERIMENTS.md"
    bench = REPO / "bench"
    if not bench.is_dir():
        return
    if not experiments.is_file():
        errors.append("EXPERIMENTS.md is missing")
        return
    text = experiments.read_text(encoding="utf-8")
    for src in sorted(bench.glob("*.cpp")):
        names = set()
        for ctor in JSON_REPORT_RE.finditer(src.read_text(encoding="utf-8")):
            names.update(NAME_RE.findall(ctor.group(1)))
        for name in sorted(names):
            base = name.removesuffix("_no_inprocess")
            if f"BENCH_{base}.json" not in text:
                errors.append(
                    f"{src.relative_to(REPO)}: writes BENCH_{base}.json but "
                    f"EXPERIMENTS.md never mentions it"
                )


def main():
    errors = []
    files = doc_files()
    if not files:
        errors.append("no documentation files found (README.md, docs/*.md)")
    for f in files:
        check_links(f, errors)
    check_architecture_coverage(errors)
    check_bench_coverage(errors)
    if errors:
        for e in errors:
            print(f"check_docs: {e}", file=sys.stderr)
        return 1
    names = ", ".join(str(f.relative_to(REPO)) for f in files)
    print(f"check_docs: OK ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
