// velev_fuzz — seeded differential fuzzing of the verification pipeline.
//
//   $ velev_fuzz --seed 1 --cases 200 --out fuzz-out
//   $ velev_fuzz --replay tests/corpus/corpus_seed1.json
//   $ velev_fuzz --seed 7 --cases 50 --trace trace-out --quiet
//
// Each case draws a random (ROB size, issue width, bug kind, bug slice)
// configuration — including bug-free ones — and cross-checks three
// oracles: the rewriting flow, the budget-capped PE-only flow, and direct
// concrete evaluation of the EUFM correctness formula under random finite
// interpretations. Any sound disagreement fails the run; PE SAT models
// are decoded back into term-level counterexamples and disagreeing cases
// are delta-debugged into minimal reproducers (see src/fuzz/fuzz.hpp).
//
// Options:
//   --seed S          run seed (default 1); everything that lands in the
//                     corpus is deterministic in it — same seed, same bytes
//   --cases N         number of generated cases (default 100)
//   --out DIR         write DIR/corpus.json + DIR/repro_case_<id>.json for
//                     every disagreement (default fuzz-out; "" disables)
//   --replay FILE     instead of generating: replay the corpus entries in
//                     FILE and diff the oracle verdicts against the
//                     recorded ones (repeatable)
//   --max-rob N       largest generated ROB size (default 6)
//   --max-width K     largest generated issue/retire width (default 4)
//   --eval-seeds N    interpretations per case for the evaluation oracle
//                     (default 48)
//   --pe-conflicts N  SAT conflict budget of the PE-only oracle (default
//                     120000; deterministic, unlike wall clock)
//   --pe-mem MB       logical-arena budget of the PE-only oracle in MiB
//                     (default 512; deterministic)
//   --no-pe           disable the PE-only oracle entirely
//   --no-inprocess    solve the PE oracle's CNF without the inprocessing
//                     front end (the pre-simplification baseline)
//   --no-shrink       keep failing cases at their generated size
//   --total-timeout S soft wall-clock stop for the whole run, checked
//                     between cases so it never flips a verdict (0 = off)
//   --trace DIR       write trace.json + manifest.json (docs/TRACE_FORMAT.md)
//   --quiet           suppress per-case progress lines
//
// Exit code: 0 all oracles agreed (on replay: everything reproduced),
// 1 disagreement/replay mismatch, 2 usage error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "support/trace.hpp"
#include "velev.hpp"

using namespace velev;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr,
               "error: %s\nsee the header of tools/velev_fuzz.cpp for usage\n",
               msg);
  std::exit(2);
}

int replayFiles(const std::vector<std::string>& files,
                const fuzz::OracleOptions& opts, bool quiet) {
  unsigned entries = 0, mismatches = 0;
  for (const std::string& path : files) {
    std::string err;
    const std::vector<fuzz::CorpusEntry> corpus =
        fuzz::loadCorpusFile(path, &err);
    if (corpus.empty()) usage(err.empty() ? ("empty corpus: " + path).c_str()
                                          : err.c_str());
    for (const fuzz::CorpusEntry& e : corpus) {
      ++entries;
      if (const auto m = fuzz::replayEntry(e, opts); m.has_value()) {
        ++mismatches;
        std::printf("REPLAY MISMATCH [%s] %s\n", path.c_str(), m->c_str());
      } else if (!quiet) {
        std::printf("replayed entry %llu of %s: ok\n",
                    static_cast<unsigned long long>(e.c.id), path.c_str());
      }
    }
  }
  std::printf("replay: %u entries, %u mismatches\n", entries, mismatches);
  return mismatches == 0 ? 0 : 1;
}

void writeTrace(const char* traceDir, const trace::Collector& collector,
                const fuzz::FuzzOptions& fopts, const fuzz::FuzzReport& rep) {
  std::filesystem::create_directories(traceDir);
  const std::string dir = traceDir;
  if (std::ofstream os(dir + "/trace.json"); os)
    collector.writeChromeTrace(os);
  trace::ManifestData m;
  m.tool = "velev_fuzz";
  m.config = {
      {"seed", std::to_string(fopts.seed)},
      {"cases", std::to_string(fopts.cases)},
      {"max_rob_size", std::to_string(fopts.gen.maxRobSize)},
      {"max_issue_width", std::to_string(fopts.gen.maxIssueWidth)},
      {"eval_seeds", std::to_string(fopts.oracle.evalSeeds)},
  };
  m.budgetWallSeconds = fopts.totalWallSeconds;
  m.budgetMemoryBytes = fopts.oracle.peBudget.memoryBytes;
  m.budgetSatConflicts = fopts.oracle.peBudget.satConflicts;
  m.verdict = rep.disagreements == 0 ? "agreement" : "disagreement";
  m.stageSeconds = {{"total", rep.seconds}};
  if (std::ofstream os(dir + "/manifest.json"); os)
    trace::writeManifest(os, m, &collector);
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::FuzzOptions fopts;
  fopts.outDir = "fuzz-out";
  std::vector<std::string> replay;
  const char* traceDir = nullptr;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--seed") fopts.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--cases") {
      fopts.cases = static_cast<unsigned>(std::atoi(next()));
      if (fopts.cases < 1) usage("--cases must be >= 1");
    } else if (a == "--out") fopts.outDir = next();
    else if (a == "--replay") replay.emplace_back(next());
    else if (a == "--max-rob") {
      fopts.gen.maxRobSize = static_cast<unsigned>(std::atoi(next()));
      if (fopts.gen.maxRobSize < 1) usage("--max-rob must be >= 1");
    } else if (a == "--max-width") {
      fopts.gen.maxIssueWidth = static_cast<unsigned>(std::atoi(next()));
      if (fopts.gen.maxIssueWidth < 1) usage("--max-width must be >= 1");
    } else if (a == "--eval-seeds") {
      fopts.oracle.evalSeeds = static_cast<unsigned>(std::atoi(next()));
    } else if (a == "--pe-conflicts") {
      fopts.oracle.peBudget.satConflicts = std::atoll(next());
    } else if (a == "--pe-mem") {
      const long mb = std::atol(next());
      if (mb <= 0) usage("--pe-mem must be > 0 MiB");
      fopts.oracle.peBudget.memoryBytes =
          static_cast<std::size_t>(mb) * 1024u * 1024u;
    } else if (a == "--no-pe") fopts.oracle.runPe = false;
    else if (a == "--no-inprocess") fopts.oracle.inprocess.enabled = false;
    else if (a == "--no-shrink") fopts.shrink = false;
    else if (a == "--total-timeout") {
      fopts.totalWallSeconds = std::atof(next());
      if (fopts.totalWallSeconds < 0) usage("--total-timeout must be >= 0");
    } else if (a == "--trace") traceDir = next();
    else if (a == "--quiet") quiet = true;
    else usage(("unknown option: " + a).c_str());
  }

  trace::Collector collector;
  trace::Use tracing(traceDir != nullptr ? &collector : nullptr);

  try {
    if (!replay.empty()) return replayFiles(replay, fopts.oracle, quiet);

    if (!quiet) fopts.log = &std::cout;
    const fuzz::FuzzReport rep = fuzz::runFuzz(fopts);
    std::printf(
        "fuzz: seed %llu, %u cases in %.1f s — %u with injected bugs "
        "(%u detected, %u benign), %u PE cross-checks, %u decoded "
        "counterexamples, %u disagreements%s\n",
        static_cast<unsigned long long>(fopts.seed), rep.casesRun, rep.seconds,
        rep.bugsInjected, rep.bugsDetected, rep.benignBugs, rep.peRuns,
        rep.decoded, rep.disagreements,
        rep.casesSkipped != 0 ? " (soft wall budget hit)" : "");
    if (!fopts.outDir.empty())
      std::printf("fuzz: corpus written to %s/corpus.json\n",
                  fopts.outDir.c_str());
    if (rep.disagreements != 0)
      std::printf("fuzz: ORACLE DISAGREEMENT — see %s/repro_case_*.json\n",
                  fopts.outDir.empty() ? "<no --out dir>" : fopts.outDir.c_str());
    if (traceDir != nullptr) writeTrace(traceDir, collector, fopts, rep);
    return rep.exitCode();
  } catch (const InternalError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
