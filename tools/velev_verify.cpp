// velev_verify — command-line front end for the verification flow.
//
//   $ velev_verify --size 128 --width 4
//   $ velev_verify --size 128 --width 4 --bug fwd:72
//   $ velev_verify --size 4 --width 2 --strategy pe --dump-cnf out.cnf
//   $ velev_verify --size 2 --width 1 --strategy pe --proof out.drat
//   $ velev_verify --size 16 --width 4 --strategy pe --mem-budget 1024
//   $ velev_verify --grid "sizes=16,32,64;widths=1,2,4" --jobs 8 --json g.json
//   $ velev_verify --size 8 --width 2 --trace out/ --stats
//
// Options:
//   --size N          ROB size (default 8)
//   --width K         issue/retire width (default 2)
//   --grid SPEC       verify a whole grid instead of one configuration.
//                     SPEC is either "sizes=A,B,..;widths=X,Y,.." (cross
//                     product, cells with width > size dropped) or an
//                     explicit cell list "NxK,NxK,..."
//   --jobs N          parallelism (default 1). Grid mode: worker threads,
//                     one (N, k) cell per task. Single mode: SAT seed
//                     portfolio of N racing solver instances.
//   --cell-jobs N     intra-cell parallelism (default 1): shard the rewrite
//                     slice checks and the CNF build (Tseitin + one
//                     transitivity component per worker) across N threads
//                     *inside* each verification. Verdicts and counters are
//                     identical to --cell-jobs 1 — this only buys wall
//                     clock on big-N cells (docs/SCALING.md). Applies to
//                     single mode and grid mode alike; orthogonal to --jobs
//   --checkpoint FILE grid mode: after every finished cell, atomically
//                     rewrite FILE with one record per completed cell
//                     (schema: docs/SCALING.md), so a killed sweep loses at
//                     most the cells in flight
//   --resume          grid mode, with --checkpoint: restore the cells whose
//                     records are already in FILE instead of re-verifying
//                     them; only unfinished cells run
//   --strategy S      rewrite (default) | pe
//   --engine E        sat (default) | bdd | both. `bdd` evaluates the
//                     negated correctness formula with shared ROBDDs built
//                     straight from the AIG (no Tseitin CNF) plus the
//                     transitivity constraints; `both` runs the two engines
//                     under sibling budgets and exits 2 on any conclusive
//                     verdict disagreement (the cross-check CI job).
//                     --proof requires the sat engine
//   --bug KIND:SLICE  inject a defect: fwd | stale | retire | alu |
//                     completion, at the given 1-based slice
//   --budget N        SAT conflict budget (default unlimited)
//   --timeout SECS    wall-clock budget per cell; exhaustion degrades into
//                     verdict `timeout` instead of running forever
//   --mem-budget MB   logical-arena memory budget per cell; exhaustion
//                     degrades into verdict `memout` instead of an OOM kill
//                     (how Table 2's "out of memory" entries reproduce)
//   --fallback P      grid mode: none (default) | rewrite (alias:
//                     retry-with-rewriting) — retry a cell whose PE-only
//                     attempt exhausted its budget with the rewriting
//                     strategy (the paper's headline comparison)
//   --no-inprocess    disable the CNF inprocessing front end of the SAT
//                     stage (variable elimination, subsumption,
//                     vivification, probing, equivalent-literal
//                     substitution) — the pre-simplification baseline, used
//                     by the benches' before/after comparison
//   --incremental     grid mode only: solve the cells through one shared
//                     incremental SAT session (activation selectors;
//                     VSIDS activity, phases and learnt clauses carry
//                     across cells). Forces sequential cell execution
//   --no-coi          disable the cone-of-influence simulator optimization
//   --dump-cnf FILE   write the correctness CNF in DIMACS format
//   --proof FILE      log a DRAT proof and self-check it on UNSAT
//   --json FILE       write a machine-readable report (same schema as the
//                     benches' BENCH_<name>.json)
//   --connect ADDR    ship the request(s) to a running velev_serve daemon
//                     (docs/SERVICE.md) instead of verifying in-process.
//                     ADDR: "unix:PATH", a bare socket path, "HOST:PORT"
//                     or ":PORT". Verdicts, counters and exit codes match
//                     the local run; answers served from the daemon's
//                     result cache print a [cached] marker. Local-run
//                     features (--dump-cnf, --proof, --trace, --stats,
//                     --incremental, --fallback) do not apply
//   --trace DIR       write observability artifacts into DIR (created if
//                     missing): a Chrome-trace/Perfetto event stream
//                     (trace.json) and a versioned run manifest
//                     (manifest.json). Grid mode writes per-cell
//                     cell_<i>_<N>x<K>.{trace,manifest}.json plus one
//                     merged manifest.json. Schema: docs/TRACE_FORMAT.md
//   --stats           print the hierarchical stage-time tree and the final
//                     counters to stderr (single mode; grid cells record
//                     their statistics in the --trace manifests instead)
//   --quiet           print only the verdict line(s)
//
// Exit code (core::verdictExitCode — one mapping shared with the benches
// and cli_test): 0 correct, 1 bug found / mismatch, 2 usage error,
// 3 inconclusive/skipped, 4 timeout/memout. Grid mode aggregates by
// severity: any bug -> 1, else any timeout/memout -> 4, else any
// inconclusive/skipped -> 3, else 0.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "velev.hpp"

using namespace velev;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of tools/velev_verify.cpp "
                       "for usage\n",
               msg);
  std::exit(2);
}

models::BugKind parseBugKind(const std::string& s) {
  const auto k = models::bugKindFromName(s);
  if (!k.has_value() || *k == models::BugKind::None)
    usage(("unknown bug kind: " + s).c_str());
  return *k;
}

std::vector<unsigned> parseUnsignedList(const std::string& s) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s.c_str() + pos, &end, 10);
    if (end == s.c_str() + pos) usage(("bad number in list: " + s).c_str());
    out.push_back(static_cast<unsigned>(v));
    pos = static_cast<std::size_t>(end - s.c_str());
    if (pos < s.size() && s[pos] == ',') ++pos;
  }
  return out;
}

std::vector<core::GridCell> parseGridSpec(const std::string& spec) {
  if (spec.find('=') != std::string::npos) {
    // "sizes=A,B,..;widths=X,Y,.."
    std::vector<unsigned> sizes, widths;
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t semi = spec.find(';', pos);
      const std::string part =
          spec.substr(pos, semi == std::string::npos ? semi : semi - pos);
      const std::size_t eq = part.find('=');
      if (eq == std::string::npos) usage("--grid expects key=value parts");
      const std::string key = part.substr(0, eq);
      if (key == "sizes") sizes = parseUnsignedList(part.substr(eq + 1));
      else if (key == "widths") widths = parseUnsignedList(part.substr(eq + 1));
      else usage(("unknown --grid key: " + key).c_str());
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
    if (sizes.empty() || widths.empty())
      usage("--grid needs both sizes= and widths=");
    return core::makeGrid(sizes, widths);
  }
  // "NxK,NxK,..."
  std::vector<core::GridCell> cells;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t x = part.find('x');
    if (x == std::string::npos) usage("--grid cells must look like NxK");
    core::GridCell c;
    c.robSize = static_cast<unsigned>(std::atoi(part.c_str()));
    c.issueWidth = static_cast<unsigned>(std::atoi(part.c_str() + x + 1));
    if (c.issueWidth < 1 || c.issueWidth > c.robSize)
      usage(("impossible cell (need 1 <= width <= size): " + part).c_str());
    cells.push_back(c);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (cells.empty()) usage("--grid spec is empty");
  return cells;
}

/// --json report: the shared core::ReportCell schema (report_json.hpp)
/// inside the tool envelope. One writer serves the local paths and the
/// --connect client mode.
void writeJsonReport(const char* path, const char* mode, unsigned jobs,
                     const std::vector<core::ReportCell>& cells,
                     double totalSeconds) {
  std::ofstream os(path);
  JsonWriter w(os);
  w.beginObject();
  w.kv("tool", "velev_verify");
  w.kv("mode", mode);
  w.kv("jobs", jobs);
  w.key("cells");
  w.beginArray();
  for (const core::ReportCell& c : cells) core::writeReportCell(w, c);
  w.endArray();
  w.kv("total_wall_seconds", totalSeconds);
  w.endObject();
}

std::vector<core::ReportCell> toReportCells(
    const std::vector<core::GridCellResult>& results) {
  std::vector<core::ReportCell> cells;
  cells.reserve(results.size());
  for (const auto& r : results) cells.push_back(core::makeReportCell(r));
  return cells;
}

/// Flatten one wire response into the shared cell schema (sat_conflicts
/// comes back out of the canonical counter block).
core::ReportCell responseCell(const core::VerifyRequest& req,
                              const core::VerifyResponse& resp) {
  core::ReportCell c;
  c.robSize = req.robSize;
  c.issueWidth = req.issueWidth;
  c.label = resp.cached ? "cached" : "";
  c.verdict = core::verdictName(resp.verdict);
  c.reason = resp.reason;
  c.wallSeconds = resp.wallSeconds;
  for (const auto& [name, value] : resp.counters)
    if (name == "sat.conflicts") c.satConflicts = value;
  c.peakArenaBytes = resp.peakArenaBytes;
  c.memHighWaterKb = resp.rssHighWaterKb;
  c.counters = resp.counters;
  c.stageSeconds = {{"sim", resp.seconds.sim},
                    {"rewrite", resp.seconds.rewrite},
                    {"translate", resp.seconds.translate},
                    {"sat", resp.seconds.sat},
                    {"bdd", resp.seconds.bdd}};
  return c;
}

void printCellLine(const core::GridCellResult& r) {
  const unsigned n = r.cell.robSize, k = r.cell.issueWidth;
  switch (r.report.verdict()) {
    case core::Verdict::Correct:
      std::printf("cell %ux%u: CORRECT (%.3f s)\n", n, k, r.wallSeconds);
      break;
    case core::Verdict::CounterexampleFound:
      std::printf("cell %ux%u: COUNTEREXAMPLE FOUND (%.3f s)\n", n, k,
                  r.wallSeconds);
      break;
    case core::Verdict::RewriteMismatch:
      std::printf("cell %ux%u: NON-CONFORMING SLICE %u (%s)\n", n, k,
                  r.report.outcome.failedSlice,
                  r.report.outcome.reason.c_str());
      break;
    case core::Verdict::Inconclusive:
      std::printf("cell %ux%u: INCONCLUSIVE (%.3f s)\n", n, k, r.wallSeconds);
      break;
    case core::Verdict::Timeout:
      std::printf("cell %ux%u: TIMEOUT (%.3f s)\n", n, k, r.wallSeconds);
      break;
    case core::Verdict::MemOut:
      std::printf("cell %ux%u: OUT OF MEMORY (%.3f s)\n", n, k,
                  r.wallSeconds);
      break;
    case core::Verdict::Skipped:
      std::printf("cell %ux%u: SKIPPED\n", n, k);
      break;
  }
  if (r.fellBack)
    std::printf("cell %ux%u: retried with rewriting after PE-only %s\n", n, k,
                verdictName(r.firstVerdict));
  if (r.restored)
    std::printf("cell %ux%u: restored from checkpoint\n", n, k);
}

int aggregateExitCode(const std::vector<core::GridCellResult>& results) {
  // Severity order across cells: refuted > budget-exceeded > inconclusive.
  auto severity = [](int code) {
    return code == 1 ? 3 : code == 4 ? 2 : code == 3 ? 1 : 0;
  };
  int worst = 0;
  for (const auto& r : results) {
    const int code = core::verdictExitCode(r.report.verdict());
    if (severity(code) > severity(worst)) worst = code;
  }
  return worst;
}

int runGridMode(const std::vector<core::VerifyRequest>& requests,
                const core::GridRunOptions& gopts, const char* jsonPath,
                bool quiet) {
  Timer total;
  const std::vector<core::GridCellResult> results =
      core::runGrid(requests, gopts);
  const double totalSec = total.seconds();
  for (const auto& r : results) printCellLine(r);
  if (!quiet)
    std::printf("grid: %zu cells in %.3f s with %u jobs\n", results.size(),
                totalSec, gopts.jobs);
  if (jsonPath)
    writeJsonReport(jsonPath, "grid", gopts.jobs, toReportCells(results),
                    totalSec);
  return aggregateExitCode(results);
}

/// --connect: ship the request(s) to a running velev_serve instead of
/// verifying in-process. The response carries the same verdict, counters
/// and exit-code mapping, so scripts behave identically either way.
int runConnectMode(const char* endpoint,
                   std::vector<core::VerifyRequest> requests,
                   const char* mode, const char* jsonPath, bool quiet) {
  std::string err;
  std::optional<serve::Client> client = serve::Client::connect(endpoint, &err);
  if (!client.has_value()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 2;
  }
  Timer total;
  std::vector<core::ReportCell> cells;
  auto severity = [](int code) {
    return code == 1 ? 3 : code == 4 ? 2 : code == 3 ? 1 : 0;
  };
  int worst = 0;
  std::uint64_t id = 1;
  for (core::VerifyRequest& r : requests) {
    r.id = id++;
    const std::optional<core::VerifyResponse> resp =
        client->roundTrip(r, &err);
    if (!resp.has_value()) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 2;
    }
    if (!resp->error.empty()) {
      std::fprintf(stderr, "error: server rejected cell %ux%u: %s\n",
                   r.robSize, r.issueWidth, resp->error.c_str());
      return 2;
    }
    std::printf("cell %ux%u: %s%s (%.3f s)\n", r.robSize, r.issueWidth,
                core::verdictName(resp->verdict),
                resp->cached ? " [cached]" : "", resp->wallSeconds);
    if (severity(resp->exitCode) > severity(worst)) worst = resp->exitCode;
    cells.push_back(responseCell(r, *resp));
  }
  if (!quiet)
    std::printf("connect: %zu cell(s) via %s in %.3f s\n", cells.size(),
                endpoint, total.seconds());
  if (jsonPath)
    writeJsonReport(jsonPath, mode, 1, cells, total.seconds());
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned size = 8, width = 2, jobs = 1, cellJobs = 1;
  bool peOnly = false, quiet = false, coi = true;
  bool noInprocess = false, incremental = false, resume = false;
  const char* checkpointPath = nullptr;
  core::Engine engine = core::Engine::Sat;
  ResourceBudget budget;
  core::FallbackPolicy fallback = core::FallbackPolicy::None;
  models::BugSpec bug;
  const char* dumpCnf = nullptr;
  const char* proofPath = nullptr;
  const char* jsonPath = nullptr;
  const char* gridSpec = nullptr;
  const char* traceDir = nullptr;
  const char* connectEndpoint = nullptr;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--size") size = std::atoi(next());
    else if (a == "--width") width = std::atoi(next());
    else if (a == "--jobs") {
      jobs = std::atoi(next());
      if (jobs < 1) usage("--jobs must be >= 1");
    } else if (a == "--cell-jobs") {
      cellJobs = std::atoi(next());
      if (cellJobs < 1) usage("--cell-jobs must be >= 1");
    } else if (a == "--checkpoint") checkpointPath = next();
    else if (a == "--resume") resume = true;
    else if (a == "--grid") gridSpec = next();
    else if (a == "--strategy") {
      const std::string s = next();
      if (s == "pe") peOnly = true;
      else if (s == "rewrite") peOnly = false;
      else usage(("unknown strategy: " + s).c_str());
    } else if (a == "--engine") {
      const std::string s = next();
      const auto e = core::engineFromName(s);
      if (!e.has_value()) usage(("unknown engine: " + s).c_str());
      engine = *e;
    } else if (a == "--bug") {
      const std::string s = next();
      const auto colon = s.find(':');
      if (colon == std::string::npos) usage("--bug expects KIND:SLICE");
      bug.kind = parseBugKind(s.substr(0, colon));
      bug.index = std::atoi(s.c_str() + colon + 1);
    } else if (a == "--budget") budget.satConflicts = std::atoll(next());
    else if (a == "--timeout") {
      budget.wallSeconds = std::atof(next());
      if (budget.wallSeconds <= 0) usage("--timeout must be > 0 seconds");
    } else if (a == "--mem-budget") {
      const long mb = std::atol(next());
      if (mb <= 0) usage("--mem-budget must be > 0 MiB");
      budget.memoryBytes = static_cast<std::size_t>(mb) * 1024u * 1024u;
    } else if (a == "--fallback") {
      const std::string s = next();
      if (s == "rewrite" || s == "retry-with-rewriting")
        fallback = core::FallbackPolicy::RetryWithRewriting;
      else if (s == "none") fallback = core::FallbackPolicy::None;
      else usage(("unknown fallback policy: " + s).c_str());
    } else if (a == "--no-inprocess") noInprocess = true;
    else if (a == "--incremental") incremental = true;
    else if (a == "--no-coi") coi = false;
    else if (a == "--dump-cnf") dumpCnf = next();
    else if (a == "--proof") proofPath = next();
    else if (a == "--json") jsonPath = next();
    else if (a == "--connect") connectEndpoint = next();
    else if (a == "--trace") traceDir = next();
    else if (a == "--stats") stats = true;
    else if (a == "--quiet") quiet = true;
    else usage(("unknown option: " + a).c_str());
  }

  if (proofPath && engine != core::Engine::Sat)
    usage("--proof requires --engine sat (DRAT proofs come from the CDCL "
          "solver)");
  if (incremental && !gridSpec)
    usage("--incremental applies to grid mode only (a single run has no "
          "cells to share the session across)");
  if (checkpointPath && !gridSpec)
    usage("--checkpoint applies to grid mode only (a single run has no "
          "cells to record)");
  if (resume && !checkpointPath)
    usage("--resume needs --checkpoint FILE (the file to restore from)");

  // The one serializable request the whole flag set folds into; grid mode
  // stamps sizes × widths onto copies of it, --connect ships it as-is.
  core::VerifyRequest base;
  base.robSize = size;
  base.issueWidth = width;
  base.bug = bug;
  base.strategy = peOnly ? core::Strategy::PositiveEqualityOnly
                         : core::Strategy::RewritingPlusPositiveEquality;
  base.engine = engine;
  base.coneOfInfluence = coi;
  base.inprocess = !noInprocess;
  base.timeoutSeconds = budget.wallSeconds;
  base.memoryBudgetBytes = budget.memoryBytes;
  base.satConflictBudget = budget.satConflicts;

  try {
  if (connectEndpoint) {
    if (dumpCnf || proofPath || traceDir || stats || incremental ||
        checkpointPath || cellJobs > 1 ||
        fallback != core::FallbackPolicy::None)
      usage("--connect ships requests to a velev_serve daemon; "
            "--dump-cnf/--proof/--trace/--stats/--incremental/--fallback/"
            "--checkpoint/--cell-jobs are local-run features");
    std::vector<core::VerifyRequest> requests;
    if (gridSpec) {
      for (const core::GridCell& c : parseGridSpec(gridSpec)) {
        core::VerifyRequest r = base;
        r.robSize = c.robSize;
        r.issueWidth = c.issueWidth;
        requests.push_back(r);
      }
    } else {
      if (width < 1 || width > size) usage("need 1 <= width <= size");
      requests.push_back(base);
    }
    return runConnectMode(connectEndpoint, std::move(requests),
                          gridSpec ? "grid" : "single", jsonPath, quiet);
  }

  if (gridSpec) {
    if (dumpCnf || proofPath)
      usage("--dump-cnf/--proof apply to single-configuration runs only");
    core::GridRunOptions gopts;
    gopts.jobs = jobs;
    gopts.cellJobs = cellJobs;
    gopts.incremental = incremental;
    gopts.fallback = fallback;
    if (traceDir) gopts.traceDir = traceDir;
    if (checkpointPath) gopts.checkpointPath = checkpointPath;
    gopts.resume = resume;
    if (stats)
      std::fprintf(stderr, "note: --stats is a single-run view; grid cells "
                           "record their statistics in the --trace "
                           "manifests\n");
    std::vector<core::VerifyRequest> requests;
    for (const core::GridCell& c : parseGridSpec(gridSpec)) {
      core::VerifyRequest r = base;
      r.robSize = c.robSize;
      r.issueWidth = c.issueWidth;
      requests.push_back(r);
    }
    return runGridMode(requests, gopts, jsonPath, quiet);
  }

  if (width < 1 || width > size) usage("need 1 <= width <= size");

  // The whole single-configuration pipeline runs under one governor; a
  // budget exhausted anywhere unwinds to the handler at the bottom and
  // degrades into a timeout/memout verdict.
  BudgetGovernor gov(budget);

  // --cell-jobs: worker pool for the rewrite slice checks and the CNF
  // build. Output is identical to the sequential path for any pool size.
  std::unique_ptr<ThreadPool> cellPool;
  if (cellJobs > 1) cellPool = std::make_unique<ThreadPool>(cellJobs);

  // Observability: one Collector for the whole run when --trace or --stats
  // asked for it, attached thread-locally so every pipeline layer below
  // (and the portfolio's workers) records into it.
  trace::Collector collector;
  const bool collecting = traceDir != nullptr || stats;
  trace::Use tracing(collecting ? &collector : nullptr);

  // Declared before finishJson so the closing accounting can scan the DAG
  // and read the portfolio's per-instance statistics.
  eufm::Context cx;
  cx.setBudget(&gov);
  sat::PortfolioReport prep;

  // Mirrors of the flag set, for the manifest's config block.
  core::VerifyOptions vopts;
  vopts.strategy = peOnly ? core::Strategy::PositiveEqualityOnly
                          : core::Strategy::RewritingPlusPositiveEquality;
  vopts.engine = engine;
  vopts.budget = budget;
  vopts.sim.coneOfInfluence = coi;
  vopts.inprocess.enabled = !noInprocess;

  // Collected for --json (single-cell report reuses the grid schema).
  Timer total;
  core::GridCellResult cellOut;
  cellOut.cell = core::GridCell{size, width, bug};
  cellOut.report.engine = engine;
  auto finishJson = [&](core::Verdict v) {
    cellOut.report.outcome.verdict = v;
    // max, not assign: under --engine both the BDD side already recorded
    // its sibling governor's peak.
    cellOut.report.outcome.peakArenaBytes =
        std::max(cellOut.report.outcome.peakArenaBytes, gov.peakArenaBytes());
    cellOut.report.outcome.rssHighWaterKb = rssHighWaterKb();
    cellOut.report.cxStats = core::scanContext(cx);
    cellOut.wallSeconds = total.seconds();
    cellOut.memHighWaterKb = rssHighWaterKb();
    if (jsonPath)
      writeJsonReport(jsonPath, "single", jobs, {core::makeReportCell(cellOut)},
                      total.seconds());
    if (collecting) {
      // Publish the canonical counter block plus the per-seed SAT effort
      // on the collector: the manifest merges the collector's counters, and
      // --stats prints them under the stage tree.
      for (const auto& [name, value] : core::reportCounters(cellOut.report))
        collector.setCounter(name, value);
      for (std::size_t s = 0; s < prep.instanceStats.size(); ++s) {
        const std::string p = "sat.seed" + std::to_string(s) + ".";
        const sat::Stats& st = prep.instanceStats[s];
        collector.setCounter(p + "decisions", st.decisions);
        collector.setCounter(p + "propagations", st.propagations);
        collector.setCounter(p + "conflicts", st.conflicts);
        collector.setCounter(p + "restarts", st.restarts);
      }
      if (prep.winner >= 0) {
        collector.setCounter("sat.winner",
                             static_cast<std::uint64_t>(prep.winner));
        collector.setCounter("sat.winner_seed", prep.winnerSeed);
      }
      if (stats) collector.writeStageTree(std::cerr);
      if (traceDir) {
        std::filesystem::create_directories(traceDir);
        const std::string dir = traceDir;
        if (std::ofstream os(dir + "/trace.json"); os)
          collector.writeChromeTrace(os);
        if (std::ofstream os(dir + "/manifest.json"); os)
          trace::writeManifest(os, core::cellManifestData(cellOut, vopts),
                               &collector);
        if (!quiet)
          std::printf("trace: wrote %s/trace.json and %s/manifest.json\n",
                      traceDir, traceDir);
      }
    }
    return core::verdictExitCode(v);
  };

  try {
  // Build + simulate.
  const models::Isa isa = models::Isa::declare(cx);
  const models::OoOConfig cfg{size, width};
  auto impl = models::buildOoO(cx, isa, cfg, bug);
  auto spec = models::buildSpec(cx, isa);
  tlsim::SimOptions simOpts;
  simOpts.coneOfInfluence = coi;
  Timer t;
  const core::Diagram d = [&] {
    TRACE_SPAN("verify.sim");
    return core::buildDiagram(cx, *impl, *spec, simOpts);
  }();
  const double simSec = t.seconds();
  cellOut.report.simStats = d.implSimStats;
  cellOut.report.outcome.seconds.sim = simSec;
  if (!quiet)
    std::printf("simulated commutative diagram in %.3f s (%llu signal "
                "evaluations)\n",
                simSec,
                static_cast<unsigned long long>(
                    d.implSimStats.signalEvals + d.flushSimStats.signalEvals));

  // Rewriting rules (unless PE-only).
  eufm::Expr correctness = d.correctness;
  evc::TranslateOptions topts;
  if (!peOnly) {
    t.reset();
    const rewrite::RewriteResult rw = [&] {
      TRACE_SPAN("verify.rewrite");
      return rewrite::rewriteRobUpdates(cx, isa, impl->init, cfg,
                                        d.implRegFile, d.specRegFile,
                                        cellPool.get());
    }();
    cellOut.report.rewriteStats = rw.stats;
    cellOut.report.outcome.seconds.rewrite = t.seconds();
    if (!rw.ok) {
      std::printf("verdict: NON-CONFORMING SLICE %u (%s) after %.3f s\n",
                  rw.failedSlice, rw.message.c_str(), t.seconds());
      cellOut.report.outcome.failedSlice = rw.failedSlice;
      cellOut.report.outcome.reason = rw.message;
      return finishJson(core::Verdict::RewriteMismatch);
    }
    cellOut.report.updatesRemoved = rw.updatesRemoved;
    if (!quiet)
      std::printf("rewriting rules removed %u updates in %.3f s\n",
                  rw.updatesRemoved, t.seconds());
    eufm::Expr c = cx.mkFalse();
    for (unsigned m = 0; m < d.specPc.size(); ++m)
      c = cx.mkOr(c, cx.mkAnd(cx.mkEq(d.implPc, d.specPc[m]),
                              cx.mkEq(rw.implRegFile, rw.specRegFile[m])));
    correctness = c;
    topts.conservativeMemory = true;
  }

  // Translate. The pure-BDD engine skips Tseitin entirely (the CNF then
  // carries only the transitivity constraints) — unless --dump-cnf still
  // wants the DIMACS file.
  topts.emitCnf = engine != core::Engine::Bdd || dumpCnf != nullptr;
  topts.pool = cellPool.get();
  t.reset();
  const evc::Translation tr = [&] {
    TRACE_SPAN("verify.translate");
    return evc::translate(cx, correctness, topts);
  }();
  cellOut.report.evcStats = tr.stats;
  cellOut.report.outcome.seconds.translate = t.seconds();
  if (!quiet) {
    if (topts.emitCnf)
      std::printf("translated to CNF in %.3f s: %u vars, %zu clauses, "
                  "%u e_ij variables\n",
                  t.seconds(), tr.cnf.numVars, tr.cnf.numClauses(),
                  tr.stats.eijVars);
    else
      std::printf("translated in %.3f s: %u propositional inputs, "
                  "%u transitivity clauses, %u e_ij variables\n",
                  t.seconds(), tr.pctx->numVars(),
                  tr.stats.transitivity.clauses, tr.stats.eijVars);
  }
  if (dumpCnf) {
    std::ofstream out(dumpCnf);
    prop::writeDimacs(tr.cnf, out);
    if (!quiet) std::printf("wrote DIMACS to %s\n", dumpCnf);
  }

  // Solve with the selected engine(s). Under --engine both each engine's
  // verdict line carries an engine prefix and the final "verdict:" line is
  // the cross-checked result; for a single engine the historical output
  // format is unchanged.
  struct SideVerdict {
    core::Verdict v = core::Verdict::Inconclusive;
    std::string reason;
    bool conclusive() const {
      return v == core::Verdict::Correct ||
             v == core::Verdict::CounterexampleFound;
    }
  };
  std::optional<SideVerdict> satSide, bddSide;
  const bool both = engine == core::Engine::Both;

  if (engine != core::Engine::Bdd) {
    // SAT — with a seed portfolio of `jobs` racing instances when jobs > 1.
    const char* label = both ? "sat verdict" : "verdict";
    sat::PortfolioOptions popts;
    popts.instances = jobs;
    popts.conflictBudget = budget.satConflicts;
    popts.wantProof = proofPath != nullptr;
    popts.budget = &gov;
    popts.inprocess = vopts.inprocess;
    t.reset();
    const sat::Result r = [&] {
      TRACE_SPAN("verify.sat");
      return sat::solvePortfolio(tr.cnf, popts, &prep);
    }();
    const double satSec = t.seconds();
    cellOut.report.satStats = prep.winnerStats;
    cellOut.report.inprocessed = popts.inprocess.enabled;
    cellOut.report.inprocessStats = prep.inprocessStats;
    cellOut.report.outcome.satResult = r;
    cellOut.report.outcome.seconds.sat = satSec;
    if (!quiet && jobs > 1)
      std::printf("portfolio: %u instances, instance %d (seed %llu) won\n",
                  jobs, prep.winner,
                  static_cast<unsigned long long>(prep.winnerSeed));
    SideVerdict s;
    switch (r) {
      case sat::Result::Unsat:
        if (proofPath) {
          const bool certified = sat::checkRup(tr.cnf, prep.proof);
          std::ofstream out(proofPath);
          sat::writeDrat(prep.proof, out);
          std::printf("proof: %zu steps, self-check %s, written to %s\n",
                      prep.proof.size(), certified ? "PASSED" : "FAILED",
                      proofPath);
          if (!certified) return 2;
        }
        std::printf("%s: CORRECT (UNSAT in %.3f s)\n", label, satSec);
        s.v = core::Verdict::Correct;
        break;
      case sat::Result::Sat:
        std::printf("%s: COUNTEREXAMPLE FOUND (SAT in %.3f s)\n", label,
                    satSec);
        s.v = core::Verdict::CounterexampleFound;
        break;
      default:
        if (gov.exceeded()) {
          const bool mem = gov.exceededKind() == BudgetKind::Memory;
          std::printf("%s: %s (%s after %.3f s)\n", label,
                      mem ? "OUT OF MEMORY" : "TIMEOUT",
                      gov.exceededReason().c_str(), satSec);
          s.v = mem ? core::Verdict::MemOut : core::Verdict::Timeout;
          s.reason = gov.exceededReason();
        } else {
          std::printf("%s: INCONCLUSIVE (budget exhausted after %.3f s)\n",
                      label, satSec);
          s.v = core::Verdict::Inconclusive;
        }
        break;
    }
    satSide = s;
    if (engine == core::Engine::Sat) {
      cellOut.report.outcome.reason = s.reason;
      return finishJson(s.v);
    }
  }

  {
    // BDD. Under `both` it runs on a sibling governor armed from the same
    // budget, so a SAT-side exhaustion never starves it (and vice versa).
    const char* label = both ? "bdd verdict" : "verdict";
    BudgetGovernor sibling(budget);
    BudgetGovernor& bddGov = both ? sibling : gov;
    bdd::CheckOptions copts;
    copts.governor = &bddGov;
    t.reset();
    const bdd::CheckResult res = [&] {
      TRACE_SPAN("verify.bdd");
      return bdd::checkValidity(*tr.pctx, tr.validityRoot,
                                tr.transitivityClauses(), copts);
    }();
    const double bddSec = t.seconds();
    cellOut.report.bddStats = res.stats;
    cellOut.report.outcome.seconds.bdd = bddSec;
    cellOut.report.outcome.peakArenaBytes = std::max(
        cellOut.report.outcome.peakArenaBytes, bddGov.peakArenaBytes());
    if (!quiet)
      std::printf("bdd: %llu peak nodes, %llu reorderings, %llu/%llu cache "
                  "hits\n",
                  static_cast<unsigned long long>(res.stats.nodesPeak),
                  static_cast<unsigned long long>(res.stats.reorderings),
                  static_cast<unsigned long long>(res.stats.cacheHits),
                  static_cast<unsigned long long>(res.stats.cacheLookups));
    SideVerdict s;
    switch (res.status) {
      case bdd::CheckStatus::Valid:
        std::printf("%s: CORRECT (BDD reduced to false in %.3f s)\n", label,
                    bddSec);
        s.v = core::Verdict::Correct;
        break;
      case bdd::CheckStatus::Falsifiable: {
        std::printf("%s: COUNTEREXAMPLE FOUND (satisfying path in %.3f s)\n",
                    label, bddSec);
        s.v = core::Verdict::CounterexampleFound;
        // Decode the path through the same inverse the fuzzer uses. The
        // concrete-replay half needs the PE translation of the original
        // correctness formula, so it only runs on --strategy pe.
        const fuzz::Counterexample cex = fuzz::decodeModel(
            cx, tr, res.model, peOnly ? &d : nullptr,
            peOnly ? impl.get() : nullptr);
        if (!quiet) {
          std::printf("counterexample: %zu control bits, %zu e_ij "
                      "equalities, decode %s\n",
                      cex.bools.size(), cex.eijs.size(),
                      cex.transitive && cex.falsifiesUfRoot ? "consistent"
                                                            : "INCONSISTENT");
          if (!cex.prettySlice.empty())
            std::printf("%s\n", cex.prettySlice.c_str());
        }
        break;
      }
      case bdd::CheckStatus::Unknown: {
        const bool mem = res.tripKind == BudgetKind::Memory;
        std::printf("%s: %s (%s after %.3f s)\n", label,
                    mem ? "OUT OF MEMORY" : "TIMEOUT", res.reason.c_str(),
                    bddSec);
        s.v = mem ? core::Verdict::MemOut : core::Verdict::Timeout;
        s.reason = res.reason;
        break;
      }
    }
    bddSide = s;
    if (engine == core::Engine::Bdd) {
      cellOut.report.outcome.reason = s.reason;
      return finishJson(s.v);
    }
  }

  // --engine both: cross-check, then report the stronger side.
  if (satSide->conclusive() && bddSide->conclusive() &&
      satSide->v != bddSide->v) {
    std::fprintf(stderr,
                 "error: engine disagreement: SAT says %s but BDD says %s\n",
                 core::verdictName(satSide->v), core::verdictName(bddSide->v));
    return 2;
  }
  const SideVerdict chosen = satSide->conclusive()   ? *satSide
                             : bddSide->conclusive() ? *bddSide
                                                     : *satSide;
  std::printf("verdict: %s (cross-checked)\n", core::verdictName(chosen.v));
  cellOut.report.outcome.reason = chosen.reason;
  return finishJson(chosen.v);
  } catch (const BudgetExceeded& e) {
    const bool mem = e.kind() == BudgetKind::Memory;
    std::printf("verdict: %s (%s after %.3f s)\n",
                mem ? "OUT OF MEMORY" : "TIMEOUT", e.what(), total.seconds());
    cellOut.report.outcome.reason = e.what();
    return finishJson(mem ? core::Verdict::MemOut : core::Verdict::Timeout);
  }
  } catch (const InternalError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
