// velev_verify — command-line front end for the verification flow.
//
//   $ velev_verify --size 128 --width 4
//   $ velev_verify --size 128 --width 4 --bug fwd:72
//   $ velev_verify --size 4 --width 2 --strategy pe --dump-cnf out.cnf
//   $ velev_verify --size 2 --width 1 --strategy pe --proof out.drat
//
// Options:
//   --size N          ROB size (default 8)
//   --width K         issue/retire width (default 2)
//   --strategy S      rewrite (default) | pe
//   --bug KIND:SLICE  inject a defect: fwd | stale | retire | alu |
//                     completion, at the given 1-based slice
//   --budget N        SAT conflict budget (default unlimited)
//   --no-coi          disable the cone-of-influence simulator optimization
//   --dump-cnf FILE   write the correctness CNF in DIMACS format
//   --proof FILE      log a DRAT proof and self-check it on UNSAT
//   --quiet           print only the verdict line
//
// Exit code: 0 correct, 1 bug found / mismatch, 2 usage error,
//            3 inconclusive (budget).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/diagram.hpp"
#include "evc/translate.hpp"
#include "models/spec.hpp"
#include "rewrite/engine.hpp"
#include "sat/drat.hpp"
#include "sat/solver.hpp"
#include "support/timer.hpp"

using namespace velev;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of tools/velev_verify.cpp "
                       "for usage\n",
               msg);
  std::exit(2);
}

models::BugKind parseBugKind(const std::string& s) {
  if (s == "fwd") return models::BugKind::ForwardingWrongOperand;
  if (s == "stale") return models::BugKind::ForwardingStaleResult;
  if (s == "retire") return models::BugKind::RetireIgnoresValidResult;
  if (s == "alu") return models::BugKind::AluWrongOpcode;
  if (s == "completion") return models::BugKind::CompletionSkipsWrite;
  usage(("unknown bug kind: " + s).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  unsigned size = 8, width = 2;
  bool peOnly = false, quiet = false, coi = true;
  std::int64_t budget = -1;
  models::BugSpec bug;
  const char* dumpCnf = nullptr;
  const char* proofPath = nullptr;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--size") size = std::atoi(next());
    else if (a == "--width") width = std::atoi(next());
    else if (a == "--strategy") {
      const std::string s = next();
      if (s == "pe") peOnly = true;
      else if (s == "rewrite") peOnly = false;
      else usage(("unknown strategy: " + s).c_str());
    } else if (a == "--bug") {
      const std::string s = next();
      const auto colon = s.find(':');
      if (colon == std::string::npos) usage("--bug expects KIND:SLICE");
      bug.kind = parseBugKind(s.substr(0, colon));
      bug.index = std::atoi(s.c_str() + colon + 1);
    } else if (a == "--budget") budget = std::atoll(next());
    else if (a == "--no-coi") coi = false;
    else if (a == "--dump-cnf") dumpCnf = next();
    else if (a == "--proof") proofPath = next();
    else if (a == "--quiet") quiet = true;
    else usage(("unknown option: " + a).c_str());
  }
  if (width < 1 || width > size) usage("need 1 <= width <= size");

  try {
  // Build + simulate.
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  const models::OoOConfig cfg{size, width};
  auto impl = models::buildOoO(cx, isa, cfg, bug);
  auto spec = models::buildSpec(cx, isa);
  tlsim::SimOptions simOpts;
  simOpts.coneOfInfluence = coi;
  Timer t;
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec, simOpts);
  const double simSec = t.seconds();
  if (!quiet)
    std::printf("simulated commutative diagram in %.3f s (%llu signal "
                "evaluations)\n",
                simSec,
                static_cast<unsigned long long>(
                    d.implSimStats.signalEvals + d.flushSimStats.signalEvals));

  // Rewriting rules (unless PE-only).
  eufm::Expr correctness = d.correctness;
  evc::TranslateOptions topts;
  if (!peOnly) {
    t.reset();
    const rewrite::RewriteResult rw = rewrite::rewriteRobUpdates(
        cx, isa, impl->init, cfg, d.implRegFile, d.specRegFile);
    if (!rw.ok) {
      std::printf("verdict: NON-CONFORMING SLICE %u (%s) after %.3f s\n",
                  rw.failedSlice, rw.message.c_str(), t.seconds());
      return 1;
    }
    if (!quiet)
      std::printf("rewriting rules removed %u updates in %.3f s\n",
                  rw.updatesRemoved, t.seconds());
    eufm::Expr c = cx.mkFalse();
    for (unsigned m = 0; m < d.specPc.size(); ++m)
      c = cx.mkOr(c, cx.mkAnd(cx.mkEq(d.implPc, d.specPc[m]),
                              cx.mkEq(rw.implRegFile, rw.specRegFile[m])));
    correctness = c;
    topts.conservativeMemory = true;
  }

  // Translate.
  t.reset();
  const evc::Translation tr = evc::translate(cx, correctness, topts);
  if (!quiet)
    std::printf("translated to CNF in %.3f s: %u vars, %zu clauses, "
                "%u e_ij variables\n",
                t.seconds(), tr.cnf.numVars, tr.cnf.numClauses(),
                tr.stats.eijVars);
  if (dumpCnf) {
    std::ofstream out(dumpCnf);
    prop::writeDimacs(tr.cnf, out);
    if (!quiet) std::printf("wrote DIMACS to %s\n", dumpCnf);
  }

  // Solve.
  sat::Proof proof;
  t.reset();
  const sat::Result r = sat::solveCnf(tr.cnf, nullptr, nullptr, budget,
                                      proofPath ? &proof : nullptr);
  const double satSec = t.seconds();
  switch (r) {
    case sat::Result::Unsat:
      if (proofPath) {
        const bool certified = sat::checkRup(tr.cnf, proof);
        std::ofstream out(proofPath);
        sat::writeDrat(proof, out);
        std::printf("proof: %zu steps, self-check %s, written to %s\n",
                    proof.size(), certified ? "PASSED" : "FAILED", proofPath);
        if (!certified) return 2;
      }
      std::printf("verdict: CORRECT (UNSAT in %.3f s)\n", satSec);
      return 0;
    case sat::Result::Sat:
      std::printf("verdict: COUNTEREXAMPLE FOUND (SAT in %.3f s)\n", satSec);
      return 1;
    default:
      std::printf("verdict: INCONCLUSIVE (budget exhausted after %.3f s)\n",
                  satSec);
      return 3;
  }
  } catch (const InternalError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
