// velev_serve — the long-lived verification daemon.
//
//   $ velev_serve --socket /tmp/velev.sock
//   $ velev_serve --port 7341 --jobs 8
//   $ velev_serve --socket /tmp/velev.sock --port 0 --cache 4096
//
// Listens on a unix-domain socket and/or 127.0.0.1 TCP for
// newline-delimited JSON verification requests (core::VerifyRequest,
// schema v1 — see docs/SERVICE.md), schedules them on a work-stealing
// verification pool, and answers each with a core::VerifyResponse line.
// Results are content-address cached: identical requests (same cell, same
// options, same binary) are answered from the cache, and concurrent
// identical requests coalesce onto one running job.
//
// Options:
//   --socket PATH     unix-domain listening socket (unlinked on exit)
//   --port N          TCP port on 127.0.0.1; 0 picks an ephemeral port
//                     (printed as "listening on 127.0.0.1:<port>")
//   --jobs N          verification pool workers (default: hardware threads)
//   --cache N         result-cache capacity in entries (default 1024)
//   --max-timeout S   admission cap: clamp every request's wall-clock
//                     budget to at most S seconds (default: uncapped)
//   --max-mem MB      admission cap: clamp every request's memory budget
//                     to at most MB MiB (default: uncapped)
//   --quiet           no startup/shutdown chatter on stdout
//
// Control ops on any connection: {"op":"ping"}, {"op":"stats"},
// {"op":"shutdown"} (answers, then the daemon exits cleanly). SIGINT and
// SIGTERM also shut down cleanly.
//
// Exit code: 0 on a clean shutdown, 2 on usage/startup errors.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "velev.hpp"

using namespace velev;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of tools/velev_serve.cpp "
                       "for usage\n",
               msg);
  std::exit(2);
}

serve::VerifyServer* gServer = nullptr;

void onSignal(int) {
  // Only flag; the main thread observes waitForShutdown() and tears down.
  if (gServer != nullptr) gServer->requestShutdown();
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions opts;
  opts.jobs = ThreadPool::hardwareThreads();
  bool quiet = false;
  bool havePort = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--socket") opts.unixSocketPath = next();
    else if (a == "--port") {
      opts.tcpPort = std::atoi(next());
      havePort = true;
      if (opts.tcpPort < 0 || opts.tcpPort > 65535)
        usage("--port must be 0..65535");
    } else if (a == "--jobs") {
      opts.jobs = static_cast<unsigned>(std::atoi(next()));
      if (opts.jobs < 1) usage("--jobs must be >= 1");
    } else if (a == "--cache") {
      const long n = std::atol(next());
      if (n < 1) usage("--cache must be >= 1 entries");
      opts.cacheMaxEntries = static_cast<std::size_t>(n);
    } else if (a == "--max-timeout") {
      opts.maxTimeoutSeconds = std::atof(next());
      if (opts.maxTimeoutSeconds <= 0) usage("--max-timeout must be > 0");
    } else if (a == "--max-mem") {
      const long mb = std::atol(next());
      if (mb <= 0) usage("--max-mem must be > 0 MiB");
      opts.maxMemoryBudgetBytes =
          static_cast<std::uint64_t>(mb) * 1024u * 1024u;
    } else if (a == "--quiet") quiet = true;
    else usage(("unknown option: " + a).c_str());
  }

  if (opts.unixSocketPath.empty() && !havePort)
    usage("need a listener: --socket PATH and/or --port N");
  if (!havePort) opts.tcpPort = -1;

  serve::VerifyServer server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  gServer = &server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  if (!quiet) {
    if (!opts.unixSocketPath.empty())
      std::printf("listening on %s\n", opts.unixSocketPath.c_str());
    if (server.tcpPort() >= 0)
      std::printf("listening on 127.0.0.1:%d\n", server.tcpPort());
    std::printf("jobs: %u, cache: %zu entries\n", opts.jobs,
                opts.cacheMaxEntries);
    std::fflush(stdout);
  }

  server.waitForShutdown();
  server.stop();
  gServer = nullptr;

  if (!quiet) {
    const serve::ResultCache::Stats cs = server.cacheStats();
    std::printf("shutdown: %llu hits, %llu misses, %llu coalesced, "
                "%llu entries\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.coalesced),
                static_cast<unsigned long long>(cs.entries));
  }
  return 0;
}
