// velev_serve — the long-lived verification daemon.
//
//   $ velev_serve --socket /tmp/velev.sock
//   $ velev_serve --port 7341 --jobs 8
//   $ velev_serve --socket /tmp/velev.sock --workers 4 --batch
//                 --cache-dir /var/cache/velev   (one line)
//
// Listens on a unix-domain socket and/or 127.0.0.1 TCP for
// newline-delimited JSON verification requests (core::VerifyRequest,
// schema v1 — see docs/SERVICE.md) and answers each with a
// core::VerifyResponse line. Results are content-address cached: identical
// requests (same cell, same options, same binary) are answered from the
// cache, and concurrent identical requests coalesce onto one running job.
//
// With --workers N the verifications run in N supervised worker PROCESSES
// (the daemon re-execs itself with --worker): a verification that crashes
// or is SIGKILLed costs one worker, the supervisor retries its in-flight
// requests on a sibling and respawns the slot. Without it, jobs run
// in-process on a work-stealing thread pool.
//
// Options:
//   --socket PATH     unix-domain listening socket (unlinked on exit)
//   --port N          TCP port on 127.0.0.1; 0 picks an ephemeral port
//                     (printed as "listening on 127.0.0.1:<port>")
//   --jobs N          in-process pool workers (default: hardware threads;
//                     unused with --workers)
//   --workers N       verification worker processes (default 0: in-process)
//   --batch           batching lane: group compatible queued requests
//                     (same cell modulo ROB size) per worker dispatch
//   --cache N         result-cache capacity in entries (default 1024)
//   --cache-dir PATH  persist the result cache as a segment journal in
//                     PATH and restore it on startup (default: memory-only)
//   --max-timeout S   admission cap: clamp every request's wall-clock
//                     budget to at most S seconds (default: uncapped)
//   --max-mem MB      admission cap: clamp every request's memory budget
//                     to at most MB MiB (default: uncapped)
//   --max-queue N     live-load admission: reject new jobs when N are
//                     already queued or running (default: unlimited)
//   --max-pending-secs S  reject new jobs when the wall budgets of queued
//                     and running jobs already sum past S (default: off)
//   --quiet           no startup/shutdown chatter on stdout
//
// Internal (spawned by the supervisor, never by hand):
//   --worker FD       run as a verification worker over socketpair FD
//   --crash-after N   worker test hook: _exit after reading N requests
//
// The VELEV_SERVE_CRASH_AFTER environment variable (fault-injection CI
// smoke) arms --crash-after on the first spawn of worker slot 0; it is
// cleared before any worker is spawned so respawns never inherit it.
//
// Control ops on any connection: {"op":"ping"}, {"op":"stats"},
// {"op":"shutdown"} (answers, then the daemon exits cleanly). SIGINT and
// SIGTERM also shut down cleanly.
//
// Exit code: 0 on a clean shutdown, 2 on usage/startup errors.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/worker.hpp"
#include "velev.hpp"

using namespace velev;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of tools/velev_serve.cpp "
                       "for usage\n",
               msg);
  std::exit(2);
}

serve::VerifyServer* gServer = nullptr;

void onSignal(int) {
  // Only flag; the main thread observes waitForShutdown() and tears down.
  if (gServer != nullptr) gServer->requestShutdown();
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode first: `velev_serve --worker FD [--crash-after N]` is the
  // supervisor re-execing this binary; nothing else applies.
  if (argc >= 2 && std::strcmp(argv[1], "--worker") == 0) {
    if (argc < 3) usage("--worker needs the socketpair fd");
    serve::WorkerOptions wopts;
    wopts.fd = std::atoi(argv[2]);
    if (wopts.fd < 0) usage("--worker fd must be >= 0");
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--crash-after") == 0 && i + 1 < argc)
        wopts.crashAfter = std::atoi(argv[++i]);
      else
        usage(("unknown worker option: " + std::string(argv[i])).c_str());
    }
    return serve::workerMain(wopts);
  }

  serve::ServerOptions opts;
  opts.jobs = ThreadPool::hardwareThreads();
  bool quiet = false;
  bool havePort = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--socket") opts.unixSocketPath = next();
    else if (a == "--port") {
      opts.tcpPort = std::atoi(next());
      havePort = true;
      if (opts.tcpPort < 0 || opts.tcpPort > 65535)
        usage("--port must be 0..65535");
    } else if (a == "--jobs") {
      opts.jobs = static_cast<unsigned>(std::atoi(next()));
      if (opts.jobs < 1) usage("--jobs must be >= 1");
    } else if (a == "--workers") {
      const int n = std::atoi(next());
      if (n < 0) usage("--workers must be >= 0");
      opts.workers = static_cast<unsigned>(n);
    } else if (a == "--batch") {
      opts.batch = true;
    } else if (a == "--cache") {
      const long n = std::atol(next());
      if (n < 1) usage("--cache must be >= 1 entries");
      opts.cacheMaxEntries = static_cast<std::size_t>(n);
    } else if (a == "--cache-dir") {
      opts.cacheDir = next();
    } else if (a == "--max-queue") {
      const long n = std::atol(next());
      if (n < 1) usage("--max-queue must be >= 1");
      opts.maxQueueDepth = static_cast<std::size_t>(n);
    } else if (a == "--max-pending-secs") {
      opts.maxPendingSeconds = std::atof(next());
      if (opts.maxPendingSeconds <= 0) usage("--max-pending-secs must be > 0");
    } else if (a == "--max-timeout") {
      opts.maxTimeoutSeconds = std::atof(next());
      if (opts.maxTimeoutSeconds <= 0) usage("--max-timeout must be > 0");
    } else if (a == "--max-mem") {
      const long mb = std::atol(next());
      if (mb <= 0) usage("--max-mem must be > 0 MiB");
      opts.maxMemoryBudgetBytes =
          static_cast<std::uint64_t>(mb) * 1024u * 1024u;
    } else if (a == "--quiet") quiet = true;
    else usage(("unknown option: " + a).c_str());
  }

  if (opts.unixSocketPath.empty() && !havePort)
    usage("need a listener: --socket PATH and/or --port N");
  if (!havePort) opts.tcpPort = -1;

  if (opts.workers > 0) {
    // The workers are this very binary; /proc/self/exe survives renames
    // and relative invocation, argv[0] is the fallback.
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
    if (n > 0) {
      exe[n] = '\0';
      opts.workerExecutable = exe;
    } else {
      opts.workerExecutable = argv[0];
    }
    // Fault-injection hook (CI smoke): armed once, then scrubbed from the
    // environment so no worker — and no respawn — re-inherits it.
    if (const char* crash = std::getenv("VELEV_SERVE_CRASH_AFTER")) {
      opts.workerCrashAfter = std::atoi(crash);
      ::unsetenv("VELEV_SERVE_CRASH_AFTER");
    }
  }

  serve::VerifyServer server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  gServer = &server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  if (!quiet) {
    if (!opts.unixSocketPath.empty())
      std::printf("listening on %s\n", opts.unixSocketPath.c_str());
    if (server.tcpPort() >= 0)
      std::printf("listening on 127.0.0.1:%d\n", server.tcpPort());
    if (opts.workers > 0)
      std::printf("workers: %u processes%s, cache: %zu entries\n",
                  opts.workers, opts.batch ? " (batching)" : "",
                  opts.cacheMaxEntries);
    else
      std::printf("jobs: %u, cache: %zu entries\n", opts.jobs,
                  opts.cacheMaxEntries);
    if (!opts.cacheDir.empty())
      std::printf("cache journal: %s\n", opts.cacheDir.c_str());
    std::fflush(stdout);
  }

  server.waitForShutdown();
  server.stop();
  gServer = nullptr;

  if (!quiet) {
    const serve::ResultCache::Stats cs = server.cacheStats();
    std::printf("shutdown: %llu hits, %llu misses, %llu coalesced, "
                "%llu entries\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.coalesced),
                static_cast<unsigned long long>(cs.entries));
  }
  return 0;
}
