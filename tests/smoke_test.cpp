// End-to-end smoke tests: small configurations verified with both
// strategies; a seeded bug must be caught.
#include <gtest/gtest.h>

#include "core/request.hpp"
#include "core/verifier.hpp"

namespace velev {
namespace {

TEST(Smoke, CorrectDesignRewriteStrategy) {
  core::VerifyRequest req;
  req.robSize = 3;
  req.issueWidth = 2;
  req.strategy = core::Strategy::RewritingPlusPositiveEquality;
  const auto rep = core::verify(req);
  EXPECT_EQ(rep.verdict(), core::Verdict::Correct) << rep.outcome.reason
      << " (slice " << rep.outcome.failedSlice << ")";
  EXPECT_EQ(rep.evcStats.eijVars, 0u);
}

TEST(Smoke, CorrectDesignPositiveEqualityOnly) {
  core::VerifyRequest req;
  req.robSize = 3;
  req.issueWidth = 2;
  req.strategy = core::Strategy::PositiveEqualityOnly;
  const auto rep = core::verify(req);
  EXPECT_EQ(rep.verdict(), core::Verdict::Correct);
}

TEST(Smoke, BuggyForwardingIsCaught) {
  core::VerifyRequest req;
  req.robSize = 4;
  req.issueWidth = 2;
  req.bug = {models::BugKind::ForwardingWrongOperand, 3};
  req.strategy = core::Strategy::RewritingPlusPositiveEquality;
  const auto rep = core::verify(req);
  EXPECT_EQ(rep.verdict(), core::Verdict::RewriteMismatch);
  EXPECT_EQ(rep.outcome.failedSlice, 3u);
}

}  // namespace
}  // namespace velev
