// End-to-end smoke tests: small configurations verified with both
// strategies; a seeded bug must be caught.
#include <gtest/gtest.h>

#include "core/verifier.hpp"

namespace velev {
namespace {

TEST(Smoke, CorrectDesignRewriteStrategy) {
  models::OoOConfig cfg{.robSize = 3, .issueWidth = 2};
  core::VerifyOptions opts;
  opts.strategy = core::Strategy::RewritingPlusPositiveEquality;
  const auto rep = core::verify(cfg, {}, opts);
  EXPECT_EQ(rep.verdict(), core::Verdict::Correct) << rep.outcome.reason
      << " (slice " << rep.outcome.failedSlice << ")";
  EXPECT_EQ(rep.evcStats.eijVars, 0u);
}

TEST(Smoke, CorrectDesignPositiveEqualityOnly) {
  models::OoOConfig cfg{.robSize = 3, .issueWidth = 2};
  core::VerifyOptions opts;
  opts.strategy = core::Strategy::PositiveEqualityOnly;
  const auto rep = core::verify(cfg, {}, opts);
  EXPECT_EQ(rep.verdict(), core::Verdict::Correct);
}

TEST(Smoke, BuggyForwardingIsCaught) {
  models::OoOConfig cfg{.robSize = 4, .issueWidth = 2};
  models::BugSpec bug{models::BugKind::ForwardingWrongOperand, 3};
  core::VerifyOptions opts;
  opts.strategy = core::Strategy::RewritingPlusPositiveEquality;
  const auto rep = core::verify(cfg, bug, opts);
  EXPECT_EQ(rep.verdict(), core::Verdict::RewriteMismatch);
  EXPECT_EQ(rep.outcome.failedSlice, 3u);
}

}  // namespace
}  // namespace velev
