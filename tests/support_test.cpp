#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/check.hpp"
#include "support/hash.hpp"
#include "support/interner.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace velev {
namespace {

TEST(Hash, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Hash, CombineIsOrderSensitive) {
  EXPECT_NE(hashCombine(hashCombine(0, 1), 2),
            hashCombine(hashCombine(0, 2), 1));
}

TEST(Hash, ValuesDistinguishLengths) {
  EXPECT_NE(hashValues({1}), hashValues({1, 0}));
  EXPECT_NE(hashValues({}), hashValues({0}));
}

TEST(Hash, NoTrivialCollisionsInSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowIsInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive) {
  Rng r(2);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, CoinIsRoughlyFair) {
  Rng r(3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.coin();
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(Rng, UnitIsInHalfOpenInterval) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Interner, SameStringSameId) {
  StringInterner in;
  EXPECT_EQ(in.intern("abc"), in.intern("abc"));
  EXPECT_NE(in.intern("abc"), in.intern("abd"));
}

TEST(Interner, RoundTrip) {
  StringInterner in;
  const auto id = in.intern("RegFile");
  EXPECT_EQ(in.str(id), "RegFile");
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, FindDoesNotInsert) {
  StringInterner in;
  EXPECT_EQ(in.find("missing"), StringInterner::kInvalid);
  EXPECT_EQ(in.size(), 0u);
}

TEST(Interner, ManyStringsStayStable) {
  StringInterner in;
  std::vector<StringInterner::Id> ids;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(in.intern("s" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i)
    EXPECT_EQ(in.str(ids[i]), "s" + std::to_string(i));
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
  t.reset();
  EXPECT_LT(t.milliseconds(), 15.0);
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(VELEV_CHECK(1 == 2), InternalError);
  EXPECT_NO_THROW(VELEV_CHECK(1 == 1));
}

TEST(Check, MessageIncludesDetail) {
  try {
    VELEV_CHECK_MSG(false, "slice " << 72);
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("slice 72"), std::string::npos);
  }
}

}  // namespace
}  // namespace velev
