// Tests for the propositional AIG layer and Tseitin CNF translation.
#include <gtest/gtest.h>

#include <sstream>

#include "prop/cnf.hpp"
#include "prop/prop.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace velev::prop {
namespace {

TEST(Prop, ConstantsAndNegation) {
  EXPECT_EQ(negate(kFalse), kTrue);
  EXPECT_EQ(negate(kTrue), kFalse);
  PropCtx cx;
  const PLit a = cx.mkVar();
  EXPECT_EQ(cx.mkNot(cx.mkNot(a)), a);
}

TEST(Prop, AndFolding) {
  PropCtx cx;
  const PLit a = cx.mkVar(), b = cx.mkVar();
  EXPECT_EQ(cx.mkAnd(kTrue, a), a);
  EXPECT_EQ(cx.mkAnd(kFalse, a), kFalse);
  EXPECT_EQ(cx.mkAnd(a, a), a);
  EXPECT_EQ(cx.mkAnd(a, negate(a)), kFalse);
  EXPECT_EQ(cx.mkAnd(a, b), cx.mkAnd(b, a));  // hash-consed commutativity
}

TEST(Prop, OrViaDeMorgan) {
  PropCtx cx;
  const PLit a = cx.mkVar(), b = cx.mkVar();
  EXPECT_EQ(cx.mkOr(a, kTrue), kTrue);
  EXPECT_EQ(cx.mkOr(a, kFalse), a);
  EXPECT_EQ(cx.mkOr(a, negate(a)), kTrue);
  // eval semantics checked below; structurally Or = !(And(!a,!b)).
  EXPECT_EQ(cx.mkOr(a, b), negate(cx.mkAnd(negate(a), negate(b))));
}

TEST(Prop, NegationNormalizesToComplementBits) {
  PropCtx cx;
  const PLit a = cx.mkVar(), b = cx.mkVar();
  const PLit f = cx.mkAnd(a, b);
  // Negation is a bit flip, never a node: same node, flipped polarity, and
  // the double negation is the identity on AND nodes too.
  EXPECT_EQ(nodeOf(negate(f)), nodeOf(f));
  EXPECT_NE(isNegated(negate(f)), isNegated(f));
  EXPECT_EQ(negate(negate(f)), f);
  const std::uint32_t nodesBefore = cx.numNodes();
  EXPECT_EQ(cx.mkNot(f), negate(f));
  EXPECT_EQ(cx.numNodes(), nodesBefore);  // mkNot allocated nothing
}

TEST(Prop, AndChainOperandOrderIsCanonical) {
  PropCtx cx;
  const PLit a = cx.mkVar(), b = cx.mkVar(), c = cx.mkVar(), d = cx.mkVar();
  // Operand order is normalized per node, so the same left-fold chain is
  // the identical literal no matter how each step's operands are written.
  const PLit chain = cx.mkAnd(cx.mkAnd(cx.mkAnd(a, b), c), d);
  EXPECT_EQ(chain, cx.mkAnd(d, cx.mkAnd(c, cx.mkAnd(b, a))));
  const PLit ls[] = {a, b, c, d};
  EXPECT_EQ(chain, cx.mkAndN(ls));
  // Associativity is *not* normalized — an AIG keeps the tree shape — but
  // the two shapes must still be semantically equal.
  const PLit tree = cx.mkAnd(cx.mkAnd(a, b), cx.mkAnd(c, d));
  EXPECT_NE(chain, tree);
  for (int m = 0; m < 16; ++m) {
    const std::vector<bool> as = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0,
                                  (m & 8) != 0};
    EXPECT_EQ(cx.eval(chain, as), cx.eval(tree, as)) << "minterm " << m;
  }
}

TEST(Prop, SharedSubgraphsAreOneNode) {
  PropCtx cx;
  const PLit a = cx.mkVar(), b = cx.mkVar(), c = cx.mkVar(), d = cx.mkVar();
  const PLit ab = cx.mkAnd(a, b);
  // Two formulas over the same subterm share it physically: building them
  // allocates only their own top nodes.
  const std::uint32_t nodesBefore = cx.numNodes();
  const PLit f = cx.mkOr(ab, c);
  const PLit g = cx.mkAnd(ab, d);
  EXPECT_EQ(cx.numNodes(), nodesBefore + 2);
  // Rebuilding either from scratch allocates nothing at all.
  const std::uint32_t nodesAfter = cx.numNodes();
  EXPECT_EQ(cx.mkOr(cx.mkAnd(a, b), c), f);
  EXPECT_EQ(cx.mkAnd(cx.mkAnd(b, a), d), g);
  EXPECT_EQ(cx.numNodes(), nodesAfter);
}

TEST(Prop, EvalTruthTables) {
  PropCtx cx;
  const PLit a = cx.mkVar(), b = cx.mkVar(), c = cx.mkVar();
  const PLit ite = cx.mkIte(a, b, c);
  const PLit x = cx.mkXor(a, b);
  const PLit iff = cx.mkIff(a, b);
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> as = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    EXPECT_EQ(cx.eval(cx.mkAnd(a, b), as), as[0] && as[1]);
    EXPECT_EQ(cx.eval(cx.mkOr(a, b), as), as[0] || as[1]);
    EXPECT_EQ(cx.eval(ite, as), as[0] ? as[1] : as[2]);
    EXPECT_EQ(cx.eval(x, as), as[0] != as[1]);
    EXPECT_EQ(cx.eval(iff, as), as[0] == as[1]);
    EXPECT_EQ(cx.eval(cx.mkImplies(a, b), as), !as[0] || as[1]);
  }
}

TEST(Prop, AndNOrN) {
  PropCtx cx;
  std::vector<PLit> lits = {cx.mkVar(), cx.mkVar(), cx.mkVar()};
  const PLit all = cx.mkAndN(lits);
  const PLit any = cx.mkOrN(lits);
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> as = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    EXPECT_EQ(cx.eval(all, as), as[0] && as[1] && as[2]);
    EXPECT_EQ(cx.eval(any, as), as[0] || as[1] || as[2]);
  }
}

TEST(Cnf, TrivialCases) {
  PropCtx cx;
  Cnf sat = tseitin(cx, kTrue, false);
  EXPECT_TRUE(sat.clauses.empty());
  Cnf unsat = tseitin(cx, kFalse, false);
  ASSERT_EQ(unsat.numClauses(), 1u);
  EXPECT_TRUE(unsat.clauses[0].empty());
  Cnf negated = tseitin(cx, kTrue, true);
  ASSERT_EQ(negated.numClauses(), 1u);
}

TEST(Cnf, InputVariablesKeepIndices) {
  PropCtx cx;
  const PLit a = cx.mkVar(), b = cx.mkVar();
  const Cnf cnf = tseitin(cx, cx.mkAnd(a, b), false);
  // Vars 1 and 2 are the inputs; one auxiliary for the AND node.
  EXPECT_EQ(cnf.numVars, 3u);
  EXPECT_EQ(cnf.numClauses(), 4u);  // 3 Tseitin + 1 root unit
}

// Brute-force satisfiability of a CNF restricted to <= 20 variables.
bool bruteForceSat(const Cnf& cnf) {
  for (std::uint64_t m = 0; m < (1ull << cnf.numVars); ++m) {
    bool ok = true;
    for (const auto& c : cnf.clauses) {
      bool cs = false;
      for (CnfLit l : c) {
        const unsigned v = static_cast<unsigned>(std::abs(l)) - 1;
        if ((l > 0) == (((m >> v) & 1) != 0)) {
          cs = true;
          break;
        }
      }
      if (!cs) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

// Evaluate an AIG literal for all input assignments and compare with the
// Tseitin CNF's satisfiability restricted to that assignment: equisat check.
class TseitinProperty : public ::testing::TestWithParam<int> {};

TEST_P(TseitinProperty, RandomFormulaEquisat) {
  Rng rng(GetParam() * 977 + 13);
  PropCtx cx;
  const unsigned nvars = 3 + rng.below(3);
  std::vector<PLit> pool;
  for (unsigned i = 0; i < nvars; ++i) pool.push_back(cx.mkVar());
  // Grow random subformulas.
  for (int i = 0; i < 25; ++i) {
    const PLit a = pool[rng.below(pool.size())];
    const PLit b = pool[rng.below(pool.size())];
    PLit r;
    switch (rng.below(4)) {
      case 0: r = cx.mkAnd(a, b); break;
      case 1: r = cx.mkOr(a, b); break;
      case 2: r = cx.mkXor(a, b); break;
      default: r = cx.mkIte(a, b, pool[rng.below(pool.size())]); break;
    }
    if (rng.coin()) r = negate(r);
    pool.push_back(r);
  }
  const PLit root = pool.back();
  // AIG truth: root satisfiable iff true under some assignment.
  bool aigSat = false;
  for (std::uint64_t m = 0; m < (1ull << nvars); ++m) {
    std::vector<bool> as(nvars);
    for (unsigned v = 0; v < nvars; ++v) as[v] = ((m >> v) & 1) != 0;
    if (cx.eval(root, as)) {
      aigSat = true;
      break;
    }
  }
  const Cnf cnf = tseitin(cx, root, false);
  if (cnf.numVars <= 18)
    EXPECT_EQ(bruteForceSat(cnf), aigSat);
  EXPECT_EQ(sat::solveCnf(cnf) == sat::Result::Sat, aigSat);
  // And the negation is satisfiable iff the formula is not a tautology.
  bool aigTaut = true;
  for (std::uint64_t m = 0; m < (1ull << nvars); ++m) {
    std::vector<bool> as(nvars);
    for (unsigned v = 0; v < nvars; ++v) as[v] = ((m >> v) & 1) != 0;
    if (!cx.eval(root, as)) {
      aigTaut = false;
      break;
    }
  }
  const Cnf neg = tseitin(cx, root, true);
  if (neg.numVars <= 18)
    EXPECT_EQ(bruteForceSat(neg), !aigTaut);
  EXPECT_EQ(sat::solveCnf(neg) == sat::Result::Sat, !aigTaut);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TseitinProperty, ::testing::Range(0, 40));

TEST(Cnf, DimacsRoundTrip) {
  Cnf cnf;
  cnf.numVars = 4;
  cnf.addClause({1, -2, 3});
  cnf.addClause({-4});
  cnf.addClause({2, 4});
  std::stringstream ss;
  writeDimacs(cnf, ss);
  const Cnf back = parseDimacs(ss);
  EXPECT_EQ(back.numVars, cnf.numVars);
  ASSERT_EQ(back.numClauses(), cnf.numClauses());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
    EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
}

TEST(Cnf, DimacsRejectsGarbage) {
  std::stringstream ss("p cnf 2 1\n1 5 0\n");
  EXPECT_THROW(parseDimacs(ss), InternalError);
  std::stringstream ss2("1 2 0\n");
  EXPECT_THROW(parseDimacs(ss2), InternalError);
}

TEST(Cnf, LiteralCount) {
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({1, 2});
  cnf.addClause({-3});
  EXPECT_EQ(cnf.numLiterals(), 3u);
}

}  // namespace
}  // namespace velev::prop
