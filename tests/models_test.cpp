// Tests for the processor models: structural properties of the generated
// netlists, the semantics of the abstract out-of-order core, and — most
// importantly — concrete co-simulation: under random finite interpretations
// of the uninterpreted functions, one regular cycle plus flushing of the
// implementation must produce the same architectural state as running the
// specification for (number of fetched instructions) steps from the flushed
// initial state. This validates the Burch–Dill diagram at the semantic
// level, independent of the translation pipeline.
#include <gtest/gtest.h>

#include "core/diagram.hpp"
#include "eufm/eval.hpp"
#include "models/ooo.hpp"
#include "models/spec.hpp"
#include "support/rng.hpp"

namespace velev::models {
namespace {

using eufm::Context;
using eufm::Expr;

TEST(Models, ConfigValidation) {
  Context cx;
  const Isa isa = Isa::declare(cx);
  EXPECT_THROW(buildOoO(cx, isa, {2, 3}), InternalError);  // k > N
  EXPECT_THROW(buildOoO(cx, isa, {4, 0}), InternalError);  // k = 0
  EXPECT_NO_THROW(buildOoO(cx, isa, {4, 4}));
}

TEST(Models, BugSiteValidation) {
  // A silently ignored bug injection would make "verified correct"
  // meaningless — out-of-range sites must be rejected.
  Context cx;
  const Isa isa = Isa::declare(cx);
  EXPECT_THROW(buildOoO(cx, isa, {4, 2},
                        {BugKind::ForwardingWrongOperand, 0}),
               InternalError);
  EXPECT_THROW(buildOoO(cx, isa, {4, 2},
                        {BugKind::ForwardingWrongOperand, 5}),
               InternalError);
  // Retire bugs only exist within the retire width.
  EXPECT_THROW(buildOoO(cx, isa, {4, 2},
                        {BugKind::RetireIgnoresValidResult, 3}),
               InternalError);
  // Completion bugs may target the extra (newly-fetched) entries too.
  EXPECT_NO_THROW(
      buildOoO(cx, isa, {4, 2}, {BugKind::CompletionSkipsWrite, 6}));
  EXPECT_THROW(buildOoO(cx, isa, {4, 2},
                        {BugKind::CompletionSkipsWrite, 7}),
               InternalError);
}

TEST(Models, BugIndexLimitMatchesBuildAcceptanceForEveryKind) {
  // bugIndexLimit() is the fuzz generator's (and the corpus loader's)
  // contract with buildOoO: index `limit` builds, `limit + 1` throws —
  // for every kind a fuzz case can carry.
  const OoOConfig cfg{4, 2};
  for (const BugKind kind :
       {BugKind::ForwardingWrongOperand, BugKind::ForwardingStaleResult,
        BugKind::RetireIgnoresValidResult, BugKind::AluWrongOpcode,
        BugKind::CompletionSkipsWrite}) {
    const unsigned limit = bugIndexLimit(kind, cfg);
    ASSERT_GE(limit, 1u) << bugKindName(kind);
    Context cx;
    const Isa isa = Isa::declare(cx);
    EXPECT_NO_THROW(buildOoO(cx, isa, cfg, {kind, limit}))
        << bugKindName(kind);
    EXPECT_THROW(buildOoO(cx, isa, cfg, {kind, limit + 1}), InternalError)
        << bugKindName(kind);
  }
  // The expected per-kind shapes: retire bugs live in the retire width,
  // completion bugs reach the newly fetched entries, the rest span the ROB.
  EXPECT_EQ(bugIndexLimit(BugKind::RetireIgnoresValidResult, cfg), 2u);
  EXPECT_EQ(bugIndexLimit(BugKind::CompletionSkipsWrite, cfg), 6u);
  EXPECT_EQ(bugIndexLimit(BugKind::AluWrongOpcode, cfg), 4u);
  EXPECT_EQ(bugIndexLimit(BugKind::ForwardingWrongOperand, cfg), 4u);
  EXPECT_EQ(bugIndexLimit(BugKind::ForwardingStaleResult, cfg), 4u);
  EXPECT_EQ(bugIndexLimit(BugKind::None, cfg), 0u);
}

TEST(Models, EntryCountsMatchConfig) {
  Context cx;
  const Isa isa = Isa::declare(cx);
  auto p = buildOoO(cx, isa, {5, 3});
  EXPECT_EQ(p->valid.size(), 8u);  // N + k
  EXPECT_EQ(p->done.size(), 8u);
  EXPECT_EQ(p->retire.size(), 3u);
  EXPECT_EQ(p->exec.size(), 5u);
  EXPECT_EQ(p->fetch.size(), 3u);
  EXPECT_EQ(p->init.valid.size(), 5u);
  EXPECT_EQ(p->init.ndFetch.size(), 3u);
  EXPECT_EQ(p->flushCycles(), 8u);
}

TEST(Models, ExtraEntriesStartInvalid) {
  Context cx;
  const Isa isa = Isa::declare(cx);
  auto p = buildOoO(cx, isa, {3, 2});
  for (unsigned j = 3; j < 5; ++j)
    EXPECT_EQ(p->netlist.signal(p->valid[j]).fixed, cx.mkFalse());
  for (unsigned i = 0; i < 3; ++i)
    EXPECT_EQ(p->netlist.signal(p->valid[i]).fixed,
              cx.boolVar("Valid_" + std::to_string(i + 1) + "_0"));
}

TEST(Models, SharedIsaSymbolsAreConsistent) {
  Context cx;
  const Isa a = Isa::declare(cx);
  const Isa b = Isa::declare(cx);
  EXPECT_EQ(a.alu, b.alu);
  EXPECT_EQ(a.imem, b.imem);
}

// ---- concrete co-simulation -------------------------------------------------

struct CoSimParam {
  unsigned n, k;
  std::uint64_t seed;
};

class CoSimulation : public ::testing::TestWithParam<CoSimParam> {};

TEST_P(CoSimulation, ImplMatchesSpecUnderRandomInterpretation) {
  const auto [n, k, seed] = GetParam();
  Context cx;
  const Isa isa = Isa::declare(cx);
  auto impl = buildOoO(cx, isa, {n, k});
  auto spec = buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);

  // Correctness must evaluate to true under any interpretation; use small
  // domains to exercise register aliasing.
  for (std::uint64_t domain : {2ull, 3ull, 8ull}) {
    eufm::Interp in(seed * 17 + domain, domain);
    eufm::Evaluator ev(cx, in);
    EXPECT_TRUE(ev.evalFormula(d.correctness))
        << "n=" << n << " k=" << k << " seed=" << seed
        << " domain=" << domain;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoSimulation,
    ::testing::Values(CoSimParam{1, 1, 0}, CoSimParam{1, 1, 1},
                      CoSimParam{2, 1, 2}, CoSimParam{2, 2, 3},
                      CoSimParam{2, 2, 4}, CoSimParam{3, 1, 5},
                      CoSimParam{3, 2, 6}, CoSimParam{3, 3, 7},
                      CoSimParam{4, 2, 8}, CoSimParam{4, 4, 9},
                      CoSimParam{5, 2, 10}, CoSimParam{6, 3, 11}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k) + "s" +
             std::to_string(info.param.seed);
    });

// Directed co-simulation: pin the non-deterministic controls so that
// specific scenarios are exercised (nothing fetched; everything fetched;
// nothing executes; everything ready executes).
class DirectedCoSim : public ::testing::TestWithParam<int> {};

TEST_P(DirectedCoSim, PinnedSchedules) {
  const int scenario = GetParam();
  Context cx;
  const Isa isa = Isa::declare(cx);
  const unsigned n = 3, k = 2;
  auto impl = buildOoO(cx, isa, {n, k});
  auto spec = buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);

  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    eufm::Interp in(seed, 3);
    for (unsigned i = 0; i < n; ++i)
      in.setBool(impl->init.ndExecute[i], scenario == 1 || scenario == 3);
    for (unsigned j = 0; j < k; ++j)
      in.setBool(impl->init.ndFetch[j], scenario == 2 || scenario == 3);
    eufm::Evaluator ev(cx, in);
    EXPECT_TRUE(ev.evalFormula(d.correctness))
        << "scenario=" << scenario << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, DirectedCoSim, ::testing::Range(0, 4));

// Buggy models must be observably wrong: for each bug kind there must exist
// an interpretation (over many seeds, with all controls enabled) where the
// correctness formula evaluates to false.
class BuggyCoSim : public ::testing::TestWithParam<BugKind> {};

TEST_P(BuggyCoSim, BugIsSemanticallySignificant) {
  const BugKind kind = GetParam();
  Context cx;
  const Isa isa = Isa::declare(cx);
  const unsigned n = 3, k = 2;
  const unsigned index = kind == BugKind::RetireIgnoresValidResult ? 2 : 3;
  auto impl = buildOoO(cx, isa, {n, k}, {kind, index});
  auto spec = buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);

  bool falsified = false;
  for (std::uint64_t seed = 0; seed < 400 && !falsified; ++seed) {
    eufm::Interp in(seed, 2);  // tiny domain maximizes aliasing
    for (unsigned i = 0; i < n; ++i)
      in.setBool(impl->init.ndExecute[i], true);
    eufm::Evaluator ev(cx, in);
    falsified = !ev.evalFormula(d.correctness);
  }
  EXPECT_TRUE(falsified) << "bug kind " << static_cast<int>(kind)
                         << " was never observable";
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BuggyCoSim,
    ::testing::Values(BugKind::ForwardingWrongOperand,
                      BugKind::ForwardingStaleResult,
                      BugKind::RetireIgnoresValidResult,
                      BugKind::AluWrongOpcode));

TEST(Models, CompletionBugIsInvisibleToTheSafetyCriterion) {
  // A skipped completion-function write affects the abstraction function on
  // BOTH sides of the commutative diagram identically (the specification
  // side flushes the initial state through the same buggy completion
  // logic), so the Burch–Dill safety criterion remains valid. The rewriting
  // engine still reports the malformed slice (see rewrite_test); here we
  // document the semantic fact.
  Context cx;
  const Isa isa = Isa::declare(cx);
  auto impl = buildOoO(cx, isa, {3, 2}, {BugKind::CompletionSkipsWrite, 3});
  auto spec = buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    eufm::Interp in(seed, 2);
    eufm::Evaluator ev(cx, in);
    EXPECT_TRUE(ev.evalFormula(d.correctness)) << "seed " << seed;
  }
}

TEST(Models, CorrectDesignHasNoneBugEquivalence) {
  // BugKind::None with any index equals the default-built design.
  Context cx;
  const Isa isa = Isa::declare(cx);
  auto a = buildOoO(cx, isa, {3, 2});
  auto b = buildOoO(cx, isa, {3, 2}, {BugKind::None, 7});
  EXPECT_EQ(a->netlist.numSignals(), b->netlist.numSignals());
}

TEST(Models, SpecStepStructure) {
  Context cx;
  const Isa isa = Isa::declare(cx);
  auto spec = buildSpec(cx, isa);
  tlsim::Simulator sim(spec->netlist);
  const Expr pc0 = sim.state(spec->pc);
  sim.step();
  EXPECT_EQ(sim.state(spec->pc), cx.apply(isa.nextPc, {pc0}));
}

TEST(Models, DiagramPcShapes) {
  Context cx;
  const Isa isa = Isa::declare(cx);
  auto impl = buildOoO(cx, isa, {2, 2});
  auto spec = buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  // Flushing never changes the PC: spec side m=0 is the initial PC.
  EXPECT_EQ(d.specPc[0], cx.termVar("PC_0"));
  EXPECT_EQ(d.specPc[1], cx.apply(isa.nextPc, {d.specPc[0]}));
  EXPECT_EQ(d.specPc[2], cx.apply(isa.nextPc, {d.specPc[1]}));
  EXPECT_EQ(d.specPc.size(), 3u);
  EXPECT_EQ(d.specRegFile.size(), 3u);
}

// ---- name-registry round trip ----------------------------------------------
// Every BugKind must round-trip through the support/names.hpp registry; an
// enumerator added without a table entry fails here.

class BugKindNames : public ::testing::TestWithParam<BugKind> {};
TEST_P(BugKindNames, RoundTrips) {
  const char* name = names::nameOf(GetParam());
  EXPECT_STRNE(name, "unknown");
  const auto back = names::fromName<BugKind>(name);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, GetParam());
  EXPECT_STREQ(bugKindName(GetParam()), name);  // legacy wrapper agrees
  EXPECT_EQ(bugKindFromName(name), GetParam());
}
INSTANTIATE_TEST_SUITE_P(Registry, BugKindNames,
                         ::testing::ValuesIn(names::valuesOf<BugKind>()),
                         [](const auto& info) {
                           return std::to_string(info.index);
                         });

}  // namespace
}  // namespace velev::models
