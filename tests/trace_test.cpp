// Tests for the tracing/metrics subsystem (support/trace) and the JSON
// reader that round-trips its artifacts (support/json): span nesting,
// thread interleaving under concurrent attachment, counter-merge rules,
// Chrome-trace validity, and the versioned manifest schema. The final
// integration test drives core::verify() under a Collector and checks the
// paper-aligned counter block comes out populated.
#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/request.hpp"
#include "core/verifier.hpp"
#include "support/json.hpp"

namespace velev {
namespace {

using trace::Collector;
using trace::Use;

TEST(Trace, OffByDefaultAndZeroCost) {
  EXPECT_EQ(trace::active(), nullptr);
  // With no collector attached, spans and counters are inert no-ops.
  {
    TRACE_SPAN("nobody.listens");
    TRACE_COUNTER("nobody.counts", 42);
  }
  EXPECT_EQ(trace::active(), nullptr);
}

TEST(Trace, UseAttachesAndRestores) {
  Collector c;
  EXPECT_EQ(trace::active(), nullptr);
  {
    Use use(&c);
    EXPECT_EQ(trace::active(), &c);
    {
      Collector inner;
      Use nested(&inner);
      EXPECT_EQ(trace::active(), &inner);
    }
    EXPECT_EQ(trace::active(), &c);
  }
  EXPECT_EQ(trace::active(), nullptr);
}

TEST(Trace, NullCollectorUseIsNoop) {
  Use use(nullptr);
  EXPECT_EQ(trace::active(), nullptr);
}

TEST(Trace, SpansRecordNestingDepth) {
  Collector c;
  {
    Use use(&c);
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("middle");
      { TRACE_SPAN("inner"); }
    }
    { TRACE_SPAN("middle2"); }
  }
  const std::vector<trace::SpanEvent> spans = c.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Spans close innermost-first; names are the static strings we passed.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_STREQ(spans[1].name, "middle");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_STREQ(spans[2].name, "middle2");
  EXPECT_EQ(spans[2].depth, 1u);
  EXPECT_STREQ(spans[3].name, "outer");
  EXPECT_EQ(spans[3].depth, 0u);
  // Containment: outer spans cover their children.
  EXPECT_LE(spans[3].startUs, spans[0].startUs);
  EXPECT_GE(spans[3].startUs + spans[3].durUs,
            spans[0].startUs + spans[0].durUs);
}

TEST(Trace, ReattachingSameCollectorKeepsThreadIdentity) {
  Collector c;
  Use outer(&c);
  TRACE_SPAN("parent");
  {
    // The k=1 portfolio path: re-attach the already-active collector on the
    // same thread. Nesting must continue, not restart on a fresh tid.
    Use inner(&c);
    TRACE_SPAN("child");
  }
  const auto spans = c.spans();
  ASSERT_EQ(spans.size(), 1u);  // "parent" still open; only "child" closed
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(c.threadsSeen(), 1u);
}

TEST(Trace, ThreadsInterleaveIntoOneCollector) {
  Collector c;
  constexpr int kSpansPerThread = 50;
  auto work = [&c] {
    Use use(&c);
    for (int i = 0; i < kSpansPerThread; ++i) {
      TRACE_SPAN("thread.work");
      TRACE_COUNTER("thread.iterations", 1);
    }
  };
  std::thread a(work), b(work);
  a.join();
  b.join();
  EXPECT_EQ(c.threadsSeen(), 2u);
  const auto spans = c.spans();
  ASSERT_EQ(spans.size(), 2u * kSpansPerThread);
  // Every span carries one of the two registered tids and depth 0.
  for (const trace::SpanEvent& s : spans) {
    EXPECT_LT(s.tid, 2u);
    EXPECT_EQ(s.depth, 0u);
  }
  EXPECT_EQ(c.counter("thread.iterations"), 2u * kSpansPerThread);
}

TEST(Trace, CounterMergeRules) {
  Collector c;
  c.addCounter("acc", 3);
  c.addCounter("acc", 4);
  EXPECT_EQ(c.counter("acc"), 7u);

  c.setCounter("gauge", 10);
  c.setCounter("gauge", 5);  // last writer wins
  EXPECT_EQ(c.counter("gauge"), 5u);

  c.maxCounter("peak", 10);
  c.maxCounter("peak", 5);  // keeps the high-water mark
  c.maxCounter("peak", 12);
  EXPECT_EQ(c.counter("peak"), 12u);

  EXPECT_EQ(c.counter("never-written"), 0u);
  EXPECT_EQ(c.counters().size(), 3u);
}

TEST(Trace, ChromeTraceIsValidJson) {
  Collector c;
  {
    Use use(&c);
    TRACE_SPAN("stage.a");
    { TRACE_SPAN("stage.b"); }
    TRACE_COUNTER("things", 7);
  }
  std::ostringstream os;
  c.writeChromeTrace(os);

  std::string err;
  const auto doc = parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());
  // process_name metadata + 1 thread_name + 2 "X" spans + 1 "C" counter.
  EXPECT_EQ(events->array.size(), 5u);
  unsigned complete = 0, counterSamples = 0, metadata = 0;
  for (const JsonValue& e : events->array) {
    const std::string_view ph = e.stringAt("ph");
    if (ph == "X") {
      ++complete;
      EXPECT_TRUE(e.find("ts") != nullptr && e.find("dur") != nullptr &&
                  e.find("pid") != nullptr && e.find("tid") != nullptr);
    } else if (ph == "C") {
      ++counterSamples;
      EXPECT_EQ(e.stringAt("name"), "things");
      EXPECT_EQ(e.find("args")->uintAt("value"), 7u);
    } else {
      EXPECT_EQ(ph, "M");
      ++metadata;
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(counterSamples, 1u);
  EXPECT_EQ(metadata, 2u);
}

TEST(Trace, StageTreeMentionsEverySpanAndCounter) {
  Collector c;
  {
    Use use(&c);
    TRACE_SPAN("alpha");
    { TRACE_SPAN("beta"); }
    TRACE_COUNTER("gamma.count", 9);
  }
  std::ostringstream os;
  c.writeStageTree(os);
  const std::string tree = os.str();
  EXPECT_NE(tree.find("alpha"), std::string::npos) << tree;
  EXPECT_NE(tree.find("beta"), std::string::npos) << tree;
  EXPECT_NE(tree.find("gamma.count"), std::string::npos) << tree;
}

TEST(Trace, ManifestRoundTripsThroughParser) {
  Collector c;
  c.setCounter("live.counter", 11);
  c.setCounter("shared.name", 1);  // must lose to the explicit value below
  {
    Use use(&c);
    TRACE_SPAN("one.span");
  }

  trace::ManifestData m;
  m.tool = "trace_test";
  m.config.emplace_back("rob_size", "8");       // numeric-looking: number
  m.config.emplace_back("strategy", "rw+pe");   // not numeric: string
  m.budgetWallSeconds = 1.5;
  m.budgetMemoryBytes = 1024;
  m.budgetSatConflicts = -1;
  m.verdict = "correct";
  m.reason = "because \"quoted\"\n";
  m.stageSeconds = {{"sim", 0.25}, {"sat", 0.75}};
  m.peakArenaBytes = 4096;
  m.rssHighWaterKb = 100;
  m.counters = {{"explicit.counter", 3}, {"shared.name", 2}};

  std::ostringstream os;
  trace::writeManifest(os, m, &c);

  std::string err;
  const auto doc = parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err << "\n" << os.str();
  EXPECT_EQ(doc->uintAt("schema_version"),
            static_cast<std::uint64_t>(trace::kManifestSchemaVersion));
  EXPECT_EQ(doc->stringAt("tool"), "trace_test");
  EXPECT_FALSE(doc->stringAt("git_describe").empty());
  EXPECT_EQ(doc->stringAt("verdict"), "correct");
  EXPECT_EQ(doc->stringAt("reason"), "because \"quoted\"\n");

  const JsonValue* config = doc->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_TRUE(config->find("rob_size")->isNumber());
  EXPECT_EQ(config->uintAt("rob_size"), 8u);
  EXPECT_EQ(config->stringAt("strategy"), "rw+pe");

  const JsonValue* budget = doc->find("budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_DOUBLE_EQ(budget->numberAt("wall_seconds"), 1.5);
  EXPECT_EQ(budget->numberAt("sat_conflicts"), -1.0);

  const JsonValue* stages = doc->find("stage_seconds");
  ASSERT_NE(stages, nullptr);
  EXPECT_DOUBLE_EQ(stages->numberAt("sim"), 0.25);

  EXPECT_EQ(doc->uintAt("traced_threads"), 1u);

  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->uintAt("live.counter"), 11u);     // from the collector
  EXPECT_EQ(counters->uintAt("explicit.counter"), 3u);  // from the data
  EXPECT_EQ(counters->uintAt("shared.name"), 2u);       // explicit wins
}

TEST(Trace, ManifestWithoutCollectorOmitsTracedThreads) {
  trace::ManifestData m;
  m.tool = "bench";
  m.verdict = "correct";
  std::ostringstream os;
  trace::writeManifest(os, m, nullptr);
  const auto doc = parseJson(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("traced_threads"), nullptr);
  EXPECT_EQ(doc->find("reason"), nullptr);  // empty reason omitted
}

// ---- the JSON reader itself -------------------------------------------------

TEST(JsonParser, ParsesScalarsAndEscapes) {
  const auto doc = parseJson(
      R"({"s": "a\"b\\c\nA", "n": -1.5e2, "t": true, "f": false,
          "z": null, "arr": [1, 2, 3], "empty": {}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->stringAt("s"), "a\"b\\c\nA");
  EXPECT_DOUBLE_EQ(doc->numberAt("n"), -150.0);
  EXPECT_TRUE(doc->find("t")->isBool() && doc->find("t")->boolean);
  EXPECT_TRUE(doc->find("f")->isBool() && !doc->find("f")->boolean);
  EXPECT_TRUE(doc->find("z")->isNull());
  ASSERT_TRUE(doc->find("arr")->isArray());
  EXPECT_EQ(doc->find("arr")->array.size(), 3u);
  EXPECT_TRUE(doc->find("empty")->isObject());
  EXPECT_TRUE(doc->find("empty")->object.empty());
}

TEST(JsonParser, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parseJson("", &err).has_value());
  EXPECT_FALSE(parseJson("{", &err).has_value());
  EXPECT_FALSE(parseJson("{\"a\": }", &err).has_value());
  EXPECT_FALSE(parseJson("[1, 2,]", &err).has_value());
  EXPECT_FALSE(parseJson("\"unterminated", &err).has_value());
  EXPECT_FALSE(parseJson("{} trailing", &err).has_value());
  EXPECT_FALSE(parseJson("nul", &err).has_value());
  EXPECT_FALSE(parseJson("\"bad \\q escape\"", &err).has_value());
  // The depth limit makes a hostile deeply-nested input an error, not a
  // stack overflow.
  EXPECT_FALSE(parseJson(std::string(100, '[') + std::string(100, ']'), &err)
                   .has_value());
  EXPECT_NE(err.find("offset"), std::string::npos);
}

// ---- pipeline integration ---------------------------------------------------

TEST(Trace, VerifyPublishesPaperCounters) {
  Collector c;
  core::VerifyReport rep;
  {
    Use use(&c);
    core::VerifyRequest req;
    req.robSize = 4;
    req.issueWidth = 2;
    rep = core::verify(req);
  }
  EXPECT_EQ(rep.verdict(), core::Verdict::Correct);

  // Stage spans from verifyWith plus the sub-stage spans of the layers.
  std::ostringstream os;
  c.writeStageTree(os);
  const std::string tree = os.str();
  for (const char* span : {"verify.sim", "verify.rewrite", "verify.translate",
                           "verify.sat", "tlsim.step", "rewrite.slices",
                           "translate.encode", "sat.solve"})
    EXPECT_NE(tree.find(span), std::string::npos) << "missing " << span
                                                  << " in:\n" << tree;

  // The canonical counter block is on the collector and populated.
  EXPECT_GT(c.counter("tlsim.cycles"), 0u);
  EXPECT_GT(c.counter("eufm.nodes"), 0u);
  EXPECT_GT(c.counter("rewrite.rules_fired"), 0u);
  EXPECT_GT(c.counter("rewrite.updates_removed"), 0u);
  EXPECT_GT(c.counter("evc.p_equations"), 0u);
  EXPECT_GT(c.counter("cnf.vars"), 0u);
  // The inprocessing front end publishes its own counter block; on a cell
  // this small it refutes the formula outright, so the CDCL counters may
  // legitimately be zero.
  EXPECT_GT(c.counter("sat.inprocess.clauses_before"), 0u);
  EXPECT_GT(c.counter("sat.inprocess.clauses_removed"), 0u);
  // The rewriting strategy's headline: no e_ij variables remain.
  EXPECT_EQ(c.counter("evc.eij_vars"), 0u);

  // reportCounters() mirrors the same values without a collector.
  bool sawNodes = false;
  for (const auto& [name, value] : core::reportCounters(rep)) {
    if (name == "eufm.nodes") {
      sawNodes = true;
      EXPECT_EQ(value, c.counter("eufm.nodes"));
    }
  }
  EXPECT_TRUE(sawNodes);
}

TEST(Trace, PeOnlyStrategyProducesEijVariables) {
  Collector c;
  core::VerifyReport rep;
  {
    Use use(&c);
    core::VerifyRequest req;
    req.robSize = 4;
    req.issueWidth = 2;
    req.strategy = core::Strategy::PositiveEqualityOnly;
    rep = core::verify(req);
  }
  EXPECT_EQ(rep.verdict(), core::Verdict::Correct);
  // Without the rewriting rules the initial-ROB instructions survive into
  // the encoding and force e_ij variables (Table 3).
  EXPECT_GT(c.counter("evc.eij_vars"), 0u);
  EXPECT_EQ(c.counter("rewrite.rules_fired"), 0u);
}

}  // namespace
}  // namespace velev
