// Tests for the work-stealing thread pool: result delivery, ordering
// independence, exception propagation, and cooperative cancellation of
// queued tasks (the properties the parallel grid runner and the SAT seed
// portfolio depend on).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace velev {
namespace {

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DeliversEveryResult) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ResultsIndependentOfCompletionOrder) {
  // Tasks finish in a scrambled order (earlier tasks sleep longer); the
  // futures still pair each submission with its own result.
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(pool.submit([i] {
      std::this_thread::sleep_for(std::chrono::microseconds((16 - i) * 50));
      return i;
    }));
  int sum = 0;
  for (int i = 0; i < 16; ++i) {
    const int v = futures[i].get();
    EXPECT_EQ(v, i);
    sum += v;
  }
  EXPECT_EQ(sum, 15 * 16 / 2);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 3; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  EXPECT_EQ(good.get(), 3);
  EXPECT_EQ(pool.submit([] { return 4; }).get(), 4);
}

TEST(ThreadPool, CancellationStopsQueuedTasks) {
  // One worker, blocked on a gate; every tokened task behind it must be
  // skipped once the token is cancelled — their bodies never run.
  ThreadPool pool(1);
  std::promise<void> gate;
  auto blocker = pool.submit([&gate] { gate.get_future().wait(); });

  CancelToken token;
  std::atomic<int> executed{0};
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 20; ++i)
    queued.push_back(pool.submit(token, [&executed] { ++executed; }));

  token.cancel();
  gate.set_value();

  int cancelled = 0;
  for (auto& f : queued) {
    try {
      f.get();
    } catch (const CancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(cancelled, 20);
  blocker.get();
}

TEST(ThreadPool, UncancelledTokenRunsNormally) {
  ThreadPool pool(2);
  CancelToken token;
  EXPECT_EQ(pool.submit(token, [] { return 11; }).get(), 11);
}

TEST(ThreadPool, CancelTokenCopiesShareState) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(b.cancelled());
  a.cancel();
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(a.raw()->load());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    // No explicit waits: the destructor must run every queued task.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ManyMoreTasksThanWorkersAllSteal) {
  // More tasks than workers forces queue traffic between workers; every
  // task must run exactly once.
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (long i = 1; i <= 1000; ++i)
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 1000L * 1001 / 2);
}

}  // namespace
}  // namespace velev
