// Determinism tests for the intra-cell parallel paths: the rewrite slice
// checker, the sharded Tseitin translation and the component-parallel
// transitivity chordalization must be observationally identical for ANY
// worker count — same results, same statistics, byte-identical CNF — and
// the ShadowContext overlay they run on must canonicalize exactly like the
// base Context. These are also the tests the TSan CI job runs against the
// parallel code (ctest -R Parallel|Shadow).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/diagram.hpp"
#include "core/verifier.hpp"
#include "eufm/shadow.hpp"
#include "evc/translate.hpp"
#include "evc/transitivity.hpp"
#include "models/spec.hpp"
#include "prop/cnf.hpp"
#include "rewrite/engine.hpp"
#include "support/thread_pool.hpp"

namespace velev {
namespace {

using eufm::Context;
using eufm::Expr;

// ---- rewrite slice checker ---------------------------------------------------

/// Build the n x k verification problem in a fresh Context and run the
/// rewrite engine with the given pool. Fresh identical contexts intern
/// identical node ids, so results are comparable ACROSS runs by Expr id.
rewrite::RewriteResult runRewrite(unsigned n, unsigned k, ThreadPool* pool,
                                  models::BugSpec bug = {}) {
  Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {n, k}, bug);
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  return rewrite::rewriteRobUpdates(cx, isa, impl->init, impl->config,
                                    d.implRegFile, d.specRegFile, pool);
}

void expectSameResult(const rewrite::RewriteResult& a,
                      const rewrite::RewriteResult& b, const char* what) {
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.failedSlice, b.failedSlice) << what;
  EXPECT_EQ(a.updatesRemoved, b.updatesRemoved) << what;
  EXPECT_EQ(a.implRegFile, b.implRegFile) << what;
  EXPECT_EQ(a.specRegFile, b.specRegFile) << what;
  EXPECT_EQ(a.equalStateVar, b.equalStateVar) << what;
  EXPECT_EQ(a.stats.slicesChecked, b.stats.slicesChecked) << what;
  EXPECT_EQ(a.stats.contextChecks, b.stats.contextChecks) << what;
  EXPECT_EQ(a.stats.movesApplied, b.stats.movesApplied) << what;
  EXPECT_EQ(a.stats.mergesApplied, b.stats.mergesApplied) << what;
  EXPECT_EQ(a.stats.forwardingMatches, b.stats.forwardingMatches) << what;
  EXPECT_EQ(a.stats.sliceNodesTotal, b.stats.sliceNodesTotal) << what;
  EXPECT_EQ(a.stats.sliceNodesMax, b.stats.sliceNodesMax) << what;
}

TEST(Parallel, RewriteIdenticalForAnyWorkerCount) {
  const auto sequential = runRewrite(12, 3, nullptr);
  ASSERT_TRUE(sequential.ok) << sequential.message;
  for (unsigned workers : {2u, 3u, 8u}) {
    ThreadPool pool(workers);
    const auto parallel = runRewrite(12, 3, &pool);
    expectSameResult(sequential, parallel,
                     ("workers=" + std::to_string(workers)).c_str());
  }
}

TEST(Parallel, RewriteReportsLowestFailingSlice) {
  // With workers racing through slices out of order, a mismatch must still
  // be attributed to the LOWEST failing slice, exactly like the
  // sequential engine (the paper pinpoints "the 72nd computation slice").
  const models::BugSpec bug{models::BugKind::ForwardingWrongOperand, 5};
  const auto sequential = runRewrite(8, 2, nullptr, bug);
  ASSERT_FALSE(sequential.ok);
  ASSERT_EQ(sequential.failedSlice, 5u);
  for (unsigned workers : {2u, 4u}) {
    ThreadPool pool(workers);
    const auto parallel = runRewrite(8, 2, &pool, bug);
    EXPECT_FALSE(parallel.ok);
    EXPECT_EQ(parallel.failedSlice, sequential.failedSlice)
        << "workers=" << workers;
    expectSameResult(sequential, parallel, "bug run");
  }
}

// ---- Tseitin translation -----------------------------------------------------

/// A deterministic AIG big enough to cross the sharding threshold
/// (kParallelThreshold = 4096 gates): layered XOR mixing over 64 inputs.
prop::PLit bigFormula(prop::PropCtx& cx) {
  std::vector<prop::PLit> layer;
  for (int i = 0; i < 64; ++i) layer.push_back(cx.mkVar());
  for (int round = 1; round <= 40; ++round)
    for (std::size_t i = 0; i < layer.size(); ++i)
      layer[i] = cx.mkXor(layer[i], layer[(i + round) % layer.size()]);
  return cx.mkAndN(layer);
}

TEST(Parallel, TseitinCnfIdenticalWithPool) {
  prop::PropCtx seqCx;
  const prop::Cnf sequential = prop::tseitin(seqCx, bigFormula(seqCx), true);
  // Big enough that the pool path actually shards.
  ASSERT_GT(sequential.clauses.size(), 3u * 4096u);
  for (unsigned workers : {2u, 5u}) {
    prop::PropCtx parCx;
    ThreadPool pool(workers);
    const prop::Cnf parallel =
        prop::tseitin(parCx, bigFormula(parCx), true, &pool);
    EXPECT_EQ(parallel.numVars, sequential.numVars) << "workers=" << workers;
    // Byte-identical: same clauses in the same order.
    EXPECT_EQ(parallel.clauses, sequential.clauses) << "workers=" << workers;
  }
}

// ---- transitivity chordalization ---------------------------------------------

TEST(Parallel, TransitivityIdenticalWithPool) {
  // Three independent comparison-graph components — a triangle, a 4-cycle
  // (needs one chord) and a 5-chain tail — eliminated one component per
  // worker. Clause list, fill-in variable numbering and stats must match
  // the sequential elimination exactly.
  Context cx;
  std::vector<Expr> t;
  for (int i = 0; i < 12; ++i)
    t.push_back(cx.termVar("t" + std::to_string(i)));
  const auto makeEdges = [&](prop::Cnf& cnf) {
    std::map<std::pair<Expr, Expr>, std::uint32_t> edges;
    const auto edge = [&](int i, int j) {
      edges[{t[i], t[j]}] = cnf.newVar();
    };
    edge(0, 1), edge(1, 2), edge(0, 2);              // triangle
    edge(3, 4), edge(4, 5), edge(5, 6), edge(3, 6);  // 4-cycle
    edge(7, 8), edge(8, 9), edge(9, 10), edge(10, 11), edge(7, 11);  // 5-cycle
    return edges;
  };

  prop::Cnf seqCnf;
  const auto seqEdges = makeEdges(seqCnf);
  const evc::TransitivityStats seqStats =
      evc::addTransitivityConstraints(seqEdges, seqCnf);
  EXPECT_GE(seqStats.fillInEdges, 3u);  // the 4- and 5-cycles need chords

  for (unsigned workers : {2u, 4u}) {
    prop::Cnf parCnf;
    const auto parEdges = makeEdges(parCnf);
    ThreadPool pool(workers);
    const evc::TransitivityStats parStats =
        evc::addTransitivityConstraints(parEdges, parCnf, nullptr, &pool);
    EXPECT_EQ(parCnf.numVars, seqCnf.numVars) << "workers=" << workers;
    EXPECT_EQ(parCnf.clauses, seqCnf.clauses) << "workers=" << workers;
    EXPECT_EQ(parStats.fillInEdges, seqStats.fillInEdges);
    EXPECT_EQ(parStats.triangles, seqStats.triangles);
    EXPECT_EQ(parStats.clauses, seqStats.clauses);
  }
}

// ---- whole pipeline ----------------------------------------------------------

core::VerifyReport runVerify(unsigned jobs) {
  Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {8, 2});
  auto spec = models::buildSpec(cx, isa);
  core::VerifyOptions opts;
  opts.jobs = jobs;
  return core::verifyWith(cx, isa, *impl, *spec, opts);
}

TEST(Parallel, VerifyJobsKeepPaperCountersIdentical) {
  // End to end: --jobs N must change wall time only. The verdict and the
  // full paper-aligned counter set (rewrite.*, evc.*, cnf.*, sat.*) are
  // the contract; reportCounters() flattens them all.
  const core::VerifyReport one = runVerify(1);
  ASSERT_EQ(one.outcome.verdict, core::Verdict::Correct);
  const core::VerifyReport four = runVerify(4);
  EXPECT_EQ(four.outcome.verdict, one.outcome.verdict);
  EXPECT_EQ(core::reportCounters(four), core::reportCounters(one));
}

// ---- ShadowContext -----------------------------------------------------------

TEST(Shadow, ResolvesToBaseNodesExactly) {
  // Structure the base already holds must come back with the BASE id;
  // genuinely new structure gets local ids starting at base.numNodes().
  Context cx;
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b");
  const Expr ab = cx.mkAnd(a, b);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr rd = cx.mkRead(x, y);

  const eufm::ShadowContext sh0(cx);
  eufm::ShadowContext sh(cx);
  EXPECT_EQ(sh.mkAnd(a, b), ab);
  EXPECT_EQ(sh.mkRead(x, y), rd);
  EXPECT_EQ(sh.localNodes(), 0u);

  const Expr local = sh.mkAnd(ab, sh.mkNot(b));
  EXPECT_GE(local, static_cast<Expr>(cx.numNodes()));
  EXPECT_GT(sh.localNodes(), 0u);
  // Hash-consed locally too: same structure, same local id.
  EXPECT_EQ(sh.mkAnd(ab, sh.mkNot(b)), local);
  // Accessors are transparent across the base/local split.
  EXPECT_EQ(sh.kind(local), cx.kind(ab));
  EXPECT_EQ(sh.arg(local, 0), ab);
  (void)sh0;
}

TEST(Shadow, CanonicalizesLikeContext) {
  // The determinism argument for the parallel slice checker requires the
  // overlay's smart constructors to fold exactly like Context's — compare
  // a batch of constructions against a context that interns them directly.
  Context cx;
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b");
  const Expr x = cx.termVar("x"), y = cx.termVar("y"), z = cx.termVar("z");
  cx.mkAnd(a, b);  // freeze some shared structure into the base

  eufm::ShadowContext sh(cx);
  EXPECT_EQ(sh.mkNot(sh.mkNot(a)), a);
  EXPECT_EQ(sh.mkAnd(a, sh.mkFalse()), sh.mkFalse());
  EXPECT_EQ(sh.mkAnd(a, sh.mkTrue()), a);
  EXPECT_EQ(sh.mkOr(a, sh.mkTrue()), sh.mkTrue());
  EXPECT_EQ(sh.mkEq(x, x), sh.mkTrue());
  EXPECT_EQ(sh.mkIteF(sh.mkTrue(), a, b), a);
  EXPECT_EQ(sh.mkIteT(sh.mkFalse(), x, y), y);
  // read-over-write folding, if Context folds it, must match: compare the
  // two sides structurally by building the same term in both.
  const Expr w = sh.mkWrite(x, y, z);
  const Expr shRead = sh.mkRead(w, y);
  const Expr cxRead = cx.mkRead(cx.mkWrite(x, y, z), y);
  // Same fold decision: either both collapse to z (a base node) or both
  // keep the read structure (then ids differ across arenas but kinds match).
  if (cxRead == z) {
    EXPECT_EQ(shRead, z);
  } else {
    EXPECT_EQ(sh.kind(shRead), cx.kind(cxRead));
  }
}

TEST(Shadow, ScratchDoesNotTouchTheBase) {
  Context cx;
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b");
  const std::size_t baseNodes = cx.numNodes();
  {
    eufm::ShadowContext sh(cx);
    for (int i = 0; i < 100; ++i)
      sh.mkAnd(a, sh.mkNot(sh.mkAnd(b, sh.mkNot(a))));
    EXPECT_GT(sh.numNodes(), baseNodes);
    EXPECT_GT(sh.memoryBytes(), 0u);
  }
  // Discarding the shadow discarded every scratch node.
  EXPECT_EQ(cx.numNodes(), baseNodes);
}

}  // namespace
}  // namespace velev
