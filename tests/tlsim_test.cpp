// Tests for the term-level netlist and the demand-driven symbolic simulator,
// including the equivalence of cone-of-influence and naive evaluation modes.
#include <gtest/gtest.h>

#include "eufm/eval.hpp"
#include "eufm/print.hpp"
#include "support/rng.hpp"
#include "tlsim/netlist.hpp"
#include "tlsim/sim.hpp"

namespace velev::tlsim {
namespace {

using eufm::Context;
using eufm::Expr;
using eufm::Sort;

TEST(Netlist, TopologicalDisciplineEnforced) {
  Context cx;
  Netlist nl(cx);
  const SignalId a = nl.sInput("a", Sort::Formula);
  EXPECT_NO_THROW(nl.sNot(a));
  // Referencing a not-yet-created signal must fail.
  EXPECT_THROW(nl.sAnd(a, 1000), InternalError);
}

TEST(Netlist, SortChecking) {
  Context cx;
  Netlist nl(cx);
  const SignalId t = nl.sInput("t", Sort::Term);
  const SignalId f = nl.sInput("f", Sort::Formula);
  EXPECT_THROW(nl.sAnd(t, f), InternalError);
  EXPECT_THROW(nl.sEq(f, f), InternalError);
  EXPECT_THROW(nl.sRead(t, f), InternalError);
  EXPECT_NO_THROW(nl.sEq(t, t));
}

TEST(Netlist, LatchDrivenTwiceRejected) {
  Context cx;
  Netlist nl(cx);
  const SignalId l = nl.sLatchFree("L", Sort::Term);
  nl.setNext(l, l);
  EXPECT_THROW(nl.setNext(l, l), InternalError);
}

TEST(Netlist, IncompleteNetlistRejectedAtSimulation) {
  Context cx;
  Netlist nl(cx);
  nl.sLatchFree("L", Sort::Term);
  EXPECT_THROW(Simulator sim(nl), InternalError);
}

TEST(Netlist, FreeLatchInitialStateIsNamedVariable) {
  Context cx;
  Netlist nl(cx);
  const SignalId l = nl.sLatchFree("PC", Sort::Term);
  EXPECT_EQ(nl.signal(l).fixed, cx.termVar("PC_0"));
}

TEST(Sim, LatchHoldsStateAcrossSteps) {
  Context cx;
  Netlist nl(cx);
  const SignalId l = nl.sLatchFree("X", Sort::Term);
  nl.setNext(l, l);
  Simulator sim(nl);
  const Expr init = sim.state(l);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.state(l), init);
}

TEST(Sim, CounterBuildsNestedApplications) {
  Context cx;
  Netlist nl(cx);
  const eufm::FuncId inc = cx.declareFunc("inc", 1);
  const SignalId l = nl.sLatchFree("C", Sort::Term);
  nl.setNext(l, nl.sApply(inc, {l}));
  Simulator sim(nl);
  sim.step();
  sim.step();
  sim.step();
  const Expr c0 = cx.termVar("C_0");
  Expr expect = c0;
  for (int i = 0; i < 3; ++i) expect = cx.apply(inc, {expect});
  EXPECT_EQ(sim.state(l), expect);
}

TEST(Sim, InputMustBeDriven) {
  Context cx;
  Netlist nl(cx);
  const SignalId in = nl.sInput("go", Sort::Formula);
  const SignalId l = nl.sLatchFree("X", Sort::Formula);
  nl.setNext(l, nl.sAnd(l, in));
  Simulator sim(nl);
  EXPECT_THROW(sim.step(), InternalError);
  sim.setInput(in, cx.mkTrue());
  EXPECT_NO_THROW(sim.step());
}

TEST(Sim, ConditionalUpdateBuildsUpdateChain) {
  Context cx;
  Netlist nl(cx);
  const SignalId mem = nl.sLatchFree("M", Sort::Term);
  const SignalId en = nl.sInput("en", Sort::Formula);
  const SignalId addr = nl.sFixed(cx.termVar("a"));
  const SignalId data = nl.sFixed(cx.termVar("d"));
  nl.setNext(mem, nl.sIteT(en, nl.sWrite(mem, addr, data), mem));
  Simulator sim(nl);
  const Expr e = cx.boolVar("e");
  sim.setInput(en, e);
  sim.step();
  const Expr m0 = cx.termVar("M_0");
  EXPECT_EQ(sim.state(mem),
            cx.mkIteT(e, cx.mkWrite(m0, cx.termVar("a"), cx.termVar("d")), m0));
}

TEST(Sim, ShortCircuitSkipsUntakenBranch) {
  Context cx;
  Netlist nl(cx);
  const eufm::FuncId f = cx.declareFunc("f", 1);
  const SignalId sel = nl.sInput("sel", Sort::Formula);
  const SignalId x = nl.sFixed(cx.termVar("x"));
  // An expensive chain that should never be evaluated when sel is false.
  SignalId chain = x;
  for (int i = 0; i < 50; ++i) chain = nl.sApply(f, {chain});
  const SignalId l = nl.sLatchFree("L", Sort::Term);
  nl.setNext(l, nl.sIteT(sel, chain, l));

  Simulator coi(nl, {.coneOfInfluence = true});
  coi.setInput(sel, cx.mkFalse());
  coi.step();
  Simulator naive(nl, {.coneOfInfluence = false});
  naive.setInput(sel, cx.mkFalse());
  naive.step();
  EXPECT_EQ(coi.state(l), naive.state(l));
  // The cone-of-influence simulator must evaluate far fewer signals.
  EXPECT_LT(coi.stats().signalEvals + 45, naive.stats().signalEvals);
}

TEST(Sim, AndShortCircuitOnConcreteFalse) {
  Context cx;
  Netlist nl(cx);
  const SignalId off = nl.sInput("off", Sort::Formula);
  const SignalId b = nl.sInput("b", Sort::Formula);
  const SignalId l = nl.sLatchFree("L", Sort::Formula);
  nl.setNext(l, nl.sAnd(off, b));
  Simulator sim(nl);
  sim.setInput(off, cx.mkFalse());
  // b intentionally left undriven: with the first conjunct concretely false
  // the simulator must not evaluate it.
  EXPECT_NO_THROW(sim.step());
  EXPECT_EQ(sim.state(l), cx.mkFalse());
}

TEST(Sim, SetStateOverridesInitial) {
  Context cx;
  Netlist nl(cx);
  const SignalId l = nl.sLatchFree("L", Sort::Term);
  nl.setNext(l, l);
  Simulator sim(nl);
  const Expr v = cx.termVar("override");
  sim.setState(l, v);
  sim.step();
  EXPECT_EQ(sim.state(l), v);
}

TEST(Sim, ValueEvaluatesCombinational) {
  Context cx;
  Netlist nl(cx);
  const SignalId a = nl.sInput("a", Sort::Formula);
  const SignalId b = nl.sInput("b", Sort::Formula);
  const SignalId o = nl.sOr(a, b);
  const SignalId l = nl.sLatchFree("L", Sort::Formula);
  nl.setNext(l, o);
  Simulator sim(nl);
  const Expr va = cx.boolVar("va"), vb = cx.boolVar("vb");
  sim.setInput(a, va);
  sim.setInput(b, vb);
  EXPECT_EQ(sim.value(o), cx.mkOr(va, vb));
}

TEST(Sim, CyclesAreCounted) {
  Context cx;
  Netlist nl(cx);
  const SignalId l = nl.sLatchFree("L", Sort::Term);
  nl.setNext(l, l);
  Simulator sim(nl);
  for (int i = 0; i < 5; ++i) sim.step();
  EXPECT_EQ(sim.stats().cycles, 5u);
}

// Property: cone-of-influence and naive evaluation produce identical state
// expressions on randomly generated netlists driven with a mix of concrete
// and symbolic inputs.
class CoiEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CoiEquivalence, RandomNetlistSameStates) {
  Rng rng(GetParam() * 31337 + 5);
  Context cx;
  Netlist nl(cx);
  const eufm::FuncId f = cx.declareFunc("f", 2);

  std::vector<SignalId> fpool, tpool, latches, inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(nl.sInput("in" + std::to_string(i), Sort::Formula));
    fpool.push_back(inputs.back());
  }
  fpool.push_back(nl.sTrue());
  fpool.push_back(nl.sFalse());
  for (int i = 0; i < 3; ++i) {
    latches.push_back(nl.sLatchFree("t" + std::to_string(i), Sort::Term));
    tpool.push_back(latches.back());
  }
  for (int i = 0; i < 40; ++i) {
    if (rng.coin()) {
      const SignalId a = fpool[rng.below(fpool.size())];
      const SignalId b = fpool[rng.below(fpool.size())];
      switch (rng.below(4)) {
        case 0: fpool.push_back(nl.sAnd(a, b)); break;
        case 1: fpool.push_back(nl.sOr(a, b)); break;
        case 2: fpool.push_back(nl.sNot(a)); break;
        default:
          fpool.push_back(nl.sEq(tpool[rng.below(tpool.size())],
                                 tpool[rng.below(tpool.size())]));
      }
    } else {
      const SignalId c = fpool[rng.below(fpool.size())];
      const SignalId x = tpool[rng.below(tpool.size())];
      const SignalId y = tpool[rng.below(tpool.size())];
      if (rng.coin())
        tpool.push_back(nl.sIteT(c, x, y));
      else
        tpool.push_back(nl.sApply(f, {x, y}));
    }
  }
  for (std::size_t i = 0; i < latches.size(); ++i)
    nl.setNext(latches[i], tpool[rng.below(tpool.size())]);

  Simulator coi(nl, {.coneOfInfluence = true});
  Simulator naive(nl, {.coneOfInfluence = false});
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      // Mix of concrete and symbolic drive.
      Expr v;
      switch (rng.below(3)) {
        case 0: v = cx.mkTrue(); break;
        case 1: v = cx.mkFalse(); break;
        default: v = cx.boolVar("sym" + std::to_string(cycle * 10 + i));
      }
      coi.setInput(inputs[i], v);
      naive.setInput(inputs[i], v);
    }
    coi.step();
    naive.step();
    for (SignalId l : latches) EXPECT_EQ(coi.state(l), naive.state(l));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoiEquivalence, ::testing::Range(0, 30));

}  // namespace
}  // namespace velev::tlsim
