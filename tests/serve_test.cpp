// Tests for the velev_serve surface: the schema-versioned
// VerifyRequest/VerifyResponse JSON round trip (strict parsing — unknown
// fields, bad versions and unknown enum names are rejected), the
// content-addressed ResultCache (hit/owner/joined, coalescing, LRU, the
// uncacheable-Timeout policy), the in-process VerifyServer (caching,
// coalescing under concurrency, budget verdicts and their exit codes,
// malformed-line handling, control ops) and the socket client against a
// live server — cached answers must be identical to a fresh in-process
// verification.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/request.hpp"
#include "sat/incremental.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "support/json.hpp"
#include "support/timer.hpp"

namespace velev {
namespace {

core::VerifyRequest smallRequest(std::uint64_t id = 1) {
  core::VerifyRequest req;
  req.id = id;
  req.robSize = 3;
  req.issueWidth = 2;
  return req;
}

/// Fresh (empty) scratch directory under the system temp dir.
std::string freshDir(const char* name) {
  const auto p = std::filesystem::temp_directory_path() /
                 (std::string("velev_serve_test_") + name + "_" +
                  std::to_string(::getpid()));
  std::filesystem::remove_all(p);
  std::filesystem::create_directories(p);
  return p.string();
}

/// Poll `pred` (1 ms cadence) until true or the deadline passes.
bool waitFor(const std::function<bool()>& pred, double seconds = 20) {
  Timer t;
  while (t.seconds() < seconds) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// PIDs of our direct children running in `--worker` mode (Linux /proc).
std::vector<pid_t> workerPids() {
  std::vector<pid_t> pids;
  std::error_code ec;
  for (std::filesystem::directory_iterator it("/proc", ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.empty() ||
        name.find_first_not_of("0123456789") != std::string::npos)
      continue;
    std::ifstream cmdline(it->path() / "cmdline");
    std::string args((std::istreambuf_iterator<char>(cmdline)),
                     std::istreambuf_iterator<char>());
    if (args.find("--worker") == std::string::npos) continue;
    std::ifstream stat(it->path() / "stat");
    pid_t pid = 0, ppid = 0;
    std::string comm, state;
    stat >> pid >> comm >> state >> ppid;
    if (stat && ppid == ::getpid()) pids.push_back(pid);
  }
  return pids;
}

// ---- request schema ---------------------------------------------------------

TEST(ServeRequest, JsonRoundTripPreservesEveryField) {
  core::VerifyRequest req;
  req.id = 42;
  req.robSize = 16;
  req.issueWidth = 4;
  req.bug = {models::BugKind::ForwardingWrongOperand, 7};
  req.strategy = core::Strategy::PositiveEqualityOnly;
  req.engine = core::Engine::Both;
  req.ufScheme = evc::UfScheme::Ackermann;
  req.skipSat = true;
  req.coneOfInfluence = false;
  req.inprocess = false;
  req.timeoutSeconds = 12.5;
  req.memoryBudgetBytes = 1 << 20;
  req.satConflictBudget = 9999;

  std::string err;
  const auto back = core::VerifyRequest::parse(req.toJson(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, req);
  EXPECT_EQ(back->id, 42u);
  EXPECT_EQ(back->bug.kind, models::BugKind::ForwardingWrongOperand);
  EXPECT_EQ(back->bug.index, 7u);
  EXPECT_EQ(back->satConflictBudget, 9999);
}

TEST(ServeRequest, DefaultsRoundTripAndFieldsAreOptional) {
  // All fields except "version" are optional: the minimal object is the
  // default request.
  std::string err;
  const auto req = core::VerifyRequest::parse("{\"version\": 1}", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(*req, core::VerifyRequest{});
}

TEST(ServeRequest, RejectsUnknownField) {
  std::string err;
  const auto req = core::VerifyRequest::parse(
      "{\"version\": 1, \"rob_size\": 2, \"bogus_knob\": true}", &err);
  EXPECT_FALSE(req.has_value());
  EXPECT_NE(err.find("bogus_knob"), std::string::npos) << err;
}

TEST(ServeRequest, RejectsMissingOrMismatchedVersion) {
  std::string err;
  EXPECT_FALSE(core::VerifyRequest::parse("{\"rob_size\": 2}", &err)
                   .has_value());
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  EXPECT_FALSE(
      core::VerifyRequest::parse("{\"version\": 999}", &err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(ServeRequest, RejectsUnknownEnumNames) {
  std::string err;
  EXPECT_FALSE(core::VerifyRequest::parse(
                   "{\"version\": 1, \"strategy\": \"telepathy\"}", &err)
                   .has_value());
  EXPECT_FALSE(core::VerifyRequest::parse(
                   "{\"version\": 1, \"engine\": \"abacus\"}", &err)
                   .has_value());
  EXPECT_FALSE(core::VerifyRequest::parse(
                   "{\"version\": 1, \"bug_kind\": \"gremlin\"}", &err)
                   .has_value());
}

TEST(ServeRequest, ValidateRejectsOutOfRangeValues) {
  core::VerifyRequest req;
  req.robSize = 0;
  EXPECT_TRUE(req.validate().has_value());
  req = {};
  req.robSize = 2;
  req.issueWidth = 4;  // width > size
  EXPECT_TRUE(req.validate().has_value());
  req = {};
  req.bug = {models::BugKind::ForwardingWrongOperand, 100000};
  EXPECT_TRUE(req.validate().has_value());
  EXPECT_FALSE(smallRequest().validate().has_value());
}

TEST(ServeRequest, CacheKeyIgnoresIdButTracksSemantics) {
  core::VerifyRequest a = smallRequest(1);
  core::VerifyRequest b = smallRequest(2);
  EXPECT_EQ(a.cacheKey(), b.cacheKey());  // id is not content
  b.robSize = 4;
  EXPECT_NE(a.cacheKey(), b.cacheKey());
  core::VerifyRequest c = smallRequest(1);
  c.inprocess = false;
  EXPECT_NE(a.cacheKey(), c.cacheKey());
  EXPECT_EQ(a.cacheKeyHex().size(), 16u);
}

// ---- response schema --------------------------------------------------------

TEST(ServeResponse, JsonRoundTrip) {
  core::VerifyResponse resp;
  resp.id = 7;
  resp.cached = true;
  resp.cacheKey = "00deadbeef00cafe";
  resp.verdict = core::Verdict::RewriteMismatch;
  resp.reason = "slice 3 does not conform";
  resp.failedSlice = 3;
  resp.exitCode = 1;
  resp.wallSeconds = 0.25;
  resp.seconds.sim = 0.1;
  resp.seconds.sat = 0.05;
  resp.peakArenaBytes = 12345;
  resp.rssHighWaterKb = 6789;
  resp.counters = {{"sat.conflicts", 11}, {"tlsim.cycles", 5}};

  std::string err;
  const auto back = core::VerifyResponse::parse(resp.toJson(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->id, 7u);
  EXPECT_TRUE(back->cached);
  EXPECT_EQ(back->cacheKey, "00deadbeef00cafe");
  EXPECT_EQ(back->verdict, core::Verdict::RewriteMismatch);
  EXPECT_EQ(back->failedSlice, 3u);
  EXPECT_EQ(back->exitCode, 1);
  EXPECT_DOUBLE_EQ(back->seconds.sim, 0.1);
  EXPECT_EQ(back->counters, resp.counters);
}

TEST(ServeResponse, ErrorResponseRoundTrip) {
  const core::VerifyResponse err = core::VerifyResponse::makeError(9, "nope");
  EXPECT_EQ(err.exitCode, 2);
  std::string perr;
  const auto back = core::VerifyResponse::parse(err.toJson(), &perr);
  ASSERT_TRUE(back.has_value()) << perr;
  EXPECT_EQ(back->id, 9u);
  EXPECT_EQ(back->error, "nope");
  EXPECT_EQ(back->exitCode, 2);
}

TEST(ServeResponse, CompactJsonIsOneWireLine) {
  const core::VerifyRequest req = smallRequest();
  const std::string wire = compactJson(req.toJson());
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  std::string err;
  const auto back = core::VerifyRequest::parse(wire, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, req);
}

// ---- result cache -----------------------------------------------------------

TEST(ServeCache, OwnerFulfillThenHit) {
  serve::ResultCache cache(8);
  core::VerifyResponse out;
  EXPECT_EQ(cache.claim(1, &out, nullptr), serve::ResultCache::Claim::Owner);

  core::VerifyResponse resp;
  resp.verdict = core::Verdict::Correct;
  cache.fulfill(1, resp, /*cacheable=*/true);

  EXPECT_EQ(cache.claim(1, &out, nullptr), serve::ResultCache::Claim::Hit);
  EXPECT_EQ(out.verdict, core::Verdict::Correct);
  EXPECT_TRUE(out.cached);  // hits are marked as cache copies

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.inflight, 0u);
}

TEST(ServeCache, JoinersCoalesceOntoOneOwner) {
  serve::ResultCache cache(8);
  core::VerifyResponse out;
  ASSERT_EQ(cache.claim(5, &out, nullptr), serve::ResultCache::Claim::Owner);

  std::vector<core::VerifyResponse> delivered;
  for (int i = 0; i < 3; ++i) {
    const auto claim = cache.claim(
        5, &out, [&](const core::VerifyResponse& r) { delivered.push_back(r); });
    EXPECT_EQ(claim, serve::ResultCache::Claim::Joined);
  }
  EXPECT_TRUE(delivered.empty());  // nothing fires before fulfill

  core::VerifyResponse resp;
  resp.verdict = core::Verdict::Correct;
  cache.fulfill(5, resp, true);

  ASSERT_EQ(delivered.size(), 3u);
  for (const auto& r : delivered) {
    EXPECT_EQ(r.verdict, core::Verdict::Correct);
    EXPECT_TRUE(r.cached);  // joiners' answers came from a job they didn't run
  }
  EXPECT_EQ(cache.stats().coalesced, 3u);
}

TEST(ServeCache, UncacheableFulfillWakesWaitersButStoresNothing) {
  serve::ResultCache cache(8);
  core::VerifyResponse out;
  ASSERT_EQ(cache.claim(9, &out, nullptr), serve::ResultCache::Claim::Owner);
  int fired = 0;
  ASSERT_EQ(cache.claim(9, &out,
                        [&](const core::VerifyResponse&) { ++fired; }),
            serve::ResultCache::Claim::Joined);

  core::VerifyResponse resp;
  resp.verdict = core::Verdict::Timeout;  // the daemon's uncacheable verdict
  cache.fulfill(9, resp, /*cacheable=*/false);

  EXPECT_EQ(fired, 1);
  EXPECT_EQ(cache.stats().entries, 0u);  // no entry left behind
  // The next claim starts a fresh computation.
  EXPECT_EQ(cache.claim(9, &out, nullptr), serve::ResultCache::Claim::Owner);
  cache.abandon(9, resp);
}

TEST(ServeCache, LruEvictsOldestReadyEntry) {
  serve::ResultCache cache(2);
  core::VerifyResponse out, resp;
  resp.verdict = core::Verdict::Correct;
  for (std::uint64_t key : {1, 2, 3}) {
    ASSERT_EQ(cache.claim(key, &out, nullptr),
              serve::ResultCache::Claim::Owner);
    cache.fulfill(key, resp, true);
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  // Key 1 was least recently used; 2 and 3 survive.
  EXPECT_EQ(cache.claim(1, &out, nullptr), serve::ResultCache::Claim::Owner);
  cache.abandon(1, resp);
  EXPECT_EQ(cache.claim(2, &out, nullptr), serve::ResultCache::Claim::Hit);
  EXPECT_EQ(cache.claim(3, &out, nullptr), serve::ResultCache::Claim::Hit);
}

// ---- in-process server ------------------------------------------------------

core::VerifyResponse handle(serve::VerifyServer& server,
                            const core::VerifyRequest& req) {
  std::string err;
  const auto resp =
      core::VerifyResponse::parse(server.handleLine(compactJson(req.toJson())),
                                  &err);
  EXPECT_TRUE(resp.has_value()) << err;
  return resp.value_or(core::VerifyResponse{});
}

TEST(ServeServer, VerifiesCachesAndAnswersIdentically) {
  serve::VerifyServer server({});
  const core::VerifyRequest req = smallRequest();

  const core::VerifyResponse fresh = handle(server, req);
  EXPECT_TRUE(fresh.error.empty()) << fresh.error;
  EXPECT_FALSE(fresh.cached);
  EXPECT_EQ(fresh.verdict, core::Verdict::Correct);
  EXPECT_EQ(fresh.exitCode, 0);
  EXPECT_EQ(fresh.cacheKey, req.cacheKeyHex());
  EXPECT_FALSE(fresh.counters.empty());

  const core::VerifyResponse hit = handle(server, req);
  EXPECT_TRUE(hit.cached);
  // The cached answer is the SAME result: verdict and the full canonical
  // counter block byte-identical to the fresh verification.
  EXPECT_EQ(hit.verdict, fresh.verdict);
  EXPECT_EQ(hit.counters, fresh.counters);
  EXPECT_EQ(hit.peakArenaBytes, fresh.peakArenaBytes);

  // And both match a fresh in-process core::verify of the same request.
  const core::VerifyReport rep = core::verify(req);
  EXPECT_EQ(fresh.verdict, rep.verdict());
  EXPECT_EQ(fresh.counters, core::reportCounters(rep));

  const auto cs = server.cacheStats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits, 1u);
}

TEST(ServeServer, ResponseIdEchoesRequestId) {
  serve::VerifyServer server({});
  EXPECT_EQ(handle(server, smallRequest(11)).id, 11u);
  EXPECT_EQ(handle(server, smallRequest(22)).id, 22u);  // cache hit, new id
}

TEST(ServeServer, ConcurrentIdenticalRequestsShareOneJob) {
  serve::ServerOptions opts;
  opts.jobs = 4;
  serve::VerifyServer server(opts);

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<core::VerifyResponse> resps(kClients);
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back(
        [&, i] { resps[i] = handle(server, smallRequest(i + 1)); });
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(resps[i].error.empty()) << resps[i].error;
    EXPECT_EQ(resps[i].verdict, core::Verdict::Correct);
    EXPECT_EQ(resps[i].id, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(resps[i].counters, resps[0].counters);
  }
  // All clients asked for one cell: exactly one miss ran a job; everyone
  // else coalesced onto it or hit the finished entry.
  const auto cs = server.cacheStats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits + cs.coalesced, kClients - 1u);
}

TEST(ServeServer, BudgetVerdictsCarryExitCodes) {
  serve::VerifyServer server({});

  core::VerifyRequest timeout = smallRequest();
  timeout.strategy = core::Strategy::PositiveEqualityOnly;
  timeout.timeoutSeconds = 1e-9;
  const core::VerifyResponse t = handle(server, timeout);
  EXPECT_EQ(t.verdict, core::Verdict::Timeout);
  EXPECT_EQ(t.exitCode, 4);
  EXPECT_FALSE(t.reason.empty());

  // Wall-clock timeouts are nondeterministic and must NOT be cached: the
  // identical request runs again, fresh.
  const core::VerifyResponse t2 = handle(server, timeout);
  EXPECT_FALSE(t2.cached);
  EXPECT_EQ(server.cacheStats().entries, 0u);

  // MemOut trips on deterministic logical-arena accounting, so it IS
  // cacheable.
  core::VerifyRequest memout = smallRequest();
  memout.strategy = core::Strategy::PositiveEqualityOnly;
  memout.memoryBudgetBytes = 1000;
  const core::VerifyResponse m = handle(server, memout);
  EXPECT_EQ(m.verdict, core::Verdict::MemOut);
  EXPECT_EQ(m.exitCode, 4);
  const core::VerifyResponse m2 = handle(server, memout);
  EXPECT_TRUE(m2.cached);
  EXPECT_EQ(m2.verdict, core::Verdict::MemOut);
}

TEST(ServeServer, AdmissionCapsClampRequestBudgets) {
  serve::ServerOptions opts;
  opts.maxTimeoutSeconds = 1e-9;  // every admitted request gets this cap
  serve::VerifyServer server(opts);
  core::VerifyRequest req = smallRequest();
  req.strategy = core::Strategy::PositiveEqualityOnly;
  req.timeoutSeconds = 0;  // asks for unlimited; the cap clamps it
  const core::VerifyResponse resp = handle(server, req);
  EXPECT_EQ(resp.verdict, core::Verdict::Timeout);
  EXPECT_EQ(resp.exitCode, 4);
}

TEST(ServeServer, MalformedAndInvalidLinesGetErrorResponses) {
  serve::VerifyServer server({});

  std::string err;
  auto resp = core::VerifyResponse::parse(server.handleLine("not json"), &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_FALSE(resp->error.empty());
  EXPECT_EQ(resp->exitCode, 2);

  // The id is salvaged from an otherwise-invalid request so the client can
  // still match the error to its request.
  resp = core::VerifyResponse::parse(
      server.handleLine(
          "{\"version\": 1, \"id\": 77, \"bogus_field\": true}"),
      &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_EQ(resp->id, 77u);
  EXPECT_FALSE(resp->error.empty());

  // Semantic validation failures answer the same way.
  resp = core::VerifyResponse::parse(
      server.handleLine("{\"version\": 1, \"id\": 5, \"rob_size\": 0}"),
      &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_EQ(resp->id, 5u);
  EXPECT_FALSE(resp->error.empty());
  EXPECT_EQ(resp->exitCode, 2);
}

TEST(ServeServer, ControlOpsAnswerInline) {
  serve::VerifyServer server({});
  std::string err;

  const auto ping = parseJson(server.handleLine("{\"op\": \"ping\"}"), &err);
  ASSERT_TRUE(ping.has_value()) << err;
  ASSERT_NE(ping->find("ok"), nullptr);
  EXPECT_TRUE(ping->find("ok")->boolean);

  handle(server, smallRequest());
  const auto stats = parseJson(server.handleLine("{\"op\": \"stats\"}"), &err);
  ASSERT_TRUE(stats.has_value()) << err;
  const JsonValue* counters = stats->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->uintAt("serve.requests"), 1u);
  EXPECT_EQ(counters->uintAt("serve.cache.misses"), 1u);

  const auto bad = parseJson(server.handleLine("{\"op\": \"dance\"}"), &err);
  ASSERT_TRUE(bad.has_value()) << err;
  ASSERT_NE(bad->find("ok"), nullptr);
  EXPECT_FALSE(bad->find("ok")->boolean);
}

// ---- socket client against a live server ------------------------------------

TEST(ServeSocket, ClientRoundTripMatchesInProcessVerify) {
  const std::string path =
      "/tmp/velev_serve_test_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions opts;
  opts.unixSocketPath = path;
  opts.jobs = 2;
  serve::VerifyServer server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  {
    auto client = serve::Client::connect("unix:" + path, &err);
    ASSERT_TRUE(client.has_value()) << err;

    core::VerifyRequest req = smallRequest(31);
    req.bug = {models::BugKind::ForwardingWrongOperand, 2};
    const auto resp = client->roundTrip(req, &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->id, 31u);
    EXPECT_FALSE(resp->cached);
    EXPECT_EQ(resp->verdict, core::Verdict::RewriteMismatch);
    EXPECT_EQ(resp->failedSlice, 2u);
    EXPECT_EQ(resp->exitCode, 1);

    // Same request again: a cache hit over the wire, same content as a
    // fresh in-process verification.
    const auto hit = client->roundTrip(req, &err);
    ASSERT_TRUE(hit.has_value()) << err;
    EXPECT_TRUE(hit->cached);
    EXPECT_EQ(hit->verdict, resp->verdict);
    EXPECT_EQ(hit->counters, resp->counters);

    const core::VerifyReport rep = core::verify(req);
    EXPECT_EQ(hit->verdict, rep.verdict());
    EXPECT_EQ(hit->counters, core::reportCounters(rep));
  }
  server.stop();
}

TEST(ServeSocket, EphemeralTcpPortServesRequests) {
  serve::ServerOptions opts;
  opts.tcpPort = 0;  // kernel-assigned loopback port
  serve::VerifyServer server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_GT(server.tcpPort(), 0);

  {
    auto client = serve::Client::connect(
        "127.0.0.1:" + std::to_string(server.tcpPort()), &err);
    ASSERT_TRUE(client.has_value()) << err;
    const auto resp = client->roundTrip(smallRequest(3), &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->verdict, core::Verdict::Correct);
    EXPECT_EQ(resp->id, 3u);
  }
  server.stop();
}

// ---- per-worker solve memo --------------------------------------------------

TEST(ServeMemo, ReplaysStoredResultAndStats) {
  prop::Cnf cnf;
  cnf.numVars = 2;
  cnf.addClause({1, 2});
  cnf.addClause({-1});
  const std::uint64_t k =
      sat::SolveMemo::key(cnf, sat::InprocessOptions{}, -1);

  sat::SolveMemo memo;
  EXPECT_EQ(memo.find(k), nullptr);

  sat::SolveMemo::Entry e;
  e.result = sat::Result::Sat;
  e.stats.decisions = 7;
  e.stats.conflicts = 3;
  e.inprocessed = true;
  memo.store(k, e);

  const auto* hit = memo.find(k);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result, sat::Result::Sat);
  EXPECT_EQ(hit->stats.decisions, 7u);
  EXPECT_EQ(hit->stats.conflicts, 3u);
  EXPECT_TRUE(hit->inprocessed);
  EXPECT_EQ(memo.hits(), 1u);
  EXPECT_EQ(memo.size(), 1u);
}

TEST(ServeMemo, RefusesUnknownAndEvictsFifo) {
  sat::SolveMemo memo(2);

  // Unknown results (budget-tripped solves) are never memoized.
  memo.store(1, {});
  EXPECT_EQ(memo.find(1), nullptr);
  EXPECT_EQ(memo.size(), 0u);

  sat::SolveMemo::Entry e;
  e.result = sat::Result::Unsat;
  memo.store(1, e);
  memo.store(2, e);
  memo.store(3, e);  // FIFO: evicts key 1
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.find(1), nullptr);
  EXPECT_NE(memo.find(2), nullptr);
  EXPECT_NE(memo.find(3), nullptr);
}

TEST(ServeMemo, KeyTracksCnfOptionsAndBudget) {
  prop::Cnf cnf;
  cnf.numVars = 2;
  cnf.addClause({1, -2});
  const std::uint64_t base =
      sat::SolveMemo::key(cnf, sat::InprocessOptions{}, -1);

  prop::Cnf bigger = cnf;
  bigger.addClause({2});
  EXPECT_NE(sat::SolveMemo::key(bigger, sat::InprocessOptions{}, -1), base);

  sat::InprocessOptions off;
  off.enabled = false;
  EXPECT_NE(sat::SolveMemo::key(cnf, off, -1), base);

  EXPECT_NE(sat::SolveMemo::key(cnf, sat::InprocessOptions{}, 100), base);
}

TEST(ServeMemo, VerifyWithMemoMatchesFreshVerify) {
  // The batching lane's correctness hinges on this: a memo-served solve is
  // bit-identical to a fresh one — verdict AND the canonical counters.
  const core::VerifyRequest req = smallRequest();
  const core::VerifyReport plain = core::verify(req);

  sat::SolveMemo memo;
  const core::VerifyReport first = core::verify(req, nullptr, &memo);
  const core::VerifyReport second = core::verify(req, nullptr, &memo);
  EXPECT_GE(memo.hits(), 1u);

  EXPECT_EQ(first.verdict(), plain.verdict());
  EXPECT_EQ(core::reportCounters(first), core::reportCounters(plain));
  EXPECT_EQ(second.verdict(), plain.verdict());
  EXPECT_EQ(core::reportCounters(second), core::reportCounters(plain));
}

// ---- persistent cache journal -----------------------------------------------

core::VerifyResponse cacheableResponse(std::uint64_t id,
                                       std::uint64_t counterValue) {
  core::VerifyResponse r;
  r.id = id;
  r.verdict = core::Verdict::Correct;
  r.exitCode = 0;
  r.counters = {{"slices", counterValue}};
  return r;
}

TEST(ServeJournal, RoundTripAcrossRestart) {
  serve::CacheJournal::Options jo;
  jo.dir = freshDir("journal_rt");
  {
    serve::CacheJournal j(jo);
    j.append(10, cacheableResponse(1, 4));
    j.append(20, cacheableResponse(2, 8));
    EXPECT_EQ(j.segmentCount(), 2u);
  }

  // "Restart": a fresh instance replays the directory.
  serve::CacheJournal j2(jo);
  serve::CacheJournal::LoadStats ls;
  const auto entries = j2.load(&ls);
  EXPECT_EQ(ls.segments, 2u);
  EXPECT_EQ(ls.skippedSegments, 0u);
  EXPECT_EQ(ls.skippedEntries, 0u);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 10u);
  EXPECT_EQ(entries[0].second.counters, cacheableResponse(1, 4).counters);
  EXPECT_EQ(entries[1].first, 20u);

  // Later segments win on duplicate keys.
  j2.append(10, cacheableResponse(3, 99));
  serve::CacheJournal j3(jo);
  const auto again = j3.load();
  ASSERT_EQ(again.size(), 2u);
  for (const auto& [key, resp] : again) {
    if (key == 10) {
      EXPECT_EQ(resp.counters, cacheableResponse(3, 99).counters);
    }
  }
}

TEST(ServeJournal, TimeoutAndErrorNeverPersisted) {
  serve::CacheJournal::Options jo;
  jo.dir = freshDir("journal_policy");
  serve::CacheJournal j(jo);

  core::VerifyResponse timeout = cacheableResponse(1, 1);
  timeout.verdict = core::Verdict::Timeout;
  timeout.exitCode = 4;
  j.append(1, timeout);
  j.append(2, core::VerifyResponse::makeError(2, "boom"));
  EXPECT_EQ(j.segmentCount(), 0u);

  serve::CacheJournal j2(jo);
  serve::CacheJournal::LoadStats ls;
  EXPECT_TRUE(j2.load(&ls).empty());
  EXPECT_EQ(ls.segments, 0u);
}

TEST(ServeJournal, CorruptSegmentsDegradeToCold) {
  serve::CacheJournal::Options jo;
  jo.dir = freshDir("journal_corrupt");
  {
    serve::CacheJournal j(jo);
    j.append(10, cacheableResponse(1, 4));
    j.append(20, cacheableResponse(2, 8));
  }
  // Tear the first segment (torn-disk simulation) ...
  { std::ofstream(std::filesystem::path(jo.dir) / "seg-1.json",
                  std::ios::trunc)
        << "{\"version\": 1, \"git_desc"; }
  // ... and plant a segment written by a "different binary".
  { std::ofstream(std::filesystem::path(jo.dir) / "seg-7.json")
        << "{\"version\": 1, \"git_describe\": \"some-other-build\", "
           "\"entries\": [{\"key\": \"000000000000002a\", \"response\": "
        << cacheableResponse(9, 1).toJson() << "}]}"; }

  serve::CacheJournal j2(jo);
  serve::CacheJournal::LoadStats ls;
  const auto entries = j2.load(&ls);
  EXPECT_EQ(ls.segments, 3u);
  EXPECT_EQ(ls.skippedSegments, 2u);  // torn + stale-binary, never an error
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, 20u);
}

TEST(ServeJournal, CompactionFoldsSegments) {
  serve::CacheJournal::Options jo;
  jo.dir = freshDir("journal_compact");
  jo.compactThreshold = 2;
  serve::CacheJournal j(jo);
  for (std::uint64_t key = 1; key <= 4; ++key)
    j.append(key, cacheableResponse(key, key * 10));
  // Appends beyond the threshold fold every live entry into one segment.
  EXPECT_LE(j.segmentCount(), 2u);

  serve::CacheJournal j2(jo);
  serve::CacheJournal::LoadStats ls;
  const auto entries = j2.load(&ls);
  EXPECT_EQ(ls.skippedSegments, 0u);
  ASSERT_EQ(entries.size(), 4u);
  for (const auto& [key, resp] : entries)
    EXPECT_EQ(resp.counters,
              cacheableResponse(key, key * 10).counters);
}

TEST(ServeJournal, SeedPopulatesCacheWithoutTouchingTraffic) {
  serve::ResultCache cache(8);
  cache.seed(5, cacheableResponse(1, 4));
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.hits, 0u);  // seeding is startup, not traffic
  EXPECT_EQ(s.misses, 0u);

  core::VerifyResponse out;
  EXPECT_EQ(cache.claim(5, &out, nullptr), serve::ResultCache::Claim::Hit);
  EXPECT_TRUE(out.cached);
  EXPECT_EQ(out.verdict, core::Verdict::Correct);
  EXPECT_EQ(out.counters, cacheableResponse(1, 4).counters);

  // Duplicate seed is a no-op: the existing entry wins.
  cache.seed(5, cacheableResponse(2, 999));
  EXPECT_EQ(cache.claim(5, &out, nullptr), serve::ResultCache::Claim::Hit);
  EXPECT_EQ(out.counters, cacheableResponse(1, 4).counters);
}

TEST(ServePersist, WarmRestartServesFromJournal) {
  const std::string dir = freshDir("persist");
  const core::VerifyRequest req = smallRequest();
  core::VerifyRequest timeout = smallRequest(2);
  timeout.strategy = core::Strategy::PositiveEqualityOnly;
  timeout.timeoutSeconds = 1e-9;

  core::VerifyResponse fresh;
  {
    serve::ServerOptions opts;
    opts.cacheDir = dir;
    serve::VerifyServer a(opts);
    fresh = handle(a, req);
    EXPECT_TRUE(fresh.error.empty()) << fresh.error;
    EXPECT_EQ(fresh.verdict, core::Verdict::Correct);
    EXPECT_EQ(handle(a, timeout).verdict, core::Verdict::Timeout);
    a.stop();
  }

  serve::ServerOptions opts;
  opts.cacheDir = dir;
  serve::VerifyServer b(opts);
  EXPECT_GE(b.collector().counter("serve.journal.restored"), 1u);

  // The warm answer IS the persisted result: cached, verdict and counters
  // identical to the pre-restart fresh verification.
  const core::VerifyResponse warm = handle(b, req);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.verdict, fresh.verdict);
  EXPECT_EQ(warm.counters, fresh.counters);
  const auto cs = b.cacheStats();
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.misses, 0u);

  // The Timeout verdict was never persisted: after the restart its cell
  // runs fresh.
  timeout.id = 3;
  EXPECT_FALSE(handle(b, timeout).cached);
}

// ---- worker pool: fault injection -------------------------------------------

TEST(ServePool, CrashHookRequestIsRetriedOnSibling) {
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.workerExecutable = VELEV_SERVE_BIN;
  opts.workerCrashAfter = 1;  // slot 0 dies before answering its first job
  serve::VerifyServer server(opts);

  // The first request lands on the crashing worker, which _exit()s
  // mid-job; the supervisor retries it on the sibling. The client sees a
  // normal answer, never an error and never a hang.
  const core::VerifyResponse resp = handle(server, smallRequest());
  EXPECT_TRUE(resp.error.empty()) << resp.error;
  EXPECT_EQ(resp.verdict, core::Verdict::Correct);
  EXPECT_GE(server.collector().counter("serve.worker.crashes"), 1u);
  EXPECT_GE(server.collector().counter("serve.pool.retries"), 1u);

  // Cache integrity across the crash: the retried result was cached and is
  // identical to a fresh in-process verification.
  const core::VerifyReport rep = core::verify(smallRequest());
  EXPECT_EQ(resp.verdict, rep.verdict());
  EXPECT_EQ(resp.counters, core::reportCounters(rep));
  const core::VerifyResponse hit = handle(server, smallRequest(2));
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.counters, resp.counters);
}

TEST(ServePool, SigkilledWorkerMidSolveRecovers) {
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.workerExecutable = VELEV_SERVE_BIN;
  serve::VerifyServer server(opts);
  ASSERT_TRUE(waitFor([] { return workerPids().size() >= 2; }));

  constexpr int kJobs = 6;
  std::vector<std::thread> clients;
  std::vector<core::VerifyResponse> resps(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    core::VerifyRequest req = smallRequest(i + 1);
    req.robSize = 8 + static_cast<unsigned>(i);  // six distinct cells
    clients.emplace_back([&, req, i] { resps[i] = handle(server, req); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto pids = workerPids();
  ASSERT_FALSE(pids.empty());
  ASSERT_EQ(::kill(pids.front(), SIGKILL), 0);

  for (auto& t : clients) t.join();
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_TRUE(resps[i].error.empty()) << resps[i].error;
    EXPECT_EQ(resps[i].verdict, core::Verdict::Correct);
  }
  EXPECT_TRUE(waitFor([&] {
    return server.collector().counter("serve.worker.crashes") >= 1;
  }));
  EXPECT_TRUE(waitFor([&] {
    return server.collector().counter("serve.worker.respawns") >= 1;
  }));
}

TEST(ServePool, RetriesExhaustedAnswerErrorNeverHang) {
  serve::WorkerPoolOptions po;
  po.executable = VELEV_SERVE_BIN;
  po.workers = 1;
  po.maxRetries = 0;  // one crash is terminal for the request...
  po.crashAfter = 1;
  serve::WorkerPool pool(po);
  std::string err;
  ASSERT_TRUE(pool.start(&err)) << err;

  std::promise<core::VerifyResponse> p1;
  auto f1 = p1.get_future();
  pool.submit(smallRequest(),
              [&](const core::VerifyResponse& r) { p1.set_value(r); });
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);  // never a hung client
  const core::VerifyResponse r1 = f1.get();
  EXPECT_FALSE(r1.error.empty());
  EXPECT_EQ(r1.exitCode, 2);

  // ... but not for the slot: it respawns (without the crash hook) and the
  // next request succeeds.
  std::promise<core::VerifyResponse> p2;
  auto f2 = p2.get_future();
  pool.submit(smallRequest(2),
              [&](const core::VerifyResponse& r) { p2.set_value(r); });
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(60)),
            std::future_status::ready);
  const core::VerifyResponse r2 = f2.get();
  EXPECT_TRUE(r2.error.empty()) << r2.error;
  EXPECT_EQ(r2.verdict, core::Verdict::Correct);

  pool.stop();
  const auto s = pool.stats();
  EXPECT_EQ(s.crashes, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_GE(s.respawns, 1u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.inflight, 0u);
}

TEST(ServePool, BatchedResponsesMatchFreshSingleRequestVerifies) {
  // One worker, batching on: occupy the worker with a slow job from a
  // different lane, pile three same-lane requests (identical cell modulo
  // ROB size — the paper's Table 5 column) into the queue, and check that
  // every answer is verdict+counter identical to a fresh single-request
  // verification. The equivalence gate holds on every attempt; the
  // batches>=1 observation is timing-dependent, so the scenario retries
  // with a fresh server until a batch is seen.
  bool sawBatch = false;
  for (int attempt = 0; attempt < 5 && !sawBatch; ++attempt) {
    serve::ServerOptions opts;
    opts.workers = 1;
    opts.batch = true;
    opts.workerExecutable = VELEV_SERVE_BIN;
    serve::VerifyServer server(opts);

    core::VerifyRequest slow = smallRequest(99);
    slow.robSize = 16;
    slow.engine = core::Engine::Both;  // different lane, slower job
    core::VerifyResponse slowResp;
    std::thread occupier([&] { slowResp = handle(server, slow); });
    waitFor([&] { return server.collector().counter("serve.jobs") >= 1; });

    constexpr int kLane = 3;
    std::vector<std::thread> clients;
    std::vector<core::VerifyResponse> resps(kLane);
    for (int i = 0; i < kLane; ++i) {
      core::VerifyRequest req = smallRequest(i + 1);
      req.robSize = 2 + static_cast<unsigned>(i);
      clients.emplace_back([&, req, i] { resps[i] = handle(server, req); });
    }
    for (auto& t : clients) t.join();
    occupier.join();
    EXPECT_TRUE(slowResp.error.empty()) << slowResp.error;

    for (int i = 0; i < kLane; ++i) {
      core::VerifyRequest req = smallRequest(i + 1);
      req.robSize = 2 + static_cast<unsigned>(i);
      const core::VerifyReport rep = core::verify(req);
      EXPECT_TRUE(resps[i].error.empty()) << resps[i].error;
      EXPECT_EQ(resps[i].verdict, rep.verdict());
      EXPECT_EQ(resps[i].counters, core::reportCounters(rep));
    }

    std::string err;
    const auto stats = parseJson(server.handleLine("{\"op\": \"stats\"}"));
    ASSERT_TRUE(stats.has_value());
    const JsonValue* counters = stats->find("counters");
    ASSERT_NE(counters, nullptr);
    sawBatch = counters->uintAt("serve.pool.batches_total") >= 1;
    if (sawBatch) {
      EXPECT_GE(counters->uintAt("serve.pool.batched_requests_total"), 2u);
    }
  }
  EXPECT_TRUE(sawBatch);
}

// ---- live-load admission control --------------------------------------------

TEST(ServeAdmission, QueueDepthCapRejectsUnderLoad) {
  // Timing-dependent (the slow job must still be pending when the probe
  // arrives), so the cell grows until the rejection is observed.
  bool rejected = false;
  for (unsigned rob : {32u, 64u, 128u, 256u, 512u}) {
    serve::ServerOptions opts;
    opts.jobs = 1;
    opts.maxQueueDepth = 1;
    serve::VerifyServer server(opts);

    core::VerifyRequest slow = smallRequest(1);
    slow.robSize = rob;
    slow.issueWidth = 4;
    core::VerifyResponse slowResp;
    std::thread t([&] { slowResp = handle(server, slow); });
    waitFor([&] { return server.collector().counter("serve.jobs") >= 1; });

    const core::VerifyResponse probe = handle(server, smallRequest(2));
    t.join();
    EXPECT_TRUE(slowResp.error.empty()) << slowResp.error;

    if (!probe.error.empty()) {
      rejected = true;
      EXPECT_NE(probe.error.find("admission"), std::string::npos)
          << probe.error;
      EXPECT_EQ(probe.exitCode, 2);
      EXPECT_GE(server.collector().counter("serve.admission.rejected"), 1u);
      // Nothing is permanently unservable: with the backlog drained, the
      // same cell is admitted and verified.
      const core::VerifyResponse again = handle(server, smallRequest(3));
      EXPECT_TRUE(again.error.empty()) << again.error;
      EXPECT_EQ(again.verdict, core::Verdict::Correct);
      break;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST(ServeAdmission, PendingSecondsCapRejectsOverCommittedBudgets) {
  bool rejected = false;
  for (unsigned rob : {32u, 64u, 128u, 256u, 512u}) {
    serve::ServerOptions opts;
    opts.jobs = 2;
    opts.maxPendingSeconds = 5;
    serve::VerifyServer server(opts);

    // Admitted on an empty backlog (always admits), committing 4 of the
    // 5-second budget while it runs.
    core::VerifyRequest slow = smallRequest(1);
    slow.robSize = rob;
    slow.issueWidth = 4;
    slow.timeoutSeconds = 4;
    core::VerifyResponse slowResp;
    std::thread t([&] { slowResp = handle(server, slow); });
    waitFor([&] { return server.collector().counter("serve.jobs") >= 1; });

    // 4 + 2 > 5: over budget, rejected.
    core::VerifyRequest big = smallRequest(2);
    big.robSize = 4;
    big.timeoutSeconds = 2;
    const core::VerifyResponse probe = handle(server, big);

    if (!probe.error.empty()) {
      rejected = true;
      EXPECT_NE(probe.error.find("admission"), std::string::npos)
          << probe.error;
      // 4 + 0.5 <= 5: a cheaper request still fits.
      core::VerifyRequest small = smallRequest(3);
      small.timeoutSeconds = 0.5;
      const core::VerifyResponse ok = handle(server, small);
      EXPECT_TRUE(ok.error.empty()) << ok.error;
      t.join();
      break;
    }
    t.join();
  }
  EXPECT_TRUE(rejected);
}

}  // namespace
}  // namespace velev
