// Tests for the velev_serve surface: the schema-versioned
// VerifyRequest/VerifyResponse JSON round trip (strict parsing — unknown
// fields, bad versions and unknown enum names are rejected), the
// content-addressed ResultCache (hit/owner/joined, coalescing, LRU, the
// uncacheable-Timeout policy), the in-process VerifyServer (caching,
// coalescing under concurrency, budget verdicts and their exit codes,
// malformed-line handling, control ops) and the socket client against a
// live server — cached answers must be identical to a fresh in-process
// verification.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/request.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"

namespace velev {
namespace {

core::VerifyRequest smallRequest(std::uint64_t id = 1) {
  core::VerifyRequest req;
  req.id = id;
  req.robSize = 3;
  req.issueWidth = 2;
  return req;
}

// ---- request schema ---------------------------------------------------------

TEST(ServeRequest, JsonRoundTripPreservesEveryField) {
  core::VerifyRequest req;
  req.id = 42;
  req.robSize = 16;
  req.issueWidth = 4;
  req.bug = {models::BugKind::ForwardingWrongOperand, 7};
  req.strategy = core::Strategy::PositiveEqualityOnly;
  req.engine = core::Engine::Both;
  req.ufScheme = evc::UfScheme::Ackermann;
  req.skipSat = true;
  req.coneOfInfluence = false;
  req.inprocess = false;
  req.timeoutSeconds = 12.5;
  req.memoryBudgetBytes = 1 << 20;
  req.satConflictBudget = 9999;

  std::string err;
  const auto back = core::VerifyRequest::parse(req.toJson(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, req);
  EXPECT_EQ(back->id, 42u);
  EXPECT_EQ(back->bug.kind, models::BugKind::ForwardingWrongOperand);
  EXPECT_EQ(back->bug.index, 7u);
  EXPECT_EQ(back->satConflictBudget, 9999);
}

TEST(ServeRequest, DefaultsRoundTripAndFieldsAreOptional) {
  // All fields except "version" are optional: the minimal object is the
  // default request.
  std::string err;
  const auto req = core::VerifyRequest::parse("{\"version\": 1}", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(*req, core::VerifyRequest{});
}

TEST(ServeRequest, RejectsUnknownField) {
  std::string err;
  const auto req = core::VerifyRequest::parse(
      "{\"version\": 1, \"rob_size\": 2, \"bogus_knob\": true}", &err);
  EXPECT_FALSE(req.has_value());
  EXPECT_NE(err.find("bogus_knob"), std::string::npos) << err;
}

TEST(ServeRequest, RejectsMissingOrMismatchedVersion) {
  std::string err;
  EXPECT_FALSE(core::VerifyRequest::parse("{\"rob_size\": 2}", &err)
                   .has_value());
  EXPECT_NE(err.find("version"), std::string::npos) << err;
  EXPECT_FALSE(
      core::VerifyRequest::parse("{\"version\": 999}", &err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST(ServeRequest, RejectsUnknownEnumNames) {
  std::string err;
  EXPECT_FALSE(core::VerifyRequest::parse(
                   "{\"version\": 1, \"strategy\": \"telepathy\"}", &err)
                   .has_value());
  EXPECT_FALSE(core::VerifyRequest::parse(
                   "{\"version\": 1, \"engine\": \"abacus\"}", &err)
                   .has_value());
  EXPECT_FALSE(core::VerifyRequest::parse(
                   "{\"version\": 1, \"bug_kind\": \"gremlin\"}", &err)
                   .has_value());
}

TEST(ServeRequest, ValidateRejectsOutOfRangeValues) {
  core::VerifyRequest req;
  req.robSize = 0;
  EXPECT_TRUE(req.validate().has_value());
  req = {};
  req.robSize = 2;
  req.issueWidth = 4;  // width > size
  EXPECT_TRUE(req.validate().has_value());
  req = {};
  req.bug = {models::BugKind::ForwardingWrongOperand, 100000};
  EXPECT_TRUE(req.validate().has_value());
  EXPECT_FALSE(smallRequest().validate().has_value());
}

TEST(ServeRequest, CacheKeyIgnoresIdButTracksSemantics) {
  core::VerifyRequest a = smallRequest(1);
  core::VerifyRequest b = smallRequest(2);
  EXPECT_EQ(a.cacheKey(), b.cacheKey());  // id is not content
  b.robSize = 4;
  EXPECT_NE(a.cacheKey(), b.cacheKey());
  core::VerifyRequest c = smallRequest(1);
  c.inprocess = false;
  EXPECT_NE(a.cacheKey(), c.cacheKey());
  EXPECT_EQ(a.cacheKeyHex().size(), 16u);
}

// ---- response schema --------------------------------------------------------

TEST(ServeResponse, JsonRoundTrip) {
  core::VerifyResponse resp;
  resp.id = 7;
  resp.cached = true;
  resp.cacheKey = "00deadbeef00cafe";
  resp.verdict = core::Verdict::RewriteMismatch;
  resp.reason = "slice 3 does not conform";
  resp.failedSlice = 3;
  resp.exitCode = 1;
  resp.wallSeconds = 0.25;
  resp.seconds.sim = 0.1;
  resp.seconds.sat = 0.05;
  resp.peakArenaBytes = 12345;
  resp.rssHighWaterKb = 6789;
  resp.counters = {{"sat.conflicts", 11}, {"tlsim.cycles", 5}};

  std::string err;
  const auto back = core::VerifyResponse::parse(resp.toJson(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->id, 7u);
  EXPECT_TRUE(back->cached);
  EXPECT_EQ(back->cacheKey, "00deadbeef00cafe");
  EXPECT_EQ(back->verdict, core::Verdict::RewriteMismatch);
  EXPECT_EQ(back->failedSlice, 3u);
  EXPECT_EQ(back->exitCode, 1);
  EXPECT_DOUBLE_EQ(back->seconds.sim, 0.1);
  EXPECT_EQ(back->counters, resp.counters);
}

TEST(ServeResponse, ErrorResponseRoundTrip) {
  const core::VerifyResponse err = core::VerifyResponse::makeError(9, "nope");
  EXPECT_EQ(err.exitCode, 2);
  std::string perr;
  const auto back = core::VerifyResponse::parse(err.toJson(), &perr);
  ASSERT_TRUE(back.has_value()) << perr;
  EXPECT_EQ(back->id, 9u);
  EXPECT_EQ(back->error, "nope");
  EXPECT_EQ(back->exitCode, 2);
}

TEST(ServeResponse, CompactJsonIsOneWireLine) {
  const core::VerifyRequest req = smallRequest();
  const std::string wire = compactJson(req.toJson());
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  std::string err;
  const auto back = core::VerifyRequest::parse(wire, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, req);
}

// ---- result cache -----------------------------------------------------------

TEST(ServeCache, OwnerFulfillThenHit) {
  serve::ResultCache cache(8);
  core::VerifyResponse out;
  EXPECT_EQ(cache.claim(1, &out, nullptr), serve::ResultCache::Claim::Owner);

  core::VerifyResponse resp;
  resp.verdict = core::Verdict::Correct;
  cache.fulfill(1, resp, /*cacheable=*/true);

  EXPECT_EQ(cache.claim(1, &out, nullptr), serve::ResultCache::Claim::Hit);
  EXPECT_EQ(out.verdict, core::Verdict::Correct);
  EXPECT_TRUE(out.cached);  // hits are marked as cache copies

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.inflight, 0u);
}

TEST(ServeCache, JoinersCoalesceOntoOneOwner) {
  serve::ResultCache cache(8);
  core::VerifyResponse out;
  ASSERT_EQ(cache.claim(5, &out, nullptr), serve::ResultCache::Claim::Owner);

  std::vector<core::VerifyResponse> delivered;
  for (int i = 0; i < 3; ++i) {
    const auto claim = cache.claim(
        5, &out, [&](const core::VerifyResponse& r) { delivered.push_back(r); });
    EXPECT_EQ(claim, serve::ResultCache::Claim::Joined);
  }
  EXPECT_TRUE(delivered.empty());  // nothing fires before fulfill

  core::VerifyResponse resp;
  resp.verdict = core::Verdict::Correct;
  cache.fulfill(5, resp, true);

  ASSERT_EQ(delivered.size(), 3u);
  for (const auto& r : delivered) {
    EXPECT_EQ(r.verdict, core::Verdict::Correct);
    EXPECT_TRUE(r.cached);  // joiners' answers came from a job they didn't run
  }
  EXPECT_EQ(cache.stats().coalesced, 3u);
}

TEST(ServeCache, UncacheableFulfillWakesWaitersButStoresNothing) {
  serve::ResultCache cache(8);
  core::VerifyResponse out;
  ASSERT_EQ(cache.claim(9, &out, nullptr), serve::ResultCache::Claim::Owner);
  int fired = 0;
  ASSERT_EQ(cache.claim(9, &out,
                        [&](const core::VerifyResponse&) { ++fired; }),
            serve::ResultCache::Claim::Joined);

  core::VerifyResponse resp;
  resp.verdict = core::Verdict::Timeout;  // the daemon's uncacheable verdict
  cache.fulfill(9, resp, /*cacheable=*/false);

  EXPECT_EQ(fired, 1);
  EXPECT_EQ(cache.stats().entries, 0u);  // no entry left behind
  // The next claim starts a fresh computation.
  EXPECT_EQ(cache.claim(9, &out, nullptr), serve::ResultCache::Claim::Owner);
  cache.abandon(9, resp);
}

TEST(ServeCache, LruEvictsOldestReadyEntry) {
  serve::ResultCache cache(2);
  core::VerifyResponse out, resp;
  resp.verdict = core::Verdict::Correct;
  for (std::uint64_t key : {1, 2, 3}) {
    ASSERT_EQ(cache.claim(key, &out, nullptr),
              serve::ResultCache::Claim::Owner);
    cache.fulfill(key, resp, true);
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  // Key 1 was least recently used; 2 and 3 survive.
  EXPECT_EQ(cache.claim(1, &out, nullptr), serve::ResultCache::Claim::Owner);
  cache.abandon(1, resp);
  EXPECT_EQ(cache.claim(2, &out, nullptr), serve::ResultCache::Claim::Hit);
  EXPECT_EQ(cache.claim(3, &out, nullptr), serve::ResultCache::Claim::Hit);
}

// ---- in-process server ------------------------------------------------------

core::VerifyResponse handle(serve::VerifyServer& server,
                            const core::VerifyRequest& req) {
  std::string err;
  const auto resp =
      core::VerifyResponse::parse(server.handleLine(compactJson(req.toJson())),
                                  &err);
  EXPECT_TRUE(resp.has_value()) << err;
  return resp.value_or(core::VerifyResponse{});
}

TEST(ServeServer, VerifiesCachesAndAnswersIdentically) {
  serve::VerifyServer server({});
  const core::VerifyRequest req = smallRequest();

  const core::VerifyResponse fresh = handle(server, req);
  EXPECT_TRUE(fresh.error.empty()) << fresh.error;
  EXPECT_FALSE(fresh.cached);
  EXPECT_EQ(fresh.verdict, core::Verdict::Correct);
  EXPECT_EQ(fresh.exitCode, 0);
  EXPECT_EQ(fresh.cacheKey, req.cacheKeyHex());
  EXPECT_FALSE(fresh.counters.empty());

  const core::VerifyResponse hit = handle(server, req);
  EXPECT_TRUE(hit.cached);
  // The cached answer is the SAME result: verdict and the full canonical
  // counter block byte-identical to the fresh verification.
  EXPECT_EQ(hit.verdict, fresh.verdict);
  EXPECT_EQ(hit.counters, fresh.counters);
  EXPECT_EQ(hit.peakArenaBytes, fresh.peakArenaBytes);

  // And both match a fresh in-process core::verify of the same request.
  const core::VerifyReport rep = core::verify(req);
  EXPECT_EQ(fresh.verdict, rep.verdict());
  EXPECT_EQ(fresh.counters, core::reportCounters(rep));

  const auto cs = server.cacheStats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits, 1u);
}

TEST(ServeServer, ResponseIdEchoesRequestId) {
  serve::VerifyServer server({});
  EXPECT_EQ(handle(server, smallRequest(11)).id, 11u);
  EXPECT_EQ(handle(server, smallRequest(22)).id, 22u);  // cache hit, new id
}

TEST(ServeServer, ConcurrentIdenticalRequestsShareOneJob) {
  serve::ServerOptions opts;
  opts.jobs = 4;
  serve::VerifyServer server(opts);

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<core::VerifyResponse> resps(kClients);
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back(
        [&, i] { resps[i] = handle(server, smallRequest(i + 1)); });
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(resps[i].error.empty()) << resps[i].error;
    EXPECT_EQ(resps[i].verdict, core::Verdict::Correct);
    EXPECT_EQ(resps[i].id, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(resps[i].counters, resps[0].counters);
  }
  // All clients asked for one cell: exactly one miss ran a job; everyone
  // else coalesced onto it or hit the finished entry.
  const auto cs = server.cacheStats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_EQ(cs.hits + cs.coalesced, kClients - 1u);
}

TEST(ServeServer, BudgetVerdictsCarryExitCodes) {
  serve::VerifyServer server({});

  core::VerifyRequest timeout = smallRequest();
  timeout.strategy = core::Strategy::PositiveEqualityOnly;
  timeout.timeoutSeconds = 1e-9;
  const core::VerifyResponse t = handle(server, timeout);
  EXPECT_EQ(t.verdict, core::Verdict::Timeout);
  EXPECT_EQ(t.exitCode, 4);
  EXPECT_FALSE(t.reason.empty());

  // Wall-clock timeouts are nondeterministic and must NOT be cached: the
  // identical request runs again, fresh.
  const core::VerifyResponse t2 = handle(server, timeout);
  EXPECT_FALSE(t2.cached);
  EXPECT_EQ(server.cacheStats().entries, 0u);

  // MemOut trips on deterministic logical-arena accounting, so it IS
  // cacheable.
  core::VerifyRequest memout = smallRequest();
  memout.strategy = core::Strategy::PositiveEqualityOnly;
  memout.memoryBudgetBytes = 1000;
  const core::VerifyResponse m = handle(server, memout);
  EXPECT_EQ(m.verdict, core::Verdict::MemOut);
  EXPECT_EQ(m.exitCode, 4);
  const core::VerifyResponse m2 = handle(server, memout);
  EXPECT_TRUE(m2.cached);
  EXPECT_EQ(m2.verdict, core::Verdict::MemOut);
}

TEST(ServeServer, AdmissionCapsClampRequestBudgets) {
  serve::ServerOptions opts;
  opts.maxTimeoutSeconds = 1e-9;  // every admitted request gets this cap
  serve::VerifyServer server(opts);
  core::VerifyRequest req = smallRequest();
  req.strategy = core::Strategy::PositiveEqualityOnly;
  req.timeoutSeconds = 0;  // asks for unlimited; the cap clamps it
  const core::VerifyResponse resp = handle(server, req);
  EXPECT_EQ(resp.verdict, core::Verdict::Timeout);
  EXPECT_EQ(resp.exitCode, 4);
}

TEST(ServeServer, MalformedAndInvalidLinesGetErrorResponses) {
  serve::VerifyServer server({});

  std::string err;
  auto resp = core::VerifyResponse::parse(server.handleLine("not json"), &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_FALSE(resp->error.empty());
  EXPECT_EQ(resp->exitCode, 2);

  // The id is salvaged from an otherwise-invalid request so the client can
  // still match the error to its request.
  resp = core::VerifyResponse::parse(
      server.handleLine(
          "{\"version\": 1, \"id\": 77, \"bogus_field\": true}"),
      &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_EQ(resp->id, 77u);
  EXPECT_FALSE(resp->error.empty());

  // Semantic validation failures answer the same way.
  resp = core::VerifyResponse::parse(
      server.handleLine("{\"version\": 1, \"id\": 5, \"rob_size\": 0}"),
      &err);
  ASSERT_TRUE(resp.has_value()) << err;
  EXPECT_EQ(resp->id, 5u);
  EXPECT_FALSE(resp->error.empty());
  EXPECT_EQ(resp->exitCode, 2);
}

TEST(ServeServer, ControlOpsAnswerInline) {
  serve::VerifyServer server({});
  std::string err;

  const auto ping = parseJson(server.handleLine("{\"op\": \"ping\"}"), &err);
  ASSERT_TRUE(ping.has_value()) << err;
  ASSERT_NE(ping->find("ok"), nullptr);
  EXPECT_TRUE(ping->find("ok")->boolean);

  handle(server, smallRequest());
  const auto stats = parseJson(server.handleLine("{\"op\": \"stats\"}"), &err);
  ASSERT_TRUE(stats.has_value()) << err;
  const JsonValue* counters = stats->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->uintAt("serve.requests"), 1u);
  EXPECT_EQ(counters->uintAt("serve.cache.misses"), 1u);

  const auto bad = parseJson(server.handleLine("{\"op\": \"dance\"}"), &err);
  ASSERT_TRUE(bad.has_value()) << err;
  ASSERT_NE(bad->find("ok"), nullptr);
  EXPECT_FALSE(bad->find("ok")->boolean);
}

// ---- socket client against a live server ------------------------------------

TEST(ServeSocket, ClientRoundTripMatchesInProcessVerify) {
  const std::string path =
      "/tmp/velev_serve_test_" + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions opts;
  opts.unixSocketPath = path;
  opts.jobs = 2;
  serve::VerifyServer server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  {
    auto client = serve::Client::connect("unix:" + path, &err);
    ASSERT_TRUE(client.has_value()) << err;

    core::VerifyRequest req = smallRequest(31);
    req.bug = {models::BugKind::ForwardingWrongOperand, 2};
    const auto resp = client->roundTrip(req, &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->id, 31u);
    EXPECT_FALSE(resp->cached);
    EXPECT_EQ(resp->verdict, core::Verdict::RewriteMismatch);
    EXPECT_EQ(resp->failedSlice, 2u);
    EXPECT_EQ(resp->exitCode, 1);

    // Same request again: a cache hit over the wire, same content as a
    // fresh in-process verification.
    const auto hit = client->roundTrip(req, &err);
    ASSERT_TRUE(hit.has_value()) << err;
    EXPECT_TRUE(hit->cached);
    EXPECT_EQ(hit->verdict, resp->verdict);
    EXPECT_EQ(hit->counters, resp->counters);

    const core::VerifyReport rep = core::verify(req);
    EXPECT_EQ(hit->verdict, rep.verdict());
    EXPECT_EQ(hit->counters, core::reportCounters(rep));
  }
  server.stop();
}

TEST(ServeSocket, EphemeralTcpPortServesRequests) {
  serve::ServerOptions opts;
  opts.tcpPort = 0;  // kernel-assigned loopback port
  serve::VerifyServer server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_GT(server.tcpPort(), 0);

  {
    auto client = serve::Client::connect(
        "127.0.0.1:" + std::to_string(server.tcpPort()), &err);
    ASSERT_TRUE(client.has_value()) << err;
    const auto resp = client->roundTrip(smallRequest(3), &err);
    ASSERT_TRUE(resp.has_value()) << err;
    EXPECT_EQ(resp->verdict, core::Verdict::Correct);
    EXPECT_EQ(resp->id, 3u);
  }
  server.stop();
}

}  // namespace
}  // namespace velev
