// End-to-end tests for the `velev_verify` command-line tool: exit codes
// for correct vs. buggy designs, DIMACS export round-trips through
// sat::Solver, DRAT proof self-check, and --jobs invariance (parallel
// verdicts identical to sequential ones). The binary path is injected by
// CMake as VELEV_VERIFY_BIN.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "core/verifier.hpp"
#include "prop/cnf.hpp"
#include "sat/solver.hpp"
#include "support/json.hpp"
#include "support/trace.hpp"

namespace velev {
namespace {

struct CliResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr
};

CliResult runCli(const std::string& args) {
  const std::string cmd = std::string(VELEV_VERIFY_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  CliResult res;
  char buf[4096];
  while (pipe && fgets(buf, sizeof buf, pipe) != nullptr) res.output += buf;
  if (pipe) {
    const int status = pclose(pipe);
    res.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return res;
}

std::string tmpPath(const char* name) {
  return ::testing::TempDir() + name;
}

// Every per-cell verdict line ("cell NxK: ..."), wall times stripped, for
// comparing runs that should reach identical verdicts.
std::string verdictLines(const std::string& output) {
  std::istringstream is(output);
  std::string line, out;
  while (std::getline(is, line)) {
    if (line.rfind("cell ", 0) != 0) continue;
    const auto timing = line.find(" (");
    out += line.substr(0, timing) + "\n";
  }
  return out;
}

TEST(Cli, CorrectDesignExitsZero) {
  const CliResult r = runCli("--size 4 --width 2 --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("verdict: CORRECT"), std::string::npos) << r.output;
}

TEST(Cli, BuggyDesignExitsOne) {
  const CliResult r = runCli("--size 8 --width 2 --bug fwd:3 --quiet");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("NON-CONFORMING SLICE 3"), std::string::npos)
      << r.output;
}

TEST(Cli, UsageErrorExitsTwo) {
  EXPECT_EQ(runCli("--no-such-flag").exitCode, 2);
  EXPECT_EQ(runCli("--size 2 --width 4").exitCode, 2);  // width > size
  EXPECT_EQ(runCli("--bug nonsense").exitCode, 2);
  EXPECT_EQ(runCli("--grid 2x4").exitCode, 2);  // impossible cell
  EXPECT_EQ(runCli("--jobs 0").exitCode, 2);
}

TEST(Cli, UnknownEngineIsAUsageError) {
  const CliResult r = runCli("--engine cnf");
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("unknown engine"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST(Cli, BddEngineVerdictsMatchSat) {
  const CliResult ok = runCli("--size 2 --width 2 --strategy pe --engine bdd");
  EXPECT_EQ(ok.exitCode, 0) << ok.output;
  const CliResult bug =
      runCli("--size 2 --width 1 --strategy pe --engine bdd --bug stale:2");
  EXPECT_EQ(bug.exitCode, 1) << bug.output;
}

TEST(Cli, BothEngineCrossChecksAndAgrees) {
  const CliResult ok = runCli("--size 2 --width 2 --strategy pe --engine both");
  EXPECT_EQ(ok.exitCode, 0) << ok.output;
  const CliResult bug =
      runCli("--size 2 --width 1 --strategy pe --engine both --bug stale:2");
  EXPECT_EQ(bug.exitCode, 1) << bug.output;
  EXPECT_EQ(bug.output.find("disagreement"), std::string::npos) << bug.output;
}

TEST(Cli, ProofRequiresTheSatEngine) {
  const std::string proof = tmpPath("engine_proof.drat");
  const CliResult r = runCli("--size 2 --width 2 --engine bdd --proof " + proof);
  EXPECT_EQ(r.exitCode, 2) << r.output;
  EXPECT_NE(r.output.find("--proof requires --engine sat"), std::string::npos)
      << r.output;
}

TEST(Cli, BudgetExhaustionExitsThree) {
  const CliResult r =
      runCli("--size 4 --width 4 --strategy pe --budget 1 --quiet");
  EXPECT_EQ(r.exitCode, 3) << r.output;
  EXPECT_NE(r.output.find("INCONCLUSIVE"), std::string::npos) << r.output;
}

TEST(Cli, MemBudgetExhaustionExitsFour) {
  // A 1 MiB logical-arena budget cannot hold the PE-only translation of an
  // 8x4 design; the run must degrade into a memout verdict, not an OOM kill.
  const std::string jsonPath = tmpPath("cli_memout.json");
  const CliResult r = runCli(
      "--size 8 --width 4 --strategy pe --mem-budget 1 --json " + jsonPath +
      " --quiet");
  EXPECT_EQ(r.exitCode, 4) << r.output;
  EXPECT_NE(r.output.find("OUT OF MEMORY"), std::string::npos) << r.output;
  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"verdict\": \"memout\""), std::string::npos)
      << ss.str();
  EXPECT_NE(ss.str().find("\"reason\""), std::string::npos) << ss.str();
}

TEST(Cli, TimeoutExitsFour) {
  // PE-only at 4x4 takes far longer than 10 ms; the deadline must trip one
  // of the cooperative checkpoints and unwind into a timeout verdict.
  const CliResult r =
      runCli("--size 4 --width 4 --strategy pe --timeout 0.01 --quiet");
  EXPECT_EQ(r.exitCode, 4) << r.output;
  EXPECT_NE(r.output.find("TIMEOUT"), std::string::npos) << r.output;
}

TEST(Cli, BadBudgetValuesAreUsageErrors) {
  EXPECT_EQ(runCli("--size 4 --width 2 --timeout 0").exitCode, 2);
  EXPECT_EQ(runCli("--size 4 --width 2 --mem-budget 0").exitCode, 2);
  EXPECT_EQ(runCli("--size 4 --width 2 --fallback bogus").exitCode, 2);
}

TEST(Cli, VerdictHelpersRoundTripEveryVerdict) {
  using core::Verdict;
  for (const Verdict v :
       {Verdict::Correct, Verdict::CounterexampleFound,
        Verdict::RewriteMismatch, Verdict::Inconclusive, Verdict::Timeout,
        Verdict::MemOut, Verdict::Skipped}) {
    const char* name = core::verdictName(v);
    ASSERT_NE(name, nullptr);
    const auto back = core::verdictFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, v) << name;
    const int code = core::verdictExitCode(v);
    EXPECT_TRUE(code == 0 || code == 1 || code == 3 || code == 4) << name;
    EXPECT_NE(code, 2) << "2 is reserved for usage errors: " << name;
  }
  EXPECT_FALSE(core::verdictFromName("no-such-verdict").has_value());
  // The paper-facing mapping the tools rely on.
  EXPECT_EQ(core::verdictExitCode(core::Verdict::Correct), 0);
  EXPECT_EQ(core::verdictExitCode(core::Verdict::CounterexampleFound), 1);
  EXPECT_EQ(core::verdictExitCode(core::Verdict::Timeout), 4);
  EXPECT_EQ(core::verdictExitCode(core::Verdict::MemOut), 4);
}

TEST(Cli, DimacsExportRoundTripsThroughSolver) {
  const std::string cnfPath = tmpPath("cli_export.cnf");
  const CliResult r = runCli("--size 2 --width 1 --strategy pe --dump-cnf " +
                             cnfPath + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;

  std::ifstream in(cnfPath);
  ASSERT_TRUE(in.good());
  const prop::Cnf cnf = prop::parseDimacs(in);
  EXPECT_GT(cnf.numVars, 0u);
  EXPECT_GT(cnf.numClauses(), 0u);
  // The exported correctness CNF must agree with the in-process verdict:
  // UNSAT (the design is correct).
  EXPECT_EQ(sat::solveCnf(cnf), sat::Result::Unsat);
}

TEST(Cli, ProofIsSelfCheckedOnUnsat) {
  const std::string proofPath = tmpPath("cli_proof.drat");
  const CliResult r = runCli("--size 2 --width 1 --strategy pe --proof " +
                             proofPath + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("self-check PASSED"), std::string::npos) << r.output;
  std::ifstream in(proofPath);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_FALSE(first.empty());
}

TEST(Cli, PortfolioProofIsSelfCheckedWithJobs) {
  const std::string proofPath = tmpPath("cli_proof_jobs.drat");
  const CliResult r = runCli("--size 2 --width 1 --strategy pe --jobs 3 " +
                             ("--proof " + proofPath) + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("self-check PASSED"), std::string::npos) << r.output;
}

TEST(Cli, JobsVerdictsIdenticalToSequential) {
  const std::string grid = "--grid 'sizes=2,3,4;widths=1,2' --quiet";
  const CliResult seq = runCli(grid + " --jobs 1");
  const CliResult par = runCli(grid + " --jobs 3");
  EXPECT_EQ(seq.exitCode, 0) << seq.output;
  EXPECT_EQ(par.exitCode, seq.exitCode) << par.output;
  EXPECT_EQ(verdictLines(par.output), verdictLines(seq.output));
  EXPECT_NE(verdictLines(seq.output), "");
}

TEST(Cli, SinglePortfolioVerdictMatchesSequential) {
  const CliResult seq = runCli("--size 2 --width 2 --strategy pe --quiet");
  const CliResult par =
      runCli("--size 2 --width 2 --strategy pe --jobs 4 --quiet");
  EXPECT_EQ(seq.exitCode, 0) << seq.output;
  EXPECT_EQ(par.exitCode, 0) << par.output;
}

TEST(Cli, CellJobsVerdictsIdenticalToSequential) {
  // --cell-jobs parallelizes INSIDE each verification; verdicts must not
  // move, in either single or grid mode.
  const CliResult single = runCli("--size 8 --width 2 --cell-jobs 4 --quiet");
  EXPECT_EQ(single.exitCode, 0) << single.output;
  EXPECT_NE(single.output.find("verdict: CORRECT"), std::string::npos)
      << single.output;

  const std::string grid = "--grid 'sizes=3,4;widths=1,2' --quiet";
  const CliResult seq = runCli(grid);
  const CliResult par = runCli(grid + " --cell-jobs 3");
  EXPECT_EQ(seq.exitCode, 0) << seq.output;
  EXPECT_EQ(par.exitCode, 0) << par.output;
  EXPECT_EQ(verdictLines(par.output), verdictLines(seq.output));
}

TEST(Cli, GridCheckpointResumeRestoresFinishedCells) {
  const std::string ckpt = tmpPath("cli_resume.checkpoint.json");
  std::remove(ckpt.c_str());
  const std::string grid = "--grid 'sizes=2,3;widths=1' --quiet";

  const CliResult first = runCli(grid + " --checkpoint " + ckpt);
  EXPECT_EQ(first.exitCode, 0) << first.output;
  EXPECT_EQ(first.output.find("restored from checkpoint"), std::string::npos)
      << first.output;

  // The checkpoint file is versioned JSON with one record per cell.
  std::ifstream in(ckpt);
  ASSERT_TRUE(in.good()) << ckpt;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string err;
  const auto doc = parseJson(ss.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->uintAt("version"), 1u);
  const JsonValue* cells = doc->find("cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells->array.size(), 2u);

  // Resuming re-verifies nothing: both cells come back restored, with the
  // same verdict lines as the fresh run.
  const CliResult second = runCli(grid + " --checkpoint " + ckpt + " --resume");
  EXPECT_EQ(second.exitCode, 0) << second.output;
  EXPECT_NE(second.output.find("cell 2x1: restored from checkpoint"),
            std::string::npos)
      << second.output;
  EXPECT_NE(second.output.find("cell 3x1: restored from checkpoint"),
            std::string::npos)
      << second.output;
  std::remove(ckpt.c_str());
}

TEST(Cli, CheckpointUsageErrors) {
  EXPECT_EQ(runCli("--grid 4x2 --resume").exitCode, 2);  // needs --checkpoint
  const std::string ckpt = tmpPath("cli_usage.checkpoint.json");
  // --checkpoint is a grid-mode flag.
  EXPECT_EQ(runCli("--size 4 --width 2 --checkpoint " + ckpt).exitCode, 2);
  EXPECT_EQ(runCli("--size 4 --width 2 --cell-jobs 0").exitCode, 2);
}

TEST(Cli, GridWithInjectedBugExitsOneEverywhere) {
  const CliResult r = runCli("--grid 4x2,8x2 --bug fwd:2 --jobs 2 --quiet");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("NON-CONFORMING"), std::string::npos) << r.output;
}

TEST(Cli, TraceWritesPerfettoTraceAndVersionedManifest) {
  const std::string dir = tmpPath("cli_trace");
  const CliResult r =
      runCli("--size 4 --width 2 --jobs 2 --stats --trace " + dir + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  // --stats prints the stage tree and counters to stderr (merged in).
  EXPECT_NE(r.output.find("stage tree"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("verify.translate"), std::string::npos) << r.output;

  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  std::string err;
  const auto tr = parseJson(slurp(dir + "/trace.json"), &err);
  ASSERT_TRUE(tr.has_value()) << err;
  const JsonValue* events = tr->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->array.size(), 10u);

  const auto m = parseJson(slurp(dir + "/manifest.json"), &err);
  ASSERT_TRUE(m.has_value()) << err;
  EXPECT_EQ(m->uintAt("schema_version"),
            static_cast<std::uint64_t>(trace::kManifestSchemaVersion));
  EXPECT_EQ(m->stringAt("tool"), "velev_verify");
  EXPECT_EQ(m->stringAt("verdict"), "correct");
  EXPECT_EQ(m->find("config")->uintAt("rob_size"), 4u);
  const JsonValue* counters = m->find("counters");
  ASSERT_NE(counters, nullptr);
  // The acceptance counters: encoding sizes, rewrite effort, per-seed SAT.
  EXPECT_GT(counters->uintAt("evc.p_equations"), 0u);
  EXPECT_GT(counters->uintAt("rewrite.rules_fired"), 0u);
  EXPECT_GT(counters->uintAt("cnf.vars"), 0u);
  EXPECT_NE(counters->find("evc.eij_vars"), nullptr);
  EXPECT_NE(counters->find("sat.seed0.conflicts"), nullptr);
  EXPECT_NE(counters->find("sat.seed1.conflicts"), nullptr);
  EXPECT_NE(counters->find("sat.winner_seed"), nullptr);
}

TEST(Cli, GridTraceWritesPerCellAndMergedManifests) {
  const std::string dir = tmpPath("cli_grid_trace");
  const CliResult r =
      runCli("--grid 2x1,4x2 --jobs 2 --trace " + dir + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;

  auto parseFile = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    auto doc = parseJson(ss.str(), &err);
    EXPECT_TRUE(doc.has_value()) << path << ": " << err;
    return doc;
  };

  const auto cell = parseFile(dir + "/cell_1_4x2.manifest.json");
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->stringAt("tool"), "velev_grid");
  EXPECT_EQ(cell->find("config")->uintAt("rob_size"), 4u);
  EXPECT_EQ(cell->find("config")->uintAt("issue_width"), 2u);
  EXPECT_GT(cell->find("counters")->uintAt("eufm.nodes"), 0u);
  EXPECT_TRUE(parseFile(dir + "/cell_0_2x1.trace.json").has_value());

  const auto merged = parseFile(dir + "/manifest.json");
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->stringAt("verdict"), "correct");
  EXPECT_EQ(merged->find("config")->uintAt("cells"), 2u);
  // Merged counters are sums over the cells, so at least the single-cell's.
  EXPECT_GT(merged->find("counters")->uintAt("eufm.nodes"),
            cell->find("counters")->uintAt("eufm.nodes"));
}

TEST(Cli, GridFallbackWithTraceWritesWellFormedCellManifests) {
  // A 1 MiB arena cannot hold the PE-only translation of an 8x4 design, so
  // with --fallback retry-with-rewriting (the long alias of "rewrite") the
  // cell must memout, retry under the rewriting strategy, succeed, and its
  // per-cell manifest must record the pre-retry verdict.
  const std::string dir = tmpPath("cli_fallback_trace");
  const CliResult r = runCli(
      "--grid 8x4 --strategy pe --mem-budget 1 "
      "--fallback retry-with-rewriting --trace " + dir + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("retried with rewriting after PE-only memout"),
            std::string::npos)
      << r.output;

  auto parseFile = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    auto doc = parseJson(ss.str(), &err);
    EXPECT_TRUE(doc.has_value()) << path << ": " << err;
    return doc;
  };

  const auto cell = parseFile(dir + "/cell_0_8x4.manifest.json");
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->stringAt("tool"), "velev_grid");
  EXPECT_EQ(cell->stringAt("verdict"), "correct");
  const JsonValue* config = cell->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->uintAt("rob_size"), 8u);
  EXPECT_EQ(config->stringAt("first_verdict"), "memout");
  EXPECT_GT(cell->find("counters")->uintAt("eufm.nodes"), 0u);
  EXPECT_TRUE(parseFile(dir + "/cell_0_8x4.trace.json").has_value());

  const auto merged = parseFile(dir + "/manifest.json");
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->stringAt("verdict"), "correct");
  EXPECT_EQ(merged->find("config")->uintAt("cells"), 1u);
}

TEST(Cli, JsonReportIsWrittenAndWellFormed) {
  const std::string jsonPath = tmpPath("cli_report.json");
  const CliResult r =
      runCli("--grid 'sizes=2,3;widths=1' --jobs 2 --json " + jsonPath +
             " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"tool\": \"velev_verify\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"grid\""), std::string::npos);
  EXPECT_NE(json.find("\"rob_size\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"correct\""), std::string::npos);
  EXPECT_NE(json.find("\"mem_high_water_kb\""), std::string::npos);
}

}  // namespace
}  // namespace velev
