// End-to-end tests for the `velev_verify` command-line tool: exit codes
// for correct vs. buggy designs, DIMACS export round-trips through
// sat::Solver, DRAT proof self-check, and --jobs invariance (parallel
// verdicts identical to sequential ones). The binary path is injected by
// CMake as VELEV_VERIFY_BIN.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "core/verifier.hpp"
#include "prop/cnf.hpp"
#include "sat/solver.hpp"

namespace velev {
namespace {

struct CliResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr
};

CliResult runCli(const std::string& args) {
  const std::string cmd = std::string(VELEV_VERIFY_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  CliResult res;
  char buf[4096];
  while (pipe && fgets(buf, sizeof buf, pipe) != nullptr) res.output += buf;
  if (pipe) {
    const int status = pclose(pipe);
    res.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return res;
}

std::string tmpPath(const char* name) {
  return ::testing::TempDir() + name;
}

// Every per-cell verdict line ("cell NxK: ..."), wall times stripped, for
// comparing runs that should reach identical verdicts.
std::string verdictLines(const std::string& output) {
  std::istringstream is(output);
  std::string line, out;
  while (std::getline(is, line)) {
    if (line.rfind("cell ", 0) != 0) continue;
    const auto timing = line.find(" (");
    out += line.substr(0, timing) + "\n";
  }
  return out;
}

TEST(Cli, CorrectDesignExitsZero) {
  const CliResult r = runCli("--size 4 --width 2 --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("verdict: CORRECT"), std::string::npos) << r.output;
}

TEST(Cli, BuggyDesignExitsOne) {
  const CliResult r = runCli("--size 8 --width 2 --bug fwd:3 --quiet");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("NON-CONFORMING SLICE 3"), std::string::npos)
      << r.output;
}

TEST(Cli, UsageErrorExitsTwo) {
  EXPECT_EQ(runCli("--no-such-flag").exitCode, 2);
  EXPECT_EQ(runCli("--size 2 --width 4").exitCode, 2);  // width > size
  EXPECT_EQ(runCli("--bug nonsense").exitCode, 2);
  EXPECT_EQ(runCli("--grid 2x4").exitCode, 2);  // impossible cell
  EXPECT_EQ(runCli("--jobs 0").exitCode, 2);
}

TEST(Cli, BudgetExhaustionExitsThree) {
  const CliResult r =
      runCli("--size 4 --width 4 --strategy pe --budget 1 --quiet");
  EXPECT_EQ(r.exitCode, 3) << r.output;
  EXPECT_NE(r.output.find("INCONCLUSIVE"), std::string::npos) << r.output;
}

TEST(Cli, MemBudgetExhaustionExitsFour) {
  // A 1 MiB logical-arena budget cannot hold the PE-only translation of an
  // 8x4 design; the run must degrade into a memout verdict, not an OOM kill.
  const std::string jsonPath = tmpPath("cli_memout.json");
  const CliResult r = runCli(
      "--size 8 --width 4 --strategy pe --mem-budget 1 --json " + jsonPath +
      " --quiet");
  EXPECT_EQ(r.exitCode, 4) << r.output;
  EXPECT_NE(r.output.find("OUT OF MEMORY"), std::string::npos) << r.output;
  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"verdict\": \"memout\""), std::string::npos)
      << ss.str();
  EXPECT_NE(ss.str().find("\"reason\""), std::string::npos) << ss.str();
}

TEST(Cli, TimeoutExitsFour) {
  // PE-only at 4x4 takes far longer than 10 ms; the deadline must trip one
  // of the cooperative checkpoints and unwind into a timeout verdict.
  const CliResult r =
      runCli("--size 4 --width 4 --strategy pe --timeout 0.01 --quiet");
  EXPECT_EQ(r.exitCode, 4) << r.output;
  EXPECT_NE(r.output.find("TIMEOUT"), std::string::npos) << r.output;
}

TEST(Cli, BadBudgetValuesAreUsageErrors) {
  EXPECT_EQ(runCli("--size 4 --width 2 --timeout 0").exitCode, 2);
  EXPECT_EQ(runCli("--size 4 --width 2 --mem-budget 0").exitCode, 2);
  EXPECT_EQ(runCli("--size 4 --width 2 --fallback bogus").exitCode, 2);
}

TEST(Cli, VerdictHelpersRoundTripEveryVerdict) {
  using core::Verdict;
  for (const Verdict v :
       {Verdict::Correct, Verdict::CounterexampleFound,
        Verdict::RewriteMismatch, Verdict::Inconclusive, Verdict::Timeout,
        Verdict::MemOut, Verdict::Skipped}) {
    const char* name = core::verdictName(v);
    ASSERT_NE(name, nullptr);
    const auto back = core::verdictFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, v) << name;
    const int code = core::verdictExitCode(v);
    EXPECT_TRUE(code == 0 || code == 1 || code == 3 || code == 4) << name;
    EXPECT_NE(code, 2) << "2 is reserved for usage errors: " << name;
  }
  EXPECT_FALSE(core::verdictFromName("no-such-verdict").has_value());
  // The paper-facing mapping the tools rely on.
  EXPECT_EQ(core::verdictExitCode(core::Verdict::Correct), 0);
  EXPECT_EQ(core::verdictExitCode(core::Verdict::CounterexampleFound), 1);
  EXPECT_EQ(core::verdictExitCode(core::Verdict::Timeout), 4);
  EXPECT_EQ(core::verdictExitCode(core::Verdict::MemOut), 4);
}

TEST(Cli, DimacsExportRoundTripsThroughSolver) {
  const std::string cnfPath = tmpPath("cli_export.cnf");
  const CliResult r = runCli("--size 2 --width 1 --strategy pe --dump-cnf " +
                             cnfPath + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;

  std::ifstream in(cnfPath);
  ASSERT_TRUE(in.good());
  const prop::Cnf cnf = prop::parseDimacs(in);
  EXPECT_GT(cnf.numVars, 0u);
  EXPECT_GT(cnf.numClauses(), 0u);
  // The exported correctness CNF must agree with the in-process verdict:
  // UNSAT (the design is correct).
  EXPECT_EQ(sat::solveCnf(cnf), sat::Result::Unsat);
}

TEST(Cli, ProofIsSelfCheckedOnUnsat) {
  const std::string proofPath = tmpPath("cli_proof.drat");
  const CliResult r = runCli("--size 2 --width 1 --strategy pe --proof " +
                             proofPath + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("self-check PASSED"), std::string::npos) << r.output;
  std::ifstream in(proofPath);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_FALSE(first.empty());
}

TEST(Cli, PortfolioProofIsSelfCheckedWithJobs) {
  const std::string proofPath = tmpPath("cli_proof_jobs.drat");
  const CliResult r = runCli("--size 2 --width 1 --strategy pe --jobs 3 " +
                             ("--proof " + proofPath) + " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("self-check PASSED"), std::string::npos) << r.output;
}

TEST(Cli, JobsVerdictsIdenticalToSequential) {
  const std::string grid = "--grid 'sizes=2,3,4;widths=1,2' --quiet";
  const CliResult seq = runCli(grid + " --jobs 1");
  const CliResult par = runCli(grid + " --jobs 3");
  EXPECT_EQ(seq.exitCode, 0) << seq.output;
  EXPECT_EQ(par.exitCode, seq.exitCode) << par.output;
  EXPECT_EQ(verdictLines(par.output), verdictLines(seq.output));
  EXPECT_NE(verdictLines(seq.output), "");
}

TEST(Cli, SinglePortfolioVerdictMatchesSequential) {
  const CliResult seq = runCli("--size 2 --width 2 --strategy pe --quiet");
  const CliResult par =
      runCli("--size 2 --width 2 --strategy pe --jobs 4 --quiet");
  EXPECT_EQ(seq.exitCode, 0) << seq.output;
  EXPECT_EQ(par.exitCode, 0) << par.output;
}

TEST(Cli, GridWithInjectedBugExitsOneEverywhere) {
  const CliResult r = runCli("--grid 4x2,8x2 --bug fwd:2 --jobs 2 --quiet");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("NON-CONFORMING"), std::string::npos) << r.output;
}

TEST(Cli, JsonReportIsWrittenAndWellFormed) {
  const std::string jsonPath = tmpPath("cli_report.json");
  const CliResult r =
      runCli("--grid 'sizes=2,3;widths=1' --jobs 2 --json " + jsonPath +
             " --quiet");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"tool\": \"velev_verify\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"grid\""), std::string::npos);
  EXPECT_NE(json.find("\"rob_size\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"correct\""), std::string::npos);
  EXPECT_NE(json.find("\"mem_high_water_kb\""), std::string::npos);
}

}  // namespace
}  // namespace velev
