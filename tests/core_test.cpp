// End-to-end integration tests of the verifier: both strategies on a grid
// of correct configurations, all bug kinds caught, verdict semantics, and
// cross-strategy agreement.
#include <gtest/gtest.h>

#include "core/verifier.hpp"

namespace velev::core {
namespace {

struct GridParam {
  unsigned n, k;
};

class VerifyGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(VerifyGrid, BothStrategiesProveCorrectDesign) {
  const auto [n, k] = GetParam();
  {
    VerifyOptions opts;
    opts.strategy = Strategy::RewritingPlusPositiveEquality;
    const VerifyReport rep = verify({n, k}, {}, opts);
    EXPECT_EQ(rep.verdict(), Verdict::Correct)
        << rep.outcome.reason << " slice " << rep.outcome.failedSlice;
    // The paper's Table 5 property: no e_ij variables after rewriting.
    EXPECT_EQ(rep.evcStats.eijVars, 0u);
    EXPECT_EQ(rep.updatesRemoved, k + 2 * n);
  }
  // PE-only blows up steeply (the phenomenon of Table 2); N=4/k=4 already
  // takes minutes, so the test grid stops at N=3 — the benches cover more.
  if (n <= 3) {
    VerifyOptions opts;
    opts.strategy = Strategy::PositiveEqualityOnly;
    const VerifyReport rep = verify({n, k}, {}, opts);
    EXPECT_EQ(rep.verdict(), Verdict::Correct);
    EXPECT_GT(rep.evcStats.eijVars, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VerifyGrid,
    ::testing::Values(GridParam{1, 1}, GridParam{2, 1}, GridParam{2, 2},
                      GridParam{3, 2}, GridParam{3, 3}, GridParam{4, 1},
                      GridParam{4, 4}, GridParam{8, 2}, GridParam{10, 5},
                      GridParam{16, 16}, GridParam{24, 3}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k);
    });

struct BugCase {
  models::BugKind kind;
  unsigned n, k, index;
  bool peOnlyFindsCounterexample;  // semantically visible to the criterion?
};

class VerifyBugs : public ::testing::TestWithParam<BugCase> {};

TEST_P(VerifyBugs, RewritingFlagsBug) {
  const auto& p = GetParam();
  VerifyOptions opts;
  opts.strategy = Strategy::RewritingPlusPositiveEquality;
  const VerifyReport rep = verify({p.n, p.k}, {p.kind, p.index}, opts);
  EXPECT_EQ(rep.verdict(), Verdict::RewriteMismatch);
  EXPECT_GE(rep.outcome.failedSlice, 1u);
  EXPECT_FALSE(rep.outcome.reason.empty());
}

TEST_P(VerifyBugs, PositiveEqualityOnlyVerdict) {
  const auto& p = GetParam();
  VerifyOptions opts;
  opts.strategy = Strategy::PositiveEqualityOnly;
  const VerifyReport rep = verify({p.n, p.k}, {p.kind, p.index}, opts);
  if (p.peOnlyFindsCounterexample) {
    EXPECT_EQ(rep.verdict(), Verdict::CounterexampleFound);
  } else {
    // A completion-function defect changes the abstraction function on both
    // sides of the diagram, so the safety criterion still holds.
    EXPECT_EQ(rep.verdict(), Verdict::Correct);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, VerifyBugs,
    ::testing::Values(
        BugCase{models::BugKind::ForwardingWrongOperand, 3, 1, 3, true},
        BugCase{models::BugKind::ForwardingWrongOperand, 4, 2, 2, true},
        BugCase{models::BugKind::ForwardingStaleResult, 3, 2, 2, true},
        BugCase{models::BugKind::RetireIgnoresValidResult, 3, 2, 1, true},
        BugCase{models::BugKind::AluWrongOpcode, 3, 1, 2, true},
        // Within the retire width the skipped completion write IS a safety
        // violation (the instruction may retire-write on the implementation
        // side but never writes on the specification side)...
        BugCase{models::BugKind::CompletionSkipsWrite, 3, 2, 2, true},
        // ...outside the retire width it affects the abstraction function
        // on both sides identically and the criterion still holds.
        BugCase{models::BugKind::CompletionSkipsWrite, 3, 2, 3, false}),
    [](const auto& info) {
      return "kind" + std::to_string(static_cast<int>(info.param.kind)) +
             "N" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k) + "i" +
             std::to_string(info.param.index);
    });

TEST(Verify, ReportTimingsPopulated) {
  const VerifyReport rep = verify({4, 2});
  EXPECT_GE(rep.simSeconds(), 0.0);
  EXPECT_GE(rep.totalSeconds(), rep.satSeconds());
  EXPECT_EQ(rep.outcome.satResult, sat::Result::Unsat);
  EXPECT_GT(rep.evcStats.cnfClauses, 0u);
  EXPECT_GT(rep.simStats.signalEvals, 0u);
  // Budget accounting is populated even for unbudgeted runs.
  EXPECT_GT(rep.outcome.peakArenaBytes, 0u);
  EXPECT_FALSE(rep.outcome.budgetExceeded());
}

TEST(Verify, ConflictBudgetGivesInconclusive) {
  // PE-only on a moderately sized design with a 1-conflict budget cannot
  // complete the proof.
  VerifyOptions opts;
  opts.strategy = Strategy::PositiveEqualityOnly;
  opts.budget.satConflicts = 1;
  const VerifyReport rep = verify({4, 2}, {}, opts);
  EXPECT_EQ(rep.verdict(), Verdict::Inconclusive);
  EXPECT_FALSE(rep.outcome.budgetExceeded());
  EXPECT_FALSE(rep.outcome.reason.empty());
}

TEST(Verify, NaiveSimulationGivesSameVerdict) {
  VerifyOptions coi, naive;
  naive.sim.coneOfInfluence = false;
  const VerifyReport a = verify({4, 2}, {}, coi);
  const VerifyReport b = verify({4, 2}, {}, naive);
  EXPECT_EQ(a.verdict(), Verdict::Correct);
  EXPECT_EQ(b.verdict(), Verdict::Correct);
  // The naive mode must do strictly more evaluation work.
  EXPECT_GT(b.simStats.signalEvals, a.simStats.signalEvals);
}

TEST(Verify, CnfStatsIndependentOfRobSize) {
  // Table 5's headline property: after rewriting, the CNF depends only on
  // the issue width.
  VerifyOptions opts;
  const VerifyReport a = verify({4, 2}, {}, opts);
  const VerifyReport b = verify({12, 2}, {}, opts);
  const VerifyReport c = verify({24, 2}, {}, opts);
  EXPECT_EQ(a.evcStats.cnfVars, b.evcStats.cnfVars);
  EXPECT_EQ(b.evcStats.cnfVars, c.evcStats.cnfVars);
  EXPECT_EQ(a.evcStats.cnfClauses, c.evcStats.cnfClauses);
}

TEST(Verify, PeOnlyCnfGrowsWithRobSize) {
  VerifyOptions opts;
  opts.strategy = Strategy::PositiveEqualityOnly;
  const VerifyReport a = verify({2, 1}, {}, opts);
  const VerifyReport b = verify({4, 1}, {}, opts);
  EXPECT_GT(b.evcStats.cnfVars, a.evcStats.cnfVars);
  EXPECT_GT(b.evcStats.eijVars, a.evcStats.eijVars);
}

}  // namespace
}  // namespace velev::core
