// End-to-end integration tests of the verifier: both strategies on a grid
// of correct configurations, all bug kinds caught, verdict semantics,
// cross-strategy agreement, and the name-registry round trips for the
// core enums.
#include <gtest/gtest.h>

#include "core/request.hpp"
#include "core/verifier.hpp"
#include "support/names.hpp"

namespace velev::core {
namespace {

VerifyRequest makeRequest(unsigned n, unsigned k) {
  VerifyRequest req;
  req.robSize = n;
  req.issueWidth = k;
  return req;
}

struct GridParam {
  unsigned n, k;
};

class VerifyGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(VerifyGrid, BothStrategiesProveCorrectDesign) {
  const auto [n, k] = GetParam();
  {
    VerifyRequest req = makeRequest(n, k);
    req.strategy = Strategy::RewritingPlusPositiveEquality;
    const VerifyReport rep = verify(req);
    EXPECT_EQ(rep.verdict(), Verdict::Correct)
        << rep.outcome.reason << " slice " << rep.outcome.failedSlice;
    // The paper's Table 5 property: no e_ij variables after rewriting.
    EXPECT_EQ(rep.evcStats.eijVars, 0u);
    EXPECT_EQ(rep.updatesRemoved, k + 2 * n);
  }
  // PE-only blows up steeply (the phenomenon of Table 2); N=4/k=4 already
  // takes minutes, so the test grid stops at N=3 — the benches cover more.
  if (n <= 3) {
    VerifyRequest req = makeRequest(n, k);
    req.strategy = Strategy::PositiveEqualityOnly;
    const VerifyReport rep = verify(req);
    EXPECT_EQ(rep.verdict(), Verdict::Correct);
    EXPECT_GT(rep.evcStats.eijVars, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VerifyGrid,
    ::testing::Values(GridParam{1, 1}, GridParam{2, 1}, GridParam{2, 2},
                      GridParam{3, 2}, GridParam{3, 3}, GridParam{4, 1},
                      GridParam{4, 4}, GridParam{8, 2}, GridParam{10, 5},
                      GridParam{16, 16}, GridParam{24, 3}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k);
    });

struct BugCase {
  models::BugKind kind;
  unsigned n, k, index;
  bool peOnlyFindsCounterexample;  // semantically visible to the criterion?
};

class VerifyBugs : public ::testing::TestWithParam<BugCase> {};

TEST_P(VerifyBugs, RewritingFlagsBug) {
  const auto& p = GetParam();
  VerifyRequest req = makeRequest(p.n, p.k);
  req.bug = {p.kind, p.index};
  req.strategy = Strategy::RewritingPlusPositiveEquality;
  const VerifyReport rep = verify(req);
  EXPECT_EQ(rep.verdict(), Verdict::RewriteMismatch);
  EXPECT_GE(rep.outcome.failedSlice, 1u);
  EXPECT_FALSE(rep.outcome.reason.empty());
}

TEST_P(VerifyBugs, PositiveEqualityOnlyVerdict) {
  const auto& p = GetParam();
  VerifyRequest req = makeRequest(p.n, p.k);
  req.bug = {p.kind, p.index};
  req.strategy = Strategy::PositiveEqualityOnly;
  const VerifyReport rep = verify(req);
  if (p.peOnlyFindsCounterexample) {
    EXPECT_EQ(rep.verdict(), Verdict::CounterexampleFound);
  } else {
    // A completion-function defect changes the abstraction function on both
    // sides of the diagram, so the safety criterion still holds.
    EXPECT_EQ(rep.verdict(), Verdict::Correct);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, VerifyBugs,
    ::testing::Values(
        BugCase{models::BugKind::ForwardingWrongOperand, 3, 1, 3, true},
        BugCase{models::BugKind::ForwardingWrongOperand, 4, 2, 2, true},
        BugCase{models::BugKind::ForwardingStaleResult, 3, 2, 2, true},
        BugCase{models::BugKind::RetireIgnoresValidResult, 3, 2, 1, true},
        BugCase{models::BugKind::AluWrongOpcode, 3, 1, 2, true},
        // Within the retire width the skipped completion write IS a safety
        // violation (the instruction may retire-write on the implementation
        // side but never writes on the specification side)...
        BugCase{models::BugKind::CompletionSkipsWrite, 3, 2, 2, true},
        // ...outside the retire width it affects the abstraction function
        // on both sides identically and the criterion still holds.
        BugCase{models::BugKind::CompletionSkipsWrite, 3, 2, 3, false}),
    [](const auto& info) {
      return "kind" + std::to_string(static_cast<int>(info.param.kind)) +
             "N" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k) + "i" +
             std::to_string(info.param.index);
    });

TEST(Verify, ReportTimingsPopulated) {
  const VerifyReport rep = verify(makeRequest(4, 2));
  EXPECT_GE(rep.simSeconds(), 0.0);
  EXPECT_GE(rep.totalSeconds(), rep.satSeconds());
  EXPECT_EQ(rep.outcome.satResult, sat::Result::Unsat);
  EXPECT_GT(rep.evcStats.cnfClauses, 0u);
  EXPECT_GT(rep.simStats.signalEvals, 0u);
  // Budget accounting is populated even for unbudgeted runs.
  EXPECT_GT(rep.outcome.peakArenaBytes, 0u);
  EXPECT_FALSE(rep.outcome.budgetExceeded());
}

TEST(Verify, ConflictBudgetGivesInconclusive) {
  // PE-only on a moderately sized design with a 1-conflict budget cannot
  // complete the proof.
  VerifyRequest req = makeRequest(4, 2);
  req.strategy = Strategy::PositiveEqualityOnly;
  req.satConflictBudget = 1;
  const VerifyReport rep = verify(req);
  EXPECT_EQ(rep.verdict(), Verdict::Inconclusive);
  EXPECT_FALSE(rep.outcome.budgetExceeded());
  EXPECT_FALSE(rep.outcome.reason.empty());
}

TEST(Verify, NaiveSimulationGivesSameVerdict) {
  VerifyRequest coi = makeRequest(4, 2);
  VerifyRequest naive = makeRequest(4, 2);
  naive.coneOfInfluence = false;
  const VerifyReport a = verify(coi);
  const VerifyReport b = verify(naive);
  EXPECT_EQ(a.verdict(), Verdict::Correct);
  EXPECT_EQ(b.verdict(), Verdict::Correct);
  // The naive mode must do strictly more evaluation work.
  EXPECT_GT(b.simStats.signalEvals, a.simStats.signalEvals);
}

TEST(Verify, CnfStatsIndependentOfRobSize) {
  // Table 5's headline property: after rewriting, the CNF depends only on
  // the issue width.
  const VerifyReport a = verify(makeRequest(4, 2));
  const VerifyReport b = verify(makeRequest(12, 2));
  const VerifyReport c = verify(makeRequest(24, 2));
  EXPECT_EQ(a.evcStats.cnfVars, b.evcStats.cnfVars);
  EXPECT_EQ(b.evcStats.cnfVars, c.evcStats.cnfVars);
  EXPECT_EQ(a.evcStats.cnfClauses, c.evcStats.cnfClauses);
}

TEST(Verify, PeOnlyCnfGrowsWithRobSize) {
  VerifyRequest small = makeRequest(2, 1);
  small.strategy = Strategy::PositiveEqualityOnly;
  VerifyRequest large = makeRequest(4, 1);
  large.strategy = Strategy::PositiveEqualityOnly;
  const VerifyReport a = verify(small);
  const VerifyReport b = verify(large);
  EXPECT_GT(b.evcStats.cnfVars, a.evcStats.cnfVars);
  EXPECT_GT(b.evcStats.eijVars, a.evcStats.eijVars);
}

// ---- name-registry round trips ---------------------------------------------
// Every enumerator of the core enums must round-trip through the
// support/names.hpp registry: nameOf gives a stable non-"unknown" name and
// fromName inverts it. An enumerator added without a table entry fails here.

class StrategyNames : public ::testing::TestWithParam<Strategy> {};
TEST_P(StrategyNames, RoundTrips) {
  const char* name = names::nameOf(GetParam());
  EXPECT_STRNE(name, "unknown");
  const auto back = names::fromName<Strategy>(name);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, GetParam());
  EXPECT_STREQ(strategyName(GetParam()), name);  // legacy wrapper agrees
}
INSTANTIATE_TEST_SUITE_P(Registry, StrategyNames,
                         ::testing::ValuesIn(names::valuesOf<Strategy>()),
                         [](const auto& info) {
                           return std::to_string(info.index);
                         });

class EngineNames : public ::testing::TestWithParam<Engine> {};
TEST_P(EngineNames, RoundTrips) {
  const char* name = names::nameOf(GetParam());
  EXPECT_STRNE(name, "unknown");
  const auto back = names::fromName<Engine>(name);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, GetParam());
  EXPECT_STREQ(engineName(GetParam()), name);
}
INSTANTIATE_TEST_SUITE_P(Registry, EngineNames,
                         ::testing::ValuesIn(names::valuesOf<Engine>()),
                         [](const auto& info) {
                           return std::to_string(info.index);
                         });

class VerdictNames : public ::testing::TestWithParam<Verdict> {};
TEST_P(VerdictNames, RoundTrips) {
  const char* name = names::nameOf(GetParam());
  EXPECT_STRNE(name, "unknown");
  const auto back = names::fromName<Verdict>(name);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, GetParam());
  EXPECT_STREQ(verdictName(GetParam()), name);
  // Every named verdict also has a defined exit-code mapping.
  const int code = verdictExitCode(GetParam());
  EXPECT_GE(code, 0);
  EXPECT_LE(code, 4);
}
INSTANTIATE_TEST_SUITE_P(Registry, VerdictNames,
                         ::testing::ValuesIn(names::valuesOf<Verdict>()),
                         [](const auto& info) {
                           return std::to_string(info.index);
                         });

}  // namespace
}  // namespace velev::core
