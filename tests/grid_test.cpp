// Tests for the parallel grid runner: parallel runs must be
// observationally identical to sequential runs (same verdicts, same CNF
// statistics, input order preserved), cancellation must stop queued cells,
// and makeGrid must drop impossible configurations.
#include <gtest/gtest.h>

#include <vector>

#include "core/grid_runner.hpp"

namespace velev::core {
namespace {

TEST(Grid, MakeGridDropsImpossibleCells) {
  const std::vector<unsigned> sizes = {2, 4};
  const std::vector<unsigned> widths = {1, 2, 4};
  const auto cells = makeGrid(sizes, widths);
  // 2x4 is impossible (width > size): 2x1 2x2 4x1 4x2 4x4 remain.
  ASSERT_EQ(cells.size(), 5u);
  EXPECT_EQ(cells[0].robSize, 2u);
  EXPECT_EQ(cells[0].issueWidth, 1u);
  EXPECT_EQ(cells.back().robSize, 4u);
  EXPECT_EQ(cells.back().issueWidth, 4u);
}

TEST(Grid, ParallelVerdictsIdenticalToSequential) {
  const std::vector<unsigned> sizes = {2, 3, 4};
  const std::vector<unsigned> widths = {1, 2};
  const auto cells = makeGrid(sizes, widths);

  GridOptions seq;
  seq.jobs = 1;
  const auto sequential = runGrid(cells, seq);

  GridOptions par;
  par.jobs = 3;
  const auto parallel = runGrid(cells, par);

  ASSERT_EQ(sequential.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    // Input order preserved on both paths.
    EXPECT_EQ(sequential[i].cell.robSize, cells[i].robSize);
    EXPECT_EQ(parallel[i].cell.robSize, cells[i].robSize);
    EXPECT_EQ(parallel[i].cell.issueWidth, cells[i].issueWidth);
    // Identical verdicts and identical translated formulas.
    EXPECT_EQ(sequential[i].report.verdict(), Verdict::Correct);
    EXPECT_EQ(parallel[i].report.verdict(), sequential[i].report.verdict());
    EXPECT_EQ(parallel[i].report.evcStats.cnfVars,
              sequential[i].report.evcStats.cnfVars);
    EXPECT_EQ(parallel[i].report.evcStats.cnfClauses,
              sequential[i].report.evcStats.cnfClauses);
    EXPECT_FALSE(parallel[i].skipped);
    EXPECT_GT(parallel[i].memHighWaterKb, 0u);
  }
}

TEST(Grid, BuggyCellReportsMismatchUnderParallelRun) {
  std::vector<GridCell> cells = makeGrid(std::vector<unsigned>{4, 8},
                                         std::vector<unsigned>{2});
  cells[1].bug.kind = models::BugKind::ForwardingWrongOperand;
  cells[1].bug.index = 2;
  GridOptions opts;
  opts.jobs = 2;
  const auto results = runGrid(cells, opts);
  EXPECT_EQ(results[0].report.verdict(), Verdict::Correct);
  EXPECT_EQ(results[1].report.verdict(), Verdict::RewriteMismatch);
  EXPECT_EQ(results[1].report.outcome.failedSlice, 2u);
}

TEST(Grid, CancelledBeforeRunSkipsEveryCell) {
  const auto cells = makeGrid(std::vector<unsigned>{2, 3, 4},
                              std::vector<unsigned>{1});
  CancelToken token;
  token.cancel();
  for (unsigned jobs : {1u, 2u}) {
    GridOptions opts;
    opts.jobs = jobs;
    const auto results = runGrid(cells, opts, &token);
    ASSERT_EQ(results.size(), cells.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].skipped) << "jobs " << jobs << " cell " << i;
      EXPECT_EQ(results[i].cell.robSize, cells[i].robSize);
      // Skipped cells carry their own verdict, not an Inconclusive alias.
      EXPECT_EQ(results[i].report.verdict(), Verdict::Skipped);
      EXPECT_FALSE(results[i].report.outcome.reason.empty());
    }
  }
}

TEST(Grid, IncrementalSessionVerdictsIdenticalToFreshRuns) {
  // One shared incremental SAT session across the cells (sequential by
  // construction) must judge every cell exactly like fresh per-cell
  // solvers — same verdicts, same translated formulas — while actually
  // reusing the session (inprocessing stats recorded per cell).
  const auto cells = makeGrid(std::vector<unsigned>{2, 3, 4},
                              std::vector<unsigned>{1, 2});

  GridOptions fresh;
  const auto baseline = runGrid(cells, fresh);

  GridOptions inc;
  inc.incremental = true;
  const auto shared = runGrid(cells, inc);

  ASSERT_EQ(shared.size(), baseline.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(shared[i].cell.robSize, cells[i].robSize);
    EXPECT_EQ(shared[i].report.verdict(), baseline[i].report.verdict());
    EXPECT_EQ(shared[i].report.verdict(), Verdict::Correct);
    EXPECT_EQ(shared[i].report.evcStats.cnfVars,
              baseline[i].report.evcStats.cnfVars);
    EXPECT_EQ(shared[i].report.evcStats.cnfClauses,
              baseline[i].report.evcStats.cnfClauses);
    EXPECT_TRUE(shared[i].report.inprocessed);
    EXPECT_GT(shared[i].report.inprocessStats.clausesBefore, 0u);
  }
}

TEST(Grid, IncrementalSessionCatchesInjectedBug) {
  // A buggy cell in the middle of a shared-session sweep must still be
  // flagged, and the later correct cell must not be contaminated by it.
  std::vector<GridCell> cells = makeGrid(std::vector<unsigned>{4},
                                         std::vector<unsigned>{2});
  cells.push_back(cells[0]);
  cells.push_back(cells[0]);
  cells[1].bug.kind = models::BugKind::ForwardingWrongOperand;
  cells[1].bug.index = 2;
  GridOptions opts;
  opts.incremental = true;
  const auto results = runGrid(cells, opts);
  EXPECT_EQ(results[0].report.verdict(), Verdict::Correct);
  EXPECT_EQ(results[1].report.verdict(), Verdict::RewriteMismatch);
  EXPECT_EQ(results[2].report.verdict(), Verdict::Correct);
}

TEST(Grid, EmptyGridIsFine) {
  GridOptions opts;
  opts.jobs = 4;
  EXPECT_TRUE(runGrid({}, opts).empty());
}

}  // namespace
}  // namespace velev::core
