// Tests for the parallel grid runner: parallel runs must be
// observationally identical to sequential runs (same verdicts, same CNF
// statistics, input order preserved), cancellation must stop queued cells,
// and makeGrid/makeGridRequests must drop impossible configurations.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/grid_runner.hpp"

namespace velev::core {
namespace {

/// Fresh checkpoint path under the system temp dir; removed up front so a
/// crashed previous run cannot leak records into this one.
std::string checkpointPath(const char* name) {
  const std::string p =
      (std::filesystem::temp_directory_path() /
       (std::string("velev_grid_test_") + name + ".checkpoint.json"))
          .string();
  std::filesystem::remove(p);
  return p;
}

TEST(Grid, MakeGridDropsImpossibleCells) {
  const std::vector<unsigned> sizes = {2, 4};
  const std::vector<unsigned> widths = {1, 2, 4};
  const auto cells = makeGrid(sizes, widths);
  // 2x4 is impossible (width > size): 2x1 2x2 4x1 4x2 4x4 remain.
  ASSERT_EQ(cells.size(), 5u);
  EXPECT_EQ(cells[0].robSize, 2u);
  EXPECT_EQ(cells[0].issueWidth, 1u);
  EXPECT_EQ(cells.back().robSize, 4u);
  EXPECT_EQ(cells.back().issueWidth, 4u);
}

TEST(Grid, MakeGridRequestsStampsBaseOntoEveryCell) {
  const std::vector<unsigned> sizes = {2, 4};
  const std::vector<unsigned> widths = {1, 2, 4};
  VerifyRequest base;
  base.strategy = Strategy::PositiveEqualityOnly;
  base.skipSat = true;
  base.satConflictBudget = 123;
  const auto reqs = makeGridRequests(sizes, widths, base);
  // Same cross product as makeGrid, impossible cells dropped.
  ASSERT_EQ(reqs.size(), 5u);
  EXPECT_EQ(reqs[0].robSize, 2u);
  EXPECT_EQ(reqs[0].issueWidth, 1u);
  EXPECT_EQ(reqs.back().robSize, 4u);
  EXPECT_EQ(reqs.back().issueWidth, 4u);
  for (const VerifyRequest& r : reqs) {
    EXPECT_EQ(r.strategy, Strategy::PositiveEqualityOnly);
    EXPECT_TRUE(r.skipSat);
    EXPECT_EQ(r.satConflictBudget, 123);
  }
}

TEST(Grid, ParallelVerdictsIdenticalToSequential) {
  const std::vector<unsigned> sizes = {2, 3, 4};
  const std::vector<unsigned> widths = {1, 2};
  const auto cells = makeGridRequests(sizes, widths);

  GridRunOptions seq;
  seq.jobs = 1;
  const auto sequential = runGrid(cells, seq);

  GridRunOptions par;
  par.jobs = 3;
  const auto parallel = runGrid(cells, par);

  ASSERT_EQ(sequential.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    // Input order preserved on both paths.
    EXPECT_EQ(sequential[i].cell.robSize, cells[i].robSize);
    EXPECT_EQ(parallel[i].cell.robSize, cells[i].robSize);
    EXPECT_EQ(parallel[i].cell.issueWidth, cells[i].issueWidth);
    // Identical verdicts and identical translated formulas.
    EXPECT_EQ(sequential[i].report.verdict(), Verdict::Correct);
    EXPECT_EQ(parallel[i].report.verdict(), sequential[i].report.verdict());
    EXPECT_EQ(parallel[i].report.evcStats.cnfVars,
              sequential[i].report.evcStats.cnfVars);
    EXPECT_EQ(parallel[i].report.evcStats.cnfClauses,
              sequential[i].report.evcStats.cnfClauses);
    EXPECT_FALSE(parallel[i].skipped);
    EXPECT_GT(parallel[i].memHighWaterKb, 0u);
  }
}

TEST(Grid, HeterogeneousRequestsKeepPerCellOptions) {
  // The request-based grid may mix strategies and budgets per cell — each
  // cell must be judged under ITS options, not the first cell's.
  std::vector<VerifyRequest> reqs(2);
  reqs[0].robSize = 3;
  reqs[0].issueWidth = 1;
  reqs[0].strategy = Strategy::RewritingPlusPositiveEquality;
  reqs[1].robSize = 3;
  reqs[1].issueWidth = 1;
  reqs[1].strategy = Strategy::PositiveEqualityOnly;
  GridRunOptions opts;
  opts.jobs = 2;
  const auto results = runGrid(reqs, opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].report.verdict(), Verdict::Correct);
  EXPECT_EQ(results[1].report.verdict(), Verdict::Correct);
  // PE-only skips the rewriting stage, so its e_ij/CNF encoding is the
  // bigger one — the two cells must not share one translation.
  EXPECT_GT(results[1].report.evcStats.cnfVars,
            results[0].report.evcStats.cnfVars);
}

TEST(Grid, BuggyCellReportsMismatchUnderParallelRun) {
  std::vector<VerifyRequest> cells =
      makeGridRequests(std::vector<unsigned>{4, 8}, std::vector<unsigned>{2});
  cells[1].bug.kind = models::BugKind::ForwardingWrongOperand;
  cells[1].bug.index = 2;
  GridRunOptions opts;
  opts.jobs = 2;
  const auto results = runGrid(cells, opts);
  EXPECT_EQ(results[0].report.verdict(), Verdict::Correct);
  EXPECT_EQ(results[1].report.verdict(), Verdict::RewriteMismatch);
  EXPECT_EQ(results[1].report.outcome.failedSlice, 2u);
}

TEST(Grid, CancelledBeforeRunSkipsEveryCell) {
  const auto cells = makeGridRequests(std::vector<unsigned>{2, 3, 4},
                                      std::vector<unsigned>{1});
  CancelToken token;
  token.cancel();
  for (unsigned jobs : {1u, 2u}) {
    GridRunOptions opts;
    opts.jobs = jobs;
    const auto results = runGrid(cells, opts, &token);
    ASSERT_EQ(results.size(), cells.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].skipped) << "jobs " << jobs << " cell " << i;
      EXPECT_EQ(results[i].cell.robSize, cells[i].robSize);
      // Skipped cells carry their own verdict, not an Inconclusive alias.
      EXPECT_EQ(results[i].report.verdict(), Verdict::Skipped);
      EXPECT_FALSE(results[i].report.outcome.reason.empty());
    }
  }
}

TEST(Grid, IncrementalSessionVerdictsIdenticalToFreshRuns) {
  // One shared incremental SAT session across the cells (sequential by
  // construction) must judge every cell exactly like fresh per-cell
  // solvers — same verdicts, same translated formulas — while actually
  // reusing the session (inprocessing stats recorded per cell).
  const auto cells = makeGridRequests(std::vector<unsigned>{2, 3, 4},
                                      std::vector<unsigned>{1, 2});

  GridRunOptions fresh;
  const auto baseline = runGrid(cells, fresh);

  GridRunOptions inc;
  inc.incremental = true;
  const auto shared = runGrid(cells, inc);

  ASSERT_EQ(shared.size(), baseline.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(shared[i].cell.robSize, cells[i].robSize);
    EXPECT_EQ(shared[i].report.verdict(), baseline[i].report.verdict());
    EXPECT_EQ(shared[i].report.verdict(), Verdict::Correct);
    EXPECT_EQ(shared[i].report.evcStats.cnfVars,
              baseline[i].report.evcStats.cnfVars);
    EXPECT_EQ(shared[i].report.evcStats.cnfClauses,
              baseline[i].report.evcStats.cnfClauses);
    EXPECT_TRUE(shared[i].report.inprocessed);
    EXPECT_GT(shared[i].report.inprocessStats.clausesBefore, 0u);
  }
}

TEST(Grid, IncrementalSessionCatchesInjectedBug) {
  // A buggy cell in the middle of a shared-session sweep must still be
  // flagged, and the later correct cell must not be contaminated by it.
  std::vector<VerifyRequest> cells =
      makeGridRequests(std::vector<unsigned>{4}, std::vector<unsigned>{2});
  cells.push_back(cells[0]);
  cells.push_back(cells[0]);
  cells[1].bug.kind = models::BugKind::ForwardingWrongOperand;
  cells[1].bug.index = 2;
  GridRunOptions opts;
  opts.incremental = true;
  const auto results = runGrid(cells, opts);
  EXPECT_EQ(results[0].report.verdict(), Verdict::Correct);
  EXPECT_EQ(results[1].report.verdict(), Verdict::RewriteMismatch);
  EXPECT_EQ(results[2].report.verdict(), Verdict::Correct);
}

TEST(Grid, CheckpointResumeRestoresEveryFinishedCell) {
  // Round trip: a full sweep with a checkpoint, then the same sweep with
  // --resume, must restore every cell — same verdict and the exact
  // paper-aligned counter set (reportCounters is the flatten,
  // checkpoint restore is its inverse).
  const auto cells = makeGridRequests(std::vector<unsigned>{2, 3},
                                      std::vector<unsigned>{1, 2});
  const std::string path = checkpointPath("roundtrip");

  GridRunOptions first;
  first.checkpointPath = path;
  const auto baseline = runGrid(cells, first);
  ASSERT_TRUE(std::filesystem::exists(path));

  GridRunOptions second;
  second.checkpointPath = path;
  second.resume = true;
  const auto resumed = runGrid(cells, second);

  ASSERT_EQ(resumed.size(), baseline.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_FALSE(baseline[i].restored) << "cell " << i;
    EXPECT_TRUE(resumed[i].restored) << "cell " << i;
    EXPECT_EQ(resumed[i].cell.robSize, cells[i].robSize);
    EXPECT_EQ(resumed[i].report.verdict(), baseline[i].report.verdict());
    EXPECT_EQ(reportCounters(resumed[i].report),
              reportCounters(baseline[i].report))
        << "cell " << i;
  }
  std::filesystem::remove(path);
}

TEST(Grid, ResumeVerifiesOnlyUnfinishedCells) {
  // A killed sweep leaves a prefix in the checkpoint; resuming over the
  // full request list must restore exactly that prefix and verify the
  // rest. Records are keyed by the request's content (cacheKey), not by
  // grid position — the resumed list is deliberately reversed to prove
  // it.
  const auto cells = makeGridRequests(std::vector<unsigned>{2, 3, 4},
                                      std::vector<unsigned>{1});
  ASSERT_EQ(cells.size(), 3u);
  const std::string path = checkpointPath("prefix");

  const std::vector<VerifyRequest> prefix(cells.begin(), cells.begin() + 2);
  GridRunOptions first;
  first.checkpointPath = path;
  runGrid(prefix, first);

  std::vector<VerifyRequest> reversed(cells.rbegin(), cells.rend());
  GridRunOptions second;
  second.checkpointPath = path;
  second.resume = true;
  const auto full = runGrid(reversed, second);

  ASSERT_EQ(full.size(), 3u);
  EXPECT_FALSE(full[0].restored);  // ROB 4: never checkpointed
  EXPECT_TRUE(full[1].restored);   // ROB 3
  EXPECT_TRUE(full[2].restored);   // ROB 2
  for (const GridCellResult& r : full)
    EXPECT_EQ(r.report.verdict(), Verdict::Correct);
  std::filesystem::remove(path);
}

TEST(Grid, CheckpointRestoresInjectedBugVerdict) {
  // Failure verdicts are results too: a RewriteMismatch recorded in the
  // checkpoint comes back with its failed slice, not as a re-run.
  std::vector<VerifyRequest> cells =
      makeGridRequests(std::vector<unsigned>{4}, std::vector<unsigned>{2});
  cells[0].bug.kind = models::BugKind::ForwardingWrongOperand;
  cells[0].bug.index = 2;
  const std::string path = checkpointPath("bug");

  GridRunOptions opts;
  opts.checkpointPath = path;
  runGrid(cells, opts);

  opts.resume = true;
  const auto resumed = runGrid(cells, opts);
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_TRUE(resumed[0].restored);
  EXPECT_EQ(resumed[0].report.verdict(), Verdict::RewriteMismatch);
  EXPECT_EQ(resumed[0].report.outcome.failedSlice, 2u);
  std::filesystem::remove(path);
}

TEST(Grid, CheckpointWithoutResumeRerunsEveryCell) {
  // checkpointPath alone only *writes*; restoring is opt-in via resume,
  // so a deliberate re-verification is still possible.
  const auto cells =
      makeGridRequests(std::vector<unsigned>{2}, std::vector<unsigned>{1});
  const std::string path = checkpointPath("noresume");

  GridRunOptions opts;
  opts.checkpointPath = path;
  runGrid(cells, opts);
  const auto again = runGrid(cells, opts);  // resume still false
  ASSERT_EQ(again.size(), 1u);
  EXPECT_FALSE(again[0].restored);
  EXPECT_EQ(again[0].report.verdict(), Verdict::Correct);
  std::filesystem::remove(path);
}

TEST(Grid, ChangedRequestIsNotRestored) {
  // The checkpoint key hashes the whole request: the same grid cell under
  // a different strategy is a different verification and must re-run.
  std::vector<VerifyRequest> cells =
      makeGridRequests(std::vector<unsigned>{3}, std::vector<unsigned>{1});
  const std::string path = checkpointPath("changed");

  GridRunOptions opts;
  opts.checkpointPath = path;
  runGrid(cells, opts);

  cells[0].strategy = Strategy::PositiveEqualityOnly;
  opts.resume = true;
  const auto resumed = runGrid(cells, opts);
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_FALSE(resumed[0].restored);
  EXPECT_EQ(resumed[0].report.verdict(), Verdict::Correct);
  std::filesystem::remove(path);
}

TEST(Grid, CorruptCheckpointDegradesToFullRun) {
  // A truncated, malformed, or future-versioned checkpoint must never
  // fail the sweep — it degrades to a full re-run (and is then
  // overwritten with good records).
  const auto cells =
      makeGridRequests(std::vector<unsigned>{2}, std::vector<unsigned>{1});
  for (const char* body :
       {"not json at all", "{\"version\": 99, \"cells\": []}",
        "{\"version\": 1, \"cells\": \"oops\"}"}) {
    const std::string path = checkpointPath("corrupt");
    std::ofstream(path) << body;
    GridRunOptions opts;
    opts.checkpointPath = path;
    opts.resume = true;
    const auto results = runGrid(cells, opts);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].restored) << body;
    EXPECT_EQ(results[0].report.verdict(), Verdict::Correct);
    std::filesystem::remove(path);
  }
}

TEST(Grid, ResumeWithMissingCheckpointIsFreshRun) {
  const auto cells =
      makeGridRequests(std::vector<unsigned>{2}, std::vector<unsigned>{1});
  const std::string path = checkpointPath("missing");  // removed, never made
  GridRunOptions opts;
  opts.checkpointPath = path;
  opts.resume = true;
  const auto results = runGrid(cells, opts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].restored);
  EXPECT_EQ(results[0].report.verdict(), Verdict::Correct);
  EXPECT_TRUE(std::filesystem::exists(path));  // fresh records were written
  std::filesystem::remove(path);
}

TEST(Grid, EmptyGridIsFine) {
  GridRunOptions opts;
  opts.jobs = 4;
  EXPECT_TRUE(runGrid({}, opts).empty());
}

}  // namespace
}  // namespace velev::core
