// Tests for DRAT proof emission and the independent RUP checker: UNSAT
// results of the solver must come with checkable proofs, corrupted proofs
// must be rejected, and the processor-verification pipeline's UNSAT answers
// can be certified end-to-end.
#include <gtest/gtest.h>

#include <sstream>

#include "core/diagram.hpp"
#include "evc/translate.hpp"
#include "models/spec.hpp"
#include "sat/drat.hpp"
#include "sat/portfolio.hpp"
#include "sat/simplify.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace velev::sat {
namespace {

using prop::Clause;
using prop::Cnf;

Cnf makeCnf(unsigned vars, std::initializer_list<Clause> clauses) {
  Cnf cnf;
  cnf.numVars = vars;
  for (const auto& c : clauses) cnf.addClause(c);
  return cnf;
}

TEST(Drat, SimpleUnsatProofChecks) {
  const Cnf cnf = makeCnf(2, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}});
  Proof proof;
  EXPECT_EQ(solveCnf(cnf, nullptr, nullptr, -1, &proof), Result::Unsat);
  EXPECT_TRUE(proof.endsWithEmptyClause());
  EXPECT_TRUE(checkRup(cnf, proof));
}

TEST(Drat, LiteralEmptyClauseProofChecks) {
  const Cnf cnf = makeCnf(1, {Clause{}});
  Proof proof;
  EXPECT_EQ(solveCnf(cnf, nullptr, nullptr, -1, &proof), Result::Unsat);
  EXPECT_TRUE(checkRup(cnf, proof));
}

TEST(Drat, UnitConflictProofChecks) {
  const Cnf cnf = makeCnf(1, {{1}, {-1}});
  Proof proof;
  EXPECT_EQ(solveCnf(cnf, nullptr, nullptr, -1, &proof), Result::Unsat);
  EXPECT_TRUE(checkRup(cnf, proof));
}

TEST(Drat, PropagationChainProofChecks) {
  Cnf cnf;
  cnf.numVars = 8;
  cnf.addClause({1});
  for (int v = 1; v < 8; ++v) cnf.addClause({-v, v + 1});
  cnf.addClause({-8});
  Proof proof;
  EXPECT_EQ(solveCnf(cnf, nullptr, nullptr, -1, &proof), Result::Unsat);
  EXPECT_TRUE(checkRup(cnf, proof));
}

TEST(Drat, PigeonholeProofChecks) {
  for (unsigned n = 2; n <= 4; ++n) {
    Cnf cnf;
    const unsigned pigeons = n + 1;
    auto var = [&](unsigned p, unsigned h) {
      return static_cast<prop::CnfLit>(p * n + h + 1);
    };
    cnf.numVars = pigeons * n;
    for (unsigned p = 0; p < pigeons; ++p) {
      Clause c;
      for (unsigned h = 0; h < n; ++h) c.push_back(var(p, h));
      cnf.addClause(c);
    }
    for (unsigned h = 0; h < n; ++h)
      for (unsigned p1 = 0; p1 < pigeons; ++p1)
        for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
          cnf.addClause({-var(p1, h), -var(p2, h)});
    Proof proof;
    ASSERT_EQ(solveCnf(cnf, nullptr, nullptr, -1, &proof), Result::Unsat);
    EXPECT_TRUE(checkRup(cnf, proof)) << "n=" << n;
  }
}

TEST(Drat, SatInstanceHasNoEmptyClause) {
  const Cnf cnf = makeCnf(2, {{1, 2}});
  Proof proof;
  EXPECT_EQ(solveCnf(cnf, nullptr, nullptr, -1, &proof), Result::Sat);
  EXPECT_FALSE(proof.endsWithEmptyClause());
  EXPECT_FALSE(checkRup(cnf, proof));
}

TEST(Drat, CorruptedProofRejected) {
  // PHP(4,3): not refutable by unit propagation alone, so a bogus unit at
  // the front of the proof is genuinely not RUP. (In tighter instances
  // almost any clause is RUP, which would make this test vacuous.)
  Cnf cnf;
  const unsigned holes = 3, pigeons = 4;
  auto var = [&](unsigned p, unsigned h) {
    return static_cast<prop::CnfLit>(p * holes + h + 1);
  };
  cnf.numVars = pigeons * holes;
  for (unsigned p = 0; p < pigeons; ++p) {
    Clause c;
    for (unsigned h = 0; h < holes; ++h) c.push_back(var(p, h));
    cnf.addClause(c);
  }
  for (unsigned h = 0; h < holes; ++h)
    for (unsigned p1 = 0; p1 < pigeons; ++p1)
      for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.addClause({-var(p1, h), -var(p2, h)});

  Proof proof;
  ASSERT_EQ(solveCnf(cnf, nullptr, nullptr, -1, &proof), Result::Unsat);
  ASSERT_TRUE(checkRup(cnf, proof));
  // Inject a non-RUP addition: the unit "pigeon 0 sits in hole 0".
  Proof bad = proof;
  bad.steps.insert(bad.steps.begin(), ProofStep{false, {var(0, 0)}});
  EXPECT_FALSE(checkRup(cnf, bad));
  // Truncate the empty clause: no derivation.
  Proof truncated = proof;
  truncated.steps.pop_back();
  EXPECT_FALSE(checkRup(cnf, truncated));
}

TEST(Drat, RandomUnsatInstancesAllCertified) {
  Rng rng(2024);
  unsigned certified = 0;
  for (int iter = 0; iter < 120; ++iter) {
    Cnf cnf;
    cnf.numVars = 5 + rng.below(5);
    const unsigned m = 20 + rng.below(30);
    for (unsigned i = 0; i < m; ++i) {
      Clause c;
      const unsigned len = 1 + rng.below(3);
      for (unsigned j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.below(cnf.numVars));
        c.push_back(rng.coin() ? v : -v);
      }
      cnf.addClause(c);
    }
    Proof proof;
    if (solveCnf(cnf, nullptr, nullptr, -1, &proof) == Result::Unsat) {
      EXPECT_TRUE(checkRup(cnf, proof)) << "iter " << iter;
      ++certified;
    }
  }
  EXPECT_GT(certified, 10u);  // the mix should contain many UNSAT instances
}

TEST(Drat, DratTextFormat) {
  Proof proof;
  proof.add({1, -2});
  proof.del({3});
  proof.add({});
  std::ostringstream os;
  writeDrat(proof, os);
  EXPECT_EQ(os.str(), "1 -2 0\nd 3 0\n0\n");
}

// ---- inprocessing proofs ----------------------------------------------------

Cnf randomMixCnf(Rng& rng) {
  Cnf cnf;
  cnf.numVars = 5 + rng.below(6);
  const unsigned m = 18 + rng.below(30);
  for (unsigned i = 0; i < m; ++i) {
    Clause c;
    const unsigned len = 1 + rng.below(3);
    for (unsigned j = 0; j < len; ++j) {
      const int v = 1 + static_cast<int>(rng.below(cnf.numVars));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  // Binary cycles feed the substitution pass; chained implications feed
  // probing and vivification — the proof must cover every pass's steps.
  if (rng.coin()) {
    const int a = 1 + static_cast<int>(rng.below(cnf.numVars - 2));
    cnf.addClause({-a, a + 1});
    cnf.addClause({-(a + 1), a + 2});
    cnf.addClause({-(a + 2), a});
  }
  return cnf;
}

TEST(Drat, InprocessedProofsCertifyAgainstOriginalFormula) {
  // The combined proof (inprocessing derivations — elimination resolvents,
  // substituted clauses, strengthenings — then the solver's learnt
  // clauses) must RUP-check against the ORIGINAL formula.
  Rng rng(60601);
  unsigned certified = 0;
  for (int iter = 0; iter < 150; ++iter) {
    const Cnf cnf = randomMixCnf(rng);
    Proof proof;
    if (solveCnfInprocessed(cnf, {}, nullptr, nullptr, -1, &proof) !=
        Result::Unsat)
      continue;
    EXPECT_TRUE(checkRup(cnf, proof)) << "iter " << iter;
    ++certified;
  }
  EXPECT_GT(certified, 20u);
}

TEST(Drat, ProofWithEliminationAndSubstitutionDerivationsChecks) {
  // PHP(4,3) — UNSAT but not refutable by unit propagation alone — with
  // shadow variables equivalent to the first three pigeons (forces the
  // substitution pass) and an auxiliary variable occurring in one clause
  // only (forces bounded variable elimination). The combined proof must
  // contain both kinds of derivations and still check against the
  // ORIGINAL formula.
  Cnf cnf;
  const unsigned holes = 3, pigeons = 4;
  auto var = [&](unsigned p, unsigned h) {
    return static_cast<prop::CnfLit>(p * holes + h + 1);
  };
  for (unsigned p = 0; p < pigeons; ++p) {
    Clause c;
    for (unsigned h = 0; h < holes; ++h) c.push_back(var(p, h));
    cnf.addClause(c);
  }
  for (unsigned h = 0; h < holes; ++h)
    for (unsigned p1 = 0; p1 < pigeons; ++p1)
      for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.addClause({-var(p1, h), -var(p2, h)});
  cnf.numVars = pigeons * holes;
  for (int i = 1; i <= 3; ++i) {  // shadows 13..15 ≡ vars 1..3
    const int shadow = static_cast<int>(cnf.numVars) + i;
    cnf.addClause({-i, shadow});
    cnf.addClause({i, -shadow});
  }
  cnf.numVars += 3;
  cnf.addClause({static_cast<int>(cnf.numVars) + 1, 1, 2});  // BVE target
  cnf.numVars += 1;

  Proof proof;
  InprocessStats st;
  ASSERT_EQ(solveCnfInprocessed(cnf, {}, nullptr, nullptr, -1, &proof,
                                nullptr, &st),
            Result::Unsat);
  EXPECT_GT(st.varsSubstituted, 0u);
  EXPECT_GT(st.varsEliminated, 0u);
  EXPECT_TRUE(checkRup(cnf, proof));
}

TEST(Drat, InprocessOnlyRefutationChecks) {
  // A formula the pipeline refutes outright (no CDCL conflict needed):
  // the inprocessing proof alone must end with {} and check.
  Cnf cnf;
  cnf.numVars = 4;
  cnf.addClause({1});
  for (int v = 1; v < 4; ++v) cnf.addClause({-v, v + 1});
  cnf.addClause({-4});
  Proof proof;
  const SimplifyResult sr = inprocess(cnf, {}, &proof);
  ASSERT_TRUE(sr.provedUnsat);
  EXPECT_TRUE(proof.endsWithEmptyClause());
  EXPECT_TRUE(checkRup(cnf, proof));
}

// ---- assumption-conditional proofs ------------------------------------------

TEST(Drat, AssumptionUnsatProofChecksUnderAssumptions) {
  // SAT as such, UNSAT under assumptions: the solver's proof ends with the
  // failed-assumption clause, which checkRupUnderAssumptions completes.
  Cnf cnf;
  cnf.numVars = 4;
  cnf.addClause({-1, 2});
  cnf.addClause({-2, 3});
  cnf.addClause({-3, -4});
  ASSERT_EQ(solveCnf(cnf), Result::Sat);

  Solver s;
  Proof proof;
  s.setProof(&proof);
  s.ensureVars(cnf.numVars);
  for (const auto& c : cnf.clauses) ASSERT_TRUE(s.addClause(c));
  const prop::CnfLit assume[] = {1, 4};
  ASSERT_EQ(s.solve(assume, -1), Result::Unsat);
  EXPECT_FALSE(s.failedAssumptions().empty());
  EXPECT_TRUE(checkRupUnderAssumptions(cnf, assume, proof));
  // Not a proof of unconditional unsatisfiability.
  EXPECT_FALSE(checkRup(cnf, proof));
  // The session is not poisoned: without the assumptions, still SAT.
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Drat, PortfolioWinnerProofChecksUnderAssumptions) {
  // The portfolio's combined proof (shared inprocessing front end with
  // the assumption variables frozen, then the winner's clauses) must
  // certify "cnf ∧ assumptions is UNSAT" against the ORIGINAL formula.
  Rng rng(777);
  unsigned certified = 0;
  for (int iter = 0; iter < 80; ++iter) {
    Cnf cnf;
    cnf.numVars = 6 + rng.below(4);
    const unsigned m = 14 + rng.below(20);
    for (unsigned i = 0; i < m; ++i) {
      Clause c;
      const unsigned len = 2 + rng.below(2);
      for (unsigned j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.below(cnf.numVars));
        c.push_back(rng.coin() ? v : -v);
      }
      cnf.addClause(c);
    }
    const prop::CnfLit assume[] = {
        rng.coin() ? 1 : -1,
        static_cast<prop::CnfLit>(rng.coin() ? 2 : -2)};
    PortfolioOptions popts;
    popts.instances = 2;
    popts.wantProof = true;
    popts.assumptions.assign(std::begin(assume), std::end(assume));
    PortfolioReport rep;
    if (solvePortfolio(cnf, popts, &rep) != Result::Unsat) continue;
    EXPECT_TRUE(checkRupUnderAssumptions(cnf, assume, rep.proof))
        << "iter " << iter;
    ++certified;
  }
  EXPECT_GT(certified, 10u);
}

TEST(Drat, InprocessedProcessorProofIsCertified) {
  // End-to-end with the front end enabled: the PE-only correctness CNF of
  // a correct processor, refuted through inprocess + CDCL, certifies
  // against the untouched translation output.
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {2, 1});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  evc::TranslateOptions topts;
  topts.conservativeMemory = false;
  const evc::Translation tr = evc::translate(cx, d.correctness, topts);
  Proof proof;
  InprocessStats st;
  ASSERT_EQ(solveCnfInprocessed(tr.cnf, {}, nullptr, nullptr, -1, &proof,
                                nullptr, &st),
            Result::Unsat);
  EXPECT_GT(st.clausesBefore, st.clausesAfter);  // the front end did work
  EXPECT_TRUE(checkRup(tr.cnf, proof));
}

TEST(Drat, ProcessorVerificationIsCertified) {
  // End-to-end: the UNSAT proof of a correct processor's correctness CNF
  // (rewriting flow) checks with the independent RUP checker.
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {2, 1});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  evc::TranslateOptions topts;
  topts.conservativeMemory = false;  // PE-only flow: the larger CNF
  const evc::Translation tr = evc::translate(cx, d.correctness, topts);
  Proof proof;
  ASSERT_EQ(solveCnf(tr.cnf, nullptr, nullptr, -1, &proof), Result::Unsat);
  EXPECT_TRUE(checkRup(tr.cnf, proof));
}

}  // namespace
}  // namespace velev::sat
