// Unit tests for the EUFM expression DAG: hash-consing, constant folding,
// sorts, traversal, printing, and the finite-model evaluator that serves as
// semantic ground truth for the rest of the suite.
#include <gtest/gtest.h>

#include "eufm/eval.hpp"
#include "eufm/expr.hpp"
#include "eufm/memsort.hpp"
#include "eufm/print.hpp"
#include "eufm/traverse.hpp"

namespace velev::eufm {
namespace {

class EufmTest : public ::testing::Test {
 protected:
  Context cx;
};

TEST_F(EufmTest, HashConsingIdentity) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  EXPECT_EQ(cx.mkEq(x, y), cx.mkEq(x, y));
  EXPECT_EQ(cx.termVar("x"), x);
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b");
  EXPECT_EQ(cx.mkAnd(a, b), cx.mkAnd(a, b));
}

TEST_F(EufmTest, EqIsCommutativeByCanonicalization) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  EXPECT_EQ(cx.mkEq(x, y), cx.mkEq(y, x));
}

TEST_F(EufmTest, AndOrCommutative) {
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b");
  EXPECT_EQ(cx.mkAnd(a, b), cx.mkAnd(b, a));
  EXPECT_EQ(cx.mkOr(a, b), cx.mkOr(b, a));
}

TEST_F(EufmTest, ConstantFoldingBooleans) {
  const Expr a = cx.boolVar("a");
  EXPECT_EQ(cx.mkAnd(cx.mkTrue(), a), a);
  EXPECT_EQ(cx.mkAnd(cx.mkFalse(), a), cx.mkFalse());
  EXPECT_EQ(cx.mkOr(cx.mkFalse(), a), a);
  EXPECT_EQ(cx.mkOr(cx.mkTrue(), a), cx.mkTrue());
  EXPECT_EQ(cx.mkAnd(a, a), a);
  EXPECT_EQ(cx.mkOr(a, a), a);
  EXPECT_EQ(cx.mkAnd(a, cx.mkNot(a)), cx.mkFalse());
  EXPECT_EQ(cx.mkOr(a, cx.mkNot(a)), cx.mkTrue());
}

TEST_F(EufmTest, DoubleNegation) {
  const Expr a = cx.boolVar("a");
  EXPECT_EQ(cx.mkNot(cx.mkNot(a)), a);
  EXPECT_EQ(cx.mkNot(cx.mkTrue()), cx.mkFalse());
}

TEST_F(EufmTest, EqReflexivityFolds) {
  const Expr x = cx.termVar("x");
  EXPECT_EQ(cx.mkEq(x, x), cx.mkTrue());
}

TEST_F(EufmTest, IteFolding) {
  const Expr a = cx.boolVar("a");
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  EXPECT_EQ(cx.mkIteT(cx.mkTrue(), x, y), x);
  EXPECT_EQ(cx.mkIteT(cx.mkFalse(), x, y), y);
  EXPECT_EQ(cx.mkIteT(a, x, x), x);
  const Expr b = cx.boolVar("b"), c = cx.boolVar("c");
  EXPECT_EQ(cx.mkIteF(a, b, b), b);
  EXPECT_EQ(cx.mkIteF(a, cx.mkTrue(), cx.mkFalse()), a);
  EXPECT_EQ(cx.mkIteF(a, cx.mkFalse(), cx.mkTrue()), cx.mkNot(a));
  EXPECT_EQ(cx.mkIteF(a, b, cx.mkFalse()), cx.mkAnd(a, b));
  EXPECT_EQ(cx.mkIteF(a, cx.mkFalse(), c), cx.mkAnd(cx.mkNot(a), c));
}

TEST_F(EufmTest, NestedIteSameConditionCollapses) {
  const Expr a = cx.boolVar("a");
  const Expr x = cx.termVar("x"), y = cx.termVar("y"), z = cx.termVar("z");
  // ITE(a, ITE(a, x, y), z) == ITE(a, x, z)
  EXPECT_EQ(cx.mkIteT(a, cx.mkIteT(a, x, y), z), cx.mkIteT(a, x, z));
}

TEST_F(EufmTest, FreshVariablesAreDistinct) {
  const Expr v1 = cx.freshTermVar("t");
  const Expr v2 = cx.freshTermVar("t");
  EXPECT_NE(v1, v2);
}

TEST_F(EufmTest, FunctionDeclarationIsIdempotent) {
  const FuncId f1 = cx.declareFunc("ALU", 3);
  const FuncId f2 = cx.declareFunc("ALU", 3);
  EXPECT_EQ(f1, f2);
  EXPECT_THROW(cx.declareFunc("ALU", 2), InternalError);
  EXPECT_THROW(cx.declarePred("ALU", 3), InternalError);
}

TEST_F(EufmTest, ApplicationArityChecked) {
  const FuncId f = cx.declareFunc("f", 2);
  const Expr x = cx.termVar("x");
  EXPECT_THROW(cx.apply(f, {x}), InternalError);
}

TEST_F(EufmTest, SortsAreEnforced) {
  const Expr x = cx.termVar("x");
  const Expr a = cx.boolVar("a");
  EXPECT_THROW(cx.mkAnd(x, a), InternalError);
  EXPECT_THROW(cx.mkEq(a, a), InternalError);
  EXPECT_THROW(cx.mkIteT(x, x, x), InternalError);
  EXPECT_THROW(cx.mkRead(x, a), InternalError);
}

TEST_F(EufmTest, VarNameRoundTrip) {
  const Expr x = cx.termVar("PC");
  EXPECT_EQ(cx.varName(x), "PC");
  EXPECT_TRUE(cx.isVar(x));
  EXPECT_TRUE(cx.isTerm(x));
}

TEST_F(EufmTest, PostorderVisitsChildrenFirst) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr eq = cx.mkEq(x, y);
  const Expr root = cx.mkAnd(eq, cx.boolVar("a"));
  std::vector<Expr> order;
  postorder(cx, root, [&](Expr e) { order.push_back(e); });
  auto pos = [&](Expr e) {
    return std::find(order.begin(), order.end(), e) - order.begin();
  };
  EXPECT_LT(pos(x), pos(eq));
  EXPECT_LT(pos(y), pos(eq));
  EXPECT_LT(pos(eq), pos(root));
  EXPECT_EQ(order.size(), dagSize(cx, root));
}

TEST_F(EufmTest, CollectVarsFindsAll) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr a = cx.boolVar("a");
  const Expr root = cx.mkAnd(a, cx.mkEq(x, y));
  const auto vars = collectVars(cx, root);
  EXPECT_EQ(vars.size(), 3u);
}

TEST_F(EufmTest, ToStringSmoke) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  EXPECT_EQ(toString(cx, cx.mkEq(x, y)), "(= x y)");
  const FuncId f = cx.declareFunc("f", 1);
  EXPECT_EQ(toString(cx, cx.apply(f, {x})), "(f x)");
}

TEST_F(EufmTest, StatsCounts) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr a = cx.boolVar("a");
  const Expr root = cx.mkAnd(a, cx.mkEq(cx.mkIteT(a, x, y), x));
  const DagStats s = stats(cx, root);
  EXPECT_EQ(s.termVars, 2u);
  EXPECT_EQ(s.boolVars, 1u);
  EXPECT_EQ(s.equations, 1u);
  EXPECT_EQ(s.ites, 1u);
}

// ---- evaluation semantics ---------------------------------------------------

TEST_F(EufmTest, EvalBooleanOps) {
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b");
  Interp in(1, 4);
  in.setBool(a, true);
  in.setBool(b, false);
  Evaluator ev(cx, in);
  EXPECT_TRUE(ev.evalFormula(cx.mkOr(a, b)));
  EXPECT_FALSE(ev.evalFormula(cx.mkAnd(a, b)));
  EXPECT_TRUE(ev.evalFormula(cx.mkNot(b)));
  EXPECT_TRUE(ev.evalFormula(cx.mkIteF(a, cx.mkNot(b), b)));
  EXPECT_TRUE(ev.evalFormula(cx.mkImplies(b, a)));
  EXPECT_FALSE(ev.evalFormula(cx.mkIff(a, b)));
}

TEST_F(EufmTest, EvalEqualityRespectsOverrides) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  Interp in(1, 8);
  in.setTerm(x, 3);
  in.setTerm(y, 3);
  Evaluator ev(cx, in);
  EXPECT_TRUE(ev.evalFormula(cx.mkEq(x, y)));
  Interp in2(1, 8);
  in2.setTerm(x, 3);
  in2.setTerm(y, 4);
  Evaluator ev2(cx, in2);
  EXPECT_FALSE(ev2.evalFormula(cx.mkEq(x, y)));
}

TEST_F(EufmTest, EvalUfIsFunctionallyConsistent) {
  const FuncId f = cx.declareFunc("f", 2);
  const Expr x = cx.termVar("x"), y = cx.termVar("y"), z = cx.termVar("z");
  Interp in(5, 4);
  in.setTerm(x, 2);
  in.setTerm(y, 2);
  Evaluator ev(cx, in);
  // x == y, so f(x,z) == f(y,z) must hold in every interpretation.
  EXPECT_TRUE(ev.evalFormula(
      cx.mkEq(cx.apply(f, {x, z}), cx.apply(f, {y, z}))));
}

TEST_F(EufmTest, EvalUpIsDeterministic) {
  const FuncId p = cx.declarePred("p", 1);
  const Expr x = cx.termVar("x");
  Interp in(9, 4);
  Evaluator ev(cx, in);
  const bool v1 = ev.evalFormula(cx.apply(p, {x}));
  Evaluator ev2(cx, in);
  EXPECT_EQ(v1, ev2.evalFormula(cx.apply(p, {x})));
}

TEST_F(EufmTest, EvalMemoryForwarding) {
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a"), b = cx.termVar("b"), d = cx.termVar("d");
  // read(write(m, a, d), a) == d: valid, must hold under any interpretation.
  const Expr f =
      cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), a), d);
  for (std::uint64_t seed = 0; seed < 50; ++seed)
    EXPECT_TRUE(evalFormula(cx, f, seed, 3)) << "seed " << seed;
  // read(write(m, a, d), b) == read(m, b) holds only when a != b or
  // d == read(m,a); check the guarded version is valid.
  const Expr g = cx.mkOr(
      cx.mkEq(a, b),
      cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), b), cx.mkRead(m, b)));
  for (std::uint64_t seed = 0; seed < 50; ++seed)
    EXPECT_TRUE(evalFormula(cx, g, seed, 3)) << "seed " << seed;
}

TEST_F(EufmTest, EvalMemoryExtensionality) {
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a"), d = cx.termVar("d");
  // Overwriting with the same value yields an equal memory.
  const Expr f = cx.mkEq(cx.mkWrite(m, a, cx.mkRead(m, a)), m);
  for (std::uint64_t seed = 0; seed < 50; ++seed)
    EXPECT_TRUE(evalFormula(cx, f, seed, 3)) << "seed " << seed;
  // Double write to the same address: last one wins.
  const Expr e = cx.termVar("e");
  const Expr g = cx.mkEq(cx.mkWrite(cx.mkWrite(m, a, d), a, e),
                         cx.mkWrite(m, a, e));
  for (std::uint64_t seed = 0; seed < 50; ++seed)
    EXPECT_TRUE(evalFormula(cx, g, seed, 3)) << "seed " << seed;
}

TEST_F(EufmTest, EvalDistinguishesDifferentMemories) {
  const Expr m1 = cx.termVar("M1"), m2 = cx.termVar("M2");
  const Expr f = cx.mkEq(m1, m2);
  // Memories over different bases are unequal in our interpretations;
  // force memory-sortedness via a read so inference kicks in.
  const Expr probe = cx.mkAnd(
      f, cx.mkEq(cx.mkRead(m1, cx.termVar("a")), cx.mkRead(m2, cx.termVar("a"))));
  bool anyFalse = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    anyFalse |= !evalFormula(cx, probe, seed, 3);
  EXPECT_TRUE(anyFalse);
}

TEST_F(EufmTest, MemSortInferencePropagates) {
  const Expr m = cx.termVar("M"), n = cx.termVar("N");
  const Expr a = cx.termVar("a"), d = cx.termVar("d");
  const Expr c = cx.boolVar("c");
  // N is compared against an ITE of writes to M -> all are memory-sorted.
  const Expr ite = cx.mkIteT(c, cx.mkWrite(m, a, d), m);
  const Expr root = cx.mkEq(n, ite);
  const auto mem = inferMemorySorted(cx, root);
  EXPECT_TRUE(mem.count(n));
  EXPECT_TRUE(mem.count(m));
  EXPECT_TRUE(mem.count(ite));
  EXPECT_FALSE(mem.count(a));
  EXPECT_FALSE(mem.count(d));
}

TEST_F(EufmTest, EvalIteSelectsBranch) {
  const Expr c = cx.boolVar("c");
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  Interp in(1, 16);
  in.setBool(c, true);
  in.setTerm(x, 5);
  in.setTerm(y, 9);
  Evaluator ev(cx, in);
  EXPECT_EQ(ev.evalTerm(cx.mkIteT(c, x, y)).scalar, 5u);
}

TEST_F(EufmTest, HashConsTableGrowthKeepsIdentity) {
  // Force several rehashes and verify structural identity survives them.
  const FuncId f = cx.declareFunc("f", 2);
  const Expr x = cx.termVar("x");
  std::vector<Expr> nodes;
  Expr acc = x;
  for (int i = 0; i < 50000; ++i) {
    acc = cx.apply(f, {acc, cx.termVar("v" + std::to_string(i % 97))});
    nodes.push_back(acc);
  }
  // Rebuild the same expressions: every node must dedup to the same id.
  acc = x;
  for (int i = 0; i < 50000; ++i) {
    acc = cx.apply(f, {acc, cx.termVar("v" + std::to_string(i % 97))});
    EXPECT_EQ(acc, nodes[i]);
  }
}

TEST_F(EufmTest, DeepChainTraversalIsIterative) {
  // A 100k-deep ITE tower must not overflow the stack in traversal, stats
  // or evaluation (all the walkers are iterative).
  Expr t = cx.termVar("t0");
  const Expr a = cx.termVar("a");
  for (int i = 0; i < 100000; ++i)
    t = cx.mkIteT(cx.boolVar("c" + std::to_string(i)), a, t);
  EXPECT_GE(dagSize(cx, t), 100000u);
  EXPECT_GE(stats(cx, t).ites, 100000u);
}

TEST_F(EufmTest, DomainSizeBoundsScalars) {
  const Expr x = cx.termVar("x");
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Interp in(seed, 3);
    Evaluator ev(cx, in);
    EXPECT_LT(ev.evalTerm(x).scalar, 3u);
  }
}

}  // namespace
}  // namespace velev::eufm
