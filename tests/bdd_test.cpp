// The BDD decision engine: unique-table canonicity under complement edges,
// garbage-collection liveness, sifting correctness (same function before and
// after a reorder, smaller table on the classic comparator), deterministic
// MemOut under a logical budget, checkValidity() against hand-built AIGs,
// and cross-engine agreement of core::verify() between Engine::Sat and
// Engine::Bdd on small cells.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/check.hpp"
#include "core/request.hpp"
#include "core/verifier.hpp"
#include "prop/cnf.hpp"
#include "prop/prop.hpp"
#include "support/budget.hpp"

namespace velev {
namespace {

using bdd::BddManager;
using bdd::BddRef;

// ---- unique-table canonicity ----------------------------------------------

TEST(BddCanonicity, EqualFunctionsGetEqualRefs) {
  BddManager mgr;
  const BddRef a = mgr.varRef(mgr.mkVar());
  const BddRef b = mgr.varRef(mgr.mkVar());

  EXPECT_EQ(mgr.varRef(0), a);  // re-requesting a projection is a hit
  EXPECT_EQ(mgr.mkAnd(a, b), mgr.mkAnd(b, a));
  EXPECT_EQ(mgr.mkOr(a, b), mgr.mkOr(b, a));
  // De Morgan holds *structurally*, not just semantically.
  EXPECT_EQ(mgr.mkOr(a, b),
            bdd::negate(mgr.mkAnd(bdd::negate(a), bdd::negate(b))));
  // x ? y : y and x ∧ x collapse without allocating.
  EXPECT_EQ(mgr.ite(a, b, b), b);
  EXPECT_EQ(mgr.mkAnd(a, a), a);
  EXPECT_EQ(mgr.mkAnd(a, bdd::negate(a)), bdd::kFalse);
  EXPECT_EQ(mgr.mkXor(a, a), bdd::kFalse);
  EXPECT_EQ(mgr.mkXor(a, bdd::negate(a)), bdd::kTrue);
  EXPECT_TRUE(mgr.checkInvariants());
}

TEST(BddCanonicity, ComplementEdgesShareOneNodePerFunctionPair) {
  BddManager mgr;
  const BddRef a = mgr.varRef(mgr.mkVar());
  const BddRef b = mgr.varRef(mgr.mkVar());
  // f and ¬f must be the same node with the complement bit flipped.
  const BddRef f = mgr.mkAnd(a, b);
  const BddRef nf = bdd::negate(f);
  EXPECT_EQ(bdd::nodeOf(f), bdd::nodeOf(nf));
  EXPECT_NE(bdd::isComplement(f), bdd::isComplement(nf));
  EXPECT_EQ(bdd::negate(nf), f);
  // XOR and XNOR likewise share structure.
  EXPECT_EQ(bdd::nodeOf(mgr.mkXor(a, b)),
            bdd::nodeOf(bdd::negate(mgr.mkXor(a, b))));
  EXPECT_TRUE(mgr.checkInvariants());
}

TEST(BddCanonicity, EvalMatchesTruthTable) {
  BddManager mgr;
  for (int i = 0; i < 3; ++i) mgr.mkVar();
  const BddRef x = mgr.varRef(0), y = mgr.varRef(1), z = mgr.varRef(2);
  const BddRef f = mgr.ite(x, mgr.mkXor(y, z), mgr.mkOr(y, z));
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<bool> asg = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const bool expect = asg[0] ? (asg[1] ^ asg[2]) : (asg[1] || asg[2]);
    EXPECT_EQ(mgr.eval(f, asg), expect) << "minterm " << m;
    EXPECT_EQ(mgr.eval(bdd::negate(f), asg), !expect) << "minterm " << m;
  }
}

// ---- garbage collection ----------------------------------------------------

TEST(BddGc, SweepsDeadKeepsProtectedAndExtraRoots) {
  BddManager mgr;
  for (int i = 0; i < 6; ++i) mgr.mkVar();
  // f: protected. g: kept alive only via extraRoots. h: dead after drop.
  BddRef f = bdd::kTrue, g = bdd::kFalse, h = bdd::kTrue;
  for (int i = 0; i < 3; ++i) {
    f = mgr.mkAnd(f, mgr.mkXor(mgr.varRef(i), mgr.varRef(i + 3)));
    g = mgr.mkOr(g, mgr.mkAnd(mgr.varRef(i), mgr.varRef(i + 3)));
    h = mgr.mkXor(h, mgr.varRef(i));
  }
  mgr.protect(f);

  const std::uint32_t before = mgr.liveNodes();
  const BddRef roots[] = {g};
  mgr.gc(roots);  // h is the only garbage
  EXPECT_LT(mgr.liveNodes(), before);
  EXPECT_TRUE(mgr.checkInvariants());

  // Both survivors still compute their functions.
  const std::vector<bool> asg = {true, false, true, true, true, true};
  const bool fExpect =
      (asg[0] ^ asg[3]) && (asg[1] ^ asg[4]) && (asg[2] ^ asg[5]);
  EXPECT_EQ(mgr.eval(f, asg), fExpect);
  EXPECT_EQ(mgr.eval(g, asg), (asg[0] && asg[3]) || (asg[1] && asg[4]) ||
                                  (asg[2] && asg[5]));

  // Dropping the extra root frees g's cone but never f's.
  const std::uint32_t withG = mgr.liveNodes();
  const std::size_t freed = mgr.gc();
  EXPECT_GT(freed, 0u);
  EXPECT_LT(mgr.liveNodes(), withG);
  EXPECT_EQ(mgr.eval(f, asg), fExpect);
  EXPECT_TRUE(mgr.checkInvariants());

  mgr.unprotect(f);
  mgr.gc();
  EXPECT_EQ(mgr.liveNodes(), 1u);  // only the terminal remains
}

// ---- sifting ----------------------------------------------------------------

/// The classic reordering benchmark: the comparator AND_i (x_i == y_i) is
/// linear under the interleaved order x0 y0 x1 y1 ... and exponential under
/// the separated order x0 x1 ... y0 y1 ...
BddRef separatedComparator(BddManager& mgr, unsigned pairs) {
  for (unsigned i = 0; i < 2 * pairs; ++i) mgr.mkVar();
  BddRef f = bdd::kTrue;
  for (unsigned i = 0; i < pairs; ++i)
    f = mgr.mkAnd(f,
                  bdd::negate(mgr.mkXor(mgr.varRef(i), mgr.varRef(pairs + i))));
  return f;
}

TEST(BddSift, PreservesEveryAssignmentAndShrinksTheComparator) {
  constexpr unsigned kPairs = 7;
  BddManager mgr;
  const BddRef f = separatedComparator(mgr, kPairs);
  mgr.protect(f);
  mgr.gc();
  const std::uint32_t before = mgr.liveNodes();

  mgr.sift();
  mgr.gc();
  EXPECT_TRUE(mgr.checkInvariants());
  // Sifting finds (an equivalent of) the interleaved order: the table
  // collapses from exponential to linear in the pair count.
  EXPECT_LT(mgr.liveNodes(), before / 4);

  // Exhaustive function check: 2^14 assignments.
  std::vector<bool> asg(2 * kPairs);
  for (unsigned m = 0; m < (1u << (2 * kPairs)); ++m) {
    bool expect = true;
    for (unsigned i = 0; i < kPairs; ++i) {
      asg[i] = (m >> i) & 1;
      asg[kPairs + i] = (m >> (kPairs + i)) & 1;
      expect = expect && (asg[i] == asg[kPairs + i]);
    }
    ASSERT_EQ(mgr.eval(f, asg), expect) << "minterm " << m;
  }
}

TEST(BddSift, AutomaticReorderingGovernsAGrowingBuild) {
  // The caller-side protocol of check.cpp's ConeBuilder: build under a low
  // threshold, reorder at safe points, and on a mid-operation ReorderRequest
  // unwind, recover with reorderAfterAbort() and retry — either path must
  // complete at least one sift pass on the separated comparator.
  constexpr unsigned kPairs = 7;
  BddManager mgr;
  for (unsigned i = 0; i < 2 * kPairs; ++i) mgr.mkVar();
  mgr.setReorderThreshold(64);

  BddRef f = bdd::kTrue;
  mgr.protect(f);
  for (unsigned i = 0; i < kPairs; ++i) {
    for (;;) {
      try {
        const BddRef next = mgr.mkAnd(
            f, bdd::negate(mgr.mkXor(mgr.varRef(i), mgr.varRef(kPairs + i))));
        mgr.unprotect(f);
        mgr.protect(next);
        f = next;
        break;
      } catch (const bdd::ReorderRequest&) {
        mgr.reorderAfterAbort();
      }
    }
    if (mgr.reorderPending()) mgr.maybeReorder();
  }

  EXPECT_GE(mgr.stats().reorderings, 1u);
  EXPECT_GT(mgr.stats().swaps, 0u);
  EXPECT_GT(mgr.stats().gcRuns, 0u);
  EXPECT_TRUE(mgr.checkInvariants());
  // Spot-check the function across the reordered table.
  std::vector<bool> asg(2 * kPairs, true);
  EXPECT_TRUE(mgr.eval(f, asg));
  asg[3] = false;  // one mismatched pair
  EXPECT_FALSE(mgr.eval(f, asg));
  asg[kPairs + 3] = false;  // matched again
  EXPECT_TRUE(mgr.eval(f, asg));
}

// ---- deterministic resource governance --------------------------------------

TEST(BddBudget, MemOutIsDeterministicAcrossRuns) {
  auto runOnce = [](std::uint64_t* peak) {
    ResourceBudget b;
    b.memoryBytes = 200'000;
    BudgetGovernor gov(b);
    BddManager mgr;
    mgr.setBudget(&gov);
    try {
      const BddRef f = separatedComparator(mgr, 12);  // wants ~2^13 nodes
      (void)f;
      ADD_FAILURE() << "expected the 200 kB budget to trip";
    } catch (const BudgetExceeded& e) {
      EXPECT_EQ(e.kind(), BudgetKind::Memory);
    }
    *peak = mgr.stats().nodesPeak;
  };
  std::uint64_t first = 0, second = 0;
  runOnce(&first);
  runOnce(&second);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);
}

// ---- checkValidity over hand-built AIGs -------------------------------------

TEST(BddCheck, TautologyIsValid) {
  prop::PropCtx pctx;
  const prop::PLit a = pctx.mkVar(), b = pctx.mkVar();
  const prop::PLit root = pctx.mkImplies(pctx.mkAnd(a, b), a);
  const bdd::CheckResult res = bdd::checkValidity(pctx, root, {});
  EXPECT_EQ(res.status, bdd::CheckStatus::Valid);
  EXPECT_TRUE(res.model.empty());
  EXPECT_GT(res.stats.nodesPeak, 0u);
}

TEST(BddCheck, FalsifiableModelActuallyFalsifiesTheRoot) {
  prop::PropCtx pctx;
  const prop::PLit a = pctx.mkVar(), b = pctx.mkVar(), c = pctx.mkVar();
  const prop::PLit root = pctx.mkOr(pctx.mkAnd(a, b), c);
  const bdd::CheckResult res = bdd::checkValidity(pctx, root, {});
  ASSERT_EQ(res.status, bdd::CheckStatus::Falsifiable);
  ASSERT_GE(res.model.size(), 4u);  // CNF vars 1..3 (entry 0 unused)
  const std::vector<bool> asg = {res.model[1], res.model[2], res.model[3]};
  EXPECT_FALSE(pctx.eval(root, asg));
  EXPECT_GT(res.rootNodes, 0u);
}

TEST(BddCheck, SideClausesCanCloseTheGap) {
  // root = a ∨ b is falsifiable alone (¬a ∧ ¬b), but the side clause
  // (a ∨ b) removes exactly that path: Valid. Exercises the lazy
  // conjunction round-trip.
  prop::PropCtx pctx;
  const prop::PLit a = pctx.mkVar(), b = pctx.mkVar();
  const prop::PLit root = pctx.mkOr(a, b);
  const std::vector<prop::Clause> side = {{1, 2}};
  const bdd::CheckResult res = bdd::checkValidity(pctx, root, side);
  EXPECT_EQ(res.status, bdd::CheckStatus::Valid);
}

TEST(BddCheck, SideClauseFillInVariablesReachTheModel) {
  // CNF var 7 has no AIG input: it gets a fresh BDD variable at the bottom
  // of the order, and the unit clause pins it in the returned model.
  prop::PropCtx pctx;
  const prop::PLit a = pctx.mkVar(), b = pctx.mkVar();
  const prop::PLit root = pctx.mkAnd(a, b);
  const std::vector<prop::Clause> side = {{7}};
  const bdd::CheckResult res = bdd::checkValidity(pctx, root, side);
  ASSERT_EQ(res.status, bdd::CheckStatus::Falsifiable);
  ASSERT_GE(res.model.size(), 8u);
  EXPECT_TRUE(res.model[7]);
  EXPECT_FALSE(res.model[1] && res.model[2]);
}

TEST(BddCheck, BudgetTripReportsUnknownWithMemoryKind) {
  prop::PropCtx pctx;
  // Separated comparator as an AIG: a hard order for the cone builder.
  constexpr unsigned kPairs = 12;
  std::vector<prop::PLit> xs, ys;
  for (unsigned i = 0; i < kPairs; ++i) xs.push_back(pctx.mkVar());
  for (unsigned i = 0; i < kPairs; ++i) ys.push_back(pctx.mkVar());
  prop::PLit all = prop::kTrue;
  for (unsigned i = 0; i < kPairs; ++i)
    all = pctx.mkAnd(all, pctx.mkIff(xs[i], ys[i]));

  ResourceBudget b;
  b.memoryBytes = 150'000;
  BudgetGovernor gov1(b), gov2(b);
  bdd::CheckOptions opts;
  opts.reorderThreshold = 0;  // no escape hatch: the budget must trip
  opts.governor = &gov1;
  const bdd::CheckResult r1 = bdd::checkValidity(pctx, prop::negate(all), {},
                                                 opts);
  opts.governor = &gov2;
  const bdd::CheckResult r2 = bdd::checkValidity(pctx, prop::negate(all), {},
                                                 opts);
  ASSERT_EQ(r1.status, bdd::CheckStatus::Unknown);
  EXPECT_EQ(r1.tripKind, BudgetKind::Memory);
  EXPECT_FALSE(r1.reason.empty());
  EXPECT_TRUE(r1.model.empty());
  // Logical budgets are deterministic: byte-for-byte the same trip point.
  EXPECT_EQ(r1.stats.nodesPeak, r2.stats.nodesPeak);
}

// ---- cross-engine agreement -------------------------------------------------

TEST(BddEngine, AgreesWithSatOnSmallCells) {
  struct Cell {
    unsigned n, k;
    models::BugSpec bug;
  };
  const Cell cells[] = {
      {2, 1, {}},
      {2, 2, {}},
      {2, 1, {models::BugKind::ForwardingStaleResult, 2}},
  };
  for (const Cell& c : cells) {
    core::VerifyRequest req;
    req.robSize = c.n;
    req.issueWidth = c.k;
    req.bug = c.bug;
    req.strategy = core::Strategy::PositiveEqualityOnly;
    req.engine = core::Engine::Sat;
    const core::VerifyReport satRep = core::verify(req);
    req.engine = core::Engine::Bdd;
    const core::VerifyReport bddRep = core::verify(req);
    EXPECT_EQ(satRep.verdict(), bddRep.verdict())
        << c.n << "x" << c.k << " bug=" << static_cast<int>(c.bug.kind);
    EXPECT_GT(bddRep.bddStats.nodesPeak, 0u);
    EXPECT_EQ(bddRep.engine, core::Engine::Bdd);
  }
}

TEST(BddEngine, BothRunsBothAndCrossChecks) {
  core::VerifyRequest req;
  req.robSize = 2;
  req.issueWidth = 2;
  req.strategy = core::Strategy::PositiveEqualityOnly;
  req.engine = core::Engine::Both;

  const core::VerifyReport ok = core::verify(req);
  EXPECT_EQ(ok.verdict(), core::Verdict::Correct);
  EXPECT_GT(ok.bddStats.nodesPeak, 0u);           // BDD side genuinely ran
  EXPECT_EQ(ok.outcome.satResult, sat::Result::Unsat);  // and so did SAT

  req.issueWidth = 1;
  req.bug = {models::BugKind::ForwardingStaleResult, 2};
  const core::VerifyReport bug = core::verify(req);
  EXPECT_EQ(bug.verdict(), core::Verdict::CounterexampleFound);
  EXPECT_GT(bug.bddStats.nodesPeak, 0u);
}

}  // namespace
}  // namespace velev
