// Tests for the SAT seed portfolio: the verdict must be independent of the
// number of racing instances and of the base seed (determinism property),
// the winner's DRAT proof must certify UNSAT through the RUP checker, and
// a satisfying model must actually satisfy the formula.
#include <gtest/gtest.h>

#include <tuple>

#include "prop/cnf.hpp"
#include "sat/drat.hpp"
#include "sat/portfolio.hpp"
#include "support/rng.hpp"

namespace velev::sat {
namespace {

using prop::Clause;
using prop::Cnf;
using prop::CnfLit;

// PHP(n+1, n): n+1 pigeons in n holes — small, canonical UNSAT family.
Cnf pigeonhole(unsigned n) {
  Cnf cnf;
  const unsigned pigeons = n + 1;
  auto var = [&](unsigned p, unsigned h) {
    return static_cast<CnfLit>(p * n + h + 1);
  };
  cnf.numVars = pigeons * n;
  for (unsigned p = 0; p < pigeons; ++p) {
    Clause c;
    for (unsigned h = 0; h < n; ++h) c.push_back(var(p, h));
    cnf.addClause(c);
  }
  for (unsigned h = 0; h < n; ++h)
    for (unsigned p1 = 0; p1 < pigeons; ++p1)
      for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.addClause({-var(p1, h), -var(p2, h)});
  return cnf;
}

Cnf randomCnf(Rng& rng, unsigned vars, unsigned clauses, unsigned maxLen) {
  Cnf cnf;
  cnf.numVars = vars;
  for (unsigned i = 0; i < clauses; ++i) {
    Clause c;
    const unsigned len = 1 + rng.below(maxLen);
    for (unsigned j = 0; j < len; ++j) {
      const int v = 1 + static_cast<int>(rng.below(vars));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  return cnf;
}

TEST(Portfolio, InstanceZeroIsTheBaseline) {
  PortfolioOptions popts;
  popts.base.lubyUnit = 123;
  const Options o = portfolioInstanceOptions(popts, 0);
  EXPECT_EQ(o.seed, popts.base.seed);
  EXPECT_EQ(o.lubyUnit, 123);
  EXPECT_EQ(o.randomDecisionFreq, 0.0);
  EXPECT_FALSE(o.randomInitPhase);
}

TEST(Portfolio, InstancesAreDiversified) {
  PortfolioOptions popts;
  const Options a = portfolioInstanceOptions(popts, 1);
  const Options b = portfolioInstanceOptions(popts, 2);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_GT(a.randomDecisionFreq, 0.0);
}

// Determinism property: same CNF, any instance count, any base seed ->
// the same SAT/UNSAT verdict, and on UNSAT the winner's proof passes the
// built-in RUP checker.
class PortfolioDeterminism
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PortfolioDeterminism, VerdictIsSeedAndThreadCountInvariant) {
  const auto [seedIdx, instances] = GetParam();
  PortfolioOptions popts;
  popts.instances = static_cast<unsigned>(instances);
  popts.baseSeed = 0x1234567ULL * static_cast<unsigned>(seedIdx + 1);
  popts.wantProof = true;

  {
    const Cnf unsat = pigeonhole(4);
    PortfolioReport rep;
    EXPECT_EQ(solvePortfolio(unsat, popts, &rep), Result::Unsat);
    EXPECT_EQ(rep.result, Result::Unsat);
    EXPECT_GE(rep.winner, 0);
    EXPECT_TRUE(rep.proof.endsWithEmptyClause());
    EXPECT_TRUE(checkRup(unsat, rep.proof))
        << "winner " << rep.winner << " seed " << rep.winnerSeed;
  }
  {
    // Satisfiable: a chain 1 -> 2 -> ... -> 9 plus a free variable.
    Cnf sat;
    sat.numVars = 10;
    sat.addClause({1});
    for (int v = 1; v < 9; ++v) sat.addClause({-v, v + 1});
    PortfolioReport rep;
    EXPECT_EQ(solvePortfolio(sat, popts, &rep), Result::Sat);
    ASSERT_EQ(rep.model.size(), sat.numVars + 1);
    for (const auto& c : sat.clauses) {
      bool satisfied = false;
      for (CnfLit l : c)
        satisfied |= (l > 0) == rep.model[static_cast<unsigned>(std::abs(l))];
      EXPECT_TRUE(satisfied);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsByThreads, PortfolioDeterminism,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(Portfolio, AgreesWithSequentialSolverOnRandomCnfs) {
  Rng rng(2026);
  PortfolioOptions popts;
  popts.instances = 3;
  for (int iter = 0; iter < 40; ++iter) {
    const Cnf cnf = randomCnf(rng, 4 + rng.below(9), 2 + rng.below(45), 4);
    const Result sequential = solveCnf(cnf);
    EXPECT_EQ(solvePortfolio(cnf, popts), sequential) << "iter " << iter;
  }
}

TEST(Portfolio, BudgetExhaustionEverywhereReturnsUnknown) {
  Rng rng(7);
  const Cnf cnf = randomCnf(rng, 60, 256, 3);
  PortfolioOptions popts;
  popts.instances = 3;
  popts.conflictBudget = 1;
  PortfolioReport rep;
  const Result r = solvePortfolio(cnf, popts, &rep);
  if (r == Result::Unknown) {
    EXPECT_EQ(rep.winner, -1);
  } else {
    // A 1-conflict budget can still decide trivially; then a winner exists.
    EXPECT_GE(rep.winner, 0);
  }
}

TEST(Portfolio, SingleInstanceMatchesSolveCnfExactly) {
  // With instances=1 the portfolio is the sequential solver: same verdict
  // and same conflict count (bit-for-bit deterministic baseline).
  const Cnf cnf = pigeonhole(4);
  Stats seq;
  EXPECT_EQ(solveCnf(cnf, nullptr, &seq), Result::Unsat);
  PortfolioOptions popts;
  popts.instances = 1;
  PortfolioReport rep;
  EXPECT_EQ(solvePortfolio(cnf, popts, &rep), Result::Unsat);
  EXPECT_EQ(rep.winner, 0);
  EXPECT_EQ(rep.winnerStats.conflicts, seq.conflicts);
  EXPECT_EQ(rep.winnerStats.decisions, seq.decisions);
}

TEST(Portfolio, EmptyClauseIsUnsatWithProof) {
  Cnf cnf;
  cnf.numVars = 1;
  cnf.addClause({});
  PortfolioOptions popts;
  popts.instances = 2;
  popts.wantProof = true;
  PortfolioReport rep;
  EXPECT_EQ(solvePortfolio(cnf, popts, &rep), Result::Unsat);
  EXPECT_TRUE(checkRup(cnf, rep.proof));
}

}  // namespace
}  // namespace velev::sat
