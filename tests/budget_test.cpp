// Resource-governed verification: BudgetGovernor unit semantics, graceful
// Timeout/MemOut verdicts from verify(), budget isolation between grid
// cells, and the PE-only -> rewriting fallback policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/grid_runner.hpp"
#include "core/verifier.hpp"
#include "prop/cnf.hpp"
#include "sat/solver.hpp"
#include "support/budget.hpp"

namespace velev {
namespace {

// ---- governor unit semantics ----------------------------------------------

TEST(Budget, UnlimitedBudgetNeverTrips) {
  BudgetGovernor gov(ResourceBudget{});
  EXPECT_FALSE(gov.budget().limited());
  const int src = gov.registerSource();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NO_THROW(gov.checkpoint(src, 1u << 30));
    EXPECT_FALSE(gov.poll(src, 1u << 30));
  }
  EXPECT_FALSE(gov.exceeded());
  EXPECT_EQ(gov.exceededKind(), BudgetKind::None);
  EXPECT_TRUE(gov.exceededReason().empty());
}

TEST(Budget, MemoryTripIsStickyAndCarriesKind) {
  ResourceBudget b;
  b.memoryBytes = 1000;
  BudgetGovernor gov(b);
  const int src = gov.registerSource();
  EXPECT_NO_THROW(gov.checkpoint(src, 500));
  try {
    gov.checkpoint(src, 2000);
    FAIL() << "checkpoint over budget must throw";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetKind::Memory);
    EXPECT_NE(std::string(e.what()).find("memory"), std::string::npos);
  }
  // Sticky: every later poll/checkpoint reports the same trip, even with a
  // byte total that would be back under budget.
  EXPECT_TRUE(gov.exceeded());
  EXPECT_EQ(gov.exceededKind(), BudgetKind::Memory);
  EXPECT_TRUE(gov.poll(src, 0));
  EXPECT_THROW(gov.checkpoint(src, 0), BudgetExceeded);
  EXPECT_FALSE(gov.exceededReason().empty());
}

TEST(Budget, MemoryTripSumsOverRegisteredSources) {
  ResourceBudget b;
  b.memoryBytes = 1000;
  BudgetGovernor gov(b);
  const int a = gov.registerSource();
  const int c = gov.registerSource();
  ASSERT_NE(a, c);
  EXPECT_NO_THROW(gov.checkpoint(a, 600));
  // 600 + 600 > 1000 although each source alone is under budget.
  EXPECT_THROW(gov.checkpoint(c, 600), BudgetExceeded);
}

TEST(Budget, UnslottedSourceStillGovernedThroughOverflow) {
  ResourceBudget b;
  b.memoryBytes = 1000;
  BudgetGovernor gov(b);
  EXPECT_THROW(gov.checkpoint(-1, 2000), BudgetExceeded);
  EXPECT_EQ(gov.exceededKind(), BudgetKind::Memory);
}

TEST(Budget, ExpiredDeadlineTripsWithinOneTimeStride) {
  ResourceBudget b;
  b.wallSeconds = 1e-9;  // already expired by the time we checkpoint
  BudgetGovernor gov(b);
  const int src = gov.registerSource();
  bool threw = false;
  // Time is checked every kTimeStride-th checkpoint; 600 calls cover at
  // least two strides.
  for (int i = 0; i < 600 && !threw; ++i) {
    try {
      gov.checkpoint(src, 0);
    } catch (const BudgetExceeded& e) {
      EXPECT_EQ(e.kind(), BudgetKind::Deadline);
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(gov.exceededKind(), BudgetKind::Deadline);
}

TEST(Budget, PeakArenaBytesTracksHighWater) {
  BudgetGovernor gov(ResourceBudget{});
  const int src = gov.registerSource();
  gov.checkpoint(src, 100);
  gov.checkpoint(src, 5000);
  gov.checkpoint(src, 300);  // shrinking does not lower the peak
  EXPECT_GE(gov.peakArenaBytes(), 5000u);
}

TEST(Budget, ExternalTripFirstCallerWins) {
  BudgetGovernor gov(ResourceBudget{});
  gov.trip(BudgetKind::Deadline, "external deadline");
  gov.trip(BudgetKind::Memory, "should be ignored");
  EXPECT_EQ(gov.exceededKind(), BudgetKind::Deadline);
  EXPECT_EQ(gov.exceededReason(), "external deadline");
}

TEST(Budget, KindNames) {
  EXPECT_STREQ(budgetKindName(BudgetKind::None), "none");
  EXPECT_STREQ(budgetKindName(BudgetKind::Deadline), "deadline");
  EXPECT_STREQ(budgetKindName(BudgetKind::Memory), "memory");
}

// ---- the SAT solver path: poll, never throw -------------------------------

TEST(Budget, SolverReturnsUnknownOnExpiredDeadline) {
  // An already-expired deadline must surface as Result::Unknown from the
  // solve loop's poll — a solver never throws mid-propagation — and the
  // caller disambiguates via the governor.
  prop::Cnf cnf;
  // Small pigeonhole (4 pigeons, 3 holes): unsatisfiable, needs real search.
  const unsigned pigeons = 4, holes = 3;
  auto var = [&](unsigned p, unsigned h) {
    return static_cast<prop::CnfLit>(p * holes + h + 1);
  };
  cnf.numVars = pigeons * holes;
  for (unsigned p = 0; p < pigeons; ++p) {
    prop::Clause atLeast;
    for (unsigned h = 0; h < holes; ++h) atLeast.push_back(var(p, h));
    cnf.addClause(atLeast);
  }
  for (unsigned h = 0; h < holes; ++h)
    for (unsigned p1 = 0; p1 < pigeons; ++p1)
      for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.addClause({-var(p1, h), -var(p2, h)});
  ASSERT_EQ(sat::solveCnf(cnf), sat::Result::Unsat);  // sanity, ungoverned

  ResourceBudget b;
  b.wallSeconds = 1e-9;
  BudgetGovernor gov(b);
  const sat::Result r =
      sat::solveCnf(cnf, nullptr, nullptr, -1, nullptr, &gov);
  EXPECT_EQ(r, sat::Result::Unknown);
  EXPECT_TRUE(gov.exceeded());
  EXPECT_EQ(gov.exceededKind(), BudgetKind::Deadline);
}

// ---- end-to-end verify(): graceful budget verdicts ------------------------

TEST(BudgetVerify, TinyMemoryBudgetGivesMemOutDeterministically) {
  // Calibration-free determinism: measure the run's real logical peak
  // unbudgeted, then re-run with half that — the same deterministic
  // allocation sequence must cross the budget at the same point.
  core::VerifyRequest req;
  req.robSize = 3;
  req.issueWidth = 2;
  req.strategy = core::Strategy::PositiveEqualityOnly;
  const core::VerifyReport full = core::verify(req);
  ASSERT_EQ(full.verdict(), core::Verdict::Correct);
  ASSERT_GT(full.outcome.peakArenaBytes, 0u);

  req.memoryBudgetBytes = full.outcome.peakArenaBytes / 2;
  for (int run = 0; run < 2; ++run) {
    const core::VerifyReport rep = core::verify(req);
    EXPECT_EQ(rep.verdict(), core::Verdict::MemOut);
    EXPECT_TRUE(rep.outcome.budgetExceeded());
    EXPECT_FALSE(rep.outcome.reason.empty());
    // The trip point is deterministic, so the recorded peak is too (and is
    // bounded by budget + one checkpoint stride of slack).
    EXPECT_GT(rep.outcome.peakArenaBytes, 0u);
    EXPECT_EQ(core::verdictExitCode(rep.verdict()), 4);
  }
}

TEST(BudgetVerify, ExpiredDeadlineGivesTimeout) {
  core::VerifyRequest req;
  req.robSize = 3;
  req.issueWidth = 2;
  req.strategy = core::Strategy::PositiveEqualityOnly;
  req.timeoutSeconds = 1e-9;
  const core::VerifyReport rep = core::verify(req);
  EXPECT_EQ(rep.verdict(), core::Verdict::Timeout);
  EXPECT_TRUE(rep.outcome.budgetExceeded());
  EXPECT_FALSE(rep.outcome.reason.empty());
}

TEST(BudgetVerify, GenerousBudgetStillProvesCorrect) {
  core::VerifyRequest req;
  req.robSize = 4;
  req.issueWidth = 2;
  req.timeoutSeconds = 3600;
  req.memoryBudgetBytes = std::uint64_t{4} << 30;
  const core::VerifyReport rep = core::verify(req);
  EXPECT_EQ(rep.verdict(), core::Verdict::Correct);
  EXPECT_FALSE(rep.outcome.budgetExceeded());
}

// ---- grid isolation: one memout cell leaves siblings untouched ------------

TEST(BudgetGrid, MemOutCellDoesNotDisturbSiblings) {
  // Sibling cells, small enough to verify quickly PE-only.
  core::VerifyRequest base;
  base.strategy = core::Strategy::PositiveEqualityOnly;
  const std::vector<core::VerifyRequest> siblings = core::makeGridRequests(
      std::vector<unsigned>{2, 3}, std::vector<unsigned>{1, 2}, base);

  core::GridRunOptions unbudgeted;
  unbudgeted.jobs = 1;
  const auto baseline = core::runGrid(siblings, unbudgeted);
  std::size_t siblingPeak = 0;
  for (const auto& r : baseline) {
    ASSERT_EQ(r.report.verdict(), core::Verdict::Correct);
    siblingPeak = std::max(siblingPeak, r.report.outcome.peakArenaBytes);
  }
  ASSERT_GT(siblingPeak, 0u);

  // Same grid plus one oversized cell, under a budget every sibling fits in
  // with 4x headroom but the big cell's PE-only translation cannot.
  std::vector<core::VerifyRequest> cells = siblings;
  core::VerifyRequest big16 = base;
  big16.robSize = 16;
  big16.issueWidth = 4;
  cells.push_back(big16);
  for (core::VerifyRequest& c : cells)
    c.memoryBudgetBytes = siblingPeak * 4;
  core::GridRunOptions budgeted = unbudgeted;
  budgeted.jobs = 3;  // exercise the concurrent path too

  const auto results = core::runGrid(cells, budgeted);
  ASSERT_EQ(results.size(), siblings.size() + 1);
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    // Memory is governed on per-cell logical bytes, not process RSS, so the
    // memout neighbour must not change any sibling verdict or statistic.
    EXPECT_EQ(results[i].report.verdict(), baseline[i].report.verdict());
    EXPECT_EQ(results[i].report.evcStats.cnfVars,
              baseline[i].report.evcStats.cnfVars);
    EXPECT_EQ(results[i].report.evcStats.cnfClauses,
              baseline[i].report.evcStats.cnfClauses);
    EXPECT_FALSE(results[i].report.outcome.budgetExceeded());
  }
  const auto& big = results.back();
  EXPECT_EQ(big.report.verdict(), core::Verdict::MemOut);
  EXPECT_TRUE(big.report.outcome.budgetExceeded());
  EXPECT_FALSE(big.fellBack);
}

TEST(BudgetGrid, FallbackRetriesMemOutCellWithRewriting) {
  // Calibrate: the rewriting flow's peak for this cell (it must fit), then
  // budget so the PE-only attempt trips but the rewriting retry succeeds.
  core::VerifyRequest rw;
  rw.robSize = 16;
  rw.issueWidth = 2;
  rw.strategy = core::Strategy::RewritingPlusPositiveEquality;
  const core::VerifyReport rwRep = core::verify(rw);
  ASSERT_EQ(rwRep.verdict(), core::Verdict::Correct);

  core::VerifyRequest pe = rw;
  pe.strategy = core::Strategy::PositiveEqualityOnly;
  pe.memoryBudgetBytes = rwRep.outcome.peakArenaBytes * 2;
  const std::vector<core::VerifyRequest> cells = {pe};
  core::GridRunOptions gopts;
  gopts.jobs = 1;
  gopts.fallback = core::FallbackPolicy::RetryWithRewriting;

  const auto results = core::runGrid(cells, gopts);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].fellBack);
  EXPECT_EQ(results[0].firstVerdict, core::Verdict::MemOut);
  EXPECT_EQ(results[0].report.verdict(), core::Verdict::Correct);
  EXPECT_FALSE(results[0].report.outcome.budgetExceeded());
}

}  // namespace
}  // namespace velev
