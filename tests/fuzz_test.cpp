// Tests for the differential fuzzing subsystem (src/fuzz): generator
// validity and determinism, counterexample decoding round-trips (both on
// hand-built formulas and on a real buggy processor), the agreement
// relation, delta-debugging shrinking, corpus serialization, and replay
// of the checked-in seed regression corpus (tests/corpus, path injected
// by CMake as VELEV_CORPUS_DIR).
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzz.hpp"
#include "models/isa.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace velev {
namespace {

using models::BugKind;

// ---- generator --------------------------------------------------------------

TEST(FuzzGen, CasesAreAlwaysBuildable) {
  Rng rng(7);
  for (unsigned i = 0; i < 300; ++i) {
    const fuzz::FuzzCase c = fuzz::generateCase(rng, i);
    EXPECT_EQ(c.id, i);
    ASSERT_GE(c.cfg.robSize, 1u);
    ASSERT_LE(c.cfg.robSize, 6u);
    ASSERT_GE(c.cfg.issueWidth, 1u);
    ASSERT_LE(c.cfg.issueWidth, c.cfg.robSize);
    if (c.bug.kind != BugKind::None) {
      EXPECT_GE(c.bug.index, fuzz::bugIndexMin(c.bug.kind));
      EXPECT_LE(c.bug.index, models::bugIndexLimit(c.bug.kind, c.cfg));
    }
    // The contract: buildOoO accepts every generated case.
    eufm::Context cx;
    const models::Isa isa = models::Isa::declare(cx);
    EXPECT_NO_THROW(models::buildOoO(cx, isa, c.cfg, c.bug));
  }
}

TEST(FuzzGen, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (unsigned i = 0; i < 64; ++i) {
    const fuzz::FuzzCase ca = fuzz::generateCase(a, i);
    const fuzz::FuzzCase cb = fuzz::generateCase(b, i);
    EXPECT_EQ(ca.seed, cb.seed);
    EXPECT_EQ(ca.cfg.robSize, cb.cfg.robSize);
    EXPECT_EQ(ca.cfg.issueWidth, cb.cfg.issueWidth);
    EXPECT_EQ(ca.bug.kind, cb.bug.kind);
    EXPECT_EQ(ca.bug.index, cb.bug.index);
  }
}

TEST(FuzzGen, NoBugPercentIsRespectedAtTheExtremes) {
  fuzz::GenOptions all;
  all.noBugPercent = 100;
  fuzz::GenOptions none;
  none.noBugPercent = 0;
  Rng rng(3);
  for (unsigned i = 0; i < 50; ++i)
    EXPECT_EQ(fuzz::generateCase(rng, i, all).bug.kind, BugKind::None);
  for (unsigned i = 0; i < 50; ++i)
    EXPECT_NE(fuzz::generateCase(rng, i, none).bug.kind, BugKind::None);
}

TEST(FuzzGen, EveryGeneratableKindAppears) {
  std::set<BugKind> seen;
  Rng rng(11);
  fuzz::GenOptions opts;
  opts.noBugPercent = 0;
  for (unsigned i = 0; i < 400; ++i)
    seen.insert(fuzz::generateCase(rng, i, opts).bug.kind);
  for (const BugKind k : fuzz::generatableBugKinds())
    EXPECT_TRUE(seen.count(k)) << models::bugKindName(k);
  EXPECT_EQ(seen.size(), fuzz::generatableBugKinds().size());
}

// ---- bug kind helpers (models) ---------------------------------------------

TEST(FuzzGen, BugKindNamesRoundTrip) {
  for (const BugKind k : fuzz::generatableBugKinds()) {
    const auto back = models::bugKindFromName(models::bugKindName(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_EQ(models::bugKindFromName("none"), BugKind::None);
  EXPECT_FALSE(models::bugKindFromName("bogus").has_value());
}

// ---- counterexample decoding ------------------------------------------------

// Hand-built round trip: translate a tiny falsifiable formula, get a SAT
// model of its negation, decode it, and check the decoded assignment is
// exactly the falsifying one.
TEST(FuzzDecode, HandBuiltFormulaRoundTrips) {
  eufm::Context cx;
  const eufm::Expr x = cx.termVar("x");
  const eufm::Expr y = cx.termVar("y");
  const eufm::Expr b = cx.boolVar("ctrl");
  // F = (x = y) -> ctrl. The equation occurs negatively in F, so it is a
  // g-equation and gets a real e_ij CNF variable.
  const eufm::Expr f = cx.mkImplies(cx.mkEq(x, y), b);
  const evc::Translation tr = evc::translate(cx, f);
  ASSERT_EQ(tr.ufRoot, f);  // no memory, no UFs: translate must not rewrite it

  std::vector<bool> model;
  ASSERT_EQ(sat::solveCnf(tr.cnf, &model), sat::Result::Sat);

  const fuzz::Counterexample cex = fuzz::decodeModel(cx, tr, model);
  // The only falsifying assignment: x = y with ctrl = false.
  ASSERT_EQ(cex.bools.size(), 1u);
  EXPECT_EQ(cex.bools[0].first, "ctrl");
  EXPECT_FALSE(cex.bools[0].second);
  ASSERT_EQ(cex.eijs.size(), 1u);
  EXPECT_TRUE(cex.eijs[0].equal);
  EXPECT_TRUE(cex.transitive);
  EXPECT_TRUE(cex.falsifiesUfRoot);
  // x and y must decode to the same scalar.
  ASSERT_EQ(cex.terms.size(), 2u);
  EXPECT_EQ(cex.terms[0].second, cex.terms[1].second);
}

TEST(FuzzDecode, EqualityClassesGetOneScalarPerClass) {
  eufm::Context cx;
  const eufm::Expr x = cx.termVar("x");
  const eufm::Expr y = cx.termVar("y");
  const eufm::Expr z = cx.termVar("z");
  // F = (x = y) /\ (y = z) -> ctrl. The only falsifying assignment sets
  // both g-equations true, so the union-find closure must merge all three
  // variables into one class with a single scalar.
  const eufm::Expr f = cx.mkImplies(
      cx.mkAnd(cx.mkEq(x, y), cx.mkEq(y, z)), cx.boolVar("ctrl"));
  const evc::Translation tr = evc::translate(cx, f);
  std::vector<bool> model;
  ASSERT_EQ(sat::solveCnf(tr.cnf, &model), sat::Result::Sat);

  const fuzz::Counterexample cex = fuzz::decodeModel(cx, tr, model);
  EXPECT_TRUE(cex.transitive);
  EXPECT_TRUE(cex.falsifiesUfRoot);
  ASSERT_EQ(cex.terms.size(), 3u);
  EXPECT_EQ(cex.terms[0].second, cex.terms[1].second);
  EXPECT_EQ(cex.terms[1].second, cex.terms[2].second);
  const auto valueOf = [&](const std::string& name) {
    for (const auto& [n, v] : cex.terms)
      if (n == name) return v;
    ADD_FAILURE() << "no decoded value for " << name;
    return std::uint64_t{0};
  };
  for (const fuzz::Counterexample::Eij& e : cex.eijs)
    EXPECT_EQ(e.equal, valueOf(e.a) == valueOf(e.b)) << e.a << " vs " << e.b;
}

// A real PE counterexample from a buggy processor must decode into a
// consistent term-level refutation that also falsifies the original
// Burch-Dill criterion under replay.
TEST(FuzzDecode, BuggyProcessorModelDecodesAndNamesTheFailure) {
  fuzz::FuzzCase c;
  c.seed = 5;
  c.cfg = {2, 1};
  c.bug = {BugKind::RetireIgnoresValidResult, 1};
  const fuzz::OracleOutcome o = fuzz::runOracles(c);
  ASSERT_EQ(o.peVerdict, core::Verdict::CounterexampleFound);
  ASSERT_TRUE(o.cex.has_value());
  EXPECT_TRUE(o.cex->transitive);
  EXPECT_TRUE(o.cex->falsifiesUfRoot);
  EXPECT_TRUE(o.cex->replayRefuted);
  // The pretty slice names the concrete interpretation and the failing
  // disjunct(s) of the correctness criterion.
  EXPECT_NE(o.cex->prettySlice.find("concrete refutation"), std::string::npos)
      << o.cex->prettySlice;
  EXPECT_NE(o.cex->prettySlice.find("m="), std::string::npos)
      << o.cex->prettySlice;
  EXPECT_FALSE(fuzz::findDisagreement(o).has_value());
}

// ---- the agreement relation -------------------------------------------------

TEST(FuzzAgreement, CorrectVersusEvalRefutedIsADisagreement) {
  fuzz::OracleOutcome o;
  o.rewriteVerdict = core::Verdict::Correct;
  o.peVerdict = core::Verdict::Skipped;
  o.evalRefuted = true;
  EXPECT_TRUE(fuzz::findDisagreement(o).has_value());

  o.rewriteVerdict = core::Verdict::RewriteMismatch;
  o.peVerdict = core::Verdict::Correct;
  EXPECT_TRUE(fuzz::findDisagreement(o).has_value());
}

TEST(FuzzAgreement, ExactFlowsDisagreeingWithEachOtherIsFlagged) {
  fuzz::OracleOutcome o;
  o.rewriteVerdict = core::Verdict::Correct;
  o.peVerdict = core::Verdict::CounterexampleFound;
  EXPECT_TRUE(fuzz::findDisagreement(o).has_value());
}

TEST(FuzzAgreement, ConservativeAndInconclusiveVerdictsNeverCount) {
  fuzz::OracleOutcome o;
  // RewriteMismatch is structural: consistent with PE Correct, PE Sat,
  // and a passing evaluation oracle.
  o.rewriteVerdict = core::Verdict::RewriteMismatch;
  for (const core::Verdict pe :
       {core::Verdict::Correct, core::Verdict::CounterexampleFound,
        core::Verdict::Skipped, core::Verdict::MemOut})
    for (const bool refuted : {false, true}) {
      o.peVerdict = pe;
      o.evalRefuted = refuted;
      if (pe == core::Verdict::Correct && refuted) continue;  // real clash
      EXPECT_FALSE(fuzz::findDisagreement(o).has_value())
          << core::verdictName(pe) << " refuted=" << refuted;
    }
  // Budget-capped PE never clashes with anything.
  o.rewriteVerdict = core::Verdict::Correct;
  o.evalRefuted = false;
  for (const core::Verdict pe :
       {core::Verdict::Inconclusive, core::Verdict::Timeout,
        core::Verdict::MemOut, core::Verdict::Skipped}) {
    o.peVerdict = pe;
    EXPECT_FALSE(fuzz::findDisagreement(o).has_value());
  }
}

TEST(FuzzAgreement, InconsistentDecodedModelIsADisagreement) {
  fuzz::OracleOutcome o;
  o.rewriteVerdict = core::Verdict::RewriteMismatch;
  o.peVerdict = core::Verdict::CounterexampleFound;
  o.evalRefuted = true;
  o.cex.emplace();
  o.cex->transitive = false;
  o.cex->falsifiesUfRoot = true;
  EXPECT_TRUE(fuzz::findDisagreement(o).has_value());
  o.cex->transitive = true;
  o.cex->falsifiesUfRoot = false;
  EXPECT_TRUE(fuzz::findDisagreement(o).has_value());
  o.cex->falsifiesUfRoot = true;
  EXPECT_FALSE(fuzz::findDisagreement(o).has_value());
}

// ---- shrinking --------------------------------------------------------------

fuzz::FuzzCase bigCase() {
  fuzz::FuzzCase c;
  c.cfg = {6, 4};
  c.bug = {BugKind::AluWrongOpcode, 5};
  return c;
}

TEST(FuzzShrink, AlwaysFailingPredicateShrinksToTheFloor) {
  const fuzz::ShrinkResult r =
      fuzz::shrinkCase(bigCase(), [](const fuzz::FuzzCase&) { return true; });
  EXPECT_EQ(r.minimal.cfg.robSize, 1u);
  EXPECT_EQ(r.minimal.cfg.issueWidth, 1u);
  EXPECT_EQ(r.minimal.bug.index, 1u);
  EXPECT_GT(r.reductions, 0u);
}

TEST(FuzzShrink, PredicateBoundIsRespected) {
  // Fails only while the ROB stays >= 4: the shrinker must stop there and
  // never return a candidate the predicate rejected.
  const fuzz::ShrinkResult r = fuzz::shrinkCase(
      bigCase(),
      [](const fuzz::FuzzCase& c) { return c.cfg.robSize >= 4; });
  EXPECT_EQ(r.minimal.cfg.robSize, 4u);
  EXPECT_EQ(r.minimal.cfg.issueWidth, 1u);
}

TEST(FuzzShrink, NeverFailingPredicateReturnsTheOriginal) {
  const fuzz::FuzzCase big = bigCase();
  const fuzz::ShrinkResult r =
      fuzz::shrinkCase(big, [](const fuzz::FuzzCase&) { return false; });
  EXPECT_EQ(r.minimal.cfg.robSize, big.cfg.robSize);
  EXPECT_EQ(r.minimal.cfg.issueWidth, big.cfg.issueWidth);
  EXPECT_EQ(r.minimal.bug.index, big.bug.index);
  EXPECT_EQ(r.reductions, 0u);
}

TEST(FuzzShrink, ShrunkCasesStayBuildable) {
  // Forwarding bugs need a preceding slice; the shrinker must respect the
  // kind's floor while minimizing.
  fuzz::FuzzCase c;
  c.cfg = {6, 3};
  c.bug = {BugKind::ForwardingWrongOperand, 6};
  const fuzz::ShrinkResult r =
      fuzz::shrinkCase(c, [](const fuzz::FuzzCase&) { return true; });
  EXPECT_GE(r.minimal.bug.index, fuzz::bugIndexMin(c.bug.kind));
  EXPECT_LE(r.minimal.bug.index,
            models::bugIndexLimit(r.minimal.bug.kind, r.minimal.cfg));
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  EXPECT_NO_THROW(models::buildOoO(cx, isa, r.minimal.cfg, r.minimal.bug));
}

TEST(FuzzShrink, RealOracleShrinkFindsTheMinimalBuggyCase) {
  // A detected retire bug stays detected all the way down to 1x1.
  fuzz::FuzzCase c;
  c.seed = 9;
  c.cfg = {4, 2};
  c.bug = {BugKind::RetireIgnoresValidResult, 2};
  fuzz::OracleOptions opts;
  opts.evalSeeds = 8;
  const auto detected = [&](const fuzz::FuzzCase& cand) {
    const fuzz::OracleOutcome o = fuzz::runOracles(cand, opts);
    return o.rewriteVerdict == core::Verdict::RewriteMismatch ||
           o.peVerdict == core::Verdict::CounterexampleFound;
  };
  ASSERT_TRUE(detected(c));
  const fuzz::ShrinkResult r = fuzz::shrinkCase(c, detected);
  EXPECT_TRUE(detected(r.minimal));
  EXPECT_EQ(r.minimal.cfg.robSize, 1u);
  EXPECT_EQ(r.minimal.cfg.issueWidth, 1u);
  EXPECT_EQ(r.minimal.bug.index, 1u);
}

// ---- corpus I/O -------------------------------------------------------------

TEST(FuzzCorpus, EntriesRoundTripThroughJson) {
  fuzz::CorpusEntry e;
  e.c.id = 3;
  e.c.seed = 0xc5fefdbul * 0x9e3779b9ul;  // exercises > 2^53 seeds
  e.c.seed |= 1ull << 63;
  e.c.cfg = {5, 2};
  e.c.bug = {BugKind::CompletionSkipsWrite, 6};
  e.rewriteVerdict = "rewrite-mismatch";
  e.failedSlice = 6;
  e.peVerdict = "skipped";
  e.evalRefuted = true;
  e.decoded = false;
  e.note = "hand-built";

  std::ostringstream os;
  fuzz::writeCorpus(os, std::span(&e, 1));
  std::string err;
  const auto doc = parseJson(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->uintAt("schema_version"),
            static_cast<std::uint64_t>(fuzz::kCorpusSchemaVersion));
  const JsonValue* entries = doc->find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->array.size(), 1u);

  const auto back = fuzz::parseCorpusEntry(entries->array[0], &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->c.id, e.c.id);
  EXPECT_EQ(back->c.seed, e.c.seed);  // bit-exact despite the JSON detour
  EXPECT_EQ(back->c.cfg.robSize, e.c.cfg.robSize);
  EXPECT_EQ(back->c.cfg.issueWidth, e.c.cfg.issueWidth);
  EXPECT_EQ(back->c.bug.kind, e.c.bug.kind);
  EXPECT_EQ(back->c.bug.index, e.c.bug.index);
  EXPECT_EQ(back->rewriteVerdict, e.rewriteVerdict);
  EXPECT_EQ(back->failedSlice, e.failedSlice);
  EXPECT_EQ(back->peVerdict, e.peVerdict);
  EXPECT_EQ(back->evalRefuted, e.evalRefuted);
  EXPECT_EQ(back->decoded, e.decoded);
  EXPECT_EQ(back->note, e.note);
}

TEST(FuzzCorpus, MalformedEntriesAreRejectedWithAReason) {
  const auto reject = [](const std::string& json) {
    std::string err;
    const auto doc = parseJson(json, &err);
    ASSERT_TRUE(doc.has_value()) << err;
    EXPECT_FALSE(fuzz::parseCorpusEntry(*doc, &err).has_value());
    EXPECT_FALSE(err.empty());
  };
  reject(R"({"case_seed": "1", "rob_size": 2, "width": 4, "bug": "none"})");
  reject(R"({"case_seed": "1", "rob_size": 2, "width": 1, "bug": "what"})");
  reject(R"({"case_seed": "1", "rob_size": 2, "width": 1, "bug": "fwd",
             "bug_index": 9})");
  reject(R"({"case_seed": "xyz", "rob_size": 2, "width": 1, "bug": "none"})");
  reject(R"([1, 2, 3])");
}

// ---- the harness ------------------------------------------------------------

fuzz::FuzzOptions smokeOptions(std::uint64_t seed) {
  fuzz::FuzzOptions opts;
  opts.seed = seed;
  opts.cases = 5;
  opts.gen.maxRobSize = 3;  // keep the PE oracle cheap
  opts.oracle.evalSeeds = 8;
  opts.shrink = false;
  return opts;
}

TEST(FuzzHarness, SmokeRunAgreesAndCountsAddUp) {
  const fuzz::FuzzReport rep = fuzz::runFuzz(smokeOptions(1));
  EXPECT_EQ(rep.casesRun, 5u);
  EXPECT_EQ(rep.records.size(), 5u);
  EXPECT_EQ(rep.disagreements, 0u);
  EXPECT_EQ(rep.exitCode(), 0);
  EXPECT_EQ(rep.bugsDetected + rep.benignBugs, rep.bugsInjected);
  unsigned injected = 0;
  for (const fuzz::CaseRecord& r : rep.records)
    if (r.c.bug.kind != BugKind::None) ++injected;
  EXPECT_EQ(injected, rep.bugsInjected);
}

TEST(FuzzHarness, SameSeedYieldsByteIdenticalCorpus) {
  const auto corpusBytes = [](std::uint64_t seed) {
    const fuzz::FuzzReport rep = fuzz::runFuzz(smokeOptions(seed));
    std::vector<fuzz::CorpusEntry> entries;
    for (const fuzz::CaseRecord& r : rep.records)
      entries.push_back(fuzz::makeCorpusEntry(r.c, r.o));
    std::ostringstream os;
    fuzz::writeCorpus(os, entries);
    return os.str();
  };
  const std::string a = corpusBytes(6);
  EXPECT_EQ(a, corpusBytes(6));
  EXPECT_NE(a, corpusBytes(8));
}

// ---- seed regression corpus -------------------------------------------------

TEST(FuzzCorpusRegression, CheckedInCorporaReplayCleanly) {
  const std::filesystem::path dir = VELEV_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  unsigned files = 0, entries = 0;
  std::set<BugKind> kinds;
  for (const auto& de : std::filesystem::directory_iterator(dir)) {
    if (de.path().extension() != ".json") continue;
    ++files;
    std::string err;
    const std::vector<fuzz::CorpusEntry> corpus =
        fuzz::loadCorpusFile(de.path().string(), &err);
    ASSERT_FALSE(corpus.empty()) << de.path() << ": " << err;
    for (const fuzz::CorpusEntry& e : corpus) {
      ++entries;
      kinds.insert(e.c.bug.kind);
      const auto mismatch = fuzz::replayEntry(e);
      EXPECT_FALSE(mismatch.has_value()) << de.path() << ": " << *mismatch;
    }
  }
  EXPECT_GE(files, 2u);
  EXPECT_GE(entries, 20u);
  // The regression corpus pins down every bug kind the generator can emit
  // (plus bug-free cases).
  for (const BugKind k : fuzz::generatableBugKinds())
    EXPECT_TRUE(kinds.count(k)) << models::bugKindName(k);
  EXPECT_TRUE(kinds.count(BugKind::None));
}

}  // namespace
}  // namespace velev
