// Tests for the rewriting-rule engine: update-chain mechanics, context
// analysis, guarded substitution, the full engine over a grid of processor
// configurations, bug detection at the exact slice, and semantic soundness
// of the removal (the proven-equal prefix states really are equal under
// random finite interpretations).
#include <gtest/gtest.h>

#include "core/diagram.hpp"
#include "eufm/eval.hpp"
#include "models/spec.hpp"
#include "rewrite/contexts.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/subst.hpp"
#include "rewrite/update_chain.hpp"
#include "support/rng.hpp"

namespace velev::rewrite {
namespace {

using eufm::Context;
using eufm::Expr;

class ChainTest : public ::testing::Test {
 protected:
  Context cx;
};

TEST_F(ChainTest, ExtractSingleUpdate) {
  const Expr m = cx.termVar("M");
  const Expr c = cx.boolVar("c");
  const Expr a = cx.termVar("a"), d = cx.termVar("d");
  const Expr u = cx.mkIteT(c, cx.mkWrite(m, a, d), m);
  const UpdateChain chain = extractChain(cx, u);
  EXPECT_EQ(chain.base, m);
  ASSERT_EQ(chain.updates.size(), 1u);
  EXPECT_EQ(chain.updates[0].ctx, c);
  EXPECT_EQ(chain.updates[0].addr, a);
  EXPECT_EQ(chain.updates[0].data, d);
}

TEST_F(ChainTest, ExtractStacksBottomUp) {
  const Expr m = cx.termVar("M");
  Expr cur = m;
  std::vector<Expr> addrs;
  for (int i = 0; i < 4; ++i) {
    const Expr a = cx.termVar("a" + std::to_string(i));
    addrs.push_back(a);
    cur = cx.mkIteT(cx.boolVar("c" + std::to_string(i)),
                    cx.mkWrite(cur, a, cx.termVar("d" + std::to_string(i))),
                    cur);
  }
  const UpdateChain chain = extractChain(cx, cur);
  ASSERT_EQ(chain.updates.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(chain.updates[i].addr, addrs[i]);
  EXPECT_EQ(rebuildChain(cx, chain.base, chain.updates), cur);
}

TEST_F(ChainTest, NonUpdateIsBase) {
  const Expr m = cx.termVar("M");
  const Expr c = cx.boolVar("c");
  // ITE whose else-branch is not the written state: not an update.
  const Expr odd = cx.mkIteT(c, cx.mkWrite(m, cx.termVar("a"),
                                           cx.termVar("d")),
                             cx.termVar("other"));
  const UpdateChain chain = extractChain(cx, odd);
  EXPECT_TRUE(chain.updates.empty());
  EXPECT_EQ(chain.base, odd);
}

TEST_F(ChainTest, ExtractToMissingBaseThrows) {
  const Expr m = cx.termVar("M");
  EXPECT_THROW(extractChainTo(cx, m, cx.termVar("N")), InternalError);
}

TEST_F(ChainTest, ConjunctsFlattenNestedAnds) {
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b"), c = cx.boolVar("c");
  const auto cs = conjuncts(cx, cx.mkAnd(cx.mkAnd(a, b), c));
  EXPECT_EQ(cs.size(), 3u);
}

TEST_F(ChainTest, SyntacticImplication) {
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b"), c = cx.boolVar("c");
  EXPECT_TRUE(impliesSyntactic(cx, cx.mkAnd(cx.mkAnd(a, b), c),
                               cx.mkAnd(a, c)));
  EXPECT_FALSE(impliesSyntactic(cx, cx.mkAnd(a, b), cx.mkAnd(a, c)));
}

TEST_F(ChainTest, DisjointByOppositeLiteral) {
  const Expr a = cx.boolVar("a"), b = cx.boolVar("b");
  EXPECT_TRUE(disjointContexts(cx, cx.mkAnd(a, b),
                               cx.mkAnd(cx.mkNot(a), b)));
  EXPECT_FALSE(disjointContexts(cx, cx.mkAnd(a, b), b));
}

TEST_F(ChainTest, DisjointByNegatedConjunction) {
  // The paper's pattern: retire_2 = r2' & retire_1 vs !retire_1.
  const Expr v1 = cx.boolVar("v1"), v2 = cx.boolVar("v2");
  const Expr r1 = cx.mkOr(cx.mkNot(v1), cx.boolVar("vr1"));
  const Expr r2 = cx.mkAnd(cx.mkOr(cx.mkNot(v2), cx.boolVar("vr2")), r1);
  const Expr ctxRetire = cx.mkAnd(v2, r2);
  const Expr ctxFlush = cx.mkAnd(v1, cx.mkNot(r1));
  EXPECT_TRUE(disjointContexts(cx, ctxFlush, ctxRetire));
}

TEST_F(ChainTest, SubstituteShallowFoldsGuards) {
  const Expr v = cx.boolVar("v"), w = cx.boolVar("w");
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr e = cx.mkIteT(cx.mkAnd(v, w), x, y);
  BoolAssumptions assume{{v, false}};
  EXPECT_EQ(substituteShallow(cx, e, assume), y);
  BoolAssumptions assume2{{v, true}};
  EXPECT_EQ(substituteShallow(cx, e, assume2), cx.mkIteT(w, x, y));
}

TEST_F(ChainTest, SubstituteShallowKeepsReadBases) {
  const Expr m = cx.termVar("M");
  const Expr v = cx.boolVar("v");
  const Expr a = cx.termVar("a"), d = cx.termVar("d");
  // The memory argument contains an ITE guarded by v, but shallow
  // substitution must not rewrite below the read's memory argument.
  const Expr mem = cx.mkIteT(v, cx.mkWrite(m, a, d), m);
  const Expr e = cx.mkRead(mem, cx.mkIteT(v, a, d));
  BoolAssumptions assume{{v, true}};
  const Expr r = substituteShallow(cx, e, assume);
  EXPECT_EQ(r, cx.mkRead(mem, a));  // address folded, base untouched
}

TEST_F(ChainTest, SubstituteMemReplacesBase) {
  const Expr m = cx.termVar("M"), n = cx.termVar("N");
  const Expr a = cx.termVar("a");
  const Expr e = cx.mkRead(m, a);
  EXPECT_EQ(substituteMem(cx, e, m, n), cx.mkRead(n, a));
  // Other bases stay.
  const Expr other = cx.termVar("Other");
  EXPECT_EQ(substituteMem(cx, cx.mkRead(other, a), m, n),
            cx.mkRead(other, a));
}

// ---- full engine over a configuration grid -----------------------------------

struct GridParam {
  unsigned n, k;
};

class EngineGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(EngineGrid, CorrectDesignRewrites) {
  const auto [n, k] = GetParam();
  Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {n, k});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);

  const RewriteResult rw = rewriteRobUpdates(
      cx, isa, impl->init, impl->config, d.implRegFile, d.specRegFile);
  ASSERT_TRUE(rw.ok) << "slice " << rw.failedSlice << ": " << rw.message;
  EXPECT_EQ(rw.updatesRemoved, k + 2 * n);

  // The rewritten implementation side carries exactly the k new-instruction
  // updates over the fresh equal state; m-th spec side carries m updates.
  const UpdateChain ic = extractChainTo(cx, rw.implRegFile, rw.equalStateVar);
  EXPECT_EQ(ic.updates.size(), k);
  for (unsigned m = 0; m <= k; ++m) {
    const UpdateChain sc =
        extractChainTo(cx, rw.specRegFile[m], rw.equalStateVar);
    EXPECT_EQ(sc.updates.size(), m);
  }

  // Semantic soundness of the removal: the prefix states proven equal by
  // the rules — the implementation state below the new-instruction updates
  // and the flushed initial state — must be equal under every sampled
  // interpretation.
  const UpdateChain full = extractChain(cx, d.implRegFile);
  const Expr implPrefix = full.updates[full.updates.size() - k].prev;
  const Expr claim = cx.mkEq(implPrefix, d.specRegFile[0]);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    eufm::Interp in(seed, 2);
    eufm::Evaluator ev(cx, in);
    EXPECT_TRUE(ev.evalFormula(claim)) << "n=" << n << " k=" << k
                                       << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineGrid,
    ::testing::Values(GridParam{1, 1}, GridParam{2, 1}, GridParam{2, 2},
                      GridParam{3, 1}, GridParam{3, 2}, GridParam{3, 3},
                      GridParam{4, 2}, GridParam{4, 4}, GridParam{5, 3},
                      GridParam{6, 2}, GridParam{8, 4}, GridParam{8, 8},
                      GridParam{12, 2}, GridParam{16, 8}),
    [](const auto& info) {
      return "N" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k);
    });

// The reassembled correctness formula over the rewritten Register File
// expressions must itself be EUFM-valid: sample it with random finite
// interpretations (the fresh equal-state variable is just another term
// variable there).
TEST_P(EngineGrid, RewrittenCorrectnessRemainsValid) {
  const auto [n, k] = GetParam();
  if (n > 8) GTEST_SKIP() << "evaluation cost";
  Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {n, k});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  const RewriteResult rw = rewriteRobUpdates(
      cx, isa, impl->init, impl->config, d.implRegFile, d.specRegFile);
  ASSERT_TRUE(rw.ok);
  Expr c = cx.mkFalse();
  for (unsigned m = 0; m <= k; ++m)
    c = cx.mkOr(c, cx.mkAnd(cx.mkEq(d.implPc, d.specPc[m]),
                            cx.mkEq(rw.implRegFile, rw.specRegFile[m])));
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    eufm::Interp in(seed * 3 + 1, 2);
    eufm::Evaluator ev(cx, in);
    EXPECT_TRUE(ev.evalFormula(c)) << "seed " << seed;
  }
}

// Fuzz the chain utilities: random chains survive an extract/rebuild
// round-trip both structurally and semantically.
class ChainFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ChainFuzz, ExtractRebuildRoundTrip) {
  Rng rng(GetParam() * 7919 + 3);
  Context cx;
  const Expr base = cx.termVar("M");
  Expr cur = base;
  const unsigned len = 1 + rng.below(12);
  for (unsigned i = 0; i < len; ++i) {
    // Contexts must be pairwise distinct between adjacent updates: with an
    // identical condition the ITE same-condition fold legitimately merges
    // the chain (processor chains always have distinct contexts per slice).
    const Expr ctx = cx.boolVar("c" + std::to_string(i));
    const Expr addr = cx.termVar("a" + std::to_string(rng.below(4)));
    const Expr data = cx.termVar("d" + std::to_string(rng.below(4)));
    cur = cx.mkIteT(ctx, cx.mkWrite(cur, addr, data), cur);
  }
  const UpdateChain chain = extractChain(cx, cur);
  EXPECT_EQ(chain.base, base);
  // Hash-consing makes the round-trip an identity on node ids.
  EXPECT_EQ(rebuildChain(cx, chain.base, chain.updates), cur);
  // And extractChainTo agrees when given the right base.
  const UpdateChain chain2 = extractChainTo(cx, cur, base);
  EXPECT_EQ(chain2.updates.size(), chain.updates.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainFuzz, ::testing::Range(0, 20));

// ---- bug detection -------------------------------------------------------------

struct BugParam {
  models::BugKind kind;
  unsigned n, k, index;
};

class EngineBugs : public ::testing::TestWithParam<BugParam> {};

TEST_P(EngineBugs, FlagsTheBuggySlice) {
  const auto [kind, n, k, index] = GetParam();
  Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, {n, k}, {kind, index});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  const RewriteResult rw = rewriteRobUpdates(
      cx, isa, impl->init, impl->config, d.implRegFile, d.specRegFile);
  ASSERT_FALSE(rw.ok) << "bug was not detected";
  // Forwarding/ALU bugs are pinpointed at their slice; structural bugs
  // (retire / completion-skip) surface at or before the affected slice.
  if (kind == models::BugKind::ForwardingWrongOperand ||
      kind == models::BugKind::ForwardingStaleResult ||
      kind == models::BugKind::AluWrongOpcode) {
    EXPECT_EQ(rw.failedSlice, index) << rw.message;
  } else {
    EXPECT_GE(rw.failedSlice, 1u);
    EXPECT_LE(rw.failedSlice, index);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EngineBugs,
    ::testing::Values(
        BugParam{models::BugKind::ForwardingWrongOperand, 8, 2, 5},
        BugParam{models::BugKind::ForwardingWrongOperand, 16, 4, 12},
        BugParam{models::BugKind::ForwardingWrongOperand, 4, 2, 2},
        BugParam{models::BugKind::ForwardingStaleResult, 8, 2, 6},
        BugParam{models::BugKind::ForwardingStaleResult, 6, 3, 4},
        BugParam{models::BugKind::AluWrongOpcode, 8, 4, 3},
        BugParam{models::BugKind::AluWrongOpcode, 5, 1, 5},
        BugParam{models::BugKind::RetireIgnoresValidResult, 6, 3, 2},
        BugParam{models::BugKind::RetireIgnoresValidResult, 4, 2, 1},
        BugParam{models::BugKind::CompletionSkipsWrite, 8, 2, 4},
        BugParam{models::BugKind::CompletionSkipsWrite, 5, 2, 5}),
    [](const auto& info) {
      return "kind" + std::to_string(static_cast<int>(info.param.kind)) +
             "N" + std::to_string(info.param.n) + "k" +
             std::to_string(info.param.k) + "i" +
             std::to_string(info.param.index);
    });

// The paper's exact buggy experiment: forwarding bug in one operand of the
// 72nd instruction of a 128-entry ROB with issue width 4 — the engine must
// identify slice 72.
TEST(EngineBugsPaper, Slice72Of128) {
  Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(
      cx, isa, {128, 4}, {models::BugKind::ForwardingWrongOperand, 72});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  const RewriteResult rw = rewriteRobUpdates(
      cx, isa, impl->init, impl->config, d.implRegFile, d.specRegFile);
  ASSERT_FALSE(rw.ok);
  EXPECT_EQ(rw.failedSlice, 72u);
}

// The forwarding bug only mis-wires operand 1 of one slice; if the buggy
// slice's two source registers are the same variable the design is
// accidentally correct — the engine must then succeed. (Checks the engine
// is not over-eager.)
TEST(EngineBugsPaper, WrongOperandBugOnSlice1IsHarmless) {
  // Slice 1 has no preceding entries, so its forwarding chain is empty and
  // the mis-wiring cannot manifest.
  Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(
      cx, isa, {4, 2}, {models::BugKind::ForwardingWrongOperand, 1});
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  const RewriteResult rw = rewriteRobUpdates(
      cx, isa, impl->init, impl->config, d.implRegFile, d.specRegFile);
  EXPECT_TRUE(rw.ok) << rw.message;
}

}  // namespace
}  // namespace velev::rewrite
