// Tests for the CNF inprocessing pipeline (src/sat/simplify) and the
// incremental session built on it: every pass — individually and composed
// — must preserve satisfiability (cross-checked against the untouched
// solver, brute force, and the BDD engine), Sat models of the simplified
// CNF must reconstruct to models of the ORIGINAL CNF, frozen variables
// must keep assumption-conditional equisatisfiability, and the checked-in
// fuzz corpus must decode identically with the front end on and off.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <vector>

#include "core/request.hpp"
#include "core/verifier.hpp"
#include "fuzz/fuzz.hpp"
#include "prop/cnf.hpp"
#include "sat/simplify.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace velev::sat {
namespace {

using prop::Clause;
using prop::Cnf;
using prop::CnfLit;

Cnf randomCnf(Rng& rng, unsigned maxVars = 14, unsigned maxClauses = 60) {
  Cnf cnf;
  cnf.numVars = 4 + rng.below(maxVars - 3);
  const unsigned m = 4 + rng.below(maxClauses - 3);
  for (unsigned i = 0; i < m; ++i) {
    Clause c;
    const unsigned len = 1 + rng.below(4);
    for (unsigned j = 0; j < len; ++j) {
      const int v = 1 + static_cast<int>(rng.below(cnf.numVars));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  // Sprinkle in binary equivalence cycles so the substitution pass and the
  // reconstruction stack actually fire (pure random 3-SAT rarely has SCCs).
  if (cnf.numVars >= 6 && rng.coin()) {
    const int a = 1 + static_cast<int>(rng.below(cnf.numVars - 2));
    cnf.addClause({-a, a + 1});
    cnf.addClause({-(a + 1), a + 2});
    cnf.addClause({-(a + 2), a});
  }
  return cnf;
}

bool modelSatisfies(const Cnf& cnf, const std::vector<bool>& model) {
  for (const Clause& c : cnf.clauses) {
    bool sat = false;
    for (CnfLit l : c)
      sat |= (l > 0) == model[static_cast<unsigned>(std::abs(l))];
    if (!sat) return false;
  }
  return true;
}

bool bruteForceSat(const Cnf& cnf) {
  for (std::uint64_t m = 0; m < (1ull << cnf.numVars); ++m) {
    std::vector<bool> model(cnf.numVars + 1, false);
    for (unsigned v = 1; v <= cnf.numVars; ++v)
      model[v] = ((m >> (v - 1)) & 1) != 0;
    if (modelSatisfies(cnf, model)) return true;
  }
  return false;
}

InprocessOptions singlePass(int which) {
  InprocessOptions o;
  o.substitute = which == 0;
  o.subsume = which == 1;
  o.vivify = which == 2;
  o.probe = which == 3;
  o.varElim = which == 4;
  return o;
}

// ---- equisatisfiability, pass by pass ---------------------------------------

class InprocessPass : public ::testing::TestWithParam<int> {};

TEST_P(InprocessPass, PreservesSatisfiabilityAgainstUntouchedSolver) {
  Rng rng(91u + static_cast<unsigned>(GetParam()) * 7919u);
  const InprocessOptions opts = singlePass(GetParam());
  for (int iter = 0; iter < 120; ++iter) {
    const Cnf cnf = randomCnf(rng);
    const SimplifyResult sr = inprocess(cnf, opts);
    const Result original = solveCnf(cnf);
    const Result simplified =
        sr.provedUnsat ? Result::Unsat : solveCnf(sr.cnf);
    EXPECT_EQ(simplified, original)
        << "pass " << GetParam() << " iter " << iter;
  }
}

TEST_P(InprocessPass, ReconstructedModelSatisfiesOriginal) {
  Rng rng(1009u + static_cast<unsigned>(GetParam()) * 104729u);
  const InprocessOptions opts = singlePass(GetParam());
  unsigned satCases = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Cnf cnf = randomCnf(rng);
    SimplifyResult sr = inprocess(cnf, opts);
    if (sr.provedUnsat) continue;
    std::vector<bool> model;
    if (solveCnf(sr.cnf, &model) != Result::Sat) continue;
    ++satCases;
    sr.recon.extend(model);
    ASSERT_GE(model.size(), cnf.numVars + 1u);
    EXPECT_TRUE(modelSatisfies(cnf, model))
        << "pass " << GetParam() << " iter " << iter;
  }
  EXPECT_GT(satCases, 20u);  // the mix must actually exercise the pass
}

INSTANTIATE_TEST_SUITE_P(Passes, InprocessPass, ::testing::Range(0, 5));

// ---- equisatisfiability, full pipeline --------------------------------------

TEST(Inprocess, FullPipelineAgreesWithBruteForce) {
  Rng rng(4242);
  for (int iter = 0; iter < 120; ++iter) {
    Cnf cnf = randomCnf(rng, /*maxVars=*/10, /*maxClauses=*/40);
    const bool expect = bruteForceSat(cnf);
    const SimplifyResult sr = inprocess(cnf, {});
    const bool simplified =
        !sr.provedUnsat && solveCnf(sr.cnf) == Result::Sat;
    EXPECT_EQ(simplified, expect) << "iter " << iter;

    // And through the one-call front end, with model reconstruction.
    std::vector<bool> model;
    const Result r = solveCnfInprocessed(cnf, {}, &model);
    EXPECT_EQ(r == Result::Sat, expect) << "iter " << iter;
    if (r == Result::Sat) EXPECT_TRUE(modelSatisfies(cnf, model));
  }
}

TEST(Inprocess, DisabledIsExactPassThrough) {
  Rng rng(7);
  InprocessOptions off;
  off.enabled = false;
  for (int iter = 0; iter < 20; ++iter) {
    const Cnf cnf = randomCnf(rng);
    const SimplifyResult sr = inprocess(cnf, off);
    ASSERT_EQ(sr.cnf.clauses.size(), cnf.clauses.size());
    for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
      EXPECT_EQ(sr.cnf.clauses[i], cnf.clauses[i]);
    EXPECT_TRUE(sr.recon.empty());
  }
}

TEST(Inprocess, PipelineActuallySimplifies) {
  // The triangle-heavy random mix must show work in the stats — otherwise
  // the equisat tests above are vacuous.
  Rng rng(31337);
  InprocessStats total;
  for (int iter = 0; iter < 60; ++iter) {
    const SimplifyResult sr = inprocess(randomCnf(rng), {});
    total.clausesRemoved += sr.stats.clausesRemoved;
    total.varsEliminated += sr.stats.varsEliminated;
    total.varsSubstituted += sr.stats.varsSubstituted;
    total.reconstructionDepth += sr.stats.reconstructionDepth;
  }
  EXPECT_GT(total.clausesRemoved, 0u);
  EXPECT_GT(total.varsEliminated, 0u);
  EXPECT_GT(total.varsSubstituted, 0u);
  EXPECT_GT(total.reconstructionDepth, 0u);
}

// ---- frozen variables: assumption-conditional equisatisfiability ------------

TEST(Inprocess, FrozenVariablesKeepConditionalEquisat) {
  Rng rng(5150);
  for (int iter = 0; iter < 60; ++iter) {
    const Cnf cnf = randomCnf(rng, /*maxVars=*/10, /*maxClauses=*/40);
    // Freeze two variables and compare original vs simplified under every
    // assignment of the frozen pair, forced in as unit clauses.
    const std::uint32_t f1 = 1 + rng.below(cnf.numVars);
    std::uint32_t f2 = 1 + rng.below(cnf.numVars);
    if (f2 == f1) f2 = (f1 % cnf.numVars) + 1;
    const std::uint32_t frozen[] = {f1, f2};
    const SimplifyResult sr = inprocess(cnf, {}, nullptr, nullptr, frozen);
    for (int bits = 0; bits < 4; ++bits) {
      Cnf a = cnf;
      Cnf b = sr.cnf;
      const CnfLit u1 = (bits & 1) != 0 ? static_cast<CnfLit>(f1)
                                        : -static_cast<CnfLit>(f1);
      const CnfLit u2 = (bits & 2) != 0 ? static_cast<CnfLit>(f2)
                                        : -static_cast<CnfLit>(f2);
      a.addClause({u1});
      a.addClause({u2});
      b.addClause({u1});
      b.addClause({u2});
      const Result ra = solveCnf(a);
      const Result rb = sr.provedUnsat ? Result::Unsat : solveCnf(b);
      EXPECT_EQ(ra, rb) << "iter " << iter << " bits " << bits;
    }
  }
}

// ---- reconstruction stack: crafted chains -----------------------------------

TEST(Inprocess, ReconstructionResolvesChainedSubstitutionAndElimination) {
  // x1 ≡ x2 ≡ x3 (cycle), x4 functionally defined from x1 (AND gate),
  // x5 free with one positive occurrence — substitution collapses the
  // cycle, elimination resolves x4/x5 away, and the reconstructed model
  // must still satisfy every original clause.
  Cnf cnf;
  cnf.numVars = 6;
  cnf.addClause({-1, 2});
  cnf.addClause({-2, 3});
  cnf.addClause({-3, 1});
  cnf.addClause({-4, 1});  // x4 -> x1
  cnf.addClause({-4, 6});  // x4 -> x6
  cnf.addClause({4, -1, -6});
  cnf.addClause({5, 1});
  cnf.addClause({6, 2});
  SimplifyResult sr = inprocess(cnf, {});
  ASSERT_FALSE(sr.provedUnsat);
  EXPECT_GT(sr.stats.varsSubstituted + sr.stats.varsEliminated, 0u);
  std::vector<bool> model;
  ASSERT_EQ(solveCnf(sr.cnf, &model), Result::Sat);
  sr.recon.extend(model);
  ASSERT_GE(model.size(), 7u);
  EXPECT_TRUE(modelSatisfies(cnf, model));
  // The collapsed cycle really is enforced in the reconstruction.
  EXPECT_EQ(model[1], model[2]);
  EXPECT_EQ(model[2], model[3]);
}

// ---- BDD engine cross-check (within its envelope) ---------------------------

TEST(Inprocess, BddEngineAgreesWithInprocessedSatOnPipelineCell) {
  // Engine::Both runs CNF+CDCL (behind the inprocessing front end) and the
  // BDD engine under sibling budgets and raises a hard error on any
  // conclusive disagreement — a Correct verdict therefore certifies
  // cross-engine agreement with inprocessing in the loop.
  core::VerifyRequest req;
  req.robSize = 3;
  req.issueWidth = 2;
  req.engine = core::Engine::Both;
  ASSERT_TRUE(req.inprocess);
  const core::VerifyReport rep = core::verify(req);
  EXPECT_EQ(rep.verdict(), core::Verdict::Correct);
  EXPECT_TRUE(rep.inprocessed);
  EXPECT_GT(rep.inprocessStats.clausesBefore, 0u);
}

// ---- corpus replay through the decoder --------------------------------------

TEST(Inprocess, CorpusSeedsDecodeIdenticallyWithAndWithoutFrontEnd) {
  // One representative entry per injected-bug kind (plus a bug-free one)
  // from the checked-in regression corpus, replayed through the full
  // oracle stack — the decode sanity checks (transitivity, falsifies-UF-
  // root) run on the RECONSTRUCTED model, so a clean replay with the
  // front end enabled is a reconstruction round-trip on real processor
  // encodings. Both settings must reproduce the recorded verdicts.
  const std::filesystem::path dir = VELEV_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::map<models::BugKind, fuzz::CorpusEntry> picks;
  for (const auto& de : std::filesystem::directory_iterator(dir)) {
    if (de.path().extension() != ".json") continue;
    std::string err;
    for (const fuzz::CorpusEntry& e :
         fuzz::loadCorpusFile(de.path().string(), &err)) {
      auto it = picks.find(e.c.bug.kind);
      // Prefer entries with a decoded counterexample: those exercise the
      // model-reconstruction path, not just the UNSAT path.
      if (it == picks.end() || (e.decoded && !it->second.decoded))
        picks.insert_or_assign(e.c.bug.kind, e);
    }
  }
  for (const models::BugKind k : fuzz::generatableBugKinds())
    ASSERT_TRUE(picks.count(k)) << models::bugKindName(k);
  ASSERT_TRUE(picks.count(models::BugKind::None));

  fuzz::OracleOptions withFrontEnd;
  ASSERT_TRUE(withFrontEnd.inprocess.enabled);
  fuzz::OracleOptions without;
  without.inprocess.enabled = false;
  unsigned decodedEntries = 0;
  for (const auto& [kind, e] : picks) {
    decodedEntries += e.decoded ? 1u : 0u;
    const auto m1 = fuzz::replayEntry(e, withFrontEnd);
    EXPECT_FALSE(m1.has_value())
        << models::bugKindName(kind) << " (inprocess on): " << *m1;
    const auto m2 = fuzz::replayEntry(e, without);
    EXPECT_FALSE(m2.has_value())
        << models::bugKindName(kind) << " (inprocess off): " << *m2;
  }
  EXPECT_GT(decodedEntries, 0u);
}

}  // namespace
}  // namespace velev::sat
