// Tests for the EVC translation pipeline: polarity analysis, memory
// elimination, nested-ITE UF elimination, the e_ij encoding with Positive
// Equality, transitivity constraints, and end-to-end validity checking of
// hand-crafted EUFM formulas through translate() + SAT.
#include <gtest/gtest.h>

#include "eufm/eval.hpp"
#include "eufm/traverse.hpp"
#include "evc/encode.hpp"
#include "evc/memory.hpp"
#include "evc/polarity.hpp"
#include "evc/translate.hpp"
#include "evc/transitivity.hpp"
#include "evc/ufelim.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace velev::evc {
namespace {

using eufm::Context;
using eufm::Expr;
using eufm::FuncId;

/// Is `f` EUFM-valid according to the full pipeline (UNSAT negation)?
bool pipelineValid(Context& cx, Expr f, bool conservative = false) {
  TranslateOptions opts;
  opts.conservativeMemory = conservative;
  const Translation tr = translate(cx, f, opts);
  return sat::solveCnf(tr.cnf) == sat::Result::Unsat;
}

class EvcTest : public ::testing::Test {
 protected:
  Context cx;
};

// ---- polarity ---------------------------------------------------------------

TEST_F(EvcTest, PolarityOfPlainEquation) {
  const Expr eq = cx.mkEq(cx.termVar("x"), cx.termVar("y"));
  auto pol = computePolarities(cx, eq);
  EXPECT_EQ(pol.at(eq), kPolPos);
  auto pol2 = computePolarities(cx, cx.mkNot(eq));
  EXPECT_EQ(pol2.at(eq), kPolNeg);
}

TEST_F(EvcTest, IteControlIsBothPolarities) {
  const Expr eq = cx.mkEq(cx.termVar("x"), cx.termVar("y"));
  const Expr f = cx.mkIteF(eq, cx.boolVar("a"), cx.boolVar("b"));
  auto pol = computePolarities(cx, f);
  EXPECT_EQ(pol.at(eq), kPolBoth);
}

TEST_F(EvcTest, IteTermControlIsBothPolarities) {
  const Expr eq = cx.mkEq(cx.termVar("x"), cx.termVar("y"));
  const Expr t = cx.mkIteT(eq, cx.termVar("u"), cx.termVar("v"));
  const Expr root = cx.mkEq(t, cx.termVar("w"));
  auto pol = computePolarities(cx, root);
  EXPECT_EQ(pol.at(eq), kPolBoth);
}

TEST_F(EvcTest, DoubleNegationRestoresPolarity) {
  const Expr eq = cx.mkEq(cx.termVar("x"), cx.termVar("y"));
  const Expr f = cx.mkNot(cx.mkNot(eq));
  // mkNot folds double negation, so eq is the root itself.
  auto pol = computePolarities(cx, f);
  EXPECT_EQ(pol.at(eq), kPolPos);
}

TEST_F(EvcTest, ClassificationMarksGVars) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y"), z = cx.termVar("z");
  const Expr root =
      cx.mkAnd(cx.mkNot(cx.mkEq(x, y)), cx.mkEq(z, cx.termVar("w")));
  const Classification cl = classify(cx, root);
  EXPECT_TRUE(cl.isGVar(x));
  EXPECT_TRUE(cl.isGVar(y));
  EXPECT_FALSE(cl.isGVar(z));
  EXPECT_EQ(cl.gEquations, 1u);
  EXPECT_EQ(cl.pEquations, 1u);
}

TEST_F(EvcTest, ClassificationTaintsFunctionSymbols) {
  const FuncId f = cx.declareFunc("f", 1);
  const Expr x = cx.termVar("x");
  const Expr root = cx.mkNot(cx.mkEq(cx.apply(f, {x}), cx.termVar("y")));
  const Classification cl = classify(cx, root);
  EXPECT_TRUE(cl.gFuncs.count(f));
  EXPECT_FALSE(cl.isGVar(x));  // argument of a g-function stays p
}

TEST_F(EvcTest, GnessPropagatesThroughIte) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr c = cx.boolVar("c");
  const Expr root =
      cx.mkNot(cx.mkEq(cx.mkIteT(c, x, y), cx.termVar("z")));
  const Classification cl = classify(cx, root);
  EXPECT_TRUE(cl.isGVar(x));
  EXPECT_TRUE(cl.isGVar(y));
}

// ---- memory elimination -----------------------------------------------------

TEST_F(EvcTest, FullMemoryElimRemovesOperators) {
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a"), b = cx.termVar("b"), d = cx.termVar("d");
  const Expr f = cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), b), cx.mkRead(m, b));
  const auto res = eliminateMemoryFull(cx, f);
  EXPECT_GT(res.expandedReads, 0u);
  // The result must not contain read/write (checked internally too).
  EXPECT_NE(res.root, f);
}

TEST_F(EvcTest, ReadOverWriteSameAddressIsValid) {
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a"), d = cx.termVar("d");
  const Expr f = cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), a), d);
  EXPECT_TRUE(pipelineValid(cx, f));
}

TEST_F(EvcTest, ReadOverWriteDifferentAddressNeedsGuard) {
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a"), b = cx.termVar("b"), d = cx.termVar("d");
  const Expr unguarded =
      cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), b), cx.mkRead(m, b));
  EXPECT_FALSE(pipelineValid(cx, unguarded));
  const Expr guarded = cx.mkOr(cx.mkEq(a, b), unguarded);
  EXPECT_TRUE(pipelineValid(cx, guarded));
}

TEST_F(EvcTest, MemoryEqualityReflexive) {
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a"), d = cx.termVar("d");
  const Expr w = cx.mkWrite(m, a, d);
  EXPECT_TRUE(pipelineValid(cx, cx.mkEq(w, w)));
}

TEST_F(EvcTest, EqualUpdatesGiveEqualMemories) {
  // write(m,a,d) = write(m,a,d) with distinct-but-equal structure via ITE.
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a"), d = cx.termVar("d");
  const Expr c = cx.boolVar("c");
  const Expr lhs = cx.mkIteT(c, cx.mkWrite(m, a, d), m);
  const Expr rhs = cx.mkIteT(cx.mkNot(cx.mkNot(c)), cx.mkWrite(m, a, d), m);
  EXPECT_TRUE(pipelineValid(cx, cx.mkEq(lhs, rhs)));
}

TEST_F(EvcTest, UnequalDataGivesUnequalMemories) {
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a");
  const Expr f = cx.mkEq(cx.mkWrite(m, a, cx.termVar("d1")),
                         cx.mkWrite(m, a, cx.termVar("d2")));
  EXPECT_FALSE(pipelineValid(cx, f));
}

TEST_F(EvcTest, ConservativeModelIsSoundForProgramOrderChains) {
  // Identical update sequences over the same base are provably equal even
  // without the forwarding property.
  const Expr m = cx.termVar("M");
  const Expr a1 = cx.termVar("a1"), d1 = cx.termVar("d1");
  const Expr a2 = cx.termVar("a2"), d2 = cx.termVar("d2");
  const Expr lhs = cx.mkWrite(cx.mkWrite(m, a1, d1), a2, d2);
  const Expr rhs = cx.mkWrite(cx.mkWrite(m, a1, d1), a2, d2);
  EXPECT_TRUE(pipelineValid(cx, cx.mkEq(lhs, rhs), /*conservative=*/true));
}

TEST_F(EvcTest, ConservativeModelLosesForwarding) {
  // read(write(m,a,d),a) = d is valid under memory semantics but NOT
  // provable with the conservative (general UF) model — the expected
  // incompleteness of the abstraction.
  const Expr m = cx.termVar("M");
  const Expr a = cx.termVar("a"), d = cx.termVar("d");
  const Expr f = cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), a), d);
  EXPECT_TRUE(pipelineValid(cx, f, /*conservative=*/false));
  EXPECT_FALSE(pipelineValid(cx, f, /*conservative=*/true));
}

TEST_F(EvcTest, NegativeMemoryEquationRejected) {
  const Expr m = cx.termVar("M");
  const Expr n = cx.termVar("N");
  const Expr f = cx.mkNot(cx.mkEq(cx.mkWrite(m, cx.termVar("a"),
                                             cx.termVar("d")),
                                  n));
  EXPECT_THROW(eliminateMemoryFull(cx, f), InternalError);
}

// ---- UF elimination ---------------------------------------------------------

TEST_F(EvcTest, UfEliminationFunctionalConsistency) {
  const FuncId f = cx.declareFunc("f", 1);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  // x = y -> f(x) = f(y): EUFM-valid.
  const Expr root = cx.mkImplies(cx.mkEq(x, y),
                                 cx.mkEq(cx.apply(f, {x}), cx.apply(f, {y})));
  EXPECT_TRUE(pipelineValid(cx, root));
}

TEST_F(EvcTest, UfOutputsNotConflated) {
  const FuncId f = cx.declareFunc("f", 1);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  // f(x) = f(y) without x = y is NOT valid.
  EXPECT_FALSE(
      pipelineValid(cx, cx.mkEq(cx.apply(f, {x}), cx.apply(f, {y}))));
}

TEST_F(EvcTest, UpConsistency) {
  const FuncId p = cx.declarePred("p", 1);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr root = cx.mkImplies(
      cx.mkEq(x, y), cx.mkIff(cx.apply(p, {x}), cx.apply(p, {y})));
  EXPECT_TRUE(pipelineValid(cx, root));
}

TEST_F(EvcTest, NestedUfConsistency) {
  const FuncId f = cx.declareFunc("f", 1);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  // x = y -> f(f(x)) = f(f(y)).
  const Expr fx = cx.apply(f, {cx.apply(f, {x})});
  const Expr fy = cx.apply(f, {cx.apply(f, {y})});
  EXPECT_TRUE(pipelineValid(cx, cx.mkImplies(cx.mkEq(x, y), cx.mkEq(fx, fy))));
}

TEST_F(EvcTest, UfElimLeavesNoApplications) {
  const FuncId f = cx.declareFunc("f", 2);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr root = cx.mkEq(cx.apply(f, {x, y}), cx.apply(f, {y, x}));
  const Classification cl = classify(cx, root);
  const UfElimResult res = eliminateUf(cx, root, cl);
  eufm::postorder(cx, res.root, [&](Expr e) {
    EXPECT_NE(cx.kind(e), eufm::Kind::Uf);
    EXPECT_NE(cx.kind(e), eufm::Kind::Up);
  });
  EXPECT_EQ(res.freshTermVars, 2u);
}

TEST_F(EvcTest, MultiArgConsistencyNeedsAllArgsEqual) {
  const FuncId f = cx.declareFunc("f", 2);
  const Expr x = cx.termVar("x"), y = cx.termVar("y"), z = cx.termVar("z");
  // x=y does NOT imply f(x,z)=f(y,w) for unrelated w.
  const Expr w = cx.termVar("w");
  const Expr bad = cx.mkImplies(
      cx.mkEq(x, y), cx.mkEq(cx.apply(f, {x, z}), cx.apply(f, {y, w})));
  EXPECT_FALSE(pipelineValid(cx, bad));
  const Expr good = cx.mkImplies(
      cx.mkAnd(cx.mkEq(x, y), cx.mkEq(z, w)),
      cx.mkEq(cx.apply(f, {x, z}), cx.apply(f, {y, w})));
  EXPECT_TRUE(pipelineValid(cx, good));
}

// ---- Positive Equality / e_ij encoding ---------------------------------------

TEST_F(EvcTest, ValidityWithGVarsNeedsCaseAnalysis) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y"), z = cx.termVar("z");
  // Transitivity: x=y & y=z -> x=z (all g-vars because of negations).
  const Expr root = cx.mkImplies(cx.mkAnd(cx.mkEq(x, y), cx.mkEq(y, z)),
                                 cx.mkEq(x, z));
  // The implication makes the premises negative -> g-equations; this is
  // valid only if the transitivity constraints are emitted.
  EXPECT_TRUE(pipelineValid(cx, root));
}

TEST_F(EvcTest, TransitivityChainLonger) {
  std::vector<Expr> v;
  for (int i = 0; i < 5; ++i) v.push_back(cx.termVar("t" + std::to_string(i)));
  Expr chain = cx.mkTrue();
  for (int i = 0; i < 4; ++i) chain = cx.mkAnd(chain, cx.mkEq(v[i], v[i + 1]));
  EXPECT_TRUE(pipelineValid(cx, cx.mkImplies(chain, cx.mkEq(v[0], v[4]))));
  EXPECT_FALSE(pipelineValid(cx, cx.mkImplies(chain, cx.mkEq(v[0], cx.termVar("other")))));
}

TEST_F(EvcTest, ExcludedMiddleOnEquality) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr eq = cx.mkEq(x, y);
  EXPECT_TRUE(pipelineValid(cx, cx.mkOr(eq, cx.mkNot(eq))));
  EXPECT_FALSE(pipelineValid(cx, eq));
  EXPECT_FALSE(pipelineValid(cx, cx.mkNot(eq)));
}

TEST_F(EvcTest, PTermDiversityIsSoundForValidity) {
  // ITE(c, x, y) = x  is not valid (c may be false, y != x); the maximally
  // diverse interpretation must find this refutation.
  const Expr c = cx.boolVar("c");
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  EXPECT_FALSE(pipelineValid(cx, cx.mkEq(cx.mkIteT(c, x, y), x)));
  // But guarded by c it is valid.
  EXPECT_TRUE(pipelineValid(
      cx, cx.mkImplies(c, cx.mkEq(cx.mkIteT(c, x, y), x))));
}

TEST_F(EvcTest, EncodeProducesNoEijWithoutGVars) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr root = cx.mkEq(x, y);  // positive only
  const Classification cl = classify(cx, root);
  EXPECT_TRUE(cl.gVars.empty());
  const UfElimResult uf = eliminateUf(cx, root, cl);
  const Encoding enc = encode(cx, uf.root, cl.gVars);
  EXPECT_EQ(enc.numEij(), 0u);
  EXPECT_EQ(enc.root, prop::kFalse);  // distinct p-vars: maximally diverse
}

TEST_F(EvcTest, EncodeCreatesEijForGPairs) {
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr root = cx.mkNot(cx.mkEq(x, y));
  const Classification cl = classify(cx, root);
  const UfElimResult uf = eliminateUf(cx, root, cl);
  std::unordered_set<Expr> g = cl.gVars;
  const Encoding enc = encode(cx, uf.root, g);
  EXPECT_EQ(enc.numEij(), 1u);
}

// ---- transitivity constraints ------------------------------------------------

TEST_F(EvcTest, TransitivityTriangle) {
  prop::Cnf cnf;
  std::map<std::pair<Expr, Expr>, std::uint32_t> edges;
  const Expr a = cx.termVar("a"), b = cx.termVar("b"), c = cx.termVar("c");
  cnf.numVars = 3;
  edges[{a, b}] = 1;
  edges[{b, c}] = 2;
  edges[{a, c}] = 3;
  const TransitivityStats st = addTransitivityConstraints(edges, cnf);
  EXPECT_EQ(st.fillInEdges, 0u);
  EXPECT_GE(st.triangles, 1u);
  // e_ab & e_bc & !e_ac must now be unsatisfiable.
  cnf.addClause({1});
  cnf.addClause({2});
  cnf.addClause({-3});
  EXPECT_EQ(sat::solveCnf(cnf), sat::Result::Unsat);
}

TEST_F(EvcTest, TransitivityPathNeedsFillIn) {
  prop::Cnf cnf;
  std::map<std::pair<Expr, Expr>, std::uint32_t> edges;
  // Path a-b-c-d plus chord a-d: a cycle of length 4 needs chordalization.
  const Expr a = cx.termVar("a"), b = cx.termVar("b"), c = cx.termVar("c"),
             d = cx.termVar("d");
  cnf.numVars = 4;
  edges[{a, b}] = 1;
  edges[{b, c}] = 2;
  edges[{c, d}] = 3;
  edges[{a, d}] = 4;
  const TransitivityStats st = addTransitivityConstraints(edges, cnf);
  EXPECT_GE(st.fillInEdges, 1u);
  // All three path edges true, chord false: must be unsatisfiable.
  cnf.addClause({1});
  cnf.addClause({2});
  cnf.addClause({3});
  cnf.addClause({-4});
  EXPECT_EQ(sat::solveCnf(cnf), sat::Result::Unsat);
}

TEST_F(EvcTest, TransitivityEmptyGraph) {
  prop::Cnf cnf;
  std::map<std::pair<Expr, Expr>, std::uint32_t> edges;
  const TransitivityStats st = addTransitivityConstraints(edges, cnf);
  EXPECT_EQ(st.clauses, 0u);
}

// ---- Ackermann ablation -------------------------------------------------------

bool pipelineValidAckermann(Context& cx, Expr f) {
  TranslateOptions opts;
  opts.ufScheme = UfScheme::Ackermann;
  const Translation tr = translate(cx, f, opts);
  return sat::solveCnf(tr.cnf) == sat::Result::Unsat;
}

TEST_F(EvcTest, AckermannAgreesOnValidity) {
  const FuncId f = cx.declareFunc("f", 1);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr congruence = cx.mkImplies(
      cx.mkEq(x, y), cx.mkEq(cx.apply(f, {x}), cx.apply(f, {y})));
  EXPECT_TRUE(pipelineValidAckermann(cx, congruence));
  const Expr collapse = cx.mkEq(cx.apply(f, {x}), cx.apply(f, {y}));
  EXPECT_FALSE(pipelineValidAckermann(cx, collapse));
  const Expr nested = cx.mkImplies(
      cx.mkEq(x, y), cx.mkEq(cx.apply(f, {cx.apply(f, {x})}),
                             cx.apply(f, {cx.apply(f, {y})})));
  EXPECT_TRUE(pipelineValidAckermann(cx, nested));
}

TEST_F(EvcTest, AckermannPredicateConsistency) {
  const FuncId p = cx.declarePred("p", 1);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr root = cx.mkImplies(
      cx.mkEq(x, y), cx.mkIff(cx.apply(p, {x}), cx.apply(p, {y})));
  EXPECT_TRUE(pipelineValidAckermann(cx, root));
}

TEST_F(EvcTest, AckermannForfeitsPositiveEquality) {
  // A purely positive formula: nested-ITE yields zero e_ij variables;
  // Ackermann's consistency antecedents force e_ij variables.
  const FuncId f = cx.declareFunc("f", 1);
  const Expr x = cx.termVar("x"), y = cx.termVar("y");
  const Expr root = cx.mkEq(cx.apply(f, {x}), cx.apply(f, {y}));
  const Translation nestedIte = translate(cx, root, {});
  TranslateOptions ack;
  ack.ufScheme = UfScheme::Ackermann;
  const Translation ackermann = translate(cx, root, ack);
  EXPECT_EQ(nestedIte.stats.eijVars, 0u);
  EXPECT_GT(ackermann.stats.eijVars, 0u);
  // Both must agree the formula is not valid.
  EXPECT_EQ(sat::solveCnf(nestedIte.cnf), sat::Result::Sat);
  EXPECT_EQ(sat::solveCnf(ackermann.cnf), sat::Result::Sat);
}

// ---- randomized cross-validation against the finite-model evaluator ----------

// For random EUFM formulas (no memories), pipeline validity implies truth
// under every sampled finite interpretation. (The converse need not hold for
// any finite sample, so only this direction is asserted.)
class PipelineSoundness : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSoundness, ValidFormulasAreTrueInFiniteModels) {
  Rng rng(GetParam() * 104729 + 3);
  Context cx;
  const FuncId f = cx.declareFunc("f", 1);
  const FuncId g = cx.declareFunc("g", 2);
  std::vector<Expr> terms, formulas;
  for (int i = 0; i < 3; ++i) terms.push_back(cx.termVar("t" + std::to_string(i)));
  for (int i = 0; i < 2; ++i) formulas.push_back(cx.boolVar("b" + std::to_string(i)));
  for (int i = 0; i < 18; ++i) {
    if (rng.coin()) {
      const Expr a = terms[rng.below(terms.size())];
      const Expr b = terms[rng.below(terms.size())];
      switch (rng.below(3)) {
        case 0: terms.push_back(cx.apply(f, {a})); break;
        case 1: terms.push_back(cx.apply(g, {a, b})); break;
        default:
          terms.push_back(
              cx.mkIteT(formulas[rng.below(formulas.size())], a, b));
      }
    } else {
      const Expr a = formulas[rng.below(formulas.size())];
      const Expr b = formulas[rng.below(formulas.size())];
      switch (rng.below(4)) {
        case 0: formulas.push_back(cx.mkAnd(a, b)); break;
        case 1: formulas.push_back(cx.mkOr(a, b)); break;
        case 2: formulas.push_back(cx.mkNot(a)); break;
        default:
          formulas.push_back(cx.mkEq(terms[rng.below(terms.size())],
                                     terms[rng.below(terms.size())]));
      }
    }
  }
  const Expr root = formulas.back();
  Context* pcx = &cx;
  if (pipelineValid(*pcx, root)) {
    for (std::uint64_t seed = 0; seed < 40; ++seed)
      EXPECT_TRUE(eufm::evalFormula(cx, root, seed, 3))
          << "valid formula false under seed " << seed;
  } else {
    // Not EUFM-valid: over small domains a counterexample should usually
    // exist, but absence is not a failure (finite sampling).
    SUCCEED();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSoundness, ::testing::Range(0, 30));

// ---- end-to-end stats --------------------------------------------------------

TEST_F(EvcTest, TranslationStatsArePopulated) {
  // Note: x=y | !(x=y) folds to TRUE at construction, so use a
  // transitivity instance that survives the smart constructors.
  const Expr x = cx.termVar("x"), y = cx.termVar("y"), z = cx.termVar("z");
  const Expr root = cx.mkImplies(cx.mkAnd(cx.mkEq(x, y), cx.mkEq(y, z)),
                                 cx.mkEq(x, z));
  const Translation tr = translate(cx, root, {});
  EXPECT_GE(tr.stats.gEquations, 2u);
  EXPECT_GT(tr.stats.cnfVars, 0u);
  EXPECT_EQ(tr.stats.eijVars, 3u);
  EXPECT_GE(tr.stats.transitivity.clauses, 3u);
}

// ---- name-registry round trip ----------------------------------------------
// Every UfScheme must round-trip through the support/names.hpp registry; an
// enumerator added without a table entry fails here.

class UfSchemeNames : public ::testing::TestWithParam<UfScheme> {};
TEST_P(UfSchemeNames, RoundTrips) {
  const char* name = names::nameOf(GetParam());
  EXPECT_STRNE(name, "unknown");
  const auto back = names::fromName<UfScheme>(name);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, GetParam());
  EXPECT_STREQ(ufSchemeName(GetParam()), name);  // legacy wrapper agrees
  EXPECT_EQ(ufSchemeFromName(name), GetParam());
}
INSTANTIATE_TEST_SUITE_P(Registry, UfSchemeNames,
                         ::testing::ValuesIn(names::valuesOf<UfScheme>()),
                         [](const auto& info) {
                           return std::to_string(info.index);
                         });

}  // namespace
}  // namespace velev::evc
