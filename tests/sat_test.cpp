// Tests for the CDCL SAT solver, including a brute-force cross-check over
// randomly generated small CNFs (the solver is the last link of the
// verification chain, so its correctness is load-bearing).
#include <gtest/gtest.h>

#include "prop/cnf.hpp"
#include "sat/incremental.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace velev::sat {
namespace {

using prop::Clause;
using prop::Cnf;
using prop::CnfLit;

Cnf makeCnf(unsigned vars, std::initializer_list<Clause> clauses) {
  Cnf cnf;
  cnf.numVars = vars;
  for (const auto& c : clauses) cnf.addClause(c);
  return cnf;
}

TEST(Sat, EmptyCnfIsSat) {
  EXPECT_EQ(solveCnf(makeCnf(3, {})), Result::Sat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  EXPECT_EQ(solveCnf(makeCnf(1, {Clause{}})), Result::Unsat);
}

TEST(Sat, UnitClauses) {
  EXPECT_EQ(solveCnf(makeCnf(2, {{1}, {-2}})), Result::Sat);
  EXPECT_EQ(solveCnf(makeCnf(1, {{1}, {-1}})), Result::Unsat);
}

TEST(Sat, UnitPropagationChain) {
  // 1 -> 2 -> 3 -> ... -> 8, with 1 forced and !8 forced: UNSAT.
  Cnf cnf;
  cnf.numVars = 8;
  cnf.addClause({1});
  for (int v = 1; v < 8; ++v) cnf.addClause({-v, v + 1});
  cnf.addClause({-8});
  EXPECT_EQ(solveCnf(cnf), Result::Unsat);
}

TEST(Sat, TautologousClauseIgnored) {
  EXPECT_EQ(solveCnf(makeCnf(2, {{1, -1}, {2}})), Result::Sat);
}

TEST(Sat, DuplicateLiteralsHandled) {
  EXPECT_EQ(solveCnf(makeCnf(2, {{1, 1, 2}, {-1, -1}, {-2, -2, -2}})),
            Result::Unsat);
}

TEST(Sat, ModelSatisfiesFormula) {
  Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    Cnf cnf;
    cnf.numVars = 10;
    for (int i = 0; i < 30; ++i) {
      Clause c;
      for (int j = 0; j < 3; ++j) {
        const int v = 1 + static_cast<int>(rng.below(10));
        c.push_back(rng.coin() ? v : -v);
      }
      cnf.addClause(c);
    }
    std::vector<bool> model;
    if (solveCnf(cnf, &model) != Result::Sat) continue;
    for (const auto& c : cnf.clauses) {
      bool sat = false;
      for (CnfLit l : c)
        sat |= (l > 0) == model[static_cast<unsigned>(std::abs(l))];
      EXPECT_TRUE(sat);
    }
  }
}

TEST(Sat, PigeonholePrinciple) {
  // PHP(n+1, n): n+1 pigeons in n holes — classic small UNSAT family.
  for (unsigned n = 2; n <= 5; ++n) {
    Cnf cnf;
    const unsigned pigeons = n + 1;
    auto var = [&](unsigned p, unsigned h) {
      return static_cast<CnfLit>(p * n + h + 1);
    };
    cnf.numVars = pigeons * n;
    for (unsigned p = 0; p < pigeons; ++p) {
      Clause c;
      for (unsigned h = 0; h < n; ++h) c.push_back(var(p, h));
      cnf.addClause(c);
    }
    for (unsigned h = 0; h < n; ++h)
      for (unsigned p1 = 0; p1 < pigeons; ++p1)
        for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
          cnf.addClause({-var(p1, h), -var(p2, h)});
    EXPECT_EQ(solveCnf(cnf), Result::Unsat) << "n=" << n;
  }
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // A hard-ish random instance with a 1-conflict budget.
  Rng rng(7);
  Cnf cnf;
  cnf.numVars = 60;
  for (int i = 0; i < 256; ++i) {
    Clause c;
    for (int j = 0; j < 3; ++j) {
      const int v = 1 + static_cast<int>(rng.below(60));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  Stats st;
  const Result r = solveCnf(cnf, nullptr, &st, 1);
  EXPECT_TRUE(r == Result::Unknown || st.conflicts <= 1);
}

TEST(Sat, StatsArepopulated) {
  Cnf cnf = makeCnf(3, {{1, 2}, {-1, 2}, {1, -2}, {-1, -2, 3}, {-3, 1}});
  Stats st;
  solveCnf(cnf, nullptr, &st);
  EXPECT_GT(st.propagations + st.decisions, 0u);
}

TEST(Sat, XorChainUnsat) {
  // x1 XOR x2 = 1, x2 XOR x3 = 1, x1 XOR x3 = 1 is unsatisfiable (parity).
  Cnf cnf;
  cnf.numVars = 3;
  auto addXor1 = [&](int a, int b) {
    cnf.addClause({a, b});
    cnf.addClause({-a, -b});
  };
  addXor1(1, 2);
  addXor1(2, 3);
  addXor1(1, 3);
  EXPECT_EQ(solveCnf(cnf), Result::Unsat);
}

// Exhaustive brute-force cross-check over random CNFs (property test).
bool bruteForceSat(const Cnf& cnf) {
  for (std::uint64_t m = 0; m < (1ull << cnf.numVars); ++m) {
    bool ok = true;
    for (const auto& c : cnf.clauses) {
      bool cs = false;
      for (CnfLit l : c) {
        const unsigned v = static_cast<unsigned>(std::abs(l)) - 1;
        if ((l > 0) == (((m >> v) & 1) != 0)) {
          cs = true;
          break;
        }
      }
      if (!cs) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

class SatBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(SatBruteForce, AgreesWithExhaustiveSearch) {
  Rng rng(GetParam() * 1299721 + 11);
  for (int iter = 0; iter < 60; ++iter) {
    Cnf cnf;
    cnf.numVars = 4 + rng.below(9);
    const unsigned m = 2 + rng.below(45);
    for (unsigned i = 0; i < m; ++i) {
      Clause c;
      const unsigned len = 1 + rng.below(4);
      for (unsigned j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.below(cnf.numVars));
        c.push_back(rng.coin() ? v : -v);
      }
      cnf.addClause(c);
    }
    const bool expect = bruteForceSat(cnf);
    EXPECT_EQ(solveCnf(cnf) == Result::Sat, expect)
        << "param=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatBruteForce, ::testing::Range(0, 25));

TEST(Sat, LargeRandomInstancesTerminate) {
  // Exercises restarts and clause-database reduction (n beyond the
  // first reduce threshold).
  Rng rng(1234);
  Cnf cnf;
  cnf.numVars = 120;
  for (int i = 0; i < 511; ++i) {
    Clause c;
    for (int j = 0; j < 3; ++j) {
      const int v = 1 + static_cast<int>(rng.below(120));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  Stats st;
  const Result r = solveCnf(cnf, nullptr, &st);
  EXPECT_NE(r, Result::Unknown);
}

TEST(Sat, IncrementalInterfaceRejectsAfterLevelZeroConflict) {
  Solver s;
  s.ensureVars(1);
  const prop::CnfLit pos[] = {1};
  const prop::CnfLit neg[] = {-1};
  EXPECT_TRUE(s.addClause(pos));
  EXPECT_FALSE(s.addClause(neg));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

// ---- assumption-based solving -----------------------------------------------

TEST(Sat, AssumptionUnsatDoesNotPoisonTheSolver) {
  // x1 -> x2 -> x3; assuming x1 and ¬x3 is contradictory, but the solver
  // must stay usable, report the failed assumptions, and then solve the
  // same formula Sat without them (MiniSat-style sessions).
  Solver s;
  s.ensureVars(3);
  for (const Clause& c :
       {Clause{-1, 2}, Clause{-2, 3}})
    ASSERT_TRUE(s.addClause(c));
  const prop::CnfLit bad[] = {1, -3};
  EXPECT_EQ(s.solve(bad, -1), Result::Unsat);
  EXPECT_TRUE(s.okay());
  const prop::Clause& failed = s.failedAssumptions();
  EXPECT_FALSE(failed.empty());
  // The failed-assumption clause is over NEGATED failed assumptions.
  for (const prop::CnfLit l : failed)
    EXPECT_TRUE(l == -1 || l == 3) << l;
  EXPECT_EQ(s.solve(), Result::Sat);
  const prop::CnfLit fine[] = {1};
  EXPECT_EQ(s.solve(fine, -1), Result::Sat);
  EXPECT_TRUE(s.modelValue(1));
  EXPECT_TRUE(s.modelValue(2));
  EXPECT_TRUE(s.modelValue(3));
}

TEST(Sat, AssumptionVerdictsMatchAddedUnits) {
  // Property: solve(cnf, assumptions) must agree with solving
  // cnf ∧ assumption-units from scratch.
  Rng rng(2718);
  for (int iter = 0; iter < 60; ++iter) {
    Cnf cnf;
    cnf.numVars = 6 + rng.below(5);
    const unsigned m = 12 + rng.below(24);
    for (unsigned i = 0; i < m; ++i) {
      Clause c;
      const unsigned len = 2 + rng.below(2);
      for (unsigned j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.below(cnf.numVars));
        c.push_back(rng.coin() ? v : -v);
      }
      cnf.addClause(c);
    }
    std::vector<prop::CnfLit> assume;
    for (int v = 1; v <= 3; ++v)
      if (rng.coin()) assume.push_back(rng.coin() ? v : -v);

    Solver s;
    s.ensureVars(cnf.numVars);
    bool loaded = true;
    for (const auto& c : cnf.clauses) loaded = loaded && s.addClause(c);
    const Result viaAssumptions =
        loaded ? s.solve(assume, -1) : Result::Unsat;

    Cnf withUnits = cnf;
    for (const prop::CnfLit a : assume) withUnits.addClause({a});
    EXPECT_EQ(viaAssumptions, solveCnf(withUnits)) << "iter " << iter;
  }
}

// ---- incremental sessions ---------------------------------------------------

std::vector<Cnf> randomCellSequence(Rng& rng, unsigned cells) {
  // Related formulas over a shared variable skeleton, the way grid cells
  // of one strategy share their low-numbered netlist variables.
  std::vector<Cnf> out;
  for (unsigned i = 0; i < cells; ++i) {
    Cnf cnf;
    cnf.numVars = 10 + 2 * i;
    const unsigned m = 25 + rng.below(20) + 4 * i;
    for (unsigned j = 0; j < m; ++j) {
      Clause c;
      const unsigned len = 1 + rng.below(4);
      for (unsigned k = 0; k < len; ++k) {
        const int v = 1 + static_cast<int>(rng.below(cnf.numVars));
        c.push_back(rng.coin() ? v : -v);
      }
      cnf.addClause(c);
    }
    out.push_back(std::move(cnf));
  }
  return out;
}

TEST(Sat, IncrementalSessionMatchesFreshSolverPerCell) {
  Rng rng(1111);
  const std::vector<Cnf> cells = randomCellSequence(rng, 8);
  IncrementalSession session;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::vector<bool> model;
    const Result inc = session.solveCell(cells[i], {}, &model);
    const Result fresh = solveCnf(cells[i]);
    EXPECT_EQ(inc, fresh) << "cell " << i;
    if (inc == Result::Sat) {
      ASSERT_GE(model.size(), cells[i].numVars + 1u);
      for (const auto& c : cells[i].clauses) {
        bool sat = false;
        for (CnfLit l : c)
          sat |= (l > 0) == model[static_cast<unsigned>(std::abs(l))];
        EXPECT_TRUE(sat) << "cell " << i;
      }
    }
  }
  EXPECT_EQ(session.calls(), cells.size());
}

TEST(Sat, IncrementalSessionIsDeterministic) {
  // The same cell sequence through two fresh sessions must produce
  // byte-identical verdicts, per-call conflict counts, and retained-
  // clause statistics (solver runs are deterministic; the session must
  // not leak nondeterminism through the selector encoding).
  std::vector<Result> verdicts[2];
  std::vector<std::uint64_t> conflicts[2];
  std::vector<std::size_t> retained[2];
  for (unsigned run = 0; run < 2; ++run) {
    Rng rng(3333);  // same sequence both runs
    const std::vector<Cnf> cells = randomCellSequence(rng, 8);
    IncrementalSession session;
    for (const Cnf& cell : cells) {
      Stats st;
      verdicts[run].push_back(session.solveCell(cell, {}, nullptr, &st));
      conflicts[run].push_back(st.conflicts);
      retained[run].push_back(session.retainedLearntCount());
    }
    if (run == 1) {
      EXPECT_EQ(verdicts[0], verdicts[1]);
      EXPECT_EQ(conflicts[0], conflicts[1]);
      EXPECT_EQ(retained[0], retained[1]);
    }
  }
}

TEST(Sat, IncrementalSessionUnsatCellDoesNotPoisonLaterCells) {
  IncrementalSession session;
  Cnf unsat;
  unsat.numVars = 2;
  unsat.addClause({1});
  unsat.addClause({-1, 2});
  unsat.addClause({-2});
  EXPECT_EQ(session.solveCell(unsat), Result::Unsat);

  Cnf sat;
  sat.numVars = 2;
  sat.addClause({1, 2});
  std::vector<bool> model;
  EXPECT_EQ(session.solveCell(sat, {}, &model), Result::Sat);
  EXPECT_TRUE(model[1] || model[2]);
}

TEST(Sat, IncrementalSessionFailedAssumptionsInCellSpace) {
  IncrementalSession session;
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({-1, 2});
  cnf.addClause({-2, 3});
  const prop::CnfLit assume[] = {1, -3};
  EXPECT_EQ(session.solveCell(cnf, assume), Result::Unsat);
  const prop::Clause& failed = session.failedAssumptions();
  EXPECT_FALSE(failed.empty());
  // Mapped back to CELL literals: the internal selector (even session
  // variable) must never leak out.
  for (const prop::CnfLit l : failed)
    EXPECT_TRUE(l == -1 || l == 3) << l;
  // Same cell, compatible assumptions: Sat, model in cell space.
  const prop::CnfLit fine[] = {1};
  std::vector<bool> model;
  EXPECT_EQ(session.solveCell(cnf, fine, &model), Result::Sat);
  EXPECT_TRUE(model[1] && model[2] && model[3]);
}

TEST(Sat, IncrementalSessionReusesLearntsAcrossCalls) {
  // Re-solving the SAME hard formula must get cheaper: retained clauses,
  // activities and phases carry over, so later calls conflict less.
  Rng rng(97);
  Cnf cnf;
  cnf.numVars = 40;
  for (int i = 0; i < 180; ++i) {
    Clause c;
    for (int j = 0; j < 3; ++j) {
      const int v = 1 + static_cast<int>(rng.below(40));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  IncrementalSession session;
  Stats first, second;
  const Result r1 = session.solveCell(cnf, {}, nullptr, &first);
  const Result r2 = session.solveCell(cnf, {}, nullptr, &second);
  EXPECT_EQ(r1, r2);
  EXPECT_LE(second.conflicts, first.conflicts);
  // The identical formula is recognized and served through the still-
  // active selector: nothing reloaded, learnt clauses still live.
  EXPECT_EQ(session.reusedCalls(), 1u);
}

TEST(Sat, IncrementalSessionGrowsVariableSpaceAcrossCells) {
  // Regression: a later cell with MORE variables than any earlier one must
  // grow the shared solver's variable space (ensureVars takes a total, not
  // a delta). Inprocessing is disabled so the high variables are guaranteed
  // to reach the solver — with it on, elimination used to mask the bug.
  InprocessOptions off;
  off.enabled = false;
  IncrementalSession session({}, off);
  for (const unsigned n : {4u, 9u, 23u, 57u}) {
    Cnf cnf;
    cnf.numVars = n;
    // Force the top variable into a clause on every cell.
    cnf.addClause({static_cast<CnfLit>(n), 1});
    cnf.addClause({-static_cast<CnfLit>(n), 2});
    cnf.addClause({-1, -2});
    std::vector<bool> model;
    ASSERT_EQ(session.solveCell(cnf, {}, &model), Result::Sat) << n;
    const bool top = model[n], a = model[1], b = model[2];
    EXPECT_TRUE((top || a) && (!top || b) && (!a || !b)) << n;
  }
  EXPECT_EQ(session.calls(), 4u);
}

}  // namespace
}  // namespace velev::sat
