// Tests for the CDCL SAT solver, including a brute-force cross-check over
// randomly generated small CNFs (the solver is the last link of the
// verification chain, so its correctness is load-bearing).
#include <gtest/gtest.h>

#include "prop/cnf.hpp"
#include "sat/solver.hpp"
#include "support/rng.hpp"

namespace velev::sat {
namespace {

using prop::Clause;
using prop::Cnf;
using prop::CnfLit;

Cnf makeCnf(unsigned vars, std::initializer_list<Clause> clauses) {
  Cnf cnf;
  cnf.numVars = vars;
  for (const auto& c : clauses) cnf.addClause(c);
  return cnf;
}

TEST(Sat, EmptyCnfIsSat) {
  EXPECT_EQ(solveCnf(makeCnf(3, {})), Result::Sat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  EXPECT_EQ(solveCnf(makeCnf(1, {Clause{}})), Result::Unsat);
}

TEST(Sat, UnitClauses) {
  EXPECT_EQ(solveCnf(makeCnf(2, {{1}, {-2}})), Result::Sat);
  EXPECT_EQ(solveCnf(makeCnf(1, {{1}, {-1}})), Result::Unsat);
}

TEST(Sat, UnitPropagationChain) {
  // 1 -> 2 -> 3 -> ... -> 8, with 1 forced and !8 forced: UNSAT.
  Cnf cnf;
  cnf.numVars = 8;
  cnf.addClause({1});
  for (int v = 1; v < 8; ++v) cnf.addClause({-v, v + 1});
  cnf.addClause({-8});
  EXPECT_EQ(solveCnf(cnf), Result::Unsat);
}

TEST(Sat, TautologousClauseIgnored) {
  EXPECT_EQ(solveCnf(makeCnf(2, {{1, -1}, {2}})), Result::Sat);
}

TEST(Sat, DuplicateLiteralsHandled) {
  EXPECT_EQ(solveCnf(makeCnf(2, {{1, 1, 2}, {-1, -1}, {-2, -2, -2}})),
            Result::Unsat);
}

TEST(Sat, ModelSatisfiesFormula) {
  Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    Cnf cnf;
    cnf.numVars = 10;
    for (int i = 0; i < 30; ++i) {
      Clause c;
      for (int j = 0; j < 3; ++j) {
        const int v = 1 + static_cast<int>(rng.below(10));
        c.push_back(rng.coin() ? v : -v);
      }
      cnf.addClause(c);
    }
    std::vector<bool> model;
    if (solveCnf(cnf, &model) != Result::Sat) continue;
    for (const auto& c : cnf.clauses) {
      bool sat = false;
      for (CnfLit l : c)
        sat |= (l > 0) == model[static_cast<unsigned>(std::abs(l))];
      EXPECT_TRUE(sat);
    }
  }
}

TEST(Sat, PigeonholePrinciple) {
  // PHP(n+1, n): n+1 pigeons in n holes — classic small UNSAT family.
  for (unsigned n = 2; n <= 5; ++n) {
    Cnf cnf;
    const unsigned pigeons = n + 1;
    auto var = [&](unsigned p, unsigned h) {
      return static_cast<CnfLit>(p * n + h + 1);
    };
    cnf.numVars = pigeons * n;
    for (unsigned p = 0; p < pigeons; ++p) {
      Clause c;
      for (unsigned h = 0; h < n; ++h) c.push_back(var(p, h));
      cnf.addClause(c);
    }
    for (unsigned h = 0; h < n; ++h)
      for (unsigned p1 = 0; p1 < pigeons; ++p1)
        for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
          cnf.addClause({-var(p1, h), -var(p2, h)});
    EXPECT_EQ(solveCnf(cnf), Result::Unsat) << "n=" << n;
  }
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // A hard-ish random instance with a 1-conflict budget.
  Rng rng(7);
  Cnf cnf;
  cnf.numVars = 60;
  for (int i = 0; i < 256; ++i) {
    Clause c;
    for (int j = 0; j < 3; ++j) {
      const int v = 1 + static_cast<int>(rng.below(60));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  Stats st;
  const Result r = solveCnf(cnf, nullptr, &st, 1);
  EXPECT_TRUE(r == Result::Unknown || st.conflicts <= 1);
}

TEST(Sat, StatsArepopulated) {
  Cnf cnf = makeCnf(3, {{1, 2}, {-1, 2}, {1, -2}, {-1, -2, 3}, {-3, 1}});
  Stats st;
  solveCnf(cnf, nullptr, &st);
  EXPECT_GT(st.propagations + st.decisions, 0u);
}

TEST(Sat, XorChainUnsat) {
  // x1 XOR x2 = 1, x2 XOR x3 = 1, x1 XOR x3 = 1 is unsatisfiable (parity).
  Cnf cnf;
  cnf.numVars = 3;
  auto addXor1 = [&](int a, int b) {
    cnf.addClause({a, b});
    cnf.addClause({-a, -b});
  };
  addXor1(1, 2);
  addXor1(2, 3);
  addXor1(1, 3);
  EXPECT_EQ(solveCnf(cnf), Result::Unsat);
}

// Exhaustive brute-force cross-check over random CNFs (property test).
bool bruteForceSat(const Cnf& cnf) {
  for (std::uint64_t m = 0; m < (1ull << cnf.numVars); ++m) {
    bool ok = true;
    for (const auto& c : cnf.clauses) {
      bool cs = false;
      for (CnfLit l : c) {
        const unsigned v = static_cast<unsigned>(std::abs(l)) - 1;
        if ((l > 0) == (((m >> v) & 1) != 0)) {
          cs = true;
          break;
        }
      }
      if (!cs) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

class SatBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(SatBruteForce, AgreesWithExhaustiveSearch) {
  Rng rng(GetParam() * 1299721 + 11);
  for (int iter = 0; iter < 60; ++iter) {
    Cnf cnf;
    cnf.numVars = 4 + rng.below(9);
    const unsigned m = 2 + rng.below(45);
    for (unsigned i = 0; i < m; ++i) {
      Clause c;
      const unsigned len = 1 + rng.below(4);
      for (unsigned j = 0; j < len; ++j) {
        const int v = 1 + static_cast<int>(rng.below(cnf.numVars));
        c.push_back(rng.coin() ? v : -v);
      }
      cnf.addClause(c);
    }
    const bool expect = bruteForceSat(cnf);
    EXPECT_EQ(solveCnf(cnf) == Result::Sat, expect)
        << "param=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatBruteForce, ::testing::Range(0, 25));

TEST(Sat, LargeRandomInstancesTerminate) {
  // Exercises restarts and clause-database reduction (n beyond the
  // first reduce threshold).
  Rng rng(1234);
  Cnf cnf;
  cnf.numVars = 120;
  for (int i = 0; i < 511; ++i) {
    Clause c;
    for (int j = 0; j < 3; ++j) {
      const int v = 1 + static_cast<int>(rng.below(120));
      c.push_back(rng.coin() ? v : -v);
    }
    cnf.addClause(c);
  }
  Stats st;
  const Result r = solveCnf(cnf, nullptr, &st);
  EXPECT_NE(r, Result::Unknown);
}

TEST(Sat, IncrementalInterfaceRejectsAfterLevelZeroConflict) {
  Solver s;
  s.ensureVars(1);
  const prop::CnfLit pos[] = {1};
  const prop::CnfLit neg[] = {-1};
  EXPECT_TRUE(s.addClause(pos));
  EXPECT_FALSE(s.addClause(neg));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

}  // namespace
}  // namespace velev::sat
