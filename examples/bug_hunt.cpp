// Bug hunt: inject a seeded defect into the out-of-order processor and show
// how the two verification strategies react —
//   * the rewriting rules pinpoint the non-conforming computation slice
//     (the paper's Sect. 7.2 behaviour), and
//   * on small configurations, the Positive-Equality-only flow produces a
//     SAT counterexample whose model is decoded back to the abstract
//     processor's control signals.
//
//   $ ./bug_hunt [kind] [slice] [robSize] [width]
//     kind: fwd | stale | retire | alu | completion   (default fwd)
#include <cstdio>
#include <cstring>
#include <string>

#include "velev.hpp"

using namespace velev;

namespace {

models::BugKind parseKind(const char* s) {
  if (!std::strcmp(s, "fwd")) return models::BugKind::ForwardingWrongOperand;
  if (!std::strcmp(s, "stale")) return models::BugKind::ForwardingStaleResult;
  if (!std::strcmp(s, "retire"))
    return models::BugKind::RetireIgnoresValidResult;
  if (!std::strcmp(s, "alu")) return models::BugKind::AluWrongOpcode;
  if (!std::strcmp(s, "completion"))
    return models::BugKind::CompletionSkipsWrite;
  std::fprintf(stderr, "unknown bug kind '%s'\n", s);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const models::BugKind kind = argc > 1 ? parseKind(argv[1])
                                        : models::BugKind::ForwardingWrongOperand;
  const unsigned slice = argc > 2 ? std::atoi(argv[2]) : 3u;
  const unsigned n = argc > 3 ? std::atoi(argv[3]) : 4u;
  const unsigned k = argc > 4 ? std::atoi(argv[4]) : 2u;
  const models::OoOConfig cfg{n, k};
  const models::BugSpec bug{kind, slice};

  std::printf("injected bug kind %d at slice %u (ROB size %u, width %u)\n\n",
              static_cast<int>(kind), slice, n, k);

  // Strategy 1: rewriting rules — structural detection.
  {
    core::VerifyRequest req;
    req.robSize = n;
    req.issueWidth = k;
    req.bug = bug;
    const core::VerifyReport rep = core::verify(req);
    if (rep.verdict() == core::Verdict::RewriteMismatch) {
      std::printf("rewriting rules: non-conforming slice %u\n  reason: %s\n",
                  rep.outcome.failedSlice, rep.outcome.reason.c_str());
    } else if (rep.verdict() == core::Verdict::Correct) {
      std::printf("rewriting rules: design verified CORRECT (the defect is "
                  "not observable)\n");
    }
  }

  // Strategy 2 (small configs): Positive Equality + SAT counterexample.
  if (n > 6) {
    std::printf("\n(PE-only counterexample search skipped: ROB too large)\n");
    return 0;
  }
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, cfg, bug);
  auto spec = models::buildSpec(cx, isa);
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  const evc::Translation tr = evc::translate(cx, d.correctness, {});
  std::vector<bool> model;
  const sat::Result r = sat::solveCnf(tr.cnf, &model, nullptr, 2000000);
  if (r != sat::Result::Sat) {
    std::printf("\nPE-only: no counterexample found (result %d) — the "
                "defect is not a safety violation\n",
                static_cast<int>(r));
    return 0;
  }
  std::printf("\nPE-only: counterexample found (CNF %u vars / %zu clauses). "
              "Decoded control signals:\n",
              tr.cnf.numVars, tr.cnf.numClauses());
  auto show = [&](const char* label, eufm::Expr var) {
    if (const auto v = tr.modelValue(cx, var, model))
      std::printf("  %-16s = %s\n", label, *v ? "true" : "false");
  };
  for (unsigned i = 0; i < n; ++i) {
    const std::string idx = std::to_string(i + 1);
    show(("Valid_" + idx).c_str(), impl->init.valid[i]);
    show(("ValidResult_" + idx).c_str(), impl->init.validResult[i]);
    show(("NDExecute_" + idx).c_str(), impl->init.ndExecute[i]);
  }
  for (unsigned j = 0; j < k; ++j)
    show(("NDFetch_" + std::to_string(j + 1)).c_str(), impl->init.ndFetch[j]);
  std::printf(
      "\n(a schedule under which the buggy design diverges from the ISA)\n");
  return 0;
}
