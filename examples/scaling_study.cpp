// Scaling study: sweep the ROB size at a fixed issue width and report the
// per-stage times of the rewriting-based verification flow, demonstrating
// the two properties that make the method scale (Sect. 7.2 of the paper):
//   * the CNF sent to the SAT solver is INDEPENDENT of the ROB size, and
//   * the growth is confined to symbolic simulation and the (mechanical,
//     slice-local) rewriting rules.
//
//   $ ./scaling_study [width] [maxSize]
#include <cstdio>
#include <cstdlib>

#include "velev.hpp"

using namespace velev;

int main(int argc, char** argv) {
  const unsigned k = argc > 1 ? std::atoi(argv[1]) : 4u;
  const unsigned maxSize = argc > 2 ? std::atoi(argv[2]) : 256u;

  std::printf("rewriting-based verification, issue/retire width %u\n\n", k);
  std::printf("%8s | %8s | %9s | %10s | %8s | %9s | %10s | %8s\n", "ROB",
              "sim [s]", "rewrite", "translate", "SAT [s]", "CNF vars",
              "CNF clause", "verdict");
  std::printf("---------+----------+-----------+------------+----------+-"
              "----------+------------+---------\n");
  std::size_t cnfVars = 0, cnfClauses = 0;
  bool sizeIndependent = true;
  for (unsigned n = k; n <= maxSize; n *= 2) {
    core::VerifyRequest req;
    req.robSize = n;
    req.issueWidth = k;
    const core::VerifyReport rep = core::verify(req);
    std::printf("%8u | %8.3f | %9.3f | %10.3f | %8.3f | %9zu | %10zu | %s\n",
                n, rep.simSeconds(), rep.rewriteSeconds(),
                rep.translateSeconds(), rep.satSeconds(),
                rep.evcStats.cnfVars, rep.evcStats.cnfClauses,
                rep.verdict() == core::Verdict::Correct ? "correct"
                                                        : "PROBLEM");
    if (cnfVars == 0) {
      cnfVars = rep.evcStats.cnfVars;
      cnfClauses = rep.evcStats.cnfClauses;
    } else if (cnfVars != rep.evcStats.cnfVars ||
               cnfClauses != rep.evcStats.cnfClauses) {
      sizeIndependent = false;
    }
  }
  std::printf("\nCNF independent of ROB size: %s\n",
              sizeIndependent ? "yes (as in the paper's Table 5)" : "NO");
  return 0;
}
