// Quickstart: build an abstract out-of-order processor with a 4-entry
// reorder buffer and issue/retire width 2, symbolically simulate the
// Burch–Dill commutative diagram, inspect the Register File update chains
// (the structure of Fig. 2 of the paper), and verify the design with both
// strategies.
//
//   $ ./quickstart
#include <cstdio>

#include "velev.hpp"

using namespace velev;

int main() {
  // 1. Declare the shared ISA symbols and build the two processors.
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  const models::OoOConfig cfg{4, 2};
  auto impl = models::buildOoO(cx, isa, cfg);
  auto spec = models::buildSpec(cx, isa);
  std::printf("built OOO model: %zu netlist signals, %zu latches\n",
              impl->netlist.numSignals(), impl->netlist.latches().size());

  // 2. Symbolically simulate both sides of the commutative diagram.
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);
  std::printf("correctness formula: %zu DAG nodes\n\n",
              eufm::dagSize(cx, d.correctness));

  // 3. Show the update-chain structure (paper Fig. 2.a): the conditional
  //    writes each side of the diagram performs on the Register File.
  const rewrite::UpdateChain ic = rewrite::extractChain(cx, d.implRegFile);
  std::printf("implementation side: %zu updates over %s\n",
              ic.updates.size(), eufm::toString(cx, ic.base).c_str());
  for (std::size_t i = 0; i < ic.updates.size(); ++i) {
    const auto& u = ic.updates[i];
    std::printf("  [%2zu] addr=%-12s ctx=%s\n", i + 1,
                eufm::toString(cx, u.addr).c_str(),
                eufm::toString(cx, u.ctx).substr(0, 70).c_str());
  }
  const rewrite::UpdateChain sc = rewrite::extractChain(cx, d.specRegFile[0]);
  std::printf("specification side (before new instructions): %zu updates\n\n",
              sc.updates.size());

  // 4. Apply the rewriting rules: the updates of the 4 instructions
  //    initially in the ROB are proven equal on both sides and removed.
  const rewrite::RewriteResult rw = rewrite::rewriteRobUpdates(
      cx, isa, impl->init, impl->config, d.implRegFile, d.specRegFile);
  if (!rw.ok) {
    std::printf("unexpected rewrite failure at slice %u: %s\n",
                rw.failedSlice, rw.message.c_str());
    return 1;
  }
  std::printf("rewriting rules removed %u updates; remaining impl-side "
              "updates: %zu (the newly fetched instructions)\n\n",
              rw.updatesRemoved,
              rewrite::extractChainTo(cx, rw.implRegFile, rw.equalStateVar)
                  .updates.size());

  // 5. End-to-end verification, both strategies.
  for (const auto strategy : {core::Strategy::RewritingPlusPositiveEquality,
                              core::Strategy::PositiveEqualityOnly}) {
    core::VerifyRequest req;
    req.robSize = cfg.robSize;
    req.issueWidth = cfg.issueWidth;
    req.strategy = strategy;
    const core::VerifyReport rep = core::verify(req);
    std::printf(
        "%-32s verdict=%-10s e_ij=%-4u CNF: %zu vars / %zu clauses, "
        "total %.3f s\n",
        strategy == core::Strategy::PositiveEqualityOnly
            ? "Positive Equality only:"
            : "rewriting + Positive Equality:",
        rep.verdict() == core::Verdict::Correct ? "CORRECT" : "problem",
        rep.evcStats.eijVars, rep.evcStats.cnfVars, rep.evcStats.cnfClauses,
        rep.totalSeconds());
  }
  return 0;
}
