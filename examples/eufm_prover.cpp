// Using the library as a general EUFM validity checker, independent of the
// processor models: build formulas in the logic of Equality with
// Uninterpreted Functions and Memories through the Context API, translate
// with Positive Equality, and decide validity with the CDCL solver.
//
// Demonstrates the exact lemmas the rewriting rules rely on (Sect. 6):
// swapping conditional memory updates with disjoint contexts, moving reads
// across disjoint updates, and functional consistency.
//
//   $ ./eufm_prover
#include <cstdio>

#include "eufm/expr.hpp"
#include "evc/translate.hpp"
#include "sat/solver.hpp"

using namespace velev;
using eufm::Expr;

namespace {

void check(eufm::Context& cx, const char* name, Expr f, bool expectValid) {
  const evc::Translation tr = evc::translate(cx, f, {});
  const bool valid = sat::solveCnf(tr.cnf) == sat::Result::Unsat;
  std::printf("  %-58s %s%s\n", name, valid ? "VALID" : "not valid",
              valid == expectValid ? "" : "  << UNEXPECTED");
}

}  // namespace

int main() {
  eufm::Context cx;
  std::printf("general EUFM validity checking with Positive Equality:\n\n");

  // Equality and functional consistency.
  {
    const Expr x = cx.termVar("x"), y = cx.termVar("y"), z = cx.termVar("z");
    const eufm::FuncId f = cx.declareFunc("f", 1);
    check(cx, "x=y & y=z -> x=z (transitivity)",
          cx.mkImplies(cx.mkAnd(cx.mkEq(x, y), cx.mkEq(y, z)), cx.mkEq(x, z)),
          true);
    check(cx, "x=y -> f(x)=f(y) (congruence)",
          cx.mkImplies(cx.mkEq(x, y),
                       cx.mkEq(cx.apply(f, {x}), cx.apply(f, {y}))),
          true);
    check(cx, "f(x)=f(y) -> x=y (NOT valid: f may collapse)",
          cx.mkImplies(cx.mkEq(cx.apply(f, {x}), cx.apply(f, {y})),
                       cx.mkEq(x, y)),
          false);
  }

  // The memory axioms.
  {
    const Expr m = cx.termVar("M");
    const Expr a = cx.termVar("a"), b = cx.termVar("b");
    const Expr d = cx.termVar("d");
    check(cx, "read(write(m,a,d),a) = d (forwarding)",
          cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), a), d), true);
    check(cx, "a!=b -> read(write(m,a,d),b) = read(m,b)",
          cx.mkImplies(cx.mkNot(cx.mkEq(a, b)),
                       cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), b),
                               cx.mkRead(m, b))),
          true);
    check(cx, "read(write(m,a,d),b) = read(m,b) (unguarded: NOT valid)",
          cx.mkEq(cx.mkRead(cx.mkWrite(m, a, d), b), cx.mkRead(m, b)),
          false);
  }

  // The update-swap lemma behind the rewriting rules (Sect. 6): two
  // conditional updates whose contexts cannot hold simultaneously commute.
  {
    const Expr m = cx.termVar("M");
    const Expr c = cx.boolVar("c");
    const Expr a1 = cx.termVar("a1"), d1 = cx.termVar("d1");
    const Expr a2 = cx.termVar("a2"), d2 = cx.termVar("d2");
    auto upd = [&](Expr mem, Expr ctx, Expr addr, Expr data) {
      return cx.mkIteT(ctx, cx.mkWrite(mem, addr, data), mem);
    };
    const Expr lhs = upd(upd(m, c, a1, d1), cx.mkNot(c), a2, d2);
    const Expr rhs = upd(upd(m, cx.mkNot(c), a2, d2), c, a1, d1);
    check(cx, "disjoint-context updates commute (swap lemma)",
          cx.mkEq(lhs, rhs), true);

    // Without disjointness the swap is NOT valid (the later write wins).
    const Expr e = cx.boolVar("e");
    const Expr bad1 = upd(upd(m, c, a1, d1), e, a1, d2);
    const Expr bad2 = upd(upd(m, e, a1, d2), c, a1, d1);
    check(cx, "overlapping-context updates do NOT commute",
          cx.mkEq(bad1, bad2), false);
  }

  // The read-movement lemma (rule 2.2): a read used only under a context
  // disjoint from an intervening update's context can be performed from the
  // state before that update.
  {
    const Expr m = cx.termVar("M");
    const Expr c = cx.boolVar("c");
    const Expr w = cx.termVar("w"), dw = cx.termVar("dw");
    const Expr r = cx.termVar("r");
    const Expr after = cx.mkIteT(c, cx.mkWrite(m, w, dw), m);
    // Under !c the states agree, so reads agree.
    check(cx, "!c -> read(upd_c(m), r) = read(m, r) (read movement)",
          cx.mkImplies(cx.mkNot(c),
                       cx.mkEq(cx.mkRead(after, r), cx.mkRead(m, r))),
          true);
  }

  std::printf("\nall lemmas behaved as expected.\n");
  return 0;
}
