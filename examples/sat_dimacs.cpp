// Standalone DIMACS front end for the CDCL solver — the Chaff-analogue
// substrate is usable on its own:
//
//   $ ./sat_dimacs problem.cnf [--proof out.drat]     # or on stdin
//   s SATISFIABLE / s UNSATISFIABLE and a "v" model line, SAT-competition
//   style. With --proof, an UNSAT answer is self-checked with the built-in
//   RUP verifier and the DRAT proof is written out.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "prop/cnf.hpp"
#include "sat/drat.hpp"
#include "sat/solver.hpp"

using namespace velev;

int main(int argc, char** argv) {
  const char* inputPath = nullptr;
  const char* proofPath = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--proof") && i + 1 < argc)
      proofPath = argv[++i];
    else
      inputPath = argv[i];
  }

  prop::Cnf cnf;
  try {
    if (inputPath) {
      std::ifstream in(inputPath);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", inputPath);
        return 2;
      }
      cnf = prop::parseDimacs(in);
    } else {
      cnf = prop::parseDimacs(std::cin);
    }
  } catch (const InternalError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }

  std::vector<bool> model;
  sat::Stats stats;
  sat::Proof proof;
  const sat::Result r = sat::solveCnf(cnf, &model, &stats, -1,
                                      proofPath ? &proof : nullptr);
  std::printf("c %u variables, %zu clauses\n", cnf.numVars,
              cnf.numClauses());
  std::printf("c %llu conflicts, %llu decisions, %llu propagations, "
              "%llu restarts\n",
              static_cast<unsigned long long>(stats.conflicts),
              static_cast<unsigned long long>(stats.decisions),
              static_cast<unsigned long long>(stats.propagations),
              static_cast<unsigned long long>(stats.restarts));
  switch (r) {
    case sat::Result::Sat: {
      std::printf("s SATISFIABLE\nv ");
      for (std::uint32_t v = 1; v <= cnf.numVars; ++v)
        std::printf("%s%u ", model[v] ? "" : "-", v);
      std::printf("0\n");
      return 10;
    }
    case sat::Result::Unsat: {
      if (proofPath) {
        const bool certified = sat::checkRup(cnf, proof);
        std::printf("c proof: %zu steps, self-check %s\n", proof.size(),
                    certified ? "PASSED" : "FAILED");
        std::ofstream out(proofPath);
        sat::writeDrat(proof, out);
        if (!certified) return 2;
      }
      std::printf("s UNSATISFIABLE\n");
      return 20;
    }
    default:
      std::printf("s UNKNOWN\n");
      return 0;
  }
}
