// Inverse of evc/encode for one SAT model: read the Boolean-variable and
// e_ij assignments out of the CNF model, close the e_ij = true pairs under
// union-find into equivalence classes, give every class a distinct scalar
// (and every untouched term variable its own — the maximally diverse
// completion), and re-evaluate the formulas the encoding came from. A
// correct translation stack guarantees two facts this file checks:
// the e_ij assignment is transitive (the chordal transitivity constraints
// are part of the CNF), and the decoded assignment falsifies the UF-free
// formula (Translation::ufRoot) the encoder consumed.
#include <algorithm>
#include <map>
#include <sstream>

#include "eufm/eval.hpp"
#include "eufm/traverse.hpp"
#include "fuzz/fuzz.hpp"
#include "support/check.hpp"

namespace velev::fuzz {

using eufm::Expr;

namespace {

/// Plain union-find over the term variables of the e_ij graph.
class UnionFind {
 public:
  int add(Expr v) {
    auto [it, fresh] = id_.emplace(v, static_cast<int>(parent_.size()));
    if (fresh) parent_.push_back(it->second);
    return it->second;
  }
  int find(int x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(int a, int b) { parent_[find(a)] = find(b); }
  int idOf(Expr v) const { return id_.at(v); }

 private:
  std::map<Expr, int> id_;  // ordered: deterministic class enumeration
  std::vector<int> parent_;
};

bool litValue(const evc::Translation& tr, prop::PLit lit,
              const std::vector<bool>& model) {
  const std::uint32_t var = cnfVarOf(tr, lit);
  VELEV_CHECK(var < model.size());
  return model[var] != prop::isNegated(lit);
}

/// The model-builder's control signals (Valid_i, ValidResult_i,
/// NDExecute_i, NDFetch_i) as opposed to the fresh `f$N` variables UF
/// elimination introduces.
bool isOriginalName(const std::string& name) {
  return name.find('$') == std::string::npos;
}

}  // namespace

std::uint32_t cnfVarOf(const evc::Translation& tr, prop::PLit lit) {
  return tr.pctx->varIndex(prop::nodeOf(lit)) + 1;
}

Counterexample decodeModel(eufm::Context& cx, const evc::Translation& tr,
                           const std::vector<bool>& model,
                           const core::Diagram* diagram,
                           const models::OoOProcessor* impl) {
  Counterexample cex;

  // 1. Boolean variables straight out of the model.
  std::map<Expr, bool> boolVal;  // ordered by Expr for the evaluation pass
  for (const auto& [var, lit] : tr.boolVarLit)
    boolVal[var] = litValue(tr, lit, model);
  for (const auto& [var, value] : boolVal)
    cex.bools.emplace_back(cx.varName(var), value);
  std::sort(cex.bools.begin(), cex.bools.end());

  // 2. e_ij assignments and their union-find closure.
  UnionFind uf;
  std::vector<std::pair<std::pair<Expr, Expr>, bool>> eijVal;
  for (const auto& [pair, lit] : tr.eijLit) {
    const bool equal = litValue(tr, lit, model);
    uf.add(pair.first);
    uf.add(pair.second);
    if (equal) uf.unite(uf.idOf(pair.first), uf.idOf(pair.second));
    eijVal.emplace_back(pair, equal);
    Counterexample::Eij e;
    e.a = cx.varName(pair.first);
    e.b = cx.varName(pair.second);
    if (e.b < e.a) std::swap(e.a, e.b);
    e.equal = equal;
    cex.eijs.push_back(std::move(e));
  }
  std::sort(cex.eijs.begin(), cex.eijs.end(), [](const auto& x, const auto& y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });

  // Transitivity check: an e_ij = false pair whose endpoints the true
  // pairs merged would mean the transitivity constraints let an
  // inconsistent model through.
  for (const auto& [pair, equal] : eijVal)
    if (!equal && uf.find(uf.idOf(pair.first)) == uf.find(uf.idOf(pair.second)))
      cex.transitive = false;

  // 3. Scalars: one distinct value per equivalence class, then one more
  // distinct value for every term variable outside the e_ij graph — the
  // maximally diverse completion the p-term encoding assumed.
  std::map<int, std::uint64_t> classValue;
  std::map<Expr, std::uint64_t> termVal;
  std::uint64_t nextValue = 0;
  for (const auto& [pair, equal] : eijVal) {
    for (Expr v : {pair.first, pair.second}) {
      if (termVal.count(v)) continue;
      const int root = uf.find(uf.idOf(v));
      auto [it, fresh] = classValue.emplace(root, nextValue);
      if (fresh) ++nextValue;
      termVal[v] = it->second;
    }
  }
  if (tr.ufRoot != eufm::kNoExpr)
    for (Expr v : eufm::collectVars(cx, tr.ufRoot))
      if (cx.kind(v) == eufm::Kind::TermVar && !termVal.count(v))
        termVal[v] = nextValue++;
  for (const auto& [var, value] : termVal)
    cex.terms.emplace_back(cx.varName(var), value);
  std::sort(cex.terms.begin(), cex.terms.end());

  // 4. Re-evaluate the encoder's input formula under the decoded
  // assignment: a Sat model of CNF(¬ufRoot) must falsify ufRoot.
  if (tr.ufRoot != eufm::kNoExpr && cex.transitive) {
    eufm::Interp in(/*seed=*/0, /*domainSize=*/nextValue + 1);
    for (const auto& [var, value] : boolVal) in.setBool(var, value);
    for (const auto& [var, value] : termVal) in.setTerm(var, value);
    eufm::Evaluator ev(cx, in);
    cex.falsifiesUfRoot = !ev.evalFormula(tr.ufRoot);
  }

  // 5. Replay the decoded control schedule against the *original*
  // correctness formula: with the Boolean controls pinned, search random
  // term interpretations for a concrete refutation and name the failing
  // disjunct(s) of the Burch-Dill criterion.
  if (diagram == nullptr) return cex;
  for (std::uint64_t seed = 1; seed <= 96 && !cex.replayRefuted; ++seed) {
    for (const std::uint64_t domain : {2ull, 3ull}) {
      eufm::Interp in(seed, domain);
      for (const auto& [var, value] : boolVal) in.setBool(var, value);
      eufm::Evaluator ev(cx, in);
      if (ev.evalFormula(diagram->correctness)) continue;
      cex.replayRefuted = true;
      cex.replaySeed = seed;
      cex.replayDomain = domain;

      std::ostringstream os;
      os << "decoded control schedule:";
      auto printControl = [&](Expr var) {
        if (auto v = in.boolOverride(var); v.has_value())
          os << " " << cx.varName(var) << "=" << (*v ? 1 : 0);
      };
      if (impl != nullptr) {
        for (Expr v : impl->init.valid) printControl(v);
        for (Expr v : impl->init.validResult) printControl(v);
        for (Expr v : impl->init.ndExecute) printControl(v);
        for (Expr v : impl->init.ndFetch) printControl(v);
      } else {
        for (const auto& [var, value] : boolVal)
          if (isOriginalName(cx.varName(var))) printControl(var);
      }
      os << "\nconcrete refutation: seed=" << seed << " domain=" << domain
         << "\nsync disjuncts (need PC and RF for some m):";
      for (unsigned m = 0; m < diagram->specPc.size(); ++m) {
        const bool pcOk =
            ev.evalFormula(cx.mkEq(diagram->implPc, diagram->specPc[m]));
        const bool rfOk = ev.evalFormula(
            cx.mkEq(diagram->implRegFile, diagram->specRegFile[m]));
        os << " m=" << m << ":PC" << (pcOk ? "=" : "!") << ",RF"
           << (rfOk ? "=" : "!");
      }
      cex.prettySlice = os.str();
      break;
    }
  }
  return cex;
}

}  // namespace velev::fuzz
