// Differential fuzzing of the verification pipeline.
//
// The repository has four independent ways to judge one (OoOConfig,
// BugSpec) case:
//
//   1. the rewriting flow (Strategy::RewritingPlusPositiveEquality) — the
//      paper's contribution; structurally pinpoints a non-conforming slice;
//   2. the PE-only flow (Strategy::PositiveEqualityOnly) — exact for the
//      safety criterion but exponential in the ROB size, so it is budget-
//      capped and only attempted on small configurations;
//   3. direct concrete evaluation of the EUFM correctness formula under
//      random finite interpretations (eufm/eval) — the semantic ground
//      truth, sound for refutation only;
//   4. the BDD decision engine (bdd/check) on the same PE translation —
//      exact like oracle 2 but with a completely different propositional
//      back end (shared ROBDDs instead of Tseitin CNF + CDCL).
//
// The fuzzer generates seeded random cases, runs all four oracles, and
// flags any *sound* disagreement (see findDisagreement() for the exact
// agreement relation — RewriteMismatch is a conservative structural
// verdict and never counts as a claim of semantic invalidity). A PE-only
// SAT model is decoded back through the e_ij/control-variable encoding
// into a term-level counterexample and cross-checked against the EUFM
// formula it refutes, which keeps the whole translation stack
// (classification, UF elimination, e_ij encoding, transitivity, Tseitin)
// honest. Disagreeing cases are shrunk by delta-debugging into minimal
// reproducers and written as replayable JSON corpus entries.
//
// Everything is deterministic from FuzzOptions::seed: budgets are logical
// (SAT conflicts, arena bytes), never wall-clock, so the same seed
// reproduces byte-identical corpus output on any machine.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/diagram.hpp"
#include "core/verifier.hpp"
#include "evc/translate.hpp"
#include "models/ooo.hpp"
#include "support/budget.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace velev::fuzz {

// ---- case generation --------------------------------------------------------

struct GenOptions {
  unsigned minRobSize = 1;
  unsigned maxRobSize = 6;
  unsigned maxIssueWidth = 4;  // clamped to the drawn ROB size
  /// Probability (percent) that a case carries no injected bug — the
  /// agreement between "correct" verdicts is what guards soundness.
  unsigned noBugPercent = 35;
};

/// One randomized verification case. `seed` drives the evaluation oracle
/// (and nothing else), so a corpus entry replays without the generator.
struct FuzzCase {
  std::uint64_t id = 0;    // ordinal within the fuzz run
  std::uint64_t seed = 0;  // per-case seed for the evaluation oracle
  models::OoOConfig cfg;
  models::BugSpec bug;
};

/// The bug kinds the generator can emit (everything but BugKind::None).
std::span<const models::BugKind> generatableBugKinds();

/// Lowest 1-based slice at which this bug kind is worth injecting. The
/// forwarding bugs are structurally harmless at slice 1 (there is no
/// preceding entry to forward from — rewrite_test pins this down), so the
/// generator starts them at slice 2.
unsigned bugIndexMin(models::BugKind k);

/// Draw one case. Always yields a config/bug pair buildOoO() accepts.
FuzzCase generateCase(Rng& rng, std::uint64_t id, const GenOptions& opts = {});

// ---- counterexample decoding (evc/encode inverse) ---------------------------

/// A SAT model of the translated (negated) correctness formula, decoded
/// back to the EUFM level: control-variable truth values, e_ij equalities,
/// and a scalar assignment for the g-term variables derived from the
/// union-find closure of the e_ij = true pairs.
struct Counterexample {
  /// EUFM Boolean variables by name (original control signals plus the
  /// fresh Boolean variables UF elimination introduced), sorted by name.
  std::vector<std::pair<std::string, bool>> bools;
  struct Eij {
    std::string a, b;   // term-variable names, a < b
    bool equal = false;  // the model's e_ij value
  };
  std::vector<Eij> eijs;
  /// Term variables named by the e_ij graph -> scalar value, one distinct
  /// value per union-find class (sorted by name).
  std::vector<std::pair<std::string, std::uint64_t>> terms;

  /// False iff the e_ij assignment violates transitivity — that would mean
  /// the transitivity constraints of the encoding are broken.
  bool transitive = true;
  /// The decoded assignment falsifies the UF-free formula the encoder
  /// consumed (Translation::ufRoot). Must hold for every Sat model; a
  /// violation is a translation bug and counts as a disagreement.
  bool falsifiesUfRoot = false;

  /// Concrete refutation of the *original* correctness formula found by
  /// replaying the decoded control signals over random term seeds: which
  /// interpretation, and which disjunct m of the Burch-Dill criterion
  /// fails (PC out of sync, RF out of sync, or both). replaySeed is
  /// meaningful only when replayRefuted.
  bool replayRefuted = false;
  std::uint64_t replaySeed = 0;
  std::uint64_t replayDomain = 0;
  /// Human-readable failing-slice summary (control schedule + the failing
  /// disjuncts); empty when the replay found no concrete refutation.
  std::string prettySlice;
};

/// CNF variable (1-based DIMACS index) of a propositional input literal of
/// the translation — the model index Counterexample decoding reads.
std::uint32_t cnfVarOf(const evc::Translation& tr, prop::PLit lit);

/// Decode `model` (indexed by CNF variable, entry 0 unused — the shape
/// sat::solveCnf returns). When `diagram`/`impl` are given, the decoded
/// control signals are replayed against the original correctness formula
/// to name the failing disjunct (fills replay*/prettySlice).
Counterexample decodeModel(eufm::Context& cx, const evc::Translation& tr,
                           const std::vector<bool>& model,
                           const core::Diagram* diagram = nullptr,
                           const models::OoOProcessor* impl = nullptr);

// ---- the four oracles -------------------------------------------------------

struct OracleOptions {
  /// Budget for the rewriting flow (unlimited by default — it is
  /// polynomial and fast at fuzzable sizes).
  ResourceBudget rewriteBudget;
  /// Budget for the PE-only flow. Keep the wall-clock field at 0 and govern
  /// by SAT conflicts + arena bytes: logical budgets are deterministic, so
  /// verdicts (and therefore corpus bytes) reproduce across machines.
  ResourceBudget peBudget = peDefaultBudget();
  /// Budget for the BDD oracle. Logical only (node-table bytes, no wall
  /// clock) for the same determinism reason; a trip records MemOut and the
  /// case drops out of the BDD differential.
  ResourceBudget bddBudget = bddDefaultBudget();
  /// Interpretations tried by the evaluation oracle (half of them pin every
  /// NDExecute_i to true, which maximizes bug observability).
  unsigned evalSeeds = 48;
  bool runPe = true;      // master switch for the PE oracle
  bool runBdd = true;     // master switch for the BDD oracle
  bool decode = true;     // decode PE Sat models / BDD satisfying paths
  /// Inprocessing front end of the PE oracle's SAT stage. Enabled by
  /// default: every Sat model is reconstructed onto the original CNF
  /// variables before decoding, so the decode sanity checks (transitivity,
  /// falsifies-UF-root) double as a reconstruction round-trip oracle. The
  /// deterministic tick caps keep budget-capped verdicts (and therefore
  /// corpus bytes) machine-independent.
  sat::InprocessOptions inprocess;
  static ResourceBudget peDefaultBudget() {
    ResourceBudget b;
    b.satConflicts = 120000;          // > the 4x2 UNSAT proof (~32k conflicts)
    b.memoryBytes = 512u << 20;       // logical arena bytes, deterministic
    return b;
  }
  static ResourceBudget bddDefaultBudget() {
    ResourceBudget b;
    b.memoryBytes = 256u << 20;       // BDD node table + cache, deterministic
    return b;
  }
};

/// Is the PE-only flow worth attempting on this configuration? The CNF
/// blows up with N and k (Table 2); outside this envelope the PE oracle is
/// recorded as skipped and excluded from the differential.
bool peFeasible(const models::OoOConfig& cfg);

/// Is the BDD oracle worth attempting? Strictly inside peFeasible(): on
/// falsifiable formulas the BDD engine pays seconds of sifting per case
/// where the SAT side takes milliseconds, so the fuzzer cross-checks only
/// the cells where the BDD decides quickly, and records everything larger
/// as Skipped.
bool bddFeasible(const models::OoOConfig& cfg);

/// What every oracle said about one case.
struct OracleOutcome {
  core::Verdict rewriteVerdict = core::Verdict::Inconclusive;
  unsigned rewriteFailedSlice = 0;   // RewriteMismatch only
  std::string rewriteReason;

  core::Verdict peVerdict = core::Verdict::Skipped;
  std::uint64_t peConflicts = 0;

  /// The BDD oracle shares the PE translation (bddFeasible() envelope);
  /// Skipped when the case is outside it or runBdd is off.
  core::Verdict bddVerdict = core::Verdict::Skipped;
  std::uint64_t bddPeakNodes = 0;

  bool evalRefuted = false;          // some interpretation falsified the case
  std::uint64_t evalRefutingSeed = 0;
  unsigned evalSeedsRun = 0;

  std::optional<Counterexample> cex;     // decoded PE Sat model
  std::optional<Counterexample> bddCex;  // decoded BDD satisfying path
  double seconds = 0;                    // wall time (never serialized)
};

/// Run all four oracles on one case (fresh Context per call — the
/// one-Context-per-cell rule applies to fuzz cases too).
OracleOutcome runOracles(const FuzzCase& c, const OracleOptions& opts = {});

/// The agreement relation. Returns a description of the first *sound*
/// disagreement, or nullopt when the outcome is consistent:
///   * a flow claiming Correct while the evaluation oracle refutes;
///   * the rewriting flow claiming Correct while PE finds a counterexample
///     (PE Sat is exact, not conservative);
///   * the PE flow claiming Correct while the rewriting flow's SAT stage
///     found a counterexample;
///   * the BDD and PE verdicts disagreeing while both are conclusive (both
///     are exact deciders of the same formula);
///   * the BDD oracle claiming Correct while the rewriting flow refutes
///     (mirror of the PE clause);
///   * a decoded PE model or BDD path that violates transitivity or fails
///     to falsify the formula it came from (a broken encoding).
/// RewriteMismatch is conservative/structural and agrees with anything;
/// Inconclusive/Timeout/MemOut/Skipped verdicts are excluded.
std::optional<std::string> findDisagreement(const OracleOutcome& o);

// ---- shrinking --------------------------------------------------------------

/// Does a candidate case still exhibit the behaviour being minimized?
using ReproPredicate = std::function<bool(const FuzzCase&)>;

struct ShrinkResult {
  FuzzCase minimal;
  unsigned attempts = 0;    // predicate evaluations
  unsigned reductions = 0;  // accepted shrink steps
};

/// Greedy deterministic delta-debugging over (robSize, issueWidth,
/// bug.index): repeatedly tries halving/decrementing each dimension
/// (keeping the case well-formed) and keeps any candidate for which
/// `stillFails` holds, until a fixpoint or `maxAttempts`.
ShrinkResult shrinkCase(const FuzzCase& failing,
                        const ReproPredicate& stillFails,
                        unsigned maxAttempts = 64);

// ---- corpus I/O -------------------------------------------------------------

constexpr int kCorpusSchemaVersion = 1;

/// One replayable corpus entry: the case plus the verdicts recorded when
/// it was created — replay re-runs the oracles and diffs against these.
struct CorpusEntry {
  FuzzCase c;
  std::string rewriteVerdict;     // core::verdictName()
  unsigned failedSlice = 0;       // RewriteMismatch only
  std::string peVerdict;          // core::verdictName()
  /// core::verdictName(), or "" on entries written before the BDD oracle
  /// existed — the field is serialized only when non-empty and replay only
  /// diffs it when both sides are conclusive.
  std::string bddVerdict;
  bool evalRefuted = false;
  bool decoded = false;           // a consistent counterexample was decoded
  std::string note;               // free-form (disagreement text on repros)
};

/// Fill a CorpusEntry's expectation fields from an oracle outcome.
CorpusEntry makeCorpusEntry(const FuzzCase& c, const OracleOutcome& o);

/// Deterministic JSON ({"schema_version":1,"entries":[...]}): identical
/// entries yield identical bytes.
void writeCorpus(std::ostream& os, std::span<const CorpusEntry> entries);

/// Parse one entry object; nullopt + *err on malformed input.
std::optional<CorpusEntry> parseCorpusEntry(const JsonValue& v,
                                            std::string* err = nullptr);

/// Load a corpus document (or a bare entry object) from a file.
std::vector<CorpusEntry> loadCorpusFile(const std::string& path,
                                        std::string* err = nullptr);

/// Re-run the oracles on a corpus entry and diff against its recorded
/// expectations. Returns the first mismatch, nullopt when it reproduces.
/// Budget-capped verdicts (inconclusive/timeout/memout/skipped) on either
/// side of the PE comparison are not diffed — they are machine-dependent
/// only when the caller overrides the deterministic default budgets.
std::optional<std::string> replayEntry(const CorpusEntry& e,
                                       const OracleOptions& opts = {});

// ---- the harness ------------------------------------------------------------

struct FuzzOptions {
  std::uint64_t seed = 1;
  unsigned cases = 100;
  GenOptions gen;
  OracleOptions oracle;
  bool shrink = true;        // delta-debug disagreeing cases
  /// Directory for corpus.json + repro_case_<id>.json ("" = don't write).
  std::string outDir;
  /// Soft wall-clock stop for the whole run, checked *between* cases so it
  /// never changes a verdict (0 = unlimited). Cases not run are reported.
  double totalWallSeconds = 0;
  std::ostream* log = nullptr;  // per-case progress lines (null = silent)
};

struct CaseRecord {
  FuzzCase c;
  OracleOutcome o;
  std::optional<std::string> disagreement;
  std::optional<ShrinkResult> shrunk;  // only for disagreeing cases
};

struct FuzzReport {
  std::vector<CaseRecord> records;
  unsigned casesRun = 0;
  unsigned casesSkipped = 0;     // totalWallSeconds stopped the run early
  unsigned disagreements = 0;
  unsigned bugsInjected = 0;
  unsigned bugsDetected = 0;     // rewrite mismatch or PE counterexample
  unsigned benignBugs = 0;       // injected but semantically invisible
  unsigned peRuns = 0;           // cases where the PE oracle concluded
  unsigned bddRuns = 0;          // cases where the BDD oracle concluded
  unsigned decoded = 0;          // consistent decoded counterexamples
  double seconds = 0;

  /// 0 = all oracles agreed, 1 = at least one disagreement.
  int exitCode() const { return disagreements == 0 ? 0 : 1; }
};

/// Run the whole fuzz campaign: generate, cross-check, decode, shrink,
/// and (when outDir is set) write corpus.json plus one repro file per
/// disagreement. Emits fuzz.* trace counters on the attached collector.
FuzzReport runFuzz(const FuzzOptions& opts);

}  // namespace velev::fuzz
