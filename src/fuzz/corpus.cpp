// Replayable JSON corpus entries. The writer is deterministic (fixed key
// order, no wall-clock fields), so a fuzz run with the same seed produces
// byte-identical corpus files — the reproducibility contract cli/fuzz
// tests and the nightly CI job rely on.
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "fuzz/fuzz.hpp"

namespace velev::fuzz {

CorpusEntry makeCorpusEntry(const FuzzCase& c, const OracleOutcome& o) {
  CorpusEntry e;
  e.c = c;
  e.rewriteVerdict = core::verdictName(o.rewriteVerdict);
  e.failedSlice = o.rewriteFailedSlice;
  e.peVerdict = core::verdictName(o.peVerdict);
  e.bddVerdict = core::verdictName(o.bddVerdict);
  e.evalRefuted = o.evalRefuted;
  e.decoded = o.cex.has_value() && o.cex->transitive && o.cex->falsifiesUfRoot;
  return e;
}

namespace {

void writeEntry(JsonWriter& w, const CorpusEntry& e) {
  w.beginObject();
  w.kv("id", e.c.id);
  // As a decimal string: the seed uses the full 64-bit range, and JSON
  // numbers round-trip losslessly only up to 2^53.
  w.kv("case_seed", std::to_string(e.c.seed));
  w.kv("rob_size", e.c.cfg.robSize);
  w.kv("width", e.c.cfg.issueWidth);
  w.kv("bug", models::bugKindName(e.c.bug.kind));
  if (e.c.bug.kind != models::BugKind::None) w.kv("bug_index", e.c.bug.index);
  w.kv("rewrite_verdict", e.rewriteVerdict);
  if (e.failedSlice != 0) w.kv("failed_slice", e.failedSlice);
  w.kv("pe_verdict", e.peVerdict);
  // Written only when recorded: corpora that predate the BDD oracle have
  // no bdd_verdict key and replay must keep accepting them.
  if (!e.bddVerdict.empty()) w.kv("bdd_verdict", e.bddVerdict);
  w.kv("eval_refuted", e.evalRefuted);
  w.kv("decoded", e.decoded);
  if (!e.note.empty()) w.kv("note", e.note);
  w.endObject();
}

}  // namespace

void writeCorpus(std::ostream& os, std::span<const CorpusEntry> entries) {
  JsonWriter w(os);
  w.beginObject();
  w.kv("schema_version", kCorpusSchemaVersion);
  w.kv("tool", "velev_fuzz");
  w.key("entries");
  w.beginArray();
  for (const CorpusEntry& e : entries) writeEntry(w, e);
  w.endArray();
  w.endObject();
}

std::optional<CorpusEntry> parseCorpusEntry(const JsonValue& v,
                                            std::string* err) {
  auto fail = [&](const char* what) -> std::optional<CorpusEntry> {
    if (err != nullptr) *err = what;
    return std::nullopt;
  };
  if (!v.isObject()) return fail("corpus entry is not an object");
  CorpusEntry e;
  e.c.id = v.uintAt("id");
  const std::string seedText{v.stringAt("case_seed")};
  if (seedText.empty() ||
      seedText.find_first_not_of("0123456789") != std::string::npos)
    return fail("corpus entry's case_seed is not a decimal string");
  e.c.seed = std::strtoull(seedText.c_str(), nullptr, 10);
  e.c.cfg.robSize = static_cast<unsigned>(v.uintAt("rob_size"));
  e.c.cfg.issueWidth = static_cast<unsigned>(v.uintAt("width"));
  if (e.c.cfg.robSize < 1 || e.c.cfg.issueWidth < 1 ||
      e.c.cfg.issueWidth > e.c.cfg.robSize)
    return fail("corpus entry has an impossible configuration");
  const auto kind = models::bugKindFromName(v.stringAt("bug"));
  if (!kind.has_value()) return fail("corpus entry has an unknown bug kind");
  e.c.bug.kind = *kind;
  if (e.c.bug.kind != models::BugKind::None) {
    e.c.bug.index = static_cast<unsigned>(v.uintAt("bug_index"));
    if (e.c.bug.index < 1 ||
        e.c.bug.index > models::bugIndexLimit(e.c.bug.kind, e.c.cfg))
      return fail("corpus entry has an out-of-range bug index");
  }
  e.rewriteVerdict = v.stringAt("rewrite_verdict");
  e.failedSlice = static_cast<unsigned>(v.uintAt("failed_slice"));
  e.peVerdict = v.stringAt("pe_verdict");
  e.bddVerdict = v.stringAt("bdd_verdict");  // "" when the key is absent
  if (const JsonValue* b = v.find("eval_refuted"); b != nullptr && b->isBool())
    e.evalRefuted = b->boolean;
  if (const JsonValue* b = v.find("decoded"); b != nullptr && b->isBool())
    e.decoded = b->boolean;
  e.note = v.stringAt("note");
  return e;
}

std::vector<CorpusEntry> loadCorpusFile(const std::string& path,
                                        std::string* err) {
  std::ifstream is(path);
  if (!is) {
    if (err != nullptr) *err = "cannot open " + path;
    return {};
  }
  std::ostringstream text;
  text << is.rdbuf();
  std::string perr;
  const std::optional<JsonValue> doc = parseJson(text.str(), &perr);
  if (!doc.has_value()) {
    if (err != nullptr) *err = path + ": " + perr;
    return {};
  }
  std::vector<CorpusEntry> out;
  auto add = [&](const JsonValue& v) {
    std::string eerr;
    if (const auto e = parseCorpusEntry(v, &eerr); e.has_value()) {
      out.push_back(*e);
      return true;
    }
    if (err != nullptr) *err = path + ": " + eerr;
    return false;
  };
  if (const JsonValue* entries = doc->find("entries");
      entries != nullptr && entries->isArray()) {
    for (const JsonValue& v : entries->array)
      if (!add(v)) return {};
  } else if (!add(*doc)) {
    return {};
  }
  return out;
}

std::optional<std::string> replayEntry(const CorpusEntry& e,
                                       const OracleOptions& opts) {
  const OracleOutcome o = runOracles(e.c, opts);
  std::ostringstream os;
  os << "corpus entry " << e.c.id << " (rob " << e.c.cfg.robSize << " width "
     << e.c.cfg.issueWidth << " bug " << models::bugKindName(e.c.bug.kind)
     << "): ";
  if (const auto d = findDisagreement(o); d.has_value()) {
    os << "oracle disagreement on replay: " << *d;
    return os.str();
  }
  if (e.rewriteVerdict != core::verdictName(o.rewriteVerdict)) {
    os << "rewrite verdict changed: recorded " << e.rewriteVerdict << ", got "
       << core::verdictName(o.rewriteVerdict);
    return os.str();
  }
  if (e.failedSlice != o.rewriteFailedSlice) {
    os << "failed slice changed: recorded " << e.failedSlice << ", got "
       << o.rewriteFailedSlice;
    return os.str();
  }
  // The PE verdict is only diffed when recorded and replayed runs both
  // concluded: a caller that overrides the deterministic default budgets
  // (or disables the PE oracle) must not turn replay into a failure.
  const auto recordedPe = core::verdictFromName(e.peVerdict);
  const bool recordedConclusive =
      recordedPe.has_value() && (*recordedPe == core::Verdict::Correct ||
                                 *recordedPe == core::Verdict::CounterexampleFound);
  const bool gotConclusive =
      o.peVerdict == core::Verdict::Correct ||
      o.peVerdict == core::Verdict::CounterexampleFound;
  if (recordedConclusive && gotConclusive && *recordedPe != o.peVerdict) {
    os << "PE verdict changed: recorded " << e.peVerdict << ", got "
       << core::verdictName(o.peVerdict);
    return os.str();
  }
  // Same contract for the BDD verdict, with one more escape hatch: an
  // entry written before the BDD oracle existed records no bdd_verdict at
  // all (empty string), and is never diffed.
  const auto recordedBdd = core::verdictFromName(e.bddVerdict);
  const bool recordedBddConclusive =
      recordedBdd.has_value() &&
      (*recordedBdd == core::Verdict::Correct ||
       *recordedBdd == core::Verdict::CounterexampleFound);
  const bool gotBddConclusive =
      o.bddVerdict == core::Verdict::Correct ||
      o.bddVerdict == core::Verdict::CounterexampleFound;
  if (recordedBddConclusive && gotBddConclusive && *recordedBdd != o.bddVerdict) {
    os << "BDD verdict changed: recorded " << e.bddVerdict << ", got "
       << core::verdictName(o.bddVerdict);
    return os.str();
  }
  if (e.evalRefuted != o.evalRefuted) {
    os << "evaluation oracle changed: recorded eval_refuted="
       << (e.evalRefuted ? "true" : "false") << ", got "
       << (o.evalRefuted ? "true" : "false");
    return os.str();
  }
  if (e.decoded && !(o.cex.has_value() && o.cex->transitive &&
                     o.cex->falsifiesUfRoot)) {
    os << "recorded a decoded counterexample but replay produced none";
    return os.str();
  }
  return std::nullopt;
}

}  // namespace velev::fuzz
