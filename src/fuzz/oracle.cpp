// The three verdict sources for one fuzz case, and the agreement relation
// between them.
//
// Soundness semantics of each oracle:
//   * rewriting flow: Correct is a proof of validity. RewriteMismatch is
//     *structural* — the slice does not match the expected expression
//     shape — and carries no semantic claim (the completion-skip bug
//     mismatches although the safety criterion cannot see it). Its SAT
//     stage runs on the conservative memory model, so CounterexampleFound
//     there may in principle be an abstraction artifact; we still treat
//     "rewrite flow refutes but PE proves" as a disagreement, because on
//     this model family the conservative translation is expected to be
//     complete once rewriting succeeded (the paper's claim) and a
//     counterexample out of thin air would be exactly the kind of
//     regression the fuzzer exists to catch.
//   * PE-only flow: exact. Correct <=> valid, Sat model <=> real
//     counterexample of the safety criterion.
//   * evaluation oracle: sound refutation only (a validity can never be
//     established by sampling finitely many interpretations).
#include <sstream>

#include "eufm/eval.hpp"
#include "fuzz/fuzz.hpp"
#include "models/spec.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace velev::fuzz {

namespace {

/// Same idiom as core/verifier.cpp: attach a governor to the context for
/// one flow, restoring the prior attachment even on unwind.
class ScopedContextBudget {
 public:
  ScopedContextBudget(eufm::Context& cx, BudgetGovernor& gov)
      : cx_(cx), prior_(cx.budgetGovernor()) {
    cx_.setBudget(&gov);
  }
  ~ScopedContextBudget() { cx_.setBudget(prior_); }

 private:
  eufm::Context& cx_;
  BudgetGovernor* prior_;
};

bool conclusive(core::Verdict v) {
  return v == core::Verdict::Correct ||
         v == core::Verdict::CounterexampleFound ||
         v == core::Verdict::RewriteMismatch;
}

}  // namespace

bool peFeasible(const models::OoOConfig& cfg) {
  // Measured on the UNSAT (correct-design) side, the expensive one: 4x2
  // proves in ~32k conflicts, 3x3 within the default conflict budget,
  // 6x1 in a few seconds — while 4x3 already needs ~284k conflicts and
  // 6x3 runs for minutes. Everything outside this envelope is recorded as
  // Skipped and excluded from the differential.
  const unsigned n = cfg.robSize, k = cfg.issueWidth;
  return (k == 1 && n <= 6) || (k == 2 && n <= 4) || (k == 3 && n <= 3);
}

OracleOutcome runOracles(const FuzzCase& c, const OracleOptions& opts) {
  TRACE_SPAN("fuzz.case");
  OracleOutcome out;
  Timer timer;

  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, c.cfg, c.bug);
  auto spec = models::buildSpec(cx, isa);

  // Oracle 1: the rewriting flow (verifyWith arms its own governor).
  {
    TRACE_SPAN("fuzz.oracle.rewrite");
    core::VerifyOptions vopts;
    vopts.strategy = core::Strategy::RewritingPlusPositiveEquality;
    vopts.budget = opts.rewriteBudget;
    const core::VerifyReport rep = core::verifyWith(cx, isa, *impl, *spec, vopts);
    out.rewriteVerdict = rep.outcome.verdict;
    out.rewriteFailedSlice = rep.outcome.failedSlice;
    out.rewriteReason = rep.outcome.reason;
  }

  // The diagram for the PE and evaluation oracles. buildDiagram() is
  // memoized by hash-consing against the verifyWith() run above, so this
  // re-simulation is cheap.
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);

  // Oracle 2: the PE-only flow, hand-rolled (rather than via verifyWith)
  // because decoding needs the Translation and the SAT model.
  if (opts.runPe && peFeasible(c.cfg)) {
    TRACE_SPAN("fuzz.oracle.pe");
    BudgetGovernor gov(opts.peBudget);
    ScopedContextBudget attach(cx, gov);
    try {
      const evc::Translation tr = evc::translate(cx, d.correctness, {});
      std::vector<bool> model;
      sat::Stats stats;
      const sat::Result r = sat::solveCnf(tr.cnf, &model, &stats,
                                          opts.peBudget.satConflicts, nullptr,
                                          &gov);
      out.peConflicts = stats.conflicts;
      switch (r) {
        case sat::Result::Unsat:
          out.peVerdict = core::Verdict::Correct;
          break;
        case sat::Result::Sat:
          out.peVerdict = core::Verdict::CounterexampleFound;
          if (opts.decode)
            out.cex = decodeModel(cx, tr, model, &d, impl.get());
          break;
        case sat::Result::Unknown:
          out.peVerdict = gov.exceeded()
                              ? (gov.exceededKind() == BudgetKind::Memory
                                     ? core::Verdict::MemOut
                                     : core::Verdict::Timeout)
                              : core::Verdict::Inconclusive;
          break;
      }
    } catch (const BudgetExceeded& e) {
      out.peVerdict = e.kind() == BudgetKind::Memory ? core::Verdict::MemOut
                                                     : core::Verdict::Timeout;
    }
  }

  // Oracle 3: concrete evaluation of the correctness formula. Sound for
  // refutation; scenarios alternate between free and pinned scheduling
  // controls (all NDExecute_i true maximizes observability — an injected
  // bug on a slice that never executes is invisible).
  {
    TRACE_SPAN("fuzz.oracle.eval");
    for (unsigned i = 0; i < opts.evalSeeds && !out.evalRefuted; ++i) {
      const std::uint64_t seed = c.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
      const std::uint64_t domain = (i % 3 == 2) ? 3 : 2;
      eufm::Interp in(seed, domain);
      if (i % 2 == 0)
        for (const eufm::Expr v : impl->init.ndExecute) in.setBool(v, true);
      eufm::Evaluator ev(cx, in);
      ++out.evalSeedsRun;
      if (!ev.evalFormula(d.correctness)) {
        out.evalRefuted = true;
        out.evalRefutingSeed = seed;
      }
    }
  }

  out.seconds = timer.seconds();
  return out;
}

std::optional<std::string> findDisagreement(const OracleOutcome& o) {
  std::ostringstream os;

  if (o.evalRefuted && o.rewriteVerdict == core::Verdict::Correct) {
    os << "rewriting flow proved the design correct but interpretation seed "
       << o.evalRefutingSeed << " falsifies the correctness formula";
    return os.str();
  }
  if (o.evalRefuted && o.peVerdict == core::Verdict::Correct) {
    os << "PE-only flow proved the design correct but interpretation seed "
       << o.evalRefutingSeed << " falsifies the correctness formula";
    return os.str();
  }
  if (conclusive(o.rewriteVerdict) && conclusive(o.peVerdict)) {
    if (o.rewriteVerdict == core::Verdict::Correct &&
        o.peVerdict == core::Verdict::CounterexampleFound) {
      os << "rewriting flow says correct, PE-only flow found a "
            "counterexample (PE Sat is exact: the design is buggy)";
      return os.str();
    }
    if (o.rewriteVerdict == core::Verdict::CounterexampleFound &&
        o.peVerdict == core::Verdict::Correct) {
      os << "rewriting flow found a (conservative-memory) counterexample "
            "but the PE-only flow proves the design correct";
      return os.str();
    }
  }
  if (o.cex.has_value()) {
    if (!o.cex->transitive)
      return std::string(
          "decoded e_ij assignment violates transitivity — the transitivity "
          "constraints of the encoding are broken");
    if (!o.cex->falsifiesUfRoot)
      return std::string(
          "decoded SAT model does not falsify the UF-free formula it was "
          "encoded from — the propositional encoding is unsound");
  }
  // What never counts: RewriteMismatch (structural, conservative) in any
  // combination, and any inconclusive/budget/skipped verdict.
  return std::nullopt;
}

}  // namespace velev::fuzz
