// The three verdict sources for one fuzz case, and the agreement relation
// between them.
//
// Soundness semantics of each oracle:
//   * rewriting flow: Correct is a proof of validity. RewriteMismatch is
//     *structural* — the slice does not match the expected expression
//     shape — and carries no semantic claim (the completion-skip bug
//     mismatches although the safety criterion cannot see it). Its SAT
//     stage runs on the conservative memory model, so CounterexampleFound
//     there may in principle be an abstraction artifact; we still treat
//     "rewrite flow refutes but PE proves" as a disagreement, because on
//     this model family the conservative translation is expected to be
//     complete once rewriting succeeded (the paper's claim) and a
//     counterexample out of thin air would be exactly the kind of
//     regression the fuzzer exists to catch.
//   * PE-only flow: exact. Correct <=> valid, Sat model <=> real
//     counterexample of the safety criterion.
//   * evaluation oracle: sound refutation only (a validity can never be
//     established by sampling finitely many interpretations).
//   * BDD oracle: exact like the PE flow — it decides the very same
//     translated formula, just with ROBDDs instead of CNF+CDCL — so any
//     conclusive disagreement between the two is a propositional-back-end
//     bug by construction.
#include <sstream>

#include "bdd/check.hpp"
#include "eufm/eval.hpp"
#include "fuzz/fuzz.hpp"
#include "models/spec.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace velev::fuzz {

namespace {

/// Same idiom as core/verifier.cpp: attach a governor to the context for
/// one flow, restoring the prior attachment even on unwind.
class ScopedContextBudget {
 public:
  ScopedContextBudget(eufm::Context& cx, BudgetGovernor& gov)
      : cx_(cx), prior_(cx.budgetGovernor()) {
    cx_.setBudget(&gov);
  }
  ~ScopedContextBudget() { cx_.setBudget(prior_); }

 private:
  eufm::Context& cx_;
  BudgetGovernor* prior_;
};

bool conclusive(core::Verdict v) {
  return v == core::Verdict::Correct ||
         v == core::Verdict::CounterexampleFound ||
         v == core::Verdict::RewriteMismatch;
}

}  // namespace

bool peFeasible(const models::OoOConfig& cfg) {
  // Measured on the UNSAT (correct-design) side, the expensive one: 4x2
  // proves in ~32k conflicts, 3x3 within the default conflict budget,
  // 6x1 in a few seconds — while 4x3 already needs ~284k conflicts and
  // 6x3 runs for minutes. Everything outside this envelope is recorded as
  // Skipped and excluded from the differential.
  const unsigned n = cfg.robSize, k = cfg.issueWidth;
  return (k == 1 && n <= 6) || (k == 2 && n <= 4) || (k == 3 && n <= 3);
}

bool bddFeasible(const models::OoOConfig& cfg) {
  // Falsifiable cells dominate the cost: correct designs collapse to the
  // false terminal in milliseconds at any feasible size, but a satisfying
  // path takes reorder-and-retry work (~1.5 s at 3x2, ~0.5 s at 4x1) and
  // 4x2 grinds past two minutes. The envelope keeps the worst falsifiable
  // cell under a couple of seconds so corpus replay stays fast.
  const unsigned n = cfg.robSize, k = cfg.issueWidth;
  return (k == 1 && n <= 4) || (k == 2 && n <= 3);
}

OracleOutcome runOracles(const FuzzCase& c, const OracleOptions& opts) {
  TRACE_SPAN("fuzz.case");
  OracleOutcome out;
  Timer timer;

  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, c.cfg, c.bug);
  auto spec = models::buildSpec(cx, isa);

  // Oracle 1: the rewriting flow (verifyWith arms its own governor).
  {
    TRACE_SPAN("fuzz.oracle.rewrite");
    core::VerifyOptions vopts;
    vopts.strategy = core::Strategy::RewritingPlusPositiveEquality;
    vopts.budget = opts.rewriteBudget;
    const core::VerifyReport rep = core::verifyWith(cx, isa, *impl, *spec, vopts);
    out.rewriteVerdict = rep.outcome.verdict;
    out.rewriteFailedSlice = rep.outcome.failedSlice;
    out.rewriteReason = rep.outcome.reason;
  }

  // The diagram for the PE and evaluation oracles. buildDiagram() is
  // memoized by hash-consing against the verifyWith() run above, so this
  // re-simulation is cheap.
  const core::Diagram d = core::buildDiagram(cx, *impl, *spec);

  // Oracle 2: the PE-only flow, hand-rolled (rather than via verifyWith)
  // because decoding needs the Translation and the SAT model. The BDD
  // oracle (4) re-uses the same Translation, so it is built whenever either
  // back end is on; translation runs under the PE governor, and a trip
  // before the Translation exists dooms both oracles.
  std::optional<evc::Translation> tr;
  const bool wantBdd = opts.runBdd && bddFeasible(c.cfg);
  if ((opts.runPe && peFeasible(c.cfg)) || wantBdd) {
    TRACE_SPAN("fuzz.oracle.pe");
    BudgetGovernor gov(opts.peBudget);
    ScopedContextBudget attach(cx, gov);
    try {
      tr.emplace(evc::translate(cx, d.correctness, {}));
      if (opts.runPe) {
        std::vector<bool> model;
        sat::Stats stats;
        // Inprocessed solve: a Sat model comes back reconstructed over the
        // ORIGINAL CNF variables, so decodeModel() below reads primary
        // inputs exactly as it would from an untouched solver.
        const sat::Result r = sat::solveCnfInprocessed(
            tr->cnf, opts.inprocess, &model, &stats,
            opts.peBudget.satConflicts, nullptr, &gov);
        out.peConflicts = stats.conflicts;
        switch (r) {
          case sat::Result::Unsat:
            out.peVerdict = core::Verdict::Correct;
            break;
          case sat::Result::Sat:
            out.peVerdict = core::Verdict::CounterexampleFound;
            if (opts.decode)
              out.cex = decodeModel(cx, *tr, model, &d, impl.get());
            break;
          case sat::Result::Unknown:
            out.peVerdict = gov.exceeded()
                                ? (gov.exceededKind() == BudgetKind::Memory
                                       ? core::Verdict::MemOut
                                       : core::Verdict::Timeout)
                                : core::Verdict::Inconclusive;
            break;
        }
      }
    } catch (const BudgetExceeded& e) {
      const core::Verdict trip = e.kind() == BudgetKind::Memory
                                     ? core::Verdict::MemOut
                                     : core::Verdict::Timeout;
      if (opts.runPe) out.peVerdict = trip;
      if (wantBdd && !tr.has_value())
        out.bddVerdict = trip;  // translation never finished
    }
  }

  // Oracle 4: the BDD engine on the shared translation, under its own
  // deterministic logical budget (and outside the PE governor's scope, so
  // an exhausted PE budget cannot leak into BDD-side decoding).
  if (wantBdd && tr.has_value() &&
      out.bddVerdict == core::Verdict::Skipped) {
    TRACE_SPAN("fuzz.oracle.bdd");
    BudgetGovernor gov(opts.bddBudget);
    bdd::CheckOptions copts;
    copts.governor = &gov;
    const bdd::CheckResult res = bdd::checkValidity(
        *tr->pctx, tr->validityRoot, tr->transitivityClauses(), copts);
    out.bddPeakNodes = res.stats.nodesPeak;
    switch (res.status) {
      case bdd::CheckStatus::Valid:
        out.bddVerdict = core::Verdict::Correct;
        break;
      case bdd::CheckStatus::Falsifiable:
        out.bddVerdict = core::Verdict::CounterexampleFound;
        if (opts.decode)
          out.bddCex = decodeModel(cx, *tr, res.model, &d, impl.get());
        break;
      case bdd::CheckStatus::Unknown:
        out.bddVerdict = res.tripKind == BudgetKind::Memory
                             ? core::Verdict::MemOut
                             : core::Verdict::Timeout;
        break;
    }
  }

  // Oracle 3: concrete evaluation of the correctness formula. Sound for
  // refutation; scenarios alternate between free and pinned scheduling
  // controls (all NDExecute_i true maximizes observability — an injected
  // bug on a slice that never executes is invisible).
  {
    TRACE_SPAN("fuzz.oracle.eval");
    for (unsigned i = 0; i < opts.evalSeeds && !out.evalRefuted; ++i) {
      const std::uint64_t seed = c.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
      const std::uint64_t domain = (i % 3 == 2) ? 3 : 2;
      eufm::Interp in(seed, domain);
      if (i % 2 == 0)
        for (const eufm::Expr v : impl->init.ndExecute) in.setBool(v, true);
      eufm::Evaluator ev(cx, in);
      ++out.evalSeedsRun;
      if (!ev.evalFormula(d.correctness)) {
        out.evalRefuted = true;
        out.evalRefutingSeed = seed;
      }
    }
  }

  out.seconds = timer.seconds();
  return out;
}

std::optional<std::string> findDisagreement(const OracleOutcome& o) {
  std::ostringstream os;

  if (o.evalRefuted && o.rewriteVerdict == core::Verdict::Correct) {
    os << "rewriting flow proved the design correct but interpretation seed "
       << o.evalRefutingSeed << " falsifies the correctness formula";
    return os.str();
  }
  if (o.evalRefuted && o.peVerdict == core::Verdict::Correct) {
    os << "PE-only flow proved the design correct but interpretation seed "
       << o.evalRefutingSeed << " falsifies the correctness formula";
    return os.str();
  }
  if (conclusive(o.rewriteVerdict) && conclusive(o.peVerdict)) {
    if (o.rewriteVerdict == core::Verdict::Correct &&
        o.peVerdict == core::Verdict::CounterexampleFound) {
      os << "rewriting flow says correct, PE-only flow found a "
            "counterexample (PE Sat is exact: the design is buggy)";
      return os.str();
    }
    if (o.rewriteVerdict == core::Verdict::CounterexampleFound &&
        o.peVerdict == core::Verdict::Correct) {
      os << "rewriting flow found a (conservative-memory) counterexample "
            "but the PE-only flow proves the design correct";
      return os.str();
    }
  }
  if (o.evalRefuted && o.bddVerdict == core::Verdict::Correct) {
    os << "BDD engine proved the design correct but interpretation seed "
       << o.evalRefutingSeed << " falsifies the correctness formula";
    return os.str();
  }
  if (conclusive(o.peVerdict) && conclusive(o.bddVerdict) &&
      o.peVerdict != o.bddVerdict) {
    os << "propositional back ends disagree on the same translation: PE-only "
          "SAT says "
       << core::verdictName(o.peVerdict) << " but the BDD engine says "
       << core::verdictName(o.bddVerdict);
    return os.str();
  }
  if (conclusive(o.rewriteVerdict) && conclusive(o.bddVerdict)) {
    if (o.rewriteVerdict == core::Verdict::Correct &&
        o.bddVerdict == core::Verdict::CounterexampleFound) {
      os << "rewriting flow says correct, BDD engine found a counterexample "
            "(the BDD check is exact: the design is buggy)";
      return os.str();
    }
    if (o.rewriteVerdict == core::Verdict::CounterexampleFound &&
        o.bddVerdict == core::Verdict::Correct) {
      os << "rewriting flow found a (conservative-memory) counterexample "
            "but the BDD engine proves the design correct";
      return os.str();
    }
  }
  if (o.cex.has_value()) {
    if (!o.cex->transitive)
      return std::string(
          "decoded e_ij assignment violates transitivity — the transitivity "
          "constraints of the encoding are broken");
    if (!o.cex->falsifiesUfRoot)
      return std::string(
          "decoded SAT model does not falsify the UF-free formula it was "
          "encoded from — the propositional encoding is unsound");
  }
  if (o.bddCex.has_value()) {
    if (!o.bddCex->transitive)
      return std::string(
          "decoded BDD satisfying path violates transitivity — the "
          "transitivity clauses were not conjoined correctly");
    if (!o.bddCex->falsifiesUfRoot)
      return std::string(
          "decoded BDD satisfying path does not falsify the UF-free formula "
          "it was built from — the BDD construction is unsound");
  }
  // What never counts: RewriteMismatch (structural, conservative) in any
  // combination, and any inconclusive/budget/skipped verdict.
  return std::nullopt;
}

}  // namespace velev::fuzz
