#include "fuzz/fuzz.hpp"

namespace velev::fuzz {

using models::BugKind;

std::span<const BugKind> generatableBugKinds() {
  static constexpr BugKind kKinds[] = {
      BugKind::ForwardingWrongOperand, BugKind::ForwardingStaleResult,
      BugKind::RetireIgnoresValidResult, BugKind::AluWrongOpcode,
      BugKind::CompletionSkipsWrite,
  };
  return kKinds;
}

unsigned bugIndexMin(BugKind k) {
  switch (k) {
    case BugKind::ForwardingWrongOperand:
    case BugKind::ForwardingStaleResult:
      // Slice 1 has no preceding producer to forward from, so both
      // forwarding defects degenerate to the correct design there.
      return 2;
    default:
      return 1;
  }
}

FuzzCase generateCase(Rng& rng, std::uint64_t id, const GenOptions& opts) {
  FuzzCase c;
  c.id = id;
  c.seed = rng.next();

  const unsigned minRob = opts.minRobSize < 1 ? 1 : opts.minRobSize;
  const unsigned maxRob = opts.maxRobSize < minRob ? minRob : opts.maxRobSize;
  c.cfg.robSize = static_cast<unsigned>(
      rng.range(static_cast<std::int64_t>(minRob),
                static_cast<std::int64_t>(maxRob)));
  const unsigned maxWidth =
      opts.maxIssueWidth < c.cfg.robSize ? opts.maxIssueWidth : c.cfg.robSize;
  c.cfg.issueWidth = static_cast<unsigned>(
      rng.range(1, static_cast<std::int64_t>(maxWidth < 1 ? 1 : maxWidth)));

  if (rng.chance(opts.noBugPercent, 100)) return c;  // kind == None

  // Draw a kind that has at least one legal slice on this configuration
  // (the forwarding kinds need a slice >= 2, impossible when robSize == 1).
  const auto kinds = generatableBugKinds();
  for (unsigned attempt = 0;; ++attempt) {
    const BugKind kind = kinds[rng.below(kinds.size())];
    const unsigned lo = bugIndexMin(kind);
    const unsigned hi = models::bugIndexLimit(kind, c.cfg);
    if (lo > hi) continue;  // robSize 1 + forwarding kind: redraw
    c.bug.kind = kind;
    c.bug.index = static_cast<unsigned>(
        rng.range(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
    return c;
  }
}

}  // namespace velev::fuzz
