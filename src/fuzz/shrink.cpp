#include "fuzz/fuzz.hpp"

#include <algorithm>

namespace velev::fuzz {

namespace {

/// Clamp a shrunk candidate back into well-formedness: width <= robSize
/// and the bug slice inside [bugIndexMin, bugIndexLimit] for its kind.
FuzzCase normalized(FuzzCase c) {
  if (c.cfg.robSize < 1) c.cfg.robSize = 1;
  c.cfg.issueWidth = std::clamp(c.cfg.issueWidth, 1u, c.cfg.robSize);
  if (c.bug.kind != models::BugKind::None) {
    const unsigned lo = bugIndexMin(c.bug.kind);
    const unsigned hi = models::bugIndexLimit(c.bug.kind, c.cfg);
    if (lo > hi) {
      // The shrunk config cannot host this bug kind at all (robSize 1 with
      // a forwarding bug); keep the config large enough instead.
      c.cfg.robSize = 2;
      c.bug.index = std::clamp(c.bug.index, lo,
                               models::bugIndexLimit(c.bug.kind, c.cfg));
    } else {
      c.bug.index = std::clamp(c.bug.index, lo, hi);
    }
  }
  return c;
}

bool sameCase(const FuzzCase& a, const FuzzCase& b) {
  return a.cfg.robSize == b.cfg.robSize &&
         a.cfg.issueWidth == b.cfg.issueWidth && a.bug.kind == b.bug.kind &&
         (a.bug.kind == models::BugKind::None || a.bug.index == b.bug.index);
}

}  // namespace

ShrinkResult shrinkCase(const FuzzCase& failing,
                        const ReproPredicate& stillFails,
                        unsigned maxAttempts) {
  ShrinkResult res;
  res.minimal = normalized(failing);

  // Candidate moves, boldest first. Each round re-tries the whole ladder
  // against the current minimum; greedy + deterministic, so the same
  // failing case always shrinks to the same reproducer.
  const auto candidates = [](const FuzzCase& c) {
    std::vector<FuzzCase> out;
    auto push = [&](auto mutate) {
      FuzzCase m = c;
      mutate(m);
      m = normalized(m);
      if (!sameCase(m, c)) out.push_back(m);
    };
    push([](FuzzCase& m) { m.cfg.robSize /= 2; });
    push([](FuzzCase& m) { m.cfg.robSize -= 1; });
    push([](FuzzCase& m) { m.cfg.issueWidth = 1; });
    push([](FuzzCase& m) { m.cfg.issueWidth -= 1; });
    push([](FuzzCase& m) { m.bug.index /= 2; });
    push([](FuzzCase& m) { m.bug.index -= 1; });
    return out;
  };

  bool improved = true;
  while (improved && res.attempts < maxAttempts) {
    improved = false;
    for (const FuzzCase& cand : candidates(res.minimal)) {
      if (res.attempts >= maxAttempts) break;
      ++res.attempts;
      if (!stillFails(cand)) continue;
      res.minimal = cand;
      ++res.reductions;
      improved = true;
      break;  // restart the ladder from the new minimum
    }
  }
  return res;
}

}  // namespace velev::fuzz
