// The fuzz campaign driver: generate -> cross-check -> (on disagreement)
// shrink -> emit corpus. Wall-clock enters only between cases (the soft
// totalWallSeconds stop) and in log lines; every verdict that lands in a
// corpus file is produced under deterministic logical budgets, so the
// same seed yields byte-identical corpus output.
#include <filesystem>
#include <fstream>
#include <ostream>

#include "fuzz/fuzz.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace velev::fuzz {

namespace {

bool bugDetected(const OracleOutcome& o) {
  return o.rewriteVerdict == core::Verdict::RewriteMismatch ||
         o.peVerdict == core::Verdict::CounterexampleFound ||
         o.bddVerdict == core::Verdict::CounterexampleFound ||
         o.evalRefuted;
}

void logCase(std::ostream& os, const CaseRecord& r) {
  os << "case " << r.c.id << ": rob " << r.c.cfg.robSize << " width "
     << r.c.cfg.issueWidth << " bug " << models::bugKindName(r.c.bug.kind);
  if (r.c.bug.kind != models::BugKind::None) os << ":" << r.c.bug.index;
  os << " -> rewrite " << core::verdictName(r.o.rewriteVerdict);
  if (r.o.rewriteFailedSlice != 0) os << "@" << r.o.rewriteFailedSlice;
  os << ", pe " << core::verdictName(r.o.peVerdict) << ", bdd "
     << core::verdictName(r.o.bddVerdict) << ", eval "
     << (r.o.evalRefuted ? "refuted" : "passed");
  if (r.o.cex.has_value())
    os << ", decoded "
       << (r.o.cex->falsifiesUfRoot ? "consistent" : "INCONSISTENT");
  if (r.disagreement.has_value()) os << "  ** DISAGREEMENT **";
  os << "\n";
}

void writeRepro(const std::string& dir, const CaseRecord& r,
                const OracleOptions& oracleOpts) {
  CorpusEntry entry = makeCorpusEntry(r.c, r.o);
  entry.note = *r.disagreement;
  std::vector<CorpusEntry> entries{entry};
  if (r.shrunk.has_value()) {
    // The shrunk reproducer rides in the same file, re-judged so its
    // recorded expectations match what replay will see.
    CorpusEntry min =
        makeCorpusEntry(r.shrunk->minimal, runOracles(r.shrunk->minimal,
                                                      oracleOpts));
    min.note = "shrunk reproducer of case " + std::to_string(r.c.id);
    entries.push_back(std::move(min));
  }
  std::ofstream os(dir + "/repro_case_" + std::to_string(r.c.id) + ".json");
  writeCorpus(os, entries);
}

}  // namespace

FuzzReport runFuzz(const FuzzOptions& opts) {
  TRACE_SPAN("fuzz.run");
  FuzzReport rep;
  Timer total;
  Rng rng(opts.seed);

  if (!opts.outDir.empty())
    std::filesystem::create_directories(opts.outDir);

  for (unsigned i = 0; i < opts.cases; ++i) {
    if (opts.totalWallSeconds > 0 && total.seconds() > opts.totalWallSeconds) {
      rep.casesSkipped = opts.cases - i;
      if (opts.log != nullptr)
        *opts.log << "fuzz: soft wall budget reached after " << i
                  << " cases; skipping the remaining " << rep.casesSkipped
                  << "\n";
      break;
    }
    CaseRecord r;
    r.c = generateCase(rng, i, opts.gen);
    r.o = runOracles(r.c, opts.oracle);
    r.disagreement = findDisagreement(r.o);
    ++rep.casesRun;
    if (r.c.bug.kind != models::BugKind::None) {
      ++rep.bugsInjected;
      if (bugDetected(r.o)) ++rep.bugsDetected;
      else ++rep.benignBugs;
    }
    if (r.o.peVerdict == core::Verdict::Correct ||
        r.o.peVerdict == core::Verdict::CounterexampleFound)
      ++rep.peRuns;
    if (r.o.bddVerdict == core::Verdict::Correct ||
        r.o.bddVerdict == core::Verdict::CounterexampleFound)
      ++rep.bddRuns;
    if (r.o.cex.has_value() && r.o.cex->transitive &&
        r.o.cex->falsifiesUfRoot)
      ++rep.decoded;

    if (r.disagreement.has_value()) {
      ++rep.disagreements;
      if (opts.shrink) {
        TRACE_SPAN("fuzz.shrink");
        r.shrunk = shrinkCase(r.c, [&](const FuzzCase& cand) {
          return findDisagreement(runOracles(cand, opts.oracle)).has_value();
        });
      }
      if (!opts.outDir.empty()) writeRepro(opts.outDir, r, opts.oracle);
    }
    if (opts.log != nullptr) logCase(*opts.log, r);
    rep.records.push_back(std::move(r));
  }

  if (!opts.outDir.empty()) {
    std::vector<CorpusEntry> entries;
    entries.reserve(rep.records.size());
    for (const CaseRecord& r : rep.records) {
      CorpusEntry e = makeCorpusEntry(r.c, r.o);
      if (r.disagreement.has_value()) e.note = *r.disagreement;
      entries.push_back(std::move(e));
    }
    std::ofstream os(opts.outDir + "/corpus.json");
    writeCorpus(os, entries);
  }

  rep.seconds = total.seconds();
  trace::counterSet("fuzz.cases", rep.casesRun);
  trace::counterSet("fuzz.cases_skipped", rep.casesSkipped);
  trace::counterSet("fuzz.disagreements", rep.disagreements);
  trace::counterSet("fuzz.bugs_injected", rep.bugsInjected);
  trace::counterSet("fuzz.bugs_detected", rep.bugsDetected);
  trace::counterSet("fuzz.benign_bugs", rep.benignBugs);
  trace::counterSet("fuzz.pe_runs", rep.peRuns);
  trace::counterSet("fuzz.bdd_runs", rep.bddRuns);
  trace::counterSet("fuzz.decoded", rep.decoded);
  return rep;
}

}  // namespace velev::fuzz
