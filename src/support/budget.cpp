#include "support/budget.hpp"

#include <algorithm>
#include <sstream>

namespace velev {

namespace {

std::string formatBytes(std::size_t bytes) {
  std::ostringstream os;
  if (bytes >= 10u * 1024u * 1024u) {
    os << bytes / (1024u * 1024u) << " MiB";
  } else if (bytes >= 10u * 1024u) {
    os << bytes / 1024u << " KiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace

const char* budgetKindName(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::None:
      return "none";
    case BudgetKind::Deadline:
      return "deadline";
    case BudgetKind::Memory:
      return "memory";
  }
  return "none";
}

BudgetGovernor::BudgetGovernor(const ResourceBudget& budget)
    : budget_(budget), start_(Clock::now()) {}

int BudgetGovernor::registerSource() noexcept {
  const int slot = nextSource_.fetch_add(1, std::memory_order_relaxed);
  return slot < kMaxSources ? slot : -1;
}

double BudgetGovernor::elapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

void BudgetGovernor::trip(BudgetKind kind, const std::string& reason) noexcept {
  if (claimed_.exchange(true, std::memory_order_acq_rel)) return;
  try {
    reason_ = reason;
  } catch (...) {
    // Out of memory while reporting out of memory: keep the empty reason.
  }
  kind_.store(kind, std::memory_order_release);
}

bool BudgetGovernor::updateAndCheck(int source, std::size_t bytes) noexcept {
  if (source >= 0) {
    sourceBytes_[source].store(bytes, std::memory_order_relaxed);
  } else if (bytes > 0) {
    // Unslotted caller: fold into a shared slot, keeping the max so a burst
    // is never under-counted (several unslotted callers cannot be summed
    // without double counting).
    std::size_t prev = overflowBytes_.load(std::memory_order_relaxed);
    while (prev < bytes && !overflowBytes_.compare_exchange_weak(
                               prev, bytes, std::memory_order_relaxed)) {
    }
  }

  const int slots =
      std::min(nextSource_.load(std::memory_order_relaxed), kMaxSources);
  std::size_t total = overflowBytes_.load(std::memory_order_relaxed);
  for (int i = 0; i < slots; ++i)
    total += sourceBytes_[i].load(std::memory_order_relaxed);

  std::size_t peak = peakBytes_.load(std::memory_order_relaxed);
  while (peak < total && !peakBytes_.compare_exchange_weak(
                             peak, total, std::memory_order_relaxed)) {
  }

  if (exceeded()) return true;

  if (budget_.memoryBytes > 0 && total > budget_.memoryBytes) {
    std::ostringstream os;
    os << "memory budget exceeded: " << formatBytes(total)
       << " of logical arena in use, budget " << formatBytes(budget_.memoryBytes);
    trip(BudgetKind::Memory, os.str());
    return true;
  }

  if (budget_.wallSeconds > 0 &&
      tick_.fetch_add(1, std::memory_order_relaxed) % kTimeStride == 0) {
    const double elapsed = elapsedSeconds();
    if (elapsed > budget_.wallSeconds) {
      std::ostringstream os;
      os << "deadline exceeded: " << elapsed << " s elapsed, budget "
         << budget_.wallSeconds << " s";
      trip(BudgetKind::Deadline, os.str());
      return true;
    }
  }
  return false;
}

void BudgetGovernor::checkpoint(int source, std::size_t bytes) {
  if (!updateAndCheck(source, bytes)) return;
  // The claim winner publishes reason_ then kind_ (release); wait the few
  // stores it takes so the exception carries the definitive kind.
  BudgetKind kind;
  while ((kind = kind_.load(std::memory_order_acquire)) == BudgetKind::None) {
  }
  throw BudgetExceeded(kind, reason_);
}

bool BudgetGovernor::poll(int source, std::size_t bytes) noexcept {
  return updateAndCheck(source, bytes);
}

std::string BudgetGovernor::exceededReason() const {
  return exceeded() ? reason_ : std::string();
}

}  // namespace velev
