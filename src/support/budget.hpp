// Cooperative resource governor: wall-clock and memory budgets for a single
// verification run.
//
// The paper's Table 2 is *defined* by resource exhaustion — the PE-only flow
// "runs out of 4 GB of memory" at ROB sizes >= 16 — so the pipeline must be
// able to stop a run that exceeds a budget and report it as a verdict
// (Timeout / MemOut) instead of crashing the process or, worse, OOM-killing
// a whole parallel grid. There is no portable way to preempt a C++ thread,
// so governance is cooperative: every hot loop of the pipeline
// (eufm::Context::intern, prop::PropCtx::internAnd, Tseitin clause emission,
// transitivity-constraint generation, the rewrite engine's slice loop, the
// SAT solver's propagation loop) periodically calls back into a shared
// BudgetGovernor.
//
// Memory is governed on *logical arena bytes* — the sum of what each
// registered component reports it has allocated (hash-cons tables, node
// arenas, clause databases) — not on process RSS. Logical bytes are
// deterministic and strictly per-verification, so a budget-tripped cell in a
// parallel grid cannot perturb its siblings (RSS is process-wide and
// monotone: a sibling's allocations would count against every cell). The
// process-wide RSS high-water mark is still *recorded* for accounting, it
// just never trips a budget.
//
// Thread-safety: a governor may be shared by the solver instances of a SAT
// portfolio, so all mutating entry points are lock-free atomics. The trip is
// sticky — the first checkpoint that observes exhaustion wins a CAS, writes
// the reason, and every later poll sees the same verdict.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>

namespace velev {

/// Per-verification resource limits. Default-constructed = unlimited.
struct ResourceBudget {
  /// Wall-clock deadline in seconds; <= 0 means unlimited.
  double wallSeconds = 0;
  /// Logical arena budget in bytes (hash-cons tables + node arenas + clause
  /// databases, summed over the pipeline); 0 means unlimited.
  std::size_t memoryBytes = 0;
  /// SAT conflict budget; < 0 means unlimited. Exhausting it yields
  /// Verdict::Inconclusive (the classic "gave up", not Timeout/MemOut).
  std::int64_t satConflicts = -1;

  bool limited() const { return wallSeconds > 0 || memoryBytes > 0; }
};

/// Which budget a governor tripped on.
enum class BudgetKind : std::uint8_t { None = 0, Deadline = 1, Memory = 2 };

const char* budgetKindName(BudgetKind kind);

/// Thrown by BudgetGovernor::checkpoint() when a budget is exhausted.
/// Deliberately NOT an InternalError: callers that catch InternalError as
/// "library bug / usage error" must not swallow a budget trip.
class BudgetExceeded : public std::exception {
 public:
  BudgetExceeded(BudgetKind kind, std::string what)
      : kind_(kind), what_(std::move(what)) {}

  BudgetKind kind() const { return kind_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  BudgetKind kind_;
  std::string what_;
};

/// Arms a ResourceBudget at construction and answers cheap cooperative
/// checkpoints from the pipeline's hot loops.
///
/// Each component that owns memory registers a source slot once
/// (registerSource()) and thereafter reports its own current total through
/// checkpoint()/poll(); the memory-trip condition is the *sum* over all
/// slots. Time is checked on a stride (every kTimeStride calls) so a
/// checkpoint in a tight loop costs a few atomic ops, not a clock read.
class BudgetGovernor {
 public:
  explicit BudgetGovernor(const ResourceBudget& budget);

  BudgetGovernor(const BudgetGovernor&) = delete;
  BudgetGovernor& operator=(const BudgetGovernor&) = delete;

  const ResourceBudget& budget() const { return budget_; }

  /// Claims a byte-accounting slot for one memory-owning component.
  /// Returns -1 when all slots are taken (the component is then governed
  /// for time only and its bytes are folded into a shared overflow slot).
  int registerSource() noexcept;

  /// Throwing checkpoint for contexts that can unwind (translation,
  /// rewriting, CNF construction). `bytes` is the caller's current logical
  /// total for its slot. Throws BudgetExceeded on (possibly prior) trip.
  void checkpoint(int source, std::size_t bytes);

  /// Non-throwing checkpoint for the SAT solver's inner loop (a solver
  /// must never throw mid-propagation; it returns Result::Unknown instead).
  /// Returns true once any budget has been exceeded — sticky.
  bool poll(int source, std::size_t bytes) noexcept;

  bool exceeded() const noexcept {
    return kind_.load(std::memory_order_acquire) != BudgetKind::None;
  }
  BudgetKind exceededKind() const noexcept {
    return kind_.load(std::memory_order_acquire);
  }
  /// Human-readable trip reason; empty while not exceeded. Safe to call
  /// concurrently with polls (the reason is published before the kind).
  std::string exceededReason() const;

  /// Wall seconds since the governor was armed.
  double elapsedSeconds() const;

  /// High-water mark of the summed logical bytes seen across checkpoints.
  std::size_t peakArenaBytes() const noexcept {
    return peakBytes_.load(std::memory_order_relaxed);
  }

  /// Raises a trip from outside a checkpoint (e.g. the CLI translating an
  /// external signal into a budget verdict). First caller wins; later calls
  /// are no-ops.
  void trip(BudgetKind kind, const std::string& reason) noexcept;

 private:
  static constexpr int kMaxSources = 64;
  static constexpr std::uint32_t kTimeStride = 256;

  bool updateAndCheck(int source, std::size_t bytes) noexcept;

  using Clock = std::chrono::steady_clock;

  ResourceBudget budget_;
  Clock::time_point start_;
  std::atomic<int> nextSource_{0};
  std::atomic<std::size_t> sourceBytes_[kMaxSources] = {};
  std::atomic<std::size_t> overflowBytes_{0};  // max over unslotted callers
  std::atomic<std::size_t> peakBytes_{0};
  std::atomic<std::uint32_t> tick_{0};
  std::atomic<bool> claimed_{false};  // trip-claim token; winner writes reason_
  std::atomic<BudgetKind> kind_{BudgetKind::None};
  std::string reason_;  // written once by the claim winner, then read-only
};

}  // namespace velev
