// Deterministic pseudo-random generator (xoshiro256**) for property tests,
// random finite interpretations and the SAT solver's tie-breaking.
// Determinism matters: every test failure must be reproducible from a seed.
#pragma once

#include <cstdint>

#include "support/hash.hpp"

namespace velev {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    // Seed the four lanes via SplitMix64 (the recommended seeding procedure).
    for (auto& lane : s_) {
      seed = mix64(seed);
      lane = seed;
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool coin() { return (next() & 1) != 0; }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  double unit() {  // [0,1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace velev
