// One enum <-> string registry for every stable name the CLIs, the JSON
// schemas (BENCH_*.json, manifests, the velev_serve wire protocol) and the
// fuzz corpus rely on.
//
// Before this header existed, each enum carried a hand-maintained pair of
// `xName()` / `xFromName()` functions whose switch statements and value
// lists had to be kept in sync by eye — a new Verdict or Engine could
// silently miss one direction of the mapping. Now each enum declares a
// single table once:
//
//   template <> struct velev::names::Registry<core::Verdict> {
//     static constexpr EnumEntry<core::Verdict> entries[] = {
//         {core::Verdict::Correct, "correct"}, ...};
//   };
//
// and both directions (plus the value list the round-trip tests iterate)
// fall out of the one table:
//
//   names::nameOf(v)          -> const char*       ("unknown" when unmapped)
//   names::fromName<E>("x")   -> std::optional<E>
//   names::valuesOf<E>()      -> std::vector<E>    (test enumeration)
//
// The legacy helpers (core::verdictName, models::bugKindName, ...) remain
// as thin wrappers over the registry, so no call site changed. Every
// registry table is covered by a round-trip TEST_P over valuesOf<E>() (see
// tests/core_test.cpp, tests/models_test.cpp, tests/evc_test.cpp);
// enumerators added without a table entry are additionally caught by the
// -Wswitch warnings on the remaining semantic switches (verdictExitCode).
#pragma once

#include <cstddef>
#include <iterator>
#include <optional>
#include <string_view>
#include <vector>

namespace velev::names {

template <class E>
struct EnumEntry {
  E value;
  const char* name;
};

/// Specialize per enum with a static constexpr `entries` array. The table
/// is the single source of truth for both mapping directions.
template <class E>
struct Registry;

/// Stable lower-case name of `v`; "unknown" when the registry misses it.
template <class E>
constexpr const char* nameOf(E v) {
  for (const EnumEntry<E>& e : Registry<E>::entries)
    if (e.value == v) return e.name;
  return "unknown";
}

/// Inverse of nameOf(); unknown names yield nullopt.
template <class E>
constexpr std::optional<E> fromName(std::string_view name) {
  for (const EnumEntry<E>& e : Registry<E>::entries)
    if (name == std::string_view(e.name)) return e.value;
  return std::nullopt;
}

/// Every registered enumerator, in table order — what the round-trip
/// TEST_P suites instantiate over.
template <class E>
std::vector<E> valuesOf() {
  std::vector<E> values;
  values.reserve(std::size(Registry<E>::entries));
  for (const EnumEntry<E>& e : Registry<E>::entries) values.push_back(e.value);
  return values;
}

/// Number of registered enumerators.
template <class E>
constexpr std::size_t countOf() {
  return std::size(Registry<E>::entries);
}

}  // namespace velev::names
