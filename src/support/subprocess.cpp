#include "support/subprocess.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace velev {

Subprocess spawnWithSocket(const std::string& executable,
                           std::vector<std::string> args,
                           std::string* error) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    if (error != nullptr)
      *error = std::string("socketpair: ") + std::strerror(errno);
    return {};
  }
  const int parentFd = fds[0];
  const int childFd = fds[1];

  // Everything the child touches between fork and exec must be prepared
  // here: only async-signal-safe calls are allowed in the forked child of
  // a multithreaded parent.
  const std::string childFdStr = std::to_string(childFd);
  for (std::string& a : args)
    if (a == kSubprocessFdArg) a = childFdStr;
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(executable.c_str()));
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) *error = std::string("fork: ") + std::strerror(errno);
    ::close(parentFd);
    ::close(childFd);
    return {};
  }
  if (pid == 0) {
    ::close(parentFd);
    ::execv(executable.c_str(), argv.data());
    _exit(127);  // exec failed: the parent sees instant EOF + status 127
  }
  ::close(childFd);
  // Later forks (sibling workers) must not inherit this end: a sibling
  // holding it open would mask this child's death EOF.
  ::fcntl(parentFd, F_SETFD, FD_CLOEXEC);
  return Subprocess{pid, parentFd};
}

bool reapProcess(pid_t pid, bool block, int* status) {
  if (pid <= 0) return false;
  int st = 0;
  const pid_t r = ::waitpid(pid, &st, block ? 0 : WNOHANG);
  if (r != pid) return false;
  if (status != nullptr) *status = st;
  return true;
}

bool waitReadable(int fd, int timeoutMs) {
  pollfd p{fd, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&p, 1, timeoutMs);
    if (r > 0) return true;
    if (r == 0) return false;
    if (errno != EINTR) return false;
  }
}

bool writeLineFd(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool FdLineReader::next(std::string* line) {
  for (;;) {
    const std::size_t nl = pending_.find('\n', start_);
    if (nl != std::string::npos) {
      *line = pending_.substr(start_, nl - start_);
      start_ = nl + 1;
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    pending_.erase(0, start_);
    start_ = 0;
    if (eof_) return false;
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      eof_ = true;
      // A final unterminated fragment is not a line: the wire format is
      // newline-delimited, so a torn write from a killed peer is dropped.
      return false;
    }
    pending_.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace velev
