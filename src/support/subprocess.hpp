// Process + pipe helpers for the velev_serve supervisor/worker split.
//
// spawnWithSocket() forks and execs a child connected to the parent by one
// unix-domain socketpair: the child's end stays open across exec (its fd
// number is substituted into the argv), the parent's end gets FD_CLOEXEC
// so later-spawned siblings never inherit it. A SIGKILLed (or crashed)
// child makes the kernel close its end, so the parent's blocked read wakes
// with EOF — that is the supervisor's whole death-detection mechanism; no
// signal handler is involved.
//
// FdLineReader / writeLineFd carry the newline-delimited JSON wire format
// (docs/SERVICE.md) over raw fds, mirroring what serve::VerifyServer's
// connection readers do over sockets.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace velev {

struct Subprocess {
  pid_t pid = -1;
  /// Parent's end of the socketpair (-1 on spawn failure). Close (or
  /// shutdown()) it to send the child EOF; read EOF from it means the
  /// child exited or was killed.
  int fd = -1;

  bool ok() const { return pid > 0 && fd >= 0; }
};

/// Placeholder argv element replaced by the decimal fd number of the
/// child's socketpair end.
inline constexpr const char* kSubprocessFdArg = "@FD@";

/// Fork + exec `executable` with `args` as argv[1..] (any element equal to
/// kSubprocessFdArg is replaced by the child's fd number). On failure
/// returns a non-ok() Subprocess with `*error` set. An exec failure inside
/// the child surfaces as an immediate EOF on the parent's fd plus exit
/// status 127.
Subprocess spawnWithSocket(const std::string& executable,
                           std::vector<std::string> args,
                           std::string* error = nullptr);

/// waitpid wrapper: reap `pid`, blocking or not. Returns true once the
/// child was reaped (raw waitpid status in `*status` when non-null).
bool reapProcess(pid_t pid, bool block, int* status = nullptr);

/// poll() until `fd` is readable (or EOF/error makes read() ready).
/// False on timeout. timeoutMs < 0 waits forever.
bool waitReadable(int fd, int timeoutMs);

/// Write `line` + '\n' with a short-write loop; false on error (incl.
/// EPIPE — callers must have SIGPIPE ignored or use socket sends).
bool writeLineFd(int fd, const std::string& line);

/// Buffered line reader over a blocking fd: next() strips the trailing
/// '\n' (and an optional '\r') and returns false on EOF or a read error.
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}

  bool next(std::string* line);

 private:
  int fd_;
  std::string pending_;
  std::size_t start_ = 0;
  bool eof_ = false;
};

}  // namespace velev
