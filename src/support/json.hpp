// Minimal JSON emitter and reader for the machine-readable reports
// (BENCH_<name>.json, velev_verify --json, and the trace subsystem's
// manifest.json / trace.json). Both directions are deliberately tiny —
// a ~100-line emitter plus a ~150-line recursive-descent reader beat a
// dependency. The reader exists so the *tests* can round-trip what the
// tools emit (trace_test parses manifests back; cli_test validates
// --trace output); production code only writes.
//
// Writer usage:
//   JsonWriter w(os);
//   w.beginObject();
//   w.key("bench"); w.value("table2_pe_only");
//   w.key("cells"); w.beginArray(); ... w.endArray();
//   w.endObject();
//
// The writer inserts commas and newline indentation; keys/values must
// alternate correctly inside objects (checked).
//
// Reader usage:
//   std::string err;
//   std::optional<JsonValue> v = parseJson(text, &err);
//   if (v) { const JsonValue* cells = v->find("cells"); ... }
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace velev {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(std::string_view k) {
    VELEV_CHECK(!stack_.empty() && stack_.back().object);
    VELEV_CHECK(!stack_.back().keyPending);
    separate();
    writeString(k);
    os_ << ": ";
    stack_.back().keyPending = true;
  }

  void value(std::string_view v) {
    preValue();
    writeString(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    preValue();
    os_ << (v ? "true" : "false");
  }
  void value(double v) {
    preValue();
    // JSON has no NaN/Inf; clamp to null.
    if (v != v || v > 1e308 || v < -1e308) {
      os_ << "null";
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os_ << buf;
  }
  void value(std::int64_t v) {
    preValue();
    os_ << v;
  }
  void value(std::uint64_t v) {
    preValue();
    os_ << v;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  template <class T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  struct Frame {
    bool object = false;
    bool keyPending = false;
    bool any = false;
  };

  void open(char c) {
    preValue();
    os_ << c;
    stack_.push_back({c == '{', false, false});
  }

  void close(char c) {
    VELEV_CHECK(!stack_.empty() && !stack_.back().keyPending);
    const bool any = stack_.back().any;
    stack_.pop_back();
    if (any) {
      os_ << '\n';
      indent();
    }
    os_ << c;
    if (stack_.empty()) os_ << '\n';
  }

  // Called before any value (or container opening) is emitted.
  void preValue() {
    if (stack_.empty()) return;  // root value
    if (stack_.back().object) {
      VELEV_CHECK(stack_.back().keyPending);
      stack_.back().keyPending = false;
    } else {
      separate();
    }
  }

  void separate() {
    if (stack_.back().any) os_ << ',';
    stack_.back().any = true;
    os_ << '\n';
    indent();
  }

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  void writeString(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<Frame> stack_;
};

/// Parsed JSON value. Objects preserve insertion order (handy for
/// comparing against the deterministic writer output); numbers are held
/// as double, which is lossless for every count this repository emits
/// (all well below 2^53).
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool isNull() const { return type == Type::Null; }
  bool isBool() const { return type == Type::Bool; }
  bool isNumber() const { return type == Type::Number; }
  bool isString() const { return type == Type::String; }
  bool isArray() const { return type == Type::Array; }
  bool isObject() const { return type == Type::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (type != Type::Object) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }

  /// Numeric member as uint64 (0 when absent / non-numeric / negative).
  std::uint64_t uintAt(std::string_view key) const {
    const JsonValue* v = find(key);
    if (v == nullptr || !v->isNumber() || v->number < 0) return 0;
    return static_cast<std::uint64_t>(v->number);
  }
  /// Numeric member as double (0 when absent / non-numeric).
  double numberAt(std::string_view key) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->isNumber() ? v->number : 0;
  }
  /// String member ("" when absent / non-string).
  std::string_view stringAt(std::string_view key) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->isString() ? std::string_view(v->string)
                                         : std::string_view();
  }
};

/// Parse a complete JSON document. Returns nullopt on malformed input and,
/// when `error` is given, a one-line "offset N: what" diagnostic.
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string* error = nullptr);

/// Collapse JsonWriter's newline+indent formatting into a single line, for
/// newline-delimited wire protocols (velev_serve). Safe on writer output
/// because the writer escapes every control character inside strings: a
/// raw '\n' can only be formatting, and the only characters it ever emits
/// after one are indent spaces.
inline std::string compactJson(std::string_view pretty) {
  std::string out;
  out.reserve(pretty.size());
  for (std::size_t i = 0; i < pretty.size(); ++i) {
    if (pretty[i] == '\n') {
      while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
      continue;
    }
    out += pretty[i];
  }
  return out;
}

}  // namespace velev
