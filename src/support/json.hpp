// Minimal JSON emitter for the machine-readable bench/tool reports
// (BENCH_<name>.json, velev_verify --json). Write-only by design: the
// repository consumes these files from external tooling (perf tracking
// across PRs), never parses them back, so a ~100-line emitter beats a
// dependency.
//
// Usage:
//   JsonWriter w(os);
//   w.beginObject();
//   w.key("bench"); w.value("table2_pe_only");
//   w.key("cells"); w.beginArray(); ... w.endArray();
//   w.endObject();
//
// The writer inserts commas and newline indentation; keys/values must
// alternate correctly inside objects (checked).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

#include "support/check.hpp"

namespace velev {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(std::string_view k) {
    VELEV_CHECK(!stack_.empty() && stack_.back().object);
    VELEV_CHECK(!stack_.back().keyPending);
    separate();
    writeString(k);
    os_ << ": ";
    stack_.back().keyPending = true;
  }

  void value(std::string_view v) {
    preValue();
    writeString(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    preValue();
    os_ << (v ? "true" : "false");
  }
  void value(double v) {
    preValue();
    // JSON has no NaN/Inf; clamp to null.
    if (v != v || v > 1e308 || v < -1e308) {
      os_ << "null";
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os_ << buf;
  }
  void value(std::int64_t v) {
    preValue();
    os_ << v;
  }
  void value(std::uint64_t v) {
    preValue();
    os_ << v;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  template <class T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  struct Frame {
    bool object = false;
    bool keyPending = false;
    bool any = false;
  };

  void open(char c) {
    preValue();
    os_ << c;
    stack_.push_back({c == '{', false, false});
  }

  void close(char c) {
    VELEV_CHECK(!stack_.empty() && !stack_.back().keyPending);
    const bool any = stack_.back().any;
    stack_.pop_back();
    if (any) {
      os_ << '\n';
      indent();
    }
    os_ << c;
    if (stack_.empty()) os_ << '\n';
  }

  // Called before any value (or container opening) is emitted.
  void preValue() {
    if (stack_.empty()) return;  // root value
    if (stack_.back().object) {
      VELEV_CHECK(stack_.back().keyPending);
      stack_.back().keyPending = false;
    } else {
      separate();
    }
  }

  void separate() {
    if (stack_.back().any) os_ << ',';
    stack_.back().any = true;
    os_ << '\n';
    indent();
  }

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  void writeString(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<Frame> stack_;
};

}  // namespace velev
