#include "support/trace.hpp"

#include <algorithm>
#include <cinttypes>

#include "support/json.hpp"

namespace velev::trace {

namespace detail {
thread_local ThreadState tlsState;
}  // namespace detail

Collector::Collector() : epoch_(Clock::now()) {}

std::uint64_t Collector::nowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch_)
          .count());
}

std::uint32_t Collector::registerThread() {
  std::lock_guard<std::mutex> lock(mu_);
  return nextTid_++;
}

void Collector::record(const char* name, std::uint32_t tid,
                       std::uint32_t depth, std::uint64_t startUs,
                       std::uint64_t durUs) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(SpanEvent{name, tid, depth, startUs, durUs, nextSeq_++});
}

void Collector::addCounter(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), delta);
  else
    it->second += delta;
}

void Collector::setCounter(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), value);
  else
    it->second = value;
}

void Collector::maxCounter(std::string_view name, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), value);
  else
    it->second = std::max(it->second, value);
}

std::uint64_t Collector::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> Collector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<SpanEvent> Collector::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

unsigned Collector::threadsSeen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return nextTid_;
}

void Collector::writeChromeTrace(std::ostream& os) const {
  std::vector<SpanEvent> spans;
  std::map<std::string, std::uint64_t> counters;
  std::uint32_t threads = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    counters = {counters_.begin(), counters_.end()};
    threads = nextTid_;
  }
  std::uint64_t endUs = 0;
  for (const SpanEvent& s : spans)
    endUs = std::max(endUs, s.startUs + s.durUs);

  JsonWriter w(os);
  w.beginObject();
  w.key("traceEvents");
  w.beginArray();
  // Metadata: process / thread names, so Perfetto labels the tracks.
  w.beginObject();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 1);
  w.key("args");
  w.beginObject();
  w.kv("name", "velev");
  w.endObject();
  w.endObject();
  for (std::uint32_t t = 0; t < threads; ++t) {
    w.beginObject();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", t);
    w.key("args");
    w.beginObject();
    w.kv("name", "trace-thread-" + std::to_string(t));
    w.endObject();
    w.endObject();
  }
  for (const SpanEvent& s : spans) {
    w.beginObject();
    w.kv("name", s.name);
    w.kv("cat", "velev");
    w.kv("ph", "X");
    w.kv("ts", s.startUs);
    w.kv("dur", s.durUs);
    w.kv("pid", 1);
    w.kv("tid", s.tid);
    w.endObject();
  }
  // Final counter values as one counter sample each at the end of the
  // timeline (Perfetto renders them as counter tracks).
  for (const auto& [name, value] : counters) {
    w.beginObject();
    w.kv("name", name);
    w.kv("cat", "velev");
    w.kv("ph", "C");
    w.kv("ts", endUs);
    w.kv("pid", 1);
    w.key("args");
    w.beginObject();
    w.kv("value", value);
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.kv("displayTimeUnit", "ms");
  w.endObject();
}

namespace {

/// Aggregation node of the stage tree: spans merged by hierarchical path
/// (across threads), keeping invocation count, total time, and insertion
/// order (so the tree prints in first-seen order, which matches pipeline
/// order on the main thread).
struct TreeNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t totalUs = 0;
  std::vector<std::size_t> children;  // indices into the node pool
};

std::size_t childOf(std::vector<TreeNode>& pool, std::size_t parent,
                    const char* name) {
  for (std::size_t c : pool[parent].children)
    if (pool[c].name == name) return c;
  pool.push_back(TreeNode{name, 0, 0, {}});
  pool[parent].children.push_back(pool.size() - 1);
  return pool.size() - 1;
}

void printTree(std::ostream& os, const std::vector<TreeNode>& pool,
               std::size_t node, unsigned indent) {
  const TreeNode& n = pool[node];
  if (indent > 0) {  // the root is synthetic
    char buf[160];
    std::string label(2 * (indent - 1), ' ');
    label += n.name;
    std::snprintf(buf, sizeof buf, "  %-40s %10.3f s", label.c_str(),
                  static_cast<double>(n.totalUs) / 1e6);
    os << buf;
    if (n.count > 1) os << "  (x" << n.count << ")";
    os << '\n';
  }
  for (std::size_t c : n.children) printTree(os, pool, c, indent + 1);
}

}  // namespace

void Collector::writeStageTree(std::ostream& os) const {
  std::vector<SpanEvent> spans = this->spans();
  const std::map<std::string, std::uint64_t> counters = this->counters();

  // Rebuild each thread's nesting from the interval structure (a child is
  // fully contained in its parent), then merge threads by path.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.startUs != b.startUs) return a.startUs < b.startUs;
                     if (a.depth != b.depth) return a.depth < b.depth;
                     return a.seq < b.seq;
                   });
  std::vector<TreeNode> pool;
  pool.push_back(TreeNode{"", 0, 0, {}});  // synthetic root
  std::vector<std::size_t> stack;          // current path, as pool indices
  std::vector<std::uint64_t> stackEnd;     // matching span end times
  std::uint32_t curTid = 0;
  for (const SpanEvent& s : spans) {
    if (stack.empty() || s.tid != curTid) {
      stack.clear();
      stackEnd.clear();
      curTid = s.tid;
    }
    while (!stack.empty() && s.startUs >= stackEnd.back()) {
      stack.pop_back();
      stackEnd.pop_back();
    }
    const std::size_t parent = stack.empty() ? 0 : stack.back();
    const std::size_t node = childOf(pool, parent, s.name);
    pool[node].count += 1;
    pool[node].totalUs += s.durUs;
    stack.push_back(node);
    stackEnd.push_back(s.startUs + s.durUs);
  }

  os << "-- trace: stage tree (wall seconds, merged across "
     << threadsSeen() << " thread" << (threadsSeen() == 1 ? "" : "s")
     << ") --\n";
  printTree(os, pool, 0, 0);
  if (!counters.empty()) {
    os << "-- trace: counters --\n";
    for (const auto& [name, value] : counters) {
      char buf[160];
      std::snprintf(buf, sizeof buf, "  %-42s %12" PRIu64 "\n", name.c_str(),
                    value);
      os << buf;
    }
  }
}

// ---- manifests --------------------------------------------------------------

const char* gitDescribe() {
#ifdef VELEV_GIT_DESCRIBE
  return VELEV_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

namespace {

/// The config block stores values as strings; emit plain integers as JSON
/// numbers so downstream tooling gets typed fields.
bool looksNumeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i)
    if (s[i] < '0' || s[i] > '9') return false;
  return true;
}

}  // namespace

void writeManifest(std::ostream& os, const ManifestData& m,
                   const Collector* collector) {
  // Merge: live trace counters first, the explicit (report-derived) block
  // second — the report values are authoritative on a name collision.
  std::map<std::string, std::uint64_t> counters;
  if (collector != nullptr) counters = collector->counters();
  for (const auto& [name, value] : m.counters) counters[name] = value;

  JsonWriter w(os);
  w.beginObject();
  w.kv("schema_version", kManifestSchemaVersion);
  w.kv("tool", m.tool);
  w.kv("git_describe", gitDescribe());
  w.key("config");
  w.beginObject();
  for (const auto& [key, value] : m.config) {
    if (looksNumeric(value))
      w.kv(key, static_cast<std::int64_t>(std::stoll(value)));
    else
      w.kv(key, value);
  }
  w.endObject();
  w.key("budget");
  w.beginObject();
  w.kv("wall_seconds", m.budgetWallSeconds);
  w.kv("memory_bytes", m.budgetMemoryBytes);
  w.kv("sat_conflicts", m.budgetSatConflicts);
  w.endObject();
  w.kv("verdict", m.verdict);
  if (!m.reason.empty()) w.kv("reason", m.reason);
  w.key("stage_seconds");
  w.beginObject();
  for (const auto& [stage, seconds] : m.stageSeconds) w.kv(stage, seconds);
  w.endObject();
  w.kv("peak_arena_bytes", m.peakArenaBytes);
  w.kv("rss_high_water_kb", m.rssHighWaterKb);
  if (collector != nullptr)
    w.kv("traced_threads",
         static_cast<std::uint64_t>(collector->threadsSeen()));
  w.key("counters");
  w.beginObject();
  for (const auto& [name, value] : counters) w.kv(name, value);
  w.endObject();
  w.endObject();
}

}  // namespace velev::trace
