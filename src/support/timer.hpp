// Wall-clock timer used by the benchmark harness to report per-phase times
// (the paper reports CPU seconds per pipeline stage; we report wall seconds,
// which on an otherwise idle machine is the same quantity).
#pragma once

#include <chrono>

namespace velev {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace velev
