// Work-stealing thread pool for the parallel verification paths: the grid
// runner in core/, the SAT seed portfolio in sat/, and the intra-cell
// stages (rewrite slice loop in rewrite/, sharded Tseitin emission in
// prop/, component-parallel transitivity in evc/).
//
// Design:
//   * a fixed number of workers, each with its own deque: the owner pushes
//     and pops at the back (LIFO, cache-friendly), idle workers steal from
//     the front of a victim's deque (FIFO, oldest task first);
//   * submit() returns a std::future — exceptions thrown by a task
//     propagate through the future, never terminate a worker;
//   * cooperative cancellation via CancelToken: a task submitted with a
//     token is skipped (its future throws CancelledError) if the token was
//     cancelled before the task started running. Cancellation of a task
//     that is already running is the task body's responsibility (e.g. the
//     SAT solver polls an atomic flag between conflicts).
//
// THREAD-OWNERSHIP RULE (load-bearing for the whole verification flow):
// the EUFM/prop expression DAGs (`eufm::Context`, `prop::PropCtx`) are
// hash-consed with unsynchronized tables and must be owned by exactly one
// task. Parallel verification therefore builds ONE context PER CELL inside
// the worker task; contexts are never shared or interned across threads.
// The one sanctioned exception is intra-cell parallelism
// (VerifyOptions::jobs / GridRunOptions::cellJobs): while the cell's
// context is FROZEN — nothing interning into it — pool workers may read it
// concurrently through per-worker eufm::ShadowContext overlays, which
// hash-cons their scratch locally. "One owner" generalizes to "one frozen
// base, many read-only overlays"; see docs/SCALING.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace velev {

/// Shared cancellation flag. Copies observe the same state; cancel() is
/// sticky. Safe to signal from any thread.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() noexcept { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

  /// The underlying flag, for code that polls a raw atomic (sat::Solver).
  const std::atomic<bool>* raw() const noexcept { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown (through the future) by tasks whose CancelToken was cancelled
/// before they started executing.
struct CancelledError : std::runtime_error {
  CancelledError() : std::runtime_error("task cancelled before start") {}
};

class ThreadPool {
 public:
  /// `threads` is clamped to at least 1.
  explicit ThreadPool(unsigned threads = hardwareThreads()) {
    const unsigned n = threads == 0 ? 1 : threads;
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      workers_.emplace_back([this, i] { workerLoop(i); });
  }

  /// Drains every queued task (run-to-completion semantics), then joins.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(sleepMutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Run `f` on some worker; the result (or exception) arrives via the
  /// returned future.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    push([task] { (*task)(); });
    return fut;
  }

  /// As submit(f), but if `token` is cancelled before the task is picked
  /// up, the body is never invoked and the future throws CancelledError.
  template <class F>
  auto submit(CancelToken token, F&& f)
      -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    return submit(
        [token, fn = std::forward<F>(f)]() mutable
        -> std::invoke_result_t<std::decay_t<F>&> {
          if (token.cancelled()) throw CancelledError();
          return fn();
        });
  }

  static unsigned hardwareThreads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void push(std::function<void()> task) {
    const std::size_t victim =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    {
      std::lock_guard<std::mutex> lk(queues_[victim]->mutex);
      queues_[victim]->tasks.push_back(std::move(task));
    }
    queued_.fetch_add(1, std::memory_order_release);
    cv_.notify_one();
  }

  // `queued_` counts tasks sitting in a deque; it is decremented the moment
  // a task is taken, so a worker stuck in a long task never makes its
  // siblings spin at shutdown.
  bool popOwn(std::size_t self, std::function<void()>& out) {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (q.tasks.empty()) return false;
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
    queued_.fetch_sub(1, std::memory_order_release);
    return true;
  }

  bool steal(std::size_t self, std::function<void()>& out) {
    const std::size_t n = queues_.size();
    for (std::size_t d = 1; d < n; ++d) {
      Queue& q = *queues_[(self + d) % n];
      std::lock_guard<std::mutex> lk(q.mutex);
      if (q.tasks.empty()) continue;
      out = std::move(q.tasks.front());  // steal the oldest task
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
    return false;
  }

  void workerLoop(std::size_t self) {
    std::function<void()> task;
    for (;;) {
      if (popOwn(self, task) || steal(self, task)) {
        task();
        task = nullptr;
        continue;
      }
      std::unique_lock<std::mutex> lk(sleepMutex_);
      if (stop_ && queued_.load(std::memory_order_acquire) == 0) return;
      cv_.wait(lk, [this] {
        return stop_ || queued_.load(std::memory_order_acquire) > 0;
      });
      if (stop_ && queued_.load(std::memory_order_acquire) == 0) return;
    }
  }

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> nextQueue_{0};
  std::atomic<std::size_t> queued_{0};
  std::mutex sleepMutex_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by sleepMutex_
};

}  // namespace velev
