// Process memory introspection for the benchmark JSON reports: the paper's
// evaluation tracks memory exhaustion as carefully as CPU time (the 4 GB
// Sun4 ran out of memory on the PE-only flow), so every bench cell records
// the resident-set high-water mark alongside its wall time.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>

namespace velev {

/// Peak resident set size of this process in KiB (VmHWM on Linux).
/// Returns 0 on platforms without /proc. Note this is a process-wide
/// monotone quantity: in a parallel grid run, a cell's snapshot is an
/// upper bound contributed to by every cell completed so far.
inline std::size_t rssHighWaterKb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::size_t kb = 0;
    for (char ch : line)
      if (ch >= '0' && ch <= '9') kb = kb * 10 + static_cast<std::size_t>(ch - '0');
    return kb;
  }
  return 0;
}

}  // namespace velev
