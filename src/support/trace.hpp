// Zero-cost-when-off tracing and metrics for the verification pipeline.
//
// The paper's headline claims are quantitative — Table 2's five orders of
// magnitude, Table 3's p-/g-term and e_ij counts, Table 5's rewrite
// statistics — so the pipeline must be able to say where time and memory go
// *inside* the TLSim -> EUFM -> EVC -> SAT flow, not just per run. This
// header provides:
//
//   * hierarchical spans — RAII guards (`TRACE_SPAN("translate.encode")`)
//     that record a named, nested wall-clock interval on the thread's
//     active Collector;
//   * named counters — `TRACE_COUNTER("evc.eij_vars", n)` accumulates,
//     `trace::counterSet` overwrites (for gauges like node counts);
//   * three sinks on Collector: a Chrome-trace JSON event stream
//     (chrome://tracing / Perfetto), a human-readable stage-time tree, and
//     a structured per-run manifest (writeManifest — schema documented in
//     docs/TRACE_FORMAT.md, versioned by kManifestSchemaVersion).
//
// ACTIVATION MODEL: tracing is attached per *thread*, not globally. A
// `trace::Use use(&collector);` scope makes `collector` the calling
// thread's sink; everything the pipeline records on that thread between
// construction and destruction lands there. This fits the grid runner's
// one-Context-per-cell ownership rule: each cell attaches its own
// Collector inside its worker task, so concurrent cells never share a
// sink and per-cell manifests stay exact. Code that spawns internal
// threads (the SAT seed portfolio) captures `trace::active()` in the
// parent and re-attaches it in the children — Collector itself is
// thread-safe (one mutex; spans are stage-grained, never per-node).
//
// ZERO-COST-WHEN-OFF: with no Collector attached, TRACE_SPAN and
// TRACE_COUNTER cost one thread-local pointer read and a predictable
// branch. Nothing allocates, nothing locks. The instrumented hot paths are
// stage boundaries and per-cycle/per-slice loops, never per-expression
// interning; bench/speedup_headline guards the < 2 % regression budget.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace velev::trace {

class Collector;

namespace detail {
/// Per-thread trace attachment. `depth` tracks live span nesting so events
/// carry their hierarchy level even under thread interleaving.
struct ThreadState {
  Collector* collector = nullptr;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
};
extern thread_local ThreadState tlsState;
}  // namespace detail

/// The Collector attached to the calling thread, or nullptr (tracing off).
inline Collector* active() noexcept { return detail::tlsState.collector; }

/// One completed span: a named wall-clock interval on one thread, with its
/// nesting depth at the time it was opened. Times are microseconds since
/// the Collector's construction.
struct SpanEvent {
  const char* name;     // static string supplied to TRACE_SPAN
  std::uint32_t tid;    // dense per-Collector thread id (attach order)
  std::uint32_t depth;  // nesting level within the thread (0 = outermost)
  std::uint64_t startUs;
  std::uint64_t durUs;
  std::uint64_t seq;    // global append order (close order)
};

/// Thread-safe sink for spans and counters, and the owner of the three
/// output formats. Create one per traced run (one per grid cell), attach
/// it with trace::Use, and write the sinks after the run completes.
class Collector {
 public:
  Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // ---- recording (thread-safe) --------------------------------------------
  void addCounter(std::string_view name, std::uint64_t delta);
  /// Overwrite (last writer wins) — for gauges like "eufm.nodes".
  void setCounter(std::string_view name, std::uint64_t value);
  /// Keep the maximum seen — for high-water gauges.
  void maxCounter(std::string_view name, std::uint64_t value);

  // ---- inspection ----------------------------------------------------------
  std::uint64_t counter(std::string_view name) const;
  std::map<std::string, std::uint64_t> counters() const;
  std::vector<SpanEvent> spans() const;
  unsigned threadsSeen() const;

  /// Microseconds since this Collector was constructed.
  std::uint64_t nowUs() const;

  // ---- sinks ---------------------------------------------------------------
  /// Chrome trace-event JSON ({"traceEvents": [...]}), loadable in
  /// chrome://tracing and https://ui.perfetto.dev. Spans become complete
  /// ("ph":"X") events; final counter values become one counter ("ph":"C")
  /// sample each at the end of the timeline.
  void writeChromeTrace(std::ostream& os) const;

  /// Human-readable stage-time tree: spans aggregated by hierarchical path
  /// (merged across threads, with invocation counts), then the counters.
  void writeStageTree(std::ostream& os) const;

 private:
  friend class Span;
  friend class Use;

  std::uint32_t registerThread();
  void record(const char* name, std::uint32_t tid, std::uint32_t depth,
              std::uint64_t startUs, std::uint64_t durUs);

  using Clock = std::chrono::steady_clock;
  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> spans_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::uint32_t nextTid_ = 0;
  std::uint64_t nextSeq_ = 0;
};

/// RAII attachment of a Collector to the calling thread. Restores the
/// previous attachment (usually none) on destruction, so scopes nest.
/// Passing nullptr is a no-op scope — convenient for forwarding a parent
/// thread's possibly-absent collector into worker threads.
class Use {
 public:
  explicit Use(Collector* c) : saved_(detail::tlsState) {
    if (c == nullptr) return;
    // Re-attaching the thread's current collector keeps its tid and depth,
    // so spans keep nesting (the k=1 portfolio runs on the caller's thread).
    if (detail::tlsState.collector == c) return;
    detail::tlsState.collector = c;
    detail::tlsState.tid = c->registerThread();
    detail::tlsState.depth = 0;
  }
  ~Use() { detail::tlsState = saved_; }
  Use(const Use&) = delete;
  Use& operator=(const Use&) = delete;

 private:
  detail::ThreadState saved_;
};

/// RAII span guard; use via TRACE_SPAN. `name` must be a static string
/// (it is stored by pointer — no allocation on the recording path).
class Span {
 public:
  explicit Span(const char* name) {
    Collector* c = active();
    if (c == nullptr) return;
    c_ = c;
    name_ = name;
    startUs_ = c->nowUs();
    depth_ = detail::tlsState.depth++;
  }
  ~Span() {
    if (c_ == nullptr) return;
    --detail::tlsState.depth;
    c_->record(name_, detail::tlsState.tid, depth_, startUs_,
               c_->nowUs() - startUs_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Collector* c_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t startUs_ = 0;
  std::uint32_t depth_ = 0;
};

inline void counterAdd(const char* name, std::uint64_t delta) {
  if (Collector* c = active()) c->addCounter(name, delta);
}
inline void counterSet(const char* name, std::uint64_t value) {
  if (Collector* c = active()) c->setCounter(name, value);
}
inline void counterMax(const char* name, std::uint64_t value) {
  if (Collector* c = active()) c->maxCounter(name, value);
}

// ---- run manifests ----------------------------------------------------------

/// Version of the manifest.json schema (the "schema_version" field).
/// Bump on any breaking change and document the migration in
/// docs/TRACE_FORMAT.md.
constexpr int kManifestSchemaVersion = 1;

/// `git describe --always --dirty` of the tree this binary was configured
/// from ("unknown" outside a git checkout) — baked in at configure time so
/// every manifest records its provenance.
const char* gitDescribe();

/// Everything a per-run manifest records besides the live trace counters.
/// support/ cannot name core::Verdict or the model configs, so the caller
/// flattens them into strings/numbers; core::cellManifestData() does this
/// for verification cells.
struct ManifestData {
  std::string tool;                   // e.g. "velev_verify", a bench name
  /// Free-form configuration block ("rob_size": "8", "strategy": ...);
  /// numeric-looking values are emitted as JSON numbers.
  std::vector<std::pair<std::string, std::string>> config;
  double budgetWallSeconds = 0;       // 0 = unlimited
  std::uint64_t budgetMemoryBytes = 0;
  std::int64_t budgetSatConflicts = -1;
  std::string verdict;
  std::string reason;                 // omitted when empty
  std::vector<std::pair<std::string, double>> stageSeconds;
  std::uint64_t peakArenaBytes = 0;
  std::uint64_t rssHighWaterKb = 0;
  /// Paper-aligned counter block (core::reportCounters). Merged with the
  /// collector's live counters; on a name collision these values win.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Write the versioned per-run manifest. `collector` may be null (manifest
/// without a live trace, e.g. from the benches); when given, its counters
/// are merged under "counters" and its span total under "traced_threads".
void writeManifest(std::ostream& os, const ManifestData& m,
                   const Collector* collector);

}  // namespace velev::trace

// Span/counter convenience macros. TRACE_SPAN opens a scope-long span on
// the thread's active collector; both compile to a thread-local read and a
// branch when tracing is off.
#define VELEV_TRACE_CAT2(a, b) a##b
#define VELEV_TRACE_CAT(a, b) VELEV_TRACE_CAT2(a, b)
#define TRACE_SPAN(name) \
  ::velev::trace::Span VELEV_TRACE_CAT(velevTraceSpan_, __LINE__)(name)
#define TRACE_COUNTER(name, delta) ::velev::trace::counterAdd(name, delta)
