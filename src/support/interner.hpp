// String interner: maps names (signal names, variable names, function symbol
// names) to dense 32-bit ids and back. The expression DAG and the netlist
// store only ids, keeping nodes small and comparisons O(1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace velev {

class StringInterner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalid = 0xffffffffu;

  /// Intern `s`, returning its dense id (existing id if already interned).
  Id intern(std::string_view s) {
    auto it = map_.find(std::string(s));
    if (it != map_.end()) return it->second;
    const Id id = static_cast<Id>(strings_.size());
    strings_.emplace_back(s);
    map_.emplace(strings_.back(), id);
    return id;
  }

  /// Look up an already-interned string; returns kInvalid if absent.
  Id find(std::string_view s) const {
    auto it = map_.find(std::string(s));
    return it == map_.end() ? kInvalid : it->second;
  }

  const std::string& str(Id id) const {
    VELEV_CHECK(id < strings_.size());
    return strings_[id];
  }

  std::size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Id> map_;
};

}  // namespace velev
