#include "support/json.hpp"

#include <cctype>
#include <cstdlib>

namespace velev {

namespace {

/// Recursive-descent JSON reader over a string_view. Depth-limited so a
/// hostile (or truncated) file cannot overflow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!value(v, 0) || (skipWs(), pos_ != text_.size())) {
      if (pos_ == text_.size() && err_.empty()) err_ = "trailing garbage";
      if (error != nullptr)
        *error = "offset " + std::to_string(pos_) + ": " +
                 (err_.empty() ? "malformed JSON" : err_);
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    if (err_.empty()) err_ = what;
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skipWs();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out.type = JsonValue::Type::String;
        return string(out.string);
      case 't':
        out.type = JsonValue::Type::Bool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.type = JsonValue::Type::Bool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.type = JsonValue::Type::Null;
        return literal("null") || fail("bad literal");
      default: return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Object;
    ++pos_;  // '{'
    if (consume('}')) return true;
    while (true) {
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Array;
    ++pos_;  // '['
    if (consume(']')) return true;
    while (true) {
      JsonValue elem;
      if (!value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are not combined
          // — the writer never emits code points above U+001F).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return fail("malformed number");
    out.type = JsonValue::Type::Number;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

std::optional<JsonValue> parseJson(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace velev
