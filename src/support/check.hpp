// Lightweight runtime-checked assertions used across the library.
//
// VELEV_CHECK is active in all build types: the verification pipeline relies
// on structural invariants (e.g. that an extracted update chain really has
// the ITE(ctx, write(prev,a,d), prev) shape), and silently continuing after
// a violated invariant could turn a sound verifier into an unsound one.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace velev {

/// Thrown when an internal invariant is violated.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace velev

#define VELEV_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond))                                                     \
      ::velev::detail::checkFailed(#cond, __FILE__, __LINE__, "");   \
  } while (0)

#define VELEV_CHECK_MSG(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream velev_os_;                                  \
      velev_os_ << msg;                                              \
      ::velev::detail::checkFailed(#cond, __FILE__, __LINE__,        \
                                   velev_os_.str());                 \
    }                                                                \
  } while (0)

#define VELEV_UNREACHABLE(msg)                                       \
  ::velev::detail::checkFailed("unreachable", __FILE__, __LINE__, msg)
