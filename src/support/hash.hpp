// Hash utilities: stable 64-bit mixing for hash-consing the expression DAG.
#pragma once

#include <cstdint>
#include <initializer_list>

namespace velev {

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a hash with a new value (order-sensitive).
constexpr std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Hash a short fixed sequence of 64-bit values.
constexpr std::uint64_t hashValues(std::initializer_list<std::uint64_t> vs) {
  std::uint64_t h = 0x51a2b3c4d5e6f708ULL;
  for (auto v : vs) h = hashCombine(h, v);
  return h;
}

}  // namespace velev
