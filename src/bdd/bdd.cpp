#include "bdd/bdd.hpp"

#include <algorithm>
#include <numeric>

#include "support/budget.hpp"
#include "support/trace.hpp"

namespace velev::bdd {

namespace {

constexpr std::size_t kInitialCacheSize = 1u << 12;  // entries, power of two

}  // namespace

BddManager::BddManager() {
  nodes_.push_back(Node{});  // node 0: the TRUE terminal
  cache_.resize(kInitialCacheSize);
}

unsigned BddManager::mkVar() {
  const unsigned v = numVars();
  var2level_.push_back(v);
  level2var_.push_back(v);
  subtables_.emplace_back();
  subtables_.back().buckets.assign(4, kNil);
  return v;
}

BddRef BddManager::varRef(unsigned v) {
  VELEV_CHECK(v < numVars());
  return mkNode(v, kFalse, kTrue);
}

// ---- unique table -----------------------------------------------------------

std::uint32_t BddManager::allocNode() {
  budgetCheckpoint();
  // Mid-operation growth escape hatch: the between-operations trigger
  // (maybeReorder) cannot act while an ITE is recursing, so once the table
  // outgrows the abort limit the operation is aborted for a reorder and
  // retried by the caller. Suppressed during swaps — sift() itself interns
  // the rewritten cofactors through here.
  if (reorderThreshold_ != 0 && !inSwap_ && liveNodes_ >= abortLimit_)
    throw ReorderRequest{};
  std::uint32_t n;
  if (freeHead_ != kNil) {
    n = freeHead_;
    freeHead_ = nodes_[n].next;
  } else {
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  ++liveNodes_;
  stats_.nodesPeak = std::max<std::uint64_t>(stats_.nodesPeak, liveNodes_);
  if (!siftRef_.empty() && n >= siftRef_.size()) siftRef_.resize(n + 1, 0);
  return n;
}

void BddManager::growBuckets(SubTable& t) {
  std::vector<std::uint32_t> old = std::move(t.buckets);
  t.buckets.assign(old.size() * 2, kNil);
  const std::size_t mask = t.buckets.size() - 1;
  for (std::uint32_t head : old) {
    while (head != kNil) {
      const std::uint32_t next = nodes_[head].next;
      const std::size_t b = hashPair(nodes_[head].lo, nodes_[head].hi) & mask;
      nodes_[head].next = t.buckets[b];
      t.buckets[b] = head;
      head = next;
    }
  }
}

std::uint32_t BddManager::intern(unsigned var, BddRef lo, BddRef hi) {
  VELEV_CHECK(!isComplement(hi));
  SubTable& t = subtables_[var];
  std::size_t b = hashPair(lo, hi) & (t.buckets.size() - 1);
  for (std::uint32_t n = t.buckets[b]; n != kNil; n = nodes_[n].next)
    if (nodes_[n].lo == lo && nodes_[n].hi == hi) return n;

  const std::uint32_t n = allocNode();
  if (t.count >= t.buckets.size() - t.buckets.size() / 4) {
    growBuckets(t);
    b = hashPair(lo, hi) & (t.buckets.size() - 1);
  }
  nodes_[n] = Node{var, lo, hi, t.buckets[b]};
  t.buckets[b] = n;
  ++t.count;
  maybeGrowCache();
  return n;
}

BddRef BddManager::mkNode(unsigned var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  // Canonical form: the hi edge must be regular. A complemented hi edge is
  // pushed onto the node's own ref: (v ? ¬a : b) == ¬(v ? a : ¬b).
  if (isComplement(hi))
    return negate(intern(var, negate(lo), negate(hi)) << 1);
  return intern(var, lo, hi) << 1;
}

// ---- ITE --------------------------------------------------------------------

BddRef BddManager::cofactor(BddRef f, unsigned level, bool value) const {
  const Node& n = nodes_[nodeOf(f)];
  if (n.var == kTerminalVar || var2level_[n.var] != level) return f;
  const BddRef child = value ? n.hi : n.lo;
  return isComplement(f) ? negate(child) : child;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  return iteRec(f, g, h);
}

BddRef BddManager::iteRec(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return negate(f);
  if (f == g) g = kTrue;
  else if (f == negate(g)) g = kFalse;
  if (f == h) h = kFalse;
  else if (f == negate(h)) h = kTrue;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return negate(f);

  // Normalize for the cache: regular f (swap branches), then regular g
  // (complement the result) — the two rules that keep ITE canonical under
  // complement edges.
  if (isComplement(f)) {
    f = negate(f);
    std::swap(g, h);
  }
  bool complementResult = false;
  if (isComplement(g)) {
    complementResult = true;
    g = negate(g);
    h = negate(h);
  }

  ++stats_.cacheLookups;
  const std::size_t slot =
      (hashPair(f, g) ^ hashPair(h, 0x9e3779b9u)) & (cache_.size() - 1);
  {
    const CacheEntry& e = cache_[slot];
    if (e.f == f && e.g == g && e.h == h) {
      ++stats_.cacheHits;
      return complementResult ? negate(e.result) : e.result;
    }
  }

  const unsigned level =
      std::min({topLevel(f), topLevel(g), topLevel(h)});
  VELEV_CHECK(level != kNoLevel);
  const BddRef r0 = iteRec(cofactor(f, level, false), cofactor(g, level, false),
                           cofactor(h, level, false));
  const BddRef r1 = iteRec(cofactor(f, level, true), cofactor(g, level, true),
                           cofactor(h, level, true));
  const BddRef r = mkNode(level2var_[level], r0, r1);

  cache_[slot] = CacheEntry{f, g, h, r};
  return complementResult ? negate(r) : r;
}

void BddManager::clearCache() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
}

void BddManager::maybeGrowCache() {
  // Keep the lossy cache proportioned to the node count; stale entries are
  // dropped (they are only ever an optimization).
  if (liveNodes_ < cache_.size() * 4) return;
  cache_.assign(cache_.size() * 2, CacheEntry{});
}

// ---- evaluation and paths ---------------------------------------------------

bool BddManager::eval(BddRef r, const std::vector<bool>& assignment) const {
  bool complement = false;
  while (nodeOf(r) != 0) {
    complement ^= isComplement(r);
    const Node& n = nodes_[nodeOf(r)];
    VELEV_CHECK(n.var < assignment.size());
    r = assignment[n.var] ? n.hi : n.lo;
  }
  return !(complement ^ isComplement(r));
}

std::vector<std::pair<unsigned, bool>> BddManager::satOnePath(BddRef r) const {
  VELEV_CHECK_MSG(r != kFalse, "satOnePath on the false terminal");
  std::vector<std::pair<unsigned, bool>> path;
  bool complement = false;
  while (nodeOf(r) != 0) {
    complement ^= isComplement(r);
    const Node& n = nodes_[nodeOf(r)];
    // Take the hi branch unless it is the (parity-adjusted) false terminal.
    // Both branches cannot be false: the node would be constant and hence
    // reduced away.
    const bool hiFalse =
        nodeOf(n.hi) == 0 && (complement ^ isComplement(n.hi));
    const bool value = !hiFalse;
    path.emplace_back(n.var, value);
    r = value ? n.hi : n.lo;
  }
  VELEV_CHECK(!(complement ^ isComplement(r)));
  return path;
}

std::uint64_t BddManager::countNodes(BddRef r) const {
  std::vector<std::uint8_t> marks(nodes_.size(), 0);
  markCone(r, marks);
  std::uint64_t n = 0;
  for (std::size_t i = 1; i < marks.size(); ++i) n += marks[i];
  return n;
}

// ---- garbage collection -----------------------------------------------------

void BddManager::protect(BddRef r) { ++protected_[nodeOf(r)]; }

void BddManager::unprotect(BddRef r) {
  auto it = protected_.find(nodeOf(r));
  VELEV_CHECK_MSG(it != protected_.end(), "unprotect of an unprotected ref");
  if (--it->second == 0) protected_.erase(it);
}

void BddManager::markCone(BddRef r, std::vector<std::uint8_t>& marks) const {
  std::vector<std::uint32_t> stack{nodeOf(r)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (marks[n]) continue;
    marks[n] = 1;
    if (n == 0) continue;
    stack.push_back(nodeOf(nodes_[n].lo));
    stack.push_back(nodeOf(nodes_[n].hi));
  }
}

std::size_t BddManager::gc(std::span<const BddRef> extraRoots) {
  ++stats_.gcRuns;
  std::vector<std::uint8_t> marks(nodes_.size(), 0);
  marks[0] = 1;
  for (const auto& [node, count] : protected_) markCone(node << 1, marks);
  for (const BddRef r : extraRoots) markCone(r, marks);

  std::size_t freed = 0;
  for (unsigned v = 0; v < numVars(); ++v) {
    SubTable& t = subtables_[v];
    for (std::uint32_t& head : t.buckets) {
      std::uint32_t* link = &head;
      while (*link != kNil) {
        const std::uint32_t n = *link;
        if (marks[n]) {
          link = &nodes_[n].next;
          continue;
        }
        *link = nodes_[n].next;
        nodes_[n] = Node{kFreeVar, kTrue, kTrue, freeHead_};
        freeHead_ = n;
        --t.count;
        --liveNodes_;
        ++freed;
      }
    }
  }
  stats_.nodesFreed += freed;
  lastGcLive_ = liveNodes_;
  // Cached triples may name swept nodes; results are function-level, so
  // only liveness forces the flush.
  clearCache();
  return freed;
}

// ---- sifting ----------------------------------------------------------------

void BddManager::swapLevels(unsigned level) {
  const unsigned u = level2var_[level];      // upper variable, moving down
  const unsigned v = level2var_[level + 1];  // lower variable, moving up
  ++stats_.swaps;

  // Collect the u-nodes first: rewriting interns new u-nodes into the same
  // subtable, and the rewritten ones move to v's.
  std::vector<std::uint32_t> uNodes;
  uNodes.reserve(subtables_[u].count);
  for (const std::uint32_t head : subtables_[u].buckets)
    for (std::uint32_t n = head; n != kNil; n = nodes_[n].next)
      uNodes.push_back(n);

  const bool wasInSwap = inSwap_;
  inSwap_ = true;
  for (const std::uint32_t n : uNodes) {
    const BddRef f0 = nodes_[n].lo, f1 = nodes_[n].hi;
    const bool loDepends =
        nodes_[nodeOf(f0)].var == v;
    const bool hiDepends = nodes_[nodeOf(f1)].var == v;
    if (!loDepends && !hiDepends) continue;  // independent of v: unchanged

    // Cofactors of the children with respect to v (level + 1).
    auto cof = [&](BddRef f, bool val) -> BddRef {
      const Node& c = nodes_[nodeOf(f)];
      if (c.var != v) return f;
      const BddRef child = val ? c.hi : c.lo;
      return isComplement(f) ? negate(child) : child;
    };

    // Unlink n from u's subtable before interning the replacement children
    // (they may collide with n's old (lo, hi) shape otherwise only by
    // accident of hashing — unlinking first keeps the walk simple).
    SubTable& ut = subtables_[u];
    const std::size_t b = hashPair(f0, f1) & (ut.buckets.size() - 1);
    std::uint32_t* link = &ut.buckets[b];
    while (*link != n) link = &nodes_[*link].next;
    *link = nodes_[n].next;
    --ut.count;
    --liveNodes_;  // allocNode()-style accounting: n is re-linked below

    // f == (v ? (u ? f1|v=1 : f0|v=1) : (u ? f1|v=0 : f0|v=0)).
    const BddRef g0 = mkNode(u, cof(f0, false), cof(f1, false));
    const BddRef g1 = mkNode(u, cof(f0, true), cof(f1, true));
    // g1 is f|v=1 of a regular node: it evaluates to 1 at the all-ones
    // point, so its canonical ref is regular — the in-place rewrite never
    // needs to flip a parent's stored edge.
    VELEV_CHECK(!isComplement(g1));

    SubTable& vt = subtables_[v];
    const std::size_t vb = hashPair(g0, g1) & (vt.buckets.size() - 1);
    nodes_[n] = Node{v, g0, g1, vt.buckets[vb]};
    vt.buckets[vb] = n;
    ++vt.count;
    ++liveNodes_;
    if (vt.count >= vt.buckets.size() - vt.buckets.size() / 4)
      growBuckets(vt);

    // Keep the sift-time parent counts exact: n now references the
    // rewritten cofactors instead of its old children (incRef first, so a
    // shared node never transiently dies and resurrects).
    if (!siftRef_.empty()) {
      siftIncRef(nodeOf(g0));
      siftIncRef(nodeOf(g1));
      siftDecRef(nodeOf(f0));
      siftDecRef(nodeOf(f1));
    }
  }
  inSwap_ = wasInSwap;

  std::swap(level2var_[level], level2var_[level + 1]);
  var2level_[u] = level + 1;
  var2level_[v] = level;
}

void BddManager::moveVarToLevel(unsigned v, unsigned target) {
  while (var2level_[v] < target) swapLevels(var2level_[v]);
  while (var2level_[v] > target) swapLevels(var2level_[v] - 1);
}

void BddManager::buildSiftRefs(std::span<const BddRef> extraRoots) {
  siftRef_.assign(nodes_.size(), 0);
  siftLive_ = liveNodes_;
  for (const SubTable& t : subtables_)
    for (const std::uint32_t head : t.buckets)
      for (std::uint32_t n = head; n != kNil; n = nodes_[n].next) {
        ++siftRef_[nodeOf(nodes_[n].lo)];
        ++siftRef_[nodeOf(nodes_[n].hi)];
      }
  for (const auto& [node, count] : protected_) siftRef_[node] += count;
  for (const BddRef r : extraRoots) ++siftRef_[nodeOf(r)];
}

void BddManager::siftIncRef(std::uint32_t n) {
  if (n == 0) return;  // the terminal is permanent
  if (siftRef_[n]++ == 0) {
    // Resurrection (an orphan re-found by intern) or a freshly interned
    // node — either way it re-enters the reachable set, children included.
    ++siftLive_;
    siftIncRef(nodeOf(nodes_[n].lo));
    siftIncRef(nodeOf(nodes_[n].hi));
  }
}

void BddManager::siftDecRef(std::uint32_t n) {
  if (n == 0) return;
  if (--siftRef_[n] == 0) {
    --siftLive_;
    siftDecRef(nodeOf(nodes_[n].lo));
    siftDecRef(nodeOf(nodes_[n].hi));
  }
}

void BddManager::sift(std::span<const BddRef> extraRoots) {
  TRACE_SPAN("bdd.reorder");
  ++stats_.reorderings;

  // Start from a clean table, then track the *exact* reachable-node count
  // through every swap with transient parent counts (buildSiftRefs): swaps
  // orphan the rewritten nodes' old children, which stay in the table until
  // gc, so any allocated-minus-freed counter drifts upward with garbage and
  // would bias every journey toward wherever the variable started.
  gc(extraRoots);

  // Largest subtables first — the classic sifting schedule. Only the
  // biggest ones are worth a journey: each journey costs two traversals of
  // the whole order, and the small subtables at the tail cannot move the
  // total either way (CUDD bounds its passes the same way).
  std::vector<unsigned> order(numVars());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return subtables_[a].count > subtables_[b].count ||
           (subtables_[a].count == subtables_[b].count && a < b);
  });
  constexpr std::size_t kMaxJourneys = 48;
  if (order.size() > kMaxJourneys) order.resize(kMaxJourneys);

  buildSiftRefs(extraRoots);
  const std::uint64_t globalStart = siftLive_;
  const unsigned maxLevel = numVars() - 1;
  try {
    for (const unsigned v : order) {
      if (subtables_[v].count == 0) continue;
      // The parent counts make the metric immune to garbage, but the arena
      // still fills with orphans; reclaim them once they dominate (freed
      // nodes carry a zero count, so the refs stay valid across a gc).
      if (liveNodes_ >= 2 * siftLive_) gc(extraRoots);
      // Give up on the pass entirely if the table doubled for real: a
      // sifting schedule that grows the BDD is not worth finishing.
      if (siftLive_ > 2 * globalStart) break;
      const std::uint64_t startSize = siftLive_;
      std::uint64_t bestSize = startSize;
      unsigned bestLevel = var2level_[v];

      // Down to the bottom, then up to the top, tracking the best position;
      // abort a direction when the live size doubles.
      while (var2level_[v] < maxLevel) {
        swapLevels(var2level_[v]);
        if (siftLive_ < bestSize) {
          bestSize = siftLive_;
          bestLevel = var2level_[v];
        }
        if (siftLive_ > 2 * startSize) break;
        if (budget_ != nullptr)
          budget_->checkpoint(budgetSource_, memoryBytes());
      }
      while (var2level_[v] > 0) {
        swapLevels(var2level_[v] - 1);
        if (siftLive_ < bestSize) {
          bestSize = siftLive_;
          bestLevel = var2level_[v];
        }
        if (siftLive_ > 2 * startSize) break;
        if (budget_ != nullptr)
          budget_->checkpoint(budgetSource_, memoryBytes());
      }
      moveVarToLevel(v, bestLevel);
    }
  } catch (...) {
    siftRef_.clear();  // a BudgetExceeded unwind must not leave refs armed
    throw;
  }
  siftRef_.clear();
}

void BddManager::maybeReorder(std::span<const BddRef> extraRoots) {
  if (!reorderPending()) return;
  gc(extraRoots);
  // Sift only when the *live* structure outgrew the threshold — a table
  // full of garbage says nothing about the order. Gc-only rescues leave
  // the threshold alone; after a sift it re-arms at twice the sifted size
  // (saturating well below the uint32 ref space).
  if (liveNodes_ >= reorderThreshold_) {
    sift(extraRoots);
    gc(extraRoots);  // reclaim the nodes orphaned by the swaps
    reorderThreshold_ = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(1u << 31,
                                std::max<std::uint64_t>(
                                    reorderThreshold_,
                                    std::uint64_t{liveNodes_} * 2)));
    abortLimit_ = std::max(abortLimit_, std::uint64_t{reorderThreshold_} * 4);
  }
}

void BddManager::reorderAfterAbort(std::span<const BddRef> extraRoots) {
  gc(extraRoots);
  sift(extraRoots);
  gc(extraRoots);
  // The retried operation must be allowed to grow past where it aborted,
  // or it would unwind forever: double the limit (and keep headroom over
  // the surviving structure).
  abortLimit_ = std::max(abortLimit_ * 2, std::uint64_t{liveNodes_} * 4);
}

// ---- resources --------------------------------------------------------------

void BddManager::setBudget(BudgetGovernor* governor) {
  budget_ = governor;
  budgetSource_ = governor != nullptr ? governor->registerSource() : -1;
  budgetTick_ = 0;
}

std::size_t BddManager::memoryBytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node) +
                      cache_.capacity() * sizeof(CacheEntry);
  for (const SubTable& t : subtables_)
    bytes += t.buckets.capacity() * sizeof(std::uint32_t);
  return bytes;
}

void BddManager::budgetCheckpoint() {
  // Swaps rewrite nodes in place across two subtables; unwinding there
  // would leave the level maps out of step, so sift() checkpoints between
  // swaps instead.
  if (budget_ == nullptr || inSwap_) return;
  if ((++budgetTick_ & 0xffu) != 0) return;
  budget_->checkpoint(budgetSource_, memoryBytes());
}

// ---- invariants -------------------------------------------------------------

bool BddManager::checkInvariants() const {
  VELEV_CHECK(nodes_[0].var == kTerminalVar);
  std::uint32_t live = 1;
  for (unsigned v = 0; v < numVars(); ++v) {
    VELEV_CHECK(level2var_[var2level_[v]] == v);
    const SubTable& t = subtables_[v];
    std::uint32_t count = 0;
    for (const std::uint32_t head : t.buckets) {
      for (std::uint32_t n = head; n != kNil; n = nodes_[n].next) {
        const Node& node = nodes_[n];
        VELEV_CHECK_MSG(node.var == v, "node in the wrong subtable");
        VELEV_CHECK_MSG(!isComplement(node.hi), "complemented hi edge");
        VELEV_CHECK_MSG(node.lo != node.hi, "unreduced node");
        VELEV_CHECK_MSG(topLevel(node.lo) > var2level_[v],
                        "lo child not strictly below");
        VELEV_CHECK_MSG(topLevel(node.hi) > var2level_[v],
                        "hi child not strictly below");
        // Uniqueness: the first bucket entry with this shape must be n.
        const std::size_t b =
            hashPair(node.lo, node.hi) & (t.buckets.size() - 1);
        std::uint32_t first = t.buckets[b];
        while (nodes_[first].lo != node.lo || nodes_[first].hi != node.hi)
          first = nodes_[first].next;
        VELEV_CHECK_MSG(first == n, "duplicate (var, lo, hi) node");
        ++count;
      }
    }
    VELEV_CHECK_MSG(count == t.count, "subtable count out of sync");
    live += count;
  }
  VELEV_CHECK_MSG(live == liveNodes_, "liveNodes_ out of sync");
  return true;
}

}  // namespace velev::bdd
