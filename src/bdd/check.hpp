// BDD-based validity checking of a propositional correctness formula.
//
// checkValidity() builds the BDD of the *negated* validity target directly
// from the AIG (no Tseitin step) and then accounts for the side clauses
// the CNF flow appends after translation (the chordal transitivity
// constraints over the e_ij variables — without them a satisfying path
// could assign equalities non-transitively and a "counterexample" claim
// would be unsound). The clauses are conjoined *lazily*: a candidate path
// is extracted, only the clauses that path violates are AND-ed in, and the
// loop repeats — eager conjunction of every clause into a large
// falsifiable BDD is the classic blowup, while a violated-only schedule
// ends after a tiny fraction of the clauses. Valid iff the result reaches
// the false terminal; otherwise the first candidate that violates nothing
// is returned as a CNF-variable-indexed model, the exact shape
// sat::solveCnf returns, so the existing src/fuzz decode path (union-find
// over e_ij classes -> term-level counterexample) applies unchanged.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "prop/cnf.hpp"
#include "prop/prop.hpp"
#include "support/budget.hpp"

namespace velev::bdd {

struct CheckOptions {
  /// Governor honored by BDD construction: node allocation checkpoints the
  /// package's logical bytes (deterministic MemOut) and the time stride
  /// (Timeout). Null = ungoverned.
  BudgetGovernor* governor = nullptr;
  /// Live-node count that first triggers gc + sifting (doubling after each
  /// reorder); 0 disables dynamic reordering.
  std::uint32_t reorderThreshold = 1u << 14;
};

enum class CheckStatus {
  Valid,        // the negated formula reduced to the false terminal
  Falsifiable,  // a satisfying path exists — `model` holds one
  Unknown,      // budget exhausted; `tripKind`/`reason` say why
};

struct CheckResult {
  CheckStatus status = CheckStatus::Unknown;
  /// Satisfying assignment indexed by CNF variable (entry 0 unused),
  /// covering the AIG inputs (CNF var i+1 = input i) and the transitivity
  /// fill-in variables; variables off the extracted path default to false.
  /// Empty unless Falsifiable.
  std::vector<bool> model;
  /// Budget trip cause (Unknown only): Memory -> MemOut, Deadline -> Timeout.
  BudgetKind tripKind = BudgetKind::None;
  std::string reason;
  /// Final BDD size of the conjoined formula (0 when Valid).
  std::uint64_t rootNodes = 0;
  /// Manager statistics at completion (nodes peak, cache hits, reorderings).
  BddStats stats;
};

/// Decide validity of `root` over `pctx`, conjoined with `sideClauses`
/// (CNF-variable literals; typically Translation::transitivityClauses()).
/// Emits the bdd.build / bdd.reorder trace spans and the bdd.* counters
/// documented in docs/TRACE_FORMAT.md.
CheckResult checkValidity(const prop::PropCtx& pctx, prop::PLit root,
                          std::span<const prop::Clause> sideClauses,
                          const CheckOptions& opts = {});

}  // namespace velev::bdd
