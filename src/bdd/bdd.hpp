// Shared reduced ordered BDDs (ROBDDs) with complement edges: the second
// propositional decision engine, beside CNF + SAT.
//
// The method's lineage explicitly compares BDD-based and SAT-based
// evaluation of the same e_ij-encoded correctness formulas (Bryant–German–
// Velev; Bryant–Velev, "Boolean Satisfiability with Transitivity
// Constraints"), so the repository carries a from-scratch BDD package as a
// genuinely independent implementation: `core::Engine::Both` runs it beside
// the SAT flow and treats any verdict disagreement as a hard error.
//
// Representation (Brace–Rudell–Bryant):
//   * a BddRef packs (node index << 1) | complement, so negation is free;
//   * node 0 is the single TRUE terminal — kTrue = 0 and kFalse = 1 (note
//     this is the *opposite* polarity convention from prop::PLit, whose
//     node 0 is FALSE);
//   * only the else (lo) edge of a node may be complemented; the then (hi)
//     edge is always regular. Consequence: every regular ref evaluates to 1
//     under the all-ones assignment, which is also why the in-place level
//     swap used by sifting never needs to flip a stored hi edge.
//
// Facilities: per-variable unique subtables (canonicity), ITE with a lossy
// computed-table cache, protect()/unprotect() roots with mark-and-sweep
// garbage collection, and sifting-based dynamic variable reordering behind
// a var<->level indirection. Reordering rewrites nodes in place, so
// outstanding BddRefs (and memo tables keyed by them) stay valid across a
// sift — but mkNode() arguments must be built against the *current* order,
// so automatic reordering only triggers at caller-declared safe points
// (maybeReorder()), never in the middle of an ITE. A single ITE can still
// explode between safe points, so node allocation additionally throws
// ReorderRequest once growth crosses 4x the reorder threshold: callers
// unwind to their safe point (the partial result is unreferenced garbage),
// run maybeReorder() and retry the operation against the sifted order.
//
// Resource governance mirrors prop::PropCtx: attach a BudgetGovernor and
// node allocation checkpoints the package's logical bytes on a stride —
// deterministic MemOut on an arena budget, Timeout on a deadline.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace velev {
class BudgetGovernor;
}  // namespace velev

namespace velev::bdd {

/// (node index << 1) | complement. Node 0 is the TRUE terminal.
using BddRef = std::uint32_t;

constexpr BddRef kTrue = 0;
constexpr BddRef kFalse = 1;

constexpr BddRef negate(BddRef r) { return r ^ 1u; }
constexpr std::uint32_t nodeOf(BddRef r) { return r >> 1; }
constexpr bool isComplement(BddRef r) { return (r & 1u) != 0; }

/// Thrown by node allocation when an operation in flight has grown the
/// table past the abort limit (armed at 4x the reorder threshold) — i.e.
/// past the point where the between-operations trigger could have acted.
/// The partial result is garbage (reclaimed by the next gc()); catch at a
/// safe point, call reorderAfterAbort() and retry. The limit doubles per
/// abort, so retries of an irreducibly large operation make progress until
/// the resource budget trips. Never thrown when reordering is off.
struct ReorderRequest {};

/// Lifetime statistics of one manager (monotone; survive GC and reorder).
struct BddStats {
  std::uint64_t nodesPeak = 0;     // high-water mark of live node count
  std::uint64_t cacheLookups = 0;  // computed-table probes
  std::uint64_t cacheHits = 0;
  std::uint64_t reorderings = 0;   // completed sift passes
  std::uint64_t swaps = 0;         // adjacent-level swaps
  std::uint64_t gcRuns = 0;
  std::uint64_t nodesFreed = 0;    // nodes reclaimed across all GC runs
};

class BddManager {
 public:
  BddManager();
  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // ---- variables and the order ---------------------------------------------
  /// Allocate a fresh variable, appended at the bottom of the current
  /// order. Returns its index (dense, 0-based, stable across reorders).
  unsigned mkVar();
  unsigned numVars() const { return static_cast<unsigned>(var2level_.size()); }
  /// Projection function of variable v.
  BddRef varRef(unsigned v);
  unsigned levelOf(unsigned v) const { return var2level_[v]; }
  unsigned varAtLevel(unsigned level) const { return level2var_[level]; }

  // ---- construction --------------------------------------------------------
  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef mkAnd(BddRef a, BddRef b) { return ite(a, b, kFalse); }
  BddRef mkOr(BddRef a, BddRef b) { return ite(a, kTrue, b); }
  BddRef mkXor(BddRef a, BddRef b) { return ite(a, negate(b), b); }

  // ---- structure -----------------------------------------------------------
  bool isTerminal(BddRef r) const { return nodeOf(r) == 0; }
  unsigned varOf(BddRef r) const { return nodes_[nodeOf(r)].var; }
  /// Stored cofactors of the *positive* node (complement of r not applied).
  BddRef lo(BddRef r) const { return nodes_[nodeOf(r)].lo; }
  BddRef hi(BddRef r) const { return nodes_[nodeOf(r)].hi; }

  /// Evaluate under a full assignment indexed by variable index.
  bool eval(BddRef r, const std::vector<bool>& assignment) const;
  /// One path to TRUE as (variable, value) pairs; r must not be kFalse.
  /// Variables not on the path are unconstrained.
  std::vector<std::pair<unsigned, bool>> satOnePath(BddRef r) const;
  /// Nodes in the cone of r (the terminal excluded).
  std::uint64_t countNodes(BddRef r) const;

  // ---- garbage collection --------------------------------------------------
  /// Reference-counted external roots: a protected ref (and its cone)
  /// survives gc().
  void protect(BddRef r);
  void unprotect(BddRef r);
  /// Mark-and-sweep from the protected roots plus `extraRoots` (a caller's
  /// transient memo table, cheaper than protecting every entry); returns
  /// nodes freed. The computed cache is cleared (it may reference swept
  /// nodes).
  std::size_t gc(std::span<const BddRef> extraRoots = {});

  // ---- dynamic variable reordering -----------------------------------------
  /// One sifting pass: every variable is moved through the whole order by
  /// adjacent-level swaps and parked at its best position (size growth
  /// while travelling is capped at 2x per variable, and the pass bails out
  /// if the whole table doubles). Outstanding refs stay valid — nodes are
  /// rewritten in place — but callers must not be mid-ITE, and because the
  /// pass runs gc() once swap garbage dominates, every ref that must
  /// survive has to be protected or listed in extraRoots.
  void sift(std::span<const BddRef> extraRoots = {});
  /// Arm automatic reordering (0 disables; the default). The threshold is
  /// the *live-after-gc* size that triggers a sift; garbage alone only
  /// triggers gc (paced so at least half the table is dead), never a sift,
  /// and never moves the threshold. After a sift the threshold re-arms at
  /// twice the sifted size, so it tracks genuine growth instead of
  /// ratcheting on garbage. A non-zero threshold also arms the
  /// mid-operation ReorderRequest abort (see reorderAfterAbort()).
  void setReorderThreshold(std::uint32_t liveNodes) {
    reorderThreshold_ = liveNodes;
    lastGcLive_ = liveNodes_;
    abortLimit_ = std::uint64_t{liveNodes} * 4;
  }
  /// Would maybeReorder() act right now? Callers with a transient memo
  /// table check this before materializing the extra-roots vector.
  bool reorderPending() const {
    return reorderThreshold_ != 0 && liveNodes_ >= gcTrigger();
  }
  void maybeReorder(std::span<const BddRef> extraRoots = {});
  /// Recovery path for a ReorderRequest unwind: unconditionally gc + sift
  /// + gc (the abort itself is the evidence that the current order is bad
  /// for the operation in flight, however small the live structure), and
  /// ratchet the abort limit so the retried operation gets room to finish.
  void reorderAfterAbort(std::span<const BddRef> extraRoots = {});

  // ---- resource governance -------------------------------------------------
  /// Attach (or with nullptr, detach) a governor; node allocation then
  /// checkpoints this package's logical bytes on a stride. A budget trip
  /// unwinds as BudgetExceeded out of the ite() in flight; the manager
  /// stays consistent (fully linked nodes only, dead ones await GC).
  void setBudget(BudgetGovernor* governor);
  BudgetGovernor* budgetGovernor() const { return budget_; }
  /// Logical bytes owned by this manager (node arena + subtable buckets +
  /// computed cache). O(numVars).
  std::size_t memoryBytes() const;

  std::uint32_t liveNodes() const { return liveNodes_; }
  const BddStats& stats() const { return stats_; }

  /// Debug/test hook: walk every live node and re-check the structural
  /// invariants (regular hi edge, lo != hi, children strictly below,
  /// subtable membership and uniqueness). Throws InternalError on a
  /// violation; returns true otherwise.
  bool checkInvariants() const;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kTerminalVar = 0xffffffffu;
  static constexpr std::uint32_t kFreeVar = 0xfffffffeu;

  struct Node {
    std::uint32_t var = kTerminalVar;
    BddRef lo = kTrue;
    BddRef hi = kTrue;
    std::uint32_t next = kNil;  // unique-subtable bucket chain / free list
  };

  /// Per-variable unique table: open chaining on (lo, hi).
  struct SubTable {
    std::vector<std::uint32_t> buckets;  // node indices, kNil-terminated
    std::uint32_t count = 0;             // nodes currently labeled this var
  };

  struct CacheEntry {
    BddRef f = kNil, g = kNil, h = kNil, result = kNil;
  };

  /// Level of the top variable of r (terminals live below every level).
  unsigned topLevel(BddRef r) const {
    const std::uint32_t v = nodes_[nodeOf(r)].var;
    return v == kTerminalVar ? kNoLevel : var2level_[v];
  }
  static constexpr unsigned kNoLevel = 0x7fffffffu;

  /// Reduced, canonical (var, lo, hi) node — handles the lo == hi collapse
  /// and pushes a complemented hi edge onto the result ref.
  BddRef mkNode(unsigned var, BddRef lo, BddRef hi);
  /// Hash-cons (var, lo, hi) with a regular hi edge.
  std::uint32_t intern(unsigned var, BddRef lo, BddRef hi);
  std::uint32_t allocNode();
  void growBuckets(SubTable& t);
  static std::size_t hashPair(BddRef lo, BddRef hi) {
    std::uint64_t x = (static_cast<std::uint64_t>(lo) << 32) | hi;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

  BddRef iteRec(BddRef f, BddRef g, BddRef h);
  /// Cofactor of f with respect to the variable at level `level`.
  BddRef cofactor(BddRef f, unsigned level, bool value) const;

  /// Swap the variables at levels `level` and `level + 1` by rewriting the
  /// affected upper-level nodes in place. Returns nothing; liveNodes_ grows
  /// by the nodes interned for the rewritten cofactors (dead lower nodes
  /// are reclaimed by the next gc()).
  void swapLevels(unsigned level);
  /// Move variable v from its current level to `target` by adjacent swaps.
  void moveVarToLevel(unsigned v, unsigned target);

  void markCone(BddRef r, std::vector<std::uint8_t>& marks) const;
  void clearCache();
  void maybeGrowCache();
  void budgetCheckpoint();

  /// Transient parent counts, alive only inside sift(): swap rewrites
  /// maintain them so `siftLive_` is the *exact* reachable-node count at
  /// every candidate position. Plain allocated-minus-freed counters cannot
  /// serve as the sifting metric — swaps orphan nodes that stay in the
  /// table until gc, which inflates the measurement past any true
  /// improvement and blinds the hill climb.
  void buildSiftRefs(std::span<const BddRef> extraRoots);
  void siftIncRef(std::uint32_t n);
  void siftDecRef(std::uint32_t n);

  std::vector<Node> nodes_;
  std::vector<SubTable> subtables_;     // by variable index
  std::vector<unsigned> var2level_;
  std::vector<unsigned> level2var_;
  std::uint32_t freeHead_ = kNil;
  std::uint32_t liveNodes_ = 1;         // the terminal
  std::vector<CacheEntry> cache_;       // direct-mapped, lossy
  std::unordered_map<std::uint32_t, std::uint32_t> protected_;  // node -> count

  std::uint32_t reorderThreshold_ = 0;  // live-after-gc sift trigger; 0 = off
  std::uint32_t lastGcLive_ = 1;        // live count after the last gc
  std::uint64_t abortLimit_ = 0;        // mid-operation ReorderRequest trigger
  bool inSwap_ = false;                 // suppress unwinding mid-swap

  std::vector<std::uint32_t> siftRef_;  // node -> parent count; sift-only
  std::uint64_t siftLive_ = 0;          // exact reachable count while sifting

  /// Total node count that warrants a gc: the sift threshold, or twice the
  /// last post-gc live count — whichever is larger, so back-to-back gcs
  /// always have at least half the table dead to reclaim.
  std::uint64_t gcTrigger() const {
    return std::max<std::uint64_t>(reorderThreshold_,
                                   std::uint64_t{lastGcLive_} * 2);
  }

  BudgetGovernor* budget_ = nullptr;
  int budgetSource_ = -1;
  std::uint32_t budgetTick_ = 0;

  BddStats stats_;
};

}  // namespace velev::bdd
