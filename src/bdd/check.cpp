#include "bdd/check.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/trace.hpp"

namespace velev::bdd {

namespace {

constexpr BddRef kUnbuilt = 0xffffffffu;

/// Post-order of the cone of `root` over the AIG (vars and constants
/// included, each node once).
std::vector<std::uint32_t> coneTopo(const prop::PropCtx& pctx,
                                    prop::PLit root) {
  std::vector<std::uint32_t> order;
  std::vector<std::uint8_t> state(pctx.numNodes(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::uint32_t> stack{prop::nodeOf(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (state[n] == 2) {
      stack.pop_back();
      continue;
    }
    if (!pctx.isAndNode(n)) {  // input variable or the constant node
      state[n] = 2;
      order.push_back(n);
      stack.pop_back();
      continue;
    }
    if (state[n] == 0) {
      state[n] = 1;
      for (const prop::PLit child : {pctx.andLeft(n), pctx.andRight(n)}) {
        const std::uint32_t c = prop::nodeOf(child);
        if (state[c] != 2) stack.push_back(c);
      }
    } else {
      state[n] = 2;
      order.push_back(n);
      stack.pop_back();
    }
  }
  return order;
}

/// Builds BDDs bottom-up over the AIG cone with a fanout-counted memo:
/// an entry is dropped as soon as its last consumer is built, so gc() at a
/// reorder point reclaims everything genuinely dead.
class ConeBuilder {
 public:
  ConeBuilder(const prop::PropCtx& pctx, BddManager& mgr)
      : pctx_(pctx), mgr_(mgr), memo_(pctx.numNodes(), kUnbuilt) {}

  BddRef build(prop::PLit root) {
    const std::vector<std::uint32_t> order = coneTopo(pctx_, root);
    std::vector<std::uint32_t> fanout(pctx_.numNodes(), 0);
    for (const std::uint32_t n : order)
      if (pctx_.isAndNode(n)) {
        ++fanout[prop::nodeOf(pctx_.andLeft(n))];
        ++fanout[prop::nodeOf(pctx_.andRight(n))];
      }
    ++fanout[prop::nodeOf(root)];  // keep the root alive throughout

    for (const std::uint32_t n : order) {
      if (n == 0) {
        memo_[n] = kFalse;  // prop node 0 is the constant FALSE
        continue;
      }
      if (pctx_.isVarNode(n)) {
        memo_[n] = withReorderRetry(
            [&] { return mgr_.varRef(pctx_.varIndex(n)); });
        continue;
      }
      const prop::PLit la = pctx_.andLeft(n), lb = pctx_.andRight(n);
      memo_[n] = withReorderRetry(
          [&] { return mgr_.mkAnd(litRef(la), litRef(lb)); });
      for (const prop::PLit child : {la, lb}) {
        const std::uint32_t c = prop::nodeOf(child);
        if (--fanout[c] == 0) memo_[c] = kUnbuilt;  // last consumer built
      }
      if (mgr_.reorderPending()) mgr_.maybeReorder(liveRoots());
    }
    return litRef(root);
  }

 private:
  /// Runs one BDD operation, reordering and retrying on a mid-operation
  /// abort. The memo survives the sift (refs are stable), so only the
  /// aborted operation's own work is redone — against the better order.
  template <class F>
  BddRef withReorderRetry(F&& op) {
    for (;;) {
      try {
        return op();
      } catch (const ReorderRequest&) {
        mgr_.reorderAfterAbort(liveRoots());
      }
    }
  }

  BddRef litRef(prop::PLit l) const {
    const BddRef r = memo_[prop::nodeOf(l)];
    VELEV_CHECK(r != kUnbuilt);
    return prop::isNegated(l) ? negate(r) : r;
  }

  std::vector<BddRef> liveRoots() const {
    std::vector<BddRef> roots;
    for (const BddRef r : memo_)
      if (r != kUnbuilt) roots.push_back(r);
    return roots;
  }

  const prop::PropCtx& pctx_;
  BddManager& mgr_;
  std::vector<BddRef> memo_;
};

void publishCounters(const BddManager& mgr) {
  namespace tr = velev::trace;
  if (tr::active() == nullptr) return;
  const BddStats& s = mgr.stats();
  tr::counterMax("bdd.nodes_peak", s.nodesPeak);
  tr::counterSet("bdd.cache_hits", s.cacheHits);
  tr::counterSet("bdd.cache_lookups", s.cacheLookups);
  tr::counterSet("bdd.reorderings", s.reorderings);
  tr::counterSet("bdd.gc_runs", s.gcRuns);
}

}  // namespace

CheckResult checkValidity(const prop::PropCtx& pctx, prop::PLit root,
                          std::span<const prop::Clause> sideClauses,
                          const CheckOptions& opts) {
  CheckResult res;
  BddManager mgr;
  mgr.setBudget(opts.governor);
  mgr.setReorderThreshold(opts.reorderThreshold);

  const unsigned numInputs = pctx.numVars();
  for (unsigned i = 0; i < numInputs; ++i) mgr.mkVar();

  // Side-clause variables beyond the AIG inputs (the transitivity fill-in
  // edges) get fresh BDD variables at the bottom of the order, on demand.
  std::unordered_map<std::uint32_t, unsigned> extraVar;  // CNF var -> BDD var
  std::vector<std::uint32_t> extraCnf;                   // inverse, dense
  auto bddVarOfCnf = [&](std::uint32_t cnfVar) -> unsigned {
    if (cnfVar - 1 < numInputs) return cnfVar - 1;
    auto [it, fresh] = extraVar.try_emplace(cnfVar, 0u);
    if (fresh) {
      it->second = mgr.mkVar();
      extraCnf.push_back(cnfVar);
    }
    return it->second;
  };

  std::uint32_t maxCnfVar = numInputs;
  for (const prop::Clause& clause : sideClauses)
    for (const prop::CnfLit lit : clause)
      maxCnfVar = std::max(
          maxCnfVar, static_cast<std::uint32_t>(lit < 0 ? -lit : lit));

  try {
    TRACE_SPAN("bdd.build");
    // The design is correct iff ¬root ∧ transitivity is unsatisfiable.
    BddRef f = kFalse;
    {
      ConeBuilder builder(pctx, mgr);
      f = negate(builder.build(root));
      mgr.protect(f);
    }

    // Lazy side-clause conjunction. Eagerly AND-ing every transitivity
    // clause into a large falsifiable BDD restructures it over and over —
    // the classic blowup. Instead: extract a candidate path, conjoin only
    // the clauses that path actually violates, repeat. Correct designs
    // collapse to the false terminal after a few rounds; falsifiable ones
    // terminate the first time a path violates nothing (typically after
    // conjoining a tiny fraction of the clauses). Each round conjoins at
    // least one new clause, so the loop is bounded by the clause count.
    std::vector<std::uint8_t> conjoined(sideClauses.size(), 0);
    for (;;) {
      if (f == kFalse) {
        res.status = CheckStatus::Valid;
        res.model.clear();  // drop the last round's candidate
        res.stats = mgr.stats();
        publishCounters(mgr);
        return res;
      }

      // Candidate model: one satisfying path of f, everything off the
      // path defaulted to false (sound: the path fixes f's value, and the
      // violation check below re-validates every pending clause against
      // exactly this extension).
      res.model.assign(maxCnfVar + 1, false);
      for (const auto& [var, value] : mgr.satOnePath(f)) {
        const std::uint32_t cnfVar =
            var < numInputs ? var + 1 : extraCnf[var - numInputs];
        res.model[cnfVar] = value;
      }

      std::vector<std::size_t> violated;
      for (std::size_t i = 0; i < sideClauses.size(); ++i) {
        if (conjoined[i]) continue;
        bool satisfied = false;
        for (const prop::CnfLit lit : sideClauses[i])
          if (lit < 0 ? !res.model[-lit] : res.model[lit]) {
            satisfied = true;
            break;
          }
        if (!satisfied) violated.push_back(i);
      }
      if (violated.empty()) {
        res.status = CheckStatus::Falsifiable;
        res.rootNodes = mgr.countNodes(f);
        res.stats = mgr.stats();
        publishCounters(mgr);
        return res;
      }

      for (const std::size_t i : violated) {
        if (f == kFalse) break;
        conjoined[i] = 1;
        // f is protected, so on a mid-operation abort the clause partials
        // are the only garbage — reorder and rebuild the clause.
        BddRef next = kFalse;
        for (;;) {
          try {
            BddRef c = kFalse;
            for (const prop::CnfLit lit : sideClauses[i]) {
              const unsigned v = bddVarOfCnf(
                  static_cast<std::uint32_t>(lit < 0 ? -lit : lit));
              const BddRef litRef =
                  lit < 0 ? negate(mgr.varRef(v)) : mgr.varRef(v);
              c = mgr.mkOr(c, litRef);
            }
            next = mgr.mkAnd(f, c);
            break;
          } catch (const ReorderRequest&) {
            mgr.reorderAfterAbort();
          }
        }
        mgr.unprotect(f);
        mgr.protect(next);
        f = next;
        if (mgr.reorderPending()) mgr.maybeReorder();
      }
    }
  } catch (const BudgetExceeded& e) {
    res.model.clear();
    res.stats = mgr.stats();
    publishCounters(mgr);
    res.status = CheckStatus::Unknown;
    res.tripKind = e.kind();
    res.reason = e.what();
    return res;
  }
}

}  // namespace velev::bdd
