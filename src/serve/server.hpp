// VerifyServer: the long-lived verification service behind velev_serve.
//
// WIRE PROTOCOL (documented in docs/SERVICE.md): newline-delimited JSON.
// Each line a client sends is either
//   * a core::VerifyRequest object ("version": 1, rob_size, strategy, ...)
//     — answered, eventually, with one core::VerifyResponse line carrying
//     the same "id"; or
//   * a control op: {"op": "ping"} | {"op": "stats"} | {"op": "shutdown"}
//     — answered immediately with a one-line {"ok": true, ...} object.
// Malformed or invalid lines get an error response ({"error": ..., with
// exit_code 2}) and never tear the connection down. Responses to
// pipelined requests may arrive out of order; match them by "id".
//
// EXECUTION MODEL: requests are validated and admission-clamped on the
// connection's reader thread, then scheduled as jobs. With workers == 0
// the jobs run in-process on a work-stealing verification pool
// (support/thread_pool.hpp); with workers > 0 they are shipped to a
// supervised pool of worker PROCESSES (serve/supervisor.hpp) so a
// verification that aborts or is SIGKILLed costs one worker, never the
// daemon — the supervisor retries in-flight requests on a sibling and
// respawns the slot. Either way each job builds its own eufm::Context and
// arms its own BudgetGovernor from the request's budget (the grid
// runner's one-Context-per-cell rule) — a budget-exhausted job degrades
// into a timeout/memout verdict in the response, exactly like the CLI.
// Results route through the content-addressed ResultCache: identical
// in-flight requests coalesce onto one running job (waiter callbacks, not
// blocking futures — pool workers never wait on sibling jobs), and
// finished results are served as cache hits. Wall-clock Timeout verdicts
// are never cached: whether a deadline trips depends on machine load, so
// freezing one would replay a nondeterministic answer forever.
//
// PERSISTENCE: with cacheDir set, every cacheable result is also appended
// to a serve/journal.hpp segment journal and replayed into the cache at
// construction — a restarted daemon keeps its warm set (same binary only;
// the journal is version-checked).
//
// ADMISSION: beyond the static budget clamps, maxQueueDepth /
// maxPendingSeconds reject NEW work (cache misses about to become jobs)
// when the live backlog is too deep — hits and coalesced joiners are free
// and always served. A rejected request gets an immediate error response;
// nothing is silently dropped.
//
// OBSERVABILITY: the server owns one thread-safe trace::Collector; every
// job runs under it (TRACE_SPAN "serve.job") and the request/cache flow
// counts serve.* counters (names in docs/TRACE_FORMAT.md). The "stats" op
// reports them plus the cache statistics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/journal.hpp"
#include "serve/supervisor.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace velev::serve {

struct ServerOptions {
  /// Unix-domain listening socket path; empty = no unix listener. An
  /// existing file at the path is unlinked (the daemon owns its socket).
  std::string unixSocketPath;
  /// TCP port on 127.0.0.1; -1 = no TCP listener, 0 = ephemeral (read the
  /// bound port back with tcpPort()).
  int tcpPort = -1;
  /// Verification pool workers (clamped to >= 1).
  unsigned jobs = 1;
  /// Result-cache capacity (ready entries; LRU beyond this).
  std::size_t cacheMaxEntries = 1024;
  /// Admission caps, folded into every request BEFORE the cache lookup so
  /// the clamped request is what gets keyed and verified: when > 0, a
  /// request asking for more (or for no limit) is clamped down. 0 = no cap.
  double maxTimeoutSeconds = 0;
  std::uint64_t maxMemoryBudgetBytes = 0;

  /// Worker PROCESSES. 0 = verify in-process on the thread pool (the
  /// pre-shard behaviour); > 0 = ship jobs to a supervised pool of
  /// `workerExecutable --worker` processes (crash isolation + retry).
  unsigned workers = 0;
  /// Binary to spawn as a worker; normally the daemon's own executable
  /// (/proc/self/exe). Required when workers > 0.
  std::string workerExecutable;
  /// Batching lane: group compatible queued requests (same cell modulo
  /// ROB size) onto one worker dispatch. Only meaningful with workers > 0.
  bool batch = false;
  std::size_t maxBatch = 8;
  /// TEST HOOK, forwarded to WorkerPoolOptions::crashAfter.
  int workerCrashAfter = 0;

  /// Persistent-cache directory (serve/journal.hpp); empty = memory-only.
  std::string cacheDir;

  /// Live-load admission (0 = unlimited): reject a new job when this many
  /// are already queued or running...
  std::size_t maxQueueDepth = 0;
  /// ... or when the wall budgets of queued+running jobs already sum past
  /// this (requests with no timeout count 0 seconds but still count depth).
  double maxPendingSeconds = 0;
};

class VerifyServer {
 public:
  explicit VerifyServer(ServerOptions opts);
  ~VerifyServer();  // stop()s

  VerifyServer(const VerifyServer&) = delete;
  VerifyServer& operator=(const VerifyServer&) = delete;

  /// Bind + listen on the configured sockets and start the accept loop.
  /// Returns false (with a reason) when no listener could be set up.
  /// Optional: handleLine() works without start() for in-process use.
  bool start(std::string* error = nullptr);

  /// Tear down: stop accepting, drain connection readers, drain the job
  /// pool (in-flight verifications finish and answer), close connections.
  /// Idempotent; also called by the destructor.
  void stop();

  /// The TCP port actually bound (after start()); -1 without a TCP
  /// listener. With tcpPort=0 this is the kernel-assigned ephemeral port.
  int tcpPort() const { return boundTcpPort_; }

  const ServerOptions& options() const { return opts_; }

  /// Process one request line synchronously and return the one-line JSON
  /// response — the in-process entry the tests and the replay bench drive
  /// (it is exactly what a connection reader does, minus the socket).
  /// Blocks until the job finishes; never call it from a pool worker.
  std::string handleLine(const std::string& line);

  /// Flag the server to shut down (the "shutdown" op calls this). The
  /// daemon's main thread observes it via waitForShutdown() and then
  /// calls stop() — the server never joins its own threads from a
  /// connection thread.
  void requestShutdown();

  /// Block until requestShutdown() is called.
  void waitForShutdown();

  ResultCache::Stats cacheStats() const { return cache_.stats(); }

  /// The server-lifetime collector (serve.* spans and counters).
  const trace::Collector& collector() const { return collector_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex writeMutex;
    std::thread reader;
    std::atomic<bool> open{true};
  };

  /// Async core: clamp, key, claim, maybe schedule. `done` fires exactly
  /// once with the response (possibly on another thread).
  void submit(core::VerifyRequest req, ResultCache::Waiter done);

  /// Run one verification job (in-process pool thread): verify, then
  /// completeJob().
  void runJob(const core::VerifyRequest& req, std::uint64_t key,
              ResultCache::Waiter done);

  /// Owner-job epilogue, shared by the in-process and worker paths:
  /// release admission, settle the cache (fulfill or abandon), persist to
  /// the journal when cacheable, answer the owner. Fires exactly once per
  /// admitted job.
  void completeJob(const core::VerifyRequest& req, std::uint64_t key,
                   const core::VerifyResponse& resp,
                   const ResultCache::Waiter& done);

  /// Live-load admission for a new Owner job; false = reject (the caller
  /// answers with an error and abandons the cache claim).
  bool admitJob(const core::VerifyRequest& req);
  void releaseJob(const core::VerifyRequest& req);

  /// Dispatch one wire line: control op (returns the response inline) or
  /// verify request (answers through `done`; returns empty string).
  std::string dispatchLine(const std::string& line, ResultCache::Waiter done);

  std::string controlResponse(const std::string& op);

  void acceptLoop();
  void readerLoop(Connection* conn);
  void writeLine(Connection* conn, const std::string& line);

  ServerOptions opts_;
  ResultCache cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<CacheJournal> journal_;
  std::unique_ptr<WorkerPool> workerPool_;
  /// Non-empty when workers > 0 was requested but the pool could not be
  /// started: start() fails with it, and submits answer it as an error.
  std::string poolError_;
  trace::Collector collector_;

  std::mutex admissionMutex_;
  std::size_t pendingJobs_ = 0;     // admitted, not yet completed
  double pendingSeconds_ = 0;       // their summed effective wall budgets

  int unixFd_ = -1;
  int tcpFd_ = -1;
  int boundTcpPort_ = -1;
  std::thread acceptThread_;
  std::atomic<bool> stopAccept_{false};
  /// Set once connection readers are drained; submits turn into shutdown
  /// errors from then on (nothing may be queued behind a draining pool).
  std::atomic<bool> stopJobs_{false};
  std::atomic<bool> stopped_{false};

  std::mutex connMutex_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex shutdownMutex_;
  std::condition_variable shutdownCv_;
  bool shutdownRequested_ = false;
};

}  // namespace velev::serve
