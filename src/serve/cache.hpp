// Content-addressed result cache of the velev_serve daemon.
//
// Keys are core::VerifyRequest::cacheKey(): a hash of the canonical
// (id-free) request JSON mixed with the code version, so identical cells
// verified by the same binary share one entry and a rebuilt binary never
// serves a stale verdict.
//
// The cache has three answers to "who computes this key?":
//   * Hit     — a finished response is stored; the caller gets a copy
//               (marked cached=true) immediately;
//   * Owner   — nobody is on it; the caller MUST eventually fulfill() or
//               abandon() the key (the entry is in-flight until then);
//   * Joined  — another caller is already computing it; the caller's
//               waiter callback was registered and fires when the owner
//               fulfills (or abandons) — concurrent identical requests
//               coalesce onto ONE running job.
//
// Waiters are callbacks, not blocking futures, on purpose: jobs execute on
// the verification thread pool, and a pool worker blocking on a sibling
// job's future is a deadlock waiting for a full pool. fulfill() invokes
// the waiters OUTSIDE the cache lock (a waiter writes to a socket or
// fulfills a promise — never reenters the cache).
//
// Not every outcome is cacheable: the daemon never stores wall-clock
// Timeout verdicts (whether a deadline trips depends on machine load, so
// replaying one from the cache would freeze a nondeterministic answer);
// see VerifyServer for the policy. An uncacheable fulfill still wakes the
// coalesced waiters with the fresh result — it just leaves no entry.
//
// Eviction is LRU over READY entries only, bounded by maxEntries;
// in-flight entries are never evicted (their owner holds the key).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/request.hpp"

namespace velev::serve {

class ResultCache {
 public:
  /// Invoked with the finished response; `cached` on it is already set
  /// (true for joiners — their answer came from a coalesced job).
  using Waiter = std::function<void(const core::VerifyResponse&)>;

  enum class Claim { Hit, Owner, Joined };

  struct Stats {
    std::uint64_t hits = 0;       // served from a ready entry
    std::uint64_t misses = 0;     // claims that became Owner
    std::uint64_t coalesced = 0;  // claims that joined an in-flight job
    std::uint64_t evictions = 0;  // ready entries dropped by LRU
    std::uint64_t entries = 0;    // ready entries currently stored
    std::uint64_t inflight = 0;   // keys currently being computed
  };

  explicit ResultCache(std::size_t maxEntries = 1024)
      : maxEntries_(maxEntries == 0 ? 1 : maxEntries) {}

  /// Look up `key`. On Hit, `*out` is the stored response with
  /// cached=true (the caller re-stamps the id). On Joined, `waiter` fires
  /// later from the owner's fulfill()/abandon(). On Owner, the caller owns
  /// the computation and must fulfill() or abandon() exactly once.
  Claim claim(std::uint64_t key, core::VerifyResponse* out, Waiter waiter);

  /// Install a ready entry restored from the persistent journal
  /// (serve/journal.hpp). No-op when the key already exists (ready or
  /// in-flight). Counts toward `entries` and is LRU-managed like any other
  /// ready entry, but does not touch hit/miss statistics — seeding is
  /// startup, not traffic.
  void seed(std::uint64_t key, const core::VerifyResponse& resp);

  /// Owner's completion: store the response (when `cacheable`) and wake
  /// the coalesced waiters with it (cached=true on their copies — their
  /// answer exists because of a job they did not run).
  void fulfill(std::uint64_t key, const core::VerifyResponse& resp,
               bool cacheable);

  /// Owner's failure path (the job threw, or the server is shutting
  /// down): wake the waiters with `resp` (typically an error response) and
  /// store nothing.
  void abandon(std::uint64_t key, const core::VerifyResponse& resp);

  Stats stats() const;

 private:
  struct Entry {
    bool ready = false;
    core::VerifyResponse response;   // valid when ready
    std::vector<Waiter> waiters;     // non-empty only while in-flight
    std::uint64_t lastUse = 0;       // LRU clock (claims + fulfill)
  };

  /// Pop the waiters and (maybe) store the response; returns the waiters
  /// to invoke outside the lock.
  std::vector<Waiter> settle(std::uint64_t key,
                             const core::VerifyResponse& resp, bool store);

  void evictIfFullLocked();

  const std::size_t maxEntries_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t clock_ = 0;
  Stats stats_;
};

}  // namespace velev::serve
