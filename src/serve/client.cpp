#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace velev::serve {

std::optional<Client> Client::connectUnix(const std::string& path,
                                          std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path too long: " + path;
    return std::nullopt;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr)
      *error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  return Client(fd);
}

std::optional<Client> Client::connectTcp(const std::string& host, int port,
                                         std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr)
      *error = "bad IPv4 address: " + host + " (no resolver in this client)";
    return std::nullopt;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr)
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  return Client(fd);
}

std::optional<Client> Client::connect(const std::string& endpoint,
                                      std::string* error) {
  std::string ep = endpoint;
  if (ep.rfind("unix:", 0) == 0) return connectUnix(ep.substr(5), error);
  if (ep.rfind("tcp:", 0) == 0) ep = ep.substr(4);
  if (ep.find('/') != std::string::npos) return connectUnix(ep, error);
  std::string host = "127.0.0.1";
  std::string portStr = ep;
  if (const std::size_t colon = ep.rfind(':'); colon != std::string::npos) {
    if (colon > 0) host = ep.substr(0, colon);
    portStr = ep.substr(colon + 1);
  }
  char* end = nullptr;
  const long port = std::strtol(portStr.c_str(), &end, 10);
  if (end == portStr.c_str() || *end != '\0' || port < 1 || port > 65535) {
    if (error != nullptr) *error = "bad endpoint: " + endpoint;
    return std::nullopt;
  }
  return connectTcp(host, static_cast<int>(port), error);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::sendAll(const std::string& data, std::string* error) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (error != nullptr) *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::recvLine(std::string* line, std::string* error) {
  for (;;) {
    if (const std::size_t nl = buffer_.find('\n'); nl != std::string::npos) {
      *line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n <= 0) {
      if (error != nullptr)
        *error = n == 0 ? "connection closed by server"
                        : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    buffer_.append(buf, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> Client::roundTripLine(const std::string& line,
                                                 std::string* error) {
  if (!sendAll(line + "\n", error)) return std::nullopt;
  std::string response;
  if (!recvLine(&response, error)) return std::nullopt;
  return response;
}

std::optional<core::VerifyResponse> Client::roundTrip(
    const core::VerifyRequest& req, std::string* error) {
  const std::optional<std::string> line =
      roundTripLine(compactJson(req.toJson()), error);
  if (!line.has_value()) return std::nullopt;
  return core::VerifyResponse::parse(*line, error);
}

}  // namespace velev::serve
