// Minimal blocking client for the velev_serve wire protocol: connect to a
// unix-domain or TCP endpoint, send one-line JSON requests, read one-line
// responses. Used by `velev_verify --connect`, the service smoke checks
// and the tests; the replay bench drives the server in-process instead.
//
// An endpoint string is parsed by Client::connect():
//   "unix:PATH"       unix-domain socket at PATH
//   "/path/to.sock"   (anything with a '/') — same
//   "tcp:HOST:PORT"   TCP
//   "HOST:PORT"       TCP
//   ":PORT" / "PORT"  TCP to 127.0.0.1
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/request.hpp"

namespace velev::serve {

class Client {
 public:
  /// Parse `endpoint` (grammar above) and connect. nullopt + `error` on
  /// failure.
  static std::optional<Client> connect(const std::string& endpoint,
                                       std::string* error = nullptr);
  static std::optional<Client> connectUnix(const std::string& path,
                                           std::string* error = nullptr);
  static std::optional<Client> connectTcp(const std::string& host, int port,
                                          std::string* error = nullptr);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one raw line (the newline is appended) and read one response
  /// line. Control ops go through here.
  std::optional<std::string> roundTripLine(const std::string& line,
                                           std::string* error = nullptr);

  /// Send a request, parse the response. A transport failure yields
  /// nullopt; a server-side error yields a response with `error` set —
  /// the caller distinguishes "could not ask" from "asked, was refused".
  std::optional<core::VerifyResponse> roundTrip(const core::VerifyRequest& req,
                                                std::string* error = nullptr);

 private:
  explicit Client(int fd) : fd_(fd) {}

  bool sendAll(const std::string& data, std::string* error);
  bool recvLine(std::string* line, std::string* error);

  int fd_ = -1;
  std::string buffer_;  // bytes past the last '\n' read
};

}  // namespace velev::serve
