#include "serve/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/json.hpp"
#include "support/trace.hpp"

namespace velev::serve {

namespace fs = std::filesystem;

namespace {

std::string keyHex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

bool parseKeyHex(std::string_view hex, std::uint64_t* key) {
  if (hex.size() != 16) return false;
  std::uint64_t k = 0;
  for (const char c : hex) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    k = (k << 4) | static_cast<std::uint64_t>(d);
  }
  *key = k;
  return true;
}

/// The daemon's cacheability policy, re-checked at the persistence
/// boundary: errors and wall-clock Timeouts never reach disk.
bool persistable(const core::VerifyResponse& resp) {
  return resp.error.empty() && resp.verdict != core::Verdict::Timeout;
}

bool segmentNumber(const fs::path& p, std::uint64_t* n) {
  const std::string name = p.filename().string();
  if (name.size() < 10 || name.compare(0, 4, "seg-") != 0 ||
      name.compare(name.size() - 5, 5, ".json") != 0)
    return false;
  std::uint64_t v = 0;
  for (std::size_t i = 4; i < name.size() - 5; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *n = v;
  return true;
}

}  // namespace

CacheJournal::CacheJournal(Options opts) : opts_(std::move(opts)) {
  if (opts_.compactThreshold < 2) opts_.compactThreshold = 2;
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);  // load()/append() cope if this failed
}

std::vector<std::pair<std::uint64_t, core::VerifyResponse>> CacheJournal::load(
    LoadStats* stats) {
  std::lock_guard<std::mutex> lk(mutex_);
  LoadStats ls;

  std::vector<std::pair<std::uint64_t, fs::path>> segments;
  std::error_code ec;
  for (fs::directory_iterator it(opts_.dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::uint64_t n = 0;
    if (segmentNumber(it->path(), &n)) segments.emplace_back(n, it->path());
  }
  std::sort(segments.begin(), segments.end());

  live_.clear();
  std::vector<std::pair<std::uint64_t, core::VerifyResponse>> out;
  // Later segments win on duplicate keys: index of each key in `out`.
  std::unordered_map<std::uint64_t, std::size_t> index;

  for (const auto& [number, path] : segments) {
    ++ls.segments;
    segmentsOnDisk_ = ls.segments;
    nextSegment_ = std::max(nextSegment_, number + 1);

    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    const std::optional<JsonValue> v = parseJson(text.str());
    // Corrupt, truncated, wrong-version or stale-binary segments degrade
    // to cold entries — skipped wholesale, never an error.
    if (!in || !v.has_value() || !v->isObject() ||
        v->uintAt("version") != kJournalSchemaVersion ||
        v->stringAt("git_describe") != trace::gitDescribe()) {
      ++ls.skippedSegments;
      continue;
    }
    const JsonValue* entries = v->find("entries");
    if (entries == nullptr || !entries->isArray()) {
      ++ls.skippedSegments;
      continue;
    }
    for (const JsonValue& e : entries->array) {
      std::uint64_t key = 0;
      const JsonValue* respJson = e.find("response");
      std::optional<core::VerifyResponse> resp;
      if (e.isObject() && parseKeyHex(e.stringAt("key"), &key) &&
          respJson != nullptr)
        resp = core::VerifyResponse::fromJson(*respJson);
      if (!resp.has_value() || !persistable(*resp)) {
        ++ls.skippedEntries;
        continue;
      }
      ++ls.entries;
      if (const auto it = index.find(key); it != index.end()) {
        out[it->second].second = *resp;
      } else {
        index.emplace(key, out.size());
        out.emplace_back(key, *resp);
      }
    }
  }
  live_ = out;
  if (stats != nullptr) *stats = ls;
  return out;
}

bool CacheJournal::writeSegmentLocked(
    const std::vector<std::pair<std::uint64_t, core::VerifyResponse>>&
        entries) {
  const fs::path final =
      fs::path(opts_.dir) / ("seg-" + std::to_string(nextSegment_) + ".json");
  const fs::path tmp = final.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    JsonWriter w(out);
    w.beginObject();
    w.kv("version", kJournalSchemaVersion);
    w.kv("git_describe", trace::gitDescribe());
    w.key("entries");
    w.beginArray();
    for (const auto& [key, resp] : entries) {
      w.beginObject();
      w.kv("key", keyHex(key));
      w.key("response");
      resp.writeJson(w);
      w.endObject();
    }
    w.endArray();
    w.endObject();
    if (!out) return false;
  }
  std::error_code ec;
  fs::rename(tmp, final, ec);  // atomic on POSIX: readers see all or nothing
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  ++nextSegment_;
  ++segmentsOnDisk_;
  return true;
}

void CacheJournal::append(std::uint64_t key,
                          const core::VerifyResponse& resp) {
  if (!persistable(resp)) return;
  std::lock_guard<std::mutex> lk(mutex_);
  bool replaced = false;
  for (auto& [k, r] : live_)
    if (k == key) {
      r = resp;
      replaced = true;
      break;
    }
  if (!replaced) live_.emplace_back(key, resp);
  if (!writeSegmentLocked({{key, resp}})) return;
  if (segmentsOnDisk_ > opts_.compactThreshold) compactLocked();
}

void CacheJournal::compactLocked() {
  // Fold every live entry into one fresh segment, then delete the older
  // ones. The fold is written (and atomically renamed) FIRST, so a crash
  // between the two steps only leaves redundant segments behind.
  const std::uint64_t foldNumber = nextSegment_;
  if (!writeSegmentLocked(live_)) return;
  std::error_code ec;
  for (fs::directory_iterator it(opts_.dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    std::uint64_t n = 0;
    if (segmentNumber(it->path(), &n) && n < foldNumber) {
      std::error_code rec;
      fs::remove(it->path(), rec);
    }
  }
  segmentsOnDisk_ = 1;
}

std::size_t CacheJournal::segmentCount() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return segmentsOnDisk_;
}

}  // namespace velev::serve
