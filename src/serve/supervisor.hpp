// The supervisor half of the velev_serve shard pool.
//
// WorkerPool owns N worker PROCESSES (velev_serve --worker, spawned over
// socketpairs by support/subprocess.hpp) and routes verification jobs to
// them. The front process keeps the sockets, the ResultCache and admission
// control; the workers do the actual solving — so a verification that
// aborts, exhausts memory, or is SIGKILLed mid-solve costs one worker
// process, never the daemon.
//
// FAILURE PROTOCOL (the reason this class exists):
//   * death detection — a dead worker's socketpair end is closed by the
//     kernel, so its reader thread wakes with EOF; no signals, no polling;
//   * retry — the dead worker's in-flight tickets are re-queued at the
//     FRONT of the queue (they were admitted first) with attempts+1 and a
//     small per-attempt backoff; a ticket that has crashed 1+maxRetries
//     workers is answered with an InternalError response — a client is
//     never left hanging;
//   * respawn — the slot is respawned with exponential backoff (doubling
//     from respawnBackoffSeconds, capped at 2 s); after maxRespawns
//     CONSECUTIVE crashes the slot is abandoned (a successful response
//     resets the streak). If every slot is abandoned, queued work is
//     failed with InternalError rather than queued forever;
//   * poison protection — a retried ticket (attempts > 0) is never
//     batched with others: if IT is what kills workers, it must not take
//     innocent neighbours down with it.
//
// BATCHING (opt-in, WorkerPoolOptions::batch): queued first-attempt
// tickets with the same grouping key — identical request minus id and
// robSize, i.e. the paper's Table 5 column: same issue width, same bug,
// same strategy/engine/budgets, any ROB size — are dispatched to one
// worker as a single {"op":"batch"} line. The worker answers the members
// in order and serves bit-identical rewritten CNFs from its per-process
// sat::SolveMemo, so a batch of k ROB sizes costs ~one SAT solve.
//
// Thread model: submit() enqueues; one dispatcher thread assigns tickets
// to idle live workers and handles respawn scheduling; one reader thread
// per worker parses responses and fires the Done callbacks (outside the
// pool lock — a Done writes to a client socket or fulfills a promise).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "core/request.hpp"
#include "support/subprocess.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace velev::serve {

struct WorkerPoolOptions {
  /// Path of the binary to spawn as `executable --worker @FD@`
  /// (normally /proc/self/exe — the daemon respawning itself).
  std::string executable;
  unsigned workers = 2;

  /// A request may be retried on a sibling after this many worker crashes
  /// before it is failed with InternalError (total attempts = 1 + retries).
  unsigned maxRetries = 2;
  /// Consecutive crashes after which a worker slot is abandoned.
  unsigned maxRespawns = 8;
  double respawnBackoffSeconds = 0.05;  // doubles per consecutive crash
  double retryBackoffSeconds = 0.02;    // per-attempt re-dispatch delay

  bool batch = false;        // enable the batching lane
  std::size_t maxBatch = 8;  // max requests per batch line

  /// TEST HOOK: arm `--crash-after N` on the FIRST spawn of worker slot 0
  /// only (respawns never inherit it — a crash-retry cannot loop).
  int crashAfter = 0;

  /// Seconds to wait for a freshly spawned worker's ping handshake.
  double spawnHandshakeSeconds = 10;

  /// Pool-level counters (serve.worker.crashes, serve.worker.respawns,
  /// serve.pool.retries, ...) are recorded here when non-null. Not owned.
  trace::Collector* collector = nullptr;
};

class WorkerPool {
 public:
  using Done = std::function<void(const core::VerifyResponse&)>;

  struct Stats {
    std::uint64_t queued = 0;      // currently waiting for a worker
    std::uint64_t inflight = 0;    // currently inside a worker
    std::uint64_t dispatched = 0;  // requests sent to workers (incl retries)
    std::uint64_t batches = 0;     // batch lines sent
    std::uint64_t batchedRequests = 0;  // requests that rode in a batch
    std::uint64_t crashes = 0;     // worker deaths observed
    std::uint64_t respawns = 0;    // successful respawns
    std::uint64_t retries = 0;     // tickets re-queued after a crash
    std::uint64_t failed = 0;      // tickets answered with InternalError
    std::uint64_t aliveWorkers = 0;
  };

  explicit WorkerPool(WorkerPoolOptions opts);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawn the workers (synchronously, each with a ping handshake) and
  /// start the dispatcher. False (with `*error` set) when no worker could
  /// be spawned.
  bool start(std::string* error = nullptr);

  /// Drain: wait for every queued + in-flight ticket to be answered, then
  /// terminate the workers (EOF on the socketpair; they exit cleanly).
  /// submit() after stop() answers immediately with an error response.
  void stop();

  /// Enqueue one request; `done` fires exactly once, from a reader thread
  /// (success) or wherever the failure is discovered. Never blocks on
  /// verification.
  void submit(const core::VerifyRequest& req, Done done);

  Stats stats() const;

 private:
  struct Ticket {
    core::VerifyRequest req;
    Done done;
    unsigned attempts = 0;   // completed (crashed) dispatch attempts
    double notBefore = 0;    // pool-clock seconds; retry backoff gate
  };

  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::thread reader;
    bool alive = false;
    bool busy = false;      // has in-flight work
    bool spawning = false;  // dispatcher is mid-respawn (lock dropped)
    bool abandoned = false;
    unsigned consecutiveCrashes = 0;
    double respawnAt = 0;  // pool-clock seconds; 0 = not scheduled
    /// Wire id -> ticket. Wire ids are supervisor-assigned (monotonic), so
    /// responses match tickets even when clients reuse request ids.
    std::map<std::uint64_t, Ticket> inflight;
  };

  bool spawnWorkerLocked(std::size_t slot, bool first,
                         std::unique_lock<std::mutex>& lk,
                         std::string* error);
  void dispatcherLoop();
  void readerLoop(std::size_t slot);
  void onWorkerDeath(std::size_t slot);
  void counter(const char* name, std::uint64_t delta) const;
  double now() const { return clock_.seconds(); }

  /// Grouping key of the batching lane: the request's canonical JSON with
  /// id and robSize neutralised (same string <=> batchable together).
  static std::string groupKey(const core::VerifyRequest& req);

  WorkerPoolOptions opts_;
  Timer clock_;  // pool-lifetime monotonic clock for backoff deadlines

  mutable std::mutex mutex_;
  std::condition_variable cv_;       // dispatcher wakeups
  std::condition_variable drainCv_;  // stop() waits for empty here
  std::deque<Ticket> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t nextWireId_ = 1;
  bool started_ = false;
  bool draining_ = false;  // no new submits; finish what is queued
  bool stopping_ = false;  // dispatcher exits
  std::thread dispatcher_;
  Stats stats_;
};

}  // namespace velev::serve
