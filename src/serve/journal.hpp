// Append-only on-disk journal of the velev_serve ResultCache.
//
// Purpose: a daemon restart keeps its warm set. Every cacheable fulfill is
// appended as an immutable SEGMENT file (written to a .tmp sibling and
// atomically renamed, the grid checkpoint's discipline), and startup
// replays every readable segment into ResultCache::seed(). The unit of
// durability is the segment: a corrupt or truncated segment — a daemon
// killed mid-write never leaves one, but a torn disk might — is skipped
// wholesale and its entries simply degrade to cold cache misses. Nothing
// ever fails loudly on load; the journal is an optimization, not a store
// of record.
//
// SEGMENT FORMAT (schema-versioned; docs/SERVICE.md):
//   {"version": 1,
//    "git_describe": "<trace::gitDescribe() of the writer>",
//    "entries": [{"key": "<16 hex digits>", "response": {...}}, ...]}
// Keys are VerifyRequest::cacheKey() in hex — they already fold in the
// code version, and the git_describe header double-checks it: a segment
// written by a different binary is skipped entirely (its keys could never
// match anyway). Responses are verbatim schema-v1 VerifyResponse objects;
// strict parsing applies, so a response from a future schema degrades to
// cold instead of being misread.
//
// POLICY: wall-clock Timeout verdicts and error responses are never
// persisted — enforced both on append() and (belt and braces) on load().
// Everything the in-memory cache may store, the journal may store.
//
// One segment per append keeps appends atomic without a write-ahead log;
// when the directory accumulates more than `compactThreshold` segments,
// the journal folds every live entry into one fresh segment and deletes
// the rest (under the same lock, so concurrent appends serialize behind
// it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/request.hpp"

namespace velev::serve {

class CacheJournal {
 public:
  /// Bump on any breaking segment-format change; document the migration in
  /// docs/SERVICE.md.
  static constexpr int kJournalSchemaVersion = 1;

  struct Options {
    std::string dir;                    // created if missing
    std::size_t compactThreshold = 64;  // fold segments beyond this count
  };

  struct LoadStats {
    std::size_t segments = 0;         // segment files seen
    std::size_t skippedSegments = 0;  // unreadable/corrupt/stale ones
    std::size_t entries = 0;          // responses restored
    std::size_t skippedEntries = 0;   // bad/uncacheable entries dropped
  };

  explicit CacheJournal(Options opts);

  /// Replay the directory: every readable, version- and git-matching
  /// segment contributes its entries (later segments win on duplicate
  /// keys). Also primes the in-memory live set that compaction rewrites.
  std::vector<std::pair<std::uint64_t, core::VerifyResponse>> load(
      LoadStats* stats = nullptr);

  /// Durably append one cacheable response as its own atomic segment.
  /// Timeout verdicts and error responses are refused (no-op). Thread-safe.
  void append(std::uint64_t key, const core::VerifyResponse& resp);

  /// Segment files currently on disk (after the last append/compact).
  std::size_t segmentCount() const;

 private:
  bool writeSegmentLocked(
      const std::vector<std::pair<std::uint64_t, core::VerifyResponse>>&
          entries);
  void compactLocked();

  Options opts_;
  mutable std::mutex mutex_;
  std::uint64_t nextSegment_ = 1;
  std::size_t segmentsOnDisk_ = 0;
  /// Every live (key, response) pair — what a compaction rewrites.
  std::vector<std::pair<std::uint64_t, core::VerifyResponse>> live_;
};

}  // namespace velev::serve
