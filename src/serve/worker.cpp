#include "serve/worker.hpp"

#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "core/request.hpp"
#include "sat/incremental.hpp"
#include "support/json.hpp"
#include "support/subprocess.hpp"
#include "support/timer.hpp"

namespace velev::serve {

namespace {

/// Salvage the "id" of a line that failed to parse as a request (mirrors
/// the server's connection readers).
std::uint64_t salvageId(const JsonValue* v) {
  return v != nullptr && v->isObject() ? v->uintAt("id") : 0;
}

core::VerifyResponse runOne(const core::VerifyRequest& req,
                            sat::SolveMemo* memo) {
  try {
    Timer t;
    const core::VerifyReport rep = core::verify(req, nullptr, memo);
    return core::VerifyResponse::fromReport(req, rep, t.seconds());
  } catch (const std::exception& e) {
    return core::VerifyResponse::makeError(req.id, e.what());
  }
}

}  // namespace

int workerMain(const WorkerOptions& opts) {
  // A supervisor that died mid-write must surface as a failed write here,
  // not a process-wide SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  FdLineReader reader(opts.fd);
  sat::SolveMemo memo(opts.memoMaxEntries);
  int seen = 0;

  // Handle one request object; false when the supervisor end is gone.
  const auto handleRequest = [&](const JsonValue& v) -> bool {
    ++seen;
    if (opts.crashAfter > 0 && seen >= opts.crashAfter)
      _exit(kWorkerCrashExit);  // deterministic "killed mid-solve"
    std::string err;
    const std::optional<core::VerifyRequest> req =
        core::VerifyRequest::fromJson(v, &err);
    const core::VerifyResponse resp =
        req.has_value() ? runOne(*req, &memo)
                        : core::VerifyResponse::makeError(salvageId(&v), err);
    return writeLineFd(opts.fd, compactJson(resp.toJson()));
  };

  std::string line;
  while (reader.next(&line)) {
    if (line.empty()) continue;
    std::string perr;
    const std::optional<JsonValue> v = parseJson(line, &perr);
    if (!v.has_value()) {
      const core::VerifyResponse resp = core::VerifyResponse::makeError(
          0, "worker: malformed JSON: " + perr);
      if (!writeLineFd(opts.fd, compactJson(resp.toJson()))) return 0;
      continue;
    }
    if (const JsonValue* op = v->find("op");
        op != nullptr && op->isString()) {
      if (op->string == "ping") {
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("ok", true);
        w.kv("op", "ping");
        w.kv("pid", static_cast<std::int64_t>(::getpid()));
        w.endObject();
        if (!writeLineFd(opts.fd, compactJson(os.str()))) return 0;
      } else if (op->string == "batch") {
        const JsonValue* reqs = v->find("requests");
        if (reqs != nullptr && reqs->isArray())
          for (const JsonValue& member : reqs->array)
            if (!handleRequest(member)) return 0;
      }
      // Unknown internal ops are ignored: the protocol is
      // supervisor-internal, not client-facing.
      continue;
    }
    if (!handleRequest(*v)) return 0;
  }
  return 0;  // EOF: the supervisor closed its end (shutdown or respawn)
}

}  // namespace velev::serve
