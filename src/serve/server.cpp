#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <sstream>
#include <utility>

#include "support/timer.hpp"

namespace velev::serve {

namespace {

/// Bind + listen a unix-domain socket, unlinking any stale file first.
int listenUnix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr)
      *error = "bind/listen " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Bind + listen on 127.0.0.1:`port` (0 = ephemeral); reports the bound
/// port through `boundPort`.
int listenTcp(int port, int* boundPort, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr)
      *error = "bind/listen 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    *boundPort = ntohs(bound.sin_port);
  return fd;
}

/// Salvage the "id" of a line that failed to parse as a request, so the
/// error response still routes to the right pipelined request.
std::uint64_t salvageId(const std::string& line) {
  std::string err;
  const std::optional<JsonValue> v = parseJson(line, &err);
  return v.has_value() && v->isObject() ? v->uintAt("id") : 0;
}

std::string wire(const core::VerifyResponse& resp) {
  return compactJson(resp.toJson());
}

}  // namespace

VerifyServer::VerifyServer(ServerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cacheMaxEntries),
      pool_(std::make_unique<ThreadPool>(opts_.jobs == 0 ? 1 : opts_.jobs)) {
  if (!opts_.cacheDir.empty()) {
    CacheJournal::Options jo;
    jo.dir = opts_.cacheDir;
    journal_ = std::make_unique<CacheJournal>(std::move(jo));
    CacheJournal::LoadStats ls;
    const auto restored = journal_->load(&ls);
    for (const auto& [key, resp] : restored) cache_.seed(key, resp);
    collector_.addCounter("serve.journal.restored", restored.size());
    collector_.addCounter("serve.journal.segments", ls.segments);
    collector_.addCounter("serve.journal.skipped_segments",
                          ls.skippedSegments);
    collector_.addCounter("serve.journal.skipped_entries", ls.skippedEntries);
  }
  if (opts_.workers > 0) {
    WorkerPoolOptions po;
    po.executable = opts_.workerExecutable;
    po.workers = opts_.workers;
    po.batch = opts_.batch;
    po.maxBatch = opts_.maxBatch;
    po.crashAfter = opts_.workerCrashAfter;
    po.collector = &collector_;
    auto pool = std::make_unique<WorkerPool>(std::move(po));
    std::string err;
    if (pool->start(&err))
      workerPool_ = std::move(pool);
    else
      poolError_ = err;
  }
}

VerifyServer::~VerifyServer() { stop(); }

bool VerifyServer::start(std::string* error) {
  if (!poolError_.empty()) {
    // Fail fast: a daemon that was asked for worker processes but could
    // not spawn any is misconfigured, not degraded.
    if (error != nullptr) *error = poolError_;
    return false;
  }
  if (opts_.unixSocketPath.empty() && opts_.tcpPort < 0) {
    if (error != nullptr)
      *error = "no listener configured (need a unix socket path or a TCP "
               "port)";
    return false;
  }
  if (!opts_.unixSocketPath.empty()) {
    unixFd_ = listenUnix(opts_.unixSocketPath, error);
    if (unixFd_ < 0) return false;
  }
  if (opts_.tcpPort >= 0) {
    tcpFd_ = listenTcp(opts_.tcpPort, &boundTcpPort_, error);
    if (tcpFd_ < 0) {
      if (unixFd_ >= 0) {
        ::close(unixFd_);
        ::unlink(opts_.unixSocketPath.c_str());
        unixFd_ = -1;
      }
      return false;
    }
  }
  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

void VerifyServer::stop() {
  if (stopped_.exchange(true)) return;

  // 1. Stop accepting: flag the loop, close the listeners (poll wakes on
  //    the closed fds or the 200 ms tick), join.
  stopAccept_.store(true);
  if (acceptThread_.joinable()) acceptThread_.join();
  if (unixFd_ >= 0) {
    ::close(unixFd_);
    ::unlink(opts_.unixSocketPath.c_str());
    unixFd_ = -1;
  }
  if (tcpFd_ >= 0) {
    ::close(tcpFd_);
    tcpFd_ = -1;
  }

  // 2. Drain the readers: shut the read side, so each reader finishes the
  //    lines it already buffered (submitting their jobs) and exits.
  {
    std::lock_guard<std::mutex> lk(connMutex_);
    for (auto& conn : conns_)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  for (auto& conn : conns_)
    if (conn->reader.joinable()) conn->reader.join();

  // 3. Drain the pools: every scheduled job finishes and its response is
  //    written to the (still-open) connections. New submits are refused
  //    from here on — nothing may queue behind a draining pool.
  stopJobs_.store(true);
  if (workerPool_ != nullptr) workerPool_->stop();
  pool_.reset();

  // 4. Now the connections are quiescent; close them.
  for (auto& conn : conns_) {
    conn->open.store(false);
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }

  requestShutdown();  // release any waitForShutdown() caller
}

void VerifyServer::requestShutdown() {
  {
    std::lock_guard<std::mutex> lk(shutdownMutex_);
    shutdownRequested_ = true;
  }
  shutdownCv_.notify_all();
}

void VerifyServer::waitForShutdown() {
  std::unique_lock<std::mutex> lk(shutdownMutex_);
  shutdownCv_.wait(lk, [this] { return shutdownRequested_; });
}

void VerifyServer::submit(core::VerifyRequest req, ResultCache::Waiter done) {
  // Admission caps: clamp BEFORE keying, so the cache is addressed by the
  // work the server actually performs.
  if (opts_.maxTimeoutSeconds > 0 &&
      (req.timeoutSeconds <= 0 || req.timeoutSeconds > opts_.maxTimeoutSeconds))
    req.timeoutSeconds = opts_.maxTimeoutSeconds;
  if (opts_.maxMemoryBudgetBytes > 0 &&
      (req.memoryBudgetBytes == 0 ||
       req.memoryBudgetBytes > opts_.maxMemoryBudgetBytes))
    req.memoryBudgetBytes = opts_.maxMemoryBudgetBytes;

  if (stopJobs_.load()) {
    done(core::VerifyResponse::makeError(req.id, "server shutting down"));
    return;
  }

  const std::uint64_t key = req.cacheKey();
  const std::uint64_t id = req.id;
  core::VerifyResponse hit;
  // A joiner's stored callback re-stamps its own request id — the owner
  // computed under a different one.
  ResultCache::Waiter joined = [done, id](const core::VerifyResponse& resp) {
    core::VerifyResponse copy = resp;
    copy.id = id;
    done(copy);
  };
  switch (cache_.claim(key, &hit, std::move(joined))) {
    case ResultCache::Claim::Hit:
      collector_.addCounter("serve.cache.hit", 1);
      hit.id = id;
      done(hit);
      return;
    case ResultCache::Claim::Joined:
      collector_.addCounter("serve.cache.coalesced", 1);
      return;  // the owner's fulfill answers us
    case ResultCache::Claim::Owner:
      collector_.addCounter("serve.cache.miss", 1);
      break;
  }

  // This miss is about to become a job: consult the live load. Hits and
  // coalesced joiners never get here — they are always free.
  if (!admitJob(req)) {
    collector_.addCounter("serve.admission.rejected", 1);
    const core::VerifyResponse resp = core::VerifyResponse::makeError(
        id, "admission control: server overloaded, retry later");
    cache_.abandon(key, resp);
    done(resp);
    return;
  }
  collector_.addCounter("serve.jobs", 1);

  if (workerPool_ != nullptr) {
    workerPool_->submit(req,
                        [this, req, key, done](const core::VerifyResponse& r) {
                          completeJob(req, key, r, done);
                        });
    return;
  }
  if (!poolError_.empty()) {
    // workers were requested but the pool never started (and the caller
    // drove handleLine() without start(), which would have failed fast).
    completeJob(req, key, core::VerifyResponse::makeError(id, poolError_),
                done);
    return;
  }
  pool_->submit([this, req, key, done] { runJob(req, key, done); });
}

bool VerifyServer::admitJob(const core::VerifyRequest& req) {
  const double eff = req.timeoutSeconds > 0 ? req.timeoutSeconds : 0;
  std::lock_guard<std::mutex> lk(admissionMutex_);
  // A backlog of zero always admits, so no single request can be
  // permanently unservable however large its budget.
  if (pendingJobs_ > 0) {
    if (opts_.maxQueueDepth > 0 && pendingJobs_ >= opts_.maxQueueDepth)
      return false;
    if (opts_.maxPendingSeconds > 0 &&
        pendingSeconds_ + eff > opts_.maxPendingSeconds)
      return false;
  }
  ++pendingJobs_;
  pendingSeconds_ += eff;
  return true;
}

void VerifyServer::releaseJob(const core::VerifyRequest& req) {
  const double eff = req.timeoutSeconds > 0 ? req.timeoutSeconds : 0;
  std::lock_guard<std::mutex> lk(admissionMutex_);
  if (pendingJobs_ > 0) --pendingJobs_;
  pendingSeconds_ = std::max(0.0, pendingSeconds_ - eff);
}

void VerifyServer::runJob(const core::VerifyRequest& req, std::uint64_t key,
                          ResultCache::Waiter done) {
  try {
    core::VerifyReport rep;
    Timer t;
    {
      // The server-lifetime collector is thread-safe; attaching it here
      // gives every job a serve.job span (and the verify.* sub-spans).
      trace::Use tracing(&collector_);
      TRACE_SPAN("serve.job");
      rep = core::verify(req);
    }
    completeJob(req, key,
                core::VerifyResponse::fromReport(req, rep, t.seconds()), done);
  } catch (const std::exception& e) {
    completeJob(req, key, core::VerifyResponse::makeError(req.id, e.what()),
                done);
  }
}

void VerifyServer::completeJob(const core::VerifyRequest& req,
                               std::uint64_t key,
                               const core::VerifyResponse& resp,
                               const ResultCache::Waiter& done) {
  releaseJob(req);
  if (!resp.error.empty()) {
    // Worker crash past its retry budget, shutdown, or a thrown
    // verification error: wake the joiners with the error, store nothing.
    collector_.addCounter("serve.jobs.failed", 1);
    cache_.abandon(key, resp);
    done(resp);
    return;
  }
  // Never cache a wall-clock timeout: whether the deadline tripped is a
  // property of machine load, not of the cell — replaying it from the
  // cache would freeze a nondeterministic answer. Memout (logical arena
  // bytes) and conflict-budget inconclusives are deterministic and
  // cacheable.
  const bool cacheable = resp.verdict != core::Verdict::Timeout;
  cache_.fulfill(key, resp, cacheable);
  // The journal applies the same policy (and re-checks it).
  if (cacheable && journal_ != nullptr) journal_->append(key, resp);
  done(resp);  // the owner's own answer is the fresh one (cached=false)
}

std::string VerifyServer::controlResponse(const std::string& op) {
  collector_.addCounter("serve.control", 1);
  std::ostringstream os;
  JsonWriter w(os);
  if (op == "ping") {
    w.beginObject();
    w.kv("ok", true);
    w.kv("op", op);
    w.kv("version", core::kResponseSchemaVersion);
    w.endObject();
  } else if (op == "stats") {
    const ResultCache::Stats cs = cache_.stats();
    w.beginObject();
    w.kv("ok", true);
    w.kv("op", op);
    w.key("counters");
    w.beginObject();
    for (const auto& [name, value] : collector_.counters()) w.kv(name, value);
    // The cache's own statistics are authoritative gauges.
    w.kv("serve.cache.hits", cs.hits);
    w.kv("serve.cache.misses", cs.misses);
    w.kv("serve.cache.coalesced_total", cs.coalesced);
    w.kv("serve.cache.entries", cs.entries);
    w.kv("serve.cache.inflight", cs.inflight);
    w.kv("serve.cache.evictions", cs.evictions);
    if (workerPool_ != nullptr) {
      const WorkerPool::Stats ps = workerPool_->stats();
      w.kv("serve.pool.workers_alive", ps.aliveWorkers);
      w.kv("serve.pool.queued", ps.queued);
      w.kv("serve.pool.inflight", ps.inflight);
      w.kv("serve.pool.dispatched", ps.dispatched);
      w.kv("serve.pool.crashes_total", ps.crashes);
      w.kv("serve.pool.respawns_total", ps.respawns);
      w.kv("serve.pool.retries_total", ps.retries);
      w.kv("serve.pool.failed_total", ps.failed);
      w.kv("serve.pool.batches_total", ps.batches);
      w.kv("serve.pool.batched_requests_total", ps.batchedRequests);
    }
    if (journal_ != nullptr)
      w.kv("serve.journal.segments_on_disk",
           static_cast<std::uint64_t>(journal_->segmentCount()));
    w.endObject();
    w.endObject();
  } else if (op == "shutdown") {
    w.beginObject();
    w.kv("ok", true);
    w.kv("op", op);
    w.endObject();
    requestShutdown();
  } else {
    w.beginObject();
    w.kv("ok", false);
    w.kv("error", "unknown op: " + op);
    w.endObject();
  }
  return compactJson(os.str());
}

std::string VerifyServer::dispatchLine(const std::string& line,
                                       ResultCache::Waiter done) {
  std::string err;
  const std::optional<JsonValue> v = parseJson(line, &err);
  if (v.has_value() && v->isObject())
    if (const JsonValue* op = v->find("op"); op != nullptr && op->isString())
      return controlResponse(op->string);

  collector_.addCounter("serve.requests", 1);
  std::optional<core::VerifyRequest> req;
  if (!v.has_value()) {
    err = "malformed JSON: " + err;
  } else {
    req = core::VerifyRequest::fromJson(*v, &err);
  }
  if (!req.has_value()) {
    collector_.addCounter("serve.requests.bad", 1);
    done(core::VerifyResponse::makeError(salvageId(line), err));
    return {};
  }
  submit(*req, std::move(done));
  return {};
}

std::string VerifyServer::handleLine(const std::string& line) {
  // The synchronous face of dispatchLine(): park the response in a
  // promise. Safe from any thread that is not a pool worker (a worker
  // waiting here on a coalesced sibling would deadlock a full pool).
  auto promise = std::make_shared<std::promise<core::VerifyResponse>>();
  std::future<core::VerifyResponse> future = promise->get_future();
  const std::string direct = dispatchLine(
      line, [promise](const core::VerifyResponse& resp) {
        promise->set_value(resp);
      });
  if (!direct.empty()) return direct;
  return wire(future.get());
}

void VerifyServer::acceptLoop() {
  while (!stopAccept_.load()) {
    pollfd fds[2];
    nfds_t n = 0;
    if (unixFd_ >= 0) fds[n++] = pollfd{unixFd_, POLLIN, 0};
    if (tcpFd_ >= 0) fds[n++] = pollfd{tcpFd_, POLLIN, 0};
    if (n == 0) return;
    const int r = ::poll(fds, n, 200);  // tick so the stop flag is seen
    if (r <= 0) continue;
    for (nfds_t i = 0; i < n; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int cfd = ::accept(fds[i].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      collector_.addCounter("serve.connections", 1);
      auto conn = std::make_unique<Connection>();
      conn->fd = cfd;
      Connection* raw = conn.get();
      conn->reader = std::thread([this, raw] { readerLoop(raw); });
      std::lock_guard<std::mutex> lk(connMutex_);
      conns_.push_back(std::move(conn));
    }
  }
}

void VerifyServer::readerLoop(Connection* conn) {
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // EOF, error, or SHUT_RD from stop()
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      // Requests answer asynchronously (pipelining + cross-connection
      // coalescing); control ops answer inline.
      const std::string direct = dispatchLine(
          line, [this, conn](const core::VerifyResponse& resp) {
            writeLine(conn, wire(resp));
          });
      if (!direct.empty()) writeLine(conn, direct);
    }
    pending.erase(0, start);
  }
}

void VerifyServer::writeLine(Connection* conn, const std::string& line) {
  if (!conn->open.load()) return;
  std::lock_guard<std::mutex> lk(conn->writeMutex);
  std::string framed = line;
  framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    // MSG_NOSIGNAL: a client that hung up must surface as an error here,
    // not as a process-wide SIGPIPE.
    const ssize_t n = ::send(conn->fd, framed.data() + off,
                             framed.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      conn->open.store(false);
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace velev::serve
