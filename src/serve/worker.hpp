// The worker-process half of the velev_serve shard pool.
//
// `velev_serve --worker FD` (spawned by serve::WorkerPool over a
// socketpair; never started by hand) drops straight into workerMain(),
// which loops over newline-delimited JSON lines on `fd`:
//
//   * {"op": "ping"}                          -> {"ok": true, "op": "ping",
//                                                 "pid": N} — the spawn
//                                                 handshake;
//   * a schema-v1 core::VerifyRequest object  -> verified in THIS process
//                                                (own Context, own
//                                                governor), answered with
//                                                one VerifyResponse line;
//   * {"op": "batch", "requests": [...]}      -> the members are verified
//                                                in order, one response
//                                                line each as it finishes.
//
// The whole point of the process boundary: a verification that aborts,
// double-frees, or is SIGKILLed takes down only this worker — the
// supervisor sees EOF on the socketpair, retries the in-flight requests on
// a sibling and respawns the slot. The worker itself needs no crash
// handling beyond "exit on EOF".
//
// One content-addressed sat::SolveMemo lives for the worker's lifetime and
// backs every verification: batch members whose rewritten CNF is
// bit-identical (the paper's Table 5 — same issue width, any ROB size)
// replay one finished solve, result and counters exactly as a fresh solve
// would produce them.
//
// TEST HOOK: crashAfter = N (the `--crash-after N` flag, armed by the
// supervisor's WorkerPoolOptions::crashAfter for the first spawn of worker
// slot 0 only — respawned workers never inherit it, so a crash-retry
// cannot loop) makes the worker _exit(kWorkerCrashExit) immediately after
// reading its Nth request, before answering — a deterministic stand-in for
// "SIGKILLed mid-solve".
#pragma once

#include <cstddef>

namespace velev::serve {

/// Exit status of the --crash-after hook (distinguishable from exec
/// failure's 127 and a clean EOF exit's 0 in waitpid statuses).
inline constexpr int kWorkerCrashExit = 57;

struct WorkerOptions {
  int fd = -1;         // supervisor socketpair end (required)
  int crashAfter = 0;  // 0 = off; N > 0 aborts on the Nth request
  std::size_t memoMaxEntries = 256;  // SolveMemo capacity
};

/// The worker main loop; returns the process exit code (0 on EOF).
int workerMain(const WorkerOptions& opts);

}  // namespace velev::serve
