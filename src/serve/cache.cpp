#include "serve/cache.hpp"

#include <utility>

namespace velev::serve {

ResultCache::Claim ResultCache::claim(std::uint64_t key,
                                      core::VerifyResponse* out,
                                      Waiter waiter) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.lastUse = ++clock_;
    entries_.emplace(key, std::move(e));
    ++stats_.misses;
    ++stats_.inflight;
    return Claim::Owner;
  }
  Entry& e = it->second;
  e.lastUse = ++clock_;
  if (e.ready) {
    ++stats_.hits;
    *out = e.response;
    out->cached = true;
    return Claim::Hit;
  }
  ++stats_.coalesced;
  e.waiters.push_back(std::move(waiter));
  return Claim::Joined;
}

void ResultCache::seed(std::uint64_t key, const core::VerifyResponse& resp) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (entries_.count(key) != 0) return;
  Entry e;
  e.ready = true;
  e.response = resp;
  e.response.cached = true;  // every future hit is a cache copy
  e.lastUse = ++clock_;
  entries_.emplace(key, std::move(e));
  ++stats_.entries;
  evictIfFullLocked();
}

std::vector<ResultCache::Waiter> ResultCache::settle(
    std::uint64_t key, const core::VerifyResponse& resp, bool store) {
  std::vector<Waiter> waiters;
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return waiters;  // double-settle; tolerate
  waiters = std::move(it->second.waiters);
  if (stats_.inflight > 0) --stats_.inflight;
  if (store) {
    it->second.ready = true;
    it->second.response = resp;
    it->second.response.cached = true;  // every future hit is a cache copy
    it->second.waiters.clear();
    it->second.lastUse = ++clock_;
    ++stats_.entries;
    evictIfFullLocked();
  } else {
    entries_.erase(it);
  }
  return waiters;
}

void ResultCache::fulfill(std::uint64_t key, const core::VerifyResponse& resp,
                          bool cacheable) {
  // Waiters run outside the lock: they write to sockets / fulfill
  // promises and must never observe the cache mutex held.
  std::vector<Waiter> waiters = settle(key, resp, cacheable);
  core::VerifyResponse joined = resp;
  joined.cached = true;  // a joiner's answer came from a job it did not run
  for (const Waiter& w : waiters)
    if (w) w(joined);
}

void ResultCache::abandon(std::uint64_t key, const core::VerifyResponse& resp) {
  std::vector<Waiter> waiters = settle(key, resp, /*store=*/false);
  for (const Waiter& w : waiters)
    if (w) w(resp);
}

void ResultCache::evictIfFullLocked() {
  while (stats_.entries > maxEntries_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready) continue;  // never evict an in-flight key
      if (victim == entries_.end() ||
          it->second.lastUse < victim->second.lastUse)
        victim = it;
    }
    if (victim == entries_.end()) return;
    entries_.erase(victim);
    --stats_.entries;
    ++stats_.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

}  // namespace velev::serve
