#include "serve/supervisor.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "support/json.hpp"

namespace velev::serve {

namespace {

/// Cap a doubling backoff without overflow: 2^min(n, 10) steps.
double crashBackoff(double base, unsigned consecutiveCrashes) {
  const unsigned steps = std::min(consecutiveCrashes, 10u) - 1u;
  const double raw = base * static_cast<double>(1u << steps);
  return std::min(2.0, raw);
}

core::VerifyResponse crashError(const core::VerifyRequest& req,
                                unsigned attempts) {
  return core::VerifyResponse::makeError(
      req.id, "internal error: verification worker crashed (" +
                  std::to_string(attempts) + " attempts)");
}

}  // namespace

WorkerPool::WorkerPool(WorkerPoolOptions opts) : opts_(std::move(opts)) {
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.maxBatch < 2) opts_.maxBatch = 2;
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::counter(const char* name, std::uint64_t delta) const {
  if (opts_.collector != nullptr) opts_.collector->addCounter(name, delta);
}

std::string WorkerPool::groupKey(const core::VerifyRequest& req) {
  core::VerifyRequest canon = req;
  canon.id = 0;
  canon.robSize = 0;  // the free axis: Table 5 columns share one CNF
  return canon.toJson(/*includeId=*/false);
}

bool WorkerPool::start(std::string* error) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (started_) return true;
  if (opts_.executable.empty()) {
    if (error != nullptr) *error = "worker pool: no executable configured";
    return false;
  }
  workers_.clear();
  for (unsigned i = 0; i < opts_.workers; ++i)
    workers_.push_back(std::make_unique<Worker>());

  unsigned alive = 0;
  std::string firstErr;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    std::string err;
    if (spawnWorkerLocked(i, /*first=*/true, lk, &err))
      ++alive;
    else if (firstErr.empty())
      firstErr = err;
  }
  if (alive == 0) {
    if (error != nullptr)
      *error = "worker pool: no worker could be spawned: " + firstErr;
    workers_.clear();  // no spawn succeeded, so no reader threads exist
    return false;
  }
  started_ = true;
  draining_ = false;
  stopping_ = false;
  dispatcher_ = std::thread([this] { dispatcherLoop(); });
  return true;
}

bool WorkerPool::spawnWorkerLocked(std::size_t slot, bool first,
                                   std::unique_lock<std::mutex>& lk,
                                   std::string* error) {
  Worker& w = *workers_[slot];
  w.spawning = true;
  std::vector<std::string> args = {"--worker", kSubprocessFdArg};
  // The crash hook arms exactly one worker exactly once; its replacement
  // is a normal worker, so the crashed request's retry succeeds.
  if (first && slot == 0 && opts_.crashAfter > 0) {
    args.emplace_back("--crash-after");
    args.emplace_back(std::to_string(opts_.crashAfter));
  }

  lk.unlock();
  if (w.reader.joinable()) w.reader.join();  // reader of the previous life
  std::string err;
  Subprocess sp = spawnWithSocket(opts_.executable, std::move(args), &err);
  bool ok = sp.ok();
  if (ok) {
    const int handshakeMs =
        std::max(1, static_cast<int>(opts_.spawnHandshakeSeconds * 1000));
    ok = writeLineFd(sp.fd, "{\"op\": \"ping\"}") &&
         waitReadable(sp.fd, handshakeMs);
    if (ok) {
      // The worker writes nothing after the pong until it is sent work,
      // so this throwaway reader cannot swallow response bytes.
      FdLineReader handshake(sp.fd);
      std::string pong;
      ok = handshake.next(&pong);
    }
    if (!ok) {
      err = "worker handshake timed out";
      ::close(sp.fd);
      reapProcess(sp.pid, /*block=*/true);
    }
  }
  lk.lock();
  w.spawning = false;
  if (!ok) {
    if (error != nullptr) *error = err;
    ++w.consecutiveCrashes;
    if (w.consecutiveCrashes > opts_.maxRespawns) {
      w.abandoned = true;
      counter("serve.worker.abandoned", 1);
    } else {
      w.respawnAt =
          now() + crashBackoff(opts_.respawnBackoffSeconds,
                               w.consecutiveCrashes);
    }
    return false;
  }
  w.pid = sp.pid;
  w.fd = sp.fd;
  w.alive = true;
  w.busy = false;
  w.respawnAt = 0;
  w.reader = std::thread([this, slot] { readerLoop(slot); });
  if (!first) {
    ++stats_.respawns;
    counter("serve.worker.respawns", 1);
  }
  return true;
}

void WorkerPool::submit(const core::VerifyRequest& req, Done done) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (started_ && !draining_ && !stopping_) {
      Ticket t;
      t.req = req;
      t.done = std::move(done);
      queue_.push_back(std::move(t));
      cv_.notify_all();
      return;
    }
  }
  if (done)
    done(core::VerifyResponse::makeError(req.id, "server shutting down"));
}

void WorkerPool::readerLoop(std::size_t slot) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    fd = workers_[slot]->fd;
  }
  FdLineReader reader(fd);
  std::string line;
  while (reader.next(&line)) {
    if (line.empty()) continue;
    std::optional<core::VerifyResponse> resp =
        core::VerifyResponse::parse(line);
    if (!resp.has_value()) {
      counter("serve.worker.badline", 1);
      continue;
    }
    Ticket t;
    bool found = false;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      Worker& w = *workers_[slot];
      const auto it = w.inflight.find(resp->id);
      if (it != w.inflight.end()) {
        t = std::move(it->second);
        w.inflight.erase(it);
        found = true;
        w.busy = !w.inflight.empty();
        w.consecutiveCrashes = 0;  // a finished answer ends the streak
      }
    }
    cv_.notify_all();
    drainCv_.notify_all();
    if (!found) continue;
    resp->id = t.req.id;  // un-stamp the supervisor wire id
    if (t.done) t.done(*resp);
  }
  onWorkerDeath(slot);
}

void WorkerPool::onWorkerDeath(std::size_t slot) {
  std::vector<Ticket> doomed;
  pid_t pid = -1;
  bool crashed = false;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    Worker& w = *workers_[slot];
    if (!w.alive) return;
    w.alive = false;
    w.busy = false;
    pid = w.pid;
    w.pid = -1;
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
    std::map<std::uint64_t, Ticket> inflight = std::move(w.inflight);
    w.inflight.clear();
    crashed = !stopping_;
    if (crashed) {
      ++stats_.crashes;
      counter("serve.worker.crashes", 1);
      ++w.consecutiveCrashes;
      if (w.consecutiveCrashes > opts_.maxRespawns) {
        w.abandoned = true;
        counter("serve.worker.abandoned", 1);
      } else {
        w.respawnAt = now() + crashBackoff(opts_.respawnBackoffSeconds,
                                           w.consecutiveCrashes);
      }
    }
    // In-flight tickets: retry on a sibling (front of the queue — they
    // were admitted first) or, past the retry budget, fail. A clean stop
    // should never see in-flight work (stop() drains first), but if it
    // does, failing beats hanging.
    for (auto& [wid, t] : inflight) {
      ++t.attempts;
      if (crashed && t.attempts <= opts_.maxRetries) {
        t.notBefore =
            now() + opts_.retryBackoffSeconds * static_cast<double>(t.attempts);
        ++stats_.retries;
        counter("serve.pool.retries", 1);
        queue_.push_front(std::move(t));
      } else {
        ++stats_.failed;
        counter("serve.pool.failed", 1);
        doomed.push_back(std::move(t));
      }
    }
  }
  if (pid > 0) reapProcess(pid, /*block=*/true);
  cv_.notify_all();
  drainCv_.notify_all();
  for (Ticket& t : doomed)
    if (t.done) t.done(crashError(t.req, t.attempts));
}

void WorkerPool::dispatcherLoop() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (!stopping_) {
    const double t = now();
    bool didWork = false;

    // 1. Respawn slots whose backoff has elapsed.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = *workers_[i];
      if (w.alive || w.abandoned || w.spawning || w.respawnAt > t) continue;
      spawnWorkerLocked(i, /*first=*/false, lk, nullptr);
      if (stopping_) return;  // stop() raced in while the lock was down
      didWork = true;
    }

    // 2. Every slot abandoned: nobody will ever run the queue — fail it.
    bool anyUsable = false;
    for (const auto& w : workers_)
      if (!w->abandoned) {
        anyUsable = true;
        break;
      }
    if (!anyUsable && !queue_.empty()) {
      std::deque<Ticket> doomed = std::move(queue_);
      queue_.clear();
      stats_.failed += doomed.size();
      counter("serve.pool.failed", doomed.size());
      drainCv_.notify_all();
      lk.unlock();
      for (Ticket& tk : doomed)
        if (tk.done)
          tk.done(core::VerifyResponse::makeError(
              tk.req.id, "internal error: all verification workers lost"));
      lk.lock();
      continue;
    }

    // 3. Assign work to idle live workers. Writes happen under the lock:
    //    a capacity-1 worker has at most one batch outstanding, far below
    //    the socketpair buffer, so these writes never block.
    for (std::size_t i = 0; i < workers_.size() && !queue_.empty(); ++i) {
      Worker& w = *workers_[i];
      if (!w.alive || w.busy || w.spawning) continue;
      std::size_t pick = queue_.size();
      for (std::size_t q = 0; q < queue_.size(); ++q)
        if (queue_[q].notBefore <= t) {
          pick = q;
          break;
        }
      if (pick == queue_.size()) break;  // nothing ready before its backoff

      std::vector<Ticket> group;
      group.push_back(std::move(queue_[pick]));
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
      // Batching lane: ONLY first-attempt tickets ride together — a
      // request that already crashed a worker must not take innocent
      // queue neighbours down with it on the next crash.
      if (opts_.batch && group.front().attempts == 0) {
        const std::string gk = groupKey(group.front().req);
        for (std::size_t q = 0;
             q < queue_.size() && group.size() < opts_.maxBatch;) {
          if (queue_[q].attempts == 0 && groupKey(queue_[q].req) == gk) {
            group.push_back(std::move(queue_[q]));
            queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(q));
          } else {
            ++q;
          }
        }
      }

      std::string line;
      if (group.size() == 1) {
        core::VerifyRequest copy = group.front().req;
        copy.id = nextWireId_;
        line = compactJson(copy.toJson());
      } else {
        std::ostringstream os;
        JsonWriter jw(os);
        jw.beginObject();
        jw.kv("op", "batch");
        jw.key("requests");
        jw.beginArray();
        for (std::size_t g = 0; g < group.size(); ++g) {
          core::VerifyRequest copy = group[g].req;
          copy.id = nextWireId_ + g;
          copy.writeJson(jw);
        }
        jw.endArray();
        jw.endObject();
        line = compactJson(os.str());
        ++stats_.batches;
        stats_.batchedRequests += group.size();
        counter("serve.pool.batches", 1);
        counter("serve.pool.batched_requests", group.size());
      }
      stats_.dispatched += group.size();
      for (auto& tk : group) w.inflight.emplace(nextWireId_++, std::move(tk));
      w.busy = true;
      writeLineFd(w.fd, line);  // failure => EOF soon; the reader retries
      didWork = true;
    }

    // 4. Drain signal for stop().
    std::uint64_t inflight = 0;
    for (const auto& w : workers_) inflight += w->inflight.size();
    if (queue_.empty() && inflight == 0) drainCv_.notify_all();

    if (didWork) continue;

    // 5. Sleep until the next deadline (respawn or retry backoff), with a
    //    0.5 s heartbeat as a safety net.
    double next = t + 0.5;
    for (const auto& w : workers_)
      if (!w->alive && !w->abandoned && !w->spawning && w->respawnAt > t)
        next = std::min(next, w->respawnAt);
    for (const auto& tk : queue_)
      if (tk.notBefore > t) next = std::min(next, tk.notBefore);
    const double waitS = std::max(1e-3, next - now());
    cv_.wait_for(lk, std::chrono::duration<double>(waitS));
  }
}

void WorkerPool::stop() {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    if (!started_) return;
    draining_ = true;
    cv_.notify_all();
    drainCv_.wait(lk, [this] {
      if (!queue_.empty()) return false;
      for (const auto& w : workers_)
        if (!w->inflight.empty()) return false;
      return true;
    });
    stopping_ = true;
    cv_.notify_all();
  }
  dispatcher_.join();
  {
    std::lock_guard<std::mutex> lk(mutex_);
    // close() alone does not wake a thread blocked in read(); shutdown()
    // does — the same trick the server uses on client connections.
    for (const auto& w : workers_)
      if (w->fd >= 0) ::shutdown(w->fd, SHUT_RDWR);
  }
  for (const auto& w : workers_)
    if (w->reader.joinable()) w->reader.join();
  std::lock_guard<std::mutex> lk(mutex_);
  started_ = false;
}

WorkerPool::Stats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  Stats s = stats_;
  s.queued = queue_.size();
  s.inflight = 0;
  s.aliveWorkers = 0;
  for (const auto& w : workers_) {
    s.inflight += w->inflight.size();
    if (w->alive) ++s.aliveWorkers;
  }
  return s;
}

}  // namespace velev::serve
