// Symbols shared between the implementation and specification processors.
//
// Functional units and instruction-field decoders are abstracted by
// uninterpreted functions/predicates (the same symbol must be used on both
// sides of the commutative diagram for functional consistency to tie them
// together):
//   ALU(op, a, b)  — the (only) functional unit type,
//   NextPC(pc)     — the PC incrementer,
//   OpOf/DestOf/Src1Of/Src2Of(instr) — instruction-field extractors,
//   ValidOf(instr) — predicate: does the instruction write the RegFile.
// The read-only Instruction Memory is a shared term variable.
#pragma once

#include "eufm/expr.hpp"

namespace velev::models {

struct Isa {
  eufm::FuncId alu;
  eufm::FuncId nextPc;
  eufm::FuncId opOf;
  eufm::FuncId destOf;
  eufm::FuncId src1Of;
  eufm::FuncId src2Of;
  eufm::FuncId validOf;  // predicate
  eufm::Expr imem;       // term variable: instruction-memory state

  static Isa declare(eufm::Context& cx) {
    Isa isa;
    isa.alu = cx.declareFunc("ALU", 3);
    isa.nextPc = cx.declareFunc("NextPC", 1);
    isa.opOf = cx.declareFunc("OpOf", 1);
    isa.destOf = cx.declareFunc("DestOf", 1);
    isa.src1Of = cx.declareFunc("Src1Of", 1);
    isa.src2Of = cx.declareFunc("Src2Of", 1);
    isa.validOf = cx.declarePred("ValidOf", 1);
    isa.imem = cx.termVar("IMem");
    return isa;
  }
};

}  // namespace velev::models
