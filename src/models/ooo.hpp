// The abstract out-of-order implementation processor of the paper (Sect. 3-4):
// a reorder buffer of N fully instantiated entries plus k extra entries that
// accept the up-to-k newly fetched instructions, non-deterministic scheduling
// (NDFetch_i) and completion (NDExecute_i) controls, fully implemented
// forwarding/stalling logic, in-order retirement of up to k instructions per
// cycle, and completion-function flushing (the abstraction function):
// when `flush` is raised, one computation slice per cycle completes in
// program order, guided by a Done-bit chain.
//
// Every ROB entry carries the paper's fields: Valid, Opcode, Dest, Src1,
// Src2, ValidResult, Result. Instructions execute out of program order as
// soon as each operand can be read from the Register File or forwarded from
// the Result field of the *nearest preceding* matching entry (and that
// entry's result is available).
//
// The builder also supports injecting the paper's Sect. 7.2 bug (wrong
// forwarding for one operand of a chosen slice) and several other seeded
// defects used by the tests and the bug-detection benchmark.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "models/isa.hpp"
#include "support/names.hpp"
#include "tlsim/netlist.hpp"

namespace velev::models {

struct OoOConfig {
  unsigned robSize = 4;     // N: fully instantiated entries
  unsigned issueWidth = 2;  // k: issue width == retire width
};

enum class BugKind {
  None,
  /// Slice `index`: the forwarding chain for operand 1 matches against
  /// Src2 instead of Src1 (the paper's buggy variant: "bug in the
  /// forwarding logic for one of the data operands of the 72nd instruction").
  ForwardingWrongOperand,
  /// Slice `index`: forwarding ignores ValidResult of the producer, so a
  /// stale Result can be consumed.
  ForwardingStaleResult,
  /// Slice `index` (must be <= issue width): the retire condition omits the
  /// ValidResult check, retiring instructions whose result is not computed.
  RetireIgnoresValidResult,
  /// Slice `index`: execution feeds the wrong term (Dest) as the ALU opcode.
  AluWrongOpcode,
  /// Slice `index`: the completion function never writes the Register File.
  CompletionSkipsWrite,
};

struct BugSpec {
  BugKind kind = BugKind::None;
  unsigned index = 1;  // 1-based slice
};

/// Stable lower-case name ("none", "fwd", "stale", "retire", "alu",
/// "completion") shared by the velev_verify/velev_fuzz CLIs and the fuzz
/// corpus files.
const char* bugKindName(BugKind k);

/// Inverse of bugKindName(); unknown names yield nullopt.
std::optional<BugKind> bugKindFromName(std::string_view name);

/// Highest legal 1-based bug slice for this kind on this configuration —
/// the same bound buildOoO() enforces: retire bugs live in the k retire
/// slots, completion bugs anywhere in the N+k flush slices, everything
/// else in the N fully instantiated ROB entries.
unsigned bugIndexLimit(BugKind k, const OoOConfig& cfg);

/// Initial-state variable nodes of the implementation processor, exposed so
/// the rewriting-rule engine can identify update addresses/contexts exactly
/// the way EVC identifies the term variables introduced by TLSim.
struct RobInitState {
  std::vector<eufm::Expr> valid;        // Bool vars, size N
  std::vector<eufm::Expr> validResult;  // Bool vars, size N
  std::vector<eufm::Expr> opcode;       // term vars, size N
  std::vector<eufm::Expr> dest;         // term vars, size N
  std::vector<eufm::Expr> src1;         // term vars, size N
  std::vector<eufm::Expr> src2;         // term vars, size N
  std::vector<eufm::Expr> result;       // term vars, size N
  eufm::Expr pc;                        // term var
  eufm::Expr regFile;                   // term var (memory state)
  std::vector<eufm::Expr> ndExecute;    // Bool vars, size N
  std::vector<eufm::Expr> ndFetch;      // Bool vars, size k
};

struct OoOProcessor {
  explicit OoOProcessor(eufm::Context& cx) : netlist(cx) {}

  OoOConfig config;
  tlsim::Netlist netlist;

  tlsim::SignalId flush = tlsim::kNoSignal;  // input (false = regular cycle)
  tlsim::SignalId pc = tlsim::kNoSignal;     // latch
  tlsim::SignalId regFile = tlsim::kNoSignal;

  // Per-entry latches, size N + k (extra entries hold newly fetched
  // instructions). Done latches guide flushing.
  std::vector<tlsim::SignalId> valid;
  std::vector<tlsim::SignalId> validResult;
  std::vector<tlsim::SignalId> opcode;
  std::vector<tlsim::SignalId> dest;
  std::vector<tlsim::SignalId> src1;
  std::vector<tlsim::SignalId> src2;
  std::vector<tlsim::SignalId> result;
  std::vector<tlsim::SignalId> done;

  // Diagnostics / tests.
  std::vector<tlsim::SignalId> retire;  // size k: in-order retire conditions
  std::vector<tlsim::SignalId> exec;    // size N: execute-this-cycle signals
  std::vector<tlsim::SignalId> fetch;   // size k: fetch_i

  RobInitState init;

  /// Cycles needed to flush completely (one slice per cycle).
  unsigned flushCycles() const { return config.robSize + config.issueWidth; }
};

/// Build the implementation processor. `bug` injects a seeded defect
/// (BugKind::None for the correct design). Requires issueWidth <= robSize.
std::unique_ptr<OoOProcessor> buildOoO(eufm::Context& cx, const Isa& isa,
                                       const OoOConfig& cfg,
                                       const BugSpec& bug = {});

}  // namespace velev::models

/// Name-registry table (support/names.hpp): the single source of truth
/// behind bugKindName()/bugKindFromName(). tests/models_test.cpp
/// round-trips every entry.
template <>
struct velev::names::Registry<velev::models::BugKind> {
  static constexpr EnumEntry<velev::models::BugKind> entries[] = {
      {velev::models::BugKind::None, "none"},
      {velev::models::BugKind::ForwardingWrongOperand, "fwd"},
      {velev::models::BugKind::ForwardingStaleResult, "stale"},
      {velev::models::BugKind::RetireIgnoresValidResult, "retire"},
      {velev::models::BugKind::AluWrongOpcode, "alu"},
      {velev::models::BugKind::CompletionSkipsWrite, "completion"},
  };
};
