#include "models/spec.hpp"

namespace velev::models {

using eufm::Sort;
using tlsim::SignalId;

std::unique_ptr<SpecProcessor> buildSpec(eufm::Context& cx, const Isa& isa) {
  auto p = std::make_unique<SpecProcessor>(cx);
  tlsim::Netlist& nl = p->netlist;

  p->pc = nl.sLatchFree("SpecPC", Sort::Term);
  p->regFile = nl.sLatchFree("SpecRegFile", Sort::Term);
  const SignalId imem = nl.sFixed(isa.imem);

  const SignalId instr = nl.sRead(imem, p->pc);
  const SignalId valid = nl.sApply(isa.validOf, {instr});
  const SignalId dest = nl.sApply(isa.destOf, {instr});
  const SignalId src1 = nl.sApply(isa.src1Of, {instr});
  const SignalId src2 = nl.sApply(isa.src2Of, {instr});
  const SignalId op = nl.sApply(isa.opOf, {instr});

  const SignalId result = nl.sApply(
      isa.alu, {op, nl.sRead(p->regFile, src1), nl.sRead(p->regFile, src2)});
  nl.setNext(p->regFile,
             nl.sIteT(valid, nl.sWrite(p->regFile, dest, result),
                      p->regFile));
  nl.setNext(p->pc, nl.sApply(isa.nextPc, {p->pc}));
  return p;
}

}  // namespace velev::models
