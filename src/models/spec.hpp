// The non-pipelined specification processor (the ISA): executes exactly one
// instruction per cycle by fetching from the shared read-only Instruction
// Memory, incrementing the PC, computing the ALU result, and writing the
// destination register when the instruction's Valid bit is true.
#pragma once

#include <memory>

#include "models/isa.hpp"
#include "tlsim/netlist.hpp"

namespace velev::models {

struct SpecProcessor {
  explicit SpecProcessor(eufm::Context& cx) : netlist(cx) {}

  tlsim::Netlist netlist;
  tlsim::SignalId pc = tlsim::kNoSignal;       // latch
  tlsim::SignalId regFile = tlsim::kNoSignal;  // latch
};

std::unique_ptr<SpecProcessor> buildSpec(eufm::Context& cx, const Isa& isa);

}  // namespace velev::models
