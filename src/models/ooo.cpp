#include "models/ooo.hpp"

#include <string>

namespace velev::models {

using eufm::Expr;
using eufm::Sort;
using tlsim::SignalId;

namespace {
std::string numbered(const char* base, unsigned i /*1-based*/) {
  return std::string(base) + "_" + std::to_string(i);
}
}  // namespace

const char* bugKindName(BugKind k) { return names::nameOf(k); }

std::optional<BugKind> bugKindFromName(std::string_view name) {
  return names::fromName<BugKind>(name);
}

unsigned bugIndexLimit(BugKind k, const OoOConfig& cfg) {
  switch (k) {
    case BugKind::None: return 0;
    case BugKind::RetireIgnoresValidResult: return cfg.issueWidth;
    case BugKind::CompletionSkipsWrite:
      return cfg.robSize + cfg.issueWidth;
    default: return cfg.robSize;
  }
}

std::unique_ptr<OoOProcessor> buildOoO(eufm::Context& cx, const Isa& isa,
                                       const OoOConfig& cfg,
                                       const BugSpec& bug) {
  const unsigned n = cfg.robSize;
  const unsigned k = cfg.issueWidth;
  VELEV_CHECK_MSG(k >= 1 && k <= n,
                  "issue/retire width must be in [1, robSize]");

  auto p = std::make_unique<OoOProcessor>(cx);
  p->config = cfg;
  tlsim::Netlist& nl = p->netlist;
  const unsigned total = n + k;
  // Validate the bug site: silently ignoring an out-of-range injection
  // would make a "verified correct" answer meaningless.
  if (bug.kind != BugKind::None) {
    const unsigned limit = bugIndexLimit(bug.kind, cfg);
    VELEV_CHECK_MSG(bug.index >= 1 && bug.index <= limit,
                    "bug slice index " << bug.index
                                       << " out of range [1, " << limit
                                       << "] for this bug kind");
  }
  // 0-based slice index the bug applies to (bug indices are 1-based).
  const unsigned bugAt = bug.index == 0 ? 0 : bug.index - 1;
  auto hasBug = [&](BugKind kind, unsigned i) {
    return bug.kind == kind && i == bugAt;
  };

  // ---- inputs and state ------------------------------------------------------
  p->flush = nl.sInput("flush", Sort::Formula);
  const SignalId notFlush = nl.sNot(p->flush);
  p->pc = nl.sLatchFree("PC", Sort::Term);
  p->regFile = nl.sLatchFree("RegFile", Sort::Term);
  const SignalId imem = nl.sFixed(isa.imem);

  for (unsigned i = 0; i < total; ++i) {
    const unsigned nr = i + 1;
    if (i < n) {
      p->valid.push_back(nl.sLatchFree(numbered("Valid", nr), Sort::Formula));
      p->validResult.push_back(
          nl.sLatchFree(numbered("ValidResult", nr), Sort::Formula));
    } else {
      // Extra entries that accept newly fetched instructions start empty.
      p->valid.push_back(
          nl.sLatch(numbered("Valid", nr), Sort::Formula, cx.mkFalse()));
      p->validResult.push_back(nl.sLatch(numbered("ValidResult", nr),
                                         Sort::Formula, cx.mkFalse()));
    }
    p->opcode.push_back(nl.sLatchFree(numbered("Opcode", nr), Sort::Term));
    p->dest.push_back(nl.sLatchFree(numbered("Dest", nr), Sort::Term));
    p->src1.push_back(nl.sLatchFree(numbered("Src1", nr), Sort::Term));
    p->src2.push_back(nl.sLatchFree(numbered("Src2", nr), Sort::Term));
    p->result.push_back(nl.sLatchFree(numbered("Result", nr), Sort::Term));
    p->done.push_back(
        nl.sLatch(numbered("Done", nr), Sort::Formula, cx.mkFalse()));
  }

  // ---- non-deterministic controls (Sect. 4) ---------------------------------
  // NDExecute_i abstracts the execute_i scheduling signal; NDFetch_i
  // abstracts the Scheduler's fetch decisions. Modeled as free Boolean
  // variables.
  std::vector<SignalId> ndExec, ndFetch;
  for (unsigned i = 0; i < n; ++i) {
    const Expr v = cx.boolVar(numbered("NDExecute", i + 1));
    p->init.ndExecute.push_back(v);
    ndExec.push_back(nl.sFixed(v));
  }
  for (unsigned j = 0; j < k; ++j) {
    const Expr v = cx.boolVar(numbered("NDFetch", j + 1));
    p->init.ndFetch.push_back(v);
    ndFetch.push_back(nl.sFixed(v));
  }

  // fetch_i = NDFetch_1 & ... & NDFetch_i: if fetch_i is false, all later
  // fetch_j are false, so up to k instructions are fetched in program order.
  std::vector<SignalId> fetch;
  {
    SignalId prev = nl.sTrue();
    for (unsigned j = 0; j < k; ++j) {
      prev = nl.sAnd(prev, ndFetch[j]);
      fetch.push_back(prev);
    }
  }
  p->fetch = fetch;
  std::vector<SignalId> fetchNow;  // gated off during flushing
  for (unsigned j = 0; j < k; ++j)
    fetchNow.push_back(nl.sAnd(notFlush, fetch[j]));

  // ---- fetch engine ----------------------------------------------------------
  // pcc_j = NextPC^j(PC); instruction j is fetched from address pcc_{j-1}.
  std::vector<SignalId> pcc = {p->pc};
  for (unsigned j = 1; j <= k; ++j)
    pcc.push_back(nl.sApply(isa.nextPc, {pcc[j - 1]}));
  std::vector<SignalId> newOp, newDest, newSrc1, newSrc2, newValidBit;
  for (unsigned j = 0; j < k; ++j) {
    const SignalId instr = nl.sRead(imem, pcc[j]);
    newOp.push_back(nl.sApply(isa.opOf, {instr}));
    newDest.push_back(nl.sApply(isa.destOf, {instr}));
    newSrc1.push_back(nl.sApply(isa.src1Of, {instr}));
    newSrc2.push_back(nl.sApply(isa.src2Of, {instr}));
    newValidBit.push_back(nl.sApply(isa.validOf, {instr}));
  }

  // ---- in-order retirement (formula (1)) -------------------------------------
  // retire_i = (!Valid_i | ValidResult_i) & retire_{i-1}: an instruction
  // within the retire width retires iff it will not touch the RegFile or its
  // result is ready and everything ahead retires too.
  std::vector<SignalId> retire;
  {
    SignalId prev = nl.sTrue();
    for (unsigned i = 0; i < k; ++i) {
      SignalId retireable =
          hasBug(BugKind::RetireIgnoresValidResult, i)
              ? nl.sTrue()
              : nl.sOr(nl.sNot(p->valid[i]), p->validResult[i]);
      prev = nl.sAnd(retireable, prev);
      retire.push_back(prev);
    }
  }
  p->retire = retire;

  // ---- out-of-order execution with forwarding (entries 1..N) ----------------
  // For each operand, scan preceding entries in program order; the nearest
  // match overrides, providing Result_j (available only if ValidResult_j).
  // With no match the operand comes straight from the Register File.
  std::vector<SignalId> execSig, aluOut;
  for (unsigned i = 0; i < n; ++i) {
    SignalId opVal[2], opOk[2];
    for (unsigned o = 0; o < 2; ++o) {
      const SignalId mySrc = o == 0 ? p->src1[i] : p->src2[i];
      // The paper's buggy variant: operand 1 of the buggy slice matches
      // producers against Src2 instead of Src1.
      const SignalId matchSrc =
          (o == 0 && hasBug(BugKind::ForwardingWrongOperand, i)) ? p->src2[i]
                                                                 : mySrc;
      SignalId val = nl.sRead(p->regFile, mySrc);
      SignalId ok = nl.sTrue();
      for (unsigned j = 0; j < i; ++j) {
        const SignalId hit =
            nl.sAnd(p->valid[j], nl.sEq(p->dest[j], matchSrc));
        val = nl.sIteT(hit, p->result[j], val);
        const SignalId avail = hasBug(BugKind::ForwardingStaleResult, i)
                                   ? nl.sTrue()
                                   : p->validResult[j];
        ok = nl.sIteF(hit, avail, ok);
      }
      opVal[o] = val;
      opOk[o] = ok;
    }
    const SignalId depsOk = nl.sAnd(opOk[0], opOk[1]);
    const SignalId ready =
        nl.sAnd(p->valid[i], nl.sAnd(nl.sNot(p->validResult[i]), depsOk));
    execSig.push_back(nl.sAnd(notFlush, nl.sAnd(ndExec[i], ready)));
    const SignalId opcodeIn =
        hasBug(BugKind::AluWrongOpcode, i) ? p->dest[i] : p->opcode[i];
    aluOut.push_back(nl.sApply(isa.alu, {opcodeIn, opVal[0], opVal[1]}));
  }
  p->exec = execSig;

  // ---- completion-function flushing (Sect. 4) --------------------------------
  // During flushing exactly one slice fires per cycle: the first entry whose
  // Done bit is still clear, provided everything ahead is done.
  std::vector<SignalId> fire;
  {
    SignalId prefixDone = nl.sTrue();
    for (unsigned i = 0; i < total; ++i) {
      fire.push_back(
          nl.sAnd(p->flush, nl.sAnd(prefixDone, nl.sNot(p->done[i]))));
      prefixDone = nl.sAnd(prefixDone, p->done[i]);
    }
  }

  // ---- Register File update chain --------------------------------------------
  // Program-order stages: first the (regular-cycle) retirement writes of the
  // first k entries, then the (flush-time) completion writes of every entry.
  SignalId rf = p->regFile;
  for (unsigned i = 0; i < k; ++i) {
    const SignalId wcond =
        nl.sAnd(notFlush, nl.sAnd(p->valid[i], retire[i]));
    rf = nl.sIteT(wcond, nl.sWrite(rf, p->dest[i], p->result[i]), rf);
  }
  for (unsigned i = 0; i < total; ++i) {
    if (hasBug(BugKind::CompletionSkipsWrite, i)) continue;
    // Completion function: use the stored Result if ready, otherwise read
    // the operands from the current (partially flushed) Register File and
    // compute the result instantaneously.
    const SignalId cdata = nl.sIteT(
        p->validResult[i], p->result[i],
        nl.sApply(isa.alu, {p->opcode[i], nl.sRead(rf, p->src1[i]),
                            nl.sRead(rf, p->src2[i])}));
    const SignalId wcond = nl.sAnd(fire[i], p->valid[i]);
    rf = nl.sIteT(wcond, nl.sWrite(rf, p->dest[i], cdata), rf);
  }
  nl.setNext(p->regFile, rf);

  // ---- PC update --------------------------------------------------------------
  {
    SignalId pcNext = p->pc;
    for (unsigned j = 0; j < k; ++j)
      pcNext = nl.sIteT(fetchNow[j], pcc[j + 1], pcNext);
    nl.setNext(p->pc, pcNext);
  }

  // ---- entry state updates -----------------------------------------------------
  for (unsigned i = 0; i < n; ++i) {
    SignalId validNew = p->valid[i];
    if (i < k) validNew = nl.sAnd(p->valid[i], nl.sNot(retire[i]));
    nl.setNext(p->valid[i], nl.sIteF(p->flush, p->valid[i], validNew));
    nl.setNext(p->validResult[i],
               nl.sIteF(p->flush, p->validResult[i],
                        nl.sOr(p->validResult[i], execSig[i])));
    nl.setNext(p->result[i],
               nl.sIteT(p->flush, p->result[i],
                        nl.sIteT(execSig[i], aluOut[i], p->result[i])));
    nl.setNext(p->opcode[i], p->opcode[i]);
    nl.setNext(p->dest[i], p->dest[i]);
    nl.setNext(p->src1[i], p->src1[i]);
    nl.setNext(p->src2[i], p->src2[i]);
  }
  for (unsigned j = 0; j < k; ++j) {
    const unsigned i = n + j;
    // The Valid bit of a newly fetched instruction is the conjunction of
    // the Valid signal decoded from the Instruction Memory and fetch_j.
    const SignalId validNew = nl.sAnd(fetch[j], newValidBit[j]);
    nl.setNext(p->valid[i], nl.sIteF(p->flush, p->valid[i], validNew));
    nl.setNext(p->validResult[i],
               nl.sIteF(p->flush, p->validResult[i], nl.sFalse()));
    nl.setNext(p->result[i], p->result[i]);
    nl.setNext(p->opcode[i], nl.sIteT(p->flush, p->opcode[i], newOp[j]));
    nl.setNext(p->dest[i], nl.sIteT(p->flush, p->dest[i], newDest[j]));
    nl.setNext(p->src1[i], nl.sIteT(p->flush, p->src1[i], newSrc1[j]));
    nl.setNext(p->src2[i], nl.sIteT(p->flush, p->src2[i], newSrc2[j]));
  }
  for (unsigned i = 0; i < total; ++i)
    nl.setNext(p->done[i], nl.sOr(p->done[i], fire[i]));

  // ---- record the initial-state variables (for the rewriting engine) ---------
  for (unsigned i = 0; i < n; ++i) {
    p->init.valid.push_back(nl.signal(p->valid[i]).fixed);
    p->init.validResult.push_back(nl.signal(p->validResult[i]).fixed);
    p->init.opcode.push_back(nl.signal(p->opcode[i]).fixed);
    p->init.dest.push_back(nl.signal(p->dest[i]).fixed);
    p->init.src1.push_back(nl.signal(p->src1[i]).fixed);
    p->init.src2.push_back(nl.signal(p->src2[i]).fixed);
    p->init.result.push_back(nl.signal(p->result[i]).fixed);
  }
  p->init.pc = nl.signal(p->pc).fixed;
  p->init.regFile = nl.signal(p->regFile).fixed;

  return p;
}

}  // namespace velev::models
