// Propositional formula layer: a hash-consed AND-inverter graph (AIG) with
// complement edges. EVC translates EUFM correctness formulas into this
// representation; Tseitin translation (cnf.hpp) then produces the CNF that
// the SAT solver checks, mirroring the EVC -> CNF -> Chaff flow of the paper.
//
// A PLit packs (node index << 1) | negated, so negation is free and
// structural sharing is maximal. Node 0 is the constant FALSE, hence
// PLit 0 = false and PLit 1 = true.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace velev {
class BudgetGovernor;
}  // namespace velev

namespace velev::prop {

using PLit = std::uint32_t;

constexpr PLit kFalse = 0;
constexpr PLit kTrue = 1;

constexpr PLit negate(PLit l) { return l ^ 1u; }
constexpr std::uint32_t nodeOf(PLit l) { return l >> 1; }
constexpr bool isNegated(PLit l) { return (l & 1u) != 0; }

class PropCtx {
 public:
  PropCtx();
  PropCtx(const PropCtx&) = delete;
  PropCtx& operator=(const PropCtx&) = delete;

  /// Allocate a fresh input variable; returns its positive literal.
  PLit mkVar();

  PLit mkNot(PLit a) const { return negate(a); }
  PLit mkAnd(PLit a, PLit b);
  PLit mkOr(PLit a, PLit b) { return negate(mkAnd(negate(a), negate(b))); }
  PLit mkImplies(PLit a, PLit b) { return mkOr(negate(a), b); }
  PLit mkIte(PLit c, PLit t, PLit e) {
    return mkAnd(mkOr(negate(c), t), mkOr(c, e));
  }
  PLit mkIff(PLit a, PLit b) { return mkIte(a, b, negate(b)); }
  PLit mkXor(PLit a, PLit b) { return negate(mkIff(a, b)); }

  PLit mkAndN(std::span<const PLit> ls) {
    PLit acc = kTrue;
    for (PLit l : ls) acc = mkAnd(acc, l);
    return acc;
  }
  PLit mkOrN(std::span<const PLit> ls) {
    PLit acc = kFalse;
    for (PLit l : ls) acc = mkOr(acc, l);
    return acc;
  }

  // ---- Introspection -------------------------------------------------------
  std::uint32_t numNodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  std::uint32_t numVars() const { return numVars_; }
  bool isVarNode(std::uint32_t node) const { return nodes_[node].var; }
  /// Input-variable index of a var node (dense, 0-based).
  std::uint32_t varIndex(std::uint32_t node) const {
    VELEV_CHECK(nodes_[node].var);
    return nodes_[node].a;
  }
  bool isAndNode(std::uint32_t node) const {
    return node != 0 && !nodes_[node].var;
  }
  PLit andLeft(std::uint32_t node) const { return nodes_[node].a; }
  PLit andRight(std::uint32_t node) const { return nodes_[node].b; }

  /// Evaluate under a full assignment to input variables (indexed by
  /// varIndex). Used by brute-force cross-checks in the tests.
  bool eval(PLit root, const std::vector<bool>& assignment) const;

  // ---- Resource governance -------------------------------------------------
  /// Attaches (or with nullptr, detaches) a resource governor; internAnd()
  /// then checkpoints this AIG's logical footprint on a stride, and
  /// tseitin() picks the governor up from here for the CNF it emits.
  void setBudget(BudgetGovernor* governor);
  BudgetGovernor* budgetGovernor() const { return budget_; }

  /// Logical bytes owned by this AIG (node arena + hash table). O(1).
  std::size_t memoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           table_.capacity() * sizeof(std::uint32_t);
  }

 private:
  struct Node {
    bool var = false;
    PLit a = 0;  // var: input index; and: left literal
    PLit b = 0;  // and: right literal
  };

  std::uint32_t internAnd(PLit a, PLit b);
  void growTable();

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> table_;  // open addressing over And nodes
  std::size_t tableCount_ = 0;
  std::uint32_t numVars_ = 0;

  BudgetGovernor* budget_ = nullptr;
  int budgetSource_ = -1;
  std::uint32_t budgetTick_ = 0;
};

}  // namespace velev::prop
