// CNF representation and Tseitin translation from the AIG.
//
// Variables are 1-based as in DIMACS; a literal is ±var. The first
// PropCtx::numVars() CNF variables are the AIG input variables (CNF var
// i+1 = input i), so models found by the SAT solver map directly back to
// the abstract-processor control signals when diagnosing a failed proof.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "prop/prop.hpp"

namespace velev {
class ThreadPool;
}  // namespace velev

namespace velev::prop {

using CnfLit = std::int32_t;
using Clause = std::vector<CnfLit>;

struct Cnf {
  std::uint32_t numVars = 0;
  std::vector<Clause> clauses;

  std::size_t numClauses() const { return clauses.size(); }
  std::size_t numLiterals() const {
    std::size_t n = 0;
    for (const auto& c : clauses) n += c.size();
    return n;
  }
  void addClause(Clause c) { clauses.push_back(std::move(c)); }
  /// Allocate a fresh CNF variable, returning its (positive) index.
  std::uint32_t newVar() { return ++numVars; }
};

/// Tseitin-translate `root` (negated first if `negateRoot`) over `cx` into
/// CNF: the result is satisfiable iff the (possibly negated) root is.
/// Only the cone of `root` is translated. Auxiliary Tseitin variables are
/// appended after the input variables. With a non-null `pool`, clause
/// emission is sharded across its workers; the resulting CNF (variable
/// numbering and clause order) is identical for any worker count.
Cnf tseitin(const PropCtx& cx, PLit root, bool negateRoot,
            ThreadPool* pool = nullptr);

/// Write in DIMACS `p cnf` format.
void writeDimacs(const Cnf& cnf, std::ostream& os);

/// Parse DIMACS (for the standalone SAT example and tests). Throws
/// InternalError on malformed input.
Cnf parseDimacs(std::istream& is);

}  // namespace velev::prop
