#include "prop/prop.hpp"

#include <algorithm>

#include "support/budget.hpp"
#include "support/hash.hpp"

namespace velev::prop {

PropCtx::PropCtx() {
  nodes_.push_back(Node{});  // node 0: constant FALSE
  table_.assign(1024, 0);    // 0 marks an empty slot (node 0 is never interned)
}

PLit PropCtx::mkVar() {
  Node n;
  n.var = true;
  n.a = numVars_++;
  nodes_.push_back(n);
  return static_cast<PLit>((nodes_.size() - 1) << 1);
}

PLit PropCtx::mkAnd(PLit a, PLit b) {
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a == negate(b)) return kFalse;
  if (a > b) std::swap(a, b);
  return static_cast<PLit>(internAnd(a, b) << 1);
}

void PropCtx::growTable() {
  std::vector<std::uint32_t> old = std::move(table_);
  table_.assign(old.size() * 2, 0);
  const std::uint64_t mask = table_.size() - 1;
  for (std::uint32_t node : old) {
    if (node == 0) continue;
    std::uint64_t slot = hashValues({nodes_[node].a, nodes_[node].b}) & mask;
    while (table_[slot] != 0) slot = (slot + 1) & mask;
    table_[slot] = node;
  }
}

void PropCtx::setBudget(BudgetGovernor* governor) {
  budget_ = governor;
  budgetSource_ = governor != nullptr ? governor->registerSource() : -1;
  budgetTick_ = 0;
}

std::uint32_t PropCtx::internAnd(PLit a, PLit b) {
  // Single chokepoint for AIG growth: the whole e_ij encoding phase is
  // governed by this strided checkpoint.
  if (budget_ != nullptr && (++budgetTick_ & 0xffu) == 0)
    budget_->checkpoint(budgetSource_, memoryBytes());
  if (tableCount_ * 10 >= table_.size() * 7) growTable();
  const std::uint64_t mask = table_.size() - 1;
  std::uint64_t slot = hashValues({a, b}) & mask;
  while (table_[slot] != 0) {
    const Node& n = nodes_[table_[slot]];
    if (!n.var && n.a == a && n.b == b) return table_[slot];
    slot = (slot + 1) & mask;
  }
  Node n;
  n.var = false;
  n.a = a;
  n.b = b;
  nodes_.push_back(n);
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size() - 1);
  table_[slot] = id;
  ++tableCount_;
  return id;
}

bool PropCtx::eval(PLit root, const std::vector<bool>& assignment) const {
  // Iterative evaluation over the cone of `root`, memoized per node.
  // 0 = unknown, 1 = false, 2 = true.
  std::vector<std::uint8_t> val(nodes_.size(), 0);
  val[0] = 1;
  std::vector<std::uint32_t> stack = {nodeOf(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (val[n]) {
      stack.pop_back();
      continue;
    }
    const Node& nd = nodes_[n];
    if (nd.var) {
      VELEV_CHECK(nd.a < assignment.size());
      val[n] = assignment[nd.a] ? 2 : 1;
      stack.pop_back();
      continue;
    }
    const std::uint32_t la = nodeOf(nd.a), lb = nodeOf(nd.b);
    if (!val[la]) {
      stack.push_back(la);
      continue;
    }
    if (!val[lb]) {
      stack.push_back(lb);
      continue;
    }
    const bool va = (val[la] == 2) != isNegated(nd.a);
    const bool vb = (val[lb] == 2) != isNegated(nd.b);
    val[n] = (va && vb) ? 2 : 1;
    stack.pop_back();
  }
  return (val[nodeOf(root)] == 2) != isNegated(root);
}

}  // namespace velev::prop
