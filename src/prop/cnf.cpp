#include "prop/cnf.hpp"

#include <array>
#include <exception>
#include <future>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "support/budget.hpp"
#include "support/thread_pool.hpp"

namespace velev::prop {

// Tseitin translation, in two passes so clause emission can be sharded
// across a thread pool:
//   pass 1 (sequential) — the postorder cone traversal; assigns every And
//     node its auxiliary CNF variable in visit order and records the
//     (v, a, b) literal triple. Variable numbering is therefore identical
//     to the classic single-pass translation and independent of the pool.
//   pass 2 — each recorded triple expands to the three v <-> a & b
//     clauses. With a pool the triple list is cut into per-worker shards
//     whose clause buffers are concatenated in shard order, so the clause
//     list is byte-identical to the sequential emission for any worker
//     count.
Cnf tseitin(const PropCtx& cx, PLit root, bool negateRoot, ThreadPool* pool) {
  Cnf cnf;
  cnf.numVars = cx.numVars();
  if (negateRoot) root = negate(root);

  if (root == kTrue) return cnf;  // no clauses: trivially satisfiable
  if (root == kFalse) {
    cnf.addClause({});  // the empty clause: trivially unsatisfiable
    return cnf;
  }

  // CNF variable for each AIG node in the cone (inputs keep var index + 1).
  std::unordered_map<std::uint32_t, std::uint32_t> nodeVar;
  auto varFor = [&](std::uint32_t node) -> std::uint32_t {
    if (cx.isVarNode(node)) return cx.varIndex(node) + 1;
    auto it = nodeVar.find(node);
    if (it != nodeVar.end()) return it->second;
    const std::uint32_t v = cnf.newVar();
    nodeVar.emplace(node, v);
    return v;
  };
  auto litFor = [&](PLit l) -> CnfLit {
    const CnfLit v = static_cast<CnfLit>(varFor(nodeOf(l)));
    return isNegated(l) ? -v : v;
  };

  // The CNF can dwarf the AIG it came from, so its growth is governed too:
  // a separate byte-accounting slot tracks projected clause-storage bytes
  // (literal payload plus per-clause vector overhead) on a strided
  // checkpoint. The projection is charged during pass 1, before the
  // clauses are materialized, so a doomed translation trips early.
  BudgetGovernor* const governor = cx.budgetGovernor();
  const int budgetSource =
      governor != nullptr ? governor->registerSource() : -1;
  std::size_t clauseBytes = 0;
  std::uint32_t budgetTick = 0;

  // Pass 1: iterative postorder over And nodes.
  struct Gate {
    CnfLit v, a, b;
  };
  std::vector<Gate> gates;
  std::vector<std::uint32_t> stack = {nodeOf(root)};
  std::vector<char> seen;
  auto visited = [&](std::uint32_t n) -> char& {
    if (seen.size() <= n) seen.resize(n + 1, 0);
    return seen[n];
  };
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (visited(n) || cx.isVarNode(n)) continue;
    visited(n) = 1;
    // Each processed node emits three clauses (7 literals) and at most one
    // map entry; accumulate instead of rescanning the clause database.
    clauseBytes += 7 * sizeof(CnfLit) + 3 * (sizeof(Clause) + 16) + 48 + 1;
    if (governor != nullptr && (++budgetTick & 0x3ffu) == 0)
      governor->checkpoint(budgetSource, clauseBytes);
    VELEV_CHECK(cx.isAndNode(n));
    const PLit a = cx.andLeft(n), b = cx.andRight(n);
    const CnfLit lv = static_cast<CnfLit>(varFor(n));
    const CnfLit la = litFor(a), lb = litFor(b);
    gates.push_back(Gate{lv, la, lb});
    if (!cx.isVarNode(nodeOf(a))) stack.push_back(nodeOf(a));
    if (!cx.isVarNode(nodeOf(b))) stack.push_back(nodeOf(b));
  }
  if (governor != nullptr) governor->checkpoint(budgetSource, clauseBytes);

  // Pass 2: clause emission, sharded when a pool is available and the
  // formula is big enough for the fan-out to pay.
  auto emit = [governor](const Gate* g, std::size_t count,
                         std::vector<Clause>& out) {
    out.reserve(count * 3);
    for (std::size_t i = 0; i < count; ++i) {
      const CnfLit lv = g[i].v, la = g[i].a, lb = g[i].b;
      // v <-> a & b
      out.push_back({-lv, la});
      out.push_back({-lv, lb});
      out.push_back({lv, -la, -lb});
      // Bytes were projected in pass 1; this is a deadline-only poll.
      if (governor != nullptr && (i & 0x3ffu) == 0x3ffu)
        governor->checkpoint(-1, 0);
    }
  };
  constexpr std::size_t kParallelThreshold = 4096;
  const unsigned jobs =
      pool != nullptr && gates.size() >= kParallelThreshold ? pool->size() : 1;
  if (jobs <= 1) {
    emit(gates.data(), gates.size(), cnf.clauses);
  } else {
    const std::size_t chunk = (gates.size() + jobs - 1) / jobs;
    std::vector<std::vector<Clause>> shards(jobs);
    std::mutex errMutex;
    std::exception_ptr firstError;
    std::vector<std::future<void>> futures;
    for (unsigned w = 0; w < jobs; ++w) {
      futures.push_back(pool->submit([&, w] {
        const std::size_t lo = std::min(gates.size(), w * chunk);
        const std::size_t hi = std::min(gates.size(), lo + chunk);
        try {
          emit(gates.data() + lo, hi - lo, shards[w]);
        } catch (...) {
          std::lock_guard<std::mutex> lk(errMutex);
          if (!firstError) firstError = std::current_exception();
        }
      }));
    }
    for (auto& f : futures) f.get();
    if (firstError) std::rethrow_exception(firstError);
    std::size_t total = 0;
    for (const auto& s : shards) total += s.size();
    cnf.clauses.reserve(total + 1);
    for (auto& s : shards)
      for (auto& c : s) cnf.clauses.push_back(std::move(c));
  }
  cnf.addClause({litFor(root)});
  return cnf;
}

void writeDimacs(const Cnf& cnf, std::ostream& os) {
  os << "p cnf " << cnf.numVars << ' ' << cnf.numClauses() << '\n';
  for (const auto& c : cnf.clauses) {
    for (CnfLit l : c) os << l << ' ';
    os << "0\n";
  }
}

Cnf parseDimacs(std::istream& is) {
  Cnf cnf;
  std::string line;
  bool sawHeader = false;
  std::size_t expectedClauses = 0;
  Clause current;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream hs(line);
      std::string p, fmt;
      hs >> p >> fmt >> cnf.numVars >> expectedClauses;
      VELEV_CHECK_MSG(fmt == "cnf", "unsupported DIMACS format: " << fmt);
      sawHeader = true;
      continue;
    }
    VELEV_CHECK_MSG(sawHeader, "DIMACS clause before p-line");
    std::istringstream ls(line);
    CnfLit lit;
    while (ls >> lit) {
      if (lit == 0) {
        cnf.addClause(std::move(current));
        current.clear();
      } else {
        VELEV_CHECK_MSG(static_cast<std::uint32_t>(std::abs(lit)) <=
                            cnf.numVars,
                        "literal exceeds declared variable count");
        current.push_back(lit);
      }
    }
  }
  VELEV_CHECK_MSG(current.empty(), "unterminated final clause");
  return cnf;
}

}  // namespace velev::prop
