#include "prop/cnf.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "support/budget.hpp"

namespace velev::prop {

Cnf tseitin(const PropCtx& cx, PLit root, bool negateRoot) {
  Cnf cnf;
  cnf.numVars = cx.numVars();
  if (negateRoot) root = negate(root);

  if (root == kTrue) return cnf;  // no clauses: trivially satisfiable
  if (root == kFalse) {
    cnf.addClause({});  // the empty clause: trivially unsatisfiable
    return cnf;
  }

  // CNF variable for each AIG node in the cone (inputs keep var index + 1).
  std::unordered_map<std::uint32_t, std::uint32_t> nodeVar;
  auto varFor = [&](std::uint32_t node) -> std::uint32_t {
    if (cx.isVarNode(node)) return cx.varIndex(node) + 1;
    auto it = nodeVar.find(node);
    if (it != nodeVar.end()) return it->second;
    const std::uint32_t v = cnf.newVar();
    nodeVar.emplace(node, v);
    return v;
  };
  auto litFor = [&](PLit l) -> CnfLit {
    const CnfLit v = static_cast<CnfLit>(varFor(nodeOf(l)));
    return isNegated(l) ? -v : v;
  };

  // The CNF can dwarf the AIG it came from, so its growth is governed too:
  // a separate byte-accounting slot tracks clause-storage bytes (literal
  // payload plus per-clause vector overhead) on a strided checkpoint.
  BudgetGovernor* const governor = cx.budgetGovernor();
  const int budgetSource =
      governor != nullptr ? governor->registerSource() : -1;
  std::size_t clauseBytes = 0;
  std::uint32_t budgetTick = 0;

  // Iterative postorder over And nodes.
  std::vector<std::uint32_t> stack = {nodeOf(root)};
  std::vector<char> seen;
  auto visited = [&](std::uint32_t n) -> char& {
    if (seen.size() <= n) seen.resize(n + 1, 0);
    return seen[n];
  };
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (visited(n) || cx.isVarNode(n)) continue;
    visited(n) = 1;
    // Each processed node emits three clauses (7 literals) and at most one
    // map entry; accumulate instead of rescanning the clause database.
    clauseBytes += 7 * sizeof(CnfLit) + 3 * (sizeof(Clause) + 16) + 48 + 1;
    if (governor != nullptr && (++budgetTick & 0x3ffu) == 0)
      governor->checkpoint(budgetSource, clauseBytes);
    VELEV_CHECK(cx.isAndNode(n));
    const PLit a = cx.andLeft(n), b = cx.andRight(n);
    const CnfLit lv = static_cast<CnfLit>(varFor(n));
    const CnfLit la = litFor(a), lb = litFor(b);
    // v <-> a & b
    cnf.addClause({-lv, la});
    cnf.addClause({-lv, lb});
    cnf.addClause({lv, -la, -lb});
    if (!cx.isVarNode(nodeOf(a))) stack.push_back(nodeOf(a));
    if (!cx.isVarNode(nodeOf(b))) stack.push_back(nodeOf(b));
  }
  cnf.addClause({litFor(root)});
  return cnf;
}

void writeDimacs(const Cnf& cnf, std::ostream& os) {
  os << "p cnf " << cnf.numVars << ' ' << cnf.numClauses() << '\n';
  for (const auto& c : cnf.clauses) {
    for (CnfLit l : c) os << l << ' ';
    os << "0\n";
  }
}

Cnf parseDimacs(std::istream& is) {
  Cnf cnf;
  std::string line;
  bool sawHeader = false;
  std::size_t expectedClauses = 0;
  Clause current;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream hs(line);
      std::string p, fmt;
      hs >> p >> fmt >> cnf.numVars >> expectedClauses;
      VELEV_CHECK_MSG(fmt == "cnf", "unsupported DIMACS format: " << fmt);
      sawHeader = true;
      continue;
    }
    VELEV_CHECK_MSG(sawHeader, "DIMACS clause before p-line");
    std::istringstream ls(line);
    CnfLit lit;
    while (ls >> lit) {
      if (lit == 0) {
        cnf.addClause(std::move(current));
        current.clear();
      } else {
        VELEV_CHECK_MSG(static_cast<std::uint32_t>(std::abs(lit)) <=
                            cnf.numVars,
                        "literal exceeds declared variable count");
        current.push_back(lit);
      }
    }
  }
  VELEV_CHECK_MSG(current.empty(), "unterminated final clause");
  return cnf;
}

}  // namespace velev::prop
