#include "evc/ufelim.hpp"

#include <unordered_map>
#include <vector>

#include "eufm/traverse.hpp"

namespace velev::evc {

using eufm::Context;
using eufm::Expr;
using eufm::Kind;

namespace {

/// Eager maximal-diversity simplification of equalities between UF-free
/// terms (one of EVC's "conservative transformations"). Equations are pushed
/// through ITE structure; a pair of syntactically distinct variables where
/// either side is a p-term simplifies to FALSE, exactly as the encoder would
/// decide later. Applying this while building the functional-consistency
/// match conditions keeps the nested-ITE chains collapsed: without it the
/// chains grow quadratically and the downstream encoding becomes quartic in
/// the issue width.
class EqSimplifier {
 public:
  EqSimplifier(Context& cx, const Classification& cl,
               const std::unordered_set<Expr>& freshG)
      : cx_(cx), cl_(cl), freshG_(freshG) {}

  Expr eq(Expr a, Expr b) {
    if (a == b) return cx_.mkTrue();
    if (a > b) std::swap(a, b);
    const auto key = std::make_pair(a, b);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Expr r;
    if (cx_.kind(a) == Kind::IteT) {
      r = cx_.mkIteF(cx_.arg(a, 0), eq(cx_.arg(a, 1), b),
                     eq(cx_.arg(a, 2), b));
    } else if (cx_.kind(b) == Kind::IteT) {
      r = cx_.mkIteF(cx_.arg(b, 0), eq(a, cx_.arg(b, 1)),
                     eq(a, cx_.arg(b, 2)));
    } else {
      VELEV_CHECK(cx_.kind(a) == Kind::TermVar &&
                  cx_.kind(b) == Kind::TermVar);
      r = (isG(a) && isG(b)) ? cx_.mkEq(a, b) : cx_.mkFalse();
    }
    memo_.emplace(key, r);
    return r;
  }

 private:
  bool isG(Expr v) const { return cl_.gVars.count(v) || freshG_.count(v); }

  struct PairHash {
    std::size_t operator()(const std::pair<Expr, Expr>& p) const {
      return static_cast<std::size_t>(p.first) * 0x9e3779b97f4a7c15ULL ^
             p.second;
    }
  };
  Context& cx_;
  const Classification& cl_;
  const std::unordered_set<Expr>& freshG_;
  std::unordered_map<std::pair<Expr, Expr>, Expr, PairHash> memo_;
};

}  // namespace

UfElimResult eliminateUf(Context& cx, Expr root, const Classification& cl) {
  UfElimResult res;
  std::unordered_map<Expr, Expr> map;
  auto mapped = [&](Expr e) { return map.at(e); };
  EqSimplifier simp(cx, cl, res.freshGVars);

  struct App {
    std::vector<Expr> args;
    Expr var;
  };
  std::unordered_map<eufm::FuncId, std::vector<App>> apps;

  eufm::postorder(cx, root, [&](Expr e) {
    Expr r = eufm::kNoExpr;
    switch (cx.kind(e)) {
      case Kind::True:
      case Kind::False:
      case Kind::BoolVar:
      case Kind::TermVar:
        r = e;
        break;
      case Kind::Not:
        r = cx.mkNot(mapped(cx.arg(e, 0)));
        break;
      case Kind::And:
        r = cx.mkAnd(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)));
        break;
      case Kind::Or:
        r = cx.mkOr(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)));
        break;
      case Kind::IteF:
        r = cx.mkIteF(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)),
                      mapped(cx.arg(e, 2)));
        break;
      case Kind::IteT:
        r = cx.mkIteT(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)),
                      mapped(cx.arg(e, 2)));
        break;
      case Kind::Eq:
        r = cx.mkEq(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)));
        break;
      case Kind::Uf:
      case Kind::Up: {
        const eufm::FuncId f = cx.funcOf(e);
        const bool isPred = cx.kind(e) == Kind::Up;
        std::vector<Expr> args;
        for (Expr a : cx.args(e)) args.push_back(mapped(a));
        // Fresh variable for this application.
        const std::string& fname = cx.func(f).name;
        Expr fresh;
        if (isPred) {
          fresh = cx.freshBoolVar(fname + "$");
          ++res.freshBoolVars;
        } else {
          fresh = cx.freshTermVar(fname + "$");
          ++res.freshTermVars;
          if (cl.gFuncs.count(f)) res.freshGVars.insert(fresh);
        }
        // Nested-ITE chain over all earlier applications of f, earliest
        // match first.
        std::vector<App>& prev = apps[f];
        Expr acc = fresh;
        for (std::size_t i = prev.size(); i-- > 0;) {
          Expr match = cx.mkTrue();
          for (std::size_t a = 0; a < args.size() && match != cx.mkFalse();
               ++a)
            match = cx.mkAnd(match, simp.eq(args[a], prev[i].args[a]));
          acc = isPred ? cx.mkIteF(match, prev[i].var, acc)
                       : cx.mkIteT(match, prev[i].var, acc);
        }
        prev.push_back(App{args, fresh});
        r = acc;
        break;
      }
      case Kind::Read:
      case Kind::Write:
        VELEV_UNREACHABLE("memory operator reached UF elimination");
      default:
        VELEV_UNREACHABLE("unhandled kind");
    }
    map.emplace(e, r);
  });

  res.root = map.at(root);
  return res;
}

UfElimResult eliminateUfAckermann(Context& cx, Expr root,
                                  const Classification& cl) {
  (void)cl;  // Ackermann cannot exploit the classification: everything
             // becomes general — re-classify the returned formula.
  UfElimResult res;
  std::unordered_map<Expr, Expr> map;
  auto mapped = [&](Expr e) { return map.at(e); };

  struct App {
    std::vector<Expr> args;
    Expr var;
    bool isPred;
  };
  std::unordered_map<eufm::FuncId, std::vector<App>> apps;
  std::vector<Expr> constraints;

  eufm::postorder(cx, root, [&](Expr e) {
    Expr r = eufm::kNoExpr;
    switch (cx.kind(e)) {
      case Kind::True:
      case Kind::False:
      case Kind::BoolVar:
      case Kind::TermVar:
        r = e;
        break;
      case Kind::Not:
        r = cx.mkNot(mapped(cx.arg(e, 0)));
        break;
      case Kind::And:
        r = cx.mkAnd(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)));
        break;
      case Kind::Or:
        r = cx.mkOr(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)));
        break;
      case Kind::IteF:
        r = cx.mkIteF(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)),
                      mapped(cx.arg(e, 2)));
        break;
      case Kind::IteT:
        r = cx.mkIteT(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)),
                      mapped(cx.arg(e, 2)));
        break;
      case Kind::Eq:
        r = cx.mkEq(mapped(cx.arg(e, 0)), mapped(cx.arg(e, 1)));
        break;
      case Kind::Uf:
      case Kind::Up: {
        const eufm::FuncId f = cx.funcOf(e);
        const bool isPred = cx.kind(e) == Kind::Up;
        std::vector<Expr> args;
        for (Expr a : cx.args(e)) args.push_back(mapped(a));
        Expr fresh;
        const std::string& fname = cx.func(f).name;
        if (isPred) {
          fresh = cx.freshBoolVar(fname + "$ack");
          ++res.freshBoolVars;
        } else {
          fresh = cx.freshTermVar(fname + "$ack");
          ++res.freshTermVars;
        }
        // Pairwise functional-consistency constraints with every earlier
        // application of f.
        for (const App& prev : apps[f]) {
          Expr match = cx.mkTrue();
          for (std::size_t a = 0; a < args.size(); ++a)
            match = cx.mkAnd(match, cx.mkEq(args[a], prev.args[a]));
          const Expr consistent =
              isPred ? cx.mkIff(fresh, prev.var) : cx.mkEq(fresh, prev.var);
          constraints.push_back(cx.mkImplies(match, consistent));
        }
        apps[f].push_back(App{args, fresh, isPred});
        r = fresh;
        break;
      }
      case Kind::Read:
      case Kind::Write:
        VELEV_UNREACHABLE("memory operator reached UF elimination");
      default:
        VELEV_UNREACHABLE("unhandled kind");
    }
    map.emplace(e, r);
  });

  res.root = cx.mkImplies(cx.mkAnd(constraints), map.at(root));
  return res;
}

}  // namespace velev::evc
