// Transitivity constraints over the e_ij variables (Bryant–Velev,
// "Boolean Satisfiability with Transitivity Constraints").
//
// The e_ij encoding is sound only if the Boolean assignment respects
// transitivity of equality: e_ab & e_bc -> e_ac. Enforcing it for every
// triple is cubic in the number of g-variables; instead the comparison
// graph is chordalized by a minimum-degree elimination order (fill-in edges
// get fresh CNF variables), and the three implication clauses are emitted
// for every triangle created during elimination — sufficient for chordal
// graphs.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "eufm/expr.hpp"
#include "prop/cnf.hpp"

namespace velev {
class BudgetGovernor;
class ThreadPool;
}  // namespace velev

namespace velev::evc {

struct TransitivityStats {
  unsigned fillInEdges = 0;
  unsigned triangles = 0;
  unsigned clauses = 0;
};

/// Append transitivity clauses for the comparison graph whose edges are the
/// e_ij variables (given as CNF variable indices) to `cnf`. Fill-in edges
/// allocate fresh CNF variables. Fill-in is where the PE-only flow's
/// quadratic-and-worse blowup lives, so the elimination loop checkpoints
/// `governor` (if given) and unwinds as BudgetExceeded on exhaustion.
///
/// The comparison graph decomposes into connected components that are
/// independent under elimination; with a non-null `pool` the components are
/// chordalized in parallel. Output (clauses, fill-in variable numbering)
/// and stats are identical for any worker count.
TransitivityStats addTransitivityConstraints(
    const std::map<std::pair<eufm::Expr, eufm::Expr>, std::uint32_t>& edges,
    prop::Cnf& cnf, BudgetGovernor* governor = nullptr,
    ThreadPool* pool = nullptr);

}  // namespace velev::evc
