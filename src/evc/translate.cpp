#include "evc/translate.hpp"

#include "evc/memory.hpp"
#include "evc/polarity.hpp"
#include "evc/ufelim.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace velev::evc {

using eufm::Expr;

namespace {

/// Publish the Table-3 / Table-5 quantities on the active trace collector
/// (no-ops when tracing is off). Names are part of the documented scheme —
/// see docs/TRACE_FORMAT.md before renaming.
void traceStats(const TranslationStats& s) {
  namespace tr = velev::trace;
  if (tr::active() == nullptr) return;
  tr::counterSet("evc.eij_vars", s.eijVars);
  tr::counterSet("evc.other_primary_vars", s.otherPrimaryVars);
  tr::counterSet("evc.p_equations", s.pEquations);
  tr::counterSet("evc.g_equations", s.gEquations);
  tr::counterSet("evc.g_vars", s.gVars);
  tr::counterSet("evc.memory_equations", s.memoryEquations);
  tr::counterSet("evc.fresh_term_vars", s.freshTermVars);
  tr::counterSet("evc.fresh_bool_vars", s.freshBoolVars);
  tr::counterSet("evc.transitivity_fill_in_edges", s.transitivity.fillInEdges);
  tr::counterSet("evc.transitivity_triangles", s.transitivity.triangles);
  tr::counterSet("evc.transitivity_clauses", s.transitivity.clauses);
  tr::counterSet("cnf.vars", s.cnfVars);
  tr::counterSet("cnf.clauses", s.cnfClauses);
}

}  // namespace

const char* ufSchemeName(UfScheme s) { return names::nameOf(s); }

std::optional<UfScheme> ufSchemeFromName(std::string_view name) {
  return names::fromName<UfScheme>(name);
}

Translation translate(eufm::Context& cx, Expr correctness,
                      const TranslateOptions& opts) {
  Translation tr;

  // 1. Memory elimination.
  const MemoryElimResult mem = [&] {
    TRACE_SPAN("translate.memory");
    return opts.conservativeMemory ? eliminateMemoryConservative(cx, correctness)
                                   : eliminateMemoryFull(cx, correctness);
  }();
  tr.stats.memoryEquations = mem.memoryEquations;

  // 2. Positive-equality classification.
  const Classification cl = [&] {
    TRACE_SPAN("translate.classify");
    return classify(cx, mem.root);
  }();
  tr.stats.gEquations = cl.gEquations;
  tr.stats.pEquations = cl.pEquations;

  // 3. UF/UP elimination.
  std::unordered_set<Expr> gVars;
  UfElimResult uf;
  {
    TRACE_SPAN("translate.ufelim");
    if (opts.ufScheme == UfScheme::NestedIte) {
      uf = eliminateUf(cx, mem.root, cl);
      gVars = cl.gVars;
      gVars.insert(uf.freshGVars.begin(), uf.freshGVars.end());
    } else {
      // Ackermann: the consistency antecedents put every equality in mixed
      // polarity, so the classification must be redone on the result — the
      // Positive Equality reduction is forfeited (ablation baseline).
      uf = eliminateUfAckermann(cx, mem.root, cl);
      const Classification cl2 = classify(cx, uf.root);
      gVars = cl2.gVars;
      tr.stats.gEquations = cl2.gEquations;
      tr.stats.pEquations = cl2.pEquations;
    }
  }
  tr.stats.freshTermVars = uf.freshTermVars;
  tr.stats.freshBoolVars = uf.freshBoolVars;
  tr.stats.gVars = static_cast<unsigned>(gVars.size());

  // 4. Propositional encoding with e_ij variables.
  Encoding enc = [&] {
    TRACE_SPAN("translate.encode");
    return encode(cx, uf.root, gVars);
  }();
  tr.stats.eijVars = enc.numEij();
  tr.stats.otherPrimaryVars = enc.numOtherPrimary();

  // 5. CNF of the negation + transitivity constraints. Both sub-steps can
  // shard across opts.pool; the `evc.parallel.*` spans record the
  // coordinator's wait on the sharded work (absent on sequential runs).
  if (opts.pool != nullptr)
    velev::trace::counterSet("evc.parallel.jobs", opts.pool->size());
  if (opts.emitCnf) {
    TRACE_SPAN("translate.cnf");
    if (opts.pool != nullptr) {
      TRACE_SPAN("evc.parallel.tseitin");
      tr.cnf = prop::tseitin(*enc.pctx, enc.root, /*negateRoot=*/true,
                             opts.pool);
    } else {
      tr.cnf = prop::tseitin(*enc.pctx, enc.root, /*negateRoot=*/true);
    }
  } else {
    // BDD engine: no Tseitin — the CNF carries only the transitivity
    // constraints, whose fill-in variables number after the AIG inputs.
    tr.cnf.numVars = enc.pctx->numVars();
  }
  {
    TRACE_SPAN("translate.transitivity");
    std::map<std::pair<Expr, Expr>, std::uint32_t> eijCnfVars;
    for (const auto& [pair, lit] : enc.eijLit)
      eijCnfVars.emplace(pair, enc.pctx->varIndex(prop::nodeOf(lit)) + 1);
    if (opts.pool != nullptr) {
      TRACE_SPAN("evc.parallel.transitivity");
      tr.stats.transitivity = addTransitivityConstraints(
          eijCnfVars, tr.cnf, cx.budgetGovernor(), opts.pool);
    } else {
      tr.stats.transitivity =
          addTransitivityConstraints(eijCnfVars, tr.cnf, cx.budgetGovernor());
    }
  }
  tr.stats.cnfVars = tr.cnf.numVars;
  tr.stats.cnfClauses = tr.cnf.numClauses();
  traceStats(tr.stats);

  tr.ufRoot = uf.root;
  tr.validityRoot = enc.root;
  tr.boolVarLit = std::move(enc.boolVarLit);
  tr.eijLit = std::move(enc.eijLit);
  tr.pctx = std::move(enc.pctx);
  return tr;
}

std::span<const prop::Clause> Translation::transitivityClauses() const {
  const std::size_t n = stats.transitivity.clauses;
  VELEV_CHECK(n <= cnf.clauses.size());
  return std::span<const prop::Clause>(cnf.clauses).last(n);
}

std::optional<bool> Translation::modelValue(
    const eufm::Context& cx, Expr boolVar,
    const std::vector<bool>& model) const {
  VELEV_CHECK(cx.kind(boolVar) == eufm::Kind::BoolVar);
  auto it = boolVarLit.find(boolVar);
  if (it == boolVarLit.end()) return std::nullopt;
  const std::uint32_t var = pctx->varIndex(prop::nodeOf(it->second)) + 1;
  if (var >= model.size()) return std::nullopt;
  return model[var] != prop::isNegated(it->second);
}

}  // namespace velev::evc
