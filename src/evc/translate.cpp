#include "evc/translate.hpp"

#include "evc/memory.hpp"
#include "evc/polarity.hpp"
#include "evc/ufelim.hpp"

namespace velev::evc {

using eufm::Expr;

Translation translate(eufm::Context& cx, Expr correctness,
                      const TranslateOptions& opts) {
  Translation tr;

  // 1. Memory elimination.
  const MemoryElimResult mem =
      opts.conservativeMemory ? eliminateMemoryConservative(cx, correctness)
                              : eliminateMemoryFull(cx, correctness);
  tr.stats.memoryEquations = mem.memoryEquations;

  // 2. Positive-equality classification.
  const Classification cl = classify(cx, mem.root);
  tr.stats.gEquations = cl.gEquations;
  tr.stats.pEquations = cl.pEquations;

  // 3. UF/UP elimination.
  std::unordered_set<Expr> gVars;
  UfElimResult uf;
  if (opts.ufScheme == UfScheme::NestedIte) {
    uf = eliminateUf(cx, mem.root, cl);
    gVars = cl.gVars;
    gVars.insert(uf.freshGVars.begin(), uf.freshGVars.end());
  } else {
    // Ackermann: the consistency antecedents put every equality in mixed
    // polarity, so the classification must be redone on the result — the
    // Positive Equality reduction is forfeited (ablation baseline).
    uf = eliminateUfAckermann(cx, mem.root, cl);
    const Classification cl2 = classify(cx, uf.root);
    gVars = cl2.gVars;
    tr.stats.gEquations = cl2.gEquations;
    tr.stats.pEquations = cl2.pEquations;
  }
  tr.stats.freshTermVars = uf.freshTermVars;
  tr.stats.freshBoolVars = uf.freshBoolVars;
  tr.stats.gVars = static_cast<unsigned>(gVars.size());

  // 4. Propositional encoding with e_ij variables.
  Encoding enc = encode(cx, uf.root, gVars);
  tr.stats.eijVars = enc.numEij();
  tr.stats.otherPrimaryVars = enc.numOtherPrimary();

  // 5. CNF of the negation + transitivity constraints.
  tr.cnf = prop::tseitin(*enc.pctx, enc.root, /*negateRoot=*/true);
  std::map<std::pair<Expr, Expr>, std::uint32_t> eijCnfVars;
  for (const auto& [pair, lit] : enc.eijLit)
    eijCnfVars.emplace(pair, enc.pctx->varIndex(prop::nodeOf(lit)) + 1);
  tr.stats.transitivity =
      addTransitivityConstraints(eijCnfVars, tr.cnf, cx.budgetGovernor());
  tr.stats.cnfVars = tr.cnf.numVars;
  tr.stats.cnfClauses = tr.cnf.numClauses();

  tr.validityRoot = enc.root;
  tr.boolVarLit = std::move(enc.boolVarLit);
  tr.eijLit = std::move(enc.eijLit);
  tr.pctx = std::move(enc.pctx);
  return tr;
}

std::optional<bool> Translation::modelValue(
    const eufm::Context& cx, Expr boolVar,
    const std::vector<bool>& model) const {
  VELEV_CHECK(cx.kind(boolVar) == eufm::Kind::BoolVar);
  auto it = boolVarLit.find(boolVar);
  if (it == boolVarLit.end()) return std::nullopt;
  const std::uint32_t var = pctx->varIndex(prop::nodeOf(it->second)) + 1;
  if (var >= model.size()) return std::nullopt;
  return model[var] != prop::isNegated(it->second);
}

}  // namespace velev::evc
