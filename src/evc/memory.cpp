#include "evc/memory.hpp"

#include <unordered_map>
#include <unordered_set>

#include "eufm/memsort.hpp"
#include "eufm/traverse.hpp"
#include "evc/polarity.hpp"
#include "support/hash.hpp"

namespace velev::evc {

using eufm::Context;
using eufm::Expr;
using eufm::Kind;

namespace {

/// Check that every equation between memory-sorted terms occurs in positive
/// polarity only: the fresh-address reduction Skolemizes the existential
/// "some address differs" in the negated formula, which is sound only there.
void checkMemEqPolarities(const Context& cx, Expr root,
                          const std::unordered_set<Expr>& memSorted) {
  const auto pol = computePolarities(cx, root);
  for (const auto& [f, m] : pol) {
    if (cx.kind(f) != Kind::Eq) continue;
    if (!memSorted.count(cx.arg(f, 0)) && !memSorted.count(cx.arg(f, 1)))
      continue;
    VELEV_CHECK_MSG((m & kPolNeg) == 0,
                    "memory equation in negative polarity is not supported");
  }
}

struct PairHash {
  std::size_t operator()(const std::pair<Expr, Expr>& p) const {
    return static_cast<std::size_t>(hashValues({p.first, p.second}));
  }
};

// Shared machinery for both elimination passes. Rewrites the DAG bottom-up;
// the virtual hooks decide what happens to reads, writes and memory
// equations.
class MemRewriter {
 public:
  MemRewriter(Context& cx, std::unordered_set<Expr> memSorted)
      : cx_(cx), memSorted_(std::move(memSorted)) {}
  virtual ~MemRewriter() = default;

  Expr rewriteAll(Expr root) {
    eufm::postorder(cx_, root, [&](Expr e) { map_[e] = rewriteNode(e); });
    return map_.at(root);
  }

  unsigned memoryEquations = 0;

 protected:
  Expr mapped(Expr e) const { return map_.at(e); }
  bool isMemSorted(Expr e) const { return memSorted_.count(e) != 0; }

  virtual Expr onRead(Expr mem, Expr addr) = 0;
  virtual Expr onWrite(Expr mem, Expr addr, Expr data) = 0;

  Context& cx_;

 private:
  Expr rewriteNode(Expr e) {
    switch (cx_.kind(e)) {
      case Kind::True:
      case Kind::False:
      case Kind::BoolVar:
      case Kind::TermVar:
        return e;
      case Kind::Not:
        return cx_.mkNot(mapped(cx_.arg(e, 0)));
      case Kind::And:
        return cx_.mkAnd(mapped(cx_.arg(e, 0)), mapped(cx_.arg(e, 1)));
      case Kind::Or:
        return cx_.mkOr(mapped(cx_.arg(e, 0)), mapped(cx_.arg(e, 1)));
      case Kind::IteF:
        return cx_.mkIteF(mapped(cx_.arg(e, 0)), mapped(cx_.arg(e, 1)),
                          mapped(cx_.arg(e, 2)));
      case Kind::IteT:
        return cx_.mkIteT(mapped(cx_.arg(e, 0)), mapped(cx_.arg(e, 1)),
                          mapped(cx_.arg(e, 2)));
      case Kind::Eq: {
        const Expr a = cx_.arg(e, 0), b = cx_.arg(e, 1);
        if (isMemSorted(a) || isMemSorted(b)) {
          // One fresh address per distinct memory equation (Skolemization of
          // the negated formula).
          ++memoryEquations;
          const Expr va = cx_.freshTermVar("va");
          return cx_.mkEq(onRead(mapped(a), va), onRead(mapped(b), va));
        }
        return cx_.mkEq(mapped(a), mapped(b));
      }
      case Kind::Up:
      case Kind::Uf: {
        std::vector<Expr> args;
        for (Expr a : cx_.args(e)) args.push_back(mapped(a));
        return cx_.apply(cx_.funcOf(e), args);
      }
      case Kind::Read:
        return onRead(mapped(cx_.arg(e, 0)), mapped(cx_.arg(e, 1)));
      case Kind::Write:
        return onWrite(mapped(cx_.arg(e, 0)), mapped(cx_.arg(e, 1)),
                       mapped(cx_.arg(e, 2)));
      default:
        VELEV_UNREACHABLE("unhandled kind");
    }
  }

  std::unordered_set<Expr> memSorted_;
  std::unordered_map<Expr, Expr> map_;
};

/// Full memory semantics: expand reads through write/ITE structure down to
/// base memory variables, then abstract base reads with read$ applications.
class FullRewriter final : public MemRewriter {
 public:
  FullRewriter(Context& cx, std::unordered_set<Expr> memSorted)
      : MemRewriter(cx, std::move(memSorted)),
        readUf_(cx.declareFunc("read$", 2)) {}

  unsigned expandedReads = 0;

 protected:
  Expr onRead(Expr mem, Expr addr) override { return expand(mem, addr); }

  Expr onWrite(Expr mem, Expr addr, Expr data) override {
    // Writes are kept structurally; they disappear from the formula because
    // every read over them is expanded.
    return cx_.mkWrite(mem, addr, data);
  }

 private:
  Expr expand(Expr mem, Expr addr) {
    const auto key = std::make_pair(mem, addr);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Expr r;
    switch (cx_.kind(mem)) {
      case Kind::Write: {
        // Forwarding property: a read returns the last write to the same
        // address, else falls through to the previous state.
        ++expandedReads;
        const Expr wm = cx_.arg(mem, 0), wa = cx_.arg(mem, 1),
                   wd = cx_.arg(mem, 2);
        r = cx_.mkIteT(cx_.mkEq(addr, wa), wd, expand(wm, addr));
        break;
      }
      case Kind::IteT:
        r = cx_.mkIteT(cx_.arg(mem, 0), expand(cx_.arg(mem, 1), addr),
                       expand(cx_.arg(mem, 2), addr));
        break;
      case Kind::TermVar:
        r = cx_.apply(readUf_, {mem, addr});
        break;
      default:
        VELEV_UNREACHABLE("read applied to a non-memory term");
    }
    memo_.emplace(key, r);
    return r;
  }

  eufm::FuncId readUf_;
  std::unordered_map<std::pair<Expr, Expr>, Expr, PairHash> memo_;
};

/// Conservative memory model: read/write become completely general
/// uninterpreted functions without the forwarding property (TACAS'01).
class ConservativeRewriter final : public MemRewriter {
 public:
  ConservativeRewriter(Context& cx, std::unordered_set<Expr> memSorted)
      : MemRewriter(cx, std::move(memSorted)),
        readUf_(cx.declareFunc("read$", 2)),
        writeUf_(cx.declareFunc("write$", 3)) {}

 protected:
  Expr onRead(Expr mem, Expr addr) override {
    return cx_.apply(readUf_, {mem, addr});
  }
  Expr onWrite(Expr mem, Expr addr, Expr data) override {
    return cx_.apply(writeUf_, {mem, addr, data});
  }

 private:
  eufm::FuncId readUf_;
  eufm::FuncId writeUf_;
};

}  // namespace

MemoryElimResult eliminateMemoryFull(Context& cx, Expr root) {
  auto memSorted = eufm::inferMemorySorted(cx, root);
  checkMemEqPolarities(cx, root, memSorted);
  FullRewriter rw(cx, std::move(memSorted));
  MemoryElimResult res;
  res.root = rw.rewriteAll(root);
  res.memoryEquations = rw.memoryEquations;
  res.expandedReads = rw.expandedReads;
  // No memory operator may survive in the rewritten formula's cone.
  eufm::postorder(cx, res.root, [&](Expr e) {
    const Kind k = cx.kind(e);
    VELEV_CHECK_MSG(k != Kind::Read && k != Kind::Write,
                    "memory operator survived full elimination");
  });
  return res;
}

MemoryElimResult eliminateMemoryConservative(Context& cx, Expr root) {
  auto memSorted = eufm::inferMemorySorted(cx, root);
  checkMemEqPolarities(cx, root, memSorted);
  ConservativeRewriter rw(cx, std::move(memSorted));
  MemoryElimResult res;
  res.root = rw.rewriteAll(root);
  res.memoryEquations = rw.memoryEquations;
  return res;
}

}  // namespace velev::evc
