#include "evc/polarity.hpp"

#include <vector>

namespace velev::evc {

using eufm::Context;
using eufm::Expr;
using eufm::Kind;

namespace {

std::uint8_t flip(std::uint8_t m) {
  return static_cast<std::uint8_t>(((m & kPolPos) << 1) | ((m & kPolNeg) >> 1));
}

struct PolarityWalker {
  const Context& cx;
  std::unordered_map<Expr, std::uint8_t> mask;     // formula nodes
  std::unordered_set<Expr> termSeen;               // term nodes (visited once)
  std::vector<std::pair<Expr, std::uint8_t>> work; // formula worklist

  void pushFormula(Expr f, std::uint8_t m) {
    std::uint8_t& cur = mask[f];
    const std::uint8_t added = static_cast<std::uint8_t>(m & ~cur);
    if (!added) return;
    cur |= added;
    work.emplace_back(f, added);
  }

  // Terms carry no polarity of their own, but ITE controls inside them are
  // both-polarity formulas, and UP/UF argument terms must be walked too.
  void visitTerm(Expr t) {
    std::vector<Expr> stack = {t};
    while (!stack.empty()) {
      const Expr e = stack.back();
      stack.pop_back();
      if (!termSeen.insert(e).second) continue;
      switch (cx.kind(e)) {
        case Kind::IteT:
          pushFormula(cx.arg(e, 0), kPolBoth);
          stack.push_back(cx.arg(e, 1));
          stack.push_back(cx.arg(e, 2));
          break;
        case Kind::Uf:
        case Kind::Read:
        case Kind::Write:
          for (Expr a : cx.args(e)) stack.push_back(a);
          break;
        default:
          break;  // TermVar
      }
    }
  }

  void run(Expr root) {
    pushFormula(root, kPolPos);
    while (!work.empty()) {
      auto [f, m] = work.back();
      work.pop_back();
      switch (cx.kind(f)) {
        case Kind::Not:
          pushFormula(cx.arg(f, 0), flip(m));
          break;
        case Kind::And:
        case Kind::Or:
          pushFormula(cx.arg(f, 0), m);
          pushFormula(cx.arg(f, 1), m);
          break;
        case Kind::IteF:
          pushFormula(cx.arg(f, 0), kPolBoth);
          pushFormula(cx.arg(f, 1), m);
          pushFormula(cx.arg(f, 2), m);
          break;
        case Kind::Eq:
          visitTerm(cx.arg(f, 0));
          visitTerm(cx.arg(f, 1));
          break;
        case Kind::Up:
          for (Expr a : cx.args(f)) visitTerm(a);
          break;
        default:
          break;  // True/False/BoolVar
      }
    }
  }
};

}  // namespace

std::unordered_map<Expr, std::uint8_t> computePolarities(const Context& cx,
                                                         Expr root) {
  VELEV_CHECK(cx.isFormula(root));
  PolarityWalker w{cx, {}, {}, {}};
  w.run(root);
  return w.mask;
}

Classification classify(const Context& cx, Expr root) {
  auto pol = computePolarities(cx, root);
  Classification cl;

  // Collect g-equations; mark the term structure on both sides.
  std::vector<Expr> stack;
  std::unordered_set<Expr> marked;
  for (const auto& [f, m] : pol) {
    if (cx.kind(f) != Kind::Eq) continue;
    if ((m & kPolNeg) == 0) {
      ++cl.pEquations;
      continue;
    }
    ++cl.gEquations;
    stack.push_back(cx.arg(f, 0));
    stack.push_back(cx.arg(f, 1));
  }
  // Propagate g-ness through ITE branches; UF applications taint the
  // function symbol (their outputs become g-terms) but not their arguments.
  while (!stack.empty()) {
    const Expr t = stack.back();
    stack.pop_back();
    if (!marked.insert(t).second) continue;
    switch (cx.kind(t)) {
      case Kind::TermVar:
        cl.gVars.insert(t);
        break;
      case Kind::IteT:
        stack.push_back(cx.arg(t, 1));
        stack.push_back(cx.arg(t, 2));
        break;
      case Kind::Uf:
        cl.gFuncs.insert(cx.funcOf(t));
        break;
      case Kind::Read:
      case Kind::Write:
        VELEV_UNREACHABLE(
            "memory operator in a g-equation: run memory elimination first");
      default:
        VELEV_UNREACHABLE("unexpected term kind");
    }
  }
  return cl;
}

}  // namespace velev::evc
