#include "evc/transitivity.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/budget.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace velev::evc {

namespace {

// Fill-in edges discovered inside a component get provisional CNF variable
// ids >= kProvisionalBase (far above any real variable count); the merge
// remaps them to freshly allocated cnf.newVar() ids in component order, so
// the final numbering is deterministic and independent of worker count.
constexpr std::uint32_t kProvisionalBase = 0x40000000u;

struct ComponentResult {
  std::vector<prop::Clause> clauses;  // provisional lits for fill-in vars
  unsigned fillIn = 0;
  TransitivityStats st;
};

// Minimum-degree elimination restricted to one connected component of the
// comparison graph. Eliminating u connects its remaining neighbours
// pairwise (provisional variables for fill-in edges) and emits the triangle
// constraints (u, a, b) for every such pair.
//
// Components are independent under elimination — removing a vertex never
// changes degrees outside its component — so running each component to
// exhaustion with the same (degree, lowest-id) tie-break yields exactly the
// elimination steps the whole-graph order would have performed on that
// component, and identical fill-in/triangle/clause counts in total.
ComponentResult eliminateComponent(
    const std::vector<unsigned>& verts,
    const std::vector<std::unordered_map<unsigned, std::uint32_t>>& adjIn,
    std::size_t totalEdges, BudgetGovernor* governor) {
  ComponentResult r;
  // Local copy of this component's adjacency (fill-in mutates it).
  std::unordered_map<unsigned, std::unordered_map<unsigned, std::uint32_t>>
      adj;
  for (unsigned u : verts) adj[u] = adjIn[u];
  std::unordered_map<unsigned, char> eliminated;
  for (unsigned u : verts) eliminated[u] = 0;

  auto addTriangle = [&](std::uint32_t ab, std::uint32_t bc,
                         std::uint32_t ac) {
    const auto l = [](std::uint32_t v) { return static_cast<prop::CnfLit>(v); };
    r.clauses.push_back({-l(ab), -l(bc), l(ac)});
    r.clauses.push_back({-l(ab), -l(ac), l(bc)});
    r.clauses.push_back({-l(bc), -l(ac), l(ab)});
    ++r.st.triangles;
    r.st.clauses += 3;
  };

  for (std::size_t round = 0; round < verts.size(); ++round) {
    // One elimination round can emit O(degree^2) triangles; checkpoint the
    // clause bytes emitted so far plus the (fill-in-growing) adjacency.
    // Workers share no slot, so the bytes go to the governor's overflow
    // accounting (max over concurrent callers — the dominant component is
    // what trips a memory budget).
    if (governor != nullptr)
      governor->checkpoint(
          -1, r.st.clauses * (3 * sizeof(prop::CnfLit) +
                              sizeof(prop::Clause) + 16) +
                  (totalEdges + r.st.fillInEdges) * 2 * 48);
    unsigned best = 0;
    bool haveBest = false;
    std::size_t bestDeg = 0;
    // `verts` is sorted ascending, so ties resolve to the lowest vertex id —
    // the same tie-break the whole-graph scan applies.
    for (unsigned u : verts) {
      if (eliminated[u]) continue;
      std::size_t deg = 0;
      for (const auto& [v, var] : adj[u])
        if (!eliminated[v]) ++deg;
      if (!haveBest || deg < bestDeg) {
        best = u;
        bestDeg = deg;
        haveBest = true;
      }
    }
    VELEV_CHECK(haveBest);
    const unsigned u = best;
    eliminated[u] = 1;
    std::vector<unsigned> nbrs;
    for (const auto& [v, var] : adj[u])
      if (!eliminated[v]) nbrs.push_back(v);
    std::sort(nbrs.begin(), nbrs.end());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const unsigned a = nbrs[i], b = nbrs[j];
        auto it = adj[a].find(b);
        std::uint32_t abVar;
        if (it == adj[a].end()) {
          abVar = kProvisionalBase + r.fillIn++;
          adj[a][b] = abVar;
          adj[b][a] = abVar;
          ++r.st.fillInEdges;
        } else {
          abVar = it->second;
        }
        addTriangle(adj[u][nbrs[i]], adj[u][nbrs[j]], abVar);
      }
    }
  }
  return r;
}

}  // namespace

TransitivityStats addTransitivityConstraints(
    const std::map<std::pair<eufm::Expr, eufm::Expr>, std::uint32_t>& edges,
    prop::Cnf& cnf, BudgetGovernor* governor, ThreadPool* pool) {
  TransitivityStats st;
  if (edges.empty()) return st;
  const int budgetSource =
      governor != nullptr ? governor->registerSource() : -1;

  // Dense vertex ids for the g-variables involved.
  std::unordered_map<eufm::Expr, unsigned> vertexId;
  auto vid = [&](eufm::Expr v) {
    auto it = vertexId.find(v);
    if (it == vertexId.end())
      it = vertexId.emplace(v, static_cast<unsigned>(vertexId.size())).first;
    return it->second;
  };
  // adj[u][v] = CNF variable of edge (u,v).
  std::vector<std::unordered_map<unsigned, std::uint32_t>> adj;
  auto ensure = [&](unsigned u) {
    if (adj.size() <= u) adj.resize(u + 1);
  };
  for (const auto& [pair, var] : edges) {
    const unsigned a = vid(pair.first), b = vid(pair.second);
    ensure(std::max(a, b));
    adj[a][b] = var;
    adj[b][a] = var;
  }
  const unsigned n = static_cast<unsigned>(adj.size());

  // Connected components (union-find), each listed as a sorted vertex set;
  // components ordered by their smallest vertex id for a deterministic
  // merge order.
  std::vector<unsigned> parent(n);
  for (unsigned u = 0; u < n; ++u) parent[u] = u;
  auto findRoot = [&](unsigned u) {
    while (parent[u] != u) {
      parent[u] = parent[parent[u]];
      u = parent[u];
    }
    return u;
  };
  for (unsigned u = 0; u < n; ++u)
    for (const auto& [v, var] : adj[u]) {
      const unsigned ru = findRoot(u), rv = findRoot(v);
      if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
    }
  std::unordered_map<unsigned, std::size_t> compIndex;
  std::vector<std::vector<unsigned>> comps;
  for (unsigned u = 0; u < n; ++u) {
    const unsigned r = findRoot(u);
    auto it = compIndex.find(r);
    if (it == compIndex.end()) {
      it = compIndex.emplace(r, comps.size()).first;
      comps.emplace_back();
    }
    comps[it->second].push_back(u);  // ascending: u is scanned in order
  }

  // Eliminate each component, in parallel when a pool is available. Each
  // call is deterministic in isolation; the merge below walks components in
  // index order, so the overall output does not depend on scheduling.
  std::vector<ComponentResult> results(comps.size());
  if (pool == nullptr || comps.size() <= 1) {
    for (std::size_t c = 0; c < comps.size(); ++c)
      results[c] =
          eliminateComponent(comps[c], adj, edges.size(), governor);
  } else {
    std::mutex errMutex;
    std::exception_ptr firstError;
    std::vector<std::future<void>> futures;
    futures.reserve(comps.size());
    for (std::size_t c = 0; c < comps.size(); ++c) {
      futures.push_back(pool->submit([&, c] {
        try {
          results[c] =
              eliminateComponent(comps[c], adj, edges.size(), governor);
        } catch (...) {
          std::lock_guard<std::mutex> lk(errMutex);
          if (!firstError) firstError = std::current_exception();
        }
      }));
    }
    for (auto& f : futures) f.get();
    if (firstError) std::rethrow_exception(firstError);
  }

  // Merge in component order: allocate the real CNF variables for each
  // component's fill-in edges (in discovery order), remap the provisional
  // literals, and append the clauses.
  for (auto& r : results) {
    std::vector<std::uint32_t> fillVar(r.fillIn);
    for (unsigned k = 0; k < r.fillIn; ++k) fillVar[k] = cnf.newVar();
    for (auto& clause : r.clauses) {
      for (auto& lit : clause) {
        const std::uint32_t v = static_cast<std::uint32_t>(std::abs(lit));
        if (v >= kProvisionalBase) {
          const std::uint32_t mapped = fillVar[v - kProvisionalBase];
          lit = lit < 0 ? -static_cast<prop::CnfLit>(mapped)
                        : static_cast<prop::CnfLit>(mapped);
        }
      }
      cnf.clauses.push_back(std::move(clause));
    }
    st.fillInEdges += r.st.fillInEdges;
    st.triangles += r.st.triangles;
    st.clauses += r.st.clauses;
    if (governor != nullptr)
      governor->checkpoint(
          budgetSource,
          st.clauses * (3 * sizeof(prop::CnfLit) + sizeof(prop::Clause) + 16) +
              (edges.size() + st.fillInEdges) * 2 * 48);
  }
  return st;
}

}  // namespace velev::evc
