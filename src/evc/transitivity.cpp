#include "evc/transitivity.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/budget.hpp"
#include "support/check.hpp"

namespace velev::evc {

TransitivityStats addTransitivityConstraints(
    const std::map<std::pair<eufm::Expr, eufm::Expr>, std::uint32_t>& edges,
    prop::Cnf& cnf, BudgetGovernor* governor) {
  TransitivityStats st;
  if (edges.empty()) return st;
  const int budgetSource =
      governor != nullptr ? governor->registerSource() : -1;

  // Dense vertex ids for the g-variables involved.
  std::unordered_map<eufm::Expr, unsigned> vertexId;
  auto vid = [&](eufm::Expr v) {
    auto it = vertexId.find(v);
    if (it == vertexId.end())
      it = vertexId.emplace(v, static_cast<unsigned>(vertexId.size())).first;
    return it->second;
  };
  // adj[u][v] = CNF variable of edge (u,v).
  std::vector<std::unordered_map<unsigned, std::uint32_t>> adj;
  auto ensure = [&](unsigned u) {
    if (adj.size() <= u) adj.resize(u + 1);
  };
  for (const auto& [pair, var] : edges) {
    const unsigned a = vid(pair.first), b = vid(pair.second);
    ensure(std::max(a, b));
    adj[a][b] = var;
    adj[b][a] = var;
  }

  const unsigned n = static_cast<unsigned>(adj.size());
  std::vector<char> eliminated(n, 0);

  auto addTriangle = [&](std::uint32_t ab, std::uint32_t bc,
                         std::uint32_t ac) {
    const auto l = [](std::uint32_t v) { return static_cast<prop::CnfLit>(v); };
    cnf.addClause({-l(ab), -l(bc), l(ac)});
    cnf.addClause({-l(ab), -l(ac), l(bc)});
    cnf.addClause({-l(bc), -l(ac), l(ab)});
    ++st.triangles;
    st.clauses += 3;
  };

  // Minimum-degree elimination. Eliminating u connects its remaining
  // neighbours pairwise (fresh variables for fill-in edges) and emits the
  // triangle constraints (u, a, b) for every such pair.
  for (unsigned round = 0; round < n; ++round) {
    // One elimination round can emit O(degree^2) triangles; checkpoint the
    // clause bytes emitted so far plus the (fill-in-growing) adjacency.
    if (governor != nullptr)
      governor->checkpoint(
          budgetSource, st.clauses * (3 * sizeof(prop::CnfLit) +
                                      sizeof(prop::Clause) + 16) +
                            (edges.size() + st.fillInEdges) * 2 * 48);
    unsigned best = n;
    std::size_t bestDeg = 0;
    for (unsigned u = 0; u < n; ++u) {
      if (eliminated[u]) continue;
      std::size_t deg = 0;
      for (const auto& [v, var] : adj[u])
        if (!eliminated[v]) ++deg;
      if (best == n || deg < bestDeg) {
        best = u;
        bestDeg = deg;
      }
    }
    VELEV_CHECK(best != n);
    const unsigned u = best;
    eliminated[u] = 1;
    std::vector<unsigned> nbrs;
    for (const auto& [v, var] : adj[u])
      if (!eliminated[v]) nbrs.push_back(v);
    std::sort(nbrs.begin(), nbrs.end());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const unsigned a = nbrs[i], b = nbrs[j];
        auto it = adj[a].find(b);
        std::uint32_t abVar;
        if (it == adj[a].end()) {
          abVar = cnf.newVar();
          adj[a][b] = abVar;
          adj[b][a] = abVar;
          ++st.fillInEdges;
        } else {
          abVar = it->second;
        }
        addTriangle(adj[u][nbrs[i]], adj[u][nbrs[j]], abVar);
      }
    }
  }
  return st;
}

}  // namespace velev::evc
