// Memory elimination — the two memory models of the Velev flow.
//
// Both passes first reduce every equation between memory-sorted terms to an
// equation between reads at a fresh symbolic address (one fresh address
// variable per distinct memory equation — the Skolemization of the negated
// correctness formula's "exists an address where the register files differ").
// Memory equations must occur in positive polarity only (they do, in
// Burch–Dill correctness formulas); this is checked.
//
// `eliminateMemoryFull` then applies the forwarding property of the memory
// semantics: read(write(m,a,d),x) = ITE(x=a, d, read(m,x)), pushing reads
// down to the initial memory-state variables, and finally abstracts each
// base read as an application of a per-memory uninterpreted function
// read$<mem>. The introduced address equalities appear as ITE controls and
// become g-equations — the source of the e_ij variables of Tables 2-3.
//
// `eliminateMemoryConservative` (TACAS'01) abstracts read/write with
// *completely general* uninterpreted functions that do not satisfy the
// forwarding property. This is a sound over-approximation, and suffices
// after the rewriting rules have removed the out-of-order updates: the
// remaining instructions update both sides in program order. No address
// equalities are introduced, so no e_ij variables arise (Table 5).
#pragma once

#include "eufm/expr.hpp"

namespace velev::evc {

struct MemoryElimResult {
  eufm::Expr root = eufm::kNoExpr;
  unsigned memoryEquations = 0;  // reduced to read-equations
  unsigned expandedReads = 0;    // full model: reads pushed through writes
};

MemoryElimResult eliminateMemoryFull(eufm::Context& cx, eufm::Expr root);
MemoryElimResult eliminateMemoryConservative(eufm::Context& cx,
                                             eufm::Expr root);

}  // namespace velev::evc
