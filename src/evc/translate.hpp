// EVC: end-to-end translation of an EUFM correctness formula to CNF.
//
// Pipeline (Sect. 2 of the paper):
//   1. memory elimination — full forwarding semantics, or the conservative
//      general-UF abstraction (used after the rewriting rules);
//   2. p-/g-term classification (Positive Equality);
//   3. UF/UP elimination by the nested-ITE scheme;
//   4. propositional encoding with e_ij variables for g-variable pairs;
//   5. Tseitin CNF of the *negated* formula plus transitivity constraints —
//      the design is correct iff this CNF is unsatisfiable.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "eufm/expr.hpp"
#include "support/names.hpp"
#include "evc/encode.hpp"
#include "evc/transitivity.hpp"
#include "prop/cnf.hpp"

namespace velev::evc {

enum class UfScheme {
  NestedIte,  // Bryant–German–Velev: preserves Positive Equality (default)
  Ackermann,  // ablation baseline: forfeits Positive Equality
};

/// Stable lower-case name ("nested-ite" / "ackermann") used by the run
/// manifests and the velev_serve request schema.
const char* ufSchemeName(UfScheme s);

/// Inverse of ufSchemeName(); unknown names yield nullopt.
std::optional<UfScheme> ufSchemeFromName(std::string_view name);

struct TranslateOptions {
  /// Use the conservative (general-UF) memory model. Sound always; complete
  /// enough once out-of-order updates have been removed by rewriting.
  bool conservativeMemory = false;
  UfScheme ufScheme = UfScheme::NestedIte;
  /// With false, the Tseitin step is skipped: `cnf` then holds *only* the
  /// transitivity constraints (numVars starts at the AIG input count, so
  /// fill-in edges number straight after the inputs). The BDD engine uses
  /// this — it consumes validityRoot directly and needs just the side
  /// clauses, not the CNF of the formula.
  bool emitCnf = true;
  /// Optional worker pool for the CNF build: Tseitin clause emission is
  /// sharded across workers and the transitivity chordalization runs one
  /// comparison-graph component per worker. Output and stats are identical
  /// to the nullptr (sequential) path for any worker count.
  ThreadPool* pool = nullptr;
};

struct TranslationStats {
  unsigned eijVars = 0;
  unsigned otherPrimaryVars = 0;  // Boolean variables of the formula
  unsigned totalPrimaryVars() const { return eijVars + otherPrimaryVars; }
  std::size_t cnfVars = 0;
  std::size_t cnfClauses = 0;
  unsigned gEquations = 0;
  unsigned pEquations = 0;
  unsigned gVars = 0;
  unsigned memoryEquations = 0;
  unsigned freshTermVars = 0;
  unsigned freshBoolVars = 0;
  TransitivityStats transitivity;
};

struct Translation {
  /// Propositional form of the correctness formula (validity target).
  std::unique_ptr<prop::PropCtx> pctx;
  prop::PLit validityRoot = prop::kFalse;
  /// The UF-free, memory-free EUFM formula the encoding step consumed
  /// (after memory elimination and UF/UP elimination). A decoded SAT model
  /// assigns values to exactly the variables of this formula, so it is the
  /// formula a counterexample decoder re-evaluates (src/fuzz/decode).
  eufm::Expr ufRoot = eufm::kNoExpr;
  /// CNF of ¬validityRoot plus transitivity constraints: UNSAT <=> correct.
  prop::Cnf cnf;
  TranslationStats stats;

  /// Variable maps for decoding SAT models back to the EUFM level: a
  /// propositional input literal's CNF variable is its input index + 1.
  std::unordered_map<eufm::Expr, prop::PLit> boolVarLit;
  std::map<std::pair<eufm::Expr, eufm::Expr>, prop::PLit> eijLit;

  /// Value of an EUFM Boolean variable in a SAT model (indexed by CNF
  /// variable, entry 0 unused); nullopt if the variable does not occur.
  std::optional<bool> modelValue(const eufm::Context& cx, eufm::Expr boolVar,
                                 const std::vector<bool>& model) const;

  /// The transitivity constraints over the e_ij (plus fill-in) CNF
  /// variables — always the trailing stats.transitivity.clauses clauses of
  /// `cnf`, whichever way it was built: addTransitivityConstraints appends
  /// them last, and Tseitin auxiliaries never occur in them. The BDD
  /// engine conjoins exactly these beside ¬validityRoot; dropping them
  /// would make a satisfying path an unsound counterexample claim.
  std::span<const prop::Clause> transitivityClauses() const;
};

Translation translate(eufm::Context& cx, eufm::Expr correctness,
                      const TranslateOptions& opts = {});

}  // namespace velev::evc

/// Name-registry table (support/names.hpp): the single source of truth
/// behind ufSchemeName()/ufSchemeFromName().
template <>
struct velev::names::Registry<velev::evc::UfScheme> {
  static constexpr EnumEntry<velev::evc::UfScheme> entries[] = {
      {velev::evc::UfScheme::NestedIte, "nested-ite"},
      {velev::evc::UfScheme::Ackermann, "ackermann"},
  };
};
