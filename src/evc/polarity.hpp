// Polarity analysis and p-/g-term classification (Positive Equality,
// Bryant–German–Velev TOCL'01).
//
// An equation is *negative* if it occurs under an odd number of negations or
// as (part of) the controlling formula of an ITE. Equations occurring only
// positively are p-equations; the others are g-equations. Term variables
// feeding only p-equations are p-terms and may be given a maximally diverse
// interpretation (distinct constants); term variables reachable from either
// side of some g-equation are g-terms, whose pairwise equalities must be
// encoded with e_ij Boolean variables.
//
// Uninterpreted-function outputs are classified at function-symbol
// granularity: if any application of f flows into a g-equation, the fresh
// variables introduced when eliminating *all* applications of f are treated
// as g-terms (sound, since the nested-ITE chains mix the per-application
// variables).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "eufm/expr.hpp"

namespace velev::evc {

constexpr std::uint8_t kPolPos = 1;
constexpr std::uint8_t kPolNeg = 2;
constexpr std::uint8_t kPolBoth = kPolPos | kPolNeg;

/// Polarity mask of every formula node reachable from `root` (ITE controls —
/// of both sorts — count as both polarities).
std::unordered_map<eufm::Expr, std::uint8_t> computePolarities(
    const eufm::Context& cx, eufm::Expr root);

struct Classification {
  /// Term variables that must be treated as general terms.
  std::unordered_set<eufm::Expr> gVars;
  /// Function symbols whose outputs are general terms.
  std::unordered_set<eufm::FuncId> gFuncs;
  unsigned gEquations = 0;
  unsigned pEquations = 0;

  bool isGVar(eufm::Expr v) const { return gVars.count(v) != 0; }
};

/// Classify the (memory-free) formula `root`: find g-equations and mark the
/// term variables / function symbols feeding them.
Classification classify(const eufm::Context& cx, eufm::Expr root);

}  // namespace velev::evc
