#include "evc/encode.hpp"

#include "support/hash.hpp"

namespace velev::evc {

using eufm::Context;
using eufm::Expr;
using eufm::Kind;
using prop::PLit;

namespace {

struct PairHash {
  std::size_t operator()(const std::pair<Expr, Expr>& p) const {
    return static_cast<std::size_t>(hashValues({p.first, p.second}));
  }
};

class EncoderImpl {
 public:
  EncoderImpl(const Context& cx, const std::unordered_set<Expr>& gVars,
              Encoding& out)
      : cx_(cx), gVars_(gVars), out_(out), pctx_(*out.pctx) {}

  PLit encF(Expr f) {
    auto it = fmemo_.find(f);
    if (it != fmemo_.end()) return it->second;
    PLit r = prop::kFalse;
    switch (cx_.kind(f)) {
      case Kind::True:
        r = prop::kTrue;
        break;
      case Kind::False:
        r = prop::kFalse;
        break;
      case Kind::BoolVar: {
        auto vit = out_.boolVarLit.find(f);
        if (vit == out_.boolVarLit.end())
          vit = out_.boolVarLit.emplace(f, pctx_.mkVar()).first;
        r = vit->second;
        break;
      }
      case Kind::Not:
        r = prop::negate(encF(cx_.arg(f, 0)));
        break;
      case Kind::And:
        r = pctx_.mkAnd(encF(cx_.arg(f, 0)), encF(cx_.arg(f, 1)));
        break;
      case Kind::Or:
        r = pctx_.mkOr(encF(cx_.arg(f, 0)), encF(cx_.arg(f, 1)));
        break;
      case Kind::IteF:
        r = pctx_.mkIte(encF(cx_.arg(f, 0)), encF(cx_.arg(f, 1)),
                        encF(cx_.arg(f, 2)));
        break;
      case Kind::Eq:
        r = encEq(cx_.arg(f, 0), cx_.arg(f, 1));
        break;
      case Kind::Up:
        VELEV_UNREACHABLE("UP application reached the encoder");
      default:
        VELEV_UNREACHABLE("term kind in formula position");
    }
    fmemo_.emplace(f, r);
    return r;
  }

  PLit encEq(Expr a, Expr b) {
    if (a == b) return prop::kTrue;
    if (a > b) std::swap(a, b);
    const auto key = std::make_pair(a, b);
    auto it = eqMemo_.find(key);
    if (it != eqMemo_.end()) return it->second;
    PLit r;
    if (cx_.kind(a) == Kind::IteT) {
      const PLit c = encF(cx_.arg(a, 0));
      r = pctx_.mkIte(c, encEq(cx_.arg(a, 1), b), encEq(cx_.arg(a, 2), b));
    } else if (cx_.kind(b) == Kind::IteT) {
      const PLit c = encF(cx_.arg(b, 0));
      r = pctx_.mkIte(c, encEq(a, cx_.arg(b, 1)), encEq(a, cx_.arg(b, 2)));
    } else {
      VELEV_CHECK_MSG(cx_.kind(a) == Kind::TermVar &&
                          cx_.kind(b) == Kind::TermVar,
                      "non-variable leaf reached the equality encoder");
      if (gVars_.count(a) && gVars_.count(b)) {
        auto eit = out_.eijLit.find(key);
        if (eit == out_.eijLit.end())
          eit = out_.eijLit.emplace(key, pctx_.mkVar()).first;
        r = eit->second;
      } else {
        // Maximal diversity: a p-term variable differs from every other
        // variable.
        r = prop::kFalse;
      }
    }
    eqMemo_.emplace(key, r);
    return r;
  }

 private:
  const Context& cx_;
  const std::unordered_set<Expr>& gVars_;
  Encoding& out_;
  prop::PropCtx& pctx_;
  std::unordered_map<Expr, PLit> fmemo_;
  std::unordered_map<std::pair<Expr, Expr>, PLit, PairHash> eqMemo_;
};

}  // namespace

Encoding encode(const Context& cx, Expr root,
                const std::unordered_set<Expr>& gVars) {
  Encoding out;
  out.pctx = std::make_unique<prop::PropCtx>();
  // The AIG inherits the verification run's governor from the EUFM context,
  // so the encoding phase is governed without a new parameter here.
  out.pctx->setBudget(cx.budgetGovernor());
  EncoderImpl enc(cx, gVars, out);
  out.root = enc.encF(root);
  return out;
}

}  // namespace velev::evc
