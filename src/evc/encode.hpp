// Translation of a UF-free, memory-free EUFM formula into the propositional
// layer, exploiting Positive Equality:
//   * equations are pushed through ITE structure down to variable pairs;
//   * a pair of syntactically distinct variables where either side is a
//     p-term encodes to FALSE (maximally diverse interpretation);
//   * a pair of distinct g-term variables encodes to a fresh e_ij Boolean
//     variable (Goel et al., CAV'98), collected for the transitivity pass.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "eufm/expr.hpp"
#include "prop/prop.hpp"

namespace velev::evc {

struct Encoding {
  std::unique_ptr<prop::PropCtx> pctx;
  prop::PLit root = prop::kFalse;

  /// EUFM Boolean variable -> propositional input literal.
  std::unordered_map<eufm::Expr, prop::PLit> boolVarLit;
  /// g-variable pair (ordered) -> e_ij propositional input literal.
  std::map<std::pair<eufm::Expr, eufm::Expr>, prop::PLit> eijLit;

  unsigned numEij() const { return static_cast<unsigned>(eijLit.size()); }
  unsigned numOtherPrimary() const {
    return static_cast<unsigned>(boolVarLit.size());
  }
};

/// Encode `root` (which must contain no UF/UP applications and no memory
/// operators). `gVars` is the set of term variables classified as g-terms.
Encoding encode(const eufm::Context& cx, eufm::Expr root,
                const std::unordered_set<eufm::Expr>& gVars);

}  // namespace velev::evc
