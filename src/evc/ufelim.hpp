// Elimination of uninterpreted functions and predicates by the nested-ITE
// scheme (Bryant–German–Velev TOCL'01).
//
// The j-th application of f (in a fixed bottom-up traversal order) is
// replaced by
//   ITE(args = args_1, c_1, ITE(args = args_2, c_2, ... , c_j)),
// where c_i is the fresh term variable introduced for the i-th application.
// This imposes exactly functional consistency, and — unlike Ackermann's
// scheme — preserves the positive-equality structure: the introduced
// argument comparisons are not counted when classifying p-/g-terms, and a
// non-matching application evaluates to its own fresh (maximally diverse)
// variable. Predicates are eliminated the same way with fresh Boolean
// variables.
#pragma once

#include <unordered_set>

#include "eufm/expr.hpp"
#include "evc/polarity.hpp"

namespace velev::evc {

struct UfElimResult {
  eufm::Expr root = eufm::kNoExpr;
  /// Fresh term variables originating from g-classified function symbols;
  /// the encoder unions these with the g-variables of the input formula.
  std::unordered_set<eufm::Expr> freshGVars;
  unsigned freshTermVars = 0;
  unsigned freshBoolVars = 0;
};

/// Eliminate every UF/UP application in `root`. `cl` supplies the
/// function-symbol classification (outputs of g-functions yield g-variables).
UfElimResult eliminateUf(eufm::Context& cx, eufm::Expr root,
                         const Classification& cl);

/// Ackermann's scheme, provided as an ablation baseline: each application is
/// replaced by a fresh variable and the functional-consistency constraints
///   (args_i = args_j) -> (v_i = v_j)
/// are conjoined as antecedents of the formula. The output equalities v_i =
/// v_j occur positively in an antecedent — i.e. negatively in the formula —
/// so EVERY fresh variable becomes a g-term and the Positive Equality
/// reduction is lost (the point Bryant–German–Velev make for preferring the
/// nested-ITE scheme; bench/ablation_ufelim quantifies it).
UfElimResult eliminateUfAckermann(eufm::Context& cx, eufm::Expr root,
                                  const Classification& cl);

}  // namespace velev::evc
