// Printing and statistics for EUFM expressions.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "eufm/expr.hpp"

namespace velev::eufm {

/// Render `e` as an s-expression, e.g. (ite (and fetch1 v) (NextPC PC) PC).
/// Shared subterms are printed in full each time they occur, so this is for
/// debugging small expressions; use `printDag` for large ones.
std::string toString(const Context& cx, Expr e);

/// Print the DAG reachable from `e`, one node per line, with ids, so shared
/// structure is visible: `n42 := (ite n7 n13 n40)`.
void printDag(const Context& cx, Expr e, std::ostream& os);

/// Node-count statistics over the cone of `root`.
struct DagStats {
  std::size_t total = 0;
  std::size_t termVars = 0;
  std::size_t boolVars = 0;
  std::size_t ufApps = 0;
  std::size_t upApps = 0;
  std::size_t equations = 0;
  std::size_t ites = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t connectives = 0;  // Not / And / Or
};

DagStats stats(const Context& cx, Expr root);

std::ostream& operator<<(std::ostream& os, const DagStats& s);

}  // namespace velev::eufm
