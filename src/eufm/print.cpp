#include "eufm/print.hpp"

#include <ostream>
#include <sstream>
#include <unordered_map>

#include "eufm/traverse.hpp"

namespace velev::eufm {

namespace {

const char* opName(Kind k) {
  switch (k) {
    case Kind::False: return "false";
    case Kind::True: return "true";
    case Kind::Eq: return "=";
    case Kind::Not: return "not";
    case Kind::And: return "and";
    case Kind::Or: return "or";
    case Kind::IteF: return "ite";
    case Kind::IteT: return "ite";
    case Kind::Read: return "read";
    case Kind::Write: return "write";
    default: return "?";
  }
}

// Build the printed form of every node in the cone, bottom-up, rendering
// children by substitution (`inlineChildren` = true) or by id reference.
std::unordered_map<Expr, std::string> renderCone(const Context& cx, Expr root,
                                                 bool inlineChildren) {
  std::unordered_map<Expr, std::string> out;
  postorder(cx, root, [&](Expr e) {
    std::string s;
    const Kind k = cx.kind(e);
    switch (k) {
      case Kind::BoolVar:
      case Kind::TermVar:
        s = cx.varName(e);
        break;
      case Kind::True:
      case Kind::False:
        s = opName(k);
        break;
      default: {
        s = "(";
        if (k == Kind::Uf || k == Kind::Up)
          s += cx.func(cx.funcOf(e)).name;
        else
          s += opName(k);
        for (Expr a : cx.args(e)) {
          s += ' ';
          if (inlineChildren)
            s += out.at(a);
          else
            s += 'n' + std::to_string(a);
        }
        s += ')';
        break;
      }
    }
    out.emplace(e, std::move(s));
  });
  return out;
}

}  // namespace

std::string toString(const Context& cx, Expr e) {
  return renderCone(cx, e, /*inlineChildren=*/true).at(e);
}

void printDag(const Context& cx, Expr e, std::ostream& os) {
  auto rendered = renderCone(cx, e, /*inlineChildren=*/false);
  postorder(cx, e, [&](Expr n) {
    os << 'n' << n << " := " << rendered.at(n) << '\n';
  });
}

DagStats stats(const Context& cx, Expr root) {
  DagStats s;
  postorder(cx, root, [&](Expr e) {
    ++s.total;
    switch (cx.kind(e)) {
      case Kind::TermVar: ++s.termVars; break;
      case Kind::BoolVar: ++s.boolVars; break;
      case Kind::Uf: ++s.ufApps; break;
      case Kind::Up: ++s.upApps; break;
      case Kind::Eq: ++s.equations; break;
      case Kind::IteF:
      case Kind::IteT: ++s.ites; break;
      case Kind::Read: ++s.reads; break;
      case Kind::Write: ++s.writes; break;
      case Kind::Not:
      case Kind::And:
      case Kind::Or: ++s.connectives; break;
      default: break;
    }
  });
  return s;
}

std::ostream& operator<<(std::ostream& os, const DagStats& s) {
  os << "nodes=" << s.total << " termVars=" << s.termVars
     << " boolVars=" << s.boolVars << " uf=" << s.ufApps << " up=" << s.upApps
     << " eq=" << s.equations << " ite=" << s.ites << " read=" << s.reads
     << " write=" << s.writes << " conn=" << s.connectives;
  return os;
}

}  // namespace velev::eufm
