// Iterative DAG traversal helpers. The correctness formulas for large reorder
// buffers contain update chains thousands of nodes deep, so recursive
// traversals are avoided throughout the library.
#pragma once

#include <vector>

#include "eufm/expr.hpp"

namespace velev::eufm {

/// Visit every node reachable from the roots exactly once, children before
/// parents (postorder). `visit(Expr)` is called once per node.
template <typename Visit>
void postorder(const Context& cx, std::span<const Expr> roots, Visit&& visit) {
  std::vector<char> seen(cx.numNodes(), 0);  // 0 new, 1 on stack, 2 done
  std::vector<Expr> stack(roots.begin(), roots.end());
  while (!stack.empty()) {
    const Expr e = stack.back();
    if (seen[e] == 2) {
      stack.pop_back();
      continue;
    }
    if (seen[e] == 1) {
      seen[e] = 2;
      stack.pop_back();
      visit(e);
      continue;
    }
    seen[e] = 1;
    for (Expr a : cx.args(e))
      if (!seen[a]) stack.push_back(a);
  }
}

template <typename Visit>
void postorder(const Context& cx, Expr root, Visit&& visit) {
  const Expr roots[] = {root};
  postorder(cx, std::span<const Expr>(roots, 1), visit);
}

/// Collect all distinct variables (Bool and Term) reachable from `root`.
inline std::vector<Expr> collectVars(const Context& cx, Expr root) {
  std::vector<Expr> vars;
  postorder(cx, root, [&](Expr e) {
    if (cx.isVar(e)) vars.push_back(e);
  });
  return vars;
}

/// Count reachable nodes from `root`.
inline std::size_t dagSize(const Context& cx, Expr root) {
  std::size_t n = 0;
  postorder(cx, root, [&](Expr) { ++n; });
  return n;
}

}  // namespace velev::eufm
