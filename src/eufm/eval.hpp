// Evaluation of EUFM expressions under *finite interpretations*.
//
// This is the semantic ground truth used by the test suite: a formula is
// EUFM-valid only if it evaluates to true under every interpretation, so
// randomized finite interpretations give an effective refutation oracle for
// every transformation in the pipeline (memory elimination, UF elimination,
// rewriting rules, propositional translation).
//
// An interpretation fixes:
//   * a domain size D; term variables map to values in [0, D) derived from
//     a seed (so equalities between distinct variables occur with
//     probability 1/D — small D exercises the aliasing cases);
//   * Boolean variables map to seeded pseudo-random bits;
//   * every UF of arity n maps to a pseudo-random function  D^n -> D,
//     every UP to a pseudo-random predicate D^n -> {0,1}  (deterministic in
//     the seed, so evaluation is functionally consistent by construction);
//   * memory-sorted values are finite maps over a base: a term variable used
//     as a memory evaluates to the empty map over its own private base
//     function; `write` extends the map; `read` consults the map and falls
//     back to the base. Two memories are equal iff they are extensionally
//     equal (same base and agreeing maps).
//
// Overrides allow tests to pin specific variables to specific values.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "eufm/expr.hpp"

namespace velev::eufm {

/// A value of the term sort: either a scalar or a memory (finite map).
struct Value {
  enum class Tag : std::uint8_t { Scalar, Mem } tag = Tag::Scalar;
  std::uint64_t scalar = 0;  // Scalar: the value. Mem: the base id.
  std::map<std::uint64_t, std::uint64_t> mem;  // Mem only: written cells.

  static Value makeScalar(std::uint64_t v) {
    Value r;
    r.tag = Tag::Scalar;
    r.scalar = v;
    return r;
  }
  static Value makeMem(std::uint64_t base) {
    Value r;
    r.tag = Tag::Mem;
    r.scalar = base;
    return r;
  }
  bool operator==(const Value& o) const = default;
};

class Interp {
 public:
  /// `domainSize` — number of distinct scalar values (>= 2 recommended).
  Interp(std::uint64_t seed, std::uint64_t domainSize)
      : seed_(seed), domain_(domainSize) {
    VELEV_CHECK(domainSize >= 1);
  }

  void setBool(Expr var, bool v) { boolOverride_[var] = v; }
  void setTerm(Expr var, std::uint64_t v) { termOverride_[var] = v; }
  /// Force a term variable to be interpreted as a (fresh, empty) memory.
  void setMem(Expr var) { memVars_.insert({var, true}); }

  std::uint64_t seed() const { return seed_; }
  std::uint64_t domain() const { return domain_; }

  std::optional<bool> boolOverride(Expr var) const {
    auto it = boolOverride_.find(var);
    if (it == boolOverride_.end()) return std::nullopt;
    return it->second;
  }
  std::optional<std::uint64_t> termOverride(Expr var) const {
    auto it = termOverride_.find(var);
    if (it == termOverride_.end()) return std::nullopt;
    return it->second;
  }
  bool isMemVar(Expr var) const { return memVars_.count(var) != 0; }

 private:
  std::uint64_t seed_;
  std::uint64_t domain_;
  std::unordered_map<Expr, bool> boolOverride_;
  std::unordered_map<Expr, std::uint64_t> termOverride_;
  std::unordered_map<Expr, bool> memVars_;
};

/// Evaluates expressions from one Context under one interpretation,
/// memoizing per node. Whether a term variable denotes a scalar or a memory
/// is inferred from use (appearing as the memory argument of read/write) or
/// forced via Interp::setMem.
///
/// The evaluator recurses over the DAG (unlike the production traversals,
/// which are iterative): it is a testing oracle for moderate expression
/// depths (tens of thousands), not for paper-scale update chains.
class Evaluator {
 public:
  Evaluator(const Context& cx, const Interp& in) : cx_(cx), in_(in) {}

  bool evalFormula(Expr f);
  Value evalTerm(Expr t);

 private:
  bool evalFormulaInner(Expr f);
  Value evalTermInner(Expr t);
  std::uint64_t scalarOf(const Value& v) const;
  std::uint64_t readMem(const Value& m, std::uint64_t addr) const;
  bool valuesEqual(const Value& a, const Value& b) const;
  std::uint64_t hashValue(const Value& v) const;

  const Context& cx_;
  const Interp& in_;
  std::unordered_map<Expr, bool> fmemo_;
  std::unordered_map<Expr, Value> tmemo_;
  std::unordered_set<Expr> memSorted_;
};

/// Convenience: evaluate a closed formula under (seed, domain).
bool evalFormula(const Context& cx, Expr f, std::uint64_t seed,
                 std::uint64_t domain);

}  // namespace velev::eufm
