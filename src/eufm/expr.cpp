#include "eufm/expr.hpp"

#include <algorithm>

#include "support/budget.hpp"
#include "support/hash.hpp"

namespace velev::eufm {

Context::Context() {
  table_.assign(1024, kNoExpr);
  true_ = intern(Kind::True, kNoSym, {});
  false_ = intern(Kind::False, kNoSym, {});
}

std::uint64_t Context::nodeHash(Kind k, std::uint32_t sym,
                                std::span<const Expr> args) const {
  std::uint64_t h = mix64((static_cast<std::uint64_t>(k) << 32) | sym);
  for (Expr a : args) h = hashCombine(h, a);
  return h;
}

bool Context::nodeEquals(Expr e, Kind k, std::uint32_t sym,
                         std::span<const Expr> args) const {
  const Node& n = nodes_[e];
  if (n.kind != k || n.sym != sym || n.nargs != args.size()) return false;
  for (unsigned i = 0; i < n.nargs; ++i)
    if (argPool_[n.argsOfs + i] != args[i]) return false;
  return true;
}

Expr Context::find(Kind k, std::uint32_t sym,
                   std::span<const Expr> args) const {
  const std::uint64_t mask = table_.size() - 1;
  std::uint64_t slot = nodeHash(k, sym, args) & mask;
  while (table_[slot] != kNoExpr) {
    if (nodeEquals(table_[slot], k, sym, args)) return table_[slot];
    slot = (slot + 1) & mask;
  }
  return kNoExpr;
}

void Context::growTable() {
  std::vector<Expr> old = std::move(table_);
  table_.assign(old.size() * 2, kNoExpr);
  const std::uint64_t mask = table_.size() - 1;
  for (Expr e : old) {
    if (e == kNoExpr) continue;
    const Node& n = nodes_[e];
    std::uint64_t h = nodeHash(n.kind, n.sym,
                               {argPool_.data() + n.argsOfs, n.nargs});
    std::uint64_t slot = h & mask;
    while (table_[slot] != kNoExpr) slot = (slot + 1) & mask;
    table_[slot] = e;
  }
}

void Context::setBudget(BudgetGovernor* governor) {
  budget_ = governor;
  budgetSource_ = governor != nullptr ? governor->registerSource() : -1;
  budgetTick_ = 0;
}

Expr Context::intern(Kind k, std::uint32_t sym, std::span<const Expr> args) {
  // Every expression ever built passes through here, so a strided
  // checkpoint governs all DAG-growing phases at once. 256 interns grow
  // the arenas by a few KiB at most — far finer than any realistic budget.
  if (budget_ != nullptr && (++budgetTick_ & 0xffu) == 0)
    budget_->checkpoint(budgetSource_, memoryBytes());
  if (tableCount_ * 10 >= table_.size() * 7) growTable();
  const std::uint64_t mask = table_.size() - 1;
  std::uint64_t slot = nodeHash(k, sym, args) & mask;
  while (table_[slot] != kNoExpr) {
    if (nodeEquals(table_[slot], k, sym, args)) return table_[slot];
    slot = (slot + 1) & mask;
  }
  const Expr id = static_cast<Expr>(nodes_.size());
  Node n;
  n.kind = k;
  n.nargs = static_cast<std::uint8_t>(args.size());
  n.sym = sym;
  n.argsOfs = static_cast<std::uint32_t>(argPool_.size());
  argPool_.insert(argPool_.end(), args.begin(), args.end());
  nodes_.push_back(n);
  table_[slot] = id;
  ++tableCount_;
  return id;
}

Expr Context::mkVar(Kind k, std::string_view name) {
  return intern(k, names_.intern(name), {});
}

Expr Context::boolVar(std::string_view name) {
  return mkVar(Kind::BoolVar, name);
}

Expr Context::termVar(std::string_view name) {
  return mkVar(Kind::TermVar, name);
}

Expr Context::freshBoolVar(std::string_view prefix) {
  std::string name(prefix);
  name += '#';
  name += std::to_string(freshCounter_++);
  return boolVar(name);
}

Expr Context::freshTermVar(std::string_view prefix) {
  std::string name(prefix);
  name += '#';
  name += std::to_string(freshCounter_++);
  return termVar(name);
}

FuncId Context::declare(std::string_view name, unsigned arity, bool pred) {
  auto it = funcIds_.find(std::string(name));
  if (it != funcIds_.end()) {
    const FuncInfo& fi = funcs_[it->second];
    VELEV_CHECK_MSG(fi.arity == arity && fi.isPredicate == pred,
                    "conflicting redeclaration of symbol " << name);
    return it->second;
  }
  const FuncId id = static_cast<FuncId>(funcs_.size());
  funcs_.push_back(FuncInfo{std::string(name), arity, pred});
  funcIds_.emplace(std::string(name), id);
  return id;
}

FuncId Context::declareFunc(std::string_view name, unsigned arity) {
  return declare(name, arity, false);
}

FuncId Context::declarePred(std::string_view name, unsigned arity) {
  return declare(name, arity, true);
}

Expr Context::apply(FuncId f, std::span<const Expr> args) {
  VELEV_CHECK(f < funcs_.size());
  const FuncInfo& fi = funcs_[f];
  VELEV_CHECK_MSG(fi.arity == args.size(),
                  "arity mismatch applying " << fi.name);
  for (Expr a : args) VELEV_CHECK(isTerm(a));
  return intern(fi.isPredicate ? Kind::Up : Kind::Uf, f, args);
}

Expr Context::mkNot(Expr f) {
  VELEV_CHECK(isFormula(f));
  if (f == true_) return false_;
  if (f == false_) return true_;
  if (kind(f) == Kind::Not) return arg(f, 0);
  const Expr a[] = {f};
  return intern(Kind::Not, kNoSym, a);
}

Expr Context::mkAnd(Expr a, Expr b) {
  VELEV_CHECK(isFormula(a) && isFormula(b));
  if (a == false_ || b == false_) return false_;
  if (a == true_) return b;
  if (b == true_) return a;
  if (a == b) return a;
  if ((kind(a) == Kind::Not && arg(a, 0) == b) ||
      (kind(b) == Kind::Not && arg(b, 0) == a))
    return false_;
  if (a > b) std::swap(a, b);
  const Expr args[] = {a, b};
  return intern(Kind::And, kNoSym, args);
}

Expr Context::mkOr(Expr a, Expr b) {
  VELEV_CHECK(isFormula(a) && isFormula(b));
  if (a == true_ || b == true_) return true_;
  if (a == false_) return b;
  if (b == false_) return a;
  if (a == b) return a;
  if ((kind(a) == Kind::Not && arg(a, 0) == b) ||
      (kind(b) == Kind::Not && arg(b, 0) == a))
    return true_;
  if (a > b) std::swap(a, b);
  const Expr args[] = {a, b};
  return intern(Kind::Or, kNoSym, args);
}

Expr Context::mkAnd(std::span<const Expr> fs) {
  Expr acc = true_;
  for (Expr f : fs) acc = mkAnd(acc, f);
  return acc;
}

Expr Context::mkOr(std::span<const Expr> fs) {
  Expr acc = false_;
  for (Expr f : fs) acc = mkOr(acc, f);
  return acc;
}

Expr Context::mkIff(Expr a, Expr b) {
  return mkIteF(a, b, mkNot(b));
}

Expr Context::mkEq(Expr lhs, Expr rhs) {
  VELEV_CHECK(isTerm(lhs) && isTerm(rhs));
  if (lhs == rhs) return true_;
  if (lhs > rhs) std::swap(lhs, rhs);
  const Expr args[] = {lhs, rhs};
  return intern(Kind::Eq, kNoSym, args);
}

Expr Context::mkIteF(Expr c, Expr t, Expr e) {
  VELEV_CHECK(isFormula(c) && isFormula(t) && isFormula(e));
  if (c == true_) return t;
  if (c == false_) return e;
  if (t == e) return t;
  if (t == true_ && e == false_) return c;
  if (t == false_ && e == true_) return mkNot(c);
  if (t == true_) return mkOr(c, e);
  if (t == false_) return mkAnd(mkNot(c), e);
  if (e == true_) return mkOr(mkNot(c), t);
  if (e == false_) return mkAnd(c, t);
  const Expr args[] = {c, t, e};
  return intern(Kind::IteF, kNoSym, args);
}

Expr Context::mkIteT(Expr c, Expr t, Expr e) {
  VELEV_CHECK(isFormula(c) && isTerm(t) && isTerm(e));
  if (c == true_) return t;
  if (c == false_) return e;
  if (t == e) return t;
  // ITE(c, ITE(c, x, y), z) = ITE(c, x, z) and the dual — keeps the chains
  // generated by iterated forwarding logic compact.
  if (kind(t) == Kind::IteT && arg(t, 0) == c) t = arg(t, 1);
  if (kind(e) == Kind::IteT && arg(e, 0) == c) e = arg(e, 2);
  if (t == e) return t;
  const Expr args[] = {c, t, e};
  return intern(Kind::IteT, kNoSym, args);
}

Expr Context::mkRead(Expr mem, Expr addr) {
  VELEV_CHECK(isTerm(mem) && isTerm(addr));
  const Expr args[] = {mem, addr};
  return intern(Kind::Read, kNoSym, args);
}

Expr Context::mkWrite(Expr mem, Expr addr, Expr data) {
  VELEV_CHECK(isTerm(mem) && isTerm(addr) && isTerm(data));
  const Expr args[] = {mem, addr, data};
  return intern(Kind::Write, kNoSym, args);
}

const std::string& Context::varName(Expr e) const {
  VELEV_CHECK(isVar(e));
  return names_.str(nodes_[e].sym);
}

std::uint32_t Context::varSym(Expr e) const {
  VELEV_CHECK(isVar(e));
  return nodes_[e].sym;
}

FuncId Context::funcOf(Expr e) const {
  const Kind k = kind(e);
  VELEV_CHECK(k == Kind::Uf || k == Kind::Up);
  return nodes_[e].sym;
}

}  // namespace velev::eufm
