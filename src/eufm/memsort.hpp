// Memory-sort inference: which term nodes denote memory-array states.
//
// EUFM has a single term sort; whether a term is a memory is a matter of
// use. Seeds are `write` nodes and the memory argument of `read`/`write`;
// membership propagates through ITE branches and across equations (both
// sides of an equation must have the same sort). Used by the finite-model
// evaluator and by EVC's memory-elimination passes.
#pragma once

#include <span>
#include <unordered_set>

#include "eufm/expr.hpp"

namespace velev::eufm {

/// Extend `mem` with every memory-sorted node in the cones of `roots`
/// (fixpoint).
void inferMemorySorted(const Context& cx, std::span<const Expr> roots,
                       std::unordered_set<Expr>& mem);

inline std::unordered_set<Expr> inferMemorySorted(const Context& cx,
                                                  Expr root) {
  std::unordered_set<Expr> mem;
  const Expr roots[] = {root};
  inferMemorySorted(cx, roots, mem);
  return mem;
}

}  // namespace velev::eufm
