#include "eufm/shadow.hpp"

#include <algorithm>

#include "support/budget.hpp"
#include "support/hash.hpp"

namespace velev::eufm {

std::uint64_t ShadowContext::localHash(Kind k, std::uint32_t sym,
                                       std::span<const Expr> args) const {
  std::uint64_t h = mix64((static_cast<std::uint64_t>(k) << 32) | sym);
  for (Expr a : args) h = hashCombine(h, a);
  return h;
}

bool ShadowContext::localEquals(std::uint32_t localIdx, Kind k,
                                std::uint32_t sym,
                                std::span<const Expr> args) const {
  const Node& n = nodes_[localIdx];
  if (n.kind != k || n.sym != sym || n.nargs != args.size()) return false;
  for (unsigned i = 0; i < n.nargs; ++i)
    if (argPool_[n.argsOfs + i] != args[i]) return false;
  return true;
}

void ShadowContext::growTable() {
  std::vector<Expr> old = std::move(table_);
  table_.assign(old.size() * 2, kNoExpr);
  const std::uint64_t mask = table_.size() - 1;
  for (Expr e : old) {
    if (e == kNoExpr) continue;
    const Node& n = nodes_[e - baseN_];
    std::uint64_t h = localHash(n.kind, n.sym,
                                {argPool_.data() + n.argsOfs, n.nargs});
    std::uint64_t slot = h & mask;
    while (table_[slot] != kNoExpr) slot = (slot + 1) & mask;
    table_[slot] = e;
  }
}

Expr ShadowContext::intern(Kind k, std::uint32_t sym,
                           std::span<const Expr> args) {
  if (budget_ != nullptr && (++budgetTick_ & 0xffu) == 0)
    budget_->checkpoint(budgetSource_, memoryBytes());
  // Read-through: a node all of whose arguments are base nodes may already
  // exist in the base DAG — resolving to it keeps base/local equality exact.
  // Any local argument makes base membership impossible (base argument
  // pools only ever hold ids below baseN_), so skip the probe.
  const bool allBase =
      std::all_of(args.begin(), args.end(),
                  [this](Expr a) { return a < baseN_; });
  if (allBase) {
    const Expr hit = base_.find(k, sym, args);
    if (hit != kNoExpr) return hit;
  }
  if (tableCount_ * 10 >= table_.size() * 7) growTable();
  const std::uint64_t mask = table_.size() - 1;
  std::uint64_t slot = localHash(k, sym, args) & mask;
  while (table_[slot] != kNoExpr) {
    if (localEquals(table_[slot] - baseN_, k, sym, args)) return table_[slot];
    slot = (slot + 1) & mask;
  }
  const Expr id = baseN_ + static_cast<Expr>(nodes_.size());
  Node n;
  n.kind = k;
  n.nargs = static_cast<std::uint8_t>(args.size());
  n.sym = sym;
  n.argsOfs = static_cast<std::uint32_t>(argPool_.size());
  argPool_.insert(argPool_.end(), args.begin(), args.end());
  nodes_.push_back(n);
  table_[slot] = id;
  ++tableCount_;
  return id;
}

Expr ShadowContext::apply(FuncId f, std::span<const Expr> args) {
  VELEV_CHECK(f < base_.numFuncs());
  const FuncInfo& fi = base_.func(f);
  VELEV_CHECK_MSG(fi.arity == args.size(),
                  "arity mismatch applying " << fi.name);
  for (Expr a : args) VELEV_CHECK(isTerm(a));
  return intern(fi.isPredicate ? Kind::Up : Kind::Uf, f, args);
}

Expr ShadowContext::mkNot(Expr f) {
  VELEV_CHECK(isFormula(f));
  if (f == mkTrue()) return mkFalse();
  if (f == mkFalse()) return mkTrue();
  if (kind(f) == Kind::Not) return arg(f, 0);
  const Expr a[] = {f};
  return intern(Kind::Not, kNoSym, a);
}

Expr ShadowContext::mkAnd(Expr a, Expr b) {
  VELEV_CHECK(isFormula(a) && isFormula(b));
  if (a == mkFalse() || b == mkFalse()) return mkFalse();
  if (a == mkTrue()) return b;
  if (b == mkTrue()) return a;
  if (a == b) return a;
  if ((kind(a) == Kind::Not && arg(a, 0) == b) ||
      (kind(b) == Kind::Not && arg(b, 0) == a))
    return mkFalse();
  if (a > b) std::swap(a, b);
  const Expr args[] = {a, b};
  return intern(Kind::And, kNoSym, args);
}

Expr ShadowContext::mkOr(Expr a, Expr b) {
  VELEV_CHECK(isFormula(a) && isFormula(b));
  if (a == mkTrue() || b == mkTrue()) return mkTrue();
  if (a == mkFalse()) return b;
  if (b == mkFalse()) return a;
  if (a == b) return a;
  if ((kind(a) == Kind::Not && arg(a, 0) == b) ||
      (kind(b) == Kind::Not && arg(b, 0) == a))
    return mkTrue();
  if (a > b) std::swap(a, b);
  const Expr args[] = {a, b};
  return intern(Kind::Or, kNoSym, args);
}

Expr ShadowContext::mkAnd(std::span<const Expr> fs) {
  Expr acc = mkTrue();
  for (Expr f : fs) acc = mkAnd(acc, f);
  return acc;
}

Expr ShadowContext::mkOr(std::span<const Expr> fs) {
  Expr acc = mkFalse();
  for (Expr f : fs) acc = mkOr(acc, f);
  return acc;
}

Expr ShadowContext::mkEq(Expr lhs, Expr rhs) {
  VELEV_CHECK(isTerm(lhs) && isTerm(rhs));
  if (lhs == rhs) return mkTrue();
  if (lhs > rhs) std::swap(lhs, rhs);
  const Expr args[] = {lhs, rhs};
  return intern(Kind::Eq, kNoSym, args);
}

Expr ShadowContext::mkIteF(Expr c, Expr t, Expr e) {
  VELEV_CHECK(isFormula(c) && isFormula(t) && isFormula(e));
  if (c == mkTrue()) return t;
  if (c == mkFalse()) return e;
  if (t == e) return t;
  if (t == mkTrue() && e == mkFalse()) return c;
  if (t == mkFalse() && e == mkTrue()) return mkNot(c);
  if (t == mkTrue()) return mkOr(c, e);
  if (t == mkFalse()) return mkAnd(mkNot(c), e);
  if (e == mkTrue()) return mkOr(mkNot(c), t);
  if (e == mkFalse()) return mkAnd(c, t);
  const Expr args[] = {c, t, e};
  return intern(Kind::IteF, kNoSym, args);
}

Expr ShadowContext::mkIteT(Expr c, Expr t, Expr e) {
  VELEV_CHECK(isFormula(c) && isTerm(t) && isTerm(e));
  if (c == mkTrue()) return t;
  if (c == mkFalse()) return e;
  if (t == e) return t;
  if (kind(t) == Kind::IteT && arg(t, 0) == c) t = arg(t, 1);
  if (kind(e) == Kind::IteT && arg(e, 0) == c) e = arg(e, 2);
  if (t == e) return t;
  const Expr args[] = {c, t, e};
  return intern(Kind::IteT, kNoSym, args);
}

Expr ShadowContext::mkRead(Expr mem, Expr addr) {
  VELEV_CHECK(isTerm(mem) && isTerm(addr));
  const Expr args[] = {mem, addr};
  return intern(Kind::Read, kNoSym, args);
}

Expr ShadowContext::mkWrite(Expr mem, Expr addr, Expr data) {
  VELEV_CHECK(isTerm(mem) && isTerm(addr) && isTerm(data));
  const Expr args[] = {mem, addr, data};
  return intern(Kind::Write, kNoSym, args);
}

}  // namespace velev::eufm
