#include "eufm/memsort.hpp"

#include <vector>

#include "eufm/traverse.hpp"

namespace velev::eufm {

void inferMemorySorted(const Context& cx, std::span<const Expr> roots,
                       std::unordered_set<Expr>& mem) {
  std::vector<Expr> cone;
  postorder(cx, roots, [&](Expr e) { cone.push_back(e); });
  bool changed = true;
  auto add = [&](Expr e) {
    if (mem.insert(e).second) changed = true;
  };
  while (changed) {
    changed = false;
    for (Expr e : cone) {
      switch (cx.kind(e)) {
        case Kind::Write:
          add(e);
          add(cx.arg(e, 0));
          break;
        case Kind::Read:
          add(cx.arg(e, 0));
          break;
        case Kind::IteT: {
          const Expr t = cx.arg(e, 1), el = cx.arg(e, 2);
          if (mem.count(e)) {
            add(t);
            add(el);
          }
          if (mem.count(t) || mem.count(el)) add(e);
          break;
        }
        case Kind::Eq: {
          const Expr a = cx.arg(e, 0), b = cx.arg(e, 1);
          if (mem.count(a) || mem.count(b)) {
            add(a);
            add(b);
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

}  // namespace velev::eufm
