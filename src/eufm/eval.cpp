#include "eufm/eval.hpp"

#include <unordered_set>

#include "eufm/memsort.hpp"
#include "eufm/traverse.hpp"
#include "support/hash.hpp"

namespace velev::eufm {

namespace {

// Tags mixed into hashes so the pseudo-random streams for term variables,
// Boolean variables, functions and memory bases are independent.
constexpr std::uint64_t kTagTerm = 0x5445524dULL;   // "TERM"
constexpr std::uint64_t kTagBool = 0x424f4f4cULL;   // "BOOL"
constexpr std::uint64_t kTagFunc = 0x46554e43ULL;   // "FUNC"
constexpr std::uint64_t kTagMem = 0x4d454d00ULL;    // "MEM"

}  // namespace

namespace {
void inferMemSorts(const Context& cx, Expr root,
                   std::unordered_set<Expr>& mem) {
  const Expr roots[] = {root};
  inferMemorySorted(cx, roots, mem);
}
}  // namespace

std::uint64_t Evaluator::scalarOf(const Value& v) const {
  VELEV_CHECK_MSG(v.tag == Value::Tag::Scalar,
                  "memory value used where a scalar was expected");
  return v.scalar;
}

std::uint64_t Evaluator::readMem(const Value& m, std::uint64_t addr) const {
  VELEV_CHECK(m.tag == Value::Tag::Mem);
  auto it = m.mem.find(addr);
  if (it != m.mem.end()) return it->second;
  // Base content of memory `base` at `addr`: an independent random function.
  return hashValues({in_.seed(), kTagMem, m.scalar, addr}) % in_.domain();
}

bool Evaluator::valuesEqual(const Value& a, const Value& b) const {
  if (a.tag != b.tag) return false;
  if (a.tag == Value::Tag::Scalar) return a.scalar == b.scalar;
  // Extensional memory equality: memories over different bases differ on
  // some unwritten cell (bases are independent random functions), so they
  // are considered unequal; over the same base, compare the union of
  // written cells against each other / the base default.
  if (a.scalar != b.scalar) return false;
  for (const auto& [addr, val] : a.mem)
    if (readMem(b, addr) != val) return false;
  for (const auto& [addr, val] : b.mem)
    if (readMem(a, addr) != val) return false;
  return true;
}

std::uint64_t Evaluator::hashValue(const Value& v) const {
  if (v.tag == Value::Tag::Scalar) return mix64(v.scalar + 1);
  // Normalize: drop cells equal to the base default so that extensionally
  // equal memories hash identically (keeps UFs applied to memories
  // functionally consistent in the finite model).
  std::uint64_t h = hashValues({kTagMem, v.scalar});
  for (const auto& [addr, val] : v.mem) {
    const std::uint64_t def =
        hashValues({in_.seed(), kTagMem, v.scalar, addr}) % in_.domain();
    if (val != def) h = hashValues({h, addr, val});
  }
  return h;
}

bool Evaluator::evalFormula(Expr f) {
  VELEV_CHECK(cx_.isFormula(f));
  const std::size_t before = memSorted_.size();
  inferMemSorts(cx_, f, memSorted_);
  if (memSorted_.size() != before) {
    // Memory-sort knowledge grew: earlier memoized values may have treated a
    // now-memory variable as a scalar.
    fmemo_.clear();
    tmemo_.clear();
  }
  return evalFormulaInner(f);
}

bool Evaluator::evalFormulaInner(Expr f) {
  auto it = fmemo_.find(f);
  if (it != fmemo_.end()) return it->second;
  bool r = false;
  switch (cx_.kind(f)) {
    case Kind::True:
      r = true;
      break;
    case Kind::False:
      r = false;
      break;
    case Kind::BoolVar: {
      if (auto ov = in_.boolOverride(f)) {
        r = *ov;
      } else {
        r = (hashValues({in_.seed(), kTagBool, cx_.varSym(f)}) & 1) != 0;
      }
      break;
    }
    case Kind::Up: {
      std::uint64_t h =
          hashValues({in_.seed(), kTagFunc, cx_.funcOf(f), 0x50});
      for (Expr a : cx_.args(f)) h = hashCombine(h, hashValue(evalTermInner(a)));
      r = (mix64(h) & 1) != 0;
      break;
    }
    case Kind::Eq:
      r = valuesEqual(evalTermInner(cx_.arg(f, 0)),
                      evalTermInner(cx_.arg(f, 1)));
      break;
    case Kind::Not:
      r = !evalFormulaInner(cx_.arg(f, 0));
      break;
    case Kind::And:
      r = evalFormulaInner(cx_.arg(f, 0)) && evalFormulaInner(cx_.arg(f, 1));
      break;
    case Kind::Or:
      r = evalFormulaInner(cx_.arg(f, 0)) || evalFormulaInner(cx_.arg(f, 1));
      break;
    case Kind::IteF:
      r = evalFormulaInner(cx_.arg(f, 0))
              ? evalFormulaInner(cx_.arg(f, 1))
              : evalFormulaInner(cx_.arg(f, 2));
      break;
    default:
      VELEV_UNREACHABLE("term kind in formula position");
  }
  fmemo_.emplace(f, r);
  return r;
}

Value Evaluator::evalTerm(Expr t) {
  VELEV_CHECK(cx_.isTerm(t));
  const std::size_t before = memSorted_.size();
  inferMemSorts(cx_, t, memSorted_);
  if (memSorted_.size() != before) {
    fmemo_.clear();
    tmemo_.clear();
  }
  return evalTermInner(t);
}

Value Evaluator::evalTermInner(Expr t) {
  auto it = tmemo_.find(t);
  if (it != tmemo_.end()) return it->second;
  Value r;
  switch (cx_.kind(t)) {
    case Kind::TermVar: {
      if (memSorted_.count(t) || in_.isMemVar(t)) {
        r = Value::makeMem(cx_.varSym(t));
      } else if (auto ov = in_.termOverride(t)) {
        r = Value::makeScalar(*ov);
      } else {
        r = Value::makeScalar(
            hashValues({in_.seed(), kTagTerm, cx_.varSym(t)}) % in_.domain());
      }
      break;
    }
    case Kind::Uf: {
      std::uint64_t h =
          hashValues({in_.seed(), kTagFunc, cx_.funcOf(t), 0x46});
      for (Expr a : cx_.args(t)) h = hashCombine(h, hashValue(evalTermInner(a)));
      r = Value::makeScalar(mix64(h) % in_.domain());
      break;
    }
    case Kind::IteT:
      r = evalFormulaInner(cx_.arg(t, 0)) ? evalTermInner(cx_.arg(t, 1))
                                          : evalTermInner(cx_.arg(t, 2));
      break;
    case Kind::Read: {
      const Value m = evalTermInner(cx_.arg(t, 0));
      const std::uint64_t addr = scalarOf(evalTermInner(cx_.arg(t, 1)));
      r = Value::makeScalar(readMem(m, addr));
      break;
    }
    case Kind::Write: {
      Value m = evalTermInner(cx_.arg(t, 0));
      VELEV_CHECK_MSG(m.tag == Value::Tag::Mem,
                      "write applied to a non-memory value");
      const std::uint64_t addr = scalarOf(evalTermInner(cx_.arg(t, 1)));
      const std::uint64_t data = scalarOf(evalTermInner(cx_.arg(t, 2)));
      m.mem[addr] = data;
      r = m;
      break;
    }
    default:
      VELEV_UNREACHABLE("formula kind in term position");
  }
  tmemo_.emplace(t, r);
  return r;
}

bool evalFormula(const Context& cx, Expr f, std::uint64_t seed,
                 std::uint64_t domain) {
  Interp in(seed, domain);
  Evaluator ev(cx, in);
  return ev.evalFormula(f);
}

}  // namespace velev::eufm
