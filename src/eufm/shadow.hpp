// ShadowContext — a read-through hash-consing overlay on a frozen Context.
//
// The rewrite slice checks (Sect. 6) intern scratch expressions — the
// merged retire/completion ITEs, the case-split substitution results, the
// candidate forwarding hits — that the final rebuild never reuses. A
// ShadowContext gives each slice (and, when the slice loop is parallelized,
// each worker) a private arena for that scratch:
//
//   * every id below `base().numNodes()` denotes the base context's node,
//     read through const accessors only (the base must not be mutated while
//     any shadow over it is alive — the one-Context-per-cell rule extended
//     to "one frozen base, many read-only overlays");
//   * new structure is hash-consed locally with ids starting at
//     `base().numNodes()`, so shadow ids and base ids share one address
//     space and compare directly;
//   * construction is canonical in exactly the same way as in Context: a
//     structurally built expression resolves to the base node when all its
//     arguments do (the builders probe the base table first via
//     Context::find), and can never collide with a base node otherwise —
//     so equality checks against base-held expressions are exact.
//
// Discarding the shadow discards the scratch; repeated slice checks no
// longer grow the main arena. Budgeting goes through the shared
// BudgetGovernor using a caller-provided per-worker source slot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eufm/expr.hpp"

namespace velev {
class BudgetGovernor;
}  // namespace velev

namespace velev::eufm {

class ShadowContext {
 public:
  /// `base` must outlive the shadow and stay frozen (no interning) while
  /// the shadow is in use. `governor`/`source` wire the overlay into the
  /// shared budget; `source` is typically one registered slot per worker,
  /// zeroed by the worker between slices.
  explicit ShadowContext(const Context& base, BudgetGovernor* governor = nullptr,
                         int source = -1)
      : base_(base), baseN_(static_cast<Expr>(base.numNodes())),
        budget_(governor), budgetSource_(source) {
    table_.assign(256, kNoExpr);
  }
  ShadowContext(const ShadowContext&) = delete;
  ShadowContext& operator=(const ShadowContext&) = delete;

  const Context& base() const { return base_; }

  // ---- Constants (always base nodes) ---------------------------------------
  Expr mkTrue() const { return base_.mkTrue(); }
  Expr mkFalse() const { return base_.mkFalse(); }

  // ---- Accessors (transparent across the base/local split) -----------------
  Kind kind(Expr e) const {
    return e < baseN_ ? base_.kind(e) : nodes_[e - baseN_].kind;
  }
  Sort sort(Expr e) const { return sortOf(kind(e)); }
  bool isFormula(Expr e) const { return sort(e) == Sort::Formula; }
  bool isTerm(Expr e) const { return sort(e) == Sort::Term; }
  bool isVar(Expr e) const {
    const Kind k = kind(e);
    return k == Kind::BoolVar || k == Kind::TermVar;
  }
  bool isIte(Expr e) const {
    const Kind k = kind(e);
    return k == Kind::IteF || k == Kind::IteT;
  }
  std::span<const Expr> args(Expr e) const {
    if (e < baseN_) return base_.args(e);
    const Node& n = nodes_[e - baseN_];
    return {argPool_.data() + n.argsOfs, n.nargs};
  }
  Expr arg(Expr e, unsigned i) const {
    if (e < baseN_) return base_.arg(e, i);
    const Node& n = nodes_[e - baseN_];
    VELEV_CHECK(i < n.nargs);
    return argPool_[n.argsOfs + i];
  }
  FuncId funcOf(Expr e) const {
    if (e < baseN_) return base_.funcOf(e);
    const Kind k = kind(e);
    VELEV_CHECK(k == Kind::Uf || k == Kind::Up);
    return nodes_[e - baseN_].sym;
  }

  /// Total visible nodes (base + local) and the local scratch alone.
  std::size_t numNodes() const { return baseN_ + nodes_.size(); }
  std::size_t localNodes() const { return nodes_.size(); }

  /// Logical bytes owned by the overlay itself (what a worker reports to
  /// the governor; the base's bytes are reported by its own source).
  std::size_t memoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           argPool_.capacity() * sizeof(Expr) +
           table_.capacity() * sizeof(Expr);
  }

  // ---- Builders (mirror Context's canonicalization exactly) ----------------
  // Keep these in lock-step with Context::mk*: the parallel slice checker's
  // determinism argument needs identical folding on both sides of the
  // base/local split.
  Expr apply(FuncId f, std::span<const Expr> args);
  Expr apply(FuncId f, std::initializer_list<Expr> args) {
    return apply(f, std::span<const Expr>(args.begin(), args.size()));
  }
  Expr mkNot(Expr f);
  Expr mkAnd(Expr a, Expr b);
  Expr mkOr(Expr a, Expr b);
  Expr mkAnd(std::span<const Expr> fs);
  Expr mkOr(std::span<const Expr> fs);
  Expr mkImplies(Expr a, Expr b) { return mkOr(mkNot(a), b); }
  Expr mkIff(Expr a, Expr b) { return mkIteF(a, b, mkNot(b)); }
  Expr mkEq(Expr lhs, Expr rhs);
  Expr mkIteF(Expr c, Expr t, Expr e);
  Expr mkIteT(Expr c, Expr t, Expr e);
  Expr mkRead(Expr mem, Expr addr);
  Expr mkWrite(Expr mem, Expr addr, Expr data);

 private:
  Expr intern(Kind k, std::uint32_t sym, std::span<const Expr> args);
  void growTable();
  std::uint64_t localHash(Kind k, std::uint32_t sym,
                          std::span<const Expr> args) const;
  bool localEquals(std::uint32_t localIdx, Kind k, std::uint32_t sym,
                   std::span<const Expr> args) const;

  const Context& base_;
  const Expr baseN_;

  std::vector<Node> nodes_;    // local nodes; id = baseN_ + index
  std::vector<Expr> argPool_;  // local argument pool (ids may point anywhere)
  std::vector<Expr> table_;    // open addressing over LOCAL ids only
  std::size_t tableCount_ = 0;

  BudgetGovernor* budget_ = nullptr;
  int budgetSource_ = -1;
  std::uint32_t budgetTick_ = 0;
};

}  // namespace velev::eufm
