// EUFM — the logic of Equality with Uninterpreted Functions and Memories
// (Burch & Dill, CAV'94), as used by Velev's TLSim/EVC tool flow.
//
// Expressions are hash-consed nodes in a Context-owned DAG. There are two
// sorts:
//   * terms    — abstract word-level values (data operands, register ids,
//                memory addresses, and entire memory-array states);
//   * formulas — the control path and the correctness condition.
//
// Terms:    term variables, uninterpreted-function (UF) applications,
//           ITE(formula, term, term), read(mem, addr), write(mem, addr, data).
// Formulas: true/false, Boolean variables, uninterpreted-predicate (UP)
//           applications, equations (term = term), ¬, ∧, ∨,
//           ITE(formula, formula, formula).
//
// `read`/`write` satisfy the forwarding property of the memory semantics;
// their *elimination* (by forwarding expansion or by the conservative
// general-UF abstraction of TACAS'01) is performed downstream in `evc/` —
// the builders here never rewrite them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"
#include "support/interner.hpp"

namespace velev {
class BudgetGovernor;
}  // namespace velev

namespace velev::eufm {

/// Node id into a Context. Ids are dense and stable for the Context lifetime.
using Expr = std::uint32_t;
constexpr Expr kNoExpr = 0xffffffffu;

/// Uninterpreted function / predicate symbol id.
using FuncId = std::uint32_t;

enum class Kind : std::uint8_t {
  // Formulas.
  False,
  True,
  BoolVar,   // sym = variable name
  Up,        // sym = predicate symbol, args = terms
  Eq,        // args = {lhs term, rhs term}, stored in canonical order
  Not,       // args = {formula}
  And,       // args = {formula, formula}, canonical order
  Or,        // args = {formula, formula}, canonical order
  IteF,      // args = {cond formula, then formula, else formula}
  // Terms.
  TermVar,   // sym = variable name
  Uf,        // sym = function symbol, args = terms
  IteT,      // args = {cond formula, then term, else term}
  Read,      // args = {mem term, addr term}
  Write,     // args = {mem term, addr term, data term}
};

/// Which sort an expression belongs to.
enum class Sort : std::uint8_t { Formula, Term };

constexpr Sort sortOf(Kind k) {
  return k >= Kind::TermVar ? Sort::Term : Sort::Formula;
}

struct Node {
  Kind kind;
  std::uint8_t nargs;
  std::uint32_t sym;      // name id (vars) or FuncId (Uf/Up); else kNoSym
  std::uint32_t argsOfs;  // offset into the Context argument pool
};
constexpr std::uint32_t kNoSym = 0xffffffffu;

struct FuncInfo {
  std::string name;
  unsigned arity = 0;
  bool isPredicate = false;
};

/// Owns the hash-consed DAG. All expression construction goes through here.
/// A Context is not thread-safe; use one per verification run.
class Context {
 public:
  Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // ---- Constants ----------------------------------------------------------
  Expr mkTrue() const { return true_; }
  Expr mkFalse() const { return false_; }

  // ---- Variables ----------------------------------------------------------
  /// Named variables: the same name always yields the same node.
  Expr boolVar(std::string_view name);
  Expr termVar(std::string_view name);
  /// Fresh variables: `prefix` + an internal counter, guaranteed new.
  Expr freshBoolVar(std::string_view prefix);
  Expr freshTermVar(std::string_view prefix);

  // ---- Uninterpreted functions / predicates -------------------------------
  /// Declare (or retrieve) a function symbol. Redeclaration with a different
  /// arity or kind is an error.
  FuncId declareFunc(std::string_view name, unsigned arity);
  FuncId declarePred(std::string_view name, unsigned arity);
  const FuncInfo& func(FuncId f) const { return funcs_[f]; }
  std::size_t numFuncs() const { return funcs_.size(); }

  Expr apply(FuncId f, std::span<const Expr> args);
  Expr apply(FuncId f, std::initializer_list<Expr> args) {
    return apply(f, std::span<const Expr>(args.begin(), args.size()));
  }

  // ---- Formula connectives (with constant folding) ------------------------
  Expr mkNot(Expr f);
  Expr mkAnd(Expr a, Expr b);
  Expr mkOr(Expr a, Expr b);
  Expr mkAnd(std::span<const Expr> fs);
  Expr mkOr(std::span<const Expr> fs);
  Expr mkImplies(Expr a, Expr b) { return mkOr(mkNot(a), b); }
  Expr mkIff(Expr a, Expr b);
  Expr mkEq(Expr lhs, Expr rhs);
  Expr mkIteF(Expr c, Expr t, Expr e);

  // ---- Term constructors ---------------------------------------------------
  Expr mkIteT(Expr c, Expr t, Expr e);
  Expr mkRead(Expr mem, Expr addr);
  Expr mkWrite(Expr mem, Expr addr, Expr data);

  // ---- Accessors -----------------------------------------------------------
  const Node& node(Expr e) const { return nodes_[e]; }
  Kind kind(Expr e) const { return nodes_[e].kind; }
  Sort sort(Expr e) const { return sortOf(nodes_[e].kind); }
  bool isFormula(Expr e) const { return sort(e) == Sort::Formula; }
  bool isTerm(Expr e) const { return sort(e) == Sort::Term; }
  std::span<const Expr> args(Expr e) const {
    const Node& n = nodes_[e];
    return {argPool_.data() + n.argsOfs, n.nargs};
  }
  Expr arg(Expr e, unsigned i) const {
    const Node& n = nodes_[e];
    VELEV_CHECK(i < n.nargs);
    return argPool_[n.argsOfs + i];
  }
  /// Variable name (BoolVar / TermVar nodes).
  const std::string& varName(Expr e) const;
  /// Symbol id of a variable node (dense per Context, usable as a map key).
  std::uint32_t varSym(Expr e) const;
  /// Function symbol of a Uf/Up node.
  FuncId funcOf(Expr e) const;

  std::size_t numNodes() const { return nodes_.size(); }

  /// Read-only hash-cons probe: the id of the structurally identical node
  /// if this context already owns one, else kNoExpr. Never interns, never
  /// touches the budget — safe to call concurrently from many threads as
  /// long as nobody mutates the context (the ShadowContext overlay's
  /// read-through path relies on exactly that freeze).
  Expr find(Kind k, std::uint32_t sym, std::span<const Expr> args) const;

  // ---- Resource governance -------------------------------------------------
  /// Attaches (or with nullptr, detaches) a resource governor. While
  /// attached, intern() periodically checkpoints the context's logical
  /// memory footprint and the governor's deadline; an exhausted budget
  /// unwinds out of the current builder call as BudgetExceeded. Every phase
  /// that grows the DAG — symbolic simulation, rewriting, memory/UF
  /// elimination — is thereby governed through this single chokepoint.
  void setBudget(BudgetGovernor* governor);
  BudgetGovernor* budgetGovernor() const { return budget_; }

  /// Logical bytes owned by this context (vector capacities of the node
  /// arena, argument pool, and hash-cons table). O(1); this is the quantity
  /// reported to the governor.
  std::size_t memoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           argPool_.capacity() * sizeof(Expr) +
           table_.capacity() * sizeof(Expr);
  }

  /// Structural helpers used throughout the pipeline.
  bool isVar(Expr e) const {
    const Kind k = kind(e);
    return k == Kind::BoolVar || k == Kind::TermVar;
  }
  bool isIte(Expr e) const {
    const Kind k = kind(e);
    return k == Kind::IteF || k == Kind::IteT;
  }

 private:
  Expr intern(Kind k, std::uint32_t sym, std::span<const Expr> args);
  Expr mkVar(Kind k, std::string_view name);
  FuncId declare(std::string_view name, unsigned arity, bool pred);
  void growTable();
  std::uint64_t nodeHash(Kind k, std::uint32_t sym,
                         std::span<const Expr> args) const;
  bool nodeEquals(Expr e, Kind k, std::uint32_t sym,
                  std::span<const Expr> args) const;

  std::vector<Node> nodes_;
  std::vector<Expr> argPool_;
  // Open-addressing hash-cons table: slots hold Expr ids or kNoExpr.
  std::vector<Expr> table_;
  std::size_t tableCount_ = 0;

  StringInterner names_;
  std::vector<FuncInfo> funcs_;
  std::unordered_map<std::string, FuncId> funcIds_;

  std::uint64_t freshCounter_ = 0;
  Expr true_ = kNoExpr;
  Expr false_ = kNoExpr;

  BudgetGovernor* budget_ = nullptr;
  int budgetSource_ = -1;
  std::uint32_t budgetTick_ = 0;
};

}  // namespace velev::eufm
