// The serializable request/response surface of the verification pipeline.
//
// core::VerifyRequest is the single, schema-versioned description of "one
// verification cell": processor configuration (ROB size, issue width,
// injected bug), strategy, decision engine, UF scheme, resource budget and
// the pipeline toggles that used to travel as scattered VerifyOptions +
// N/width + CLI-flag plumbing. One VerifyRequest round-trips through JSON
// (support/json.hpp), so the same value drives
//
//   * the in-process API          verify(const VerifyRequest&)
//   * the grid runner             runGrid(std::span<const VerifyRequest>,..)
//   * the velev_verify CLI        (flags -> request; --connect sends it)
//   * the velev_serve daemon      (newline-delimited requests on a socket)
//   * the replay bench            bench/serve_replay.cpp
//
// core::VerifyResponse is the matching wire answer: the full
// VerifyReport::Outcome (verdict, reason, failed slice, stage seconds,
// resource accounting) plus the canonical paper-aligned counter block
// (core::reportCounters) and the shared exit-code mapping.
//
// SCHEMA DISCIPLINE (kRequestSchemaVersion / kResponseSchemaVersion = 1):
//   * every message carries "version"; parsing rejects missing or
//     mismatched versions (no silent forward compatibility);
//   * parsing rejects unknown fields — a typo'd option must fail loudly,
//     not silently verify the default configuration;
//   * all fields except "version" are optional with the documented
//     defaults, and enum-valued fields use the stable names of the
//     support/names.hpp registry ("rw+pe", "sat", "fwd", ...).
// The wire format is documented in docs/SERVICE.md.
//
// CACHE KEY: cacheKey() hashes the canonical JSON encoding of everything
// that determines the result (id excluded) together with
// trace::gitDescribe(), so the velev_serve result cache is content
// addressed: same cell + same code => same key; any semantic field or a
// rebuilt binary changes it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/verifier.hpp"
#include "support/json.hpp"

namespace velev::core {

/// Version of the VerifyRequest JSON schema (the "version" field). Bump on
/// any breaking change and document the migration in docs/SERVICE.md.
constexpr int kRequestSchemaVersion = 1;

/// Version of the VerifyResponse JSON schema.
constexpr int kResponseSchemaVersion = 1;

struct VerifyRequest {
  /// Client-chosen request id, echoed verbatim in the response so clients
  /// can pipeline requests on one connection. Not part of the cache key.
  std::uint64_t id = 0;

  // -- the verification cell --------------------------------------------------
  unsigned robSize = 8;      // "rob_size"
  unsigned issueWidth = 2;   // "issue_width"
  models::BugSpec bug;       // "bug_kind" / "bug_index"

  // -- how to verify it -------------------------------------------------------
  Strategy strategy = Strategy::RewritingPlusPositiveEquality;  // "strategy"
  Engine engine = Engine::Sat;                                  // "engine"
  evc::UfScheme ufScheme = evc::UfScheme::NestedIte;            // "uf_scheme"
  bool skipSat = false;          // "skip_sat": stop after translation
  bool coneOfInfluence = true;   // "cone_of_influence"
  bool inprocess = true;         // "inprocess": SAT simplification front end

  // -- resource budget (ResourceBudget semantics) -----------------------------
  double timeoutSeconds = 0;          // "timeout_seconds"; <= 0 unlimited
  std::uint64_t memoryBudgetBytes = 0;  // "memory_budget_bytes"; 0 unlimited
  std::int64_t satConflictBudget = -1;  // "sat_conflict_budget"; <0 unlimited

  models::OoOConfig config() const { return {robSize, issueWidth}; }

  ResourceBudget budget() const {
    ResourceBudget b;
    b.wallSeconds = timeoutSeconds;
    b.memoryBytes = static_cast<std::size_t>(memoryBudgetBytes);
    b.satConflicts = satConflictBudget;
    return b;
  }

  /// Expand into the low-level options struct verifyWith() consumes. The
  /// expansion is total: every VerifyRequest field lands in the options.
  VerifyOptions options() const;

  /// Sanity-check field ranges (robSize >= 1, 1 <= issueWidth <= robSize,
  /// bug index within models::bugIndexLimit). Returns nullopt when valid,
  /// else a one-line diagnostic.
  std::optional<std::string> validate() const;

  // -- JSON -------------------------------------------------------------------
  /// Emit as a JSON object. `includeId` excludes the id for canonical
  /// (cache-key) encodings. Fields equal to their defaults are emitted
  /// anyway — the canonical form is explicit, which keeps cache keys stable
  /// against default changes.
  void writeJson(JsonWriter& w, bool includeId = true) const;
  std::string toJson(bool includeId = true) const;

  /// Parse one request object. Rejects missing/mismatched "version",
  /// unknown fields, unknown enum names and out-of-range values; on
  /// failure returns nullopt with a one-line reason in `error`.
  static std::optional<VerifyRequest> fromJson(const JsonValue& v,
                                               std::string* error = nullptr);
  static std::optional<VerifyRequest> parse(std::string_view text,
                                            std::string* error = nullptr);

  // -- content addressing -----------------------------------------------------
  /// 64-bit content hash of the canonical JSON (id excluded) mixed with
  /// trace::gitDescribe() — the velev_serve cache key.
  std::uint64_t cacheKey() const;
  /// cacheKey() as 16 lower-case hex digits (the wire "cache_key" field).
  std::string cacheKeyHex() const;

  friend bool operator==(const VerifyRequest& a, const VerifyRequest& b) {
    return a.toJson() == b.toJson();
  }
};

struct VerifyResponse {
  std::uint64_t id = 0;     // echo of VerifyRequest::id
  /// Non-empty => the request failed before verification (parse error,
  /// validation error, server shutting down). Only version/id/error/
  /// exitCode are meaningful then; exitCode is 2 (usage error).
  std::string error;
  /// True when this answer came from the result cache or coalesced onto an
  /// already-running identical job instead of a fresh verification.
  bool cached = false;
  std::string cacheKey;     // VerifyRequest::cacheKeyHex() of the request

  Verdict verdict = Verdict::Inconclusive;
  std::string reason;       // budget-trip / mismatch text; may be empty
  unsigned failedSlice = 0; // RewriteMismatch only
  int exitCode = 3;         // core::verdictExitCode(verdict), or 2 on error

  double wallSeconds = 0;   // server-side end-to-end wall time of the job
  StageSeconds seconds;
  std::uint64_t peakArenaBytes = 0;
  std::uint64_t rssHighWaterKb = 0;
  /// Canonical paper-aligned counter block (core::reportCounters).
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  /// Flatten a finished report into the wire answer.
  static VerifyResponse fromReport(const VerifyRequest& req,
                                   const VerifyReport& rep,
                                   double wallSeconds);
  /// The error answer (exitCode 2).
  static VerifyResponse makeError(std::uint64_t id, std::string message);

  void writeJson(JsonWriter& w) const;
  std::string toJson() const;
  static std::optional<VerifyResponse> fromJson(const JsonValue& v,
                                                std::string* error = nullptr);
  static std::optional<VerifyResponse> parse(std::string_view text,
                                             std::string* error = nullptr);
};

/// Verify the cell a request describes — the primary entry point of the
/// library since the velev_serve API redesign. `session` optionally routes
/// the SAT stage through a shared incremental session (the grid runner's
/// --incremental mode); `memo` optionally consults a content-addressed
/// solve memo first (the serve worker's batching lane — identical CNFs
/// replay one finished solve, stats and all). Neither is ever part of the
/// serialized request.
VerifyReport verify(const VerifyRequest& req,
                    sat::IncrementalSession* session = nullptr,
                    sat::SolveMemo* memo = nullptr);

}  // namespace velev::core
