#include "core/diagram.hpp"

namespace velev::core {

using eufm::Expr;

Diagram buildDiagram(eufm::Context& cx, models::OoOProcessor& impl,
                     models::SpecProcessor& spec,
                     const tlsim::Simulator::Options& simOpts) {
  Diagram d;
  const unsigned k = impl.config.issueWidth;
  const unsigned flushCycles = impl.flushCycles();

  // --- Specification side: flush the initial state... -----------------------
  {
    tlsim::Simulator flushSim(impl.netlist, simOpts);
    flushSim.setInput(impl.flush, cx.mkTrue());
    for (unsigned c = 0; c < flushCycles; ++c) flushSim.step();
    d.specPc.push_back(flushSim.state(impl.pc));
    d.specRegFile.push_back(flushSim.state(impl.regFile));
    d.flushSimStats = flushSim.stats();
  }

  // ...then run the specification for m = 1..k steps from the flushed state.
  {
    tlsim::Simulator specSim(spec.netlist, simOpts);
    specSim.setState(spec.pc, d.specPc[0]);
    specSim.setState(spec.regFile, d.specRegFile[0]);
    for (unsigned m = 1; m <= k; ++m) {
      specSim.step();
      d.specPc.push_back(specSim.state(spec.pc));
      d.specRegFile.push_back(specSim.state(spec.regFile));
    }
  }

  // --- Implementation side: one regular cycle, then flush. -------------------
  {
    tlsim::Simulator implSim(impl.netlist, simOpts);
    implSim.setInput(impl.flush, cx.mkFalse());
    implSim.step();
    implSim.setInput(impl.flush, cx.mkTrue());
    for (unsigned c = 0; c < flushCycles; ++c) implSim.step();
    d.implPc = implSim.state(impl.pc);
    d.implRegFile = implSim.state(impl.regFile);
    d.implSimStats = implSim.stats();
  }

  // --- Correctness: in-sync update by 0, 1, ..., or k instructions. ----------
  Expr correctness = cx.mkFalse();
  for (unsigned m = 0; m <= k; ++m) {
    const Expr eqPc = cx.mkEq(d.implPc, d.specPc[m]);
    const Expr eqRf = cx.mkEq(d.implRegFile, d.specRegFile[m]);
    correctness = cx.mkOr(correctness, cx.mkAnd(eqPc, eqRf));
  }
  d.correctness = correctness;
  return d;
}

}  // namespace velev::core
