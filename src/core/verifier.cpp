#include "core/verifier.hpp"

#include "rewrite/engine.hpp"
#include "support/timer.hpp"

namespace velev::core {

using eufm::Expr;

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::Correct: return "correct";
    case Verdict::CounterexampleFound: return "counterexample";
    case Verdict::RewriteMismatch: return "rewrite-mismatch";
    case Verdict::Inconclusive: return "inconclusive";
  }
  return "unknown";
}

VerifyReport verifyWith(eufm::Context& cx, const models::Isa& isa,
                        models::OoOProcessor& impl,
                        models::SpecProcessor& spec,
                        const VerifyOptions& opts) {
  VerifyReport rep;
  Timer timer;

  // 1. Symbolic simulation of the commutative diagram.
  Diagram d = buildDiagram(cx, impl, spec, opts.sim);
  rep.simStats = d.implSimStats;
  rep.simSeconds = timer.seconds();

  Expr correctness = d.correctness;
  evc::TranslateOptions topts;
  topts.ufScheme = opts.ufScheme;

  // 2. Rewriting rules (optional): prove & remove the updates of the
  //    instructions initially in the ROB, then re-assemble the correctness
  //    formula from the simplified Register File expressions.
  if (opts.strategy == Strategy::RewritingPlusPositiveEquality) {
    timer.reset();
    rewrite::RewriteResult rw = rewrite::rewriteRobUpdates(
        cx, isa, impl.init, impl.config, d.implRegFile, d.specRegFile);
    rep.rewriteSeconds = timer.seconds();
    if (!rw.ok) {
      rep.verdict = Verdict::RewriteMismatch;
      rep.rewriteFailedSlice = rw.failedSlice;
      rep.rewriteMessage = rw.message;
      return rep;
    }
    rep.updatesRemoved = rw.updatesRemoved;
    Expr c = cx.mkFalse();
    for (unsigned m = 0; m < d.specPc.size(); ++m) {
      const Expr eqPc = cx.mkEq(d.implPc, d.specPc[m]);
      const Expr eqRf = cx.mkEq(rw.implRegFile, rw.specRegFile[m]);
      c = cx.mkOr(c, cx.mkAnd(eqPc, eqRf));
    }
    correctness = c;
    topts.conservativeMemory = true;
  }

  // 3. EUFM -> propositional -> CNF via Positive Equality.
  timer.reset();
  evc::Translation tr = evc::translate(cx, correctness, topts);
  rep.evcStats = tr.stats;
  rep.translateSeconds = timer.seconds();

  // 4. SAT check: the design is correct iff the CNF is unsatisfiable.
  if (opts.skipSat) {
    rep.verdict = Verdict::Inconclusive;
    return rep;
  }
  timer.reset();
  rep.satResult =
      sat::solveCnf(tr.cnf, nullptr, &rep.satStats, opts.satConflictBudget);
  rep.satSeconds = timer.seconds();

  switch (rep.satResult) {
    case sat::Result::Unsat:
      rep.verdict = Verdict::Correct;
      break;
    case sat::Result::Sat:
      rep.verdict = Verdict::CounterexampleFound;
      break;
    case sat::Result::Unknown:
      rep.verdict = Verdict::Inconclusive;
      break;
  }
  return rep;
}

VerifyReport verify(const models::OoOConfig& cfg, const models::BugSpec& bug,
                    const VerifyOptions& opts) {
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, cfg, bug);
  auto spec = models::buildSpec(cx, isa);
  return verifyWith(cx, isa, *impl, *spec, opts);
}

}  // namespace velev::core
