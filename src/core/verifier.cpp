#include "core/verifier.hpp"

#include <algorithm>
#include <memory>

#include "bdd/check.hpp"
#include "rewrite/engine.hpp"
#include "support/mem.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace velev::core {

using eufm::Expr;

const char* strategyName(Strategy s) { return names::nameOf(s); }

std::optional<Strategy> strategyFromName(std::string_view name) {
  return names::fromName<Strategy>(name);
}

const char* engineName(Engine e) { return names::nameOf(e); }

std::optional<Engine> engineFromName(std::string_view name) {
  return names::fromName<Engine>(name);
}

const char* verdictName(Verdict v) { return names::nameOf(v); }

std::optional<Verdict> verdictFromName(std::string_view name) {
  return names::fromName<Verdict>(name);
}

int verdictExitCode(Verdict v) {
  switch (v) {
    case Verdict::Correct:
      return 0;
    case Verdict::CounterexampleFound:
    case Verdict::RewriteMismatch:
      return 1;
    case Verdict::Inconclusive:
    case Verdict::Skipped:
      return 3;
    case Verdict::Timeout:
    case Verdict::MemOut:
      return 4;
  }
  return 3;
}

namespace {

Verdict budgetVerdict(BudgetKind kind) {
  return kind == BudgetKind::Memory ? Verdict::MemOut : Verdict::Timeout;
}

/// Scoped attachment of the run's governor to the shared context: restores
/// whatever was attached before even when a stage throws.
class ScopedContextBudget {
 public:
  ScopedContextBudget(eufm::Context& cx, BudgetGovernor& gov)
      : cx_(cx), prior_(cx.budgetGovernor()) {
    cx_.setBudget(&gov);
  }
  ~ScopedContextBudget() { cx_.setBudget(prior_); }

 private:
  eufm::Context& cx_;
  BudgetGovernor* prior_;
};

}  // namespace

// One linear scan of the DAG — done once at the end of a run, so the
// interning hot path stays counter-free.
ContextStats scanContext(const eufm::Context& cx) {
  ContextStats s;
  s.nodes = cx.numNodes();
  s.arenaBytes = cx.memoryBytes();
  for (Expr e = 0; e < cx.numNodes(); ++e) {
    const eufm::Kind k = cx.kind(e);
    if (k == eufm::Kind::Read) ++s.memoryReads;
    else if (k == eufm::Kind::Write) ++s.memoryWrites;
  }
  return s;
}

std::vector<std::pair<std::string, std::uint64_t>> reportCounters(
    const VerifyReport& rep) {
  const evc::TranslationStats& ev = rep.evcStats;
  const rewrite::RewriteStats& rw = rep.rewriteStats;
  const sat::Stats& sa = rep.satStats;
  std::vector<std::pair<std::string, std::uint64_t>> counters = {
      {"tlsim.cycles", rep.simStats.cycles},
      {"tlsim.signal_evals", rep.simStats.signalEvals},
      {"eufm.nodes", rep.cxStats.nodes},
      {"eufm.memory_reads", rep.cxStats.memoryReads},
      {"eufm.memory_writes", rep.cxStats.memoryWrites},
      {"eufm.arena_bytes", rep.cxStats.arenaBytes},
      {"rewrite.updates_removed", rep.updatesRemoved},
      {"rewrite.rules_fired", rw.rulesFired()},
      {"rewrite.slices_checked", rw.slicesChecked},
      {"rewrite.context_checks", rw.contextChecks},
      {"rewrite.moves_applied", rw.movesApplied},
      {"rewrite.merges_applied", rw.mergesApplied},
      {"rewrite.forwarding_matches", rw.forwardingMatches},
      {"rewrite.slice_nodes_total", rw.sliceNodesTotal},
      {"rewrite.slice_nodes_max", rw.sliceNodesMax},
      {"evc.eij_vars", ev.eijVars},
      {"evc.other_primary_vars", ev.otherPrimaryVars},
      {"evc.p_equations", ev.pEquations},
      {"evc.g_equations", ev.gEquations},
      {"evc.g_vars", ev.gVars},
      {"evc.memory_equations", ev.memoryEquations},
      {"evc.fresh_term_vars", ev.freshTermVars},
      {"evc.fresh_bool_vars", ev.freshBoolVars},
      {"evc.transitivity_fill_in_edges", ev.transitivity.fillInEdges},
      {"evc.transitivity_triangles", ev.transitivity.triangles},
      {"evc.transitivity_clauses", ev.transitivity.clauses},
      {"cnf.vars", ev.cnfVars},
      {"cnf.clauses", ev.cnfClauses},
      {"sat.decisions", sa.decisions},
      {"sat.propagations", sa.propagations},
      {"sat.conflicts", sa.conflicts},
      {"sat.learnts", sa.learnts},
      {"sat.restarts", sa.restarts},
  };
  if (rep.inprocessed) {
    const sat::InprocessStats& ip = rep.inprocessStats;
    counters.emplace_back("sat.inprocess.rounds", ip.rounds);
    counters.emplace_back("sat.inprocess.clauses_before", ip.clausesBefore);
    counters.emplace_back("sat.inprocess.clauses_after", ip.clausesAfter);
    counters.emplace_back("sat.inprocess.clauses_removed", ip.clausesRemoved);
    counters.emplace_back("sat.inprocess.clauses_strengthened",
                          ip.clausesStrengthened);
    counters.emplace_back("sat.inprocess.lits_removed", ip.litsRemoved);
    counters.emplace_back("sat.inprocess.vars_eliminated", ip.varsEliminated);
    counters.emplace_back("sat.inprocess.vars_substituted",
                          ip.varsSubstituted);
    counters.emplace_back("sat.inprocess.failed_literals", ip.failedLiterals);
    counters.emplace_back("sat.inprocess.reconstruction_depth",
                          ip.reconstructionDepth);
  }
  if (rep.engine != Engine::Sat) {
    const bdd::BddStats& bs = rep.bddStats;
    counters.emplace_back("bdd.nodes_peak", bs.nodesPeak);
    counters.emplace_back("bdd.cache_hits", bs.cacheHits);
    counters.emplace_back("bdd.cache_lookups", bs.cacheLookups);
    counters.emplace_back("bdd.reorderings", bs.reorderings);
    counters.emplace_back("bdd.gc_runs", bs.gcRuns);
  }
  return counters;
}

VerifyReport verifyWith(eufm::Context& cx, const models::Isa& isa,
                        models::OoOProcessor& impl,
                        models::SpecProcessor& spec,
                        const VerifyOptions& opts) {
  VerifyReport rep;
  rep.engine = opts.engine;
  BudgetGovernor gov(opts.budget);
  ScopedContextBudget attach(cx, gov);

  // Intra-cell worker pool (jobs > 1): shared by the rewrite slice loop and
  // the CNF build. Results are identical to the sequential path, so nothing
  // downstream needs to know whether it existed.
  std::unique_ptr<ThreadPool> pool;
  if (opts.jobs > 1) pool = std::make_unique<ThreadPool>(opts.jobs);

  // `stage` points at the StageSeconds slot of the phase in flight, so a
  // budget trip attributes the partial time to the stage that overran.
  Timer timer;
  double* stage = &rep.outcome.seconds.sim;

  auto finish = [&](Verdict v) -> VerifyReport& {
    *stage += timer.seconds();
    rep.outcome.verdict = v;
    // max, not assign: Engine::Both folds its sibling governor's peak in
    // before finishing.
    rep.outcome.peakArenaBytes =
        std::max(rep.outcome.peakArenaBytes, gov.peakArenaBytes());
    rep.outcome.rssHighWaterKb = rssHighWaterKb();
    rep.cxStats = scanContext(cx);
    // Publish the canonical counter block on the attached collector (if
    // any), so the manifest and the stage tree show it without the caller
    // having to re-derive it from the report.
    if (trace::Collector* c = trace::active())
      for (const auto& [name, value] : reportCounters(rep))
        c->setCounter(name, value);
    return rep;
  };

  try {
    // 1. Symbolic simulation of the commutative diagram.
    Diagram d = [&] {
      TRACE_SPAN("verify.sim");
      return buildDiagram(cx, impl, spec, opts.sim);
    }();
    rep.simStats = d.implSimStats;
    rep.outcome.seconds.sim = timer.seconds();

    Expr correctness = d.correctness;
    evc::TranslateOptions topts;
    topts.ufScheme = opts.ufScheme;
    // The Bdd-only engine consumes the AIG directly — skip Tseitin and emit
    // just the transitivity side clauses. Sat and Both need the full CNF.
    topts.emitCnf = opts.engine != Engine::Bdd;
    topts.pool = pool.get();

    // 2. Rewriting rules (optional): prove & remove the updates of the
    //    instructions initially in the ROB, then re-assemble the correctness
    //    formula from the simplified Register File expressions.
    if (opts.strategy == Strategy::RewritingPlusPositiveEquality) {
      timer.reset();
      stage = &rep.outcome.seconds.rewrite;
      rewrite::RewriteResult rw = [&] {
        TRACE_SPAN("verify.rewrite");
        return rewrite::rewriteRobUpdates(cx, isa, impl.init, impl.config,
                                          d.implRegFile, d.specRegFile,
                                          pool.get());
      }();
      rep.rewriteStats = rw.stats;
      rep.outcome.seconds.rewrite = timer.seconds();
      if (!rw.ok) {
        rep.outcome.failedSlice = rw.failedSlice;
        rep.outcome.reason = rw.message;
        timer.reset();
        return finish(Verdict::RewriteMismatch);
      }
      rep.updatesRemoved = rw.updatesRemoved;
      Expr c = cx.mkFalse();
      for (unsigned m = 0; m < d.specPc.size(); ++m) {
        const Expr eqPc = cx.mkEq(d.implPc, d.specPc[m]);
        const Expr eqRf = cx.mkEq(rw.implRegFile, rw.specRegFile[m]);
        c = cx.mkOr(c, cx.mkAnd(eqPc, eqRf));
      }
      correctness = c;
      topts.conservativeMemory = true;
    }

    // 3. EUFM -> propositional -> CNF via Positive Equality.
    timer.reset();
    stage = &rep.outcome.seconds.translate;
    evc::Translation tr = [&] {
      TRACE_SPAN("verify.translate");
      return evc::translate(cx, correctness, topts);
    }();
    rep.evcStats = tr.stats;
    rep.outcome.seconds.translate = timer.seconds();

    // 4. Decision engine(s): the design is correct iff the negated formula
    //    is unsatisfiable — by CNF + CDCL, by ROBDD reduction to the false
    //    terminal, or by both with a cross-check.
    if (opts.skipSat) {
      // Timing benches stop before CDCL, but the inprocessing pipeline
      // still runs (attributed to the SAT stage) so the before/after CNF
      // sizes land in the report — Table 4's encoding-size comparison.
      if (opts.engine != Engine::Bdd && opts.inprocess.enabled &&
          opts.satSession == nullptr) {
        timer.reset();
        stage = &rep.outcome.seconds.sat;
        {
          TRACE_SPAN("verify.sat");
          rep.inprocessStats =
              sat::inprocess(tr.cnf, opts.inprocess, nullptr, &gov).stats;
        }
        rep.inprocessed = true;
        rep.outcome.seconds.sat = timer.seconds();
      }
      timer.reset();
      return finish(Verdict::Inconclusive);
    }

    struct EngineVerdict {
      Verdict verdict = Verdict::Inconclusive;
      std::string reason;
      bool conclusive() const {
        return verdict == Verdict::Correct ||
               verdict == Verdict::CounterexampleFound;
      }
    };
    std::optional<EngineVerdict> satSide, bddSide;

    if (opts.engine != Engine::Bdd) {
      timer.reset();
      stage = &rep.outcome.seconds.sat;
      {
        TRACE_SPAN("verify.sat");
        if (opts.satSession != nullptr) {
          // Shared incremental session (grid runner): the session carries
          // activities/phases/learnts across cells; this run's governor is
          // attached only for the duration of the call.
          opts.satSession->setBudget(&gov);
          rep.outcome.satResult = opts.satSession->solveCell(
              tr.cnf, {}, nullptr, &rep.satStats, &rep.inprocessStats,
              opts.budget.satConflicts);
          opts.satSession->setBudget(nullptr);
          rep.inprocessed = true;
        } else {
          // Content-addressed solve memo (serve batching lane): an
          // identical CNF under identical options replays the stored
          // result and per-call stats — bit for bit what the fresh
          // deterministic solve below would produce. Only conclusive
          // results are ever stored, and never from a tripped governor.
          sat::SolveMemo* memo = opts.satMemo;
          const std::uint64_t mkey =
              memo != nullptr ? sat::SolveMemo::key(tr.cnf, opts.inprocess,
                                                    opts.budget.satConflicts)
                              : 0;
          const sat::SolveMemo::Entry* replay =
              memo != nullptr ? memo->find(mkey) : nullptr;
          if (replay != nullptr) {
            rep.outcome.satResult = replay->result;
            rep.satStats = replay->stats;
            rep.inprocessStats = replay->inprocessStats;
            rep.inprocessed = replay->inprocessed;
            if (trace::Collector* c = trace::active())
              c->addCounter("sat.memo.hits", 1);
          } else {
            rep.outcome.satResult = sat::solveCnfInprocessed(
                tr.cnf, opts.inprocess, nullptr, &rep.satStats,
                opts.budget.satConflicts, nullptr, &gov, &rep.inprocessStats);
            rep.inprocessed = opts.inprocess.enabled;
            if (memo != nullptr && !gov.exceeded())
              memo->store(mkey, {rep.outcome.satResult, rep.satStats,
                                 rep.inprocessStats, rep.inprocessed});
          }
        }
      }
      rep.outcome.seconds.sat = timer.seconds();
      EngineVerdict ev;
      switch (rep.outcome.satResult) {
        case sat::Result::Unsat:
          ev.verdict = Verdict::Correct;
          break;
        case sat::Result::Sat:
          ev.verdict = Verdict::CounterexampleFound;
          break;
        case sat::Result::Unknown:
          // Either the governor stopped the solver (budget verdict) or the
          // SAT conflict budget ran out (the classic Inconclusive).
          if (gov.exceeded()) {
            ev.verdict = budgetVerdict(gov.exceededKind());
            ev.reason = gov.exceededReason();
          } else {
            ev.verdict = Verdict::Inconclusive;
            ev.reason = "SAT conflict budget exhausted";
          }
          break;
      }
      satSide = ev;
    }

    if (opts.engine != Engine::Sat) {
      timer.reset();
      stage = &rep.outcome.seconds.bdd;
      // Under Both the BDD engine runs on a sibling governor armed from the
      // same budget, so the SAT side's consumption (already charged to
      // `gov`) cannot pre-trip the BDD side; Bdd-only shares the run's
      // governor like any other stage.
      BudgetGovernor sibling(opts.budget);
      BudgetGovernor& bddGov = opts.engine == Engine::Both ? sibling : gov;
      bdd::CheckOptions copts;
      copts.governor = &bddGov;
      bdd::CheckResult cr;
      {
        TRACE_SPAN("verify.bdd");
        cr = bdd::checkValidity(*tr.pctx, tr.validityRoot,
                                tr.transitivityClauses(), copts);
      }
      rep.outcome.seconds.bdd = timer.seconds();
      rep.bddStats = cr.stats;
      rep.outcome.peakArenaBytes =
          std::max(rep.outcome.peakArenaBytes, bddGov.peakArenaBytes());
      EngineVerdict ev;
      switch (cr.status) {
        case bdd::CheckStatus::Valid:
          ev.verdict = Verdict::Correct;
          break;
        case bdd::CheckStatus::Falsifiable:
          ev.verdict = Verdict::CounterexampleFound;
          break;
        case bdd::CheckStatus::Unknown:
          ev.verdict = budgetVerdict(cr.tripKind);
          ev.reason = cr.reason;
          break;
      }
      bddSide = ev;
    }
    timer.reset();

    if (satSide && bddSide && satSide->conclusive() &&
        bddSide->conclusive() && satSide->verdict != bddSide->verdict) {
      // A sound disagreement between two independent decision procedures
      // on the same formula is a library bug, never a verdict.
      throw InternalError(
          std::string("engine disagreement: SAT says ") +
          verdictName(satSide->verdict) + " but BDD says " +
          verdictName(bddSide->verdict));
    }

    // Prefer a conclusive answer (they agree when both are conclusive);
    // otherwise fall back to whichever engine ran, SAT side first.
    const EngineVerdict& chosen =
        satSide && satSide->conclusive()   ? *satSide
        : bddSide && bddSide->conclusive() ? *bddSide
        : satSide                          ? *satSide
                                           : *bddSide;
    rep.outcome.reason = chosen.reason;
    return finish(chosen.verdict);
  } catch (const BudgetExceeded& e) {
    rep.outcome.reason = e.what();
    return finish(budgetVerdict(e.kind()));
  }
}

}  // namespace velev::core
