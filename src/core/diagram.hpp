// Construction of the Burch–Dill commutative diagram (Sect. 5).
//
// Specification side: the abstraction function (flushing by completion
// functions) applied to the *initial* implementation state, followed by
// m = 0..k steps of the specification processor.
// Implementation side: one cycle of regular operation, followed by the
// abstraction function.
//
// The correctness criterion: the user-visible state (PC and Register File)
// is updated in sync by 0, or 1, ..., or k instructions:
//   correctness = ⋁_{m=0..k} (PC_Impl = PC_Spec,m) ∧ (RF_Impl = RF_Spec,m).
#pragma once

#include <vector>

#include "models/ooo.hpp"
#include "models/spec.hpp"
#include "tlsim/sim.hpp"

namespace velev::core {

struct Diagram {
  eufm::Expr correctness = eufm::kNoExpr;

  eufm::Expr implPc = eufm::kNoExpr;
  eufm::Expr implRegFile = eufm::kNoExpr;
  std::vector<eufm::Expr> specPc;       // index m = 0..k
  std::vector<eufm::Expr> specRegFile;  // index m = 0..k

  tlsim::Simulator::Stats implSimStats;   // regular cycle + flush
  tlsim::Simulator::Stats flushSimStats;  // abstraction of the initial state
};

/// Symbolically simulate both sides of the diagram and assemble the
/// correctness formula. `simOpts` selects the cone-of-influence optimization
/// (on by default; off reproduces the naive full re-evaluation).
Diagram buildDiagram(eufm::Context& cx, models::OoOProcessor& impl,
                     models::SpecProcessor& spec,
                     const tlsim::Simulator::Options& simOpts = {});

}  // namespace velev::core
