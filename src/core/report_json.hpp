// The one JSON cell schema shared by every machine-readable report.
//
// velev_verify --json, the benches' BENCH_<name>.json and the velev_serve
// replay bench all emit per-cell records; before this writer existed each
// of them hand-rolled the same key sequence and they drifted (velev_verify
// lacked the counter block, the benches lacked fell_back). core::ReportCell
// is the superset record and writeReportCell() the single emitter:
//
//   { "rob_size": uint, "width": uint, "label"?: str, "verdict": str,
//     "reason"?: str, "wall_seconds": num, "sat_conflicts": uint,
//     "peak_arena_bytes": uint, "mem_high_water_kb": uint,
//     "fell_back"?: true, "first_verdict"?: str,
//     "counters"?: { str: uint ... }, "stage_seconds"?: { str: num ... } }
//
// Optional keys are emitted only when meaningful (empty label/reason and
// fell_back=false are omitted), so existing consumers keep parsing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/grid_runner.hpp"
#include "support/json.hpp"

namespace velev::core {

struct ReportCell {
  unsigned robSize = 0;
  unsigned issueWidth = 0;
  std::string label;        // e.g. strategy or phase; may be empty
  std::string verdict;      // core::verdictName() or bench-specific
  std::string reason;       // budget-trip / mismatch text; may be empty
  double wallSeconds = 0;
  std::uint64_t satConflicts = 0;
  std::uint64_t peakArenaBytes = 0;
  std::uint64_t memHighWaterKb = 0;
  bool fellBack = false;
  std::string firstVerdict;  // pre-fallback verdict when fellBack
  /// Canonical paper-aligned counter block (core::reportCounters).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Per-stage wall seconds ("sim"/"rewrite"/"translate"/"sat"/"bdd").
  std::vector<std::pair<std::string, double>> stageSeconds;
};

/// Flatten one grid result (counters included; stage seconds included).
ReportCell makeReportCell(const GridCellResult& res, std::string label = {});

/// Flatten one free-standing VerifyReport (the benches' non-grid path).
/// `memHighWaterKb` is the caller's RSS snapshot (support/mem.hpp).
ReportCell makeReportCell(const models::OoOConfig& cfg, std::string label,
                          const VerifyReport& rep, double wallSeconds,
                          std::uint64_t memHighWaterKb);

/// Emit one cell object on an open writer (the caller brackets the array).
void writeReportCell(JsonWriter& w, const ReportCell& c);

}  // namespace velev::core
