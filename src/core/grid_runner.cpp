#include "core/grid_runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "support/json.hpp"
#include "support/mem.hpp"
#include "support/timer.hpp"

namespace velev::core {

namespace {

/// One scheduled cell: the configuration plus its fully expanded options.
/// The public request-based runGrid() lowers every request to one of
/// these.
struct GridJob {
  GridCell cell;
  VerifyOptions vopts;
};

/// One cell end to end: fresh context + models, then verifyWith (which
/// arms the governor) — the one-Context-per-cell rule.
VerifyReport verifyCell(const models::OoOConfig& cfg,
                        const models::BugSpec& bug,
                        const VerifyOptions& opts) {
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, cfg, bug);
  auto spec = models::buildSpec(cx, isa);
  return verifyWith(cx, isa, *impl, *spec, opts);
}

/// File stem shared by the two per-cell output files.
std::string cellFileStem(const GridCell& cell, std::size_t index) {
  return "cell_" + std::to_string(index) + "_" +
         std::to_string(cell.robSize) + "x" +
         std::to_string(cell.issueWidth);
}

/// Write the two per-cell trace artifacts. Each worker writes only its own
/// cell's files (distinct names), so no cross-thread coordination needed.
void writeCellTrace(const std::string& dir, std::size_t index,
                    const GridCellResult& res, const VerifyOptions& vopts,
                    const trace::Collector& collector) {
  const std::string stem = dir + "/" + cellFileStem(res.cell, index);
  if (std::ofstream os(stem + ".trace.json"); os)
    collector.writeChromeTrace(os);
  if (std::ofstream os(stem + ".manifest.json"); os)
    trace::writeManifest(os, cellManifestData(res, vopts, "velev_grid"),
                         &collector);
}

GridCellResult skippedCell(const GridCell& cell) {
  GridCellResult res;
  res.cell = cell;
  res.skipped = true;
  res.report.outcome.verdict = Verdict::Skipped;
  res.report.outcome.reason = "cancelled before the cell started";
  return res;
}

// ---- checkpoint / resume ----------------------------------------------------

/// Inverse of reportCounters(): rebuild the typed stat sub-structs of a
/// VerifyReport from the canonical counter block, so a restored cell's
/// report answers the same questions a fresh one does. The two functions
/// round-trip exactly: derived counters (rewrite.rules_fired) are
/// recomputed from their restored terms, the sat.inprocess.* block's
/// presence restores `inprocessed`, and the bdd.* block is keyed off the
/// separately recorded engine.
void applyCounters(VerifyReport& rep,
                   const std::map<std::string, std::uint64_t>& c) {
  auto u64 = [&](const char* k) {
    auto it = c.find(k);
    return it == c.end() ? std::uint64_t{0} : it->second;
  };
  auto u32 = [&](const char* k) { return static_cast<unsigned>(u64(k)); };
  rep.simStats.cycles = u64("tlsim.cycles");
  rep.simStats.signalEvals = u64("tlsim.signal_evals");
  rep.cxStats.nodes = u64("eufm.nodes");
  rep.cxStats.memoryReads = u64("eufm.memory_reads");
  rep.cxStats.memoryWrites = u64("eufm.memory_writes");
  rep.cxStats.arenaBytes = u64("eufm.arena_bytes");
  rep.updatesRemoved = u32("rewrite.updates_removed");
  rewrite::RewriteStats& rw = rep.rewriteStats;
  rw.slicesChecked = u32("rewrite.slices_checked");
  rw.contextChecks = u32("rewrite.context_checks");
  rw.movesApplied = u32("rewrite.moves_applied");
  rw.mergesApplied = u32("rewrite.merges_applied");
  rw.forwardingMatches = u32("rewrite.forwarding_matches");
  rw.sliceNodesTotal = u64("rewrite.slice_nodes_total");
  rw.sliceNodesMax = u64("rewrite.slice_nodes_max");
  evc::TranslationStats& ev = rep.evcStats;
  ev.eijVars = u32("evc.eij_vars");
  ev.otherPrimaryVars = u32("evc.other_primary_vars");
  ev.pEquations = u32("evc.p_equations");
  ev.gEquations = u32("evc.g_equations");
  ev.gVars = u32("evc.g_vars");
  ev.memoryEquations = u32("evc.memory_equations");
  ev.freshTermVars = u32("evc.fresh_term_vars");
  ev.freshBoolVars = u32("evc.fresh_bool_vars");
  ev.transitivity.fillInEdges = u32("evc.transitivity_fill_in_edges");
  ev.transitivity.triangles = u32("evc.transitivity_triangles");
  ev.transitivity.clauses = u32("evc.transitivity_clauses");
  ev.cnfVars = u64("cnf.vars");
  ev.cnfClauses = u64("cnf.clauses");
  sat::Stats& sa = rep.satStats;
  sa.decisions = u64("sat.decisions");
  sa.propagations = u64("sat.propagations");
  sa.conflicts = u64("sat.conflicts");
  sa.learnts = u64("sat.learnts");
  sa.restarts = u64("sat.restarts");
  if (c.count("sat.inprocess.rounds") != 0) {
    rep.inprocessed = true;
    sat::InprocessStats& ip = rep.inprocessStats;
    ip.rounds = u64("sat.inprocess.rounds");
    ip.clausesBefore = u64("sat.inprocess.clauses_before");
    ip.clausesAfter = u64("sat.inprocess.clauses_after");
    ip.clausesRemoved = u64("sat.inprocess.clauses_removed");
    ip.clausesStrengthened = u64("sat.inprocess.clauses_strengthened");
    ip.litsRemoved = u64("sat.inprocess.lits_removed");
    ip.varsEliminated = u64("sat.inprocess.vars_eliminated");
    ip.varsSubstituted = u64("sat.inprocess.vars_substituted");
    ip.failedLiterals = u64("sat.inprocess.failed_literals");
    ip.reconstructionDepth = u64("sat.inprocess.reconstruction_depth");
  }
  if (rep.engine != Engine::Sat) {
    bdd::BddStats& bs = rep.bddStats;
    bs.nodesPeak = u64("bdd.nodes_peak");
    bs.cacheHits = u64("bdd.cache_hits");
    bs.cacheLookups = u64("bdd.cache_lookups");
    bs.reorderings = u64("bdd.reorderings");
    bs.gcRuns = u64("bdd.gc_runs");
  }
}

/// One completed cell as recorded in checkpoint.json: everything needed to
/// reconstruct its GridCellResult without re-verifying. Keyed by the
/// request's content-addressed cacheKeyHex(), never by grid index — a
/// resumed sweep may reorder, extend or truncate the request list and
/// still restore exactly the cells whose requests are unchanged.
struct CheckpointRecord {
  std::string key;
  std::string verdict;
  std::string reason;
  unsigned failedSlice = 0;
  bool fellBack = false;
  std::string firstVerdict;
  std::string engine;
  double wallSeconds = 0;
  StageSeconds seconds;
  std::uint64_t peakArenaBytes = 0;
  std::uint64_t rssHighWaterKb = 0;
  std::map<std::string, std::uint64_t> counters;
};

CheckpointRecord makeRecord(const std::string& key,
                            const GridCellResult& res) {
  CheckpointRecord r;
  r.key = key;
  r.verdict = verdictName(res.report.outcome.verdict);
  r.reason = res.report.outcome.reason;
  r.failedSlice = res.report.outcome.failedSlice;
  r.fellBack = res.fellBack;
  r.firstVerdict = verdictName(res.firstVerdict);
  r.engine = engineName(res.report.engine);
  r.wallSeconds = res.wallSeconds;
  r.seconds = res.report.outcome.seconds;
  r.peakArenaBytes = res.report.outcome.peakArenaBytes;
  r.rssHighWaterKb = res.report.outcome.rssHighWaterKb;
  for (const auto& [name, value] : reportCounters(res.report))
    r.counters.emplace(name, value);
  return r;
}

/// Rebuild a finished GridCellResult from its record (resume path).
GridCellResult restoredResult(const GridCell& cell,
                              const CheckpointRecord& r) {
  GridCellResult res;
  res.cell = cell;
  res.restored = true;
  res.wallSeconds = r.wallSeconds;
  res.memHighWaterKb = r.rssHighWaterKb;
  res.fellBack = r.fellBack;
  if (auto v = verdictFromName(r.firstVerdict)) res.firstVerdict = *v;
  if (auto v = verdictFromName(r.verdict)) res.report.outcome.verdict = *v;
  if (auto e = engineFromName(r.engine)) res.report.engine = *e;
  res.report.outcome.reason = r.reason;
  res.report.outcome.failedSlice = r.failedSlice;
  res.report.outcome.seconds = r.seconds;
  res.report.outcome.peakArenaBytes = r.peakArenaBytes;
  res.report.outcome.rssHighWaterKb = r.rssHighWaterKb;
  applyCounters(res.report, r.counters);
  return res;
}

/// The checkpoint file of one grid run: an append-only (by key) record set
/// rewritten wholesale — write to `<path>.tmp`, then rename over the
/// target, so a SIGKILL mid-write leaves the previous complete version in
/// place and never a torn file. All mutation is serialized on one mutex;
/// saves happen at cell granularity (seconds of work), so contention is
/// irrelevant next to durability.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string path) : path_(std::move(path)) {}

  /// Load an existing checkpoint (resume). Malformed JSON, a missing file
  /// or a version mismatch all mean "restore nothing" — resume is an
  /// optimization, never a correctness risk, so a bad file degrades to a
  /// full re-run rather than an error.
  std::size_t load() {
    std::ifstream is(path_);
    if (!is) return 0;
    std::stringstream ss;
    ss << is.rdbuf();
    const std::optional<JsonValue> v = parseJson(ss.str());
    if (!v || v->uintAt("version") != kGridCheckpointSchemaVersion) return 0;
    const JsonValue* cells = v->find("cells");
    if (cells == nullptr || !cells->isArray()) return 0;
    for (const JsonValue& c : cells->array) {
      CheckpointRecord r;
      r.key = c.stringAt("key");
      r.verdict = c.stringAt("verdict");
      if (r.key.empty() || !verdictFromName(r.verdict)) continue;
      r.reason = c.stringAt("reason");
      r.failedSlice = static_cast<unsigned>(c.uintAt("failed_slice"));
      if (const JsonValue* fb = c.find("fell_back"))
        r.fellBack = fb->isBool() && fb->boolean;
      r.firstVerdict = c.stringAt("first_verdict");
      if (r.firstVerdict.empty())
        r.firstVerdict = verdictName(Verdict::Inconclusive);
      r.engine = c.stringAt("engine");
      r.wallSeconds = c.numberAt("wall_seconds");
      if (const JsonValue* s = c.find("seconds")) {
        r.seconds.sim = s->numberAt("sim");
        r.seconds.rewrite = s->numberAt("rewrite");
        r.seconds.translate = s->numberAt("translate");
        r.seconds.sat = s->numberAt("sat");
        r.seconds.bdd = s->numberAt("bdd");
      }
      r.peakArenaBytes = c.uintAt("peak_arena_bytes");
      r.rssHighWaterKb = c.uintAt("rss_high_water_kb");
      if (const JsonValue* k = c.find("counters"); k && k->isObject())
        for (const auto& [name, val] : k->object)
          if (val.isNumber() && val.number >= 0)
            r.counters[name] = static_cast<std::uint64_t>(val.number);
      add(std::move(r), /*persist=*/false);
    }
    return records_.size();
  }

  const CheckpointRecord* findRecord(const std::string& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &records_[it->second];
  }

  /// Record one finished cell and (by default) rewrite the file. Records
  /// loaded at resume time are kept, so a checkpoint accumulates across
  /// partial sweeps over overlapping request sets.
  void add(CheckpointRecord rec, bool persist = true) {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = index_.find(rec.key);
    if (it != index_.end()) {
      records_[it->second] = std::move(rec);
    } else {
      index_.emplace(rec.key, records_.size());
      records_.push_back(std::move(rec));
    }
    if (persist) writeLocked();
  }

 private:
  void writeLocked() {
    TRACE_SPAN("grid.checkpoint.save");
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream os(tmp);
      if (!os) return;
      JsonWriter w(os);
      w.beginObject();
      w.kv("version", kGridCheckpointSchemaVersion);
      w.kv("tool", "velev_grid");
      w.key("cells");
      w.beginArray();
      for (const CheckpointRecord& r : records_) {
        w.beginObject();
        w.kv("key", r.key);
        w.kv("verdict", r.verdict);
        if (!r.reason.empty()) w.kv("reason", r.reason);
        w.kv("failed_slice", r.failedSlice);
        w.kv("fell_back", r.fellBack);
        if (r.fellBack) w.kv("first_verdict", r.firstVerdict);
        w.kv("engine", r.engine);
        w.kv("wall_seconds", r.wallSeconds);
        w.key("seconds");
        w.beginObject();
        w.kv("sim", r.seconds.sim);
        w.kv("rewrite", r.seconds.rewrite);
        w.kv("translate", r.seconds.translate);
        w.kv("sat", r.seconds.sat);
        w.kv("bdd", r.seconds.bdd);
        w.endObject();
        w.kv("peak_arena_bytes", r.peakArenaBytes);
        w.kv("rss_high_water_kb", r.rssHighWaterKb);
        w.key("counters");
        w.beginObject();
        for (const auto& [name, value] : r.counters) w.kv(name, value);
        w.endObject();
        w.endObject();
      }
      w.endArray();
      w.endObject();
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path_, ec);
    trace::counterAdd("grid.checkpoint.saves", 1);
  }

  std::string path_;
  std::mutex mutex_;
  std::vector<CheckpointRecord> records_;
  std::map<std::string, std::size_t> index_;
};

GridCellResult runCell(const GridJob& job, const GridRunOptions& opts,
                       std::size_t index,
                       sat::IncrementalSession* session = nullptr) {
  GridCellResult res;
  res.cell = job.cell;
  Timer t;
  // One Collector per cell, mirroring the one-Context-per-cell rule: the
  // attachment is thread-local, so concurrent cells never share a sink.
  trace::Collector collector;
  const bool traced = !opts.traceDir.empty();
  {
    trace::Use tracing(traced ? &collector : nullptr);
    // verifyCell() builds a fresh eufm::Context and arms a fresh
    // BudgetGovernor for this cell (the one-context-per-cell ownership
    // rule; see the header), so budgets are strictly per cell.
    const models::OoOConfig cfg{job.cell.robSize, job.cell.issueWidth};
    VerifyOptions vopts = job.vopts;
    vopts.satSession = session;
    // Intra-cell parallelism: semantically invisible (identical verdicts
    // and counters), so layering it on here never perturbs a checkpoint.
    if (opts.cellJobs > 1) vopts.jobs = opts.cellJobs;
    res.report = verifyCell(cfg, job.cell.bug, vopts);

    if (opts.fallback == FallbackPolicy::RetryWithRewriting &&
        res.report.outcome.budgetExceeded() &&
        job.vopts.strategy == Strategy::PositiveEqualityOnly) {
      res.fellBack = true;
      res.firstVerdict = res.report.outcome.verdict;
      VerifyOptions retry = job.vopts;
      retry.strategy = Strategy::RewritingPlusPositiveEquality;
      retry.satSession = nullptr;  // different strategy, fresh solver
      if (opts.cellJobs > 1) retry.jobs = opts.cellJobs;
      res.report = verifyCell(cfg, job.cell.bug, retry);
    }
  }

  res.wallSeconds = t.seconds();
  res.memHighWaterKb = rssHighWaterKb();
  if (traced) writeCellTrace(opts.traceDir, index, res, job.vopts, collector);
  return res;
}

/// Config-block value over a possibly heterogeneous grid: the shared name
/// when every job agrees, "mixed" otherwise.
template <class Get>
std::string sharedOrMixed(std::span<const GridJob> jobs, Get get) {
  if (jobs.empty()) return "none";
  const std::string first = get(jobs.front());
  for (const GridJob& j : jobs.subspan(1))
    if (get(j) != first) return "mixed";
  return first;
}

/// The whole-grid roll-up: per-stage seconds and counters summed over the
/// cells, verdict "correct" only if every non-skipped cell is.
void writeGridManifest(const std::string& dir, const GridRunOptions& opts,
                       std::span<const GridJob> jobs,
                       std::span<const GridCellResult> results,
                       const trace::Collector* gridCollector = nullptr) {
  trace::ManifestData m;
  m.tool = "velev_grid";
  m.config.emplace_back("cells", std::to_string(results.size()));
  m.config.emplace_back("jobs", std::to_string(opts.jobs));
  if (opts.cellJobs > 1)
    m.config.emplace_back("cell_jobs", std::to_string(opts.cellJobs));
  if (!opts.checkpointPath.empty()) {
    m.config.emplace_back("checkpoint", opts.checkpointPath);
    m.config.emplace_back("resume", opts.resume ? "true" : "false");
  }
  m.config.emplace_back("strategy", sharedOrMixed(jobs, [](const GridJob& j) {
                          return std::string(strategyName(j.vopts.strategy));
                        }));
  m.config.emplace_back("engine", sharedOrMixed(jobs, [](const GridJob& j) {
                          return std::string(engineName(j.vopts.engine));
                        }));
  m.config.emplace_back(
      "fallback", opts.fallback == FallbackPolicy::RetryWithRewriting
                      ? "retry-with-rewriting"
                      : "none");
  m.config.emplace_back("incremental", opts.incremental ? "true" : "false");
  m.config.emplace_back(
      "inprocess", sharedOrMixed(jobs, [](const GridJob& j) {
        return std::string(j.vopts.inprocess.enabled ? "true" : "false");
      }));
  if (!jobs.empty()) {
    // Budget block: the shared budget on homogeneous grids; the first
    // job's on mixed ones (the per-cell manifests carry the exact values).
    m.budgetWallSeconds = jobs.front().vopts.budget.wallSeconds;
    m.budgetMemoryBytes = jobs.front().vopts.budget.memoryBytes;
    m.budgetSatConflicts = jobs.front().vopts.budget.satConflicts;
  }

  StageSeconds total;
  std::map<std::string, std::uint64_t> counters;
  if (!opts.checkpointPath.empty()) {
    std::uint64_t restored = 0;
    for (const GridCellResult& r : results) restored += r.restored ? 1 : 0;
    counters["grid.checkpoint.restored"] = restored;
  }
  Verdict worst = Verdict::Correct;
  for (const GridCellResult& r : results) {
    const StageSeconds& s = r.report.outcome.seconds;
    total.sim += s.sim;
    total.rewrite += s.rewrite;
    total.translate += s.translate;
    total.sat += s.sat;
    total.bdd += s.bdd;
    m.peakArenaBytes =
        std::max(m.peakArenaBytes,
                 static_cast<std::uint64_t>(r.report.outcome.peakArenaBytes));
    m.rssHighWaterKb =
        std::max(m.rssHighWaterKb,
                 static_cast<std::uint64_t>(r.report.outcome.rssHighWaterKb));
    for (const auto& [name, value] : reportCounters(r.report))
      counters[name] += value;
    if (r.report.outcome.verdict != Verdict::Correct &&
        worst == Verdict::Correct)
      worst = r.report.outcome.verdict;
  }
  m.verdict = verdictName(worst);
  m.stageSeconds = {{"sim", total.sim},
                    {"rewrite", total.rewrite},
                    {"translate", total.translate},
                    {"sat", total.sat},
                    {"bdd", total.bdd}};
  m.counters.assign(counters.begin(), counters.end());
  if (std::ofstream os(dir + "/manifest.json"); os)
    trace::writeManifest(os, m, gridCollector);
}

std::vector<GridCellResult> runGridImpl(std::span<const GridJob> jobs,
                                        const GridRunOptions& opts,
                                        CancelToken* cancel,
                                        std::span<const std::string> keys = {}) {
  std::vector<GridCellResult> results(jobs.size());
  const bool traced = !opts.traceDir.empty();
  if (traced) std::filesystem::create_directories(opts.traceDir);

  // Grid-level collector: checkpoint I/O happens on the scheduler thread
  // (or a finishing worker) outside any cell's collector scope, so the
  // grid.checkpoint.* spans and counters get their own sink, folded into
  // the merged manifest below.
  trace::Collector gridCollector;

  // Checkpointing needs a stable per-cell identity, which only the
  // request-based overload supplies (keys parallel to jobs).
  std::unique_ptr<CheckpointStore> ckpt;
  // Restored records are COPIED out of the store: add() on a freshly
  // finished cell may reallocate the store's record vector while restored
  // cells are still waiting to be materialized.
  std::vector<std::optional<CheckpointRecord>> restoredRec(jobs.size());
  if (!opts.checkpointPath.empty() && keys.size() == jobs.size()) {
    ckpt = std::make_unique<CheckpointStore>(opts.checkpointPath);
    if (opts.resume) {
      trace::Use use(traced ? &gridCollector : nullptr);
      TRACE_SPAN("grid.checkpoint.load");
      ckpt->load();
      std::uint64_t restored = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (const CheckpointRecord* rec = ckpt->findRecord(keys[i])) {
          restoredRec[i] = *rec;
          ++restored;
        }
      }
      trace::counterSet("grid.checkpoint.restored", restored);
    }
  }

  // Persist every completed verdict — conclusive, budget-tripped or
  // mismatch alike; Skipped cells never enter the file, so a cancelled
  // sweep resumes exactly them. Restored cells are already on disk.
  auto persistCell = [&](std::size_t i) {
    if (ckpt == nullptr || results[i].restored || results[i].skipped) return;
    trace::Use use(traced ? &gridCollector : nullptr);
    ckpt->add(makeRecord(keys[i], results[i]));
  };

  if (opts.jobs <= 1 || opts.incremental) {
    // One shared incremental session for the whole (sequential) grid: the
    // session is single-threaded by design, so `incremental` overrides
    // `jobs`. Its inprocessing knobs come from the first job — a session
    // simplifies one clause database, not one per cell.
    sat::IncrementalSession session(
        {}, jobs.empty() ? sat::InprocessOptions{}
                         : jobs.front().vopts.inprocess);
    sat::IncrementalSession* shared = opts.incremental ? &session : nullptr;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (restoredRec[i].has_value()) {
        results[i] = restoredResult(jobs[i].cell, *restoredRec[i]);
        continue;
      }
      if (cancel != nullptr && cancel->cancelled()) {
        results[i] = skippedCell(jobs[i].cell);
        continue;
      }
      results[i] = runCell(jobs[i], opts, i, shared);
      persistCell(i);
    }
    if (traced)
      writeGridManifest(opts.traceDir, opts, jobs, results, &gridCollector);
    return results;
  }

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(opts.jobs, std::max<std::size_t>(1, jobs.size())));
  ThreadPool pool(workers);
  const CancelToken token = cancel != nullptr ? *cancel : CancelToken();
  std::vector<std::pair<std::size_t, std::future<void>>> done;
  done.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (restoredRec[i].has_value()) {
      results[i] = restoredResult(jobs[i].cell, *restoredRec[i]);
      continue;
    }
    done.emplace_back(i, pool.submit(token, [&, i] {
      results[i] = runCell(jobs[i], opts, i);
      persistCell(i);
    }));
  }
  for (auto& [i, f] : done) {
    try {
      f.get();
    } catch (const CancelledError&) {
      results[i] = skippedCell(jobs[i].cell);
    }
  }
  if (traced)
    writeGridManifest(opts.traceDir, opts, jobs, results, &gridCollector);
  return results;
}

}  // namespace

std::vector<GridCellResult> runGrid(std::span<const VerifyRequest> requests,
                                    const GridRunOptions& opts,
                                    CancelToken* cancel) {
  std::vector<GridJob> jobs;
  jobs.reserve(requests.size());
  for (const VerifyRequest& req : requests)
    jobs.push_back(GridJob{GridCell{req.robSize, req.issueWidth, req.bug},
                           req.options()});
  // Checkpoint identity: the content-addressed cache key (request fields +
  // gitDescribe), never the grid index — see GridRunOptions::checkpointPath.
  std::vector<std::string> keys;
  if (!opts.checkpointPath.empty()) {
    keys.reserve(requests.size());
    for (const VerifyRequest& req : requests)
      keys.push_back(req.cacheKeyHex());
  }
  return runGridImpl(jobs, opts, cancel, keys);
}

trace::ManifestData cellManifestData(const GridCellResult& res,
                                     const VerifyOptions& opts,
                                     std::string_view tool) {
  trace::ManifestData m;
  m.tool = std::string(tool);
  m.config.emplace_back("rob_size", std::to_string(res.cell.robSize));
  m.config.emplace_back("issue_width", std::to_string(res.cell.issueWidth));
  m.config.emplace_back("strategy", strategyName(opts.strategy));
  m.config.emplace_back("engine", engineName(opts.engine));
  m.config.emplace_back("uf_scheme", evc::ufSchemeName(opts.ufScheme));
  if (res.cell.bug.kind != models::BugKind::None) {
    m.config.emplace_back(
        "bug_kind",
        std::to_string(static_cast<unsigned>(res.cell.bug.kind)));
    m.config.emplace_back("bug_index", std::to_string(res.cell.bug.index));
  }
  if (res.fellBack)
    m.config.emplace_back("first_verdict", verdictName(res.firstVerdict));
  m.budgetWallSeconds = opts.budget.wallSeconds;
  m.budgetMemoryBytes = opts.budget.memoryBytes;
  m.budgetSatConflicts = opts.budget.satConflicts;
  m.verdict = verdictName(res.report.outcome.verdict);
  m.reason = res.report.outcome.reason;
  const StageSeconds& s = res.report.outcome.seconds;
  m.stageSeconds = {{"sim", s.sim},
                    {"rewrite", s.rewrite},
                    {"translate", s.translate},
                    {"sat", s.sat},
                    {"bdd", s.bdd}};
  m.peakArenaBytes = res.report.outcome.peakArenaBytes;
  m.rssHighWaterKb = res.report.outcome.rssHighWaterKb;
  m.counters = reportCounters(res.report);
  return m;
}

trace::ManifestData cellManifestData(const GridCellResult& res,
                                     const VerifyRequest& req,
                                     std::string_view tool) {
  return cellManifestData(res, req.options(), tool);
}

std::vector<GridCell> makeGrid(std::span<const unsigned> sizes,
                               std::span<const unsigned> widths) {
  std::vector<GridCell> cells;
  cells.reserve(sizes.size() * widths.size());
  for (unsigned n : sizes)
    for (unsigned k : widths)
      if (k >= 1 && k <= n) cells.push_back(GridCell{n, k, {}});
  return cells;
}

std::vector<VerifyRequest> makeGridRequests(std::span<const unsigned> sizes,
                                            std::span<const unsigned> widths,
                                            const VerifyRequest& base) {
  std::vector<VerifyRequest> reqs;
  reqs.reserve(sizes.size() * widths.size());
  for (unsigned n : sizes)
    for (unsigned k : widths)
      if (k >= 1 && k <= n) {
        VerifyRequest r = base;
        r.robSize = n;
        r.issueWidth = k;
        reqs.push_back(r);
      }
  return reqs;
}

}  // namespace velev::core
