#include "core/grid_runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>

#include "support/mem.hpp"
#include "support/timer.hpp"

namespace velev::core {

namespace {

/// One scheduled cell: the configuration plus its fully expanded options.
/// Both public runGrid() overloads lower to this, so the request-based and
/// the deprecated VerifyOptions-based paths behave identically.
struct GridJob {
  GridCell cell;
  VerifyOptions vopts;
};

/// The non-deprecated equivalent of the classic verify(cfg, bug, opts):
/// fresh context + models, then verifyWith (which arms the governor).
VerifyReport verifyCell(const models::OoOConfig& cfg,
                        const models::BugSpec& bug,
                        const VerifyOptions& opts) {
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, cfg, bug);
  auto spec = models::buildSpec(cx, isa);
  return verifyWith(cx, isa, *impl, *spec, opts);
}

/// File stem shared by the two per-cell output files.
std::string cellFileStem(const GridCell& cell, std::size_t index) {
  return "cell_" + std::to_string(index) + "_" +
         std::to_string(cell.robSize) + "x" +
         std::to_string(cell.issueWidth);
}

/// Write the two per-cell trace artifacts. Each worker writes only its own
/// cell's files (distinct names), so no cross-thread coordination needed.
void writeCellTrace(const std::string& dir, std::size_t index,
                    const GridCellResult& res, const VerifyOptions& vopts,
                    const trace::Collector& collector) {
  const std::string stem = dir + "/" + cellFileStem(res.cell, index);
  if (std::ofstream os(stem + ".trace.json"); os)
    collector.writeChromeTrace(os);
  if (std::ofstream os(stem + ".manifest.json"); os)
    trace::writeManifest(os, cellManifestData(res, vopts, "velev_grid"),
                         &collector);
}

GridCellResult skippedCell(const GridCell& cell) {
  GridCellResult res;
  res.cell = cell;
  res.skipped = true;
  res.report.outcome.verdict = Verdict::Skipped;
  res.report.outcome.reason = "cancelled before the cell started";
  return res;
}

GridCellResult runCell(const GridJob& job, const GridRunOptions& opts,
                       std::size_t index,
                       sat::IncrementalSession* session = nullptr) {
  GridCellResult res;
  res.cell = job.cell;
  Timer t;
  // One Collector per cell, mirroring the one-Context-per-cell rule: the
  // attachment is thread-local, so concurrent cells never share a sink.
  trace::Collector collector;
  const bool traced = !opts.traceDir.empty();
  {
    trace::Use tracing(traced ? &collector : nullptr);
    // verifyCell() builds a fresh eufm::Context and arms a fresh
    // BudgetGovernor for this cell (the one-context-per-cell ownership
    // rule; see the header), so budgets are strictly per cell.
    const models::OoOConfig cfg{job.cell.robSize, job.cell.issueWidth};
    VerifyOptions vopts = job.vopts;
    vopts.satSession = session;
    res.report = verifyCell(cfg, job.cell.bug, vopts);

    if (opts.fallback == FallbackPolicy::RetryWithRewriting &&
        res.report.outcome.budgetExceeded() &&
        job.vopts.strategy == Strategy::PositiveEqualityOnly) {
      res.fellBack = true;
      res.firstVerdict = res.report.outcome.verdict;
      VerifyOptions retry = job.vopts;
      retry.strategy = Strategy::RewritingPlusPositiveEquality;
      retry.satSession = nullptr;  // different strategy, fresh solver
      res.report = verifyCell(cfg, job.cell.bug, retry);
    }
  }

  res.wallSeconds = t.seconds();
  res.memHighWaterKb = rssHighWaterKb();
  if (traced) writeCellTrace(opts.traceDir, index, res, job.vopts, collector);
  return res;
}

/// Config-block value over a possibly heterogeneous grid: the shared name
/// when every job agrees, "mixed" otherwise.
template <class Get>
std::string sharedOrMixed(std::span<const GridJob> jobs, Get get) {
  if (jobs.empty()) return "none";
  const std::string first = get(jobs.front());
  for (const GridJob& j : jobs.subspan(1))
    if (get(j) != first) return "mixed";
  return first;
}

/// The whole-grid roll-up: per-stage seconds and counters summed over the
/// cells, verdict "correct" only if every non-skipped cell is.
void writeGridManifest(const std::string& dir, const GridRunOptions& opts,
                       std::span<const GridJob> jobs,
                       std::span<const GridCellResult> results) {
  trace::ManifestData m;
  m.tool = "velev_grid";
  m.config.emplace_back("cells", std::to_string(results.size()));
  m.config.emplace_back("jobs", std::to_string(opts.jobs));
  m.config.emplace_back("strategy", sharedOrMixed(jobs, [](const GridJob& j) {
                          return std::string(strategyName(j.vopts.strategy));
                        }));
  m.config.emplace_back("engine", sharedOrMixed(jobs, [](const GridJob& j) {
                          return std::string(engineName(j.vopts.engine));
                        }));
  m.config.emplace_back(
      "fallback", opts.fallback == FallbackPolicy::RetryWithRewriting
                      ? "retry-with-rewriting"
                      : "none");
  m.config.emplace_back("incremental", opts.incremental ? "true" : "false");
  m.config.emplace_back(
      "inprocess", sharedOrMixed(jobs, [](const GridJob& j) {
        return std::string(j.vopts.inprocess.enabled ? "true" : "false");
      }));
  if (!jobs.empty()) {
    // Budget block: the shared budget on homogeneous grids; the first
    // job's on mixed ones (the per-cell manifests carry the exact values).
    m.budgetWallSeconds = jobs.front().vopts.budget.wallSeconds;
    m.budgetMemoryBytes = jobs.front().vopts.budget.memoryBytes;
    m.budgetSatConflicts = jobs.front().vopts.budget.satConflicts;
  }

  StageSeconds total;
  std::map<std::string, std::uint64_t> counters;
  Verdict worst = Verdict::Correct;
  for (const GridCellResult& r : results) {
    const StageSeconds& s = r.report.outcome.seconds;
    total.sim += s.sim;
    total.rewrite += s.rewrite;
    total.translate += s.translate;
    total.sat += s.sat;
    total.bdd += s.bdd;
    m.peakArenaBytes =
        std::max(m.peakArenaBytes,
                 static_cast<std::uint64_t>(r.report.outcome.peakArenaBytes));
    m.rssHighWaterKb =
        std::max(m.rssHighWaterKb,
                 static_cast<std::uint64_t>(r.report.outcome.rssHighWaterKb));
    for (const auto& [name, value] : reportCounters(r.report))
      counters[name] += value;
    if (r.report.outcome.verdict != Verdict::Correct &&
        worst == Verdict::Correct)
      worst = r.report.outcome.verdict;
  }
  m.verdict = verdictName(worst);
  m.stageSeconds = {{"sim", total.sim},
                    {"rewrite", total.rewrite},
                    {"translate", total.translate},
                    {"sat", total.sat},
                    {"bdd", total.bdd}};
  m.counters.assign(counters.begin(), counters.end());
  if (std::ofstream os(dir + "/manifest.json"); os)
    trace::writeManifest(os, m, nullptr);
}

std::vector<GridCellResult> runGridImpl(std::span<const GridJob> jobs,
                                        const GridRunOptions& opts,
                                        CancelToken* cancel) {
  std::vector<GridCellResult> results(jobs.size());
  if (!opts.traceDir.empty())
    std::filesystem::create_directories(opts.traceDir);

  if (opts.jobs <= 1 || opts.incremental) {
    // One shared incremental session for the whole (sequential) grid: the
    // session is single-threaded by design, so `incremental` overrides
    // `jobs`. Its inprocessing knobs come from the first job — a session
    // simplifies one clause database, not one per cell.
    sat::IncrementalSession session(
        {}, jobs.empty() ? sat::InprocessOptions{}
                         : jobs.front().vopts.inprocess);
    sat::IncrementalSession* shared = opts.incremental ? &session : nullptr;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        results[i] = skippedCell(jobs[i].cell);
        continue;
      }
      results[i] = runCell(jobs[i], opts, i, shared);
    }
    if (!opts.traceDir.empty())
      writeGridManifest(opts.traceDir, opts, jobs, results);
    return results;
  }

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(opts.jobs, std::max<std::size_t>(1, jobs.size())));
  ThreadPool pool(workers);
  const CancelToken token = cancel != nullptr ? *cancel : CancelToken();
  std::vector<std::future<void>> done;
  done.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    done.push_back(pool.submit(token, [&results, &jobs, &opts, i] {
      results[i] = runCell(jobs[i], opts, i);
    }));
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    try {
      done[i].get();
    } catch (const CancelledError&) {
      results[i] = skippedCell(jobs[i].cell);
    }
  }
  if (!opts.traceDir.empty())
    writeGridManifest(opts.traceDir, opts, jobs, results);
  return results;
}

}  // namespace

std::vector<GridCellResult> runGrid(std::span<const VerifyRequest> requests,
                                    const GridRunOptions& opts,
                                    CancelToken* cancel) {
  std::vector<GridJob> jobs;
  jobs.reserve(requests.size());
  for (const VerifyRequest& req : requests)
    jobs.push_back(GridJob{GridCell{req.robSize, req.issueWidth, req.bug},
                           req.options()});
  return runGridImpl(jobs, opts, cancel);
}

std::vector<GridCellResult> runGrid(std::span<const GridCell> cells,
                                    const GridOptions& opts,
                                    CancelToken* cancel) {
  std::vector<GridJob> jobs;
  jobs.reserve(cells.size());
  for (const GridCell& cell : cells) jobs.push_back(GridJob{cell, opts.verify});
  GridRunOptions ropts;
  ropts.jobs = opts.jobs;
  ropts.fallback = opts.fallback;
  ropts.traceDir = opts.traceDir;
  ropts.incremental = opts.incremental;
  return runGridImpl(jobs, ropts, cancel);
}

trace::ManifestData cellManifestData(const GridCellResult& res,
                                     const VerifyOptions& opts,
                                     std::string_view tool) {
  trace::ManifestData m;
  m.tool = std::string(tool);
  m.config.emplace_back("rob_size", std::to_string(res.cell.robSize));
  m.config.emplace_back("issue_width", std::to_string(res.cell.issueWidth));
  m.config.emplace_back("strategy", strategyName(opts.strategy));
  m.config.emplace_back("engine", engineName(opts.engine));
  m.config.emplace_back("uf_scheme", evc::ufSchemeName(opts.ufScheme));
  if (res.cell.bug.kind != models::BugKind::None) {
    m.config.emplace_back(
        "bug_kind",
        std::to_string(static_cast<unsigned>(res.cell.bug.kind)));
    m.config.emplace_back("bug_index", std::to_string(res.cell.bug.index));
  }
  if (res.fellBack)
    m.config.emplace_back("first_verdict", verdictName(res.firstVerdict));
  m.budgetWallSeconds = opts.budget.wallSeconds;
  m.budgetMemoryBytes = opts.budget.memoryBytes;
  m.budgetSatConflicts = opts.budget.satConflicts;
  m.verdict = verdictName(res.report.outcome.verdict);
  m.reason = res.report.outcome.reason;
  const StageSeconds& s = res.report.outcome.seconds;
  m.stageSeconds = {{"sim", s.sim},
                    {"rewrite", s.rewrite},
                    {"translate", s.translate},
                    {"sat", s.sat},
                    {"bdd", s.bdd}};
  m.peakArenaBytes = res.report.outcome.peakArenaBytes;
  m.rssHighWaterKb = res.report.outcome.rssHighWaterKb;
  m.counters = reportCounters(res.report);
  return m;
}

trace::ManifestData cellManifestData(const GridCellResult& res,
                                     const VerifyRequest& req,
                                     std::string_view tool) {
  return cellManifestData(res, req.options(), tool);
}

std::vector<GridCell> makeGrid(std::span<const unsigned> sizes,
                               std::span<const unsigned> widths) {
  std::vector<GridCell> cells;
  cells.reserve(sizes.size() * widths.size());
  for (unsigned n : sizes)
    for (unsigned k : widths)
      if (k >= 1 && k <= n) cells.push_back(GridCell{n, k, {}});
  return cells;
}

std::vector<VerifyRequest> makeGridRequests(std::span<const unsigned> sizes,
                                            std::span<const unsigned> widths,
                                            const VerifyRequest& base) {
  std::vector<VerifyRequest> reqs;
  reqs.reserve(sizes.size() * widths.size());
  for (unsigned n : sizes)
    for (unsigned k : widths)
      if (k >= 1 && k <= n) {
        VerifyRequest r = base;
        r.robSize = n;
        r.issueWidth = k;
        reqs.push_back(r);
      }
  return reqs;
}

}  // namespace velev::core
