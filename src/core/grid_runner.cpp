#include "core/grid_runner.hpp"

#include <algorithm>
#include <future>

#include "support/mem.hpp"
#include "support/timer.hpp"

namespace velev::core {

namespace {

GridCellResult runCell(const GridCell& cell, const VerifyOptions& opts) {
  GridCellResult res;
  res.cell = cell;
  Timer t;
  // verify() builds a fresh eufm::Context for this cell (the
  // one-context-per-cell ownership rule; see the header).
  res.report =
      verify(models::OoOConfig{cell.robSize, cell.issueWidth}, cell.bug, opts);
  res.wallSeconds = t.seconds();
  res.memHighWaterKb = rssHighWaterKb();
  return res;
}

}  // namespace

std::vector<GridCellResult> runGrid(std::span<const GridCell> cells,
                                    const GridOptions& opts,
                                    CancelToken* cancel) {
  std::vector<GridCellResult> results(cells.size());

  if (opts.jobs <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        results[i].cell = cells[i];
        results[i].skipped = true;
        continue;
      }
      results[i] = runCell(cells[i], opts.verify);
    }
    return results;
  }

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(opts.jobs, std::max<std::size_t>(1, cells.size())));
  ThreadPool pool(workers);
  const CancelToken token = cancel != nullptr ? *cancel : CancelToken();
  std::vector<std::future<void>> done;
  done.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    done.push_back(pool.submit(token, [&results, &cells, &opts, i] {
      results[i] = runCell(cells[i], opts.verify);
    }));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    try {
      done[i].get();
    } catch (const CancelledError&) {
      results[i].cell = cells[i];
      results[i].skipped = true;
    }
  }
  return results;
}

std::vector<GridCell> makeGrid(std::span<const unsigned> sizes,
                               std::span<const unsigned> widths) {
  std::vector<GridCell> cells;
  cells.reserve(sizes.size() * widths.size());
  for (unsigned n : sizes)
    for (unsigned k : widths)
      if (k >= 1 && k <= n) cells.push_back(GridCell{n, k, {}});
  return cells;
}

}  // namespace velev::core
