#include "core/grid_runner.hpp"

#include <algorithm>
#include <future>

#include "support/mem.hpp"
#include "support/timer.hpp"

namespace velev::core {

namespace {

GridCellResult skippedCell(const GridCell& cell) {
  GridCellResult res;
  res.cell = cell;
  res.skipped = true;
  res.report.outcome.verdict = Verdict::Skipped;
  res.report.outcome.reason = "cancelled before the cell started";
  return res;
}

GridCellResult runCell(const GridCell& cell, const GridOptions& opts) {
  GridCellResult res;
  res.cell = cell;
  Timer t;
  // verify() builds a fresh eufm::Context and arms a fresh BudgetGovernor
  // for this cell (the one-context-per-cell ownership rule; see the
  // header), so budgets are strictly per cell.
  const models::OoOConfig cfg{cell.robSize, cell.issueWidth};
  res.report = verify(cfg, cell.bug, opts.verify);

  if (opts.fallback == FallbackPolicy::RetryWithRewriting &&
      res.report.outcome.budgetExceeded() &&
      opts.verify.strategy == Strategy::PositiveEqualityOnly) {
    res.fellBack = true;
    res.firstVerdict = res.report.outcome.verdict;
    VerifyOptions retry = opts.verify;
    retry.strategy = Strategy::RewritingPlusPositiveEquality;
    res.report = verify(cfg, cell.bug, retry);
  }

  res.wallSeconds = t.seconds();
  res.memHighWaterKb = rssHighWaterKb();
  return res;
}

}  // namespace

std::vector<GridCellResult> runGrid(std::span<const GridCell> cells,
                                    const GridOptions& opts,
                                    CancelToken* cancel) {
  std::vector<GridCellResult> results(cells.size());

  if (opts.jobs <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        results[i] = skippedCell(cells[i]);
        continue;
      }
      results[i] = runCell(cells[i], opts);
    }
    return results;
  }

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(opts.jobs, std::max<std::size_t>(1, cells.size())));
  ThreadPool pool(workers);
  const CancelToken token = cancel != nullptr ? *cancel : CancelToken();
  std::vector<std::future<void>> done;
  done.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    done.push_back(pool.submit(token, [&results, &cells, &opts, i] {
      results[i] = runCell(cells[i], opts);
    }));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    try {
      done[i].get();
    } catch (const CancelledError&) {
      results[i] = skippedCell(cells[i]);
    }
  }
  return results;
}

std::vector<GridCell> makeGrid(std::span<const unsigned> sizes,
                               std::span<const unsigned> widths) {
  std::vector<GridCell> cells;
  cells.reserve(sizes.size() * widths.size());
  for (unsigned n : sizes)
    for (unsigned k : widths)
      if (k >= 1 && k <= n) cells.push_back(GridCell{n, k, {}});
  return cells;
}

}  // namespace velev::core
