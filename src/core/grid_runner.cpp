#include "core/grid_runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>

#include "support/mem.hpp"
#include "support/timer.hpp"

namespace velev::core {

namespace {

/// File stem shared by the two per-cell output files.
std::string cellFileStem(const GridCell& cell, std::size_t index) {
  return "cell_" + std::to_string(index) + "_" +
         std::to_string(cell.robSize) + "x" +
         std::to_string(cell.issueWidth);
}

/// Write the two per-cell trace artifacts. Each worker writes only its own
/// cell's files (distinct names), so no cross-thread coordination needed.
void writeCellTrace(const std::string& dir, std::size_t index,
                    const GridCellResult& res, const VerifyOptions& vopts,
                    const trace::Collector& collector) {
  const std::string stem = dir + "/" + cellFileStem(res.cell, index);
  if (std::ofstream os(stem + ".trace.json"); os)
    collector.writeChromeTrace(os);
  if (std::ofstream os(stem + ".manifest.json"); os)
    trace::writeManifest(os, cellManifestData(res, vopts, "velev_grid"),
                         &collector);
}

GridCellResult skippedCell(const GridCell& cell) {
  GridCellResult res;
  res.cell = cell;
  res.skipped = true;
  res.report.outcome.verdict = Verdict::Skipped;
  res.report.outcome.reason = "cancelled before the cell started";
  return res;
}

GridCellResult runCell(const GridCell& cell, const GridOptions& opts,
                       std::size_t index,
                       sat::IncrementalSession* session = nullptr) {
  GridCellResult res;
  res.cell = cell;
  Timer t;
  // One Collector per cell, mirroring the one-Context-per-cell rule: the
  // attachment is thread-local, so concurrent cells never share a sink.
  trace::Collector collector;
  const bool traced = !opts.traceDir.empty();
  {
    trace::Use tracing(traced ? &collector : nullptr);
    // verify() builds a fresh eufm::Context and arms a fresh BudgetGovernor
    // for this cell (the one-context-per-cell ownership rule; see the
    // header), so budgets are strictly per cell.
    const models::OoOConfig cfg{cell.robSize, cell.issueWidth};
    VerifyOptions vopts = opts.verify;
    vopts.satSession = session;
    res.report = verify(cfg, cell.bug, vopts);

    if (opts.fallback == FallbackPolicy::RetryWithRewriting &&
        res.report.outcome.budgetExceeded() &&
        opts.verify.strategy == Strategy::PositiveEqualityOnly) {
      res.fellBack = true;
      res.firstVerdict = res.report.outcome.verdict;
      VerifyOptions retry = opts.verify;
      retry.strategy = Strategy::RewritingPlusPositiveEquality;
      retry.satSession = nullptr;  // different strategy, fresh solver
      res.report = verify(cfg, cell.bug, retry);
    }
  }

  res.wallSeconds = t.seconds();
  res.memHighWaterKb = rssHighWaterKb();
  if (traced) writeCellTrace(opts.traceDir, index, res, opts.verify, collector);
  return res;
}

/// The whole-grid roll-up: per-stage seconds and counters summed over the
/// cells, verdict "correct" only if every non-skipped cell is.
void writeGridManifest(const std::string& dir, const GridOptions& opts,
                       std::span<const GridCellResult> results) {
  trace::ManifestData m;
  m.tool = "velev_grid";
  m.config.emplace_back("cells", std::to_string(results.size()));
  m.config.emplace_back("jobs", std::to_string(opts.jobs));
  m.config.emplace_back("strategy", strategyName(opts.verify.strategy));
  m.config.emplace_back("engine", engineName(opts.verify.engine));
  m.config.emplace_back(
      "fallback", opts.fallback == FallbackPolicy::RetryWithRewriting
                      ? "retry-with-rewriting"
                      : "none");
  m.config.emplace_back("incremental", opts.incremental ? "true" : "false");
  m.config.emplace_back(
      "inprocess", opts.verify.inprocess.enabled ? "true" : "false");
  m.budgetWallSeconds = opts.verify.budget.wallSeconds;
  m.budgetMemoryBytes = opts.verify.budget.memoryBytes;
  m.budgetSatConflicts = opts.verify.budget.satConflicts;

  StageSeconds total;
  std::map<std::string, std::uint64_t> counters;
  Verdict worst = Verdict::Correct;
  for (const GridCellResult& r : results) {
    const StageSeconds& s = r.report.outcome.seconds;
    total.sim += s.sim;
    total.rewrite += s.rewrite;
    total.translate += s.translate;
    total.sat += s.sat;
    total.bdd += s.bdd;
    m.peakArenaBytes =
        std::max(m.peakArenaBytes,
                 static_cast<std::uint64_t>(r.report.outcome.peakArenaBytes));
    m.rssHighWaterKb =
        std::max(m.rssHighWaterKb,
                 static_cast<std::uint64_t>(r.report.outcome.rssHighWaterKb));
    for (const auto& [name, value] : reportCounters(r.report))
      counters[name] += value;
    if (r.report.outcome.verdict != Verdict::Correct &&
        worst == Verdict::Correct)
      worst = r.report.outcome.verdict;
  }
  m.verdict = verdictName(worst);
  m.stageSeconds = {{"sim", total.sim},
                    {"rewrite", total.rewrite},
                    {"translate", total.translate},
                    {"sat", total.sat},
                    {"bdd", total.bdd}};
  m.counters.assign(counters.begin(), counters.end());
  if (std::ofstream os(dir + "/manifest.json"); os)
    trace::writeManifest(os, m, nullptr);
}

}  // namespace

std::vector<GridCellResult> runGrid(std::span<const GridCell> cells,
                                    const GridOptions& opts,
                                    CancelToken* cancel) {
  std::vector<GridCellResult> results(cells.size());
  if (!opts.traceDir.empty())
    std::filesystem::create_directories(opts.traceDir);

  if (opts.jobs <= 1 || opts.incremental) {
    // One shared incremental session for the whole (sequential) grid: the
    // session is single-threaded by design, so `incremental` overrides
    // `jobs`.
    sat::IncrementalSession session({}, opts.verify.inprocess);
    sat::IncrementalSession* shared = opts.incremental ? &session : nullptr;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        results[i] = skippedCell(cells[i]);
        continue;
      }
      results[i] = runCell(cells[i], opts, i, shared);
    }
    if (!opts.traceDir.empty())
      writeGridManifest(opts.traceDir, opts, results);
    return results;
  }

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(opts.jobs, std::max<std::size_t>(1, cells.size())));
  ThreadPool pool(workers);
  const CancelToken token = cancel != nullptr ? *cancel : CancelToken();
  std::vector<std::future<void>> done;
  done.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    done.push_back(pool.submit(token, [&results, &cells, &opts, i] {
      results[i] = runCell(cells[i], opts, i);
    }));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    try {
      done[i].get();
    } catch (const CancelledError&) {
      results[i] = skippedCell(cells[i]);
    }
  }
  if (!opts.traceDir.empty()) writeGridManifest(opts.traceDir, opts, results);
  return results;
}

trace::ManifestData cellManifestData(const GridCellResult& res,
                                     const VerifyOptions& opts,
                                     std::string_view tool) {
  trace::ManifestData m;
  m.tool = std::string(tool);
  m.config.emplace_back("rob_size", std::to_string(res.cell.robSize));
  m.config.emplace_back("issue_width", std::to_string(res.cell.issueWidth));
  m.config.emplace_back("strategy", strategyName(opts.strategy));
  m.config.emplace_back("engine", engineName(opts.engine));
  m.config.emplace_back("uf_scheme",
                        opts.ufScheme == evc::UfScheme::NestedIte
                            ? "nested-ite"
                            : "ackermann");
  if (res.cell.bug.kind != models::BugKind::None) {
    m.config.emplace_back(
        "bug_kind",
        std::to_string(static_cast<unsigned>(res.cell.bug.kind)));
    m.config.emplace_back("bug_index", std::to_string(res.cell.bug.index));
  }
  if (res.fellBack)
    m.config.emplace_back("first_verdict", verdictName(res.firstVerdict));
  m.budgetWallSeconds = opts.budget.wallSeconds;
  m.budgetMemoryBytes = opts.budget.memoryBytes;
  m.budgetSatConflicts = opts.budget.satConflicts;
  m.verdict = verdictName(res.report.outcome.verdict);
  m.reason = res.report.outcome.reason;
  const StageSeconds& s = res.report.outcome.seconds;
  m.stageSeconds = {{"sim", s.sim},
                    {"rewrite", s.rewrite},
                    {"translate", s.translate},
                    {"sat", s.sat},
                    {"bdd", s.bdd}};
  m.peakArenaBytes = res.report.outcome.peakArenaBytes;
  m.rssHighWaterKb = res.report.outcome.rssHighWaterKb;
  m.counters = reportCounters(res.report);
  return m;
}

std::vector<GridCell> makeGrid(std::span<const unsigned> sizes,
                               std::span<const unsigned> widths) {
  std::vector<GridCell> cells;
  cells.reserve(sizes.size() * widths.size());
  for (unsigned n : sizes)
    for (unsigned k : widths)
      if (k >= 1 && k <= n) cells.push_back(GridCell{n, k, {}});
  return cells;
}

}  // namespace velev::core
