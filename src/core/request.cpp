#include "core/request.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "support/hash.hpp"
#include "support/trace.hpp"

namespace velev::core {

VerifyOptions VerifyRequest::options() const {
  VerifyOptions opts;
  opts.strategy = strategy;
  opts.engine = engine;
  opts.sim.coneOfInfluence = coneOfInfluence;
  opts.budget = budget();
  opts.skipSat = skipSat;
  opts.ufScheme = ufScheme;
  opts.inprocess.enabled = inprocess;
  return opts;
}

std::optional<std::string> VerifyRequest::validate() const {
  if (robSize < 1) return "rob_size must be >= 1";
  if (issueWidth < 1 || issueWidth > robSize)
    return "need 1 <= issue_width <= rob_size";
  if (bug.kind != models::BugKind::None) {
    const unsigned limit = models::bugIndexLimit(bug.kind, config());
    if (bug.index < 1 || bug.index > limit)
      return "bug_index out of range for " +
             std::string(models::bugKindName(bug.kind)) + " (1.." +
             std::to_string(limit) + ")";
  }
  return std::nullopt;
}

void VerifyRequest::writeJson(JsonWriter& w, bool includeId) const {
  w.beginObject();
  w.kv("version", kRequestSchemaVersion);
  if (includeId) w.kv("id", id);
  w.kv("rob_size", robSize);
  w.kv("issue_width", issueWidth);
  w.kv("bug_kind", models::bugKindName(bug.kind));
  w.kv("bug_index", bug.index);
  w.kv("strategy", strategyName(strategy));
  w.kv("engine", engineName(engine));
  w.kv("uf_scheme", evc::ufSchemeName(ufScheme));
  w.kv("skip_sat", skipSat);
  w.kv("cone_of_influence", coneOfInfluence);
  w.kv("inprocess", inprocess);
  w.kv("timeout_seconds", timeoutSeconds);
  w.kv("memory_budget_bytes", memoryBudgetBytes);
  w.kv("sat_conflict_budget", satConflictBudget);
  w.endObject();
}

std::string VerifyRequest::toJson(bool includeId) const {
  std::ostringstream os;
  JsonWriter w(os);
  writeJson(w, includeId);
  return os.str();
}

namespace {

/// Strict field cursor over one JSON object: every member must be consumed
/// by exactly one `take` call, or finish() reports it as unknown.
class FieldReader {
 public:
  explicit FieldReader(const JsonValue& v) : v_(v) {}

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  void fail(std::string msg) {
    if (error_.empty()) error_ = std::move(msg);
  }

  const JsonValue* take(std::string_view key) {
    consumed_.emplace_back(key);
    return v_.find(key);
  }

  void takeUint(std::string_view key, std::uint64_t* out) {
    const JsonValue* f = take(key);
    if (f == nullptr) return;
    if (!f->isNumber() || f->number < 0)
      return fail("field '" + std::string(key) +
                  "' must be a non-negative number");
    *out = static_cast<std::uint64_t>(f->number);
  }

  void takeInt(std::string_view key, std::int64_t* out) {
    const JsonValue* f = take(key);
    if (f == nullptr) return;
    if (!f->isNumber())
      return fail("field '" + std::string(key) + "' must be a number");
    *out = static_cast<std::int64_t>(f->number);
  }

  void takeDouble(std::string_view key, double* out) {
    const JsonValue* f = take(key);
    if (f == nullptr) return;
    if (!f->isNumber())
      return fail("field '" + std::string(key) + "' must be a number");
    *out = f->number;
  }

  void takeBool(std::string_view key, bool* out) {
    const JsonValue* f = take(key);
    if (f == nullptr) return;
    if (!f->isBool())
      return fail("field '" + std::string(key) + "' must be a boolean");
    *out = f->boolean;
  }

  void takeString(std::string_view key, std::string* out) {
    const JsonValue* f = take(key);
    if (f == nullptr) return;
    if (!f->isString())
      return fail("field '" + std::string(key) + "' must be a string");
    *out = f->string;
  }

  /// Enum field through a *FromName() inverse.
  template <class E, class FromName>
  void takeEnum(std::string_view key, E* out, FromName fromName) {
    const JsonValue* f = take(key);
    if (f == nullptr) return;
    if (!f->isString())
      return fail("field '" + std::string(key) + "' must be a string");
    const auto parsed = fromName(f->string);
    if (!parsed.has_value())
      return fail("unknown " + std::string(key) + ": '" + f->string + "'");
    *out = *parsed;
  }

  /// After all takes: any member not consumed is an unknown field.
  void finish() {
    if (!error_.empty()) return;
    for (const auto& [key, value] : v_.object) {
      (void)value;
      bool known = false;
      for (const std::string& c : consumed_)
        if (c == key) { known = true; break; }
      if (!known) return fail("unknown field '" + key + "'");
    }
  }

 private:
  const JsonValue& v_;
  std::vector<std::string> consumed_;
  std::string error_;
};

bool checkVersion(FieldReader& r, int expected, const char* what) {
  std::int64_t version = 0;
  const JsonValue* f = r.take("version");
  if (f == nullptr || !f->isNumber()) {
    r.fail(std::string(what) + " is missing the 'version' field");
    return false;
  }
  version = static_cast<std::int64_t>(f->number);
  if (version != expected) {
    r.fail("unsupported " + std::string(what) + " version " +
           std::to_string(version) + " (this build speaks version " +
           std::to_string(expected) + ")");
    return false;
  }
  return true;
}

std::optional<JsonValue> parseObject(std::string_view text,
                                     std::string* error) {
  std::string parseError;
  std::optional<JsonValue> v = parseJson(text, &parseError);
  if (!v.has_value()) {
    if (error != nullptr) *error = "malformed JSON: " + parseError;
    return std::nullopt;
  }
  if (!v->isObject()) {
    if (error != nullptr) *error = "expected a JSON object";
    return std::nullopt;
  }
  return v;
}

}  // namespace

std::optional<VerifyRequest> VerifyRequest::fromJson(const JsonValue& v,
                                                     std::string* error) {
  if (!v.isObject()) {
    if (error != nullptr) *error = "expected a JSON object";
    return std::nullopt;
  }
  FieldReader r(v);
  VerifyRequest req;
  if (checkVersion(r, kRequestSchemaVersion, "request")) {
    r.takeUint("id", &req.id);
    std::uint64_t robSize = req.robSize, issueWidth = req.issueWidth;
    r.takeUint("rob_size", &robSize);
    r.takeUint("issue_width", &issueWidth);
    req.robSize = static_cast<unsigned>(robSize);
    req.issueWidth = static_cast<unsigned>(issueWidth);
    r.takeEnum("bug_kind", &req.bug.kind, models::bugKindFromName);
    std::uint64_t bugIndex = req.bug.index;
    r.takeUint("bug_index", &bugIndex);
    req.bug.index = static_cast<unsigned>(bugIndex);
    r.takeEnum("strategy", &req.strategy, strategyFromName);
    r.takeEnum("engine", &req.engine, engineFromName);
    r.takeEnum("uf_scheme", &req.ufScheme, evc::ufSchemeFromName);
    r.takeBool("skip_sat", &req.skipSat);
    r.takeBool("cone_of_influence", &req.coneOfInfluence);
    r.takeBool("inprocess", &req.inprocess);
    r.takeDouble("timeout_seconds", &req.timeoutSeconds);
    r.takeUint("memory_budget_bytes", &req.memoryBudgetBytes);
    r.takeInt("sat_conflict_budget", &req.satConflictBudget);
    r.finish();
  }
  if (r.ok()) {
    if (std::optional<std::string> invalid = req.validate();
        invalid.has_value()) {
      if (error != nullptr) *error = *invalid;
      return std::nullopt;
    }
    return req;
  }
  if (error != nullptr) *error = r.error();
  return std::nullopt;
}

std::optional<VerifyRequest> VerifyRequest::parse(std::string_view text,
                                                  std::string* error) {
  const std::optional<JsonValue> v = parseObject(text, error);
  if (!v.has_value()) return std::nullopt;
  return fromJson(*v, error);
}

std::uint64_t VerifyRequest::cacheKey() const {
  // Hash the canonical (id-free) JSON together with the code version: a
  // rebuilt binary must never serve a stale cached verdict.
  std::uint64_t h = 0x76656c65765f7221ULL;  // "velev_r!"
  for (const char c : toJson(/*includeId=*/false))
    h = hashCombine(h, static_cast<unsigned char>(c));
  for (const char* p = trace::gitDescribe(); *p != '\0'; ++p)
    h = hashCombine(h, static_cast<unsigned char>(*p));
  return h;
}

std::string VerifyRequest::cacheKeyHex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, cacheKey());
  return buf;
}

VerifyResponse VerifyResponse::fromReport(const VerifyRequest& req,
                                          const VerifyReport& rep,
                                          double wallSeconds) {
  VerifyResponse resp;
  resp.id = req.id;
  resp.cacheKey = req.cacheKeyHex();
  resp.verdict = rep.outcome.verdict;
  resp.reason = rep.outcome.reason;
  resp.failedSlice = rep.outcome.failedSlice;
  resp.exitCode = verdictExitCode(rep.outcome.verdict);
  resp.wallSeconds = wallSeconds;
  resp.seconds = rep.outcome.seconds;
  resp.peakArenaBytes = rep.outcome.peakArenaBytes;
  resp.rssHighWaterKb = rep.outcome.rssHighWaterKb;
  resp.counters = reportCounters(rep);
  return resp;
}

VerifyResponse VerifyResponse::makeError(std::uint64_t id,
                                         std::string message) {
  VerifyResponse resp;
  resp.id = id;
  resp.error = std::move(message);
  resp.exitCode = 2;
  return resp;
}

void VerifyResponse::writeJson(JsonWriter& w) const {
  w.beginObject();
  w.kv("version", kResponseSchemaVersion);
  w.kv("id", id);
  if (!error.empty()) {
    w.kv("error", error);
    w.kv("exit_code", exitCode);
    w.endObject();
    return;
  }
  w.kv("cached", cached);
  w.kv("cache_key", cacheKey);
  w.kv("verdict", verdictName(verdict));
  if (!reason.empty()) w.kv("reason", reason);
  if (failedSlice != 0) w.kv("failed_slice", failedSlice);
  w.kv("exit_code", exitCode);
  w.kv("wall_seconds", wallSeconds);
  w.key("stage_seconds");
  w.beginObject();
  w.kv("sim", seconds.sim);
  w.kv("rewrite", seconds.rewrite);
  w.kv("translate", seconds.translate);
  w.kv("sat", seconds.sat);
  w.kv("bdd", seconds.bdd);
  w.endObject();
  w.kv("peak_arena_bytes", peakArenaBytes);
  w.kv("rss_high_water_kb", rssHighWaterKb);
  w.key("counters");
  w.beginObject();
  for (const auto& [name, value] : counters) w.kv(name, value);
  w.endObject();
  w.endObject();
}

std::string VerifyResponse::toJson() const {
  std::ostringstream os;
  JsonWriter w(os);
  writeJson(w);
  return os.str();
}

std::optional<VerifyResponse> VerifyResponse::fromJson(const JsonValue& v,
                                                       std::string* error) {
  if (!v.isObject()) {
    if (error != nullptr) *error = "expected a JSON object";
    return std::nullopt;
  }
  FieldReader r(v);
  VerifyResponse resp;
  if (checkVersion(r, kResponseSchemaVersion, "response")) {
    r.takeUint("id", &resp.id);
    r.takeString("error", &resp.error);
    r.takeBool("cached", &resp.cached);
    r.takeString("cache_key", &resp.cacheKey);
    r.takeEnum("verdict", &resp.verdict, verdictFromName);
    r.takeString("reason", &resp.reason);
    std::uint64_t failedSlice = 0;
    r.takeUint("failed_slice", &failedSlice);
    resp.failedSlice = static_cast<unsigned>(failedSlice);
    std::int64_t exitCode = resp.exitCode;
    r.takeInt("exit_code", &exitCode);
    resp.exitCode = static_cast<int>(exitCode);
    r.takeDouble("wall_seconds", &resp.wallSeconds);
    if (const JsonValue* stages = r.take("stage_seconds");
        stages != nullptr) {
      if (!stages->isObject())
        r.fail("field 'stage_seconds' must be an object");
      else {
        resp.seconds.sim = stages->numberAt("sim");
        resp.seconds.rewrite = stages->numberAt("rewrite");
        resp.seconds.translate = stages->numberAt("translate");
        resp.seconds.sat = stages->numberAt("sat");
        resp.seconds.bdd = stages->numberAt("bdd");
      }
    }
    r.takeUint("peak_arena_bytes", &resp.peakArenaBytes);
    r.takeUint("rss_high_water_kb", &resp.rssHighWaterKb);
    if (const JsonValue* counters = r.take("counters"); counters != nullptr) {
      if (!counters->isObject())
        r.fail("field 'counters' must be an object");
      else
        for (const auto& [name, value] : counters->object)
          resp.counters.emplace_back(
              name, value.isNumber() && value.number >= 0
                        ? static_cast<std::uint64_t>(value.number)
                        : 0);
    }
    r.finish();
  }
  if (r.ok()) return resp;
  if (error != nullptr) *error = r.error();
  return std::nullopt;
}

std::optional<VerifyResponse> VerifyResponse::parse(std::string_view text,
                                                    std::string* error) {
  const std::optional<JsonValue> v = parseObject(text, error);
  if (!v.has_value()) return std::nullopt;
  return fromJson(*v, error);
}

VerifyReport verify(const VerifyRequest& req,
                    sat::IncrementalSession* session, sat::SolveMemo* memo) {
  VerifyOptions opts = req.options();
  opts.satSession = session;
  opts.satMemo = memo;
  eufm::Context cx;
  const models::Isa isa = models::Isa::declare(cx);
  auto impl = models::buildOoO(cx, isa, req.config(), req.bug);
  auto spec = models::buildSpec(cx, isa);
  return verifyWith(cx, isa, *impl, *spec, opts);
}

}  // namespace velev::core
