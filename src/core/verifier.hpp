// End-to-end correspondence checking: the public entry point of the library.
//
// verify() builds the processor models, symbolically simulates the
// commutative diagram, optionally applies the rewriting rules, translates
// the correctness formula to CNF via Positive Equality, and checks
// unsatisfiability with the CDCL solver. Per-stage wall-clock times are
// reported — they are the quantities of Tables 1, 2, 4 and 5 of the paper.
//
// Every run is resource-governed (support/budget.hpp): a ResourceBudget in
// VerifyOptions bounds wall-clock time and logical arena memory, and an
// exhausted budget degrades into Verdict::Timeout / Verdict::MemOut rather
// than a crash — this is how Table 2's "out of memory" entries reproduce on
// a machine with plenty of RAM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/diagram.hpp"
#include "evc/translate.hpp"
#include "models/ooo.hpp"
#include "rewrite/engine.hpp"
#include "sat/incremental.hpp"
#include "sat/simplify.hpp"
#include "sat/solver.hpp"
#include "support/budget.hpp"
#include "support/names.hpp"

namespace velev::core {

enum class Strategy {
  /// Translate the full correctness formula (Positive Equality, e_ij
  /// encoding, complete memory semantics). Blows up with ROB size (Table 2).
  PositiveEqualityOnly,
  /// First prove and remove the updates of the instructions initially in
  /// the ROB with the rewriting rules, then exploit Positive Equality with
  /// the conservative memory model (Tables 4-5).
  RewritingPlusPositiveEquality,
};

/// Stable lower-case name ("pe-only" / "rw+pe"), used by the CLI flags, the
/// bench reports and the run manifests.
const char* strategyName(Strategy s);

/// Inverse of strategyName(); unknown names yield nullopt.
std::optional<Strategy> strategyFromName(std::string_view name);

enum class Engine {
  /// CNF + CDCL SAT (the paper's Chaff flow). The default.
  Sat,
  /// Shared-ROBDD evaluation of the negated correctness formula built
  /// directly from the AIG (no Tseitin), plus the transitivity side
  /// clauses: Valid iff the result is the false terminal.
  Bdd,
  /// Run both engines under sibling budgets and cross-check: a conclusive
  /// verdict disagreement is a hard error (InternalError), never a
  /// quietly-picked winner.
  Both,
};

/// Stable lower-case name ("sat" / "bdd" / "both") for the CLI flag, the
/// bench reports and the run manifests.
const char* engineName(Engine e);

/// Inverse of engineName(); unknown names yield nullopt.
std::optional<Engine> engineFromName(std::string_view name);

struct VerifyOptions {
  Strategy strategy = Strategy::RewritingPlusPositiveEquality;
  Engine engine = Engine::Sat;
  tlsim::Simulator::Options sim;
  /// Resource limits for the whole run (wall clock, logical arena bytes,
  /// SAT conflicts). Under Engine::Both each engine gets its own governor
  /// armed from this same budget, so one engine exhausting its share never
  /// starves the other.
  ResourceBudget budget;
  bool skipSat = false;  // stop after translation (timing benches)
  evc::UfScheme ufScheme = evc::UfScheme::NestedIte;  // ablation hook
  /// Inprocessing front end of the SAT stage (simplify.hpp). Enabled by
  /// default; `--no-inprocess` clears `inprocess.enabled`. Ignored by the
  /// BDD-only engine (which never builds clause databases).
  sat::InprocessOptions inprocess;
  /// When set, the SAT stage solves through this shared incremental
  /// session (activation-selector encoding) instead of a fresh solver —
  /// the grid runner passes one session per strategy so VSIDS activity,
  /// saved phases and retained learnt clauses carry across cells. The
  /// session's own InprocessOptions govern simplification; the run's
  /// governor is attached for the duration of the call. Not owned.
  sat::IncrementalSession* satSession = nullptr;
  /// When set (and satSession is not), the SAT stage consults this
  /// content-addressed memo of finished solves first: a bit-identical CNF
  /// under identical options replays the stored result AND the stored
  /// per-call stats — exactly what a fresh deterministic solve would have
  /// produced. The serve batching lane hangs one memo per worker process,
  /// so Table 5 size-independent cells (same width, different ROB size)
  /// pay for one SAT solve per column. Single-threaded; not owned.
  sat::SolveMemo* satMemo = nullptr;
  /// Worker threads available *inside* this one verification: with jobs > 1
  /// a private pool shards the rewrite slice checks (per-slice
  /// eufm::ShadowContext overlays) and the CNF build (sharded Tseitin, one
  /// transitivity component per worker). Verdict, counters and the emitted
  /// CNF are identical to jobs == 1 for any value — parallelism here only
  /// buys wall clock on the big-N cells of the paper-scale sweep. Not part
  /// of the serializable VerifyRequest (scheduling, not semantics).
  unsigned jobs = 1;
};

enum class Verdict {
  Correct,              // CNF proven unsatisfiable
  CounterexampleFound,  // SAT model exists (design incorrect)
  RewriteMismatch,      // rewriting flagged a non-conforming slice
  Inconclusive,         // SAT conflict budget exhausted / SAT skipped
  Timeout,              // wall-clock budget exhausted
  MemOut,               // memory budget exhausted (Table 2's "out of memory")
  Skipped,              // grid cell never ran (cancelled before start)
};

/// Stable lower-case name, used by the CLI and the JSON bench reports.
const char* verdictName(Verdict v);

/// Inverse of verdictName() (round-trips every Verdict value; the CLI test
/// asserts this). Unknown names yield nullopt.
std::optional<Verdict> verdictFromName(std::string_view name);

/// The one process exit-code mapping shared by velev_verify, the benches
/// and cli_test: 0 correct, 1 refuted (counterexample or rewrite mismatch),
/// 3 inconclusive/skipped, 4 budget exhausted (timeout/memout). Exit code 2
/// is reserved for usage errors and never produced from a Verdict.
int verdictExitCode(Verdict v);

/// Wall-clock seconds per pipeline stage. On a budget-exceeded run the
/// stage that tripped carries its partial time.
struct StageSeconds {
  double sim = 0;        // symbolic simulation (Table 1)
  double rewrite = 0;    // rewriting rules
  double translate = 0;  // EUFM -> CNF (Tables 2 col. / 4)
  double sat = 0;        // SAT checking (Tables 2 / 3 / 5)
  double bdd = 0;        // BDD checking (Engine::Bdd / Engine::Both)
  double total() const { return sim + rewrite + translate + sat + bdd; }
};

/// The unified result of a verification run: verdict, human-readable
/// reason, and resource accounting. Replaces the former loose trio of
/// VerifyReport::{verdict, satResult, rewrite*} fields.
struct Outcome {
  Verdict verdict = Verdict::Inconclusive;
  /// Why: the rewrite-mismatch explanation for RewriteMismatch, the budget
  /// trip message for Timeout/MemOut, empty otherwise.
  std::string reason;
  /// RewriteMismatch only: 1-based index of the non-conforming slice.
  unsigned failedSlice = 0;
  /// Raw SAT answer (Unknown when the SAT stage never ran or gave up).
  sat::Result satResult = sat::Result::Unknown;
  StageSeconds seconds;
  /// High-water mark of the summed logical arena bytes (EUFM DAG + AIG +
  /// CNF + solver clause databases) — the quantity a memory budget governs.
  std::size_t peakArenaBytes = 0;
  /// Process-wide VmHWM snapshot at completion, for accounting only.
  std::size_t rssHighWaterKb = 0;

  bool budgetExceeded() const {
    return verdict == Verdict::Timeout || verdict == Verdict::MemOut;
  }
};

/// EUFM context accounting taken by one O(numNodes) scan when a run
/// finishes (never maintained on the interning hot path).
struct ContextStats {
  std::uint64_t nodes = 0;         // hash-consed DAG nodes
  std::uint64_t memoryReads = 0;   // Kind::Read nodes
  std::uint64_t memoryWrites = 0;  // Kind::Write nodes
  std::uint64_t arenaBytes = 0;    // Context::memoryBytes()
};

/// Fill a ContextStats by one linear scan of the DAG. verifyWith() calls it
/// when a run finishes; callers that hand-roll the pipeline (velev_verify's
/// single mode) use it the same way.
ContextStats scanContext(const eufm::Context& cx);

struct VerifyReport {
  Outcome outcome;

  unsigned updatesRemoved = 0;  // rewriting strategy only
  evc::TranslationStats evcStats;
  rewrite::RewriteStats rewriteStats;  // zeros on the PE-only strategy
  sat::Stats satStats;
  tlsim::Simulator::Stats simStats;
  ContextStats cxStats;
  /// Which decision engine(s) ran. reportCounters() appends the bdd.*
  /// block only when this is not Engine::Sat, so SAT-only manifests keep
  /// their historical counter set.
  Engine engine = Engine::Sat;
  bdd::BddStats bddStats;  // zeros when the BDD engine never ran
  /// CNF inprocessing statistics of the SAT stage; `inprocessed` says
  /// whether the pipeline ran at all (reportCounters() appends the
  /// sat.inprocess.* block only then, so --no-inprocess manifests keep the
  /// historical counter set).
  bool inprocessed = false;
  sat::InprocessStats inprocessStats;

  Verdict verdict() const { return outcome.verdict; }
  double simSeconds() const { return outcome.seconds.sim; }
  double rewriteSeconds() const { return outcome.seconds.rewrite; }
  double translateSeconds() const { return outcome.seconds.translate; }
  double satSeconds() const { return outcome.seconds.sat; }
  double totalSeconds() const { return outcome.seconds.total(); }
};

/// The canonical paper-aligned counter block of a finished run: the Table 3
/// encoding sizes (`evc.*`, `cnf.*`), Table 5 rewrite statistics
/// (`rewrite.*`), simulator work (`tlsim.*`), EUFM context sizes (`eufm.*`)
/// and sequential SAT effort (`sat.*`). This is what the benches embed in
/// their JSON reports and what writeManifest() records under "counters" —
/// independent of whether a trace::Collector was attached. Names are
/// documented in docs/TRACE_FORMAT.md.
std::vector<std::pair<std::string, std::uint64_t>> reportCounters(
    const VerifyReport& rep);

/// Verify one configuration over a caller-provided context and prebuilt
/// models (lets benchmarks and the fuzz oracles reuse the expensive model
/// construction and inspect the expressions). This is the low-level
/// expanded-options entry point — VerifyOptions can carry state a
/// serializable request cannot (a shared sat::IncrementalSession, a
/// SolveMemo, non-default inprocessing knobs); request-driven callers go
/// through verify(const VerifyRequest&) in core/request.hpp, the single
/// request representation shared by the CLI, the grid runner, the benches
/// and the velev_serve daemon.
VerifyReport verifyWith(eufm::Context& cx, const models::Isa& isa,
                        models::OoOProcessor& impl,
                        models::SpecProcessor& spec,
                        const VerifyOptions& opts = {});

}  // namespace velev::core

// Name-registry tables (support/names.hpp): the single source of truth
// behind strategyName()/engineName()/verdictName() and their *FromName()
// inverses. tests/core_test.cpp round-trips every entry.
template <>
struct velev::names::Registry<velev::core::Strategy> {
  static constexpr EnumEntry<velev::core::Strategy> entries[] = {
      {velev::core::Strategy::PositiveEqualityOnly, "pe-only"},
      {velev::core::Strategy::RewritingPlusPositiveEquality, "rw+pe"},
  };
};

template <>
struct velev::names::Registry<velev::core::Engine> {
  static constexpr EnumEntry<velev::core::Engine> entries[] = {
      {velev::core::Engine::Sat, "sat"},
      {velev::core::Engine::Bdd, "bdd"},
      {velev::core::Engine::Both, "both"},
  };
};

template <>
struct velev::names::Registry<velev::core::Verdict> {
  static constexpr EnumEntry<velev::core::Verdict> entries[] = {
      {velev::core::Verdict::Correct, "correct"},
      {velev::core::Verdict::CounterexampleFound, "counterexample"},
      {velev::core::Verdict::RewriteMismatch, "rewrite-mismatch"},
      {velev::core::Verdict::Inconclusive, "inconclusive"},
      {velev::core::Verdict::Timeout, "timeout"},
      {velev::core::Verdict::MemOut, "memout"},
      {velev::core::Verdict::Skipped, "skipped"},
  };
};
