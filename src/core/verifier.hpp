// End-to-end correspondence checking: the public entry point of the library.
//
// verify() builds the processor models, symbolically simulates the
// commutative diagram, optionally applies the rewriting rules, translates
// the correctness formula to CNF via Positive Equality, and checks
// unsatisfiability with the CDCL solver. Per-stage wall-clock times are
// reported — they are the quantities of Tables 1, 2, 4 and 5 of the paper.
#pragma once

#include <cstdint>
#include <string>

#include "core/diagram.hpp"
#include "evc/translate.hpp"
#include "models/ooo.hpp"
#include "sat/solver.hpp"

namespace velev::core {

enum class Strategy {
  /// Translate the full correctness formula (Positive Equality, e_ij
  /// encoding, complete memory semantics). Blows up with ROB size (Table 2).
  PositiveEqualityOnly,
  /// First prove and remove the updates of the instructions initially in
  /// the ROB with the rewriting rules, then exploit Positive Equality with
  /// the conservative memory model (Tables 4-5).
  RewritingPlusPositiveEquality,
};

struct VerifyOptions {
  Strategy strategy = Strategy::RewritingPlusPositiveEquality;
  tlsim::Simulator::Options sim;
  std::int64_t satConflictBudget = -1;  // <0: unlimited
  bool skipSat = false;  // stop after translation (timing benches)
  evc::UfScheme ufScheme = evc::UfScheme::NestedIte;  // ablation hook
};

enum class Verdict {
  Correct,            // CNF proven unsatisfiable
  CounterexampleFound,  // SAT model exists (design incorrect)
  RewriteMismatch,    // rewriting flagged a non-conforming slice
  Inconclusive,       // SAT budget exhausted
};

/// Stable lower-case name, used by the CLI and the JSON bench reports.
const char* verdictName(Verdict v);

struct VerifyReport {
  Verdict verdict = Verdict::Inconclusive;

  // Rewriting outcome (strategy == RewritingPlusPositiveEquality only).
  unsigned rewriteFailedSlice = 0;
  std::string rewriteMessage;
  unsigned updatesRemoved = 0;

  sat::Result satResult = sat::Result::Unknown;
  evc::TranslationStats evcStats;
  sat::Stats satStats;
  tlsim::Simulator::Stats simStats;

  double simSeconds = 0;        // symbolic simulation (Table 1)
  double rewriteSeconds = 0;    // rewriting rules
  double translateSeconds = 0;  // EUFM -> CNF (Tables 2 col. / 4)
  double satSeconds = 0;        // SAT checking (Tables 2 / 3 / 5)
  double totalSeconds() const {
    return simSeconds + rewriteSeconds + translateSeconds + satSeconds;
  }
};

/// Verify one processor configuration (optionally with an injected bug).
VerifyReport verify(const models::OoOConfig& cfg,
                    const models::BugSpec& bug = {},
                    const VerifyOptions& opts = {});

/// As above, over a caller-provided context and prebuilt models (lets
/// benchmarks reuse the expensive model construction and inspect the
/// expressions).
VerifyReport verifyWith(eufm::Context& cx, const models::Isa& isa,
                        models::OoOProcessor& impl,
                        models::SpecProcessor& spec,
                        const VerifyOptions& opts = {});

}  // namespace velev::core
