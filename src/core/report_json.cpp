#include "core/report_json.hpp"

namespace velev::core {

namespace {

std::vector<std::pair<std::string, double>> stageSecondsOf(
    const VerifyReport& rep) {
  const StageSeconds& s = rep.outcome.seconds;
  return {{"sim", s.sim},
          {"rewrite", s.rewrite},
          {"translate", s.translate},
          {"sat", s.sat},
          {"bdd", s.bdd}};
}

}  // namespace

ReportCell makeReportCell(const GridCellResult& res, std::string label) {
  ReportCell c;
  c.robSize = res.cell.robSize;
  c.issueWidth = res.cell.issueWidth;
  c.label = std::move(label);
  c.verdict = verdictName(res.report.verdict());
  c.reason = res.report.outcome.reason;
  c.wallSeconds = res.wallSeconds;
  c.satConflicts = res.report.satStats.conflicts;
  c.peakArenaBytes = res.report.outcome.peakArenaBytes;
  c.memHighWaterKb = res.memHighWaterKb;
  c.fellBack = res.fellBack;
  if (res.fellBack) c.firstVerdict = verdictName(res.firstVerdict);
  c.counters = reportCounters(res.report);
  c.stageSeconds = stageSecondsOf(res.report);
  return c;
}

ReportCell makeReportCell(const models::OoOConfig& cfg, std::string label,
                          const VerifyReport& rep, double wallSeconds,
                          std::uint64_t memHighWaterKb) {
  ReportCell c;
  c.robSize = cfg.robSize;
  c.issueWidth = cfg.issueWidth;
  c.label = std::move(label);
  c.verdict = verdictName(rep.verdict());
  c.reason = rep.outcome.reason;
  c.wallSeconds = wallSeconds;
  c.satConflicts = rep.satStats.conflicts;
  c.peakArenaBytes = rep.outcome.peakArenaBytes;
  c.memHighWaterKb = memHighWaterKb;
  c.counters = reportCounters(rep);
  c.stageSeconds = stageSecondsOf(rep);
  return c;
}

void writeReportCell(JsonWriter& w, const ReportCell& c) {
  w.beginObject();
  w.kv("rob_size", c.robSize);
  w.kv("width", c.issueWidth);
  if (!c.label.empty()) w.kv("label", c.label);
  w.kv("verdict", c.verdict);
  if (!c.reason.empty()) w.kv("reason", c.reason);
  w.kv("wall_seconds", c.wallSeconds);
  w.kv("sat_conflicts", c.satConflicts);
  w.kv("peak_arena_bytes", c.peakArenaBytes);
  w.kv("mem_high_water_kb", c.memHighWaterKb);
  if (c.fellBack) {
    w.kv("fell_back", true);
    w.kv("first_verdict", c.firstVerdict);
  }
  if (!c.counters.empty()) {
    w.key("counters");
    w.beginObject();
    for (const auto& [name, value] : c.counters) w.kv(name, value);
    w.endObject();
  }
  if (!c.stageSeconds.empty()) {
    w.key("stage_seconds");
    w.beginObject();
    for (const auto& [name, value] : c.stageSeconds) w.kv(name, value);
    w.endObject();
  }
  w.endObject();
}

}  // namespace velev::core
