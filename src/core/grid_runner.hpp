// Parallel grid runner: fan the Burch–Dill verification of independent
// (ROB size, issue width) configurations out across cores.
//
// The paper's evaluation (Tables 1-5) is a grid of configurations that are
// completely independent of each other — embarrassingly parallel. Each grid
// cell is one pool task that builds its OWN `eufm::Context`, its own
// processor models, and runs the full verify() pipeline inside the task.
//
// THREAD-OWNERSHIP RULE: one ExprContext per verification cell. The EUFM
// context (hash-consing table, string interner) and the prop/CNF contexts
// derived from it are unsynchronized by design — sharing or cross-thread
// interning is a data race. The grid runner never passes expressions
// between cells; the only shared state is the results vector, written at
// disjoint indices and read after all futures are joined. Results are
// returned in input order, so a parallel run is observationally identical
// to the sequential one (up to wall-clock fields).
//
// The one sanctioned exception lives *inside* a cell: with cellJobs > 1 a
// cell's own workers read the cell's (frozen) context through per-worker
// eufm::ShadowContext overlays — reads of an unmutated context are safe,
// and each overlay's scratch nodes are thread-private. See
// docs/SCALING.md.
//
// RESOURCE ISOLATION: each cell gets its own BudgetGovernor (armed inside
// verify()), and the memory budget governs the cell's *logical* arena
// bytes, not process RSS — so one cell tripping MemOut cannot perturb a
// sibling's verdict, no matter how the cells are scheduled.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/request.hpp"
#include "core/verifier.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace velev::core {

/// Version of the checkpoint.json schema written by a grid run with
/// GridRunOptions::checkpointPath (the "version" field — versioned exactly
/// like manifest.json's schema_version). Bump on any breaking change and
/// document the migration in docs/SCALING.md. A resume load rejects
/// mismatched versions wholesale: stale checkpoints restore nothing and
/// every cell simply re-runs.
constexpr int kGridCheckpointSchemaVersion = 1;

struct GridCell {
  unsigned robSize = 8;
  unsigned issueWidth = 2;
  models::BugSpec bug;  // default: no injected defect
};

struct GridCellResult {
  GridCell cell;
  VerifyReport report;
  double wallSeconds = 0;       // end-to-end wall time of this cell
  std::size_t memHighWaterKb = 0;  // process RSS high-water after the cell
  bool skipped = false;         // cancelled before the cell started
  bool fellBack = false;        // FallbackPolicy retried this cell
  /// When fellBack: the verdict of the original (pre-retry) attempt.
  Verdict firstVerdict = Verdict::Inconclusive;
  /// Restored from a checkpoint file instead of re-verified (resume mode).
  /// The report's verdict/seconds/counters are the recorded values; fields
  /// a checkpoint record does not carry (typed engine sub-structs beyond
  /// the counter block) are rehydrated from the counters.
  bool restored = false;
};

/// What to do with a cell whose first attempt exhausted its budget.
enum class FallbackPolicy {
  None,
  /// PE-only cell hit Timeout/MemOut => retry it once with
  /// RewritingPlusPositiveEquality — the paper's headline comparison: the
  /// configurations that exhaust 4 GB under Positive Equality alone verify
  /// in seconds once the rewriting rules delete the ROB updates.
  RetryWithRewriting,
};

/// Scheduling knobs of a grid run. Everything about WHAT to verify lives in
/// the per-cell VerifyRequests (so a grid may mix strategies, engines and
/// budgets); this struct only says HOW to run them.
struct GridRunOptions {
  unsigned jobs = 1;  // worker threads; 1 = run in the calling thread
  FallbackPolicy fallback = FallbackPolicy::None;
  /// When non-empty: each cell attaches its own trace::Collector (the
  /// one-Collector-per-cell analogue of the one-Context-per-cell rule) and
  /// the runner writes `cell_<index>_<N>x<K>.trace.json` plus
  /// `cell_<index>_<N>x<K>.manifest.json` into this directory, then one
  /// merged `manifest.json` summing stage times and counters over the grid.
  /// The directory is created if missing.
  std::string traceDir;
  /// Share one incremental SAT session (sat/incremental.hpp) across the
  /// grid: VSIDS activities, saved phases and retained learnt clauses
  /// carry from cell to cell, which pays exactly where cells are closely
  /// related (same strategy, adjacent N/width). Forces sequential
  /// execution — the session is single-threaded by design, mirroring the
  /// one-Context-per-cell rule — so `jobs` is treated as 1. A fallback
  /// retry (different strategy => different variable skeleton) always runs
  /// on a fresh solver.
  bool incremental = false;
  /// When non-empty: after every finished (non-skipped) cell the runner
  /// atomically rewrites this checkpoint file (schema in docs/SCALING.md,
  /// versioned like manifest.json) with one record per completed cell,
  /// keyed by VerifyRequest::cacheKey(). A sweep killed mid-run loses at
  /// most the cells in flight.
  std::string checkpointPath;
  /// With `resume` and an existing checkpoint file: cells whose cache key
  /// has a record are not re-verified — their results are restored
  /// (GridCellResult::restored) and the run continues with the unfinished
  /// cells only. A checkpoint written by a different binary (the cache key
  /// mixes in trace::gitDescribe()) simply matches nothing. Skipped cells
  /// are never recorded, so a cancelled sweep resumes them too.
  bool resume = false;
  /// Worker threads *inside* each cell (VerifyOptions::jobs): parallel
  /// rewrite slice checks and CNF build. Orthogonal to `jobs`, which fans
  /// out across cells — the paper-scale sweep runs few huge cells, so it
  /// wants jobs = 1 and cellJobs = cores.
  unsigned cellJobs = 1;
};

/// Verify every request of `requests`; results come back in input order.
/// Each request carries its own strategy/engine/budget, so heterogeneous
/// grids (the velev_serve replay mix) run through the same scheduler as the
/// paper's homogeneous tables. With jobs > 1, cells run on a work-stealing
/// pool. Cancelling `cancel` stops the cells that have not started yet
/// (marked skipped, verdict Verdict::Skipped); running cells finish
/// normally.
std::vector<GridCellResult> runGrid(std::span<const VerifyRequest> requests,
                                    const GridRunOptions& opts,
                                    CancelToken* cancel = nullptr);

/// Cross product of sizes × widths, dropping the impossible cells
/// (width > size) exactly as the paper's tables print a dash for them.
std::vector<GridCell> makeGrid(std::span<const unsigned> sizes,
                               std::span<const unsigned> widths);

/// Request-valued makeGrid(): the sizes × widths cross product stamped
/// onto copies of `base` (which supplies strategy, engine, budget, bug and
/// the pipeline toggles).
std::vector<VerifyRequest> makeGridRequests(std::span<const unsigned> sizes,
                                            std::span<const unsigned> widths,
                                            const VerifyRequest& base = {});

/// Flatten one finished cell into the manifest fields: tool name, config
/// block (rob_size, issue_width, strategy, …), budget, verdict/reason,
/// stage seconds and the canonical reportCounters() block. Shared by the
/// grid runner's per-cell manifests and velev_verify's single-run one.
trace::ManifestData cellManifestData(const GridCellResult& res,
                                     const VerifyOptions& opts,
                                     std::string_view tool = "velev_verify");

/// As above, for a request-driven run.
trace::ManifestData cellManifestData(const GridCellResult& res,
                                     const VerifyRequest& req,
                                     std::string_view tool = "velev_verify");

}  // namespace velev::core
