// Umbrella façade header: the whole public surface of the library in one
// include. Tools, examples and out-of-tree users should prefer
//
//   #include "velev.hpp"
//
// over picking individual subsystem headers; the per-module headers remain
// available for translation units that want minimal dependencies.
#pragma once

// support/ — infrastructure shared by every layer.
#include "support/budget.hpp"
#include "support/check.hpp"
#include "support/json.hpp"
#include "support/mem.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

// eufm/ — the hash-consed EUFM term/formula DAG and its evaluator.
#include "eufm/eval.hpp"
#include "eufm/expr.hpp"
#include "eufm/memsort.hpp"
#include "eufm/print.hpp"
#include "eufm/traverse.hpp"

// prop/ + sat/ — AIG, Tseitin CNF, CDCL solver, DRAT proofs, portfolio.
#include "prop/cnf.hpp"
#include "prop/prop.hpp"
#include "sat/drat.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

// bdd/ — shared ROBDDs with complement edges: the second decision engine.
#include "bdd/bdd.hpp"
#include "bdd/check.hpp"

// tlsim/ + models/ — term-level simulator and the processor models.
#include "models/isa.hpp"
#include "models/ooo.hpp"
#include "models/spec.hpp"
#include "tlsim/netlist.hpp"
#include "tlsim/sim.hpp"

// rewrite/ + evc/ — the paper's rewriting rules and the Positive-Equality
// translation pipeline.
#include "evc/translate.hpp"
#include "rewrite/engine.hpp"
#include "rewrite/update_chain.hpp"

// core/ — Burch–Dill diagram, verifier front end, serializable
// request/response surface, parallel grid runner, shared report writer.
#include "core/diagram.hpp"
#include "core/grid_runner.hpp"
#include "core/report_json.hpp"
#include "core/request.hpp"
#include "core/verifier.hpp"

// serve/ — the velev_serve daemon: result cache, server, wire client.
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

// fuzz/ — seeded differential fuzzing, counterexample decoding, corpus.
#include "fuzz/fuzz.hpp"
