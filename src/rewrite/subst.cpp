#include "rewrite/subst.hpp"

namespace velev::rewrite {

using eufm::Context;
using eufm::Expr;

Expr substituteMem(Context& cx, Expr root, Expr from, Expr to) {
  return detail::rebuildFiltered(
      cx, root,
      [&](Expr e) -> Expr {
        if (e == from) return to;
        return detail::keepLeaves(cx, e);
      },
      [&](Expr mem) { return mem == from ? to : mem; });
}

}  // namespace velev::rewrite
