#include "rewrite/subst.hpp"

#include <vector>

namespace velev::rewrite {

using eufm::Context;
using eufm::Expr;
using eufm::Kind;

namespace {

// Iterative postorder rebuild. Memory arguments of read/write are not
// traversed; they are transformed atomically by `memArg` (identity by
// default), which keeps the cost proportional to the data expression, not
// to the prefix memory states it reads from.
template <typename LeafFn, typename MemFn>
Expr rebuildFiltered(Context& cx, Expr root, LeafFn&& leaf, MemFn&& memArg) {
  std::unordered_map<Expr, Expr> map;
  std::vector<std::pair<Expr, bool>> stack = {{root, false}};
  while (!stack.empty()) {
    auto [e, expanded] = stack.back();
    stack.pop_back();
    if (map.count(e)) continue;
    if (!expanded) {
      const Expr direct = leaf(e);
      if (direct != eufm::kNoExpr) {
        map.emplace(e, direct);
        continue;
      }
      stack.emplace_back(e, true);
      const Kind k = cx.kind(e);
      const auto args = cx.args(e);
      for (std::size_t i = 0; i < args.size(); ++i) {
        if ((k == Kind::Read || k == Kind::Write) && i == 0) continue;
        if (!map.count(args[i])) stack.emplace_back(args[i], false);
      }
      continue;
    }
    auto m = [&](unsigned i) { return map.at(cx.arg(e, i)); };
    Expr r = eufm::kNoExpr;
    switch (cx.kind(e)) {
      case Kind::Not: r = cx.mkNot(m(0)); break;
      case Kind::And: r = cx.mkAnd(m(0), m(1)); break;
      case Kind::Or: r = cx.mkOr(m(0), m(1)); break;
      case Kind::IteF: r = cx.mkIteF(m(0), m(1), m(2)); break;
      case Kind::IteT: r = cx.mkIteT(m(0), m(1), m(2)); break;
      case Kind::Eq: r = cx.mkEq(m(0), m(1)); break;
      case Kind::Up:
      case Kind::Uf: {
        std::vector<Expr> args;
        for (Expr a : cx.args(e)) args.push_back(map.at(a));
        r = cx.apply(cx.funcOf(e), args);
        break;
      }
      case Kind::Read:
        r = cx.mkRead(memArg(cx.arg(e, 0)), m(1));
        break;
      case Kind::Write:
        r = cx.mkWrite(memArg(cx.arg(e, 0)), m(1), m(2));
        break;
      default:
        VELEV_UNREACHABLE("unhandled kind in rebuild");
    }
    map.emplace(e, r);
  }
  return map.at(root);
}

Expr keepLeaves(const Context& cx, Expr e) {
  switch (cx.kind(e)) {
    case Kind::True:
    case Kind::False:
    case Kind::TermVar:
    case Kind::BoolVar:
      return e;
    default:
      return eufm::kNoExpr;  // recurse
  }
}

}  // namespace

Expr substituteShallow(Context& cx, Expr root, const BoolAssumptions& assume) {
  return rebuildFiltered(
      cx, root,
      [&](Expr e) -> Expr {
        if (cx.kind(e) == Kind::BoolVar) {
          auto it = assume.find(e);
          if (it != assume.end())
            return it->second ? cx.mkTrue() : cx.mkFalse();
          return e;
        }
        return keepLeaves(cx, e);
      },
      [](Expr mem) { return mem; });
}

Expr substituteMem(Context& cx, Expr root, Expr from, Expr to) {
  return rebuildFiltered(
      cx, root,
      [&](Expr e) -> Expr {
        if (e == from) return to;
        return keepLeaves(cx, e);
      },
      [&](Expr mem) { return mem == from ? to : mem; });
}

}  // namespace velev::rewrite
