// Update-chain extraction and reconstruction.
//
// TLSim-produced Register File expressions are chains of conditional
// updates ITE(ctx, write(prev, addr, data), prev) — the triples
// ⟨context, address, data⟩ of Fig. 2 of the paper. The rewriting rules
// operate on these chains.
#pragma once

#include <vector>

#include "eufm/expr.hpp"

namespace velev::rewrite {

struct Update {
  eufm::Expr node;  // the ITE(ctx, write(prev,a,d), prev) node itself
  eufm::Expr prev;  // memory state below this update
  eufm::Expr ctx;   // write condition
  eufm::Expr addr;
  eufm::Expr data;
};

struct UpdateChain {
  eufm::Expr root = eufm::kNoExpr;
  eufm::Expr base = eufm::kNoExpr;   // memory state below all updates
  std::vector<Update> updates;       // bottom-up: oldest (deepest) first
};

/// Does `e` match ITE(ctx, write(prev, a, d), prev)? Fills `out` if so.
bool matchUpdate(const eufm::Context& cx, eufm::Expr e, Update& out);

/// Peel updates from `root` until a non-update node (the base) is reached.
UpdateChain extractChain(const eufm::Context& cx, eufm::Expr root);

/// Peel updates until `base` is reached; throws if `base` is never hit.
UpdateChain extractChainTo(const eufm::Context& cx, eufm::Expr root,
                           eufm::Expr base);

/// Rebuild a chain over (possibly different) `base`, preserving the
/// bottom-up order of `updates`.
eufm::Expr rebuildChain(eufm::Context& cx, eufm::Expr base,
                        std::span<const Update> updates);

}  // namespace velev::rewrite
