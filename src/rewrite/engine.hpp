// The rewriting-rule engine of the paper (Sect. 6).
//
// Given the Register File expressions produced by the two sides of the
// Burch–Dill commutative diagram, the engine proves — by mechanical
// structural rules — that every instruction initially in the reorder buffer
// produces equal updates along both sides, and removes those updates,
// replacing the proven-equal prefix states by a common fresh term variable
// (RegFile_equal_state, Fig. 2.b). The surviving formula depends only on
// the newly fetched instructions and is processed by Positive Equality.
//
// Per slice i the rules are:
//   * context check — the two implementation updates to Dest_i carry
//     contexts Valid_i ∧ retire_i (regular-cycle retirement) and
//     Valid_i ∧ ¬retire_i (completion during flushing); outside the retire
//     width there is a single update under Valid_i;
//   * movability — the completion update is moved down past the retire
//     updates of later instructions; justified by syntactic context
//     disjointness (retire_j implies retire_i, clashing with ¬retire_i);
//   * merge — the two adjacent updates combine into one under context
//     Valid_i with data ITE(retire_i, Result_i, ImplData_i);
//   * data equality — case split on ValidResult_i:
//       VR = true:  both sides collapse to the Result_i variable;
//       VR = false: the specification data is ALU(Op_i, read(Q_i, Src1_i),
//                   read(Q_i, Src2_i)); the implementation data is an ITE
//                   between (a) the regular-cycle execution result, whose
//                   forwarded operands are matched against the
//                   specification-side reads under the dependencies_ok
//                   condition (rule 2.1), and (b) the flush-time completion
//                   result, whose reads from the implementation prefix state
//                   P_i correspond to the specification prefix Q_i proven
//                   equal by the earlier slices (rule 2.2).
//
// A slice that does not conform to the expected structure is reported with
// its index — the behaviour the paper demonstrates on the buggy design
// ("the rewriting rules took 9 seconds to identify the 72nd computation
// slice as not conforming to the expected expression structure").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "models/isa.hpp"
#include "models/ooo.hpp"

namespace velev {
class ThreadPool;
}  // namespace velev

namespace velev::rewrite {

/// Rewrite-engine work counters — the quantities of the paper's Table 5
/// ("statistics of the rewriting rules"): how many rule applications fired,
/// how many updates they deleted, and how large the per-slice proof
/// obligations were. Exposed on every RewriteResult (success or mismatch)
/// and surfaced as the `rewrite.*` counters of the trace manifests.
struct RewriteStats {
  unsigned slicesChecked = 0;      // data-equality case splits completed
  unsigned contextChecks = 0;      // update-context structure checks
  unsigned movesApplied = 0;       // completion updates moved past retires
  unsigned mergesApplied = 0;      // retire/completion pairs merged
  unsigned forwardingMatches = 0;  // rule 2.1 operand justifications
  /// Total structural rule applications (the paper's "rules fired").
  std::uint64_t rulesFired() const {
    return std::uint64_t{slicesChecked} + contextChecks + movesApplied +
           mergesApplied + forwardingMatches;
  }
  /// DAG nodes interned while checking slices (proof-obligation size):
  /// summed over all slices, and the largest single slice.
  std::uint64_t sliceNodesTotal = 0;
  std::uint64_t sliceNodesMax = 0;
};

struct RewriteResult {
  bool ok = false;
  unsigned failedSlice = 0;  // 1-based slice index when !ok
  std::string message;
  RewriteStats stats;

  eufm::Expr implRegFile = eufm::kNoExpr;     // rewritten impl-side state
  std::vector<eufm::Expr> specRegFile;        // rewritten spec side, m = 0..k
  eufm::Expr equalStateVar = eufm::kNoExpr;   // the fresh common base
  unsigned updatesRemoved = 0;
};

/// Apply the rewriting rules. `implRegFile` is the implementation-side
/// Register File after one regular cycle plus flushing; `specRegFile[m]` is
/// the specification-side state after flushing the initial state and running
/// m specification steps (m = 0..issueWidth).
///
/// Each slice check runs in a private eufm::ShadowContext over the frozen
/// main context; with a non-null `pool` the slices are checked in parallel
/// across its workers. Results and stats are identical for any worker count
/// (including the sequential pool == nullptr path).
RewriteResult rewriteRobUpdates(eufm::Context& cx, const models::Isa& isa,
                                const models::RobInitState& init,
                                const models::OoOConfig& cfg,
                                eufm::Expr implRegFile,
                                std::span<const eufm::Expr> specRegFile,
                                ThreadPool* pool = nullptr);

}  // namespace velev::rewrite
