#include "rewrite/contexts.hpp"

#include <algorithm>
#include <unordered_set>

namespace velev::rewrite {

using eufm::Context;
using eufm::Expr;
using eufm::Kind;

bool impliesSyntactic(const Context& cx, Expr strong, Expr weak) {
  const auto strongSet = conjuncts(cx, strong);
  std::unordered_set<Expr> have(strongSet.begin(), strongSet.end());
  for (Expr w : conjuncts(cx, weak))
    if (!have.count(w)) return false;
  return true;
}

bool disjointContexts(const Context& cx, Expr c1, Expr c2) {
  const auto s1 = conjuncts(cx, c1);
  const auto s2 = conjuncts(cx, c2);
  const std::unordered_set<Expr> set1(s1.begin(), s1.end());
  const std::unordered_set<Expr> set2(s2.begin(), s2.end());
  // Direct opposite literal.
  for (Expr a : s1) {
    if (cx.kind(a) == Kind::Not && set2.count(cx.arg(a, 0))) return true;
  }
  for (Expr b : s2) {
    if (cx.kind(b) == Kind::Not && set1.count(cx.arg(b, 0))) return true;
  }
  // ¬X on one side while the other side's conjuncts include all of X's.
  for (Expr a : s1) {
    if (cx.kind(a) == Kind::Not && impliesSyntactic(cx, c2, cx.arg(a, 0)))
      return true;
  }
  for (Expr b : s2) {
    if (cx.kind(b) == Kind::Not && impliesSyntactic(cx, c1, cx.arg(b, 0)))
      return true;
  }
  return false;
}

}  // namespace velev::rewrite
