#include "rewrite/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <sstream>
#include <vector>

#include "eufm/shadow.hpp"
#include "rewrite/contexts.hpp"
#include "rewrite/subst.hpp"
#include "rewrite/update_chain.hpp"
#include "support/budget.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace velev::rewrite {

using eufm::Context;
using eufm::Expr;
using eufm::Kind;
using eufm::kNoExpr;

namespace {

/// Signals a rule mismatch at a specific slice; converted to a RewriteResult
/// by the driver (a non-conforming slice is an expected outcome — a
/// potential bug report — not an internal error).
struct SliceMismatch {
  unsigned slice;  // 1-based
  std::string what;
};

/// Rule applications fired while checking one slice. Accumulated into the
/// engine-wide RewriteStats in slice order, so the totals are independent
/// of how slices were scheduled across workers.
struct SliceTally {
  unsigned merges = 0;
  unsigned forwarding = 0;
};

/// Result of checking one slice inside its private ShadowContext.
struct SliceOutcome {
  bool done = false;  // false = skipped past an earlier failing slice
  bool ok = true;
  unsigned slice = 0;  // 1-based when !ok
  std::string message;
  std::uint64_t nodes = 0;  // shadow-local scratch interned by the check
  SliceTally tally;
};

class Engine {
 public:
  Engine(Context& cx, const models::Isa& isa,
         const models::RobInitState& init, const models::OoOConfig& cfg,
         ThreadPool* pool)
      : cx_(cx), isa_(isa), init_(init), n_(cfg.robSize),
        k_(cfg.issueWidth), pool_(pool) {}

  RewriteResult run(Expr implRegFile, std::span<const Expr> specRegFile) {
    RewriteResult res;
    try {
      {
        TRACE_SPAN("rewrite.extract");
        extract(implRegFile, specRegFile);
      }
      {
        TRACE_SPAN("rewrite.contexts");
        checkContexts();
      }
      {
        TRACE_SPAN("rewrite.movability");
        checkMovability();
      }
      {
        TRACE_SPAN("rewrite.slices");
        runSlices();
      }
      {
        TRACE_SPAN("rewrite.rebuild");
        rebuild(res, specRegFile.size());
      }
      res.ok = true;
      res.updatesRemoved = k_ + 2 * n_;
    } catch (const SliceMismatch& m) {
      res.ok = false;
      res.failedSlice = m.slice;
      res.message = m.what;
    }
    res.stats = stats_;
    return res;
  }

 private:
  [[noreturn]] static void fail(unsigned slice0 /*0-based*/,
                                const std::string& what) {
    throw SliceMismatch{slice0 + 1, what};
  }

  // ---- extraction -----------------------------------------------------------
  void extract(Expr implRegFile, std::span<const Expr> specRegFile) {
    VELEV_CHECK(specRegFile.size() == k_ + 1);
    impl_ = extractChain(cx_, implRegFile);
    if (impl_.base != init_.regFile)
      fail(0, "implementation update chain does not reach the initial "
              "Register File state");
    if (impl_.updates.size() != k_ + n_ + k_)
      fail(0, "unexpected number of implementation updates: got " +
                  std::to_string(impl_.updates.size()) + ", expected " +
                  std::to_string(k_ + n_ + k_));
    spec0_ = extractChainTo(cx_, specRegFile[0], init_.regFile);
    if (spec0_.updates.size() != n_)
      fail(0, "unexpected number of specification-side updates: got " +
                  std::to_string(spec0_.updates.size()) + ", expected " +
                  std::to_string(n_));
    // Specification steps m = 1..k extend specRegFile[0] one update at a
    // time.
    specSteps_.clear();
    for (unsigned m = 1; m <= k_; ++m) {
      UpdateChain c = extractChainTo(cx_, specRegFile[m], specRegFile[m - 1]);
      if (c.updates.size() != 1)
        fail(0, "specification step " + std::to_string(m) +
                    " is not a single update");
      specSteps_.push_back(c.updates[0]);
    }
  }

  const Update& retireUpd(unsigned i) const { return impl_.updates[i]; }
  const Update& flushUpd(unsigned i) const { return impl_.updates[k_ + i]; }
  const Update& newUpd(unsigned j) const {
    return impl_.updates[k_ + n_ + j];
  }
  const Update& specUpd(unsigned i) const { return spec0_.updates[i]; }

  // ---- rule: context structure ----------------------------------------------
  // Splits And(Valid_i, X) -> X, where Valid_i is the known variable.
  Expr splitValid(unsigned i, Expr ctx, const char* which) {
    if (cx_.kind(ctx) != Kind::And)
      fail(i, std::string(which) + " context is not a conjunction");
    const Expr a = cx_.arg(ctx, 0), b = cx_.arg(ctx, 1);
    if (a == init_.valid[i]) return b;
    if (b == init_.valid[i]) return a;
    fail(i, std::string(which) + " context does not include Valid_i");
  }

  void checkContexts() {
    retireCond_.assign(k_, kNoExpr);
    for (unsigned i = 0; i < k_; ++i) {
      const Update& r = retireUpd(i);
      if (r.addr != init_.dest[i])
        fail(i, "retire update address is not Dest_i");
      if (r.data != init_.result[i])
        fail(i, "retire update data is not Result_i");
      retireCond_[i] = splitValid(i, r.ctx, "retire");
      ++stats_.contextChecks;
    }
    for (unsigned i = 0; i < n_; ++i) {
      const Update& f = flushUpd(i);
      if (f.addr != init_.dest[i])
        fail(i, "completion update address is not Dest_i");
      if (i < k_) {
        const Expr notRetire = splitValid(i, f.ctx, "completion");
        if (notRetire != cx_.mkNot(retireCond_[i]))
          fail(i, "completion context is not Valid_i & !retire_i");
      } else {
        if (f.ctx != init_.valid[i])
          fail(i, "completion context is not Valid_i");
      }
      const Update& s = specUpd(i);
      if (s.addr != init_.dest[i])
        fail(i, "specification update address is not Dest_i");
      if (s.ctx != init_.valid[i])
        fail(i, "specification update context is not Valid_i");
      ++stats_.contextChecks;
    }
  }

  // ---- rule: movability -------------------------------------------------------
  // The completion update of instruction i (i < k) is moved down past the
  // retire updates of later instructions; every crossed pair must have
  // syntactically disjoint contexts.
  void checkMovability() {
    for (unsigned i = 0; i < k_; ++i) {
      for (unsigned j = i + 1; j < k_; ++j) {
        if (!disjointContexts(cx_, flushUpd(i).ctx, retireUpd(j).ctx))
          fail(i, "cannot move completion update of slice " +
                      std::to_string(i + 1) + " past retire update of slice " +
                      std::to_string(j + 1) +
                      ": contexts are not provably disjoint");
        ++stats_.movesApplied;
      }
    }
  }

  // ---- slice scheduling -------------------------------------------------------
  // Every slice check runs inside a private ShadowContext overlay on the
  // (frozen) main context: the scratch expressions a check interns — merged
  // ITEs, case-split substitutions, candidate forwarding hits — are never
  // reused by the rebuild, so they are hash-consed locally and discarded
  // with the slice. That makes the checks embarrassingly parallel (the main
  // context is only ever read) and keeps the main arena from growing by
  // O(slices × slice-size) scratch.
  //
  // Determinism: each slice starts from an identical frozen base and runs
  // an identical builder-call sequence, so its outcome, tally, and local
  // node count do not depend on worker count or scheduling. Outcomes are
  // reduced in slice order; on a mismatch the lowest failing slice wins and
  // only the slices before it contribute to the stats — exactly the
  // sequential semantics.
  void runSlices() {
    BudgetGovernor* gov = cx_.budgetGovernor();
    std::vector<SliceOutcome> out(n_);
    const unsigned jobs =
        pool_ == nullptr ? 1u : std::min<unsigned>(pool_->size(), n_);
    if (jobs <= 1) {
      const int slot = gov != nullptr ? gov->registerSource() : -1;
      for (unsigned i = 0; i < n_; ++i) {
        checkSliceOutcome(i, gov, slot, out[i]);
        if (!out[i].ok) break;  // fail fast; merge stops here anyway
      }
    } else {
      TRACE_SPAN("rewrite.parallel.slices");
      trace::counterSet("rewrite.parallel.jobs", jobs);
      trace::counterAdd("rewrite.parallel.batches", 1);
      std::atomic<unsigned> next{0};
      // Lowest failing slice seen so far; slices above it are skipped (their
      // outcomes are never consumed), slices below it are always processed.
      std::atomic<unsigned> minFail{n_};
      std::mutex errMutex;
      std::exception_ptr firstError;
      auto worker = [&] {
        const int slot = gov != nullptr ? gov->registerSource() : -1;
        try {
          for (;;) {
            const unsigned i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_) break;
            if (i > minFail.load(std::memory_order_relaxed)) continue;
            checkSliceOutcome(i, gov, slot, out[i]);
            if (!out[i].ok) {
              unsigned cur = minFail.load(std::memory_order_relaxed);
              while (i < cur &&
                     !minFail.compare_exchange_weak(
                         cur, i, std::memory_order_relaxed)) {
              }
            }
          }
        } catch (...) {
          // BudgetExceeded (the trip is sticky, siblings stop at their next
          // checkpoint) or an internal error: surface the first one.
          std::lock_guard<std::mutex> lk(errMutex);
          if (!firstError) firstError = std::current_exception();
        }
      };
      std::vector<std::future<void>> futures;
      futures.reserve(jobs);
      for (unsigned w = 0; w < jobs; ++w) futures.push_back(pool_->submit(worker));
      for (auto& f : futures) f.get();
      if (firstError) std::rethrow_exception(firstError);
    }
    for (unsigned i = 0; i < n_; ++i) {
      const SliceOutcome& o = out[i];
      if (!o.done) break;  // only reachable past a recorded failure
      if (!o.ok) throw SliceMismatch{o.slice, o.message};
      stats_.sliceNodesTotal += o.nodes;
      stats_.sliceNodesMax = std::max(stats_.sliceNodesMax, o.nodes);
      stats_.mergesApplied += o.tally.merges;
      stats_.forwardingMatches += o.tally.forwarding;
      ++stats_.slicesChecked;
    }
  }

  /// One slice, one shadow. BudgetExceeded propagates (budget exhaustion is
  /// not a rule mismatch); a SliceMismatch is recorded in the outcome.
  void checkSliceOutcome(unsigned i, BudgetGovernor* gov, int slot,
                         SliceOutcome& o) {
    if (gov != nullptr) gov->checkpoint(-1, 0);
    eufm::ShadowContext scx(cx_, gov, slot);
    o.done = true;
    try {
      checkSliceData(scx, i, o.tally);
    } catch (const SliceMismatch& m) {
      o.ok = false;
      o.slice = m.slice;
      o.message = m.what;
    }
    o.nodes = scx.localNodes();
    // Zero this worker's slot: the shadow's scratch is freed with it.
    if (gov != nullptr) gov->checkpoint(slot, 0);
  }

  // ---- rule: data equality per slice -----------------------------------------
  // Templated on the context type: checks run against a per-slice
  // ShadowContext (or, in tests, directly against a Context). All node ids
  // referenced from members (init_, retireCond_, update chains) are base
  // ids and therefore valid in every shadow.
  template <typename Cx>
  void checkSliceData(Cx& cx, unsigned i, SliceTally& tally) const {
    // Merge the retire/completion updates (within the retire width) into a
    // single update under Valid_i with data ITE(retire_i, Result_i, ...).
    const Expr implData =
        i < k_ ? cx.mkIteT(retireCond_[i], init_.result[i], flushUpd(i).data)
               : flushUpd(i).data;
    if (i < k_) ++tally.merges;
    const Expr specData = specUpd(i).data;

    // Case 1: ValidResult_i = true — both sides must collapse to Result_i.
    {
      BoolAssumptions vr1{{init_.valid[i], true}, {init_.validResult[i], true}};
      const Expr di = substituteShallow(cx, implData, vr1);
      if (di != init_.result[i])
        fail(i, "implementation data does not collapse to Result_i when "
                "ValidResult_i holds");
      const Expr ds = substituteShallow(cx, specData, vr1);
      if (ds != init_.result[i])
        fail(i, "specification data does not collapse to Result_i when "
                "ValidResult_i holds");
    }

    // Case 2: ValidResult_i = false.
    BoolAssumptions vr0{{init_.valid[i], true}, {init_.validResult[i], false}};
    const Expr di = substituteShallow(cx, implData, vr0);
    const Expr ds = substituteShallow(cx, specData, vr0);

    const Expr pPrefix = flushUpd(i).prev;               // P_i
    const Expr qPrefix = specUpd(i).prev;                // Q_i
    // Specification side: ALU(Op_i, read(Q_i, Src1_i), read(Q_i, Src2_i)).
    if (ds != aluRead(cx, i, qPrefix))
      fail(i, "specification data is not the expected ALU application over "
              "reads from the specification prefix state");

    // Implementation side: either the pure completion computation, or an
    // ITE between the regular-cycle execution and the completion.
    if (di == aluRead(cx, i, pPrefix)) return;  // rule 2.2 alone
    if (cx.kind(di) != Kind::IteT)
      fail(i, "implementation data (ValidResult_i = false) has an "
              "unexpected shape");
    const Expr execCond = cx.arg(di, 0);
    const Expr execData = cx.arg(di, 1);
    const Expr flushData = cx.arg(di, 2);
    if (flushData != aluRead(cx, i, pPrefix))
      fail(i, "completion branch is not the expected ALU application over "
              "reads from the implementation prefix state (rule 2.2)");
    checkExecBranch(cx, i, execCond, execData, tally);
  }

  /// ALU(Op_i, read(state, Src1_i), read(state, Src2_i)).
  template <typename Cx>
  Expr aluRead(Cx& cx, unsigned i, Expr state) const {
    return cx.apply(isa_.alu,
                    {init_.opcode[i], cx.mkRead(state, init_.src1[i]),
                     cx.mkRead(state, init_.src2[i])});
  }

  // Rule 2.1: the instruction executed during the single regular cycle; its
  // forwarded operands must match the specification-side reads whenever the
  // dependencies_ok conditions (conjuncts of the execute condition) hold.
  template <typename Cx>
  void checkExecBranch(Cx& cx, unsigned i, Expr execCond, Expr execData,
                       SliceTally& tally) const {
    if (cx.kind(execData) != Kind::Uf ||
        cx.funcOf(execData) != isa_.alu ||
        cx.arg(execData, 0) != init_.opcode[i])
      fail(i, "regular-cycle execution result is not an ALU application "
              "on Opcode_i");
    const auto conj = conjuncts(cx, execCond);
    for (unsigned o = 0; o < 2; ++o) {
      const Expr src = o == 0 ? init_.src1[i] : init_.src2[i];
      const Expr fwd = cx.arg(execData, o + 1);
      if (!operandJustified(cx, i, fwd, src, conj, tally))
        fail(i, "forwarded operand " + std::to_string(o + 1) +
                    " cannot be matched against the specification-side "
                    "read (rule 2.1)");
    }
  }

  // Does some conjunct of the execute condition justify fwd == read(Q_i,
  // src)? The base case (no preceding writer consulted) needs no condition.
  template <typename Cx>
  bool operandJustified(Cx& cx, unsigned i, Expr fwd, Expr src,
                        const std::vector<Expr>& conj,
                        SliceTally& tally) const {
    if (matchForwarding(cx, i, fwd, kNoExpr, src)) {
      ++tally.forwarding;
      return true;
    }
    for (Expr c : conj)
      if (matchForwarding(cx, i, fwd, c, src)) {
        ++tally.forwarding;
        return true;
      }
    return false;
  }

  // Match the forwarding chain for slice i against the specification update
  // chain, level by level from the nearest preceding entry (j = i-1) down to
  // the initial Register File. At each level:
  //   fwd = ITE(hit_j, Result_j, rest),    hit_j = Valid_j & (Dest_j = src)
  //   ok  = ITE(hit_j, ValidResult_j, okRest)   (or the folded Or-form when
  //                                              okRest is TRUE)
  // and the specification data written at level j must collapse to Result_j
  // under ValidResult_j — which `ok` guarantees exactly when the forwarding
  // selects level j. `ok == kNoExpr` requires the chain to be hit-free.
  template <typename Cx>
  bool matchForwarding(Cx& cx, unsigned i, Expr fwd, Expr ok,
                       Expr src) const {
    for (unsigned level = i; level-- > 0;) {
      const Expr hit =
          cx.mkAnd(init_.valid[level], cx.mkEq(init_.dest[level], src));
      if (cx.kind(fwd) != Kind::IteT || cx.arg(fwd, 0) != hit ||
          cx.arg(fwd, 1) != init_.result[level])
        return false;
      fwd = cx.arg(fwd, 2);
      // Peel the availability chain.
      if (ok == kNoExpr) return false;
      if (cx.kind(ok) == Kind::IteF && cx.arg(ok, 0) == hit &&
          cx.arg(ok, 1) == init_.validResult[level]) {
        ok = cx.arg(ok, 2);
      } else if (ok == cx.mkOr(cx.mkNot(hit), init_.validResult[level])) {
        ok = cx.mkTrue();  // folded innermost level: ITE(hit, VR, true)
      } else {
        return false;
      }
      // The specification write at this level must provide Result_level
      // when its result was available.
      BoolAssumptions vr1{{init_.validResult[level], true}};
      if (substituteShallow(cx, specUpd(level).data, vr1) !=
          init_.result[level])
        return false;
    }
    return fwd == cx.mkRead(init_.regFile, src) &&
           (ok == kNoExpr || ok == cx.mkTrue());
  }

  // ---- removal and reconstruction (Fig. 2.b) ----------------------------------
  void rebuild(RewriteResult& res, std::size_t numSpec) {
    res.equalStateVar = cx_.freshTermVar("RegFile_equal_state");

    // Implementation side: the k updates of the newly fetched instructions,
    // re-based onto the common equal state.
    Expr cur = res.equalStateVar;
    for (unsigned j = 0; j < k_; ++j) {
      const Update& u = newUpd(j);
      const Expr data = substituteMem(cx_, u.data, u.prev, cur);
      const Expr ctx = substituteMem(cx_, u.ctx, u.prev, cur);
      cur = cx_.mkIteT(ctx, cx_.mkWrite(cur, u.addr, data), cur);
    }
    res.implRegFile = cur;

    // Specification side: m = 0 is the equal state itself; each further
    // step re-bases one specification update.
    res.specRegFile.assign(numSpec, kNoExpr);
    res.specRegFile[0] = res.equalStateVar;
    cur = res.equalStateVar;
    for (unsigned m = 1; m < numSpec; ++m) {
      const Update& u = specSteps_[m - 1];
      const Expr data = substituteMem(cx_, u.data, u.prev, cur);
      const Expr ctx = substituteMem(cx_, u.ctx, u.prev, cur);
      cur = cx_.mkIteT(ctx, cx_.mkWrite(cur, u.addr, data), cur);
      res.specRegFile[m] = cur;
    }
  }

  Context& cx_;
  const models::Isa& isa_;
  const models::RobInitState& init_;
  const unsigned n_;
  const unsigned k_;
  ThreadPool* pool_;

  UpdateChain impl_;
  UpdateChain spec0_;
  std::vector<Update> specSteps_;
  std::vector<Expr> retireCond_;  // retire_i, split out of the contexts
  RewriteStats stats_;
};

}  // namespace

RewriteResult rewriteRobUpdates(Context& cx, const models::Isa& isa,
                                const models::RobInitState& init,
                                const models::OoOConfig& cfg,
                                Expr implRegFile,
                                std::span<const Expr> specRegFile,
                                ThreadPool* pool) {
  Engine engine(cx, isa, init, cfg, pool);
  return engine.run(implRegFile, specRegFile);
}

}  // namespace velev::rewrite
