// Conjunction flattening and syntactic context analysis.
//
// Update reordering (Sect. 6) is justified when two update contexts cannot
// be true simultaneously. The paper's observation: with in-order
// retirement, a retire context Valid_j ∧ retire_j and a completion context
// Valid_i ∧ ¬retire_i (i <= j) are conjunctions containing retire_i in
// opposite polarities. The checks here are purely syntactic (and therefore
// sound): c1 and c2 are disjoint if some conjunct of one is the negation of
// a formula implied (by conjunct-set inclusion) by the other.
#pragma once

#include <vector>

#include "eufm/expr.hpp"

namespace velev::rewrite {

/// Flatten nested ANDs into the set of non-AND conjuncts. Templated on the
/// context type so the slice checker can flatten against a ShadowContext.
template <typename Cx>
std::vector<eufm::Expr> conjuncts(const Cx& cx, eufm::Expr f) {
  std::vector<eufm::Expr> out;
  std::vector<eufm::Expr> stack = {f};
  while (!stack.empty()) {
    const eufm::Expr e = stack.back();
    stack.pop_back();
    if (cx.kind(e) == eufm::Kind::And) {
      stack.push_back(cx.arg(e, 0));
      stack.push_back(cx.arg(e, 1));
    } else {
      out.push_back(e);
    }
  }
  return out;
}

/// Sound syntactic implication: every conjunct of `weak` is a conjunct of
/// `strong` (after flattening both).
bool impliesSyntactic(const eufm::Context& cx, eufm::Expr strong,
                      eufm::Expr weak);

/// Sound syntactic disjointness: c1 ∧ c2 is unsatisfiable because some
/// conjunct ¬X of one side satisfies "other side implies X" (or a literal
/// appears in both polarities).
bool disjointContexts(const eufm::Context& cx, eufm::Expr c1, eufm::Expr c2);

}  // namespace velev::rewrite
