// Guarded substitution utilities for the rewriting rules.
//
// `substituteShallow` replaces Boolean variables by constants (the
// ValidResult case split of Sect. 6) and rebuilds through the smart
// constructors, so guarded structure collapses (e.g. an execute condition
// containing ¬ValidResult_i folds to false when ValidResult_i := true).
// Crucially it does NOT descend into the memory argument of `read`: the
// prefix Register File states referenced by completion-function reads are
// handled by the prefix-correspondence argument, not by substitution — and
// leaving them untouched keeps the per-slice cost proportional to the slice,
// not to the whole formula.
//
// `substituteMem` replaces one specific memory-state subterm (a proven-equal
// prefix) by a fresh variable, again without descending into deeper read
// bases.
#pragma once

#include <unordered_map>

#include "eufm/expr.hpp"

namespace velev::rewrite {

/// Assumptions for the case split: Boolean variable -> constant value.
using BoolAssumptions = std::unordered_map<eufm::Expr, bool>;

/// Rebuild `e` under `assume`, folding constants; read/write memory
/// arguments are kept verbatim.
eufm::Expr substituteShallow(eufm::Context& cx, eufm::Expr e,
                             const BoolAssumptions& assume);

/// Rebuild `e` with every occurrence of memory state `from` replaced by
/// `to`; traversal does not descend below `from` and treats read/write
/// memory arguments other than `from` verbatim.
eufm::Expr substituteMem(eufm::Context& cx, eufm::Expr e, eufm::Expr from,
                         eufm::Expr to);

}  // namespace velev::rewrite
