// Guarded substitution utilities for the rewriting rules.
//
// `substituteShallow` replaces Boolean variables by constants (the
// ValidResult case split of Sect. 6) and rebuilds through the smart
// constructors, so guarded structure collapses (e.g. an execute condition
// containing ¬ValidResult_i folds to false when ValidResult_i := true).
// Crucially it does NOT descend into the memory argument of `read`: the
// prefix Register File states referenced by completion-function reads are
// handled by the prefix-correspondence argument, not by substitution — and
// leaving them untouched keeps the per-slice cost proportional to the slice,
// not to the whole formula.
//
// `substituteMem` replaces one specific memory-state subterm (a proven-equal
// prefix) by a fresh variable, again without descending into deeper read
// bases.
//
// Both are templated on the context type: the slice checks run them against
// a per-slice eufm::ShadowContext overlay (scratch discarded after the
// slice), while the rebuild phase runs substituteMem on the real Context.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "eufm/expr.hpp"

namespace velev::rewrite {

/// Assumptions for the case split: Boolean variable -> constant value.
using BoolAssumptions = std::unordered_map<eufm::Expr, bool>;

namespace detail {

// Iterative postorder rebuild. Memory arguments of read/write are not
// traversed; they are transformed atomically by `memArg` (identity by
// default), which keeps the cost proportional to the data expression, not
// to the prefix memory states it reads from.
template <typename Cx, typename LeafFn, typename MemFn>
eufm::Expr rebuildFiltered(Cx& cx, eufm::Expr root, LeafFn&& leaf,
                           MemFn&& memArg) {
  using eufm::Expr;
  using eufm::Kind;
  std::unordered_map<Expr, Expr> map;
  std::vector<std::pair<Expr, bool>> stack = {{root, false}};
  while (!stack.empty()) {
    auto [e, expanded] = stack.back();
    stack.pop_back();
    if (map.count(e)) continue;
    if (!expanded) {
      const Expr direct = leaf(e);
      if (direct != eufm::kNoExpr) {
        map.emplace(e, direct);
        continue;
      }
      stack.emplace_back(e, true);
      const Kind k = cx.kind(e);
      const auto args = cx.args(e);
      for (std::size_t i = 0; i < args.size(); ++i) {
        if ((k == Kind::Read || k == Kind::Write) && i == 0) continue;
        if (!map.count(args[i])) stack.emplace_back(args[i], false);
      }
      continue;
    }
    auto m = [&](unsigned i) { return map.at(cx.arg(e, i)); };
    Expr r = eufm::kNoExpr;
    switch (cx.kind(e)) {
      case Kind::Not: r = cx.mkNot(m(0)); break;
      case Kind::And: r = cx.mkAnd(m(0), m(1)); break;
      case Kind::Or: r = cx.mkOr(m(0), m(1)); break;
      case Kind::IteF: r = cx.mkIteF(m(0), m(1), m(2)); break;
      case Kind::IteT: r = cx.mkIteT(m(0), m(1), m(2)); break;
      case Kind::Eq: r = cx.mkEq(m(0), m(1)); break;
      case Kind::Up:
      case Kind::Uf: {
        std::vector<Expr> args;
        for (Expr a : cx.args(e)) args.push_back(map.at(a));
        r = cx.apply(cx.funcOf(e), args);
        break;
      }
      case Kind::Read:
        r = cx.mkRead(memArg(cx.arg(e, 0)), m(1));
        break;
      case Kind::Write:
        r = cx.mkWrite(memArg(cx.arg(e, 0)), m(1), m(2));
        break;
      default:
        VELEV_UNREACHABLE("unhandled kind in rebuild");
    }
    map.emplace(e, r);
  }
  return map.at(root);
}

template <typename Cx>
eufm::Expr keepLeaves(const Cx& cx, eufm::Expr e) {
  using eufm::Kind;
  switch (cx.kind(e)) {
    case Kind::True:
    case Kind::False:
    case Kind::TermVar:
    case Kind::BoolVar:
      return e;
    default:
      return eufm::kNoExpr;  // recurse
  }
}

}  // namespace detail

/// Rebuild `e` under `assume`, folding constants; read/write memory
/// arguments are kept verbatim.
template <typename Cx>
eufm::Expr substituteShallow(Cx& cx, eufm::Expr root,
                             const BoolAssumptions& assume) {
  using eufm::Expr;
  using eufm::Kind;
  return detail::rebuildFiltered(
      cx, root,
      [&](Expr e) -> Expr {
        if (cx.kind(e) == Kind::BoolVar) {
          auto it = assume.find(e);
          if (it != assume.end())
            return it->second ? cx.mkTrue() : cx.mkFalse();
          return e;
        }
        return detail::keepLeaves(cx, e);
      },
      [](Expr mem) { return mem; });
}

/// Rebuild `e` with every occurrence of memory state `from` replaced by
/// `to`; traversal does not descend below `from` and treats read/write
/// memory arguments other than `from` verbatim.
eufm::Expr substituteMem(eufm::Context& cx, eufm::Expr e, eufm::Expr from,
                         eufm::Expr to);

}  // namespace velev::rewrite
