#include "rewrite/update_chain.hpp"

#include <algorithm>

namespace velev::rewrite {

using eufm::Context;
using eufm::Expr;
using eufm::Kind;

bool matchUpdate(const Context& cx, Expr e, Update& out) {
  if (cx.kind(e) != Kind::IteT) return false;
  const Expr w = cx.arg(e, 1);
  const Expr prev = cx.arg(e, 2);
  if (cx.kind(w) != Kind::Write || cx.arg(w, 0) != prev) return false;
  out.node = e;
  out.prev = prev;
  out.ctx = cx.arg(e, 0);
  out.addr = cx.arg(w, 1);
  out.data = cx.arg(w, 2);
  return true;
}

UpdateChain extractChain(const Context& cx, Expr root) {
  UpdateChain chain;
  chain.root = root;
  Expr cur = root;
  Update u;
  while (matchUpdate(cx, cur, u)) {
    chain.updates.push_back(u);
    cur = u.prev;
  }
  chain.base = cur;
  std::reverse(chain.updates.begin(), chain.updates.end());
  return chain;
}

UpdateChain extractChainTo(const Context& cx, Expr root, Expr base) {
  UpdateChain chain;
  chain.root = root;
  Expr cur = root;
  Update u;
  while (cur != base) {
    VELEV_CHECK_MSG(matchUpdate(cx, cur, u),
                    "update chain does not bottom out at the expected base");
    chain.updates.push_back(u);
    cur = u.prev;
  }
  chain.base = cur;
  std::reverse(chain.updates.begin(), chain.updates.end());
  return chain;
}

Expr rebuildChain(Context& cx, Expr base, std::span<const Update> updates) {
  Expr cur = base;
  for (const Update& u : updates)
    cur = cx.mkIteT(u.ctx, cx.mkWrite(cur, u.addr, u.data), cur);
  return cur;
}

}  // namespace velev::rewrite
