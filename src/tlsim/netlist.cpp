#include "tlsim/netlist.hpp"

namespace velev::tlsim {

using eufm::Sort;

SignalId Netlist::add(Signal s) {
  for (SignalId a : s.args)
    VELEV_CHECK_MSG(a < signals_.size(),
                    "combinational signal references a later signal");
  signals_.push_back(std::move(s));
  return static_cast<SignalId>(signals_.size() - 1);
}

SignalId Netlist::sFixed(eufm::Expr e) {
  Signal s;
  s.op = Op::Fixed;
  s.sort = cx_.sort(e);
  s.fixed = e;
  return add(std::move(s));
}

SignalId Netlist::sInput(std::string name, Sort sort) {
  Signal s;
  s.op = Op::Input;
  s.sort = sort;
  s.name = std::move(name);
  return add(std::move(s));
}

SignalId Netlist::sLatch(std::string name, Sort sort, eufm::Expr init) {
  VELEV_CHECK(cx_.sort(init) == sort);
  Signal s;
  s.op = Op::Latch;
  s.sort = sort;
  s.fixed = init;
  s.name = std::move(name);
  const SignalId id = add(std::move(s));
  latches_.push_back(id);
  return id;
}

SignalId Netlist::sLatchFree(std::string name, Sort sort) {
  const std::string initName = name + "_0";
  const eufm::Expr init = sort == Sort::Formula ? cx_.boolVar(initName)
                                                : cx_.termVar(initName);
  return sLatch(std::move(name), sort, init);
}

void Netlist::setNext(SignalId latch, SignalId next) {
  VELEV_CHECK(signals_[latch].op == Op::Latch);
  VELEV_CHECK_MSG(signals_[latch].next == kNoSignal,
                  "latch " << signals_[latch].name << " driven twice");
  VELEV_CHECK(signals_[next].sort == signals_[latch].sort);
  signals_[latch].next = next;
}

namespace {
Signal comb(Op op, Sort sort, std::initializer_list<SignalId> args) {
  Signal s;
  s.op = op;
  s.sort = sort;
  s.args.assign(args.begin(), args.end());
  return s;
}
}  // namespace

SignalId Netlist::sNot(SignalId a) {
  VELEV_CHECK(sortOf(a) == Sort::Formula);
  return add(comb(Op::Not, Sort::Formula, {a}));
}

SignalId Netlist::sAnd(SignalId a, SignalId b) {
  VELEV_CHECK(sortOf(a) == Sort::Formula && sortOf(b) == Sort::Formula);
  return add(comb(Op::And, Sort::Formula, {a, b}));
}

SignalId Netlist::sOr(SignalId a, SignalId b) {
  VELEV_CHECK(sortOf(a) == Sort::Formula && sortOf(b) == Sort::Formula);
  return add(comb(Op::Or, Sort::Formula, {a, b}));
}

SignalId Netlist::sIteF(SignalId c, SignalId t, SignalId e) {
  VELEV_CHECK(sortOf(c) == Sort::Formula && sortOf(t) == Sort::Formula &&
              sortOf(e) == Sort::Formula);
  return add(comb(Op::IteF, Sort::Formula, {c, t, e}));
}

SignalId Netlist::sEq(SignalId a, SignalId b) {
  VELEV_CHECK(sortOf(a) == Sort::Term && sortOf(b) == Sort::Term);
  return add(comb(Op::Eq, Sort::Formula, {a, b}));
}

SignalId Netlist::sIteT(SignalId c, SignalId t, SignalId e) {
  VELEV_CHECK(sortOf(c) == Sort::Formula && sortOf(t) == Sort::Term &&
              sortOf(e) == Sort::Term);
  return add(comb(Op::IteT, Sort::Term, {c, t, e}));
}

SignalId Netlist::sRead(SignalId mem, SignalId addr) {
  VELEV_CHECK(sortOf(mem) == Sort::Term && sortOf(addr) == Sort::Term);
  return add(comb(Op::Read, Sort::Term, {mem, addr}));
}

SignalId Netlist::sWrite(SignalId mem, SignalId addr, SignalId data) {
  VELEV_CHECK(sortOf(mem) == Sort::Term && sortOf(addr) == Sort::Term &&
              sortOf(data) == Sort::Term);
  return add(comb(Op::Write, Sort::Term, {mem, addr, data}));
}

SignalId Netlist::sApply(eufm::FuncId f, std::span<const SignalId> args) {
  const eufm::FuncInfo& fi = cx_.func(f);
  VELEV_CHECK(fi.arity == args.size());
  for (SignalId a : args) VELEV_CHECK(sortOf(a) == Sort::Term);
  Signal s;
  s.op = Op::Apply;
  s.sort = fi.isPredicate ? Sort::Formula : Sort::Term;
  s.func = f;
  s.args.assign(args.begin(), args.end());
  return add(std::move(s));
}

void Netlist::checkComplete() const {
  for (SignalId l : latches_)
    VELEV_CHECK_MSG(signals_[l].next != kNoSignal,
                    "latch " << signals_[l].name << " has no next-state driver");
}

}  // namespace velev::tlsim
