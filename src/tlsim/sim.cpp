#include "tlsim/sim.hpp"

#include "support/trace.hpp"

namespace velev::tlsim {

using eufm::Expr;
using eufm::kNoExpr;

Simulator::Simulator(const Netlist& nl, Options opts)
    : nl_(nl), cx_(nl.ctx()), opts_(opts) {
  nl_.checkComplete();
  const std::size_t n = nl_.numSignals();
  stateVal_.assign(n, kNoExpr);
  inputVal_.assign(n, kNoExpr);
  memo_.assign(n, kNoExpr);
  stamp_.assign(n, 0);
  for (SignalId l : nl_.latches()) stateVal_[l] = nl_.signal(l).fixed;
}

void Simulator::setInput(SignalId input, Expr e) {
  VELEV_CHECK(nl_.signal(input).op == Op::Input);
  VELEV_CHECK(cx_.sort(e) == nl_.signal(input).sort);
  inputVal_[input] = e;
  invalidate();
}

Expr Simulator::state(SignalId latch) const {
  VELEV_CHECK(nl_.signal(latch).op == Op::Latch);
  return stateVal_[latch];
}

void Simulator::setState(SignalId latch, Expr e) {
  VELEV_CHECK(nl_.signal(latch).op == Op::Latch);
  VELEV_CHECK(cx_.sort(e) == nl_.signal(latch).sort);
  stateVal_[latch] = e;
  invalidate();
}

Expr Simulator::value(SignalId s) {
  VELEV_CHECK(s < nl_.numSignals());
  return eval(s);
}

Expr Simulator::eval(SignalId root) {
  if (stamp_[root] == epoch_) return memo_[root];
  const Expr cTrue = cx_.mkTrue(), cFalse = cx_.mkFalse();
  const bool coi = opts_.coneOfInfluence;

  auto ready = [&](SignalId s) { return stamp_[s] == epoch_; };
  auto finish = [&](SignalId s, Expr v) {
    memo_[s] = v;
    stamp_[s] = epoch_;
    ++stats_.signalEvals;
    stack_.pop_back();
  };

  stack_.clear();
  stack_.push_back(Frame{root, 0});
  while (!stack_.empty()) {
    const SignalId sig = stack_.back().sig;
    if (ready(sig)) {
      stack_.pop_back();
      continue;
    }
    const Signal& sg = nl_.signal(sig);
    switch (sg.op) {
      case Op::Fixed:
        finish(sig, sg.fixed);
        break;
      case Op::Input:
        VELEV_CHECK_MSG(inputVal_[sig] != kNoExpr,
                        "input '" << sg.name << "' not driven");
        finish(sig, inputVal_[sig]);
        break;
      case Op::Latch:
        finish(sig, stateVal_[sig]);
        break;
      case Op::And:
      case Op::Or: {
        const Expr absorb = sg.op == Op::And ? cFalse : cTrue;
        if (!ready(sg.args[0])) {
          stack_.push_back(Frame{sg.args[0], 0});
          break;
        }
        const Expr v0 = memo_[sg.args[0]];
        if (coi && v0 == absorb) {
          finish(sig, absorb);
          break;
        }
        if (!ready(sg.args[1])) {
          stack_.push_back(Frame{sg.args[1], 0});
          break;
        }
        const Expr v1 = memo_[sg.args[1]];
        finish(sig, sg.op == Op::And ? cx_.mkAnd(v0, v1) : cx_.mkOr(v0, v1));
        break;
      }
      case Op::IteF:
      case Op::IteT: {
        if (!ready(sg.args[0])) {
          stack_.push_back(Frame{sg.args[0], 0});
          break;
        }
        const Expr c = memo_[sg.args[0]];
        if (coi && (c == cTrue || c == cFalse)) {
          const SignalId taken = c == cTrue ? sg.args[1] : sg.args[2];
          if (!ready(taken)) {
            stack_.push_back(Frame{taken, 0});
            break;
          }
          finish(sig, memo_[taken]);
          break;
        }
        if (!ready(sg.args[1])) {
          stack_.push_back(Frame{sg.args[1], 0});
          break;
        }
        if (!ready(sg.args[2])) {
          stack_.push_back(Frame{sg.args[2], 0});
          break;
        }
        const Expr t = memo_[sg.args[1]], e = memo_[sg.args[2]];
        finish(sig, sg.op == Op::IteF ? cx_.mkIteF(c, t, e)
                                      : cx_.mkIteT(c, t, e));
        break;
      }
      default: {  // Not, Eq, Read, Write, Apply: strict in all arguments
        bool pending = false;
        for (SignalId a : sg.args) {
          if (!ready(a)) {
            stack_.push_back(Frame{a, 0});
            pending = true;
            break;
          }
        }
        if (pending) break;
        Expr v = kNoExpr;
        switch (sg.op) {
          case Op::Not:
            v = cx_.mkNot(memo_[sg.args[0]]);
            break;
          case Op::Eq:
            v = cx_.mkEq(memo_[sg.args[0]], memo_[sg.args[1]]);
            break;
          case Op::Read:
            v = cx_.mkRead(memo_[sg.args[0]], memo_[sg.args[1]]);
            break;
          case Op::Write:
            v = cx_.mkWrite(memo_[sg.args[0]], memo_[sg.args[1]],
                            memo_[sg.args[2]]);
            break;
          case Op::Apply: {
            std::vector<Expr> vals;
            vals.reserve(sg.args.size());
            for (SignalId a : sg.args) vals.push_back(memo_[a]);
            v = cx_.apply(sg.func, vals);
            break;
          }
          default:
            VELEV_UNREACHABLE("unhandled op");
        }
        finish(sig, v);
        break;
      }
    }
  }
  return memo_[root];
}

void Simulator::step() {
  TRACE_SPAN("tlsim.step");
  if (!opts_.coneOfInfluence) {
    // Naive mode: fully evaluate every signal every cycle.
    for (SignalId s = 0; s < nl_.numSignals(); ++s) eval(s);
  }
  // Evaluate all next-states against the current state, then commit
  // simultaneously (two-phase clocking).
  std::vector<std::pair<SignalId, Expr>> commits;
  commits.reserve(nl_.latches().size());
  for (SignalId l : nl_.latches())
    commits.emplace_back(l, eval(nl_.signal(l).next));
  for (const auto& [l, v] : commits) stateVal_[l] = v;
  invalidate();
  ++stats_.cycles;
}

}  // namespace velev::tlsim
