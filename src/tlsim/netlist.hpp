// Term-level netlist: the hardware-description layer of the TLSim analogue.
//
// A netlist is a DAG of signals over the two EUFM sorts. State elements are
// latches (formula- or term-sorted; a memory is just a term-sorted latch
// holding a memory-state term). Combinational signals mirror the EUFM
// operators. Signal ids are assigned in creation order, so they are already
// topologically sorted: a combinational signal may only reference
// previously created signals (latches may reference any signal through
// `setNext`, closing the sequential loop).
//
// This restricted description style is exactly the one advocated in the
// Velev/Bryant flow (CHARME'99): high-level processor models built from
// latches, memories, ITE-multiplexers, equality comparators and
// uninterpreted functional blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eufm/expr.hpp"

namespace velev::tlsim {

using SignalId = std::uint32_t;
constexpr SignalId kNoSignal = 0xffffffffu;

enum class Op : std::uint8_t {
  Fixed,   // a fixed EUFM expression (constants, shared symbolic state)
  Input,   // an expression settable by the test bench between cycles
  Latch,   // state element; value = current state, next driven via setNext
  Not,
  And,
  Or,
  IteF,
  Eq,
  IteT,
  Read,
  Write,
  Apply,   // uninterpreted function / predicate application
};

struct Signal {
  Op op;
  eufm::Sort sort;
  eufm::FuncId func = 0;            // Apply only
  std::vector<SignalId> args;       // combinational fan-in
  eufm::Expr fixed = eufm::kNoExpr; // Fixed: the expression; Latch: init state
  SignalId next = kNoSignal;        // Latch only
  std::string name;                 // latches & inputs (diagnostics)
};

class Netlist {
 public:
  explicit Netlist(eufm::Context& cx) : cx_(cx) {}
  Netlist(const Netlist&) = delete;
  Netlist& operator=(const Netlist&) = delete;

  eufm::Context& ctx() const { return cx_; }

  // ---- sources -------------------------------------------------------------
  SignalId sFixed(eufm::Expr e);
  SignalId sTrue() { return sFixed(cx_.mkTrue()); }
  SignalId sFalse() { return sFixed(cx_.mkFalse()); }
  SignalId sInput(std::string name, eufm::Sort sort);
  /// Latch with explicit initial-state expression.
  SignalId sLatch(std::string name, eufm::Sort sort, eufm::Expr init);
  /// Latch whose initial state is a variable named after the latch
  /// ("<name>_0") — the usual way of leaving initial state symbolic.
  SignalId sLatchFree(std::string name, eufm::Sort sort);

  /// Drive the next-state input of `latch` (must be called exactly once per
  /// latch before simulation).
  void setNext(SignalId latch, SignalId next);

  // ---- combinational -------------------------------------------------------
  SignalId sNot(SignalId a);
  SignalId sAnd(SignalId a, SignalId b);
  SignalId sOr(SignalId a, SignalId b);
  SignalId sIteF(SignalId c, SignalId t, SignalId e);
  SignalId sEq(SignalId a, SignalId b);
  SignalId sIteT(SignalId c, SignalId t, SignalId e);
  SignalId sRead(SignalId mem, SignalId addr);
  SignalId sWrite(SignalId mem, SignalId addr, SignalId data);
  SignalId sApply(eufm::FuncId f, std::span<const SignalId> args);
  SignalId sApply(eufm::FuncId f, std::initializer_list<SignalId> args) {
    return sApply(f, std::span<const SignalId>(args.begin(), args.size()));
  }

  // ---- introspection ---------------------------------------------------------
  const Signal& signal(SignalId s) const {
    VELEV_CHECK(s < signals_.size());
    return signals_[s];
  }
  std::size_t numSignals() const { return signals_.size(); }
  const std::vector<SignalId>& latches() const { return latches_; }
  eufm::Sort sortOf(SignalId s) const { return signal(s).sort; }

  /// Verify every latch has a next-state driver; throws otherwise.
  void checkComplete() const;

 private:
  SignalId add(Signal s);
  eufm::Context& cx_;
  std::vector<Signal> signals_;
  std::vector<SignalId> latches_;
};

}  // namespace velev::tlsim
