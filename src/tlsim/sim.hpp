// Demand-driven symbolic simulator over a term-level netlist.
//
// Each cycle, latch next-state expressions are pulled through the
// combinational logic, building EUFM expressions in the shared Context.
// With `coneOfInfluence` enabled (the default, and the optimization the
// paper reports was necessary to simulate 1,500-entry reorder buffers),
// evaluation short-circuits on concrete control: an AND with a concretely
// false conjunct never evaluates its remaining fan-in, and an ITE with a
// concrete condition evaluates only the taken branch. During flushing,
// where exactly one completion slice is active per cycle, this confines
// per-cycle work to the active slice's cone — the same effect as TLSim's
// event-driven engine evaluating "only the cone of influence of latches or
// memories whose state is updated in the current time step".
//
// With `coneOfInfluence` disabled (the ablation mode of bench/table1), every
// signal is fully evaluated every cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "tlsim/netlist.hpp"

namespace velev::tlsim {

struct SimOptions {
  bool coneOfInfluence = true;
};

struct SimStats {
  std::uint64_t signalEvals = 0;  // non-memoized signal evaluations
  std::uint64_t cycles = 0;
};

class Simulator {
 public:
  using Options = SimOptions;
  using Stats = SimStats;

  explicit Simulator(const Netlist& nl, Options opts = {});

  /// Drive a test-bench input for the current and subsequent cycles.
  void setInput(SignalId input, eufm::Expr e);

  /// Current-cycle value of any signal (combinational or state).
  eufm::Expr value(SignalId s);

  /// Current state of a latch.
  eufm::Expr state(SignalId latch) const;

  /// Override the state of a latch (e.g. to start the specification from an
  /// implementation-derived state when building the commutative diagram).
  void setState(SignalId latch, eufm::Expr e);

  /// Advance one clock cycle: evaluate all latch next-states against the
  /// current state, then commit simultaneously.
  void step();

  const Stats& stats() const { return stats_; }

 private:
  eufm::Expr eval(SignalId s);
  void invalidate() { ++epoch_; }

  const Netlist& nl_;
  eufm::Context& cx_;
  Options opts_;
  Stats stats_;

  std::vector<eufm::Expr> stateVal_;  // indexed by SignalId (latches only)
  std::vector<eufm::Expr> inputVal_;  // indexed by SignalId (inputs only)
  std::vector<eufm::Expr> memo_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;

  // Scratch for the iterative evaluator.
  struct Frame {
    SignalId sig;
    std::uint32_t idx;
  };
  std::vector<Frame> stack_;
};

}  // namespace velev::tlsim
